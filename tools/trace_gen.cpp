// trace_gen: generate a synthetic IRCache-like request trace, or convert an
// existing trace between the plain-text and chunked binary formats.
//
//   trace_gen [--requests N] [--objects N] [--users N] [--domains N]
//             [--zipf S] [--duration SECONDS] [--seed N] [--out FILE]
//             [--format text|binary] [--stream] [--chunk N]
//   trace_gen --convert IN --out OUT [--format text|binary]
//             [--max-malformed N]
//
// The default path materializes the trace in memory (generate_trace: full
// locality/affinity model). --stream switches to the bounded-memory
// generator (trace/stream.hpp): records go straight to the sink chunk by
// chunk, so millions of users and a ~10M-name catalogue fit in a fixed
// footprint — the scale mode used by bench_replay_scale and the CI scale
// smoke. --format binary writes the "NDNPTRB1" chunked format, which
// replays parse ~10x faster than text. --convert streams an existing trace
// (either format, sniffed by magic) into --out under --format, counting —
// and bounding, per --max-malformed — malformed input lines.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "trace/stream.hpp"
#include "trace/trace.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--requests N] [--objects N] [--users N] [--domains N]\n"
               "          [--zipf S] [--duration SECONDS] [--seed N] [--out FILE]\n"
               "          [--format text|binary] [--stream] [--chunk N]\n"
               "       %s --convert IN --out OUT [--format text|binary]\n"
               "          [--max-malformed N]\n",
               argv0, argv0);
}

std::unique_ptr<ndnp::trace::TraceWriter> open_writer(const std::string& path,
                                                      const std::string& format,
                                                      std::size_t catalogue_size,
                                                      std::size_t chunk_records) {
  if (format == "binary")
    return std::make_unique<ndnp::trace::BinaryTraceWriter>(path, catalogue_size,
                                                            chunk_records);
  return std::make_unique<ndnp::trace::TextTraceWriter>(path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ndnp;
  trace::TraceGenConfig config;
  std::string out_path;
  std::string convert_path;
  std::string format = "text";
  bool stream = false;
  std::size_t chunk_records = 64 * 1024;
  std::uint64_t max_malformed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests")
      config.num_requests = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--objects")
      config.num_objects = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--users")
      config.num_users = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--domains")
      config.num_domains = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--zipf")
      config.zipf_exponent = std::atof(next());
    else if (arg == "--duration")
      config.duration_s = std::atof(next());
    else if (arg == "--seed")
      config.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--out")
      out_path = next();
    else if (arg == "--convert")
      convert_path = next();
    else if (arg == "--format") {
      format = next();
      if (format != "text" && format != "binary") {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--stream")
      stream = true;
    else if (arg == "--chunk")
      chunk_records = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--max-malformed")
      max_malformed = static_cast<std::uint64_t>(std::atoll(next()));
    else {
      usage(argv[0]);
      return 2;
    }
  }
  if (chunk_records == 0) {
    std::fprintf(stderr, "%s: --chunk must be positive\n", argv[0]);
    return 2;
  }

  try {
    if (!convert_path.empty()) {
      if (out_path.empty()) {
        std::fprintf(stderr, "%s: --convert requires --out\n", argv[0]);
        return 2;
      }
      trace::ParseOptions options;
      options.max_malformed = max_malformed;
      const auto source = trace::open_trace_source(convert_path, options);
      const auto sink =
          open_writer(out_path, format, source->catalogue_size(), chunk_records);
      const trace::ParseStats stats = trace::convert_trace(*source, *sink, chunk_records);
      std::fprintf(stderr,
                   "converted %s -> %s (%s): %llu records, %llu malformed line(s) skipped\n",
                   convert_path.c_str(), out_path.c_str(), format.c_str(),
                   static_cast<unsigned long long>(stats.records),
                   static_cast<unsigned long long>(stats.malformed));
      return 0;
    }

    if (stream) {
      // Bounded-memory generation: no full trace ever exists in memory.
      if (out_path.empty()) {
        std::fprintf(stderr, "%s: --stream requires --out\n", argv[0]);
        return 2;
      }
      const trace::SyntheticWorkload workload(config);
      const auto source = workload.open();
      const auto sink = open_writer(out_path, format, config.num_objects, chunk_records);
      const trace::ParseStats stats = trace::convert_trace(*source, *sink, chunk_records);
      std::fprintf(stderr, "streamed %llu requests over %zu objects to %s (%s)\n",
                   static_cast<unsigned long long>(stats.records), config.num_objects,
                   out_path.c_str(), format.c_str());
      return 0;
    }

    const trace::Trace tr = trace::generate_trace(config);
    std::fprintf(stderr, "generated %zu requests over %zu objects (%zu distinct requested)\n",
                 tr.size(), tr.catalogue_size, tr.distinct_names());
    if (out_path.empty()) {
      if (format == "binary") {
        std::fprintf(stderr, "%s: --format binary requires --out\n", argv[0]);
        return 2;
      }
      trace::write_trace(tr, std::cout);
    } else if (format == "binary") {
      trace::BinaryTraceWriter sink(out_path, tr.catalogue_size, chunk_records);
      for (const trace::TraceRecord& record : tr.records) sink.append(record);
      sink.close();
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
      }
      trace::write_trace(tr, out);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.what());
    return 1;
  }
  return 0;
}
