// trace_gen: generate a synthetic IRCache-like request trace to stdout (or
// a file), in the plain-text format parse_trace() reads.
//
//   trace_gen [--requests N] [--objects N] [--users N] [--domains N]
//             [--zipf S] [--duration SECONDS] [--seed N] [--out FILE]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "trace/trace.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--requests N] [--objects N] [--users N] [--domains N]\n"
               "          [--zipf S] [--duration SECONDS] [--seed N] [--out FILE]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ndnp;
  trace::TraceGenConfig config;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--requests")
      config.num_requests = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--objects")
      config.num_objects = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--users")
      config.num_users = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--domains")
      config.num_domains = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--zipf")
      config.zipf_exponent = std::atof(next());
    else if (arg == "--duration")
      config.duration_s = std::atof(next());
    else if (arg == "--seed")
      config.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--out")
      out_path = next();
    else {
      usage(argv[0]);
      return 2;
    }
  }

  const trace::Trace tr = trace::generate_trace(config);
  std::fprintf(stderr, "generated %zu requests over %zu objects (%zu distinct requested)\n",
               tr.size(), tr.catalogue_size, tr.distinct_names());
  if (out_path.empty()) {
    trace::write_trace(tr, std::cout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    trace::write_trace(tr, out);
  }
  return 0;
}
