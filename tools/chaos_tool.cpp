// chaos_tool: run seeded fault-injection fuzz episodes from the CLI.
//
//   chaos_tool [--mode both|chaos|diff] [--episodes N] [--seed S]
//              [--interests N] [--ops N] [--jobs J] [--verbose]
//              [--metrics-out PATH]
//
// "chaos" episodes exercise a random faulty topology end to end and audit
// the structural invariants; "diff" episodes cross-check a single Forwarder
// against the naive reference model op by op (see sim/chaos.hpp). Episodes
// are distributed over --jobs workers through the deterministic sweep
// runner, so results (and every digest) are byte-identical for any J.
//
// Exit status: 0 when every episode is clean, 1 otherwise. A failing
// episode prints the master seed and run index needed to replay it alone.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "sim/chaos.hpp"
#include "util/metrics.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--mode both|chaos|diff] [--episodes N] [--seed S]\n"
               "          [--interests N] [--ops N] [--jobs J] [--verbose]\n"
               "          [--metrics-out PATH]\n"
               "\n"
               "  --metrics-out PATH  write the aggregate episode counters as\n"
               "                      canonical metrics JSON to PATH\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ndnp;

  std::string mode = "both";
  std::size_t episodes = 200;
  std::uint64_t master_seed = 1;
  std::size_t interests = 400;
  std::size_t ops = 1500;
  std::size_t jobs = 1;
  bool verbose = false;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mode")
      mode = next();
    else if (arg == "--episodes")
      episodes = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--seed")
      master_seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--interests")
      interests = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--ops")
      ops = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--jobs")
      jobs = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--verbose")
      verbose = true;
    else if (arg == "--metrics-out")
      metrics_out = next();
    else {
      usage(argv[0]);
      return 2;
    }
  }
  if (mode != "both" && mode != "chaos" && mode != "diff") {
    usage(argv[0]);
    return 2;
  }

  runner::SweepOptions sweep;
  sweep.jobs = runner::resolve_jobs(jobs);
  sweep.master_seed = master_seed;

  int failures = 0;
  util::MetricsRegistry metrics;

  if (mode == "both" || mode == "chaos") {
    const std::vector<sim::ChaosEpisodeResult> results =
        runner::run_sweep<sim::ChaosEpisodeResult>(
            episodes, sweep, [interests](const runner::RunContext& ctx) {
              sim::ChaosEpisodeOptions options;
              options.seed = ctx.seed;
              options.interests = interests;
              return sim::run_chaos_episode(options);
            });
    std::uint64_t digest_chain = 0xcbf29ce484222325ULL;
    std::uint64_t faults_total = 0;
    std::uint64_t violations = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const sim::ChaosEpisodeResult& r = results[i];
      digest_chain = (digest_chain ^ r.digest) * 0x100000001b3ULL;
      faults_total += r.link_faults.total();
      violations += r.invariant_violations;
      if (!r.ok()) {
        ++failures;
        std::fprintf(stderr, "FAIL chaos episode %zu (master_seed=%llu): %s\n", i,
                     static_cast<unsigned long long>(master_seed), r.violation.c_str());
      } else if (verbose) {
        std::fprintf(stderr,
                     "chaos %zu: digest=%016llx forwarders=%zu data=%llu timeouts=%llu "
                     "nacks=%llu faults=%llu wipes=%llu squeezes=%llu events=%llu\n",
                     i, static_cast<unsigned long long>(r.digest), r.forwarders,
                     static_cast<unsigned long long>(r.data_received),
                     static_cast<unsigned long long>(r.timeouts),
                     static_cast<unsigned long long>(r.consumer_nacks),
                     static_cast<unsigned long long>(r.link_faults.total()),
                     static_cast<unsigned long long>(r.node_faults.cs_wipes),
                     static_cast<unsigned long long>(r.node_faults.pit_squeezes),
                     static_cast<unsigned long long>(r.events_processed));
      }
    }
    std::printf("chaos: %zu episodes, %llu faults injected, %llu invariant violations, "
                "digest=%016llx\n",
                results.size(), static_cast<unsigned long long>(faults_total),
                static_cast<unsigned long long>(violations),
                static_cast<unsigned long long>(digest_chain));
    metrics.counter("chaos.episodes").inc(results.size());
    metrics.counter("chaos.faults_injected").inc(faults_total);
    metrics.counter("chaos.invariant_violations").inc(violations);
    metrics.counter("chaos.digest_chain").inc(digest_chain);
  }

  if (mode == "both" || mode == "diff") {
    const std::vector<sim::DifferentialResult> results =
        runner::run_sweep<sim::DifferentialResult>(
            episodes, sweep, [ops](const runner::RunContext& ctx) {
              return sim::run_differential_episode(ctx.seed, ops);
            });
    std::size_t total_ops = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const sim::DifferentialResult& r = results[i];
      total_ops += r.ops;
      if (!r.ok()) {
        ++failures;
        std::fprintf(stderr, "FAIL diff episode %zu (master_seed=%llu): %s\n", i,
                     static_cast<unsigned long long>(master_seed),
                     r.first_divergence.c_str());
      }
    }
    std::printf("diff: %zu episodes, %zu ops, %s\n", results.size(), total_ops,
                failures == 0 ? "no divergence" : "DIVERGED");
    metrics.counter("diff.episodes").inc(results.size());
    metrics.counter("diff.ops").inc(total_ops);
  }

  if (!metrics_out.empty()) {
    metrics.counter("failures").inc(static_cast<std::uint64_t>(failures));
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", metrics_out.c_str());
      return 2;
    }
    out << metrics.snapshot().to_json() << '\n';
  }

  return failures == 0 ? 0 : 1;
}
