// telemetry_tool: drive the online telemetry detectors end to end and
// score them against labelled ground truth.
//
//   telemetry_tool --mode attack [--seed S] [--duration-ms N]
//                  [--attack-start-ms N] [--probe-period-ms N]
//                  [--window-ms W] [--min-recall R]
//                  [--telemetry-out PATH] [--sample-every MS]
//                  [--trace-out PATH]
//   telemetry_tool --mode clean  [--requests N] [--jobs J]
//                  [--max-alarms N] [--telemetry-out PATH]
//   telemetry_tool --mode score  --trace FILE.jsonl [--window-ms W]
//
// Modes:
//  * attack — run the labelled sequential-probing scenario
//    (attack/telemetry_scenario.hpp): honest Zipf traffic for the whole
//    run, a fixed-cadence private probe loop from --attack-start-ms on.
//    Alarms and attack_probe ground truth land in one capture, which is
//    joined into the per-detector precision/recall/latency scorecard
//    (sim::telemetry_scorecard). --min-recall gates the "any" row: exit 1
//    when the detectors miss the attack. This is the CI recall floor.
//  * clean — replay the Figure 5(a) workload (honest trace replay, seed
//    99, every scheme x cache-size cell) with telemetry armed and count
//    alarms. There is no attack here, so every alarm is false.
//    --max-alarms gates the total: the CI false-alarm ceiling.
//  * score — re-score an existing JSONL capture (e.g. from replay_tool
//    --trace-out) without re-running anything.
//
// See docs/OBSERVABILITY.md ("Online telemetry") for the workflow.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "attack/telemetry_scenario.hpp"
#include "runner/experiments.hpp"
#include "sim/trace_sinks.hpp"
#include "telemetry/telemetry.hpp"
#include "util/tracing.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --mode attack|clean|score [options]\n"
      "\n"
      "attack mode (default): labelled probe scenario -> detector scorecard\n"
      "  --seed S             scenario seed (default 7)\n"
      "  --duration-ms N      run length (default 30000)\n"
      "  --attack-start-ms N  when the probe loop wakes (default 10000)\n"
      "  --probe-period-ms F  probe cadence, fractional ok (default 5)\n"
      "  --window-ms F        scorecard join window (default 250)\n"
      "  --min-recall R       exit 1 if the 'any' detector recall < R\n"
      "  --trace-out PATH     also dump the joined capture as JSONL\n"
      "clean mode: Figure 5(a) replay (seed 99) with telemetry armed\n"
      "  --requests N         trace length per cell (default 60000)\n"
      "  --jobs J             sweep workers (default 1)\n"
      "  --max-alarms N       exit 1 if total alarms across cells > N\n"
      "score mode: score an existing capture\n"
      "  --trace FILE.jsonl   capture to score (required)\n"
      "  --window-ms F        scorecard join window (default 250)\n"
      "common\n"
      "  --telemetry-out PATH time-series export (.prom = Prometheus, else CSV)\n"
      "  --sample-every MS    sampling cadence (default 10)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ndnp;

  std::string mode = "attack";
  std::uint64_t seed = 7;
  double duration_ms = 30'000.0;
  double attack_start_ms = 10'000.0;
  double probe_period_ms = 5.0;
  double window_ms = 250.0;
  double min_recall = -1.0;
  double sample_every_ms = 10.0;
  std::size_t requests = 60'000;
  std::size_t jobs = 1;
  std::int64_t max_alarms = -1;
  std::string telemetry_out;
  std::string trace_out;
  std::string trace_in;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mode")
      mode = next();
    else if (arg == "--seed")
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--duration-ms")
      duration_ms = std::atof(next());
    else if (arg == "--attack-start-ms")
      attack_start_ms = std::atof(next());
    else if (arg == "--probe-period-ms")
      probe_period_ms = std::atof(next());
    else if (arg == "--window-ms")
      window_ms = std::atof(next());
    else if (arg == "--min-recall")
      min_recall = std::atof(next());
    else if (arg == "--sample-every")
      sample_every_ms = std::atof(next());
    else if (arg == "--requests")
      requests = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--jobs")
      jobs = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--max-alarms")
      max_alarms = std::atoll(next());
    else if (arg == "--telemetry-out")
      telemetry_out = next();
    else if (arg == "--trace-out")
      trace_out = next();
    else if (arg == "--trace")
      trace_in = next();
    else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (window_ms <= 0.0 || sample_every_ms <= 0.0) {
    std::fprintf(stderr, "error: --window-ms and --sample-every must be positive\n");
    return 2;
  }
  const auto window = static_cast<util::SimDuration>(window_ms * 1e6);

  if (mode == "attack") {
    attack::TelemetryScenarioConfig config;
    config.seed = seed;
    config.duration = static_cast<util::SimDuration>(duration_ms * 1e6);
    config.attack_start = static_cast<util::SimTime>(attack_start_ms * 1e6);
    config.probe_period = static_cast<util::SimDuration>(probe_period_ms * 1e6);

    telemetry::TelemetryOptions options;
    options.sample_every = static_cast<util::SimDuration>(sample_every_ms * 1e6);
    telemetry::TelemetryHub hub(options, "router");

    util::Tracer tracer;
    attack::TelemetryScenarioResult result{};
    {
      util::TracerBinding binding(&tracer);
      result = attack::run_telemetry_scenario(config, &hub);
    }

    std::printf("scenario: %llu honest requests (%llu data), %llu probes (%llu data)\n",
                static_cast<unsigned long long>(result.honest_requests),
                static_cast<unsigned long long>(result.honest_data),
                static_cast<unsigned long long>(result.probes),
                static_cast<unsigned long long>(result.probe_data));
    std::printf("router: %llu exposed hits, %llu delayed hits, %llu lookups into telemetry\n",
                static_cast<unsigned long long>(result.exposed_hits),
                static_cast<unsigned long long>(result.delayed_hits),
                static_cast<unsigned long long>(hub.lookups()));

    const std::vector<sim::FlatEvent> events = sim::flatten(tracer);
    const sim::TelemetryScorecard card = sim::telemetry_scorecard(events, window);
    std::printf("%s", card.format_table().c_str());

    if (!telemetry_out.empty()) hub.recorder().write_file(telemetry_out);
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        std::fprintf(stderr, "error: cannot open %s\n", trace_out.c_str());
        return 2;
      }
      sim::write_trace_jsonl(events, out);
    }

    if (min_recall >= 0.0 && card.any().recall < min_recall) {
      std::fprintf(stderr, "FAIL: any-detector recall %.4f < floor %.4f\n", card.any().recall,
                   min_recall);
      return 1;
    }
    return 0;
  }

  if (mode == "clean") {
    runner::Fig5aConfig config;
    config.trace_requests = requests;
    config.trace_objects = requests;
    config.jobs = jobs;

    telemetry::SweepTelemetryCapture capture;
    capture.out_path = telemetry_out;
    capture.options.sample_every = static_cast<util::SimDuration>(sample_every_ms * 1e6);
    config.telemetry = &capture;

    const runner::Fig5aResult result = runner::run_fig5a(config);

    std::uint64_t lookups = 0;
    std::uint64_t alarms = 0;
    std::uint64_t by_kind[telemetry::kDetectorKinds] = {};
    for (const auto& hub : capture.runs) {
      if (hub == nullptr) continue;
      lookups += hub->lookups();
      alarms += hub->alarms_total();
      for (std::size_t k = 0; k < telemetry::kDetectorKinds; ++k)
        by_kind[k] += hub->alarms(static_cast<telemetry::DetectorKind>(k));
    }
    std::printf("clean fig5a: %zu cells, %zu trace requests/cell, %llu lookups\n",
                capture.runs.size(), result.trace_size,
                static_cast<unsigned long long>(lookups));
    for (std::size_t k = 0; k < telemetry::kDetectorKinds; ++k)
      std::printf("  %-20s %llu alarms\n",
                  std::string(telemetry::to_string(static_cast<telemetry::DetectorKind>(k)))
                      .c_str(),
                  static_cast<unsigned long long>(by_kind[k]));
    std::printf("false alarms total: %llu\n", static_cast<unsigned long long>(alarms));

    if (max_alarms >= 0 && alarms > static_cast<std::uint64_t>(max_alarms)) {
      std::fprintf(stderr, "FAIL: %llu false alarms > ceiling %lld\n",
                   static_cast<unsigned long long>(alarms),
                   static_cast<long long>(max_alarms));
      return 1;
    }
    return 0;
  }

  if (mode == "score") {
    if (trace_in.empty()) {
      usage(argv[0]);
      return 2;
    }
    std::ifstream in(trace_in);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", trace_in.c_str());
      return 2;
    }
    std::vector<sim::FlatEvent> events;
    try {
      events = sim::parse_trace_jsonl(in);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "%s: %s\n", trace_in.c_str(), ex.what());
      return 2;
    }
    const sim::TelemetryScorecard card = sim::telemetry_scorecard(events, window);
    std::printf("%s", card.format_table().c_str());
    return 0;
  }

  usage(argv[0]);
  return 2;
}
