// trace_inspect: read a flight-recorder JSONL capture (--trace-out foo.jsonl
// from a bench, replay_tool, or a sweep) and report what happened in it.
//
//   trace_inspect [--summary] [--forensics] [--name PREFIX] FILE.jsonl [...]
//
// By default both reports print:
//  * summary — event counts per type, per node, and per component, plus the
//    capture's time span; a quick sanity check that instrumentation fired.
//  * forensics — when the capture holds attack_probe events, each probe is
//    joined against the router's ground-truth cs_lookup / policy_decision
//    timeline and given a verdict (true hit, privacy-delayed hit, simulated
//    miss, true miss). This is the paper's Fig. 3 cache-probing attack seen
//    from the router's side: what the adversary measured vs what the cache
//    actually did, and whether the privacy policy fooled it.
//
// Only the JSONL format is parseable here; Chrome trace-event captures are
// for Perfetto (see docs/OBSERVABILITY.md).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sim/trace_sinks.hpp"
#include "util/logging.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--summary] [--forensics] [--name PREFIX]\n"
               "          [--log-level error|warn|info|debug|trace] FILE.jsonl [...]\n"
               "\n"
               "  --summary    print only the event-count summary\n"
               "  --forensics  print only the attack forensics report\n"
               "  --name P     restrict to events whose content name starts with P\n"
               "  --log-level  stderr logging threshold (default: warn)\n",
               argv0);
}

void print_summary(const std::string& path, const std::vector<ndnp::sim::FlatEvent>& events) {
  using ndnp::util::SimTime;
  std::map<std::string, std::size_t> by_type;
  std::map<std::string, std::size_t> by_node;
  std::map<std::string, std::size_t> by_comp;
  SimTime t_min = 0;
  SimTime t_max = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ndnp::sim::FlatEvent& ev = events[i];
    ++by_type[ev.type];
    ++by_node[ev.node];
    ++by_comp[ev.comp];
    if (i == 0 || ev.t < t_min) t_min = ev.t;
    if (i == 0 || ev.t > t_max) t_max = ev.t;
  }
  // Rates use the capture's own span; a single-event (or empty) capture has
  // no span, so the rate column is suppressed rather than divided by zero.
  const double span_s = events.empty() ? 0.0 : static_cast<double>(t_max - t_min) / 1e9;
  std::printf("%s: %zu events", path.c_str(), events.size());
  if (!events.empty()) {
    std::printf(", t=[%.3f ms, %.3f ms]", static_cast<double>(t_min) / 1e6,
                static_cast<double>(t_max) / 1e6);
    if (span_s > 0.0)
      std::printf(", %.1f events/sec", static_cast<double>(events.size()) / span_s);
  }
  std::printf("\n");
  std::printf("  by type:\n");
  for (const auto& [type, n] : by_type) {
    std::printf("    %-18s %zu", type.c_str(), n);
    if (span_s > 0.0) std::printf("  (%.1f/sec)", static_cast<double>(n) / span_s);
    std::printf("\n");
  }
  std::printf("  by node:\n");
  for (const auto& [node, n] : by_node) std::printf("    %-18s %zu\n", node.c_str(), n);
  std::printf("  by component:\n");
  for (const auto& [comp, n] : by_comp) std::printf("    %-18s %zu\n", comp.c_str(), n);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ndnp;

  bool want_summary = false;
  bool want_forensics = false;
  std::string name_prefix;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--summary")
      want_summary = true;
    else if (arg == "--forensics")
      want_forensics = true;
    else if (arg == "--name")
      name_prefix = next();
    else if (arg == "--log-level") {
      const char* value = next();
      util::LogLevel level;
      if (!util::parse_log_level(value, level)) {
        std::fprintf(stderr, "%s: unknown log level '%s'\n", argv[0], value);
        return 2;
      }
      util::set_log_level(level);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
      return 2;
    } else
      paths.push_back(arg);
  }
  if (paths.empty()) {
    usage(argv[0]);
    return 2;
  }
  // Neither flag given: show everything.
  if (!want_summary && !want_forensics) want_summary = want_forensics = true;

  int rc = 0;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const std::string& path = paths[p];
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      rc = 1;
      continue;
    }
    std::vector<sim::FlatEvent> events;
    try {
      events = sim::parse_trace_jsonl(in);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), ex.what());
      rc = 1;
      continue;
    }
    if (!name_prefix.empty()) {
      std::vector<sim::FlatEvent> kept;
      kept.reserve(events.size());
      for (sim::FlatEvent& ev : events)
        if (ev.name.compare(0, name_prefix.size(), name_prefix) == 0)
          kept.push_back(std::move(ev));
      events = std::move(kept);
    }

    if (p != 0) std::printf("\n");
    if (want_summary) print_summary(path, events);
    if (want_forensics) {
      const sim::ForensicsReport report = sim::probe_forensics(events);
      if (!report.probes.empty()) {
        if (want_summary) std::printf("\n");
        std::printf("%s", report.format_table().c_str());
      } else if (!want_summary) {
        std::printf("%s: no attack_probe events\n", path.c_str());
      }
    }
  }
  return rc;
}
