// ndnp_lint — the project-rule static analyzer (docs/STATIC_ANALYSIS.md).
//
// Scans .cpp/.hpp sources with the repository rule pack (src/lint): the
// determinism contract over the simulation tree, allocation hygiene
// outside the allocator layer, compile-out macro hygiene, and header
// hygiene. Findings are silenced per line with
// `// NDNP-LINT-ALLOW(rule): reason` or grandfathered in a baseline file.
//
// Usage:
//   ndnp_lint [options] <path>...
//     --root DIR            repo root paths are reported relative to (.)
//     --baseline FILE       grandfathered findings to subtract
//     --write-baseline FILE regenerate the baseline from current findings
//     --json                canonical JSON report instead of text
//     --list-rules          print the rule pack and exit
//
// Exit codes: 0 clean; 1 non-baselined findings; 2 stale baseline entries
// (the fix landed — shrink the baseline); 3 usage or I/O error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/engine.hpp"

namespace {

using namespace ndnp;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--baseline FILE] [--write-baseline FILE] [--json] "
               "[--list-rules] <path>...\n",
               argv0);
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  bool json = false;
  bool list_rules = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ndnp_lint: %s needs a value\n", flag);
        std::exit(3);
      }
      return argv[++i];
    };
    if (arg == "--root")
      root = value("--root");
    else if (arg == "--baseline")
      baseline_path = value("--baseline");
    else if (arg == "--write-baseline")
      write_baseline_path = value("--write-baseline");
    else if (arg == "--json")
      json = true;
    else if (arg == "--list-rules")
      list_rules = true;
    else if (arg == "--help" || arg == "-h")
      return usage(argv[0]);
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ndnp_lint: unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  const lint::LintConfig config = lint::LintConfig::repo_default();

  if (list_rules) {
    for (const auto& rule : config.rules)
      std::printf("%-32s %s\n", std::string(rule->id()).c_str(),
                  std::string(rule->description()).c_str());
    std::printf("%-32s %s\n", "allow-missing-reason",
                "engine rule: NDNP-LINT-ALLOW markers must carry a written reason");
    return 0;
  }
  if (paths.empty()) return usage(argv[0]);

  try {
    lint::LintReport report = lint::lint_paths(root, paths, config);

    if (!write_baseline_path.empty()) {
      std::ofstream out(write_baseline_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "ndnp_lint: cannot write %s\n", write_baseline_path.c_str());
        return 3;
      }
      out << lint::Baseline::from_findings(report.findings).serialize();
      std::fprintf(stderr, "ndnp_lint: wrote %zu baseline entr%s to %s\n",
                   report.findings.size(), report.findings.size() == 1 ? "y" : "ies",
                   write_baseline_path.c_str());
      return 0;
    }

    if (!baseline_path.empty()) {
      std::ifstream in(baseline_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "ndnp_lint: cannot read baseline %s\n", baseline_path.c_str());
        return 3;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      lint::apply_baseline(report, lint::Baseline::parse(buffer.str()));
    }

    const std::string output = json ? report.to_json() + "\n" : report.to_text();
    std::fwrite(output.data(), 1, output.size(), stdout);

    if (!report.findings.empty()) return 1;
    if (!report.stale_baseline.empty()) return 2;
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ndnp_lint: %s\n", error.what());
    return 3;
  }
}
