// replay_tool: replay a trace file (trace_gen format; real proxy logs can
// be converted to it) through a router cache under a chosen privacy scheme
// and report hit rates and latency.
//
//   replay_tool --trace FILE [--policy none|always-delay|uniform|expo|naive]
//               [--cache N] [--eviction lru|fifo|lfu|random]
//               [--private-fraction F] [--k N] [--epsilon E] [--delta D]
//               [--admission P] [--seed N]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/policies.hpp"
#include "core/theory.hpp"
#include "trace/replayer.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --trace FILE [--policy none|always-delay|uniform|expo|naive]\n"
      "          [--cache N] [--eviction lru|fifo|lfu|random] [--private-fraction F]\n"
      "          [--k N] [--epsilon E] [--delta D] [--admission P] [--seed N]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ndnp;

  std::string trace_path;
  std::string policy_name = "none";
  trace::ReplayConfig config;
  std::int64_t k = 5;
  double epsilon = 0.005;
  double delta = 0.05;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace")
      trace_path = next();
    else if (arg == "--policy")
      policy_name = next();
    else if (arg == "--cache")
      config.cache_capacity = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--eviction") {
      const std::string ev = next();
      if (ev == "lru")
        config.eviction = cache::EvictionPolicy::kLru;
      else if (ev == "fifo")
        config.eviction = cache::EvictionPolicy::kFifo;
      else if (ev == "lfu")
        config.eviction = cache::EvictionPolicy::kLfu;
      else if (ev == "random")
        config.eviction = cache::EvictionPolicy::kRandom;
      else {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--private-fraction")
      config.private_fraction = std::atof(next());
    else if (arg == "--k")
      k = std::atoll(next());
    else if (arg == "--epsilon")
      epsilon = std::atof(next());
    else if (arg == "--delta")
      delta = std::atof(next());
    else if (arg == "--admission")
      config.cache_admission_probability = std::atof(next());
    else if (arg == "--seed")
      config.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else {
      usage(argv[0]);
      return 2;
    }
  }

  if (trace_path.empty()) {
    usage(argv[0]);
    return 2;
  }
  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
    return 1;
  }
  const trace::Trace tr = trace::parse_trace(in);
  std::fprintf(stderr, "loaded %zu requests (%zu distinct names)\n", tr.size(),
               tr.distinct_names());

  if (policy_name == "none") {
    config.policy_factory = [] { return std::make_unique<core::NoPrivacyPolicy>(); };
  } else if (policy_name == "always-delay") {
    config.policy_factory = [] {
      return std::make_unique<core::AlwaysDelayPolicy>(
          core::AlwaysDelayPolicy::content_specific());
    };
  } else if (policy_name == "uniform") {
    const std::int64_t domain = core::uniform_domain_for_delta(k, delta);
    std::fprintf(stderr, "Uniform-Random-Cache: K=%lld (k=%lld delta=%.3f)\n",
                 static_cast<long long>(domain), static_cast<long long>(k), delta);
    config.policy_factory = [domain, seed = config.seed] {
      return core::RandomCachePolicy::uniform(domain, seed + 1);
    };
  } else if (policy_name == "expo") {
    const auto params = core::solve_expo_params(k, epsilon, delta);
    if (!params) {
      std::fprintf(stderr, "(k=%lld, eps=%.4f, delta=%.4f) unattainable\n",
                   static_cast<long long>(k), epsilon, delta);
      return 1;
    }
    std::fprintf(stderr, "Exponential-Random-Cache: alpha=%.6f K=%lld\n", params->alpha,
                 static_cast<long long>(params->domain));
    config.policy_factory = [params = *params, seed = config.seed] {
      return core::RandomCachePolicy::exponential(params.alpha, params.domain, seed + 1);
    };
  } else if (policy_name == "naive") {
    config.policy_factory = [k] { return std::make_unique<core::NaiveThresholdPolicy>(k); };
  } else {
    usage(argv[0]);
    return 2;
  }

  const trace::ReplayResult result = trace::replay(tr, config);
  std::printf("policy=%s cache=%zu eviction=%s private=%.0f%% admission=%.2f\n",
              policy_name.c_str(), config.cache_capacity,
              std::string(cache::to_string(config.eviction)).c_str(),
              config.private_fraction * 100.0, config.cache_admission_probability);
  std::printf("requests            %llu\n",
              static_cast<unsigned long long>(result.stats.requests));
  std::printf("exposed hits        %llu (%.2f%%)\n",
              static_cast<unsigned long long>(result.stats.exposed_hits),
              result.hit_rate_pct());
  std::printf("delayed hits        %llu\n",
              static_cast<unsigned long long>(result.stats.delayed_hits));
  std::printf("simulated misses    %llu\n",
              static_cast<unsigned long long>(result.stats.simulated_misses));
  std::printf("true misses         %llu\n",
              static_cast<unsigned long long>(result.stats.true_misses));
  std::printf("served from cache   %.2f%%\n", result.cache_served_pct());
  std::printf("mean response       %.3f ms\n", result.mean_response_ms);
  std::printf("private requests    %llu\n",
              static_cast<unsigned long long>(result.private_requests));
  return 0;
}
