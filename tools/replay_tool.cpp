// replay_tool: replay one or more trace files (trace_gen format; real proxy
// logs can be converted to it) through a router cache under a chosen
// privacy scheme and report hit rates and latency.
//
//   replay_tool --trace FILE [--trace FILE ...] [--jobs N]
//               [--policy none|always-delay|uniform|expo|naive]
//               [--cache N] [--eviction lru|fifo|lfu|random]
//               [--private-fraction F] [--k N] [--epsilon E] [--delta D]
//               [--admission P] [--seed N] [--json]
//               [--shards N] [--chunk N] [--max-malformed N]
//               [--trace-out PATH] [--trace-filter PREFIX] [--log-level L]
//
// With several --trace files the replays fan across --jobs threads on the
// deterministic runner (each trace gets its own engine and RNG); results
// print in trace order, identical for any jobs count. --json replaces the
// human-readable tables with the merged metrics JSON (per-trace snapshots +
// cross-trace aggregate), so stdout is directly machine-parseable.
//
// --shards N switches to the streaming sharded replayer (docs/SCALE.md):
// each trace is streamed from disk — never materialized — through N
// independent edge-router shards (users pinned by stable hash), fanned
// across --jobs threads. The merged output is byte-identical for any
// --jobs value. Trace files may be plain text or the chunked binary format
// (sniffed by magic); --chunk bounds the per-shard record buffer.
// --max-malformed tolerates up to N malformed input lines (counted and
// reported; default 0 = fail on the first).
//
// --trace-out captures a flight-recorder event stream per replay (".jsonl"
// for the line-oriented dump readable by trace_inspect, anything else for
// Chrome trace-event JSON loadable in Perfetto); --trace-filter restricts
// the capture to content names with the given prefix. Capturing never
// changes replay results (see docs/OBSERVABILITY.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/policies.hpp"
#include "core/theory.hpp"
#include "runner/experiments.hpp"
#include "runner/runner.hpp"
#include "runner/sharded_replay.hpp"
#include "trace/replayer.hpp"
#include "trace/stream.hpp"
#include "util/logging.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --trace FILE [--trace FILE ...] [--jobs N]\n"
      "          [--policy none|always-delay|uniform|expo|naive]\n"
      "          [--cache N] [--eviction lru|fifo|lfu|random] [--private-fraction F]\n"
      "          [--k N] [--epsilon E] [--delta D] [--admission P] [--seed N] [--json]\n"
      "          [--shards N] [--chunk N] [--max-malformed N]\n"
      "          [--trace-out PATH] [--trace-filter PREFIX]\n"
      "          [--log-level error|warn|info|debug|trace]\n"
      "\n"
      "  --shards N            stream each trace through N independent router\n"
      "                        shards (users pinned by stable hash) instead of\n"
      "                        one in-memory router; byte-identical merged\n"
      "                        output for any --jobs value\n"
      "  --chunk N             records buffered per shard pass (default 65536)\n"
      "  --max-malformed N     tolerate up to N malformed trace lines\n"
      "                        (counted and reported; default 0)\n"
      "  --trace-out PATH      write a flight-recorder capture per replay; a\n"
      "                        .jsonl suffix selects the JSONL event dump\n"
      "                        (readable by trace_inspect), anything else the\n"
      "                        Chrome trace-event JSON for Perfetto\n"
      "  --trace-filter PREFIX capture only events whose content name starts\n"
      "                        with PREFIX\n"
      "  --telemetry-out PATH  sample the online telemetry time series per\n"
      "                        replay (detector statistics, occupancy gauges);\n"
      "                        a .prom suffix selects Prometheus text\n"
      "                        exposition, anything else CSV (in-memory path\n"
      "                        only; ignored with --shards)\n"
      "  --sample-every MS     telemetry sampling cadence in sim-time\n"
      "                        milliseconds (default 10)\n"
      "  --metrics-out PATH    write the final merged metrics JSON to PATH in\n"
      "                        addition to the normal stdout report\n"
      "  --log-level L         stderr logging threshold (default: warn)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ndnp;

  std::vector<std::string> trace_paths;
  std::string policy_name = "none";
  trace::ReplayConfig config;
  std::int64_t k = 5;
  double epsilon = 0.005;
  double delta = 0.05;
  std::size_t jobs = 1;
  std::size_t shards = 0;
  std::size_t chunk_records = 64 * 1024;
  std::uint64_t max_malformed = 0;
  bool emit_json = false;
  runner::SweepTraceCapture capture;
  telemetry::SweepTelemetryCapture telemetry_capture;
  double sample_every_ms = 10.0;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace")
      trace_paths.emplace_back(next());
    else if (arg == "--jobs") {
      const char* value = next();
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "%s: --jobs expects a number, got '%s'\n", argv[0], value);
        return 2;
      }
      jobs = runner::resolve_jobs(static_cast<std::size_t>(parsed));
    }
    else if (arg == "--json")
      emit_json = true;
    else if (arg == "--shards")
      shards = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--chunk")
      chunk_records = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--max-malformed")
      max_malformed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--policy")
      policy_name = next();
    else if (arg == "--cache")
      config.cache_capacity = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--eviction") {
      const std::string ev = next();
      if (ev == "lru")
        config.eviction = cache::EvictionPolicy::kLru;
      else if (ev == "fifo")
        config.eviction = cache::EvictionPolicy::kFifo;
      else if (ev == "lfu")
        config.eviction = cache::EvictionPolicy::kLfu;
      else if (ev == "random")
        config.eviction = cache::EvictionPolicy::kRandom;
      else {
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--private-fraction")
      config.private_fraction = std::atof(next());
    else if (arg == "--k")
      k = std::atoll(next());
    else if (arg == "--epsilon")
      epsilon = std::atof(next());
    else if (arg == "--delta")
      delta = std::atof(next());
    else if (arg == "--admission")
      config.cache_admission_probability = std::atof(next());
    else if (arg == "--seed")
      config.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--trace-out")
      capture.out_path = next();
    else if (arg == "--trace-filter")
      capture.filter = next();
    else if (arg == "--telemetry-out")
      telemetry_capture.out_path = next();
    else if (arg == "--sample-every")
      sample_every_ms = std::atof(next());
    else if (arg == "--metrics-out")
      metrics_out = next();
    else if (arg == "--log-level") {
      const char* value = next();
      util::LogLevel level;
      if (!util::parse_log_level(value, level)) {
        std::fprintf(stderr, "%s: unknown log level '%s'\n", argv[0], value);
        return 2;
      }
      util::set_log_level(level);
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (trace_paths.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::vector<trace::Trace> traces;
  std::vector<std::uint64_t> trace_malformed;
  if (shards == 0) {
    // In-memory path; the sharded path streams from disk and never loads.
    traces.reserve(trace_paths.size());
    for (const std::string& path : trace_paths) {
      trace::ParseOptions options;
      options.max_malformed = max_malformed;
      try {
        // open_trace_source sniffs the format, so text and binary traces
        // both work here (same as the sharded path).
        const auto source = trace::open_trace_source(path, options);
        trace::Trace tr;
        tr.catalogue_size = source->catalogue_size();
        std::vector<trace::TraceRecord> chunk;
        while (source->next_chunk(chunk, 64 * 1024))
          tr.records.insert(tr.records.end(), std::make_move_iterator(chunk.begin()),
                            std::make_move_iterator(chunk.end()));
        trace_malformed.push_back(source->stats().malformed);
        traces.push_back(std::move(tr));
      } catch (const trace::TraceParseError& error) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), error.what());
        return 1;
      }
      std::fprintf(stderr, "loaded %s: %zu requests (%zu distinct names", path.c_str(),
                   traces.back().size(), traces.back().distinct_names());
      if (trace_malformed.back() > 0)
        std::fprintf(stderr, ", %llu malformed line(s) skipped",
                     static_cast<unsigned long long>(trace_malformed.back()));
      std::fprintf(stderr, ")\n");
    }
  }

  if (policy_name == "none") {
    config.policy_factory = [] { return std::make_unique<core::NoPrivacyPolicy>(); };
  } else if (policy_name == "always-delay") {
    config.policy_factory = [] {
      return std::make_unique<core::AlwaysDelayPolicy>(
          core::AlwaysDelayPolicy::content_specific());
    };
  } else if (policy_name == "uniform") {
    const std::int64_t domain = core::uniform_domain_for_delta(k, delta);
    std::fprintf(stderr, "Uniform-Random-Cache: K=%lld (k=%lld delta=%.3f)\n",
                 static_cast<long long>(domain), static_cast<long long>(k), delta);
    config.policy_factory = [domain, seed = config.seed] {
      return core::RandomCachePolicy::uniform(domain, seed + 1);
    };
  } else if (policy_name == "expo") {
    const auto params = core::solve_expo_params(k, epsilon, delta);
    if (!params) {
      std::fprintf(stderr, "(k=%lld, eps=%.4f, delta=%.4f) unattainable\n",
                   static_cast<long long>(k), epsilon, delta);
      return 1;
    }
    std::fprintf(stderr, "Exponential-Random-Cache: alpha=%.6f K=%lld\n", params->alpha,
                 static_cast<long long>(params->domain));
    config.policy_factory = [params = *params, seed = config.seed] {
      return core::RandomCachePolicy::exponential(params.alpha, params.domain, seed + 1);
    };
  } else if (policy_name == "naive") {
    config.policy_factory = [k] { return std::make_unique<core::NaiveThresholdPolicy>(k); };
  } else {
    usage(argv[0]);
    return 2;
  }

  if (shards > 0) {
    if (!telemetry_capture.out_path.empty())
      std::fprintf(stderr, "warning: --telemetry-out is ignored with --shards\n");
    // Streaming sharded replay, one trace at a time (each already fans its
    // shards across --jobs threads).
    runner::ShardedReplayConfig sharded;
    sharded.shards = shards;
    sharded.jobs = jobs;
    sharded.chunk_records = chunk_records;
    sharded.master_seed = config.seed;
    sharded.replay = config;
    for (std::size_t t = 0; t < trace_paths.size(); ++t) {
      const std::string& path = trace_paths[t];
      trace::ParseOptions options;
      options.max_malformed = max_malformed;
      runner::ShardedReplayResult result;
      try {
        result = runner::replay_sharded(
            [&path, options] { return trace::open_trace_source(path, options); }, sharded);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), error.what());
        return 1;
      }
      if (!metrics_out.empty()) {
        // One file per trace (".runN" spliced in when replaying several).
        std::string out_path = metrics_out;
        if (trace_paths.size() > 1) {
          const std::size_t dot = out_path.find_last_of('.');
          const std::string tag = ".run" + std::to_string(t);
          out_path = dot == std::string::npos ? out_path + tag
                                              : out_path.substr(0, dot) + tag +
                                                    out_path.substr(dot);
        }
        std::ofstream out(out_path);
        out << result.merged_json() << '\n';
        if (!out) {
          std::fprintf(stderr, "%s: cannot write %s\n", argv[0], out_path.c_str());
          return 1;
        }
      }
      if (emit_json) {
        std::printf("%s\n", result.merged_json().c_str());
        continue;
      }
      if (trace_paths.size() > 1) std::printf("=== trace %s ===\n", path.c_str());
      std::printf("policy=%s shards=%zu jobs=%zu cache=%zu eviction=%s private=%.0f%%\n",
                  policy_name.c_str(), shards, jobs, config.cache_capacity,
                  std::string(cache::to_string(config.eviction)).c_str(),
                  config.private_fraction * 100.0);
      const auto merged_counter = [&result](const char* name) -> unsigned long long {
        const auto it = result.merged.counters.find(name);
        return it == result.merged.counters.end() ? 0ULL : it->second;
      };
      std::printf("records             %llu\n",
                  static_cast<unsigned long long>(result.records));
      std::printf("malformed lines     %llu\n",
                  static_cast<unsigned long long>(result.malformed_records));
      std::printf("exposed hits        %llu (%.2f%%)\n", merged_counter("engine.exposed_hits"),
                  result.merged.gauges.at("replay.hit_rate_pct"));
      std::printf("delayed hits        %llu\n", merged_counter("engine.delayed_hits"));
      std::printf("simulated misses    %llu\n", merged_counter("engine.simulated_misses"));
      std::printf("true misses         %llu\n", merged_counter("engine.true_misses"));
      std::printf("served from cache   %.2f%%\n",
                  result.merged.gauges.at("replay.cache_served_pct"));
      std::printf("mean response       %.3f ms\n",
                  result.merged.gauges.at("replay.mean_response_ms"));
      std::printf("wall seconds        %.3f\n", result.wall_seconds);
    }
    return 0;
  }

  // One run per trace, fanned across --jobs threads; each run gets a fresh
  // engine via the policy factory, so traces never share mutable state.
  struct TraceRunResult {
    trace::ReplayResult replay;
    util::MetricsSnapshot metrics;
  };
  runner::SweepOptions options;
  options.jobs = jobs;
  options.master_seed = config.seed;
  if (!capture.out_path.empty() || !capture.filter.empty()) options.capture = &capture;
  if (!telemetry_capture.out_path.empty()) {
    if (sample_every_ms <= 0.0) {
      std::fprintf(stderr, "%s: --sample-every must be positive\n", argv[0]);
      return 2;
    }
    telemetry_capture.options.sample_every =
        static_cast<util::SimDuration>(sample_every_ms * 1e6);
    options.telemetry = &telemetry_capture;
  }
  const std::vector<TraceRunResult> results = runner::run_sweep<TraceRunResult>(
      traces.size(), options, [&](const runner::RunContext& ctx) {
        util::MetricsRegistry registry;
        trace::ReplayConfig run_config = config;
        run_config.metrics = &registry;
        if (options.telemetry != nullptr)
          run_config.telemetry = options.telemetry->run_hub(ctx.run_index);
        TraceRunResult out;
        out.replay = trace::replay(traces[ctx.run_index], run_config);
        out.metrics = registry.snapshot();
        out.metrics.counters["replay.private_requests"] = out.replay.private_requests;
        out.metrics.counters["replay.malformed_records"] = trace_malformed[ctx.run_index];
        out.metrics.gauges["replay.hit_rate_pct"] = out.replay.hit_rate_pct();
        out.metrics.gauges["replay.cache_served_pct"] = out.replay.cache_served_pct();
        out.metrics.gauges["replay.mean_response_ms"] = out.replay.mean_response_ms;
        return out;
      });

  runner::SweepResult sweep;
  for (const TraceRunResult& r : results) sweep.runs.push_back(r.metrics);
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    out << sweep.merged_json() << '\n';
    if (!out) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0], metrics_out.c_str());
      return 1;
    }
  }
  if (emit_json) {
    // Pure JSON on stdout so the output pipes straight into a parser.
    std::printf("%s\n", sweep.merged_json().c_str());
    return 0;
  }

  for (std::size_t t = 0; t < results.size(); ++t) {
    const trace::ReplayResult& result = results[t].replay;
    if (results.size() > 1) std::printf("=== trace %s ===\n", trace_paths[t].c_str());
    std::printf("policy=%s cache=%zu eviction=%s private=%.0f%% admission=%.2f\n",
                policy_name.c_str(), config.cache_capacity,
                std::string(cache::to_string(config.eviction)).c_str(),
                config.private_fraction * 100.0, config.cache_admission_probability);
    std::printf("requests            %llu\n",
                static_cast<unsigned long long>(result.stats.requests));
    std::printf("exposed hits        %llu (%.2f%%)\n",
                static_cast<unsigned long long>(result.stats.exposed_hits),
                result.hit_rate_pct());
    std::printf("delayed hits        %llu\n",
                static_cast<unsigned long long>(result.stats.delayed_hits));
    std::printf("simulated misses    %llu\n",
                static_cast<unsigned long long>(result.stats.simulated_misses));
    std::printf("true misses         %llu\n",
                static_cast<unsigned long long>(result.stats.true_misses));
    std::printf("served from cache   %.2f%%\n", result.cache_served_pct());
    std::printf("mean response       %.3f ms\n", result.mean_response_ms);
    std::printf("private requests    %llu\n",
                static_cast<unsigned long long>(result.private_requests));
    std::printf("malformed lines     %llu\n",
                static_cast<unsigned long long>(trace_malformed[t]));
  }

  return 0;
}
