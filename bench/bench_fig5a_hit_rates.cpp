// Reproduces Figure 5(a): cache hit rate vs cache size for the four cache
// management schemes, replaying a proxy trace (synthetic IRCache-like; see
// DESIGN.md substitution table).
//
// Parameters follow Section VII: LRU eviction, 20 % of content private,
// k = 5, eps = 0.005, cache sizes {2000, 4000, 8000, 16000, 32000, Inf}.
// Expected shape: No-Privacy > Exponential > Uniform > Always-Delay at
// every size, all rising with cache size.
//
// The scheme x size grid runs on the deterministic parallel runner
// (runner::run_fig5a); pass --jobs N to fan the 24 replays across N
// threads. Stdout is byte-identical for every jobs value (the golden
// vectors under tests/golden/ pin it).
#include <cstdio>

#include "bench_common.hpp"
#include "runner/experiments.hpp"

int main(int argc, char** argv) {
  using namespace ndnp;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv);
  const std::size_t jobs = options.jobs;
  bench::print_header("Figure 5(a)", "cache hit rates by scheme and cache size (trace replay)");

  runner::Fig5aConfig config;
  config.trace_requests = bench::scale_from_env("NDNP_TRACE_REQUESTS", 200'000);
  config.trace_objects = bench::scale_from_env("NDNP_TRACE_OBJECTS", 200'000);
  config.jobs = jobs;
  config.upstream_loss = options.upstream_loss();
  config.upstream_retry_penalty = options.upstream_retry_penalty();
  runner::SweepTraceCapture capture;
  config.capture = options.configure(capture);
  telemetry::SweepTelemetryCapture telemetry_capture;
  config.telemetry = options.configure_telemetry(telemetry_capture);

  runner::Fig5aResult result;
  try {
    result = runner::run_fig5a(config);
  } catch (const std::exception& e) {
    std::printf("%s\n", e.what());
    return 1;
  }

  std::printf("trace: %zu requests, %zu users, %zu distinct objects (synthetic IRCache-like)\n",
              result.trace_size, trace::TraceGenConfig{}.num_users, result.trace_distinct);
  std::printf("k=%lld eps=%.3f delta=%.2f -> Uniform K=%lld; Expo alpha=%.6f K=%lld\n",
              static_cast<long long>(config.anonymity_k), config.epsilon, config.delta,
              static_cast<long long>(result.uniform_domain), result.expo.alpha,
              static_cast<long long>(result.expo.domain));
  std::printf("private fraction: %.2f, eviction: LRU\n", config.private_fraction);
  if (config.upstream_loss.enabled())
    std::printf("degraded network: %.1f%% upstream burst loss (mean burst %.1f pkts, "
                "retry penalty %.0f ms)\n",
                100.0 * config.upstream_loss.stationary_loss(), options.net_burst,
                options.net_retry_ms);
  std::printf("\n%s", result.format_table().c_str());
  if (config.upstream_loss.enabled()) std::printf("\n%s", result.format_delay_table().c_str());

  std::printf("\nPaper: hit rates rise with cache size; ordering No-Privacy > Exponential >\n"
              "       Uniform > Always-Delay throughout (Figure 5(a) spans ~10-50%%).\n");
  bench::print_footer();
  bench::report_jobs(jobs, result.wall_seconds);
  return 0;
}
