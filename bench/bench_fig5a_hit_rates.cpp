// Reproduces Figure 5(a): cache hit rate vs cache size for the four cache
// management schemes, replaying a proxy trace (synthetic IRCache-like; see
// DESIGN.md substitution table).
//
// Parameters follow Section VII: LRU eviction, 20 % of content private,
// k = 5, eps = 0.005, cache sizes {2000, 4000, 8000, 16000, 32000, Inf}.
// Expected shape: No-Privacy > Exponential > Uniform > Always-Delay at
// every size, all rising with cache size.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/policies.hpp"
#include "core/theory.hpp"
#include "trace/replayer.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Figure 5(a)", "cache hit rates by scheme and cache size (trace replay)");

  trace::TraceGenConfig gen;
  gen.num_requests = bench::scale_from_env("NDNP_TRACE_REQUESTS", 200'000);
  gen.num_objects = bench::scale_from_env("NDNP_TRACE_OBJECTS", 200'000);
  gen.seed = 2013;
  const trace::Trace tr = trace::generate_trace(gen);
  std::printf("trace: %zu requests, %zu users, %zu distinct objects (synthetic IRCache-like)\n",
              tr.size(), gen.num_users, tr.distinct_names());

  constexpr std::int64_t kAnonymity = 5;
  constexpr double kEpsilon = 0.005;
  constexpr double kDelta = 0.05;
  const std::int64_t uniform_domain = core::uniform_domain_for_delta(kAnonymity, kDelta);
  const auto expo = core::solve_expo_params(kAnonymity, kEpsilon, kDelta);
  if (!expo) {
    std::printf("unsolvable exponential parameterization\n");
    return 1;
  }
  std::printf("k=%lld eps=%.3f delta=%.2f -> Uniform K=%lld; Expo alpha=%.6f K=%lld\n",
              static_cast<long long>(kAnonymity), kEpsilon, kDelta,
              static_cast<long long>(uniform_domain), expo->alpha,
              static_cast<long long>(expo->domain));
  std::printf("private fraction: 0.20, eviction: LRU\n\n");

  struct Scheme {
    const char* name;
    std::function<std::unique_ptr<core::CachePrivacyPolicy>()> factory;
  };
  const std::vector<Scheme> schemes = {
      {"No Privacy", [] { return std::make_unique<core::NoPrivacyPolicy>(); }},
      {"Exponential-Random-Cache",
       [&] { return core::RandomCachePolicy::exponential(expo->alpha, expo->domain, 5); }},
      {"Uniform-Random-Cache",
       [&] { return core::RandomCachePolicy::uniform(uniform_domain, 5); }},
      {"Always Delay Private",
       [] {
         return std::make_unique<core::AlwaysDelayPolicy>(
             core::AlwaysDelayPolicy::content_specific());
       }},
  };

  const std::size_t cache_sizes[] = {2'000, 4'000, 8'000, 16'000, 32'000, 0 /* Inf */};

  std::printf("%-26s", "cache size:");
  for (const std::size_t size : cache_sizes)
    size == 0 ? std::printf("%10s", "Inf") : std::printf("%10zu", size);
  std::printf("\n");

  for (const Scheme& scheme : schemes) {
    std::printf("%-26s", scheme.name);
    for (const std::size_t size : cache_sizes) {
      trace::ReplayConfig config;
      config.cache_capacity = size;
      config.private_fraction = 0.2;
      config.policy_factory = scheme.factory;
      config.seed = 99;
      const trace::ReplayResult result = trace::replay(tr, config);
      std::printf("%9.2f%%", result.hit_rate_pct());
    }
    std::printf("\n");
  }

  std::printf("\nPaper: hit rates rise with cache size; ordering No-Privacy > Exponential >\n"
              "       Uniform > Always-Delay throughout (Figure 5(a) spans ~10-50%%).\n");
  bench::print_footer();
  return 0;
}
