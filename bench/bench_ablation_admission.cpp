// Ablation: probabilistic cache admission as a latent countermeasure.
//
// If the router admits arriving Data into its CS only with probability p,
// the adversary's "was it requested?" oracle becomes unreliable: a probe
// misses with probability 1-p even though the victim requested the
// content. This is a cheap, policy-free dial — but unlike the paper's
// schemes it gives no calibrated (k, eps, delta) guarantee and costs hit
// rate for everyone, private or not. The bench quantifies both sides.
#include <cstdio>

#include "bench_common.hpp"
#include "core/policies.hpp"
#include "trace/replayer.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Ablation", "probabilistic cache admission: privacy vs utility");

  trace::TraceGenConfig gen;
  gen.num_requests = bench::scale_from_env("NDNP_TRACE_REQUESTS", 100'000);
  gen.num_objects = 60'000;
  gen.seed = 2013;
  const trace::Trace tr = trace::generate_trace(gen);

  std::printf("LAN timing attack (decision protocol) and trace hit rate vs admission p:\n\n");
  std::printf("%12s  %16s  %14s\n", "admission p", "attack accuracy", "trace hit rate");
  for (const double p : {1.0, 0.75, 0.5, 0.25, 0.1}) {
    attack::TimingAttackConfig attack_config;
    attack_config.trials = bench::scale_from_env("NDNP_TIMING_TRIALS", 40);
    attack_config.contents_per_trial = 15;
    attack_config.seed = 5;
    attack_config.scenario_params = [p](std::uint64_t seed) {
      sim::ScenarioParams params = sim::lan_scenario_params(seed);
      params.router_config.cache_admission_probability = p;
      return params;
    };
    const double accuracy = attack::run_decision_protocol(attack_config);

    trace::ReplayConfig replay_config;
    replay_config.cache_capacity = 8'000;
    replay_config.private_fraction = 0.0;  // admission applies to everything
    replay_config.cache_admission_probability = p;
    replay_config.seed = 99;
    replay_config.policy_factory = [] { return std::make_unique<core::NoPrivacyPolicy>(); };
    const double hit_rate = trace::replay(tr, replay_config).hit_rate_pct();

    std::printf("%12.2f  %16.3f  %13.2f%%\n", p, accuracy, hit_rate);
  }

  std::printf(
      "\nLower admission probability degrades the adversary toward a one-sided\n"
      "guesser (a hit still proves 'requested'; a miss proves nothing) while the\n"
      "hit rate decays roughly linearly — a blunt instrument compared to\n"
      "Random-Cache's calibrated budget, but it composes with every scheme.\n");
  bench::print_footer();
  return 0;
}
