// Reproduces Figure 3(d): local-host attack.
//
// A malicious application shares the node-local NDN daemon ("ccnd") cache
// with honest applications over IPC. Cache hits return in fractions of a
// millisecond while misses cross the network — the paper notes the gap is
// even more evident than in the network settings.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ndnp;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv);
  attack::TimingAttackConfig config;
  config.trials = bench::scale_from_env("NDNP_TIMING_TRIALS", 50);
  config.contents_per_trial = bench::scale_from_env("NDNP_TIMING_CONTENTS", 20);
  config.scenario_params = &sim::local_host_scenario_params;
  config.seed = 4;
  bench::run_and_print_timing_figure(
      "Figure 3(d)",
      "Local host: malicious app probing the node-local daemon cache over IPC", config,
      "hit/miss difference even more evident than in network settings (~100% success)", options);
  return 0;
}
