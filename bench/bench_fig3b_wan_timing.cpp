// Reproduces Figure 3(b): WAN timing attack.
//
// U and Adv reach the shared first-hop NDN router R across several IP hops
// (modelled as one aggregate jittery link); the producer is three NDN hops
// past R. Extra hops add delay and variance, yet the paper still
// distinguishes hit from miss with probability > 99 %.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ndnp;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv);
  attack::TimingAttackConfig config;
  config.trials = bench::scale_from_env("NDNP_TIMING_TRIALS", 50);
  config.contents_per_trial = bench::scale_from_env("NDNP_TIMING_CONTENTS", 20);
  config.scenario_params = &sim::wan_scenario_params;
  config.seed = 2;
  bench::run_and_print_timing_figure(
      "Figure 3(b)", "WAN: multi-hop consumers, producer three hops past the probed router",
      config, "Adv determines cache state with probability over 99%", options);
  return 0;
}
