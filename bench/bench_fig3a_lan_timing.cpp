// Reproduces Figure 3(a): LAN timing attack.
//
// U and Adv share first-hop router R over Fast-Ethernet-class links; the
// producer sits two WAN hops past R. U fetches content (caching it at R);
// Adv then probes that content (hit samples) and fresh content (miss
// samples). The paper distinguishes the two with probability > 99.9 %.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ndnp;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv);
  attack::TimingAttackConfig config;
  config.trials = bench::scale_from_env("NDNP_TIMING_TRIALS", 50);
  config.contents_per_trial = bench::scale_from_env("NDNP_TIMING_CONTENTS", 20);
  config.scenario_params = &sim::lan_scenario_params;
  config.seed = 1;
  bench::run_and_print_timing_figure(
      "Figure 3(a)", "LAN: cache hit vs miss RTT distributions at the shared first-hop router",
      config, "Adv determines cache state with probability over 99.9%", options);
  return 0;
}
