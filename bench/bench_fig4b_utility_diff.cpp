// Reproduces Figure 4(b): maximal utility difference between Exponential-
// and Uniform-Random-Cache when epsilon takes its maximum value
// eps = -ln(1 - delta), for delta in {0.01, 0.03, 0.05} and k in {1, 5}.
//
// At that epsilon, alpha = (1-delta)^{1/k} and the delta target equals the
// K -> infinity floor, so the solver picks a finite K within relative 1e-6
// of the limit (see core::solve_expo_params).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/theory.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Figure 4(b)",
                      "max utility difference Expo - Uniform at eps = -ln(1-delta)");

  const double deltas[] = {0.01, 0.03, 0.05};

  for (const std::int64_t k : {1LL, 5LL}) {
    std::printf("k = %lld\n", static_cast<long long>(k));
    core::ExpoParams expo[3];
    std::int64_t uniform_domain[3];
    for (int d = 0; d < 3; ++d) {
      const double eps = core::max_epsilon_for_delta(deltas[d]);
      const auto solved = core::solve_expo_params(k, eps, deltas[d]);
      if (!solved) {
        std::printf("unsolvable expo parameterization for delta=%.2f\n", deltas[d]);
        return 1;
      }
      expo[d] = *solved;
      uniform_domain[d] = core::uniform_domain_for_delta(k, deltas[d]);
      std::printf("  delta=%.2f: eps=%.4f alpha=%.5f expo-K=%lld uniform-K=%lld\n", deltas[d],
                  eps, expo[d].alpha, static_cast<long long>(expo[d].domain),
                  static_cast<long long>(uniform_domain[d]));
    }
    std::printf("%6s  %14s  %14s  %14s\n", "c", "delta=0.01", "delta=0.03", "delta=0.05");
    double max_diff = 0.0;
    for (std::int64_t c = 1; c <= 100; c += (c < 10 ? 1 : 5)) {
      double diff[3];
      for (int d = 0; d < 3; ++d) {
        diff[d] = core::expo_utility(c, expo[d].alpha, expo[d].domain) -
                  core::uniform_utility(c, uniform_domain[d]);
        max_diff = std::max(max_diff, diff[d]);
      }
      std::printf("%6lld  %14.4f  %14.4f  %14.4f\n", static_cast<long long>(c), diff[0],
                  diff[1], diff[2]);
    }
    std::printf("  max difference over grid: %.4f\n\n", max_diff);
  }
  std::printf("Paper: the exponential scheme exhibits up to ~12%% performance gain;\n"
              "       the gap grows with delta and shrinks as c grows large.\n");
  bench::print_footer();
  return 0;
}
