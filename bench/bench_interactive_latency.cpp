// Reproduces Section V-A's traffic-class argument: interactive traffic
// must not pay artificial delays, and it benefits from router caching only
// for packet-loss recovery — a re-issued interest is answered by the cache
// nearest the loss.
//
// A VoIP-style session (producer-published frames, lossy consumer access
// link, ARQ retransmission) runs under three regimes:
//   1. no privacy             — fast, but probe-able (the problem);
//   2. unpredictable names    — same latency, probes return nothing;
//   3. Always-Delay, frames producer-marked private — retransmissions lose
//      the cache benefit entirely: the delayed hit costs a full gamma_C.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/name_privacy.hpp"
#include "core/policies.hpp"
#include "sim/fetch_util.hpp"
#include "sim/forwarder.hpp"
#include "util/stats.hpp"

namespace {

using namespace ndnp;

struct SessionResult {
  util::SampleSet first_try_ms;
  util::SampleSet retry_ms;
  std::size_t retransmissions = 0;
  std::size_t delivered = 0;
};

SessionResult run_session(bool unpredictable, bool always_delay, std::uint64_t seed,
                          std::size_t frames) {
  sim::Scheduler sched;
  sim::Consumer bob(sched, "bob", seed + 1);
  sim::ForwarderConfig rcfg;
  rcfg.cs_capacity = 0;
  sim::Forwarder router(sched, "R", rcfg,
                        always_delay
                            ? std::make_unique<core::AlwaysDelayPolicy>(
                                  core::AlwaysDelayPolicy::content_specific())
                            : nullptr);
  sim::ProducerConfig pcfg;
  pcfg.auto_generate = false;
  sim::Producer alice(sched, "alice", ndn::Name("/alice/call"), "alice-key", pcfg, seed + 2);

  sim::LinkConfig access = sim::lan_link(0.5, 0.05);
  access.loss_probability = 0.12;  // lossy last mile
  connect(bob, router, access);
  const auto [up, down] = connect(router, alice, sim::wan_link(4.0, 0.3, 0.4));
  (void)down;
  router.add_route(ndn::Name("/alice/call"), up);

  const core::UnpredictableNameSession session(ndn::Name("/alice/call"), "secret", "a2b");
  for (std::uint64_t seq = 0; seq < frames; ++seq) {
    if (unpredictable) {
      alice.publish(session.data_for(seq, "frame", "alice", "alice-key"));
    } else {
      // Predictable names; in the always-delay regime the producer marks
      // its interactive frames private (what Section V-A argues AGAINST).
      ndn::Data frame = ndn::make_data(ndn::Name("/alice/call").append_number(seq), "frame",
                                       "alice", "alice-key", /*producer_private=*/always_delay);
      alice.publish(frame);
    }
  }

  SessionResult result;
  sim::ReliableFetchOptions options;
  options.timeout = util::millis(25);
  options.max_attempts = 6;
  for (std::uint64_t seq = 0; seq < frames; ++seq) {
    const ndn::Name name = unpredictable
                               ? session.name_for(seq)
                               : ndn::Name("/alice/call").append_number(seq);
    sim::reliable_fetch(bob, name,
                        [&result](const sim::ReliableFetchResult& r) {
                          if (!r.succeeded) return;
                          ++result.delivered;
                          result.retransmissions += r.attempts - 1;
                          (r.attempts == 1 ? result.first_try_ms : result.retry_ms)
                              .add(util::to_millis(r.rtt));
                        },
                        options);
  }
  sched.run();
  return result;
}

}  // namespace

int main() {
  bench::print_header("Section V-A", "interactive traffic: latency under each countermeasure");
  const std::size_t frames = bench::scale_from_env("NDNP_VOIP_FRAMES", 2'000);
  std::printf("VoIP session: %zu frames, 12%% last-mile loss, ARQ with 25 ms RTO\n\n", frames);

  struct Regime {
    const char* name;
    bool unpredictable;
    bool always_delay;
  };
  const Regime regimes[] = {
      {"no privacy (probe-able!)", false, false},
      {"unpredictable names (Section V-A)", true, false},
      {"Always-Delay on private frames", false, true},
  };

  std::printf("%-36s %10s %12s %12s %8s\n", "regime", "1st-try ms", "recovery ms",
              "recov. p95", "retx");
  for (const Regime& regime : regimes) {
    const SessionResult result =
        run_session(regime.unpredictable, regime.always_delay, 42, frames);
    std::printf("%-36s %10.2f %12.2f %12.2f %8zu\n", regime.name, result.first_try_ms.mean(),
                result.retry_ms.empty() ? 0.0 : result.retry_ms.mean(),
                result.retry_ms.empty() ? 0.0 : result.retry_ms.quantile(0.95),
                result.retransmissions);
  }

  std::printf(
      "\nReading: unpredictable names keep both first-try latency AND cache-assisted\n"
      "loss recovery (~1-26 ms, answered by R) while denying the adversary the\n"
      "names. Delay-based schemes applied to interactive traffic destroy exactly\n"
      "the recovery benefit: the re-issued interest's 'hit' is delayed by a full\n"
      "gamma_C, as slow as refetching from the far party — the paper's reason to\n"
      "treat interactive and content-distribution traffic differently.\n");
  bench::print_footer();
  return 0;
}
