// Sequential-probing work analysis (attack/sequential.hpp): how often can
// a Wald-SPRT adversary reach a CONFIDENT verdict from one content, and at
// what probe cost? Turns the paper's (eps, delta) dial into an operational
// adversary-work dial, and shows the structural result: interior
// observations never accumulate on a single content — only the one-sided
// masses decide (1 - alpha^x for the exponential scheme, 2x/K for the
// uniform one), so breaking Random-Cache confidently requires correlated
// content (which grouping removes).
#include <cmath>
#include <cstdio>

#include "attack/sequential.hpp"
#include "bench_common.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Sequential probing", "SPRT adversary: confident verdicts per scheme");

  attack::SprtConfig config;
  config.x = 2;
  config.alpha_error = 0.05;
  config.beta_error = 0.05;
  config.rounds = bench::scale_from_env("NDNP_SPRT_ROUNDS", 20'000);
  std::printf("x = %lld prior requests, 5%%/5%% error targets, %zu rounds, balanced prior\n\n",
              static_cast<long long>(config.x), config.rounds);

  struct Row {
    const char* name;
    std::unique_ptr<core::KDistribution> dist;
    double predicted_decided;  // closed-form mass of one-sided outcomes
  };
  // Closed-form decided rates under a balanced prior: uniform decides on
  // both one-sided regions (mass x/K under each state -> x/K overall);
  // expo's S0-side region is negligible at K=100, leaving the S_x-side
  // immediate hits, (1 - a^x)/2 overall.
  const double x = static_cast<double>(config.x);
  Row rows[] = {
      {"Naive Degenerate(k=6)", std::make_unique<core::DegenerateK>(6), 1.0},
      {"Uniform K=20", std::make_unique<core::UniformK>(20), x / 20.0},
      {"Uniform K=100", std::make_unique<core::UniformK>(100), x / 100.0},
      {"Expo a=0.95 K=100", std::make_unique<core::TruncatedGeometricK>(0.95, 100),
       0.5 * (1.0 - std::pow(0.95, x))},
      {"Expo a=0.70 K=100", std::make_unique<core::TruncatedGeometricK>(0.70, 100),
       0.5 * (1.0 - std::pow(0.70, x))},
  };

  std::printf("%-24s %10s %12s %12s %14s\n", "scheme", "decided", "predicted", "accuracy",
              "mean probes");
  for (Row& row : rows) {
    const attack::SprtResult result = attack::run_sprt_attack(*row.dist, config);
    std::printf("%-24s %9.3f%% %11.3f%% %12.4f %14.2f\n", row.name,
                100.0 * (1.0 - result.undecided_rate), 100.0 * row.predicted_decided,
                result.accuracy, result.mean_probes);
  }

  std::printf(
      "\nReading: only the naive fixed-threshold scheme is always decidable. For\n"
      "the randomized schemes the decided fraction equals the closed-form\n"
      "one-sided mass — the adversary can be CONFIDENT exactly that often, no\n"
      "matter how many times it probes the same content, and every confident\n"
      "verdict is correct (the error targets only bound the decided rounds).\n"
      "Exponential's better utility is paid for here: it concedes confident\n"
      "verdicts ~(1-a^x)/2 of the time vs uniform's x/K.\n");
  bench::print_footer();
  return 0;
}
