// Reproduces Figure 3(c): WAN producer privacy.
//
// The producer P is directly attached to router R while U and Adv sit far
// away. Adv fetches a content twice: the first fetch samples the miss
// distribution (content served by P), the second the hit distribution
// (served by R). Because the R<->P delta is tiny relative to path jitter,
// a single probe only succeeds ~59 % of the time in the paper — the
// fragment-amplification bench shows how Adv recovers.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ndnp;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv);
  attack::TimingAttackConfig config;
  config.trials = bench::scale_from_env("NDNP_TIMING_TRIALS", 50);
  config.contents_per_trial = bench::scale_from_env("NDNP_TIMING_CONTENTS", 20);
  config.scenario_params = &sim::producer_adjacent_scenario_params;
  config.producer_mode = true;
  config.seed = 3;
  bench::run_and_print_timing_figure(
      "Figure 3(c)",
      "WAN producer privacy: P adjacent to R, consumers far away, double-fetch probe", config,
      "Adv distinguishes with ~59% probability from a single content object", options);
  return 0;
}
