#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>

#include "runner/runner.hpp"
#include "sim/trace_sinks.hpp"
#include "util/logging.hpp"
#include "util/tracing.hpp"

namespace ndnp::bench {

std::size_t scale_from_env(const char* var, std::size_t fallback) {
  if (const char* value = std::getenv(var)) {
    const long long parsed = std::atoll(value);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

namespace {

void bench_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--jobs N] [--trace-out PATH] [--trace-filter PREFIX]\n"
               "          [--log-level error|warn|info|debug|trace]\n"
               "          [--net-loss RATE] [--net-burst LEN] [--net-retry-ms MS]\n"
               "\n"
               "  --jobs N              sweep worker threads (0 = all hardware threads;\n"
               "                        env NDNP_JOBS supplies the default)\n"
               "  --trace-out PATH      write a flight-recorder capture; a .jsonl suffix\n"
               "                        selects the JSONL event dump (readable by\n"
               "                        trace_inspect), anything else the Chrome\n"
               "                        trace-event JSON for Perfetto\n"
               "  --trace-filter PREFIX capture only events whose content name starts\n"
               "                        with PREFIX\n"
               "  --log-level L         stderr logging threshold (default: warn)\n"
               "  --net-loss RATE       Gilbert-Elliott burst loss rate on the upstream\n"
               "                        fetch path, 0..1 (default 0 = clean network)\n"
               "  --net-burst LEN       mean loss-burst length in packets (default 4)\n"
               "  --net-retry-ms MS     retry penalty per lost fetch (default 80)\n"
               "  --telemetry-out PATH  write the per-run telemetry time series (.prom =\n"
               "                        Prometheus text exposition, else CSV)\n"
               "  --sample-every MS     telemetry sampling cadence in sim-time ms\n"
               "                        (default 10)\n",
               argv0);
}

}  // namespace

runner::SweepTraceCapture* BenchOptions::configure(runner::SweepTraceCapture& capture) const {
  if (!tracing_requested()) return nullptr;
  capture.out_path = trace_out;
  capture.filter = trace_filter;
  capture.ring_capacity = trace_capacity;
  return &capture;
}

telemetry::SweepTelemetryCapture* BenchOptions::configure_telemetry(
    telemetry::SweepTelemetryCapture& capture) const {
  if (telemetry_out.empty()) return nullptr;
  capture.out_path = telemetry_out;
  capture.options.sample_every = static_cast<util::SimDuration>(sample_every_ms * 1e6);
  return &capture;
}

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions options;
  options.jobs = scale_from_env("NDNP_JOBS", 1);
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        bench_usage(stderr, argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const char* value = next();
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "%s: --jobs expects a number, got '%s'\n", argv[0], value);
        std::exit(2);
      }
      options.jobs = runner::resolve_jobs(static_cast<std::size_t>(parsed));
    } else if (std::strcmp(argv[i], "--net-loss") == 0 ||
               std::strcmp(argv[i], "--net-burst") == 0 ||
               std::strcmp(argv[i], "--net-retry-ms") == 0) {
      const char* flag = argv[i];
      const char* value = next();
      char* end = nullptr;
      const double parsed = std::strtod(value, &end);
      if (end == value || *end != '\0' || parsed < 0.0 ||
          (std::strcmp(flag, "--net-loss") == 0 && parsed >= 1.0)) {
        std::fprintf(stderr, "%s: %s expects a non-negative number%s, got '%s'\n", argv[0],
                     flag, std::strcmp(flag, "--net-loss") == 0 ? " below 1" : "", value);
        std::exit(2);
      }
      if (std::strcmp(flag, "--net-loss") == 0)
        options.net_loss = parsed;
      else if (std::strcmp(flag, "--net-burst") == 0)
        options.net_burst = parsed;
      else
        options.net_retry_ms = parsed;
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      options.trace_out = next();
    } else if (std::strcmp(argv[i], "--trace-filter") == 0) {
      options.trace_filter = next();
    } else if (std::strcmp(argv[i], "--telemetry-out") == 0) {
      options.telemetry_out = next();
    } else if (std::strcmp(argv[i], "--sample-every") == 0) {
      const char* value = next();
      char* end = nullptr;
      const double parsed = std::strtod(value, &end);
      if (end == value || *end != '\0' || parsed <= 0.0) {
        std::fprintf(stderr, "%s: --sample-every expects a positive number, got '%s'\n",
                     argv[0], value);
        std::exit(2);
      }
      options.sample_every_ms = parsed;
    } else if (std::strcmp(argv[i], "--log-level") == 0) {
      const char* value = next();
      util::LogLevel level;
      if (!util::parse_log_level(value, level)) {
        std::fprintf(stderr, "%s: unknown log level '%s'\n", argv[0], value);
        std::exit(2);
      }
      util::set_log_level(level);
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      bench_usage(stdout, argv[0]);
      std::exit(0);
    } else {
      bench_usage(stderr, argv[0]);
      std::exit(2);
    }
  }
  return options;
}

std::size_t parse_jobs(int argc, char** argv) { return parse_bench_options(argc, argv).jobs; }

void report_jobs(std::size_t jobs, double wall_seconds) {
  std::fprintf(stderr, "[sweep] jobs=%zu wall=%.3fs\n", jobs, wall_seconds);
}

void print_header(const std::string& figure, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

void print_footer() { std::printf("\n"); }

void run_and_print_timing_figure(const std::string& figure, const std::string& description,
                                 const attack::TimingAttackConfig& config,
                                 const std::string& paper_claim, const BenchOptions& options) {
  print_header(figure, description);
  std::printf("trials=%zu contents/trial=%zu seed=%llu mode=%s\n\n", config.trials,
              config.contents_per_trial, static_cast<unsigned long long>(config.seed),
              config.producer_mode ? "producer-probe (double fetch)" : "consumer-probe");

  // When tracing is requested the attack runs under a bound flight
  // recorder; the tracer only observes, so the printed tables are
  // byte-identical either way (golden tests pin this).
  util::Tracer tracer(options.trace_capacity);
  tracer.set_filter(options.trace_filter);
  attack::TimingAttackResult result;
  {
    util::TracerBinding binding(options.tracing_requested() ? &tracer : nullptr);
    result = attack::run_timing_attack(config);
  }
  if (!options.trace_out.empty()) sim::write_trace_file(tracer, options.trace_out);

  // The report body is shared with the golden regression tests, which lock
  // its exact bytes at fixed seeds (attack::format_timing_report).
  std::fputs(attack::format_timing_report(result).c_str(), stdout);
  std::printf("Paper: %s\n", paper_claim.c_str());
  print_footer();
}

}  // namespace ndnp::bench
