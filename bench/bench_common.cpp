#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>

#include "runner/runner.hpp"

namespace ndnp::bench {

std::size_t scale_from_env(const char* var, std::size_t fallback) {
  if (const char* value = std::getenv(var)) {
    const long long parsed = std::atoll(value);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

std::size_t parse_jobs(int argc, char** argv) {
  std::size_t jobs = scale_from_env("NDNP_JOBS", 1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "%s: --jobs expects a number, got '%s'\n", argv[0], argv[i]);
        std::exit(2);
      }
      jobs = runner::resolve_jobs(static_cast<std::size_t>(value));
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
      std::exit(2);
    }
  }
  return jobs;
}

void report_jobs(std::size_t jobs, double wall_seconds) {
  std::fprintf(stderr, "[sweep] jobs=%zu wall=%.3fs\n", jobs, wall_seconds);
}

void print_header(const std::string& figure, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

void print_footer() { std::printf("\n"); }

void run_and_print_timing_figure(const std::string& figure, const std::string& description,
                                 const attack::TimingAttackConfig& config,
                                 const std::string& paper_claim) {
  print_header(figure, description);
  std::printf("trials=%zu contents/trial=%zu seed=%llu mode=%s\n\n", config.trials,
              config.contents_per_trial, static_cast<unsigned long long>(config.seed),
              config.producer_mode ? "producer-probe (double fetch)" : "consumer-probe");

  const attack::TimingAttackResult result = attack::run_timing_attack(config);

  std::printf("RTT distributions (probability density, as in the paper's PDF plots):\n");
  const auto [hit_hist, miss_hist] =
      util::SampleSet::paired_histograms(result.hit_rtts_ms, result.miss_rtts_ms, 24);
  std::printf("%s\n", util::format_pdf_table(hit_hist, miss_hist, "hit", "miss").c_str());

  std::printf("hit  RTT: mean=%.3f ms  p50=%.3f  p95=%.3f  (n=%zu)\n",
              result.hit_rtts_ms.mean(), result.hit_rtts_ms.quantile(0.5),
              result.hit_rtts_ms.quantile(0.95), result.hit_rtts_ms.size());
  std::printf("miss RTT: mean=%.3f ms  p50=%.3f  p95=%.3f  (n=%zu)\n",
              result.miss_rtts_ms.mean(), result.miss_rtts_ms.quantile(0.5),
              result.miss_rtts_ms.quantile(0.95), result.miss_rtts_ms.size());
  std::printf("\nDistinguishing probability (Bayes-optimal): %.4f\n", result.bayes_accuracy);
  std::printf("Single-threshold adversary: accuracy %.4f at threshold %.3f ms\n",
              result.threshold_accuracy, result.threshold_ms);
  std::printf("Paper: %s\n", paper_claim.c_str());
  print_footer();
}

}  // namespace ndnp::bench
