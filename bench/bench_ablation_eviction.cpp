// Ablation (ours, beyond the paper): how the eviction policy interacts
// with the privacy schemes. The paper evaluates LRU only; this bench
// replays the same trace under LRU / FIFO / LFU / Random eviction for the
// No-Privacy and Exponential-Random-Cache schemes.
#include <cstdio>

#include "bench_common.hpp"
#include "core/policies.hpp"
#include "core/theory.hpp"
#include "trace/replayer.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Ablation", "eviction policy (LRU / FIFO / LFU / Random) x privacy scheme");

  trace::TraceGenConfig gen;
  gen.num_requests = bench::scale_from_env("NDNP_TRACE_REQUESTS", 150'000);
  gen.num_objects = 60'000;
  gen.seed = 2013;
  const trace::Trace tr = trace::generate_trace(gen);

  const auto expo = core::solve_expo_params(5, 0.005, 0.05);
  if (!expo) return 1;
  std::printf("trace: %zu requests; cache 8000; private fraction 0.20\n\n", tr.size());

  const cache::EvictionPolicy policies[] = {
      cache::EvictionPolicy::kLru, cache::EvictionPolicy::kFifo, cache::EvictionPolicy::kLfu,
      cache::EvictionPolicy::kRandom};

  std::printf("%-10s  %18s  %26s\n", "eviction", "No-Privacy hit%", "Expo-Random-Cache hit%");
  for (const cache::EvictionPolicy eviction : policies) {
    trace::ReplayConfig config;
    config.cache_capacity = 8'000;
    config.eviction = eviction;
    config.private_fraction = 0.2;
    config.seed = 99;

    config.policy_factory = [] { return std::make_unique<core::NoPrivacyPolicy>(); };
    const double none = trace::replay(tr, config).hit_rate_pct();
    config.policy_factory = [&] {
      return core::RandomCachePolicy::exponential(expo->alpha, expo->domain, 5);
    };
    const double expo_rate = trace::replay(tr, config).hit_rate_pct();
    std::printf("%-10s  %17.2f%%  %25.2f%%\n",
                std::string(cache::to_string(eviction)).c_str(), none, expo_rate);
  }
  std::printf("\nExpectation: LRU/LFU beat FIFO/Random on a Zipf trace; the privacy penalty\n"
              "(gap between columns) is roughly eviction-independent — the schemes compose.\n");
  bench::print_footer();
  return 0;
}
