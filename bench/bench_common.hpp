// Shared output helpers for the reproduction bench binaries.
//
// Every bench prints: a header naming the paper artifact it regenerates,
// the parameters in play, the regenerated table/series, and a short
// "paper vs measured" summary line that EXPERIMENTS.md quotes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "attack/timing_attack.hpp"

namespace ndnp::bench {

/// Environment-variable override for experiment scale, e.g.
/// scale_from_env("NDNP_TRACE_REQUESTS", 200'000).
[[nodiscard]] std::size_t scale_from_env(const char* var, std::size_t fallback);

/// Parse the shared bench flags: `--jobs N` (0 = all hardware threads;
/// the NDNP_JOBS env var supplies the default). Exits with usage on
/// unknown arguments. Runner-ported benches produce byte-identical stdout
/// for every jobs value — parallelism is reported on stderr only.
[[nodiscard]] std::size_t parse_jobs(int argc, char** argv);

/// Report sweep parallelism/wall-clock on stderr (stdout stays canonical).
void report_jobs(std::size_t jobs, double wall_seconds);

void print_header(const std::string& figure, const std::string& what);
void print_footer();

/// Run a Figure-3 style timing experiment and print the PDF table plus the
/// distinguishing probabilities.
void run_and_print_timing_figure(const std::string& figure, const std::string& description,
                                 const attack::TimingAttackConfig& config,
                                 const std::string& paper_claim);

}  // namespace ndnp::bench
