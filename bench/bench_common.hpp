// Shared output helpers for the reproduction bench binaries.
//
// Every bench prints: a header naming the paper artifact it regenerates,
// the parameters in play, the regenerated table/series, and a short
// "paper vs measured" summary line that EXPERIMENTS.md quotes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "attack/timing_attack.hpp"
#include "runner/runner.hpp"
#include "telemetry/telemetry.hpp"
#include "util/fault_model.hpp"

namespace ndnp::bench {

/// Environment-variable override for experiment scale, e.g.
/// scale_from_env("NDNP_TRACE_REQUESTS", 200'000).
[[nodiscard]] std::size_t scale_from_env(const char* var, std::size_t fallback);

/// Shared bench command line:
///   --jobs N              sweep worker threads (0 = all hardware threads;
///                         env NDNP_JOBS supplies the default)
///   --trace-out PATH      flight-recorder capture; ".jsonl" = JSONL event
///                         dump (trace_inspect reads it), else Chrome
///                         trace-event JSON for Perfetto
///   --trace-filter PREFIX capture only events whose content name starts
///                         with PREFIX
///   --log-level L         stderr logging threshold (error|warn|info|
///                         debug|trace, default warn)
///   --net-loss RATE       degraded-network ablation: Gilbert–Elliott burst
///                         loss on the upstream fetch path (0 = off)
///   --net-burst LEN       mean loss-burst length in packets (default 4)
///   --net-retry-ms MS     retransmission penalty per lost fetch (default 80)
///   --telemetry-out PATH  per-run detector/occupancy time series (".prom" =
///                         Prometheus text exposition, else CSV; multi-run
///                         sweeps splice ".runN" before the extension)
///   --sample-every MS     telemetry sampling cadence in sim-time ms
///                         (default 10)
/// Capturing never changes bench output — golden vectors stay byte-
/// identical with tracing on, off, or compiled out.
struct BenchOptions {
  std::size_t jobs = 1;
  std::string trace_out;
  std::string trace_filter;
  std::size_t trace_capacity = 1u << 20;
  double net_loss = 0.0;
  double net_burst = 4.0;
  double net_retry_ms = 80.0;
  std::string telemetry_out;
  double sample_every_ms = 10.0;

  /// The --net-* flags as a chain config (disabled when --net-loss is 0).
  [[nodiscard]] util::GilbertElliottConfig upstream_loss() const noexcept {
    return util::GilbertElliottConfig::from_loss_and_burst(net_loss, net_burst);
  }
  [[nodiscard]] util::SimDuration upstream_retry_penalty() const noexcept {
    return static_cast<util::SimDuration>(net_retry_ms * 1e6);
  }

  /// Whether any tracing flag was given.
  [[nodiscard]] bool tracing_requested() const noexcept {
    return !trace_out.empty() || !trace_filter.empty();
  }
  /// Fill `capture` from these options and return &capture, or nullptr
  /// when no tracing flag was given (assign the result to config.capture).
  runner::SweepTraceCapture* configure(runner::SweepTraceCapture& capture) const;

  /// Fill `capture` from the --telemetry-out/--sample-every flags and
  /// return &capture, or nullptr when telemetry was not requested (assign
  /// the result to config.telemetry on benches that support it).
  telemetry::SweepTelemetryCapture* configure_telemetry(
      telemetry::SweepTelemetryCapture& capture) const;
};

/// Parse the shared flags above; exits with usage on unknown arguments
/// (--help prints it to stdout and exits 0).
[[nodiscard]] BenchOptions parse_bench_options(int argc, char** argv);

/// Back-compat shim: parse the shared flags and return just the jobs count.
[[nodiscard]] std::size_t parse_jobs(int argc, char** argv);

/// Report sweep parallelism/wall-clock on stderr (stdout stays canonical).
void report_jobs(std::size_t jobs, double wall_seconds);

void print_header(const std::string& figure, const std::string& what);
void print_footer();

/// Run a Figure-3 style timing experiment and print the PDF table plus the
/// distinguishing probabilities. When `options` asks for tracing, the
/// attack runs under a bound flight recorder and the capture (adversary
/// probes + router cache/policy ground truth — trace_inspect joins them)
/// is written to options.trace_out.
void run_and_print_timing_figure(const std::string& figure, const std::string& description,
                                 const attack::TimingAttackConfig& config,
                                 const std::string& paper_claim,
                                 const BenchOptions& options = {});

}  // namespace ndnp::bench
