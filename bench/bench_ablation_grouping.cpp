// Ablation: correlation grouping (Section VI, "Addressing Content
// Correlation").
//
// Per-content Random-Cache is insecure for correlated content: an
// adversary probing the n fragments of one download gets n *independent*
// samples of the threshold distribution, so the per-content privacy budget
// amplifies roughly n-fold (epsilon_total ~ n * epsilon for the
// exponential scheme, and the one-sided delta mass compounds as
// 1-(1-delta')^n). Grouped Random-Cache keys a single (c_C, k_C) per
// namespace: probing any number of members is equivalent to probing one
// content repeatedly, whose leakage saturates at the single-content bound.
//
// The bench plays the distinguishing game ("did the victim download the
// n-fragment set?") with a likelihood-ratio adversary at fixed per-content
// parameters, sweeping n — per-content accuracy climbs toward 1, grouped
// accuracy stays pinned at the single-content bound — then measures the
// utility cost of grouping on the trace replay.
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/indistinguishability.hpp"
#include "core/policies.hpp"
#include "core/theory.hpp"
#include "trace/replayer.hpp"
#include "util/rng.hpp"

namespace {

using namespace ndnp;

constexpr double kAlpha = 0.7788;  // per-content epsilon ~ 0.25 at x = 1
constexpr std::int64_t kDomain = 64;
constexpr std::int64_t kProbesPerFragment = 6;

/// Log-likelihood of observing miss-run m under distribution d.
double log_prob(const core::DiscreteDist& d, std::size_t m) {
  const double p = m < d.size() ? d[m] : 0.0;
  return p > 0.0 ? std::log(p) : -std::numeric_limits<double>::infinity();
}

/// One engine round; returns the adversary's verdict correctness.
bool play_round(core::Grouping grouping, std::size_t n_fragments, util::Rng& rng) {
  const core::TruncatedGeometricK dist(kAlpha, kDomain);
  core::CachePrivacyEngine engine(
      0, cache::EvictionPolicy::kLru,
      std::make_unique<core::RandomCachePolicy>(dist.clone(), rng.next_u64(), grouping,
                                                /*namespace_prefix_len=*/2));
  const core::CachePrivacyEngine::FetchFn fetch = [](const ndn::Interest& interest) {
    return std::pair{ndn::make_data(interest.name, "x", "p", "k", /*producer_private=*/true),
                     util::millis(20)};
  };
  const ndn::Name base = ndn::Name("/video").append_number(rng.next_u64());
  util::SimTime now = 0;
  const auto request = [&](std::size_t fragment) {
    ndn::Interest interest;
    interest.name = base.append_number(fragment);
    interest.private_req = true;
    const core::RequestOutcome outcome = engine.handle(interest, now, fetch);
    now += util::millis(1);
    return outcome.response_delay > 0;  // true = looks like a miss
  };

  const bool requested = rng.bernoulli(0.5);
  if (requested)
    for (std::size_t f = 0; f < n_fragments; ++f) (void)request(f);

  double llr = 0.0;
  if (grouping == core::Grouping::kNone) {
    // Per-fragment miss-runs are independent samples: sum the per-content
    // log-likelihood ratios.
    const core::DiscreteDist d0 = core::exact_output_distribution(dist, 0, kProbesPerFragment);
    const core::DiscreteDist d1 = core::exact_output_distribution(dist, 1, kProbesPerFragment);
    for (std::size_t f = 0; f < n_fragments; ++f) {
      std::size_t m = 0;
      bool in_prefix = true;
      for (std::int64_t probe = 0; probe < kProbesPerFragment; ++probe) {
        const bool miss = request(f);
        if (miss && in_prefix)
          ++m;
        else
          in_prefix = false;
      }
      llr += log_prob(d1, m) - log_prob(d0, m);
    }
  } else {
    // All members share one counter: probing one member n*t times is as
    // informative as spreading probes — a single content's game.
    const std::int64_t total = kProbesPerFragment * static_cast<std::int64_t>(n_fragments);
    const core::DiscreteDist d0 = core::exact_output_distribution(dist, 0, total);
    const core::DiscreteDist d1 = core::exact_output_distribution(dist, 1, total);
    std::size_t m = 0;
    bool in_prefix = true;
    for (std::int64_t probe = 0; probe < total; ++probe) {
      const bool miss = request(0);
      if (miss && in_prefix)
        ++m;
      else
        in_prefix = false;
    }
    llr = log_prob(d1, m) - log_prob(d0, m);
  }
  return (llr > 0.0) == requested;
}

double game_accuracy(core::Grouping grouping, std::size_t n_fragments, std::size_t rounds,
                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::size_t correct = 0;
  for (std::size_t round = 0; round < rounds; ++round)
    if (play_round(grouping, n_fragments, rng)) ++correct;
  return static_cast<double>(correct) / static_cast<double>(rounds);
}

}  // namespace

int main() {
  bench::print_header("Ablation", "correlation grouping: attack resistance and utility cost");

  const std::size_t rounds = bench::scale_from_env("NDNP_GROUPING_ROUNDS", 3'000);
  const core::TruncatedGeometricK dist(kAlpha, kDomain);
  {
    const auto d0 = core::exact_output_distribution(dist, 0, kProbesPerFragment);
    const auto d1 = core::exact_output_distribution(dist, 1, kProbesPerFragment);
    std::printf("Exponential-Random-Cache alpha=%.4f K=%lld (per-content eps=%.3f, t=%lld\n"
                "probes/fragment); single-content Bayes bound = %.4f\n\n",
                kAlpha, static_cast<long long>(kDomain), -std::log(kAlpha),
                static_cast<long long>(kProbesPerFragment),
                0.5 + 0.5 * core::total_variation(d0, d1));
  }

  std::printf("Distinguishing game: did the victim download the n-fragment set?\n");
  std::printf("%12s  %22s  %22s\n", "fragments n", "per-content accuracy", "grouped accuracy");
  for (const std::size_t n : {1, 2, 4, 8, 16}) {
    const double per_content = game_accuracy(core::Grouping::kNone, n, rounds, 7);
    const double grouped = game_accuracy(core::Grouping::kByNamespace, n, rounds, 8);
    std::printf("%12zu  %22.4f  %22.4f\n", n, per_content, grouped);
  }
  std::printf("\nPaper: per-content Random-Cache lets Adv 'sample multiple points under\n"
              "different k' — accuracy climbs toward 1 with n. Grouping pins it at the\n"
              "single-content bound for every n.\n\n");

  // Utility cost of grouping on the trace (namespace = /web/dom<i>).
  trace::TraceGenConfig gen;
  gen.num_requests = bench::scale_from_env("NDNP_TRACE_REQUESTS", 150'000);
  gen.num_objects = 60'000;
  gen.seed = 2013;
  const trace::Trace tr = trace::generate_trace(gen);
  const auto expo = core::solve_expo_params(5, 0.005, 0.05);
  if (!expo) return 1;

  std::printf("Utility on the trace (cache 8000, 20%% private, Expo-Random-Cache):\n");
  for (const core::Grouping grouping :
       {core::Grouping::kNone, core::Grouping::kByNamespace}) {
    trace::ReplayConfig config;
    config.cache_capacity = 8'000;
    config.private_fraction = 0.2;
    config.seed = 99;
    config.policy_factory = [&] {
      return std::make_unique<core::RandomCachePolicy>(
          std::make_unique<core::TruncatedGeometricK>(expo->alpha, expo->domain), 5, grouping,
          /*namespace_prefix_len=*/2);
    };
    std::printf("  grouping=%-10s hit rate %.2f%%\n",
                std::string(core::to_string(grouping)).c_str(),
                trace::replay(tr, config).hit_rate_pct());
  }
  std::printf("\nGrouping shares one miss budget across a namespace: popular namespaces\n"
              "amortize it faster, so trace utility can even improve slightly.\n");
  bench::print_footer();
  return 0;
}
