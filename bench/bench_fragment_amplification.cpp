// Reproduces the Section III fragment-amplification analysis: a content
// split into n objects lets the adversary amplify a weak per-object probe
// (~59 % in the producer-adjacent setting of Figure 3(c)).
//
// Prints (1) the paper's analytic curve 1 - (1-p)^n for p = 0.59 and
// (2) the measured end-to-end attack in the network simulator, where the
// adversary averages its per-fragment RTTs (see attack/fragment_attack.hpp
// for why averaging, not OR, is the operationally sound combiner).
#include <cstdio>

#include "attack/fragment_attack.hpp"
#include "bench_common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Section III analysis", "fragment-correlation amplification");

  std::printf("Analytic curve (paper): Pr[success] = 1 - (1-p)^n at p = 0.59\n");
  std::printf("%4s  %12s\n", "n", "success");
  for (const std::size_t n : {1, 2, 4, 8, 16}) {
    std::printf("%4zu  %12.5f\n", n, util::amplified_success(0.59, n));
  }
  std::printf("(paper: n = 8 gives ~0.999)\n\n");

  std::printf("Measured end-to-end (producer-adjacent scenario, mean-RTT combiner):\n");
  std::printf("%4s  %10s  %10s  %10s  %10s  %10s\n", "n", "per-obj p", "accuracy",
              "detection", "false-pos", "analytic");
  for (const std::size_t n : {1, 2, 4, 8, 16}) {
    attack::FragmentAttackConfig config;
    config.trials = bench::scale_from_env("NDNP_FRAGMENT_TRIALS", 120);
    config.n_fragments = n;
    config.calibration_probes = 25;
    config.scenario_params = &sim::producer_adjacent_scenario_params;
    config.seed = 505;
    const attack::FragmentAttackResult result = attack::run_fragment_attack(config);
    std::printf("%4zu  %10.3f  %10.3f  %10.3f  %10.3f  %10.3f\n", n,
                result.per_object_accuracy, result.accuracy, result.detection_rate,
                result.false_alarm_rate, result.analytic_success);
  }
  std::printf(
      "\nPaper: single-object success ~0.59; amplification drives it toward 1 with n.\n"
      "Measured accuracy rises with n but saturates below the idealized curve: the\n"
      "calibration threshold error is shared across fragments and does not average out.\n");
  bench::print_footer();
  return 0;
}
