// Ablation: timing-attack robustness under cross traffic.
//
// The paper measured its attacks on a live testbed, where background
// traffic perturbs RTTs through queueing. Queueing on the R -> producer
// leg cannot hurt the attack (it only pushes misses further from hits), so
// the contested resource here is the SHARED ACCESS PATH: consumers, the
// adversary and the cross traffic all reach the probed router R through
// one FIFO-queued aggregation link (their ISP uplink). Both hit and miss
// probes traverse that queue, so its delay variance blurs the hit/miss gap
// directly. The bench sweeps the aggregation-link load toward saturation
// and measures the adversary's end-to-end decision accuracy.
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>

#include "bench_common.hpp"
#include "sim/topology.hpp"

namespace {

using namespace ndnp;

constexpr double kBottleneckBps = 100e6;  // 100 Mbit/s
constexpr std::size_t kCrossPayload = 8'192;

struct CrossNet {
  std::unique_ptr<sim::Topology> topo;
  sim::Consumer* user = nullptr;
  sim::Consumer* adversary = nullptr;
  sim::Forwarder* aggregation = nullptr;  // non-caching access switch
  sim::Forwarder* router = nullptr;       // R: the probed cache
  sim::Producer* producer = nullptr;
  sim::Consumer* cross = nullptr;
};

CrossNet make_net(std::uint64_t seed, double cross_rate_per_s) {
  CrossNet net;
  net.topo = std::make_unique<sim::Topology>(seed);
  sim::Topology& topo = *net.topo;

  // A: aggregation node all consumers share; it forwards but never caches.
  sim::ForwarderConfig acfg;
  acfg.cs_capacity = 0;
  acfg.cache_admission_probability = 0.0;
  net.aggregation = &topo.add_router("A", acfg);
  sim::ForwarderConfig rcfg;
  rcfg.cs_capacity = 0;
  net.router = &topo.add_router("R", rcfg);
  net.user = &topo.add_consumer("U");
  net.adversary = &topo.add_consumer("Adv");
  net.cross = &topo.add_consumer("cross");
  sim::ProducerConfig pcfg;
  pcfg.payload_size = kCrossPayload;
  net.producer = &topo.add_producer("P", ndn::Name("/producer"), pcfg);

  const sim::LinkConfig access = sim::lan_link(0.05, 0.02);
  sim::LinkConfig uplink = sim::lan_link(0.5, 0.05);  // the shared ISP uplink
  uplink.bandwidth_bps = kBottleneckBps;
  uplink.fifo_queue = true;
  const sim::LinkConfig core = sim::wan_link(1.5, 0.1, 0.4);

  topo.link(*net.user, *net.aggregation, access);
  topo.link(*net.adversary, *net.aggregation, access);
  topo.link(*net.cross, *net.aggregation, access);
  const auto [a_up, r_down] = topo.link(*net.aggregation, *net.router, uplink);
  (void)r_down;
  net.aggregation->add_route(ndn::Name("/producer"), a_up);
  const auto [r_up, p_down] = topo.link(*net.router, *net.producer, core);
  (void)p_down;
  net.router->add_route(ndn::Name("/producer"), r_up);

  // Poisson cross traffic for always-unique names: every request crosses
  // the bottleneck in both directions.
  if (cross_rate_per_s > 0.0) {
    auto rng = std::make_shared<util::Rng>(seed ^ 0xc2b2ae3d27d4eb4fULL);
    auto counter = std::make_shared<std::uint64_t>(0);
    auto tick = std::make_shared<std::function<void()>>();
    sim::Scheduler& sched = topo.scheduler();
    sim::Consumer* cross = net.cross;
    *tick = [&sched, rng, counter, cross, tick, cross_rate_per_s] {
      cross->fetch(ndn::Name("/producer/cross").append_number((*counter)++),
                   [](const ndn::Data&, util::SimDuration) {});
      const double gap_s = rng->exponential(cross_rate_per_s);
      sched.schedule_in(static_cast<util::SimDuration>(gap_s * 1e9), *tick);
    };
    sched.schedule_in(0, *tick);
  }
  return net;
}

util::SimDuration fetch_blocking(sim::Consumer& consumer, sim::Scheduler& sched,
                                 const ndn::Name& name) {
  std::optional<util::SimDuration> rtt;
  consumer.fetch(name, [&rtt](const ndn::Data&, util::SimDuration r) { rtt = r; });
  while (!rtt && sched.run_one()) {
  }
  return rtt.value_or(0);
}

double decision_accuracy(double cross_rate_per_s, std::size_t trials, std::uint64_t seed) {
  util::Rng coin(seed ^ 0x9e3779b97f4a7c15ULL);
  std::size_t correct = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    CrossNet net = make_net(seed + trial, cross_rate_per_s);
    sim::Scheduler& sched = net.topo->scheduler();
    const ndn::Name base = ndn::Name("/producer/t").append_number(trial);

    // Let the cross traffic warm the queue up before measuring.
    sched.run_until(util::millis(50));

    double miss_ref = 0.0;
    double hit_ref = 0.0;
    constexpr int kCalib = 3;
    for (int i = 0; i < kCalib; ++i) {
      const ndn::Name calib = base.append("calib" + std::to_string(i));
      miss_ref += util::to_millis(fetch_blocking(*net.adversary, sched, calib));
      hit_ref += util::to_millis(fetch_blocking(*net.adversary, sched, calib));
    }
    miss_ref /= kCalib;
    hit_ref /= kCalib;

    const ndn::Name target = base.append("target");
    const bool requested = coin.bernoulli(0.5);
    if (requested) (void)fetch_blocking(*net.user, sched, target);
    const double d1 = util::to_millis(fetch_blocking(*net.adversary, sched, target));
    const bool verdict = std::abs(d1 - hit_ref) < std::abs(d1 - miss_ref);
    if (verdict == requested) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(trials);
}

}  // namespace

int main() {
  bench::print_header("Ablation", "timing-attack robustness under bottleneck cross traffic");
  const std::size_t trials = bench::scale_from_env("NDNP_TIMING_TRIALS", 40);
  const double capacity_pkt_s =
      kBottleneckBps / (static_cast<double>(kCrossPayload + 100) * 8.0);
  std::printf("bottleneck: %.0f Mbit/s FIFO (~%.0f cross-fetches/s capacity), %zu trials\n\n",
              kBottleneckBps / 1e6, capacity_pkt_s, trials);

  std::printf("%16s  %10s  %16s\n", "cross rate /s", "load", "attack accuracy");
  for (const double rate : {0.0, 400.0, 800.0, 1200.0, 1450.0}) {
    const double accuracy = decision_accuracy(rate, trials, 31337);
    std::printf("%16.0f  %9.0f%%  %16.3f\n", rate, 100.0 * rate / capacity_pkt_s, accuracy);
  }
  std::printf(
      "\nThe attack shrugs off moderate congestion; accuracy only starts dropping\n"
      "when the shared uplink's queueing variance at >80%% load begins to rival\n"
      "the R<->producer RTT gap. (Congestion beyond R cannot hurt the attack at\n"
      "all: it only pushes misses further away from hits.) Consistent with the\n"
      "paper measuring near-perfect distinguishability on a live testbed.\n");
  bench::print_footer();
  return 0;
}
