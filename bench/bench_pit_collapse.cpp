// Extension bench: the PIT-collapse side channel (see attack/pit_probe.hpp).
//
// Demonstrates real-time detection of *in-flight* requests via interest
// collapsing at the shared router, and that every CS-side countermeasure of
// the paper is blind to it — only denying the adversary the name
// (Section V-A unpredictable names) closes the channel.
#include <cstdio>

#include "attack/pit_probe.hpp"
#include "bench_common.hpp"
#include "core/policies.hpp"
#include "core/theory.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Extension", "PIT-collapse side channel: detecting in-flight requests");

  const std::size_t trials = bench::scale_from_env("NDNP_PIT_TRIALS", 150);
  std::printf("Victim fetches far-away content (RTT ~50 ms); the adversary probes the\n"
              "same name 20%% of an RTT later and watches for the collapsed-interest\n"
              "shortcut. %zu trials, balanced prior.\n\n",
              trials);

  struct Row {
    const char* policy_name;
    std::function<std::unique_ptr<core::CachePrivacyPolicy>()> factory;
    bool pad_collapsed = false;
  };
  const auto expo = core::solve_expo_params(5, 0.005, 0.05);
  const Row rows[] = {
      {"NoPrivacy", nullptr},
      {"Always-Delay (content-specific)",
       [] {
         return std::make_unique<core::AlwaysDelayPolicy>(
             core::AlwaysDelayPolicy::content_specific());
       }},
      {"Exponential-Random-Cache",
       [&] { return core::RandomCachePolicy::exponential(expo->alpha, expo->domain, 9); }},
      {"NoPrivacy + collapse padding (ours)", nullptr, /*pad_collapsed=*/true},
  };

  std::printf("%-34s  %10s  %12s  %10s\n", "CS policy at R", "detection", "false-alarm",
              "accuracy");
  for (const Row& row : rows) {
    attack::PitProbeConfig config;
    config.trials = trials;
    config.seed = 7777;
    config.router_policy = row.factory;
    config.pad_collapsed_private = row.pad_collapsed;
    const attack::PitProbeResult result = attack::run_pit_collapse_attack(config);
    std::printf("%-34s  %10.3f  %12.3f  %10.3f\n", row.policy_name, result.detection_rate,
                result.false_alarm_rate, result.accuracy);
  }

  std::printf(
      "\nFinding (beyond the paper): interest collapsing leaks on the miss path,\n"
      "before any cache-management policy runs — the (k, eps, delta) schemes and\n"
      "artificial delays cannot see it. Two fixes work: unpredictable names deny\n"
      "the adversary the probe name, and the last row shows this library's PIT\n"
      "discipline (pad_collapsed_private) — collapsed private interests are\n"
      "delayed to full-fetch latency, collapsing the oracle to a coin flip while\n"
      "still saving the upstream bandwidth of the duplicate fetch.\n");
  bench::print_footer();
  return 0;
}
