// Reproduces the Section I combined attack: detecting a two-way
// interactive communication (e.g. voice or SSH) between Alice and Bob by
// probing the shared first-hop router's cache for both directions of the
// stream — and the Section V-A countermeasure (unpredictable names) that
// eliminates it.
#include <cstdio>

#include "attack/conversation.hpp"
#include "bench_common.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Section I analysis",
                      "conversation detection via two-sided cache probing");

  const std::size_t trials = bench::scale_from_env("NDNP_CONVERSATION_TRIALS", 200);
  std::printf("Alice adjacent to probed router R, Bob one WAN hop away; %zu trials;\n"
              "a call (30 frames each way) happens with probability 1/2 per trial.\n\n",
              trials);

  std::printf("%-28s  %10s  %12s  %10s\n", "naming", "detection", "false-alarm", "accuracy");
  for (const bool unpredictable : {false, true}) {
    attack::ConversationAttackConfig config;
    config.trials = trials;
    config.frames = 30;
    config.unpredictable_names = unpredictable;
    config.seed = 424242;
    const attack::ConversationAttackResult result = attack::run_conversation_attack(config);
    std::printf("%-28s  %10.3f  %12.3f  %10.3f\n",
                unpredictable ? "unpredictable (Section V-A)" : "predictable (/x/call/seq)",
                result.detection_rate, result.false_alarm_rate, result.accuracy);
  }
  std::printf(
      "\nPaper: combining the consumer- and producer-side probes reveals ongoing\n"
      "two-way communication; PRF-derived names deny the adversary both the exact\n"
      "names and prefix matches, collapsing the attack to coin flipping.\n");
  bench::print_footer();
  return 0;
}
