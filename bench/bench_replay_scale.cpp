// bench_replay_scale: the million-user scale exercise behind docs/SCALE.md.
//
// Streams a synthetic workload (SyntheticWorkload: exponential arrivals,
// Zipf catalogue — no full trace ever in memory) through the sharded
// replayer and reports:
//
//   - replay throughput (records/sec) at --jobs 1 and --jobs N,
//   - the parallel speedup (acceptance floor: >= 5x at 8 jobs for the
//     full-scale run; CI uses a smaller smoke via the NDNP_SCALE_* knobs),
//   - peak RSS (getrusage), demonstrating the bounded-memory property —
//     the footprint is chunk buffers + shard cache state, independent of
//     how many records stream through,
//   - byte-identity of the merged metrics between the two jobs counts.
//
// A deterministic snapshot of the run lands in BENCH_replay_scale.json
// (MetricsSnapshot JSON, same convention as BENCH_micro_ops.json).
// Scale knobs (defaults reproduce the headline numbers; CI shrinks them):
//   NDNP_SCALE_REQUESTS  (default 2'000'000)
//   NDNP_SCALE_USERS     (default 1'000'000)
//   NDNP_SCALE_OBJECTS   (default 10'000'000)
//   NDNP_SCALE_SHARDS    (default 8)
#include <sys/resource.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "core/policies.hpp"
#include "runner/sharded_replay.hpp"
#include "trace/stream.hpp"
#include "util/metrics.hpp"

namespace {

/// Peak resident set size in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ndnp;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv);

  trace::TraceGenConfig workload_config;
  workload_config.num_requests = bench::scale_from_env("NDNP_SCALE_REQUESTS", 2'000'000);
  workload_config.num_users = bench::scale_from_env("NDNP_SCALE_USERS", 1'000'000);
  workload_config.num_objects = bench::scale_from_env("NDNP_SCALE_OBJECTS", 10'000'000);
  workload_config.num_domains = 5'000;
  workload_config.zipf_exponent = 0.8;
  workload_config.duration_s = 86'400.0;
  workload_config.seed = 2013;
  const std::size_t shards = bench::scale_from_env("NDNP_SCALE_SHARDS", 8);
  const std::size_t parallel_jobs =
      options.jobs == 1 ? 8 : runner::resolve_jobs(options.jobs);

  bench::print_header("replay-scale",
                      "streaming sharded replay at million-user scale (docs/SCALE.md)");
  std::printf("requests=%zu users=%zu objects=%zu shards=%zu jobs=%zu\n\n",
              workload_config.num_requests, workload_config.num_users,
              workload_config.num_objects, shards, parallel_jobs);

  const trace::SyntheticWorkload workload(workload_config);

  runner::ShardedReplayConfig config;
  config.shards = shards;
  config.chunk_records = 64 * 1024;
  config.master_seed = 99;
  config.replay.cache_capacity = 8'000;
  config.replay.private_fraction = 0.2;
  config.replay.upstream_loss = options.upstream_loss();
  config.replay.upstream_retry_penalty = options.upstream_retry_penalty();
  config.replay.policy_factory = [] {
    return core::RandomCachePolicy::exponential(0.999, 201, 6);
  };
  const runner::TraceSourceFactory source = [&workload] { return workload.open(); };

  const double rss_before_mib = peak_rss_mib();

  config.jobs = 1;
  const runner::ShardedReplayResult serial = runner::replay_sharded(source, config);
  const double serial_rps =
      serial.wall_seconds <= 0.0
          ? 0.0
          : static_cast<double>(serial.records) / serial.wall_seconds;
  std::printf("jobs=1   %10llu records  %8.2f s  %10.0f records/sec\n",
              static_cast<unsigned long long>(serial.records), serial.wall_seconds,
              serial_rps);

  config.jobs = parallel_jobs;
  const runner::ShardedReplayResult parallel = runner::replay_sharded(source, config);
  const double parallel_rps =
      parallel.wall_seconds <= 0.0
          ? 0.0
          : static_cast<double>(parallel.records) / parallel.wall_seconds;
  const double speedup = parallel.wall_seconds <= 0.0
                             ? 0.0
                             : serial.wall_seconds / parallel.wall_seconds;
  std::printf("jobs=%-2zu  %10llu records  %8.2f s  %10.0f records/sec  (%.2fx)\n",
              parallel_jobs, static_cast<unsigned long long>(parallel.records),
              parallel.wall_seconds, parallel_rps, speedup);

  const bool identical = serial.merged_json() == parallel.merged_json();
  const double rss_mib = peak_rss_mib();
  std::printf("\nmerged metrics jobs=1 vs jobs=%zu: %s\n", parallel_jobs,
              identical ? "byte-identical" : "DIVERGED");
  std::printf("peak RSS %.1f MiB (%.1f MiB before replay; catalogue CDF + shard caches "
              "+ chunk buffers — independent of record count)\n",
              rss_mib, rss_before_mib);
  std::printf("hit rate %.2f%%  served-from-cache %.2f%%\n",
              parallel.merged.gauges.at("replay.hit_rate_pct"),
              parallel.merged.gauges.at("replay.cache_served_pct"));

  util::MetricsSnapshot snap;
  snap.counters["scale.records"] = parallel.records;
  snap.counters["scale.users"] = workload_config.num_users;
  snap.counters["scale.objects"] = workload_config.num_objects;
  snap.counters["scale.shards"] = shards;
  snap.counters["scale.jobs"] = parallel_jobs;
  snap.counters["scale.merged_identical"] = identical ? 1 : 0;
  snap.gauges["scale.serial_records_per_sec"] = serial_rps;
  snap.gauges["scale.parallel_records_per_sec"] = parallel_rps;
  snap.gauges["scale.speedup"] = speedup;
  snap.gauges["scale.peak_rss_mib"] = rss_mib;
  snap.gauges["scale.hit_rate_pct"] = parallel.merged.gauges.at("replay.hit_rate_pct");
  {
    std::ofstream out("BENCH_replay_scale.json");
    out << snap.to_json() << '\n';
  }
  std::printf("\nwrote BENCH_replay_scale.json\n");
  bench::print_footer();
  return identical ? 0 : 1;
}
