// Monte-Carlo validation of Theorems VI.1-VI.4: the literal Algorithm 1
// implementation is run millions of times and compared against the closed
// forms — expected misses (utility) and the (eps, delta) budgets of the
// exact output distributions.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/indistinguishability.hpp"
#include "core/theory.hpp"
#include "util/rng.hpp"

namespace {

using namespace ndnp;

/// Literal Algorithm 1: average simulated misses among c post-insertion
/// requests over `trials` fresh contents.
double simulate_mean_misses(const core::KDistribution& dist, std::int64_t c,
                            std::size_t trials, std::uint64_t seed) {
  util::Rng rng(seed);
  std::uint64_t total = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::int64_t k = dist.sample(rng);
    for (std::int64_t i = 1; i <= c; ++i)
      if (i <= k) ++total;
  }
  return static_cast<double>(total) / static_cast<double>(trials);
}

}  // namespace

int main() {
  bench::print_header("Theorems VI.1-VI.4", "Monte-Carlo validation of the closed forms");
  const std::size_t trials = bench::scale_from_env("NDNP_THEORY_TRIALS", 200'000);

  std::printf("Utility (Theorems VI.2 / VI.4): E[M(c)] closed form vs %zu-trial simulation\n\n",
              trials);
  std::printf("%-28s %5s  %12s  %12s  %10s\n", "scheme", "c", "closed form", "simulated",
              "|error|");
  double max_err = 0.0;
  int row_seed = 0;
  for (const std::int64_t c : {5LL, 20LL, 80LL}) {
    const core::UniformK uniform(50);
    const double closed_u = core::uniform_expected_misses(c, 50);
    const double sim_u = simulate_mean_misses(uniform, c, trials,
                                              static_cast<std::uint64_t>(1000 + row_seed++));
    std::printf("%-28s %5lld  %12.5f  %12.5f  %10.5f\n", "Uniform K=50",
                static_cast<long long>(c), closed_u, sim_u, std::abs(closed_u - sim_u));
    max_err = std::max(max_err, std::abs(closed_u - sim_u));

    const core::TruncatedGeometricK expo(0.9, 50);
    const double closed_e = core::expo_expected_misses(c, 0.9, 50);
    const double sim_e =
        simulate_mean_misses(expo, c, trials, static_cast<std::uint64_t>(2000 + row_seed++));
    std::printf("%-28s %5lld  %12.5f  %12.5f  %10.5f\n", "TruncGeom a=0.9 K=50",
                static_cast<long long>(c), closed_e, sim_e, std::abs(closed_e - sim_e));
    max_err = std::max(max_err, std::abs(closed_e - sim_e));
  }
  std::printf("max |error| = %.5f (statistical, shrinks as 1/sqrt(trials))\n\n", max_err);

  std::printf("Privacy (Theorems VI.1 / VI.3): delta of the exact output distributions at the\n"
              "theorem's epsilon vs the theorem bound (t = K + 8 probes, x prior requests)\n\n");
  std::printf("%-28s %3s  %10s  %12s  %12s\n", "scheme", "x", "epsilon", "measured", "bound");
  for (const std::int64_t x : {1LL, 3LL, 5LL}) {
    {
      const core::UniformK dist(200);
      const auto d0 = core::exact_output_distribution(dist, 0, 208);
      const auto dx = core::exact_output_distribution(dist, x, 208);
      const core::PrivacyBudget bound = core::uniform_privacy(x, 200);
      std::printf("%-28s %3lld  %10.4f  %12.6f  %12.6f\n", "Uniform K=200",
                  static_cast<long long>(x), bound.epsilon,
                  core::delta_for_epsilon(d0, dx, bound.epsilon + 1e-9), bound.delta);
    }
    {
      const double alpha = 0.99;
      const core::TruncatedGeometricK dist(alpha, 200);
      const auto d0 = core::exact_output_distribution(dist, 0, 208);
      const auto dx = core::exact_output_distribution(dist, x, 208);
      const core::PrivacyBudget bound = core::expo_privacy(x, alpha, 200);
      std::printf("%-28s %3lld  %10.4f  %12.6f  %12.6f\n", "TruncGeom a=0.99 K=200",
                  static_cast<long long>(x), bound.epsilon,
                  core::delta_for_epsilon(d0, dx, bound.epsilon + 1e-9), bound.delta);
    }
  }
  std::printf("\nPaper: measured delta matches the theorem bounds exactly (tight analysis).\n");
  bench::print_footer();
  return 0;
}
