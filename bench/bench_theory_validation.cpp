// Monte-Carlo validation of Theorems VI.1-VI.4: the literal Algorithm 1
// implementation is run millions of times and compared against the closed
// forms — expected misses (utility) and the (eps, delta) budgets of the
// exact output distributions.
//
// Each (scheme, c) / (scheme, x) row runs on the deterministic parallel
// runner (runner::run_theory_validation) with its own fixed seed; pass
// --jobs N. Stdout is byte-identical for every jobs value.
#include <cstdio>

#include "bench_common.hpp"
#include "runner/experiments.hpp"

int main(int argc, char** argv) {
  using namespace ndnp;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv);
  const std::size_t jobs = options.jobs;
  bench::print_header("Theorems VI.1-VI.4", "Monte-Carlo validation of the closed forms");

  runner::TheoryValidationConfig config;
  config.trials = bench::scale_from_env("NDNP_THEORY_TRIALS", 200'000);
  config.jobs = jobs;
  runner::SweepTraceCapture capture;
  config.capture = options.configure(capture);
  const runner::TheoryValidationResult result = runner::run_theory_validation(config);

  std::printf("Utility (Theorems VI.2 / VI.4): E[M(c)] closed form vs %zu-trial simulation\n\n",
              config.trials);
  std::printf("%s", result.format_utility_table().c_str());
  std::printf("max |error| = %.5f (statistical, shrinks as 1/sqrt(trials))\n\n",
              result.max_utility_error);

  std::printf("Privacy (Theorems VI.1 / VI.3): delta of the exact output distributions at the\n"
              "theorem's epsilon vs the theorem bound (t = K + 8 probes, x prior requests)\n\n");
  std::printf("%s", result.format_privacy_table().c_str());
  std::printf("\nPaper: measured delta matches the theorem bounds exactly (tight analysis).\n");
  bench::print_footer();
  bench::report_jobs(jobs, result.wall_seconds);
  return 0;
}
