// Reproduces the Section VI "non-private naive approach" analysis: with a
// fixed public threshold k, an adversary that probes until the first
// exposed hit recovers the exact number of prior requests — k-anonymity by
// counting collapses to zero privacy.
//
// Also plays the formal distinguishing game against the naive scheme
// (Degenerate K) vs the randomized schemes at the same k, showing why
// randomizing k_C is the fix.
#include <cstdio>

#include "attack/counter_attack.hpp"
#include "attack/distinguisher.hpp"
#include "bench_common.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Section VI analysis", "counter attack on the naive threshold scheme");

  constexpr std::int64_t kThreshold = 5;
  std::printf("Naive scheme with fixed k = %lld: adversary probes until first exposed hit.\n\n",
              static_cast<long long>(kThreshold));
  std::printf("%16s  %12s  %18s\n", "prior requests", "probes used", "recovered count");
  bool all_exact = true;
  for (std::int64_t x = 0; x <= kThreshold; ++x) {
    const attack::CounterAttackResult result =
        attack::run_naive_counter_attack(kThreshold, x);
    std::printf("%16lld  %12lld  %18lld\n", static_cast<long long>(x),
                static_cast<long long>(result.probes_used),
                static_cast<long long>(result.inferred_prior_requests));
    all_exact = all_exact && result.inferred_prior_requests == x;
  }
  std::printf("\nExact recovery for every 0 <= x <= k: %s\n", all_exact ? "YES" : "NO");
  std::printf("Paper: \"Adv learns that exactly k - c' requests have been issued\".\n\n");

  std::printf("Distinguishing game (x = 2 prior requests, t = 40 probes, 20000 rounds):\n");
  std::printf("%-32s  %10s  %12s\n", "scheme", "accuracy", "Bayes bound");
  attack::DistinguisherConfig game;
  game.x = 2;
  game.t = 40;
  game.rounds = 20'000;
  const struct {
    const char* name;
    std::unique_ptr<core::KDistribution> dist;
  } schemes[] = {
      {"Naive (Degenerate k=5)", std::make_unique<core::DegenerateK>(5)},
      {"Uniform-Random-Cache K=100", std::make_unique<core::UniformK>(100)},
      {"Expo-Random-Cache a=0.999 K=100",
       std::make_unique<core::TruncatedGeometricK>(0.999, 100)},
  };
  for (const auto& scheme : schemes) {
    const attack::DistinguisherResult result =
        attack::run_distinguishing_game(*scheme.dist, game);
    std::printf("%-32s  %10.4f  %12.4f\n", scheme.name, result.accuracy, result.bayes_bound);
  }
  std::printf("\nPaper: the naive scheme is fully distinguishable (accuracy ~1); the\n"
              "randomized schemes pin the adversary near coin-flipping (1/2 + delta/4).\n");
  bench::print_footer();
  return 0;
}
