// Ablation: the three Always-Delay variants of Section V-B — constant
// gamma, content-specific gamma_C, dynamic — compared on (a) privacy
// (residual hit/miss distinguishability under the timing attack) and
// (b) latency cost (mean response delay on the trace replay).
//
// Expected: content-specific is safe at exactly the true-fetch latency
// cost; constant gamma is safe only when gamma covers the farthest
// producer (and over-delays nearby content); dynamic trades a little
// privacy for lower delay on popular content.
#include <cstdio>

#include "bench_common.hpp"
#include "core/policies.hpp"
#include "trace/replayer.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Ablation", "Always-Delay variants: privacy vs latency");

  struct Variant {
    const char* name;
    std::function<std::unique_ptr<core::CachePrivacyPolicy>()> factory;
  };
  const Variant variants[] = {
      {"none (No-Privacy)", [] { return std::make_unique<core::NoPrivacyPolicy>(); }},
      {"constant gamma=8ms",
       [] {
         return std::make_unique<core::AlwaysDelayPolicy>(
             core::AlwaysDelayPolicy::constant(util::millis(8)));
       }},
      {"constant gamma=2ms (too low)",
       [] {
         return std::make_unique<core::AlwaysDelayPolicy>(
             core::AlwaysDelayPolicy::constant(util::millis(2)));
       }},
      {"content-specific",
       [] {
         return std::make_unique<core::AlwaysDelayPolicy>(
             core::AlwaysDelayPolicy::content_specific());
       }},
      {"dynamic (floor 3ms, decay .8)",
       [] {
         return std::make_unique<core::AlwaysDelayPolicy>(core::AlwaysDelayPolicy::dynamic(
             {.two_hop_floor = util::millis(3), .decay = 0.8}));
       }},
      {"dynamic (floor 8ms)",
       [] {
         return std::make_unique<core::AlwaysDelayPolicy>(core::AlwaysDelayPolicy::dynamic(
             {.two_hop_floor = util::millis(8), .decay = 0.8}));
       }},
  };

  std::printf("Residual timing-attack accuracy at R (LAN scenario, all content private):\n\n");
  std::printf("%-32s  %16s\n", "variant", "Bayes accuracy");
  for (const Variant& variant : variants) {
    attack::TimingAttackConfig config;
    config.trials = bench::scale_from_env("NDNP_TIMING_TRIALS", 25);
    config.contents_per_trial = 15;
    config.seed = 11;
    config.scenario_params = [&variant](std::uint64_t seed) {
      sim::ScenarioParams params = sim::lan_scenario_params(seed);
      params.producer_config.mark_private = true;
      params.router_policy = variant.factory;
      return params;
    };
    const attack::TimingAttackResult result = attack::run_timing_attack(config);
    std::printf("%-32s  %16.4f\n", variant.name, result.bayes_accuracy);
  }

  std::printf("\nLatency cost on the trace replay (cache 8000, 20%% private):\n\n");
  trace::TraceGenConfig gen;
  gen.num_requests = bench::scale_from_env("NDNP_TRACE_REQUESTS", 150'000);
  gen.num_objects = 60'000;
  gen.seed = 2013;
  const trace::Trace tr = trace::generate_trace(gen);
  std::printf("%-32s  %14s  %12s\n", "variant", "mean resp ms", "hit rate");
  for (const Variant& variant : variants) {
    trace::ReplayConfig config;
    config.cache_capacity = 8'000;
    config.private_fraction = 0.2;
    config.seed = 99;
    config.policy_factory = variant.factory;
    const trace::ReplayResult result = trace::replay(tr, config);
    std::printf("%-32s  %14.3f  %11.2f%%\n", variant.name, result.mean_response_ms,
                result.hit_rate_pct());
  }
  std::printf(
      "\nPaper (Section V-B): constant gamma covering the producer RTT is safe (misses are\n"
      "padded up to gamma); gamma below it sacrifices privacy. Content-specific gamma_C is\n"
      "safe at exactly the true-fetch latency cost. Dynamic delay is distinguishable against\n"
      "this raw hit-vs-origin attack even with a high floor (hits get delayed *more* than\n"
      "misses, which are never padded): its defense presumes nearby in-network caches make\n"
      "the mimicked delay plausible — the paper's noted privacy/responsiveness trade.\n"
      "(Residual accuracies of ~0.6 for safe variants are finite-sample TV estimator bias;\n"
      "the single-threshold adversary on the same data sits at chance.)\n");
  bench::print_footer();
  return 0;
}
