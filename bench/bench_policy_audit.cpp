// Black-box policy audit (core/audit.hpp): empirically measure the privacy
// of every cache-management policy in the library by playing the
// Definition IV.3 game against the real engine and estimating the
// adversary's Bayes accuracy and the (eps, delta) budget. For the
// Random-Cache schemes the measured values converge to the Theorem
// VI.1/VI.3 predictions — the closed forms and the executable system agree.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/audit.hpp"
#include "core/policies.hpp"
#include "core/theory.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Policy audit", "black-box (eps, delta) measurement of every policy");

  core::AuditConfig config;
  config.x = 2;
  config.probes = 40;
  config.rounds = bench::scale_from_env("NDNP_AUDIT_ROUNDS", 30'000);
  config.delta = 0.05;
  std::printf("game: x=%lld prior requests, %lld probes, %zu rounds/state, delta budget %.2f\n\n",
              static_cast<long long>(config.x), static_cast<long long>(config.probes),
              config.rounds, config.delta);

  struct Row {
    const char* name;
    std::function<std::unique_ptr<core::CachePrivacyPolicy>()> factory;
    double delta_budget;  // must sit above the scheme's one-sided floor
    const char* theory;
  };
  auto seed = std::make_shared<std::uint64_t>(0);
  const Row rows[] = {
      {"NoPrivacy", [] { return std::make_unique<core::NoPrivacyPolicy>(); }, 0.05,
       "fully distinguishable"},
      {"NaiveThreshold(k=5)", [] { return std::make_unique<core::NaiveThresholdPolicy>(5); },
       0.05, "fully distinguishable"},
      {"AlwaysDelay(content-specific)",
       [] {
         return std::make_unique<core::AlwaysDelayPolicy>(
             core::AlwaysDelayPolicy::content_specific());
       },
       0.05, "perfect privacy (Def. IV.2)"},
      {"Uniform-Random-Cache K=30",
       [seed] { return core::RandomCachePolicy::uniform(30, ++*seed); }, 0.15,
       "Thm VI.1: delta=2x/K=0.133, acc<=0.533+MC bias"},
      // Expo's one-sided floor at x=2 is 1-a^2 ~ 0.28: audit eps above it.
      {"Expo-Random-Cache a=0.85 K=30",
       [seed] { return core::RandomCachePolicy::exponential(0.85, 30, ++*seed); }, 0.32,
       "Thm VI.3: eps = x*ln(1/a) = 0.325"},
  };

  std::printf("%-32s  %10s  %14s  %20s\n", "policy", "Bayes acc", "delta(eps~0)",
              "eps(delta budget)");
  for (const Row& row : rows) {
    core::AuditConfig row_config = config;
    row_config.delta = row.delta_budget;
    const core::AuditReport report = core::audit_policy(row.factory, row_config);
    std::printf("%-32s  %10.4f  %14.4f  ", row.name, report.bayes_accuracy,
                report.delta_near_zero_epsilon);
    if (std::isinf(report.epsilon_at_delta))
      std::printf("%11s @ %4.2f", "inf", row.delta_budget);
    else
      std::printf("%11.4f @ %4.2f", report.epsilon_at_delta, row.delta_budget);
    std::printf("   [%s]\n", row.theory);
  }

  std::printf(
      "\nReading: the broken policies audit as fully distinguishable; Always-Delay\n"
      "audits at exactly chance; Uniform-Random-Cache's one-sided delta matches\n"
      "2x/K with eps ~ 0; Exponential-Random-Cache needs a delta budget above its\n"
      "1-a^x floor, where its finite eps emerges near the theorem value (the\n"
      "excess comes from ratio noise on rare tail outcomes; it shrinks with\n"
      "NDNP_AUDIT_ROUNDS, as does the Bayes-accuracy TV-estimator bias).\n");
  bench::print_footer();
  return 0;
}
