// Reproduces Figure 5(b): Exponential-Random-Cache hit rate vs cache size,
// varying the fraction of private requests over {5, 10, 20, 40} %.
//
// Expected shape: hit rate falls as more content is private (more
// simulated misses), with the penalty shrinking at larger cache sizes.
#include <cstdio>

#include "bench_common.hpp"
#include "core/policies.hpp"
#include "core/theory.hpp"
#include "trace/replayer.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Figure 5(b)",
                      "Exponential-Random-Cache hit rate, varying private request share");

  trace::TraceGenConfig gen;
  gen.num_requests = bench::scale_from_env("NDNP_TRACE_REQUESTS", 200'000);
  gen.num_objects = bench::scale_from_env("NDNP_TRACE_OBJECTS", 200'000);
  gen.seed = 2013;
  const trace::Trace tr = trace::generate_trace(gen);

  constexpr std::int64_t kAnonymity = 5;
  constexpr double kEpsilon = 0.005;
  constexpr double kDelta = 0.05;
  const auto expo = core::solve_expo_params(kAnonymity, kEpsilon, kDelta);
  if (!expo) {
    std::printf("unsolvable exponential parameterization\n");
    return 1;
  }
  std::printf("trace: %zu requests; k=%lld eps=%.3f -> alpha=%.6f K=%lld; eviction: LRU\n\n",
              tr.size(), static_cast<long long>(kAnonymity), kEpsilon, expo->alpha,
              static_cast<long long>(expo->domain));

  const std::size_t cache_sizes[] = {2'000, 4'000, 8'000, 16'000, 32'000, 0 /* Inf */};
  const double fractions[] = {0.05, 0.10, 0.20, 0.40};

  std::printf("%-14s", "private share");
  for (const std::size_t size : cache_sizes)
    size == 0 ? std::printf("%10s", "Inf") : std::printf("%10zu", size);
  std::printf("\n");

  for (const double fraction : fractions) {
    std::printf("%12.0f%% ", fraction * 100.0);
    for (const std::size_t size : cache_sizes) {
      trace::ReplayConfig config;
      config.cache_capacity = size;
      config.private_fraction = fraction;
      config.policy_factory = [&] {
        return core::RandomCachePolicy::exponential(expo->alpha, expo->domain, 5);
      };
      config.seed = 99;
      std::printf("%9.2f%%", trace::replay(tr, config).hit_rate_pct());
    }
    std::printf("\n");
  }

  std::printf("\nPaper: more private requests -> lower hit rate at every cache size;\n"
              "       curves keep the same rising shape in cache size.\n");
  bench::print_footer();
  return 0;
}
