// Reproduces Figure 5(b): Exponential-Random-Cache hit rate vs cache size,
// varying the fraction of private requests over {5, 10, 20, 40} %.
//
// Expected shape: hit rate falls as more content is private (more
// simulated misses), with the penalty shrinking at larger cache sizes.
//
// The grid itself lives in runner::run_fig5b (shared with the golden
// regression tests, which lock this table at tolerance 0); each cell is an
// independent run under --jobs, merged in run-index order, so the table is
// byte-identical for any jobs count.
#include <cstdio>

#include "bench_common.hpp"
#include "runner/experiments.hpp"

int main(int argc, char** argv) {
  using namespace ndnp;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv);
  bench::print_header("Figure 5(b)",
                      "Exponential-Random-Cache hit rate, varying private request share");

  runner::Fig5bConfig config;
  config.trace_requests = bench::scale_from_env("NDNP_TRACE_REQUESTS", 200'000);
  config.trace_objects = bench::scale_from_env("NDNP_TRACE_OBJECTS", 200'000);
  config.jobs = options.jobs;
  runner::SweepTraceCapture capture;
  config.capture = options.configure(capture);
  telemetry::SweepTelemetryCapture telemetry_capture;
  config.telemetry = options.configure_telemetry(telemetry_capture);

  const runner::Fig5bResult result = runner::run_fig5b(config);
  std::printf("trace: %zu requests; k=%lld eps=%.3f -> alpha=%.6f K=%lld; eviction: LRU\n\n",
              result.trace_size, static_cast<long long>(config.anonymity_k), config.epsilon,
              result.expo.alpha, static_cast<long long>(result.expo.domain));
  std::fputs(result.format_table().c_str(), stdout);
  bench::report_jobs(config.jobs, result.wall_seconds);

  std::printf("\nPaper: more private requests -> lower hit rate at every cache size;\n"
              "       curves keep the same rising shape in cache size.\n");
  bench::print_footer();
  return 0;
}
