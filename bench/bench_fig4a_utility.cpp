// Reproduces Figure 4(a): utility u(c) of Uniform- vs Exponential-Random-
// Cache as a function of the number of requests c, for k in {1, 5} at
// delta = 0.05, with the exponential scheme swept over epsilon in
// {0.03, 0.04, 0.05}.
//
// For each scheme the parameters are solved from the (k, eps, delta)
// target: uniform K = ceil(2k/delta); exponential alpha = e^{-eps/k} and
// the smallest K meeting delta. Curves use the exact post-insertion
// convention (see core/theory.hpp for the paper's convention note).
//
// The (k, c) grid runs on the deterministic parallel runner
// (runner::run_fig4a); pass --jobs N. Stdout is byte-identical for every
// jobs value.
#include <cstdio>

#include "bench_common.hpp"
#include "runner/experiments.hpp"

int main(int argc, char** argv) {
  using namespace ndnp;
  const bench::BenchOptions options = bench::parse_bench_options(argc, argv);
  const std::size_t jobs = options.jobs;
  bench::print_header("Figure 4(a)",
                      "utility vs number of requests, Uniform vs Exponential (delta = 0.05)");

  runner::Fig4aConfig config;
  config.jobs = jobs;
  runner::SweepTraceCapture capture;
  config.capture = options.configure(capture);
  runner::Fig4aResult result;
  try {
    result = runner::run_fig4a(config);
  } catch (const std::exception& e) {
    std::printf("unsolvable expo parameterization\n");
    (void)e;
    return 1;
  }
  std::printf("%s", result.format_table().c_str());
  std::printf(
      "Paper: exponential dominates uniform at matched privacy; both utilities rise with c;\n"
      "       the exponential scheme gains up to ~12%% over the uniform one.\n");
  bench::print_footer();
  bench::report_jobs(jobs, result.wall_seconds);
  return 0;
}
