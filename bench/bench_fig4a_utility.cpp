// Reproduces Figure 4(a): utility u(c) of Uniform- vs Exponential-Random-
// Cache as a function of the number of requests c, for k in {1, 5} at
// delta = 0.05, with the exponential scheme swept over epsilon in
// {0.03, 0.04, 0.05}.
//
// For each scheme the parameters are solved from the (k, eps, delta)
// target: uniform K = ceil(2k/delta); exponential alpha = e^{-eps/k} and
// the smallest K meeting delta. Curves use the exact post-insertion
// convention (see core/theory.hpp for the paper's convention note).
#include <cstdio>

#include "bench_common.hpp"
#include "core/theory.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Figure 4(a)",
                      "utility vs number of requests, Uniform vs Exponential (delta = 0.05)");

  constexpr double kDelta = 0.05;
  const double epsilons[] = {0.03, 0.04, 0.05};

  for (const std::int64_t k : {1LL, 5LL}) {
    const std::int64_t uniform_domain = core::uniform_domain_for_delta(k, kDelta);
    std::printf("k = %lld   (Uniform: K = %lld", static_cast<long long>(k),
                static_cast<long long>(uniform_domain));
    core::ExpoParams expo[3];
    for (int e = 0; e < 3; ++e) {
      const auto solved = core::solve_expo_params(k, epsilons[e], kDelta);
      if (!solved) {
        std::printf("\nunsolvable expo parameterization\n");
        return 1;
      }
      expo[e] = *solved;
      std::printf("; Expo eps=%.2f: alpha=%.5f K=%lld", epsilons[e], expo[e].alpha,
                  static_cast<long long>(expo[e].domain));
    }
    std::printf(")\n");
    std::printf("%6s  %10s  %14s  %14s  %14s\n", "c", "Uniform", "Expo e=0.03", "Expo e=0.04",
                "Expo e=0.05");
    for (std::int64_t c = 5; c <= 100; c += 5) {
      std::printf("%6lld  %10.4f  %14.4f  %14.4f  %14.4f\n", static_cast<long long>(c),
                  core::uniform_utility(c, uniform_domain),
                  core::expo_utility(c, expo[0].alpha, expo[0].domain),
                  core::expo_utility(c, expo[1].alpha, expo[1].domain),
                  core::expo_utility(c, expo[2].alpha, expo[2].domain));
    }
    std::printf("\n");
  }
  std::printf(
      "Paper: exponential dominates uniform at matched privacy; both utilities rise with c;\n"
      "       the exponential scheme gains up to ~12%% over the uniform one.\n");
  bench::print_footer();
  return 0;
}
