// Deployment study (extends Section V-B's deferred question "which routers
// should introduce artificial delays"): replay the proxy trace over a
// two-tier ISP network (4 edge routers -> core -> origin) and compare
// privacy-policy deployments — none, consumer-facing edge only, or every
// router — for each scheme, reporting per-tier hit rates, origin load and
// consumer latency.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/policies.hpp"
#include "core/theory.hpp"
#include "trace/network_replay.hpp"

int main() {
  using namespace ndnp;
  bench::print_header("Deployment study",
                      "network-wide trace replay: where should the policy run?");

  trace::TraceGenConfig gen;
  gen.num_requests = bench::scale_from_env("NDNP_TRACE_REQUESTS", 60'000);
  gen.num_objects = 40'000;
  gen.seed = 2013;
  const trace::Trace tr = trace::generate_trace(gen);

  const auto expo = core::solve_expo_params(5, 0.005, 0.05);
  if (!expo) return 1;

  std::printf("trace: %zu requests over a 4-edge + core + origin tree;\n"
              "edge caches 2000, core cache 8000, 20%% private, LRU\n\n",
              tr.size());

  struct Scheme {
    const char* name;
    std::function<std::unique_ptr<core::CachePrivacyPolicy>()> factory;
  };
  const Scheme schemes[] = {
      {"baseline (NoPrivacy)", nullptr},
      {"Always-Delay",
       [] {
         return std::make_unique<core::AlwaysDelayPolicy>(
             core::AlwaysDelayPolicy::content_specific());
       }},
      {"Expo-Random-Cache",
       [&] { return core::RandomCachePolicy::exponential(expo->alpha, expo->domain, 5); }},
  };

  // Mean latency rather than the median: with ~45 % of requests paying the
  // full origin RTT, the median sits on a knife edge between tiers.
  std::printf("%-22s %-12s %9s %9s %9s %9s %9s\n", "scheme", "deployment", "edge-hit%",
              "core-hit%", "origin%", "mean ms", "p95 ms");
  for (const Scheme& scheme : schemes) {
    const auto deployments =
        scheme.factory
            ? std::vector<trace::Deployment>{trace::Deployment::kEdgeOnly,
                                             trace::Deployment::kEverywhere}
            : std::vector<trace::Deployment>{trace::Deployment::kNone};
    for (const trace::Deployment deployment : deployments) {
      trace::NetworkReplayConfig config;
      config.edge_routers = 4;
      config.edge_cache = 2'000;
      config.core_cache = 8'000;
      config.private_fraction = 0.2;
      config.deployment = deployment;
      config.policy_factory = scheme.factory;
      config.seed = 99;
      const trace::NetworkReplayResult result = trace::replay_over_network(tr, config);
      std::printf("%-22s %-12s %8.2f%% %8.2f%% %8.2f%% %9.2f %9.2f\n", scheme.name,
                  std::string(to_string(deployment)).c_str(), result.edge_hit_pct(),
                  result.core_hit_pct(), result.origin_load_pct(), result.rtt_ms.mean(),
                  result.rtt_ms.quantile(0.95));
    }
  }

  std::printf(
      "\nReading: Always-Delay at the edge hides edge hits without adding core or\n"
      "origin load (bandwidth preserved); deploying it everywhere stacks delays\n"
      "for no extra consumer-side privacy. Random-Cache at the edge pushes its\n"
      "simulated misses upstream (higher core hit share) — and, per the\n"
      "timing_attack_demo caveat, edge-only simulated misses leak through the\n"
      "unprotected core cache, so Random-Cache needs 'everywhere' while\n"
      "Always-Delay is safe and cheapest at the consumer-facing edge alone,\n"
      "supporting the paper's Section V-B suggestion for delay-based schemes.\n");
  bench::print_footer();
  return 0;
}
