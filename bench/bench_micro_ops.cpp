// Microbenchmarks (google-benchmark): per-operation costs of the
// substrates — name parsing/hashing, SHA-256/HMAC, content-store
// insert/lookup under each eviction policy, the privacy policies' decision
// path, the forwarder pipeline, and trace replay throughput.
//
// Besides the google-benchmark suite, main() first runs a deterministic
// self-timed harness over the two CS hot paths the hash-index rewrite
// targets — exact-match lookup and insert+evict at 64k entries — and
// writes the measurements as canonical metrics JSON to
// BENCH_micro_ops.json in the current directory, next to the pre-rewrite
// baseline numbers (see EXPERIMENTS.md, "Micro-op hot-path baseline").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cache/content_store.hpp"
#include "core/engine.hpp"
#include "core/policies.hpp"
#include "crypto/hmac.hpp"
#include "ndn/tlv.hpp"
#include "sim/apps.hpp"
#include "sim/forwarder.hpp"
#include "sim/scheduler.hpp"
#include "trace/replayer.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace ndnp;

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state) {
    ndn::Name name("/youtube/alice/video-749.avi/137");
    benchmark::DoNotOptimize(name);
  }
}
BENCHMARK(BM_NameParse);

void BM_NameHash(benchmark::State& state) {
  const ndn::Name name("/youtube/alice/video-749.avi/137");
  for (auto _ : state) benchmark::DoNotOptimize(name.hash64());
}
BENCHMARK(BM_NameHash);

void BM_NamePrefixCheck(benchmark::State& state) {
  const ndn::Name prefix("/youtube/alice");
  const ndn::Name name("/youtube/alice/video-749.avi/137");
  for (auto _ : state) benchmark::DoNotOptimize(prefix.is_prefix_of(name));
}
BENCHMARK(BM_NamePrefixCheck);

void BM_NameToUri(benchmark::State& state) {
  const ndn::Name name("/youtube/alice/video-749.avi/137");
  for (auto _ : state) benchmark::DoNotOptimize(name.to_uri());
}
BENCHMARK(BM_NameToUri);

void BM_TlvEncodeInterest(benchmark::State& state) {
  ndn::Interest interest;
  interest.name = ndn::Name("/youtube/alice/video-749.avi/137");
  interest.nonce = 123456789;
  interest.scope = 2;
  for (auto _ : state) benchmark::DoNotOptimize(ndn::encode(interest));
}
BENCHMARK(BM_TlvEncodeInterest);

void BM_TlvDecodeData(benchmark::State& state) {
  ndn::Data data = ndn::make_data(ndn::Name("/youtube/alice/video-749.avi/137"),
                                  std::string(1024, 'x'), "alice", "key");
  const ndn::Buffer wire = ndn::encode(data);
  for (auto _ : state) benchmark::DoNotOptimize(ndn::decode_data(wire));
}
BENCHMARK(BM_TlvDecodeData);

void BM_Sha256(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Sha256::hash(payload));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(8192);

void BM_HmacSign(benchmark::State& state) {
  const std::string payload(1024, 'x');
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::sign_content("key", "/a/b/c", payload));
}
BENCHMARK(BM_HmacSign);

void BM_PrfNameToken(benchmark::State& state) {
  const crypto::Prf prf("shared-secret");
  std::uint64_t seq = 0;
  for (auto _ : state) benchmark::DoNotOptimize(prf.derive_token("audio", seq++));
}
BENCHMARK(BM_PrfNameToken);

void BM_ContentStoreInsert(benchmark::State& state) {
  const auto policy = static_cast<cache::EvictionPolicy>(state.range(0));
  cache::ContentStore cs(4096, policy, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ndn::Data data;
    data.name = ndn::Name("/bench/obj").append_number(i++ % 8192);
    cs.insert(std::move(data), {});
  }
}
BENCHMARK(BM_ContentStoreInsert)
    ->Arg(static_cast<int>(cache::EvictionPolicy::kLru))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kFifo))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kLfu))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kRandom));

void BM_ContentStoreLookupHit(benchmark::State& state) {
  cache::ContentStore cs(0, cache::EvictionPolicy::kLru, 1);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    ndn::Data data;
    data.name = ndn::Name("/bench/obj").append_number(i);
    cs.insert(std::move(data), {});
  }
  ndn::Interest interest;
  interest.name = ndn::Name("/bench/obj/2048");
  for (auto _ : state) benchmark::DoNotOptimize(cs.find(interest));
}
BENCHMARK(BM_ContentStoreLookupHit);

// The two hot paths the hash-index CS rewrite is accountable for, at the
// 64k working-set size the acceptance numbers are pinned at.
void BM_ContentStoreLookup64k(benchmark::State& state) {
  const auto policy = static_cast<cache::EvictionPolicy>(state.range(0));
  cache::ContentStore cs(0, policy, 1);
  constexpr std::uint64_t kEntries = 65536;
  std::vector<ndn::Interest> interests;
  interests.reserve(kEntries);
  for (std::uint64_t i = 0; i < kEntries; ++i) {
    ndn::Data data;
    data.name = ndn::Name("/bench/obj").append_number(i);
    cs.insert(std::move(data), {});
    ndn::Interest interest;
    interest.name = ndn::Name("/bench/obj").append_number(i * 7919 % kEntries);
    interests.push_back(std::move(interest));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs.find(interests[i]));
    if (++i == interests.size()) i = 0;
  }
}
BENCHMARK(BM_ContentStoreLookup64k)
    ->Arg(static_cast<int>(cache::EvictionPolicy::kLru))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kFifo))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kLfu))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kRandom));

void BM_ContentStoreInsertEvict64k(benchmark::State& state) {
  const auto policy = static_cast<cache::EvictionPolicy>(state.range(0));
  constexpr std::uint64_t kEntries = 65536;
  cache::ContentStore cs(kEntries, policy, 1);
  std::uint64_t i = 0;
  for (; i < kEntries; ++i) {
    ndn::Data data;
    data.name = ndn::Name("/bench/obj").append_number(i);
    cs.insert(std::move(data), {});
  }
  // Every timed insert is a fresh name, so at steady state each one evicts.
  for (auto _ : state) {
    ndn::Data data;
    data.name = ndn::Name("/bench/obj").append_number(i++);
    cs.insert(std::move(data), {});
  }
}
BENCHMARK(BM_ContentStoreInsertEvict64k)
    ->Arg(static_cast<int>(cache::EvictionPolicy::kLru))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kFifo))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kLfu))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kRandom));

void BM_EngineRequest(benchmark::State& state) {
  core::CachePrivacyEngine engine(4096, cache::EvictionPolicy::kLru,
                                  core::RandomCachePolicy::exponential(0.999, 1024, 1));
  const core::CachePrivacyEngine::FetchFn fetch = [](const ndn::Interest& interest) {
    return std::pair{ndn::make_data(interest.name, "x", "p", "k"), util::millis(20)};
  };
  std::uint64_t i = 0;
  util::SimTime now = 0;
  for (auto _ : state) {
    ndn::Interest interest;
    interest.name = ndn::Name("/bench/obj").append_number(i++ % 8192);
    interest.private_req = (i % 5) == 0;
    benchmark::DoNotOptimize(engine.handle(interest, now, fetch));
    now += 1000;
  }
}
BENCHMARK(BM_EngineRequest);

void BM_ForwarderRoundTrip(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Consumer consumer(sched, "C", 1);
  sim::ForwarderConfig fcfg;
  fcfg.cs_capacity = 4096;
  sim::Forwarder router(sched, "R", fcfg);
  sim::Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  sim::LinkConfig link;
  link.latency = util::micros(100);
  connect(consumer, router, link);
  const auto [rp, pr] = connect(router, producer, link);
  (void)pr;
  router.add_route(ndn::Name("/p"), rp);

  std::uint64_t i = 0;
  for (auto _ : state) {
    bool done = false;
    consumer.fetch(ndn::Name("/p/obj").append_number(i++),
                   [&done](const ndn::Data&, util::SimDuration) { done = true; });
    while (!done && sched.run_one()) {
    }
  }
}
BENCHMARK(BM_ForwarderRoundTrip);

// Armed variant: same round trip with a TelemetryHub folding every lookup
// into the detector banks. The delta against BM_ForwarderRoundTrip is the
// per-packet telemetry cost (BENCH_telemetry.json pins it under 5%).
void BM_ForwarderRoundTripTelemetry(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Consumer consumer(sched, "C", 1);
  sim::ForwarderConfig fcfg;
  fcfg.cs_capacity = 4096;
  sim::Forwarder router(sched, "R", fcfg);
  telemetry::TelemetryHub hub;
  router.arm_telemetry(&hub);
  sim::Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  sim::LinkConfig link;
  link.latency = util::micros(100);
  connect(consumer, router, link);
  const auto [rp, pr] = connect(router, producer, link);
  (void)pr;
  router.add_route(ndn::Name("/p"), rp);

  std::uint64_t i = 0;
  for (auto _ : state) {
    bool done = false;
    consumer.fetch(ndn::Name("/p/obj").append_number(i++),
                   [&done](const ndn::Data&, util::SimDuration) { done = true; });
    while (!done && sched.run_one()) {
    }
  }
}
BENCHMARK(BM_ForwarderRoundTripTelemetry);

// --- Scheduler: wheel vs reference heap -------------------------------------
// Self-rescheduling ticker workload: a fixed population of outstanding
// events, each one rescheduling itself at a mixed-magnitude delay (same
// tick through far-future, straddling every wheel level). One benchmark
// iteration is one schedule_in + run_one cycle — the steady state every
// simulation spends its time in. Two depths: 1024 outstanding (a small
// topology) and 128k outstanding (large sharded replays), where the
// heap's O(log n) sift over ~128-byte items turns into cache-miss chains
// while the wheel stays O(1) per placement.

/// Fixed mixed-magnitude delay table so both scheduler benchmarks replay
/// the identical access pattern with zero RNG cost in the timed region.
std::vector<util::SimDuration> scheduler_delay_table() {
  std::vector<util::SimDuration> delays(1 << 16);
  util::Rng rng(11);
  for (util::SimDuration& delay : delays) {
    switch (rng.uniform_u64(6)) {
      case 0: delay = 0; break;
      case 1: delay = static_cast<util::SimDuration>(rng.uniform_u64(1 << 10)); break;
      case 2: delay = static_cast<util::SimDuration>(rng.uniform_u64(std::uint64_t{1} << 18)); break;
      case 3: delay = static_cast<util::SimDuration>(rng.uniform_u64(std::uint64_t{1} << 26)); break;
      case 4: delay = static_cast<util::SimDuration>(rng.uniform_u64(std::uint64_t{1} << 34)); break;
      default: delay = static_cast<util::SimDuration>(rng.uniform_u64(std::uint64_t{1} << 38)); break;
    }
  }
  return delays;
}

/// Event body for the ticker: dispatch bumps the counter and reschedules
/// itself. All-reference capture keeps it well inside the inline budget.
template <typename Sched>
struct SchedulerTicker {
  Sched& sched;
  const std::vector<util::SimDuration>& delays;
  std::size_t& cursor;
  std::uint64_t& dispatched;
  void operator()() {
    ++dispatched;
    sched.schedule_in(delays[cursor++ & 0xFFFF], *this);
  }
};

template <typename Sched>
void scheduler_ticker_bench(benchmark::State& state) {
  Sched sched;
  const std::vector<util::SimDuration> delays = scheduler_delay_table();
  std::size_t cursor = 0;
  std::uint64_t dispatched = 0;
  const SchedulerTicker<Sched> ticker{sched, delays, cursor, dispatched};
  for (std::int64_t i = 0; i < state.range(0); ++i)
    sched.schedule_in(delays[cursor++ & 0xFFFF], ticker);
  for (auto _ : state) {
    if (!sched.run_one()) state.SkipWithError("scheduler drained");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(dispatched));
}

void BM_SchedulerWheelTicker(benchmark::State& state) {
  scheduler_ticker_bench<sim::WheelScheduler>(state);
}
BENCHMARK(BM_SchedulerWheelTicker)->Arg(1024)->Arg(131072);

void BM_SchedulerHeapTicker(benchmark::State& state) {
  scheduler_ticker_bench<sim::HeapScheduler>(state);
}
BENCHMARK(BM_SchedulerHeapTicker)->Arg(1024)->Arg(131072);

void BM_TraceReplayThroughput(benchmark::State& state) {
  trace::TraceGenConfig gen;
  gen.num_requests = 50'000;
  gen.num_objects = 20'000;
  gen.seed = 1;
  const trace::Trace tr = trace::generate_trace(gen);
  for (auto _ : state) {
    trace::ReplayConfig config;
    config.cache_capacity = 4'000;
    config.private_fraction = 0.2;
    config.seed = 2;
    config.policy_factory = [] {
      return core::RandomCachePolicy::exponential(0.999, 1024, 3);
    };
    benchmark::DoNotOptimize(trace::replay(tr, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 50'000);
}
BENCHMARK(BM_TraceReplayThroughput)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Deterministic hot-path report (BENCH_micro_ops.json).
//
// Self-timed (std::chrono, not google-benchmark) so the op counts and
// access patterns are fixed and the derived Mops/s gauges are directly
// comparable across commits. The *_baseline_mops gauges are the numbers
// the ordered-map ContentStore produced on the reference machine right
// before the hash-index rewrite, measured with this same harness; the
// rewrite's acceptance criterion is speedup >= 2 on every row.

struct HotPathBaseline {
  cache::EvictionPolicy policy;
  double lookup_mops;
  double insert_evict_mops;
};

// Pre-rewrite numbers (ordered std::map CS; see EXPERIMENTS.md).
constexpr HotPathBaseline kBaselines[] = {
    {cache::EvictionPolicy::kLru, 0.738, 0.621},
    {cache::EvictionPolicy::kFifo, 0.849, 0.628},
    {cache::EvictionPolicy::kLfu, 0.782, 0.500},
    {cache::EvictionPolicy::kRandom, 0.707, 0.219},
};

double run_lookup64k(cache::EvictionPolicy policy, std::uint64_t ops) {
  constexpr std::uint64_t kEntries = 65536;
  cache::ContentStore cs(0, policy, 1);
  std::vector<ndn::Interest> interests;
  interests.reserve(kEntries);
  for (std::uint64_t i = 0; i < kEntries; ++i) {
    ndn::Data data;
    data.name = ndn::Name("/bench/obj").append_number(i);
    cs.insert(std::move(data), {});
    ndn::Interest interest;
    interest.name = ndn::Name("/bench/obj").append_number(i * 7919 % kEntries);
    interests.push_back(std::move(interest));
  }
  std::uint64_t hits = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t done = 0; done < ops;) {
    for (const ndn::Interest& interest : interests) {
      if (done++ == ops) break;
      if (cs.find(interest) != nullptr) ++hits;
    }
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (hits == 0) std::fprintf(stderr, "lookup64k: impossible zero hits\n");
  return static_cast<double>(ops) / secs / 1e6;
}

double run_insert_evict64k(cache::EvictionPolicy policy, std::uint64_t ops) {
  constexpr std::uint64_t kEntries = 65536;
  cache::ContentStore cs(kEntries, policy, 1);
  std::uint64_t i = 0;
  for (; i < kEntries; ++i) {
    ndn::Data data;
    data.name = ndn::Name("/bench/obj").append_number(i);
    cs.insert(std::move(data), {});
  }
  // Pre-build the Data outside the timed region: the harness measures the
  // store, not Name construction.
  std::vector<ndn::Data> pending;
  pending.reserve(ops);
  for (std::uint64_t j = 0; j < ops; ++j, ++i) {
    ndn::Data data;
    data.name = ndn::Name("/bench/obj").append_number(i);
    pending.push_back(std::move(data));
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (ndn::Data& data : pending) cs.insert(std::move(data), {});
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (cs.stats().evictions != ops) std::fprintf(stderr, "insert_evict64k: eviction miscount\n");
  return static_cast<double>(ops) / secs / 1e6;
}

/// Self-timed ticker harness (same workload as BM_Scheduler*Ticker): ~1024
/// outstanding self-rescheduling events, `ops` dispatches timed. Returns
/// events/sec in millions; `fallbacks`/`chunks` report the wheel's
/// allocation gauges (zero heap-fallback events and a slab that stopped
/// growing are part of the acceptance criteria, not just speed).
template <typename Sched>
double run_scheduler_ticker(int outstanding, std::uint64_t ops, std::size_t* fallbacks = nullptr,
                            std::size_t* chunks = nullptr) {
  Sched sched;
  const std::vector<util::SimDuration> delays = scheduler_delay_table();
  std::size_t cursor = 0;
  std::uint64_t dispatched = 0;
  const SchedulerTicker<Sched> ticker{sched, delays, cursor, dispatched};
  for (int i = 0; i < outstanding; ++i) sched.schedule_in(delays[cursor++ & 0xFFFF], ticker);
  // Warm-up carves the slab chunks and settles the wheel bitmap occupancy.
  while (dispatched < 100'000) (void)sched.run_one();
  const std::uint64_t timed_from = dispatched;
  const auto t0 = std::chrono::steady_clock::now();
  while (dispatched < timed_from + ops) (void)sched.run_one();
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if constexpr (std::is_same_v<Sched, sim::WheelScheduler>) {
    if (fallbacks != nullptr) *fallbacks = sched.heap_fallback_events();
    if (chunks != nullptr) *chunks = sched.slab_chunks();
  }
  return static_cast<double>(ops) / secs / 1e6;
}

void write_hot_path_report(const char* path) {
  constexpr std::uint64_t kLookupOps = 1'310'720;   // 20 x 65536
  constexpr std::uint64_t kInsertOps = 400'000;
  constexpr std::uint64_t kSchedulerOps = 2'000'000;
  util::MetricsRegistry registry;
  registry.counter("cs64k.exact_lookup.ops").inc(kLookupOps);
  registry.counter("cs64k.insert_evict.ops").inc(kInsertOps);
  registry.counter("sched.ticker.ops").inc(kSchedulerOps);
  util::MetricsSnapshot snap = registry.snapshot();
  std::printf("CS hot paths at 64k entries (also written to %s):\n", path);
  for (const HotPathBaseline& base : kBaselines) {
    const std::string policy(cache::to_string(base.policy));
    const double lookup = run_lookup64k(base.policy, kLookupOps);
    const double insert = run_insert_evict64k(base.policy, kInsertOps);
    snap.gauges["cs64k.exact_lookup." + policy + ".mops"] = lookup;
    snap.gauges["cs64k.exact_lookup." + policy + ".baseline_mops"] = base.lookup_mops;
    snap.gauges["cs64k.exact_lookup." + policy + ".speedup"] = lookup / base.lookup_mops;
    snap.gauges["cs64k.insert_evict." + policy + ".mops"] = insert;
    snap.gauges["cs64k.insert_evict." + policy + ".baseline_mops"] = base.insert_evict_mops;
    snap.gauges["cs64k.insert_evict." + policy + ".speedup"] = insert / base.insert_evict_mops;
    std::printf("  %-6s exact_lookup %7.3f Mops/s (baseline %5.3f, x%.2f)   "
                "insert_evict %7.3f Mops/s (baseline %5.3f, x%.2f)\n",
                policy.c_str(), lookup, base.lookup_mops, lookup / base.lookup_mops, insert,
                base.insert_evict_mops, insert / base.insert_evict_mops);
  }
  // Scheduler section: wheel vs the in-tree reference heap, measured live
  // in the same run (no frozen baseline constants — the reference is always
  // available behind -DNDNP_SCHEDULER_REFERENCE=1, so the speedup gauge
  // stays honest on any machine). The primary acceptance row is the deep
  // queue (128k outstanding, the sharded-replay regime) where the heap's
  // log-depth sift chains dominate: speedup >= 2 with zero heap-fallback
  // events in the ticker's steady state. The shallow row (1024) is locked
  // too — at that depth the contract is parity-or-better plus the
  // allocation win, not a large ratio.
  struct TickerDepth {
    const char* key;
    int outstanding;
  };
  std::printf("Scheduler ticker (self-rescheduling events, mixed delays):\n");
  for (const TickerDepth& depth : {TickerDepth{"sched.ticker.deep", 131072},
                                   TickerDepth{"sched.ticker.shallow", 1024}}) {
    std::size_t fallbacks = 0;
    std::size_t chunks = 0;
    const double heap_mops =
        run_scheduler_ticker<sim::HeapScheduler>(depth.outstanding, kSchedulerOps);
    const double wheel_mops = run_scheduler_ticker<sim::WheelScheduler>(
        depth.outstanding, kSchedulerOps, &fallbacks, &chunks);
    const std::string key(depth.key);
    snap.gauges[key + ".outstanding"] = depth.outstanding;
    snap.gauges[key + ".wheel.mops"] = wheel_mops;
    snap.gauges[key + ".heap.mops"] = heap_mops;
    snap.gauges[key + ".speedup"] = wheel_mops / heap_mops;
    snap.gauges[key + ".wheel.heap_fallback_events"] = static_cast<double>(fallbacks);
    snap.gauges[key + ".wheel.slab_chunks"] = static_cast<double>(chunks);
    std::printf("  %6d outstanding: wheel %7.3f Mev/s   heap %7.3f Mev/s   speedup x%.2f   "
                "heap_fallback=%zu slab_chunks=%zu\n",
                depth.outstanding, wheel_mops, heap_mops, wheel_mops / heap_mops, fallbacks,
                chunks);
  }
  std::ofstream out(path);
  out << snap.to_json() << '\n';
}

// ---------------------------------------------------------------------------
// Telemetry overhead report (BENCH_telemetry.json).
//
// The acceptance criterion for the online telemetry layer is that arming a
// TelemetryHub on the forwarder costs < 5% of round-trip throughput.
// Self-timed like the hot-path report: a fixed count of consumer->router->
// producer round trips over a warm 4096-entry CS (half hits, half misses,
// so both the hit and miss hooks are on the timed path), telemetry off vs
// armed, best-of-three interleaved to shed scheduler noise.

double run_forwarder_roundtrips(telemetry::TelemetryHub* hub, std::uint64_t ops) {
  sim::Scheduler sched;
  sim::Consumer consumer(sched, "C", 1);
  sim::ForwarderConfig fcfg;
  fcfg.cs_capacity = 4096;
  sim::Forwarder router(sched, "R", fcfg);
  if (hub != nullptr) router.arm_telemetry(hub);
  sim::Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  sim::LinkConfig link;
  link.latency = util::micros(100);
  connect(consumer, router, link);
  const auto [rp, pr] = connect(router, producer, link);
  (void)pr;
  router.add_route(ndn::Name("/p"), rp);

  const auto round_trip = [&](std::uint64_t object) {
    bool done = false;
    consumer.fetch(ndn::Name("/p/obj").append_number(object),
                   [&done](const ndn::Data&, util::SimDuration) { done = true; });
    while (!done && sched.run_one()) {
    }
  };
  // Warm the CS so the timed region alternates hits (objects re-fetched
  // from the warm set) with misses (fresh names).
  for (std::uint64_t i = 0; i < 4096; ++i) round_trip(i);
  std::uint64_t fresh = 4096;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i)
    round_trip((i & 1) == 0 ? i % 4096 : fresh++);
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return static_cast<double>(ops) / secs / 1e6;
}

void write_telemetry_report(const char* path) {
  constexpr std::uint64_t kOps = 120'000;
  constexpr int kRepeats = 3;
  double off_mops = 0.0;
  double on_mops = 0.0;
  std::uint64_t lookups = 0;
  for (int r = 0; r < kRepeats; ++r) {
    off_mops = std::max(off_mops, run_forwarder_roundtrips(nullptr, kOps));
    telemetry::TelemetryHub hub;
    on_mops = std::max(on_mops, run_forwarder_roundtrips(&hub, kOps));
    lookups = hub.lookups();
  }
  const double overhead_pct = 100.0 * (off_mops - on_mops) / off_mops;

  util::MetricsRegistry registry;
  registry.counter("telemetry.roundtrip.ops").inc(kOps);
  registry.counter("telemetry.roundtrip.lookups_per_run").inc(lookups);
  util::MetricsSnapshot snap = registry.snapshot();
  snap.gauges["telemetry.roundtrip.off.mops"] = off_mops;
  snap.gauges["telemetry.roundtrip.armed.mops"] = on_mops;
  snap.gauges["telemetry.roundtrip.overhead_pct"] = overhead_pct;
  snap.gauges["telemetry.compiled_in"] = NDNP_TELEMETRY ? 1.0 : 0.0;
  std::printf("Forwarder round trip, telemetry off vs armed (also written to %s):\n", path);
  std::printf("  off %7.3f Mrt/s   armed %7.3f Mrt/s   overhead %.2f%%  (budget < 5%%)\n",
              off_mops, on_mops, overhead_pct);
  std::ofstream out(path);
  out << snap.to_json() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  write_hot_path_report("BENCH_micro_ops.json");
  write_telemetry_report("BENCH_telemetry.json");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
