// Microbenchmarks (google-benchmark): per-operation costs of the
// substrates — name parsing/hashing, SHA-256/HMAC, content-store
// insert/lookup under each eviction policy, the privacy policies' decision
// path, the forwarder pipeline, and trace replay throughput.
#include <benchmark/benchmark.h>

#include "cache/content_store.hpp"
#include "core/engine.hpp"
#include "core/policies.hpp"
#include "crypto/hmac.hpp"
#include "ndn/tlv.hpp"
#include "sim/apps.hpp"
#include "sim/forwarder.hpp"
#include "trace/replayer.hpp"

namespace {

using namespace ndnp;

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state) {
    ndn::Name name("/youtube/alice/video-749.avi/137");
    benchmark::DoNotOptimize(name);
  }
}
BENCHMARK(BM_NameParse);

void BM_NameHash(benchmark::State& state) {
  const ndn::Name name("/youtube/alice/video-749.avi/137");
  for (auto _ : state) benchmark::DoNotOptimize(name.hash64());
}
BENCHMARK(BM_NameHash);

void BM_NamePrefixCheck(benchmark::State& state) {
  const ndn::Name prefix("/youtube/alice");
  const ndn::Name name("/youtube/alice/video-749.avi/137");
  for (auto _ : state) benchmark::DoNotOptimize(prefix.is_prefix_of(name));
}
BENCHMARK(BM_NamePrefixCheck);

void BM_NameToUri(benchmark::State& state) {
  const ndn::Name name("/youtube/alice/video-749.avi/137");
  for (auto _ : state) benchmark::DoNotOptimize(name.to_uri());
}
BENCHMARK(BM_NameToUri);

void BM_TlvEncodeInterest(benchmark::State& state) {
  ndn::Interest interest;
  interest.name = ndn::Name("/youtube/alice/video-749.avi/137");
  interest.nonce = 123456789;
  interest.scope = 2;
  for (auto _ : state) benchmark::DoNotOptimize(ndn::encode(interest));
}
BENCHMARK(BM_TlvEncodeInterest);

void BM_TlvDecodeData(benchmark::State& state) {
  ndn::Data data = ndn::make_data(ndn::Name("/youtube/alice/video-749.avi/137"),
                                  std::string(1024, 'x'), "alice", "key");
  const ndn::Buffer wire = ndn::encode(data);
  for (auto _ : state) benchmark::DoNotOptimize(ndn::decode_data(wire));
}
BENCHMARK(BM_TlvDecodeData);

void BM_Sha256(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Sha256::hash(payload));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(8192);

void BM_HmacSign(benchmark::State& state) {
  const std::string payload(1024, 'x');
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::sign_content("key", "/a/b/c", payload));
}
BENCHMARK(BM_HmacSign);

void BM_PrfNameToken(benchmark::State& state) {
  const crypto::Prf prf("shared-secret");
  std::uint64_t seq = 0;
  for (auto _ : state) benchmark::DoNotOptimize(prf.derive_token("audio", seq++));
}
BENCHMARK(BM_PrfNameToken);

void BM_ContentStoreInsert(benchmark::State& state) {
  const auto policy = static_cast<cache::EvictionPolicy>(state.range(0));
  cache::ContentStore cs(4096, policy, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ndn::Data data;
    data.name = ndn::Name("/bench/obj").append_number(i++ % 8192);
    cs.insert(std::move(data), {});
  }
}
BENCHMARK(BM_ContentStoreInsert)
    ->Arg(static_cast<int>(cache::EvictionPolicy::kLru))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kFifo))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kLfu))
    ->Arg(static_cast<int>(cache::EvictionPolicy::kRandom));

void BM_ContentStoreLookupHit(benchmark::State& state) {
  cache::ContentStore cs(0, cache::EvictionPolicy::kLru, 1);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    ndn::Data data;
    data.name = ndn::Name("/bench/obj").append_number(i);
    cs.insert(std::move(data), {});
  }
  ndn::Interest interest;
  interest.name = ndn::Name("/bench/obj/2048");
  for (auto _ : state) benchmark::DoNotOptimize(cs.find(interest));
}
BENCHMARK(BM_ContentStoreLookupHit);

void BM_EngineRequest(benchmark::State& state) {
  core::CachePrivacyEngine engine(4096, cache::EvictionPolicy::kLru,
                                  core::RandomCachePolicy::exponential(0.999, 1024, 1));
  const core::CachePrivacyEngine::FetchFn fetch = [](const ndn::Interest& interest) {
    return std::pair{ndn::make_data(interest.name, "x", "p", "k"), util::millis(20)};
  };
  std::uint64_t i = 0;
  util::SimTime now = 0;
  for (auto _ : state) {
    ndn::Interest interest;
    interest.name = ndn::Name("/bench/obj").append_number(i++ % 8192);
    interest.private_req = (i % 5) == 0;
    benchmark::DoNotOptimize(engine.handle(interest, now, fetch));
    now += 1000;
  }
}
BENCHMARK(BM_EngineRequest);

void BM_ForwarderRoundTrip(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Consumer consumer(sched, "C", 1);
  sim::ForwarderConfig fcfg;
  fcfg.cs_capacity = 4096;
  sim::Forwarder router(sched, "R", fcfg);
  sim::Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  sim::LinkConfig link;
  link.latency = util::micros(100);
  connect(consumer, router, link);
  const auto [rp, pr] = connect(router, producer, link);
  (void)pr;
  router.add_route(ndn::Name("/p"), rp);

  std::uint64_t i = 0;
  for (auto _ : state) {
    bool done = false;
    consumer.fetch(ndn::Name("/p/obj").append_number(i++),
                   [&done](const ndn::Data&, util::SimDuration) { done = true; });
    while (!done && sched.run_one()) {
    }
  }
}
BENCHMARK(BM_ForwarderRoundTrip);

void BM_TraceReplayThroughput(benchmark::State& state) {
  trace::TraceGenConfig gen;
  gen.num_requests = 50'000;
  gen.num_objects = 20'000;
  gen.seed = 1;
  const trace::Trace tr = trace::generate_trace(gen);
  for (auto _ : state) {
    trace::ReplayConfig config;
    config.cache_capacity = 4'000;
    config.private_fraction = 0.2;
    config.seed = 2;
    config.policy_factory = [] {
      return core::RandomCachePolicy::exponential(0.999, 1024, 3);
    };
    benchmark::DoNotOptimize(trace::replay(tr, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 50'000);
}
BENCHMARK(BM_TraceReplayThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
