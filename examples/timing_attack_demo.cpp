// Full timing-attack demonstration: the adversary's end-to-end decision
// protocol (calibrate, probe, decide) against an undefended router and
// against each countermeasure of Section V/VI.
//
//   ./build/examples/timing_attack_demo
#include <cstdio>
#include <memory>

#include "attack/timing_attack.hpp"
#include "core/policies.hpp"
#include "core/theory.hpp"
#include "sim/topology.hpp"

using namespace ndnp;

namespace {

double attack_accuracy(
    const char* label,
    const std::function<std::unique_ptr<core::CachePrivacyPolicy>()>& policy,
    bool protect_core_routers = false) {
  attack::TimingAttackConfig config;
  config.trials = 60;
  config.seed = 2025;
  config.scenario_params = [&policy, protect_core_routers](std::uint64_t seed) {
    sim::ScenarioParams params = sim::lan_scenario_params(seed);
    params.producer_config.mark_private = true;  // producer-driven marking
    if (policy) params.router_policy = policy;
    if (protect_core_routers && policy) params.core_router_policy = policy;
    return params;
  };
  const double accuracy = attack::run_decision_protocol(config);
  std::printf("  %-44s adversary accuracy %.3f  %s\n", label, accuracy,
              accuracy > 0.9   ? "<- attack works"
              : accuracy < 0.6 ? "<- defeated"
                               : "<- weakened");
  return accuracy;
}

}  // namespace

int main() {
  std::printf("Adversary protocol (Section III): per trial, the victim requests the target\n");
  std::printf("with probability 1/2; Adv calibrates hit/miss references on throwaway\n");
  std::printf("content, probes the target once, and decides by nearest reference.\n\n");

  std::printf("LAN scenario, 60 trials, all content producer-marked private:\n\n");

  (void)attack_accuracy("no countermeasure", nullptr);
  (void)attack_accuracy("Always-Delay (content-specific gamma)", [] {
    return std::make_unique<core::AlwaysDelayPolicy>(
        core::AlwaysDelayPolicy::content_specific());
  });
  (void)attack_accuracy("Always-Delay (constant gamma = 8 ms)", [] {
    return std::make_unique<core::AlwaysDelayPolicy>(
        core::AlwaysDelayPolicy::constant(util::millis(8)));
  });

  // Random-Cache: the deployment caveat. Installed at R only, a simulated
  // miss is answered by the *next-hop router's* unprotected cache, so its
  // RTT still gives the victim away — the scheme must run on every router
  // whose cache the "miss" could hit (or the next hop must be the
  // producer itself).
  const auto expo = core::solve_expo_params(/*k=*/5, /*epsilon=*/0.005, /*delta=*/0.05);
  if (expo) {
    const auto expo_factory = [&] {
      return core::RandomCachePolicy::exponential(expo->alpha, expo->domain, /*seed=*/9);
    };
    std::printf("\nDeployment caveat for simulated-miss schemes:\n");
    (void)attack_accuracy("Expo-Random-Cache at R only (leaks!)", expo_factory,
                          /*protect_core_routers=*/false);
    (void)attack_accuracy("Expo-Random-Cache on every router", expo_factory,
                          /*protect_core_routers=*/true);
  }

  std::printf("\nNotes: with all routers protected, a single probe of Random-Cache almost\n");
  std::printf("always sees a simulated miss (k_C is rarely 0), so the one-shot adversary\n");
  std::printf("drops to chance. Installed at the consumer-facing router alone — the\n");
  std::printf("paper's suggested deployment — the simulated miss returns at neighbor-\n");
  std::printf("cache speed and remains distinguishable: the artificial-delay schemes do\n");
  std::printf("not have this problem because they never forward on a hidden hit. The\n");
  std::printf("formal multi-probe game and its (k, eps, delta) bounds are exercised by\n");
  std::printf("bench_naive_counter_attack and bench_theory_validation.\n");
  return 0;
}
