// Quickstart: build a small NDN network, fetch content through a caching
// router, and watch the cache take effect — then see the cache-privacy
// problem in one probe.
//
//   consumer (Alice) ----1ms---- router R ----5ms---- producer
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <optional>

#include "sim/apps.hpp"
#include "sim/forwarder.hpp"

using namespace ndnp;

namespace {

util::SimDuration fetch(sim::Consumer& consumer, sim::Scheduler& sched,
                        const ndn::Name& name) {
  std::optional<util::SimDuration> rtt;
  consumer.fetch(name, [&rtt](const ndn::Data& data, util::SimDuration r) {
    std::printf("  got %-28s payload=%zuB rtt=%.2f ms\n", data.name.to_uri().c_str(),
                data.payload.size(), util::to_millis(r));
    rtt = r;
  });
  while (!rtt && sched.run_one()) {
  }
  return rtt.value_or(-1);
}

}  // namespace

int main() {
  sim::Scheduler sched;

  // Nodes. The router runs the default NoPrivacy cache policy.
  sim::Consumer alice(sched, "alice", /*seed=*/1);
  sim::Consumer eve(sched, "eve", /*seed=*/2);
  sim::Forwarder router(sched, "R", {.cs_capacity = 1'000});
  sim::Producer producer(sched, "cnn", ndn::Name("/cnn"), "cnn-signing-key",
                         {.payload_size = 2'048}, /*seed=*/3);

  // Topology: both consumers share R as their first-hop router.
  sim::LinkConfig access = sim::lan_link(/*latency_ms=*/0.5);
  sim::LinkConfig backbone = sim::wan_link(/*latency_ms=*/2.5);
  connect(alice, router, access);
  connect(eve, router, access);
  const auto [router_face, producer_face] = connect(router, producer, backbone);
  (void)producer_face;
  router.add_route(ndn::Name("/cnn"), router_face);

  std::printf("Alice fetches an article (cold cache -> full round trip to the producer):\n");
  const util::SimDuration cold = fetch(alice, sched, ndn::Name("/cnn/news/2013may20"));

  std::printf("Alice fetches it again (cached at R -> one hop):\n");
  const util::SimDuration warm = fetch(alice, sched, ndn::Name("/cnn/news/2013may20"));

  std::printf("\nCaching speedup: %.1fx (%.2f ms -> %.2f ms)\n",
              static_cast<double>(cold) / static_cast<double>(warm), util::to_millis(cold),
              util::to_millis(warm));

  // The privacy problem in one probe: Eve measures the SAME article and a
  // fresh one, and the RTT gap tells her what Alice just read.
  std::printf("\nEve probes R's cache (the paper's attack, Section III):\n");
  const util::SimDuration probe_read = fetch(eve, sched, ndn::Name("/cnn/news/2013may20"));
  const util::SimDuration probe_unread = fetch(eve, sched, ndn::Name("/cnn/sports/final"));
  std::printf("\nEve's inference: /cnn/news/2013may20 %s recently requested behind R\n",
              probe_read * 2 < probe_unread ? "WAS" : "was NOT");
  std::printf("(probe: %.2f ms vs fresh content: %.2f ms)\n", util::to_millis(probe_read),
              util::to_millis(probe_unread));
  std::printf("\nRouter stats: %llu interests, %llu cache hits, %llu misses\n",
              static_cast<unsigned long long>(router.stats().interests_received),
              static_cast<unsigned long long>(router.stats().exposed_hits),
              static_cast<unsigned long long>(router.stats().true_misses));
  std::printf("See examples/timing_attack_demo.cpp for the full attack and the\n"
              "countermeasures that defeat it.\n");
  return 0;
}
