// Content-distribution privacy, adopter's view (Sections V-B and VI):
// pick a privacy target (k, epsilon, delta), let the theory module solve
// the scheme parameters, and measure what that target costs in cache hit
// rate and latency on a realistic workload.
//
//   ./build/examples/content_distribution_privacy
#include <cstdio>
#include <memory>

#include "core/policies.hpp"
#include "core/theory.hpp"
#include "trace/replayer.hpp"

using namespace ndnp;

namespace {

void evaluate(const char* label, const trace::Trace& tr,
              const std::function<std::unique_ptr<core::CachePrivacyPolicy>()>& factory,
              const core::PrivacyBudget* budget) {
  trace::ReplayConfig config;
  config.cache_capacity = 8'000;
  config.private_fraction = 0.2;
  config.policy_factory = factory;
  config.seed = 4;
  const trace::ReplayResult result = trace::replay(tr, config);
  std::printf("  %-34s hit %6.2f%%  served-from-cache %6.2f%%  mean %6.2f ms", label,
              result.hit_rate_pct(), result.cache_served_pct(), result.mean_response_ms);
  if (budget)
    std::printf("  (eps=%.3f delta<=%.3f)", budget->epsilon, budget->delta);
  std::printf("\n");
}

}  // namespace

int main() {
  // Workload: a synthetic web-proxy day (see src/trace/trace.hpp).
  trace::TraceGenConfig gen;
  gen.num_requests = 120'000;
  gen.num_objects = 60'000;
  gen.seed = 31337;
  const trace::Trace tr = trace::generate_trace(gen);
  std::printf("Workload: %zu requests over %zu objects, %zu users, 20%% private content,\n"
              "router cache 8000 objects (LRU)\n\n",
              tr.size(), tr.catalogue_size, static_cast<std::size_t>(gen.num_users));

  // The adopter's privacy target: hide up to k=5 requests with the privacy
  // loss bounded by (epsilon, delta).
  constexpr std::int64_t k = 5;
  constexpr double epsilon = 0.005;
  constexpr double delta = 0.05;
  std::printf("Privacy target: hide whether private content was requested up to k=%lld times,\n"
              "with (eps=%.3f, delta=%.2f)-indistinguishability.\n\n",
              static_cast<long long>(k), epsilon, delta);

  const std::int64_t uniform_domain = core::uniform_domain_for_delta(k, delta);
  const auto expo = core::solve_expo_params(k, epsilon, delta);
  if (!expo) {
    std::printf("target unattainable for the exponential scheme\n");
    return 1;
  }
  std::printf("Solved parameters: Uniform K=%lld; Exponential alpha=%.6f K=%lld\n",
              static_cast<long long>(uniform_domain), expo->alpha,
              static_cast<long long>(expo->domain));
  std::printf("Predicted utility at c=50 requests: uniform %.3f, exponential %.3f\n\n",
              core::uniform_utility(50, uniform_domain),
              core::expo_utility(50, expo->alpha, expo->domain));

  std::printf("Measured on the workload:\n");
  evaluate("no privacy (baseline)", tr,
           [] { return std::make_unique<core::NoPrivacyPolicy>(); }, nullptr);

  const core::PrivacyBudget expo_budget = core::expo_privacy(k, expo->alpha, expo->domain);
  evaluate("Exponential-Random-Cache", tr,
           [&] { return core::RandomCachePolicy::exponential(expo->alpha, expo->domain, 7); },
           &expo_budget);

  const core::PrivacyBudget uniform_budget = core::uniform_privacy(k, uniform_domain);
  evaluate("Uniform-Random-Cache", tr,
           [&] { return core::RandomCachePolicy::uniform(uniform_domain, 7); },
           &uniform_budget);

  const core::PrivacyBudget perfect{0.0, 0.0};
  evaluate("Always-Delay (perfect privacy)", tr,
           [] {
             return std::make_unique<core::AlwaysDelayPolicy>(
                 core::AlwaysDelayPolicy::content_specific());
           },
           &perfect);

  std::printf("\nReading the table: Always-Delay gives perfect privacy and keeps the\n"
              "bandwidth savings (served-from-cache stays at the baseline) but every\n"
              "private hit pays origin latency; the Random-Cache schemes trade a bounded\n"
              "(eps, delta) privacy loss for most of the hit rate back, with the\n"
              "exponential scheme dominating the uniform one at the same budget.\n");
  return 0;
}
