// Interactive-traffic countermeasure (Section V-A): a VoIP-style session
// protected by unpredictable names.
//
// Alice produces audio frames; Bob fetches them by deriving each frame's
// name from their shared secret (HMAC-based PRF) — both sides compute the
// same names, routers keep caching normally, but an eavesdropping-free
// adversary cannot guess a name and therefore cannot probe the cache.
// The example also shows the property the paper insists this preserves:
// after packet loss, a re-issued interest is satisfied from the router's
// cache instead of traveling back to the producer.
//
//   ./build/examples/private_voip
#include <cstdio>
#include <functional>

#include "core/name_privacy.hpp"
#include "sim/apps.hpp"
#include "sim/forwarder.hpp"
#include "util/stats.hpp"

using namespace ndnp;

int main() {
  sim::Scheduler sched;

  sim::Consumer bob(sched, "bob", /*seed=*/1);
  sim::Consumer adversary(sched, "eve", /*seed=*/2);
  sim::Forwarder router(sched, "R", {.cs_capacity = 10'000});
  // Alice's endpoint is a repo-only producer: she publishes exactly her
  // frames, nothing can be auto-generated.
  sim::Producer alice(sched, "alice", ndn::Name("/alice/call"), "alice-key",
                      {.auto_generate = false}, /*seed=*/3);

  // Bob's access link is lossy in the data direction (3 % in the paper's
  // cited measurements; exaggerated here to make retransmissions common).
  sim::LinkConfig bob_access = sim::lan_link(/*latency_ms=*/0.5);
  bob_access.loss_probability = 0.15;
  connect(bob, router, bob_access);
  connect(adversary, router, sim::lan_link(/*latency_ms=*/0.5));
  const auto [to_alice, from_router] = connect(router, alice, sim::wan_link(/*latency_ms=*/3.0));
  (void)from_router;
  router.add_route(ndn::Name("/alice/call"), to_alice);

  // Both parties derive the same session from the shared secret.
  const core::UnpredictableNameSession tx(ndn::Name("/alice/call"), "wiretap-resistant-secret",
                                          "alice-to-bob");

  constexpr std::uint64_t kFrames = 200;
  for (std::uint64_t seq = 0; seq < kFrames; ++seq)
    alice.publish(tx.data_for(seq, "audio-frame-" + std::to_string(seq), "alice", "alice-key"));

  // Bob fetches every frame, re-expressing on timeout (simple ARQ).
  std::uint64_t delivered = 0;
  std::uint64_t retransmissions = 0;
  util::SampleSet first_try_ms;
  util::SampleSet retry_ms;

  std::function<void(std::uint64_t, int)> fetch_frame = [&](std::uint64_t seq, int attempt) {
    if (attempt > 5) return;  // give up on this frame
    bob.express_interest(
        tx.interest_for(seq, bob.make_nonce()),
        [&, attempt](const ndn::Data&, util::SimDuration rtt) {
          ++delivered;
          (attempt == 0 ? first_try_ms : retry_ms).add(util::to_millis(rtt));
        },
        /*face=*/0, /*timeout=*/util::millis(20),
        [&, seq, attempt](const ndn::Interest&) {
          ++retransmissions;
          fetch_frame(seq, attempt + 1);
        });
  };
  for (std::uint64_t seq = 0; seq < kFrames; ++seq) fetch_frame(seq, 0);
  sched.run();

  std::printf("VoIP session: %llu/%llu frames delivered, %llu retransmissions\n",
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(kFrames),
              static_cast<unsigned long long>(retransmissions));
  std::printf("first-try RTT: mean %.2f ms (n=%zu)\n", first_try_ms.mean(),
              first_try_ms.size());
  if (!retry_ms.empty())
    std::printf("retransmit RTT: mean %.2f ms (n=%zu) — short because R's cache answers\n"
                "interests re-issued after downstream loss\n",
                retry_ms.mean(), retry_ms.size());

  // The adversary's view: it cannot name what it cannot guess.
  std::printf("\nAdversary probes:\n");
  int adv_data = 0;
  adversary.fetch(ndn::Name("/alice/call"),
                  [&adv_data](const ndn::Data&, util::SimDuration) { ++adv_data; });
  adversary.fetch(ndn::Name("/alice/call").append_number(7),
                  [&adv_data](const ndn::Data&, util::SimDuration) { ++adv_data; });
  sched.run();
  std::printf("  prefix probes for /alice/call and /alice/call/7 returned %d data packets\n",
              adv_data);
  std::printf("  (cached frames are exact-match-only; their rand component is a %zu-hex-char\n",
              tx.name_for(7).last().size());
  std::printf("   PRF output, e.g. frame 7 is %s)\n", tx.name_for(7).to_uri().c_str());
  std::printf("\nNo artificial delay was added anywhere: interactive traffic keeps its\n"
              "latency, as Section V-A requires.\n");
  return adv_data == 0 ? 0 : 1;
}
