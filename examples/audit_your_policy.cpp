// Extensibility walkthrough: write your own cache-privacy policy against
// the core::CachePrivacyPolicy interface, then let the black-box auditor
// measure it — and watch a plausible-looking design fail.
//
// The custom policy below ("CoinFlipPolicy") answers each private request
// with a simulated miss with probability q, independently each time. It
// feels private — every probe is noisy! — but independent per-request
// noise is exactly what Schinzel's countermeasure analysis (cited in the
// paper's related work) warns about: the adversary averages it away. The
// auditor quantifies the failure, and the same harness certifies the
// paper's Random-Cache in its place.
//
//   ./build/examples/audit_your_policy
#include <cstdio>
#include <memory>

#include "core/audit.hpp"
#include "core/policies.hpp"
#include "core/theory.hpp"
#include "util/rng.hpp"

using namespace ndnp;

namespace {

/// A tempting-but-broken design: flip an independent coin per request.
class CoinFlipPolicy final : public core::CachePrivacyPolicy {
 public:
  CoinFlipPolicy(double miss_probability, std::uint64_t seed)
      : miss_probability_(miss_probability), rng_(seed) {}

  void on_insert(cache::Entry&, const ndn::Interest&, util::SimTime) override {}

  [[nodiscard]] core::LookupDecision on_cached_lookup(cache::Entry&, const ndn::Interest&,
                                                      bool effective_private,
                                                      util::SimTime) override {
    if (effective_private && rng_.bernoulli(miss_probability_))
      return {.action = core::LookupAction::kSimulatedMiss, .artificial_delay = 0};
    return {.action = core::LookupAction::kExposeHit, .artificial_delay = 0};
  }

  [[nodiscard]] std::string_view name() const noexcept override { return "CoinFlip"; }

  [[nodiscard]] std::unique_ptr<core::CachePrivacyPolicy> clone() const override {
    return std::make_unique<CoinFlipPolicy>(*this);
  }

 private:
  double miss_probability_;
  util::Rng rng_;
};

void report(const char* label, const core::AuditReport& audit) {
  std::printf("  %-34s Bayes accuracy %.4f, one-sided delta %.4f\n", label,
              audit.bayes_accuracy, audit.delta_near_zero_epsilon);
}

}  // namespace

int main() {
  std::printf("Black-box audit (Definition IV.3 game, x = 1 prior request, 24 probes,\n");
  std::printf("20000 rounds per state; adversary sees only response delays):\n\n");

  core::AuditConfig config;
  config.x = 1;
  config.probes = 24;
  config.rounds = 20'000;
  config.seed = 11;

  // 1. The custom policy, audited at two noise levels.
  auto seed = std::make_shared<std::uint64_t>(0);
  report("CoinFlip q=0.5 (yours)",
         core::audit_policy([seed] { return std::make_unique<CoinFlipPolicy>(0.5, ++*seed); },
                            config));
  report("CoinFlip q=0.9 (yours)",
         core::audit_policy([seed] { return std::make_unique<CoinFlipPolicy>(0.9, ++*seed); },
                            config));

  // 2. The paper's schemes on the same game.
  report("Uniform-Random-Cache K=24",
         core::audit_policy([seed] { return core::RandomCachePolicy::uniform(24, ++*seed); },
                            config));
  report("Always-Delay (content-specific)", core::audit_policy(
                                                [] {
                                                  return std::make_unique<core::AlwaysDelayPolicy>(
                                                      core::AlwaysDelayPolicy::content_specific());
                                                },
                                                config));

  std::printf(
      "\nWhy the coin flip fails: under 'never requested' the FIRST probe is always\n"
      "a true miss, while under 'requested' it is an exposed hit with probability\n"
      "1-q — the audit lands at exactly 1/2 + (1-q)/2 (0.75 at q=0.5). Driving q\n"
      "up buys privacy only by destroying utility, with no calibrated budget and\n"
      "a one-sided tell on every early hit. Randomness must be sampled ONCE per\n"
      "content (Random-Cache's k_C), not per request — precisely Algorithm 1's\n"
      "design, and the audit confirms its (k, eps, delta) budget on the same game.\n");
  return 0;
}
