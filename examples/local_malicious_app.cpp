// The local adversary of Figure 2 / Figure 3(d): NDN nodes (a laptop, an
// Android phone) run a node-local daemon ("ccnd") with its own cache that
// every application shares. A malicious app — with no special privileges,
// just ordinary network access — probes that cache to learn what the
// user's other apps fetched.
//
//   ./build/examples/local_malicious_app
#include <cstdio>
#include <optional>

#include "sim/apps.hpp"
#include "sim/forwarder.hpp"

using namespace ndnp;

namespace {

util::SimDuration fetch(sim::Consumer& app, sim::Scheduler& sched, const ndn::Name& name) {
  std::optional<util::SimDuration> rtt;
  app.fetch(name, [&rtt](const ndn::Data&, util::SimDuration r) { rtt = r; });
  while (!rtt && sched.run_one()) {
  }
  return rtt.value_or(-1);
}

}  // namespace

int main() {
  sim::Scheduler sched;

  // One device: honest apps + a malicious app, all talking to the local
  // daemon over IPC; the daemon reaches the network over one WAN link.
  sim::Consumer browser(sched, "browser-app", 1);
  sim::Consumer mail(sched, "mail-app", 2);
  sim::Consumer malicious(sched, "game-with-ads", 3);
  sim::Forwarder ccnd(sched, "ccnd", {.cs_capacity = 5'000});
  sim::Producer network(sched, "internet", ndn::Name(), {}, {}, 4);

  const sim::LinkConfig ipc = sim::local_ipc_link();
  connect(browser, ccnd, ipc);
  connect(mail, ccnd, ipc);
  connect(malicious, ccnd, ipc);
  const auto [up, down] = connect(ccnd, network, sim::wan_link(2.0));
  (void)down;
  ccnd.add_route(ndn::Name(), up);  // default route to the network

  // The user's apps do their thing.
  std::printf("Honest apps fetch content through the local daemon:\n");
  const ndn::Name visited("/webmd/conditions/condition-x/page1");
  const ndn::Name inbox("/mailprovider/alice/inbox/newest");
  std::printf("  browser: %s  (%.2f ms)\n", visited.to_uri().c_str(),
              util::to_millis(fetch(browser, sched, visited)));
  std::printf("  mail:    %s  (%.2f ms)\n", inbox.to_uri().c_str(),
              util::to_millis(fetch(mail, sched, inbox)));

  // The malicious app probes the shared local cache. Anything the user
  // recently fetched answers in IPC time; everything else pays the
  // network round trip.
  std::printf("\nMalicious app probes the local cache:\n");
  struct Probe {
    const char* what;
    ndn::Name name;
  };
  const Probe probes[] = {
      {"health page the user visited", visited},
      {"health page the user did NOT visit", ndn::Name("/webmd/conditions/condition-y/page1")},
      {"the user's mail inbox", inbox},
      {"someone else's mail inbox", ndn::Name("/mailprovider/bob/inbox/newest")},
  };
  for (const Probe& probe : probes) {
    const util::SimDuration rtt = fetch(malicious, sched, probe.name);
    const bool cached = rtt < util::millis(1);
    std::printf("  %-38s %6.2f ms -> %s\n", probe.what, util::to_millis(rtt),
                cached ? "CACHED (user activity inferred)" : "not cached");
  }

  std::printf("\nNo privileges were needed: the malicious app only issued ordinary\n"
              "interests. This is Figure 3(d)'s setting, where the paper found the\n"
              "hit/miss gap 'even more evident' than across the network — and why the\n"
              "paper requires countermeasures at the node-local cache too.\n");
  return 0;
}
