#include "core/name_privacy.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ndnp::core {
namespace {

TEST(UnpredictableNames, BothPartiesDeriveSameName) {
  // Consumer and producer construct sessions independently from the shared
  // secret; names must agree for every sequence number.
  const UnpredictableNameSession consumer(ndn::Name("/alice/skype/0"), "shared", "a-to-b");
  const UnpredictableNameSession producer(ndn::Name("/alice/skype/0"), "shared", "a-to-b");
  for (std::uint64_t seq = 0; seq < 50; ++seq)
    EXPECT_EQ(consumer.name_for(seq), producer.name_for(seq));
}

TEST(UnpredictableNames, NameStructureIsBaseSeqRand) {
  const UnpredictableNameSession session(ndn::Name("/a/b"), "s", "l", 16);
  const ndn::Name name = session.name_for(7);
  ASSERT_EQ(name.size(), 4u);
  EXPECT_EQ(name.prefix(2).to_uri(), "/a/b");
  EXPECT_EQ(name.at(2), "7");
  EXPECT_EQ(name.at(3).size(), 16u);
}

TEST(UnpredictableNames, TokensDifferAcrossSequences) {
  const UnpredictableNameSession session(ndn::Name("/a"), "s", "l");
  std::unordered_set<std::string> tokens;
  for (std::uint64_t seq = 0; seq < 200; ++seq) tokens.insert(session.name_for(seq).last());
  EXPECT_EQ(tokens.size(), 200u);
}

TEST(UnpredictableNames, DifferentSecretsGiveDifferentNames) {
  const UnpredictableNameSession a(ndn::Name("/a"), "secret-1", "l");
  const UnpredictableNameSession b(ndn::Name("/a"), "secret-2", "l");
  EXPECT_NE(a.name_for(0), b.name_for(0));
}

TEST(UnpredictableNames, DifferentLabelsGiveDifferentStreams) {
  const UnpredictableNameSession audio(ndn::Name("/a"), "s", "audio");
  const UnpredictableNameSession video(ndn::Name("/a"), "s", "video");
  EXPECT_NE(audio.name_for(0), video.name_for(0));
}

TEST(UnpredictableNames, InterestCarriesExactName) {
  const UnpredictableNameSession session(ndn::Name("/a"), "s", "l");
  const ndn::Interest interest = session.interest_for(3, /*nonce=*/42);
  EXPECT_EQ(interest.name, session.name_for(3));
  EXPECT_EQ(interest.nonce, 42u);
}

TEST(UnpredictableNames, DataIsExactMatchOnlyAndSigned) {
  const UnpredictableNameSession session(ndn::Name("/a"), "s", "l");
  const ndn::Data data = session.data_for(3, "frame", "alice", "alice-key");
  EXPECT_TRUE(data.exact_match_only);
  EXPECT_EQ(data.payload, "frame");
  // Footnote 5: the data must not satisfy a shorter-prefix interest.
  ndn::Interest prefix_probe;
  prefix_probe.name = ndn::Name("/a").append_number(3);
  EXPECT_FALSE(data.satisfies(prefix_probe));
  ndn::Interest exact;
  exact.name = data.name;
  EXPECT_TRUE(data.satisfies(exact));
}

TEST(UnpredictableNames, RejectsBadTokenLength) {
  EXPECT_THROW(UnpredictableNameSession(ndn::Name("/a"), "s", "l", 0), std::invalid_argument);
  EXPECT_THROW(UnpredictableNameSession(ndn::Name("/a"), "s", "l", 65), std::invalid_argument);
}

}  // namespace
}  // namespace ndnp::core
