// Integration tests of the NDN forwarder: CS/PIT/FIB pipeline, interest
// collapsing, scope handling, and privacy-policy hookup, all driven through
// the event scheduler over small topologies.
#include "sim/forwarder.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "core/policies.hpp"
#include "sim/apps.hpp"

namespace ndnp::sim {
namespace {

struct MiniNet {
  Scheduler sched;
  std::optional<Consumer> consumer;
  std::optional<Consumer> consumer2;
  std::optional<Forwarder> router;
  std::optional<Forwarder> router2;
  std::optional<Producer> producer;
};

LinkConfig fixed_link(double latency_ms) {
  LinkConfig cfg;
  cfg.latency = util::millis_f(latency_ms);
  return cfg;
}

ForwarderConfig router_config() {
  ForwarderConfig cfg;
  cfg.cs_capacity = 0;
  cfg.processing_delay = util::micros(10);
  return cfg;
}

/// Consumer -> R -> Producer("/p"), 1 ms + 2 ms fixed links.
void build_line(MiniNet& net, std::unique_ptr<core::CachePrivacyPolicy> policy = nullptr,
                bool honor_scope = false) {
  net.consumer.emplace(net.sched, "C", 1);
  ForwarderConfig cfg = router_config();
  cfg.honor_scope = honor_scope;
  net.router.emplace(net.sched, "R", cfg, std::move(policy));
  ProducerConfig pcfg;
  pcfg.processing_delay = util::micros(10);
  net.producer.emplace(net.sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  connect(*net.consumer, *net.router, fixed_link(1.0));
  const auto [rp, pr] = connect(*net.router, *net.producer, fixed_link(2.0));
  (void)pr;
  net.router->add_route(ndn::Name("/p"), rp);
}

util::SimDuration fetch(Consumer& consumer, Scheduler& sched, const ndn::Name& name,
                        bool private_req = false, std::optional<int> scope = std::nullopt) {
  std::optional<util::SimDuration> rtt;
  ndn::Interest interest;
  interest.name = name;
  interest.private_req = private_req;
  interest.scope = scope;
  consumer.express_interest(interest,
                            [&rtt](const ndn::Data&, util::SimDuration r) { rtt = r; });
  while (!rtt && sched.run_one()) {
  }
  EXPECT_TRUE(rtt.has_value()) << "fetch of " << name.to_uri() << " failed";
  return rtt.value_or(-1);
}

TEST(Forwarder, FetchThroughRouterReachesProducer) {
  MiniNet net;
  build_line(net);
  const util::SimDuration rtt = fetch(*net.consumer, net.sched, ndn::Name("/p/file/1"));
  // 2 * (1 ms + 2 ms) plus processing; comfortably in [6, 7] ms.
  EXPECT_GE(rtt, util::millis(6));
  EXPECT_LE(rtt, util::millis(7));
  EXPECT_EQ(net.producer->interests_served(), 1u);
  EXPECT_EQ(net.router->stats().true_misses, 1u);
}

TEST(Forwarder, CachesAndServesSecondFetchFaster) {
  MiniNet net;
  build_line(net);
  const util::SimDuration first = fetch(*net.consumer, net.sched, ndn::Name("/p/file/1"));
  const util::SimDuration second = fetch(*net.consumer, net.sched, ndn::Name("/p/file/1"));
  EXPECT_LT(second, first);
  EXPECT_LE(second, util::millis(3));  // 2 * 1 ms + processing
  EXPECT_EQ(net.router->stats().exposed_hits, 1u);
  EXPECT_EQ(net.producer->interests_served(), 1u);  // producer not asked again
  EXPECT_TRUE(net.router->cs().contains(ndn::Name("/p/file/1")));
}

TEST(Forwarder, PrefixInterestSatisfiedByCachedLongerName) {
  MiniNet net;
  build_line(net);
  (void)fetch(*net.consumer, net.sched, ndn::Name("/p/file/1"));
  const util::SimDuration rtt = fetch(*net.consumer, net.sched, ndn::Name("/p/file"));
  EXPECT_LE(rtt, util::millis(3));  // served from R's cache by prefix match
}

TEST(Forwarder, CollapsesSimultaneousInterests) {
  MiniNet net;
  net.consumer.emplace(net.sched, "C1", 1);
  net.consumer2.emplace(net.sched, "C2", 2);
  net.router.emplace(net.sched, "R", router_config());
  ProducerConfig pcfg;
  net.producer.emplace(net.sched, "P", ndn::Name("/p"), "key", pcfg, 3);
  connect(*net.consumer, *net.router, fixed_link(1.0));
  connect(*net.consumer2, *net.router, fixed_link(1.0));
  const auto [rp, pr] = connect(*net.router, *net.producer, fixed_link(5.0));
  (void)pr;
  net.router->add_route(ndn::Name("/p"), rp);

  int received = 0;
  const auto on_data = [&received](const ndn::Data&, util::SimDuration) { ++received; };
  net.consumer->fetch(ndn::Name("/p/x"), on_data);
  net.consumer2->fetch(ndn::Name("/p/x"), on_data);
  net.sched.run();

  EXPECT_EQ(received, 2);                                  // both consumers served
  EXPECT_EQ(net.producer->interests_served(), 1u);         // one upstream interest
  EXPECT_EQ(net.router->stats().collapsed_interests, 1u);  // second was collapsed
  EXPECT_EQ(net.router->stats().forwarded_interests, 1u);
}

TEST(Forwarder, DropsDuplicateNonce) {
  MiniNet net;
  build_line(net);
  ndn::Interest interest;
  interest.name = ndn::Name("/p/x");
  interest.nonce = 777;
  int received = 0;
  net.consumer->express_interest(
      interest, [&received](const ndn::Data&, util::SimDuration) { ++received; });
  net.consumer->express_interest(
      interest, [&received](const ndn::Data&, util::SimDuration) { ++received; });
  net.sched.run();
  // The duplicate is dropped at the router, but the single returning Data
  // satisfies both pending entries at the consumer.
  EXPECT_EQ(net.router->stats().nonce_drops, 1u);
  EXPECT_EQ(net.producer->interests_served(), 1u);
  EXPECT_EQ(received, 2);
}

TEST(Forwarder, NoRouteDropsInterest) {
  MiniNet net;
  build_line(net);
  ndn::Interest interest;
  interest.name = ndn::Name("/unrouted/x");
  bool got_data = false;
  net.consumer->express_interest(
      interest, [&got_data](const ndn::Data&, util::SimDuration) { got_data = true; });
  net.sched.run();
  EXPECT_FALSE(got_data);
  EXPECT_EQ(net.router->stats().no_route_drops, 1u);
}

TEST(Forwarder, FibLongestPrefixMatchWins) {
  MiniNet net;
  net.consumer.emplace(net.sched, "C", 1);
  net.router.emplace(net.sched, "R", router_config());
  ProducerConfig pcfg;
  net.producer.emplace(net.sched, "P-general", ndn::Name("/p"), "key", pcfg, 2);
  Producer specific(net.sched, "P-specific", ndn::Name("/p/special"), "key2", pcfg, 3);
  connect(*net.consumer, *net.router, fixed_link(1.0));
  const auto [to_general, g] = connect(*net.router, *net.producer, fixed_link(1.0));
  const auto [to_specific, s] = connect(*net.router, specific, fixed_link(1.0));
  (void)g;
  (void)s;
  net.router->add_route(ndn::Name("/p"), to_general);
  net.router->add_route(ndn::Name("/p/special"), to_specific);

  (void)fetch(*net.consumer, net.sched, ndn::Name("/p/special/doc"));
  EXPECT_EQ(specific.interests_served(), 1u);
  EXPECT_EQ(net.producer->interests_served(), 0u);

  (void)fetch(*net.consumer, net.sched, ndn::Name("/p/other/doc"));
  EXPECT_EQ(net.producer->interests_served(), 1u);
}

TEST(Forwarder, DefaultRouteCatchesEverything) {
  MiniNet net;
  net.consumer.emplace(net.sched, "C", 1);
  net.router.emplace(net.sched, "R", router_config());
  ProducerConfig pcfg;
  net.producer.emplace(net.sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  connect(*net.consumer, *net.router, fixed_link(1.0));
  const auto [rp, pr] = connect(*net.router, *net.producer, fixed_link(1.0));
  (void)pr;
  net.router->add_route(ndn::Name(), rp);  // default route
  (void)fetch(*net.consumer, net.sched, ndn::Name("/p/x"));
  EXPECT_EQ(net.producer->interests_served(), 1u);
}

TEST(Forwarder, HonoredScopeTwoStopsAtFirstHop) {
  MiniNet net;
  build_line(net, nullptr, /*honor_scope=*/true);
  ndn::Interest interest;
  interest.name = ndn::Name("/p/x");
  interest.scope = 2;
  bool got_data = false;
  net.consumer->express_interest(
      interest, [&got_data](const ndn::Data&, util::SimDuration) { got_data = true; });
  net.sched.run();
  EXPECT_FALSE(got_data);  // nothing cached, interest must not be forwarded
  EXPECT_EQ(net.router->stats().scope_drops, 1u);
  EXPECT_EQ(net.producer->interests_served(), 0u);
}

TEST(Forwarder, HonoredScopeTwoServesFromCache) {
  MiniNet net;
  build_line(net, nullptr, /*honor_scope=*/true);
  (void)fetch(*net.consumer, net.sched, ndn::Name("/p/x"));  // populate R's cache
  const util::SimDuration rtt =
      fetch(*net.consumer, net.sched, ndn::Name("/p/x"), false, /*scope=*/2);
  EXPECT_LE(rtt, util::millis(3));  // answered from R's CS
}

TEST(Forwarder, HonoredScopeThreeReachesAdjacentProducer) {
  MiniNet net;
  build_line(net, nullptr, /*honor_scope=*/true);
  // Consumer (1) + router (2) + producer (3) = 3 entities.
  const util::SimDuration rtt =
      fetch(*net.consumer, net.sched, ndn::Name("/p/y"), false, /*scope=*/3);
  EXPECT_GT(rtt, util::millis(5));
  EXPECT_EQ(net.producer->interests_served(), 1u);
}

TEST(Forwarder, IgnoredScopeForwardsAnyway) {
  MiniNet net;
  build_line(net, nullptr, /*honor_scope=*/false);
  const util::SimDuration rtt =
      fetch(*net.consumer, net.sched, ndn::Name("/p/x"), false, /*scope=*/2);
  EXPECT_GT(rtt, util::millis(5));  // fetched from the producer regardless
  EXPECT_EQ(net.router->stats().scope_drops, 0u);
}

TEST(Forwarder, UnsolicitedDataDropped) {
  MiniNet net;
  build_line(net);
  // Inject Data at the producer without any preceding interest.
  net.producer->send_data(0, ndn::make_data(ndn::Name("/p/spam"), "x", "P", "key"));
  net.sched.run();
  EXPECT_EQ(net.router->stats().unsolicited_data, 1u);
  EXPECT_FALSE(net.router->cs().contains(ndn::Name("/p/spam")));
}

TEST(Forwarder, PitEntryExpiresWithoutResponse) {
  MiniNet net;
  net.consumer.emplace(net.sched, "C", 1);
  ForwarderConfig cfg = router_config();
  cfg.pit_timeout = util::millis(100);
  net.router.emplace(net.sched, "R", cfg);
  ProducerConfig pcfg;
  pcfg.auto_generate = false;  // producer has nothing: no reply ever
  net.producer.emplace(net.sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  connect(*net.consumer, *net.router, fixed_link(1.0));
  const auto [rp, pr] = connect(*net.router, *net.producer, fixed_link(1.0));
  (void)pr;
  net.router->add_route(ndn::Name("/p"), rp);

  net.consumer->fetch(ndn::Name("/p/missing"), [](const ndn::Data&, util::SimDuration) {
    FAIL() << "no data should ever arrive";
  });
  net.sched.run();
  EXPECT_EQ(net.router->pit_size(), 0u);
  EXPECT_EQ(net.router->stats().pit_expirations, 1u);
  EXPECT_EQ(net.producer->interests_unmatched(), 1u);
}

TEST(Forwarder, AlwaysDelayPolicyEqualizesHitAndMissRtt) {
  MiniNet net;
  build_line(net, std::make_unique<core::AlwaysDelayPolicy>(
                      core::AlwaysDelayPolicy::content_specific()));
  // Producer-side privacy marking via config.
  const ndn::Name name("/p/secret");
  const util::SimDuration miss = fetch(*net.consumer, net.sched, name, /*private=*/true);
  const util::SimDuration hit = fetch(*net.consumer, net.sched, name, /*private=*/true);
  EXPECT_EQ(net.router->stats().delayed_hits, 1u);
  // gamma_C equals the measured upstream delay: the two RTTs agree to
  // within the (deterministic-link) processing noise.
  EXPECT_NEAR(util::to_millis(hit), util::to_millis(miss), 0.2);
}

TEST(Forwarder, SimulatedMissForwardsUpstream) {
  MiniNet net;
  build_line(net, std::make_unique<core::NaiveThresholdPolicy>(2));
  const ndn::Name name("/p/secret2");
  (void)fetch(*net.consumer, net.sched, name, /*private=*/true);
  EXPECT_EQ(net.producer->interests_served(), 1u);
  (void)fetch(*net.consumer, net.sched, name, /*private=*/true);  // simulated miss
  EXPECT_EQ(net.router->stats().simulated_misses, 1u);
  EXPECT_EQ(net.producer->interests_served(), 2u);  // interest went all the way
  // Content stays cached; policy state survived the refresh.
  EXPECT_TRUE(net.router->cs().contains(name));
  (void)fetch(*net.consumer, net.sched, name, /*private=*/true);  // second simulated miss
  const util::SimDuration exposed = fetch(*net.consumer, net.sched, name, /*private=*/true);
  EXPECT_EQ(net.router->stats().exposed_hits, 1u);
  EXPECT_LE(exposed, util::millis(3));
}

TEST(Forwarder, ExactMatchOnlyContentInvisibleToPrefixProbes) {
  MiniNet net;
  net.consumer.emplace(net.sched, "C", 1);
  net.router.emplace(net.sched, "R", router_config());
  ProducerConfig pcfg;
  pcfg.auto_generate = false;  // repo-only: serves nothing it didn't publish
  net.producer.emplace(net.sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  connect(*net.consumer, *net.router, fixed_link(1.0));
  const auto [rp, pr] = connect(*net.router, *net.producer, fixed_link(2.0));
  (void)pr;
  net.router->add_route(ndn::Name("/p"), rp);

  ndn::Data secret = ndn::make_data(ndn::Name("/p/session/0/deadbeef"), "frame", "P", "key");
  secret.exact_match_only = true;
  net.producer->publish(std::move(secret));

  // Legitimate party knows the full name.
  const util::SimDuration rtt =
      fetch(*net.consumer, net.sched, ndn::Name("/p/session/0/deadbeef"));
  EXPECT_GT(rtt, 0);
  EXPECT_TRUE(net.router->cs().contains(ndn::Name("/p/session/0/deadbeef")));

  // Prober without the rand component gets nothing from the cache, and the
  // producer won't answer the prefix either (exact-match content only).
  ndn::Interest probe;
  probe.name = ndn::Name("/p/session/0");
  bool got_data = false;
  net.consumer->express_interest(
      probe, [&got_data](const ndn::Data&, util::SimDuration) { got_data = true; });
  net.sched.run();
  EXPECT_FALSE(got_data);
}

TEST(Forwarder, StatsCountersConsistent) {
  MiniNet net;
  build_line(net);
  (void)fetch(*net.consumer, net.sched, ndn::Name("/p/a"));
  (void)fetch(*net.consumer, net.sched, ndn::Name("/p/a"));
  (void)fetch(*net.consumer, net.sched, ndn::Name("/p/b"));
  const ForwarderStats& stats = net.router->stats();
  EXPECT_EQ(stats.interests_received, 3u);
  EXPECT_EQ(stats.true_misses, 2u);
  EXPECT_EQ(stats.exposed_hits, 1u);
  EXPECT_EQ(stats.forwarded_interests, 2u);
  EXPECT_EQ(stats.data_received, 2u);
  EXPECT_EQ(stats.data_forwarded, 2u);
}

}  // namespace
}  // namespace ndnp::sim
