#include "sim/fetch_util.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "sim/forwarder.hpp"

namespace ndnp::sim {
namespace {

LinkConfig fixed_link(double latency_ms, double loss = 0.0) {
  LinkConfig cfg;
  cfg.latency = util::millis_f(latency_ms);
  cfg.loss_probability = loss;
  return cfg;
}

struct Net {
  Scheduler sched;
  std::optional<Consumer> consumer;
  std::optional<Forwarder> router;
  std::optional<Producer> producer;

  explicit Net(double loss = 0.0, bool routed = true) {
    consumer.emplace(sched, "C", 1);
    router.emplace(sched, "R", ForwarderConfig{.cs_capacity = 0});
    producer.emplace(sched, "P", ndn::Name("/p"), "key", ProducerConfig{}, 2);
    connect(*consumer, *router, fixed_link(0.5, loss));
    const auto [rp, pr] = connect(*router, *producer, fixed_link(1.0, loss));
    (void)pr;
    if (routed) router->add_route(ndn::Name("/p"), rp);
  }
};

TEST(ReliableFetch, SucceedsFirstTryOnCleanNetwork) {
  Net net;
  std::optional<ReliableFetchResult> result;
  reliable_fetch(*net.consumer, ndn::Name("/p/x"),
                 [&result](const ReliableFetchResult& r) { result = r; });
  net.sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->attempts, 1u);
  EXPECT_GT(result->rtt, 0);
}

TEST(ReliableFetch, RetriesThroughLoss) {
  // 25 % loss per link traversal (~32 % end-to-end success per cold
  // attempt, better once R caches): most fetches need retransmissions but
  // nearly all succeed within 8 attempts.
  Net net(/*loss=*/0.25);
  int succeeded = 0;
  int total_attempts = 0;
  ReliableFetchOptions options;
  options.timeout = util::millis(20);
  options.max_attempts = 8;
  for (int i = 0; i < 50; ++i) {
    reliable_fetch(
        *net.consumer, ndn::Name("/p/x").append_number(static_cast<std::uint64_t>(i)),
        [&](const ReliableFetchResult& r) {
          if (r.succeeded) ++succeeded;
          total_attempts += static_cast<int>(r.attempts);
        },
        options);
  }
  net.sched.run();
  EXPECT_GE(succeeded, 45);
  EXPECT_GT(total_attempts, 60);  // retransmissions definitely happened
}

TEST(ReliableFetch, GivesUpAfterMaxAttempts) {
  ProducerConfig silent;
  silent.auto_generate = false;
  Net net;
  net.producer.emplace(net.sched, "P2", ndn::Name("/q"), "key", silent, 9);  // unrouted

  std::optional<ReliableFetchResult> result;
  ReliableFetchOptions options;
  options.timeout = util::millis(10);
  options.max_attempts = 3;
  // /p routed but producer auto-generates; use unreachable /q instead:
  reliable_fetch(*net.consumer, ndn::Name("/q/never"),
                 [&result](const ReliableFetchResult& r) { result = r; }, options);
  net.sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->succeeded);
  EXPECT_EQ(result->attempts, 3u);
}

TEST(ReliableFetch, NackCountsAsAttemptAndRetries) {
  Net net(0.0, /*routed=*/false);  // router has no route: NACKs come back
  std::optional<ReliableFetchResult> result;
  std::optional<util::SimTime> done_at;
  ReliableFetchOptions options;
  options.timeout = util::millis(50);
  options.max_attempts = 2;
  reliable_fetch(*net.consumer, ndn::Name("/p/x"),
                 [&](const ReliableFetchResult& r) {
                   result = r;
                   done_at = net.sched.now();
                 },
                 options);
  net.sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->succeeded);
  EXPECT_EQ(result->attempts, 2u);
  // NACKs resolved the attempts well before the 50 ms timeouts would have
  // (the stale timeout events still drain afterwards, harmlessly).
  ASSERT_TRUE(done_at.has_value());
  EXPECT_LT(*done_at, util::millis(10));
}

TEST(ReliableFetch, ValidatesArguments) {
  Net net;
  EXPECT_THROW(reliable_fetch(*net.consumer, ndn::Name("/p/x"), nullptr),
               std::invalid_argument);
  ReliableFetchOptions options;
  options.max_attempts = 0;
  EXPECT_THROW(
      reliable_fetch(*net.consumer, ndn::Name("/p/x"),
                     [](const ReliableFetchResult&) {}, options),
      std::invalid_argument);
}

TEST(SegmentFetch, FetchesAllSegmentsInOrderOfAvailability) {
  Net net;
  std::optional<SegmentFetchResult> result;
  segment_fetch(*net.consumer, ndn::Name("/p/file"), 20,
                [&result](const SegmentFetchResult& r) { result = r; });
  net.sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->segments, 20u);
  EXPECT_EQ(result->retransmissions, 0u);
  EXPECT_GT(result->elapsed, 0);
  EXPECT_EQ(net.producer->interests_served(), 20u);
}

TEST(SegmentFetch, WindowLimitsConcurrency) {
  // With a window of 2, at most 2 interests are outstanding; 10 segments
  // over a 3 ms RTT need at least 5 round trips.
  Net net;
  std::optional<SegmentFetchResult> slow;
  SegmentFetchOptions narrow;
  narrow.window = 2;
  segment_fetch(*net.consumer, ndn::Name("/p/file"), 10,
                [&slow](const SegmentFetchResult& r) { slow = r; }, narrow);
  net.sched.run();

  Net net2;
  std::optional<SegmentFetchResult> fast;
  SegmentFetchOptions wide;
  wide.window = 10;
  segment_fetch(*net2.consumer, ndn::Name("/p/file"), 10,
                [&fast](const SegmentFetchResult& r) { fast = r; }, wide);
  net2.sched.run();

  ASSERT_TRUE(slow && fast);
  EXPECT_GT(slow->elapsed, 3 * fast->elapsed);
}

TEST(SegmentFetch, ZeroSegmentsSucceedImmediately) {
  Net net;
  std::optional<SegmentFetchResult> result;
  segment_fetch(*net.consumer, ndn::Name("/p/file"), 0,
                [&result](const SegmentFetchResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->segments, 0u);
}

TEST(SegmentFetch, SurvivesLossWithRetransmissions) {
  Net net(/*loss=*/0.25);
  std::optional<SegmentFetchResult> result;
  SegmentFetchOptions options;
  options.per_segment.timeout = util::millis(20);
  options.per_segment.max_attempts = 10;
  segment_fetch(*net.consumer, ndn::Name("/p/file"), 30,
                [&result](const SegmentFetchResult& r) { result = r; }, options);
  net.sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->succeeded);
  EXPECT_EQ(result->segments, 30u);
  EXPECT_GT(result->retransmissions, 0u);
}

TEST(SegmentFetch, ReportsFailureWhenSegmentUnreachable) {
  Net net(0.0, /*routed=*/false);
  std::optional<SegmentFetchResult> result;
  SegmentFetchOptions options;
  options.per_segment.timeout = util::millis(10);
  options.per_segment.max_attempts = 2;
  segment_fetch(*net.consumer, ndn::Name("/p/file"), 5,
                [&result](const SegmentFetchResult& r) { result = r; }, options);
  net.sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->succeeded);
}

TEST(SegmentFetch, ValidatesArguments) {
  Net net;
  EXPECT_THROW(segment_fetch(*net.consumer, ndn::Name("/p/f"), 3, nullptr),
               std::invalid_argument);
  SegmentFetchOptions options;
  options.window = 0;
  EXPECT_THROW(
      segment_fetch(*net.consumer, ndn::Name("/p/f"), 3, [](const SegmentFetchResult&) {},
                    options),
      std::invalid_argument);
}

}  // namespace
}  // namespace ndnp::sim
