// Differential test: the hash-indexed ContentStore vs a deliberately naive
// reference model.
//
// ReferenceContentStore below is a line-for-line port of the original
// ordered-map implementation this repository shipped with (std::map keyed
// by Name for prefix ranges, std::list for LRU/FIFO order, std::multimap
// for LFU, std::vector for random eviction) — obviously correct, obviously
// slow. The driver replays >=100k seeded randomized operations per
// eviction policy against both stores and asserts identical externally
// observable behavior after every single op: hit/miss outcome, which name
// matched, victim choice (via contains()), size, and the CacheStats
// counters. Random eviction is aligned by construction: both stores are
// seeded identically and draw from util::Rng only when picking a victim.
//
// If the optimized store's open-addressing exact index, per-depth prefix
// index, intrusive eviction lists or node recycling ever diverge from
// plain NDN cache semantics, some op in these streams will catch it.
#include "cache/content_store.hpp"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ndn/packet.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace ndnp::cache {
namespace {

// --- the reference model ----------------------------------------------------

class ReferenceContentStore {
 public:
  explicit ReferenceContentStore(std::size_t capacity, EvictionPolicy policy,
                                 std::uint64_t seed)
      : capacity_(capacity), policy_(policy), rng_(seed) {}

  Entry& insert(ndn::Data data, EntryMeta meta) {
    ++stats_.inserts;
    last_victim_.reset();
    const ndn::Name name = data.name;

    if (auto it = entries_.find(name); it != entries_.end()) {
      it->second.entry.data = std::move(data);
      it->second.entry.meta = meta;
      return it->second.entry;
    }

    if (capacity_ != 0 && entries_.size() >= capacity_) {
      const ndn::Name victim = pick_victim();
      erase(victim);
      ++stats_.evictions;
      last_victim_ = victim;
    }

    auto [it, inserted] = entries_.emplace(name, Node{});
    EXPECT_TRUE(inserted);
    it->second.entry.data = std::move(data);
    it->second.entry.meta = meta;
    index_insert(name, it->second);
    return it->second.entry;
  }

  Entry* find(const ndn::Interest& interest, util::SimTime now) {
    ++stats_.lookups;
    const bool check_freshness = interest.must_be_fresh && now != util::kTimeUnset;
    for (auto it = entries_.lower_bound(interest.name); it != entries_.end(); ++it) {
      if (!interest.name.is_prefix_of(it->first)) break;
      if (!it->second.entry.data.satisfies(interest)) continue;
      if (check_freshness && !it->second.entry.fresh_at(now)) continue;
      ++stats_.matches;
      return &it->second.entry;
    }
    return nullptr;
  }

  Entry* find_exact(const ndn::Name& name) {
    const auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : &it->second.entry;
  }

  void touch(Entry& entry, util::SimTime now) {
    entry.meta.last_access = now;
    const auto it = entries_.find(entry.data.name);
    ASSERT_TRUE(it != entries_.end() && &it->second.entry == &entry);
    index_access(it->second);
  }

  bool erase(const ndn::Name& name) {
    const auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    index_erase(it->second);
    entries_.erase(it);
    return true;
  }

  void clear() {
    entries_.clear();
    order_.clear();
    by_freq_.clear();
    by_index_.clear();
  }

  [[nodiscard]] bool contains(const ndn::Name& name) const { return entries_.contains(name); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  /// Name evicted by the most recent insert(), if that insert evicted.
  [[nodiscard]] const std::optional<ndn::Name>& last_victim() const noexcept {
    return last_victim_;
  }

  /// All cached names in map order (== sorted by name).
  [[nodiscard]] std::vector<ndn::Name> sorted_names() const {
    std::vector<ndn::Name> out;
    out.reserve(entries_.size());
    for (const auto& [name, node] : entries_) out.push_back(name);
    return out;
  }

 private:
  struct Node {
    Entry entry;
    std::list<ndn::Name>::iterator order_it{};
    std::multimap<std::uint64_t, ndn::Name>::iterator freq_it{};
    std::size_t vec_index = 0;
    std::uint64_t freq = 0;
  };

  void index_insert(const ndn::Name& name, Node& node) {
    switch (policy_) {
      case EvictionPolicy::kLru:
      case EvictionPolicy::kFifo:
        order_.push_front(name);
        node.order_it = order_.begin();
        break;
      case EvictionPolicy::kLfu:
        node.freq = 1;
        node.freq_it = by_freq_.emplace(node.freq, name);
        break;
      case EvictionPolicy::kRandom:
        node.vec_index = by_index_.size();
        by_index_.push_back(name);
        break;
    }
  }

  void index_access(Node& node) {
    switch (policy_) {
      case EvictionPolicy::kLru:
        order_.splice(order_.begin(), order_, node.order_it);
        break;
      case EvictionPolicy::kFifo:
        break;
      case EvictionPolicy::kLfu: {
        const ndn::Name name = node.freq_it->second;
        by_freq_.erase(node.freq_it);
        ++node.freq;
        node.freq_it = by_freq_.emplace(node.freq, name);
        break;
      }
      case EvictionPolicy::kRandom:
        break;
    }
  }

  void index_erase(Node& node) {
    switch (policy_) {
      case EvictionPolicy::kLru:
      case EvictionPolicy::kFifo:
        order_.erase(node.order_it);
        break;
      case EvictionPolicy::kLfu:
        by_freq_.erase(node.freq_it);
        break;
      case EvictionPolicy::kRandom: {
        const std::size_t idx = node.vec_index;
        if (idx + 1 != by_index_.size()) {
          by_index_[idx] = std::move(by_index_.back());
          const auto moved = entries_.find(by_index_[idx]);
          moved->second.vec_index = idx;
        }
        by_index_.pop_back();
        break;
      }
    }
  }

  [[nodiscard]] ndn::Name pick_victim() {
    switch (policy_) {
      case EvictionPolicy::kLru:
      case EvictionPolicy::kFifo:
        return order_.back();
      case EvictionPolicy::kLfu:
        return by_freq_.begin()->second;
      case EvictionPolicy::kRandom:
        return by_index_[rng_.uniform_u64(by_index_.size())];
    }
    ADD_FAILURE() << "unknown policy";
    return ndn::Name();
  }

  std::size_t capacity_;
  EvictionPolicy policy_;
  util::Rng rng_;
  std::map<ndn::Name, Node> entries_;
  std::list<ndn::Name> order_;
  std::multimap<std::uint64_t, ndn::Name> by_freq_;
  std::vector<ndn::Name> by_index_;
  CacheStats stats_;
  std::optional<ndn::Name> last_victim_;
};

// --- randomized op driver ---------------------------------------------------

constexpr std::size_t kOpsPerPolicy = 120'000;
constexpr std::size_t kCapacity = 64;

/// Hierarchical names over a small alphabet so prefixes collide heavily:
/// depth 1..4, six choices per component (plus an occasional reserved
/// deep branch). ~1.6k distinct names vs a capacity-64 cache.
ndn::Name random_name(util::Rng& rng) {
  static const std::string kAlphabet[] = {"a", "b", "c", "d", "e", "f"};
  const std::size_t depth = 1 + rng.uniform_u64(4);
  std::vector<std::string> components;
  components.reserve(depth);
  for (std::size_t i = 0; i < depth; ++i)
    components.push_back(kAlphabet[rng.uniform_u64(6)]);
  return ndn::Name(std::move(components));
}

void expect_same_stats(const CacheStats& ref, const CacheStats& opt, std::size_t op) {
  ASSERT_EQ(ref.lookups, opt.lookups) << "op " << op;
  ASSERT_EQ(ref.matches, opt.matches) << "op " << op;
  ASSERT_EQ(ref.inserts, opt.inserts) << "op " << op;
  ASSERT_EQ(ref.evictions, opt.evictions) << "op " << op;
}

void expect_same_contents(const ReferenceContentStore& ref, const ContentStore& opt,
                          std::size_t op) {
  std::vector<ndn::Name> opt_names;
  opt_names.reserve(opt.size());
  opt.for_each([&opt_names](const Entry& entry) { opt_names.push_back(entry.data.name); });
  std::sort(opt_names.begin(), opt_names.end());
  ASSERT_EQ(ref.sorted_names(), opt_names) << "op " << op;
}

void run_differential(EvictionPolicy policy, std::uint64_t seed,
                      std::size_t capacity = kCapacity) {
  SCOPED_TRACE(std::string("policy=") + std::string(to_string(policy)) +
               " seed=" + std::to_string(seed));
  util::Rng op_rng(seed);
  const std::uint64_t cs_seed = seed ^ 0x9e3779b97f4a7c15ULL;
  ReferenceContentStore ref(capacity, policy, cs_seed);
  ContentStore opt(capacity, policy, cs_seed);

  util::SimTime now = 0;
  for (std::size_t op = 0; op < kOpsPerPolicy; ++op) {
    now += static_cast<util::SimTime>(op_rng.uniform_u64(4));
    const double roll = op_rng.uniform01();

    if (roll < 0.45) {
      // Insert: ~30% of content carries a short freshness period (so
      // entries go stale while cached), ~15% is exact-match-only
      // (unpredictable-name content, footnote 5 of the paper).
      ndn::Data data;
      data.name = random_name(op_rng);
      data.payload = "p" + std::to_string(op);
      if (op_rng.bernoulli(0.30))
        data.freshness_period = static_cast<std::int64_t>(op_rng.uniform_u64(30));
      if (op_rng.bernoulli(0.15)) data.exact_match_only = true;
      EntryMeta meta;
      meta.inserted_at = now;
      meta.last_access = now;

      Entry& ref_entry = ref.insert(data, meta);
      Entry& opt_entry = opt.insert(std::move(data), meta);
      ASSERT_EQ(ref_entry.data.name, opt_entry.data.name) << "op " << op;
      if (ref.last_victim()) {
        // The optimized store must have evicted the very same entry.
        ASSERT_FALSE(opt.contains(*ref.last_victim()))
            << "op " << op << " victim " << ref.last_victim()->to_uri();
      }
    } else if (roll < 0.75) {
      // Prefix find: interest for a random prefix depth (0 = root scans
      // everything); 40% MustBeFresh. A hit is touched half the time so
      // recency/frequency structures stay under churn.
      ndn::Interest interest;
      const ndn::Name full = random_name(op_rng);
      interest.name = full.prefix(op_rng.uniform_u64(full.size() + 1));
      interest.must_be_fresh = op_rng.bernoulli(0.40);
      const bool touch_hit = op_rng.bernoulli(0.50);

      Entry* ref_hit = ref.find(interest, now);
      Entry* opt_hit = opt.find(interest, now);
      ASSERT_EQ(ref_hit != nullptr, opt_hit != nullptr)
          << "op " << op << " interest " << interest.name.to_uri();
      if (ref_hit) {
        ASSERT_EQ(ref_hit->data.name, opt_hit->data.name) << "op " << op;
        ASSERT_EQ(ref_hit->data.payload, opt_hit->data.payload) << "op " << op;
        if (touch_hit) {
          ref.touch(*ref_hit, now);
          opt.touch(*opt_hit, now);
        }
      }
    } else if (roll < 0.85) {
      // Exact find (no stats side effects in either implementation).
      const ndn::Name name = random_name(op_rng);
      Entry* ref_hit = ref.find_exact(name);
      Entry* opt_hit = opt.find_exact(name);
      ASSERT_EQ(ref_hit != nullptr, opt_hit != nullptr) << "op " << op;
      if (ref_hit) {
        ASSERT_EQ(ref_hit->meta.inserted_at, opt_hit->meta.inserted_at) << "op " << op;
        ASSERT_EQ(ref_hit->meta.last_access, opt_hit->meta.last_access) << "op " << op;
      }
    } else if (roll < 0.93) {
      const ndn::Name name = random_name(op_rng);
      ASSERT_EQ(ref.erase(name), opt.erase(name)) << "op " << op;
    } else if (roll < 0.9995) {
      const ndn::Name name = random_name(op_rng);
      ASSERT_EQ(ref.contains(name), opt.contains(name)) << "op " << op;
    } else {
      // Rare full clear (stats are preserved across clear in both).
      ref.clear();
      opt.clear();
    }

    ASSERT_EQ(ref.size(), opt.size()) << "op " << op;
    expect_same_stats(ref.stats(), opt.stats(), op);
    if (op % 4096 == 0) expect_same_contents(ref, opt, op);
  }
  expect_same_contents(ref, opt, kOpsPerPolicy);
}

TEST(CsDifferential, Lru) { run_differential(EvictionPolicy::kLru, 42); }
TEST(CsDifferential, Fifo) { run_differential(EvictionPolicy::kFifo, 43); }
TEST(CsDifferential, Lfu) { run_differential(EvictionPolicy::kLfu, 44); }
TEST(CsDifferential, Random) { run_differential(EvictionPolicy::kRandom, 45); }

// A second seed per policy at a different capacity, so the streams explore
// a different eviction pressure (32-entry cache, same 1.6k-name universe).
TEST(CsDifferential, SecondSeedSweep) {
  for (const auto policy : {EvictionPolicy::kLru, EvictionPolicy::kFifo,
                            EvictionPolicy::kLfu, EvictionPolicy::kRandom})
    run_differential(policy, 0xfeedULL + static_cast<std::uint64_t>(policy), 32);
}

}  // namespace
}  // namespace ndnp::cache
