// Property tests for the deterministic fault-injection engine
// (sim/faults.hpp + util/fault_model.hpp): schedules replay bit-identically
// per seed, link directions own independent streams, corruption draws never
// shift later fault decisions, and per-node faults hit the right tables.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ndn/packet.hpp"
#include "runner/runner.hpp"
#include "sim/apps.hpp"
#include "sim/forwarder.hpp"
#include "sim/link.hpp"
#include "sim/scheduler.hpp"
#include "util/fault_model.hpp"
#include "util/rng.hpp"

namespace ndnp::sim {
namespace {

LinkFaultConfig busy_config(std::uint64_t seed) {
  LinkFaultConfig config;
  config.burst_loss = util::GilbertElliottConfig::from_loss_and_burst(0.08, 3.0);
  config.duplicate_probability = 0.05;
  config.corrupt_probability = 0.05;
  config.reorder_probability = 0.10;
  config.reorder_window = util::millis(1);
  config.spike_probability = 0.03;
  config.spike_delay = util::millis(2);
  config.flap_period = util::millis(30);
  config.flap_down = util::millis(4);
  config.seed = seed;
  return config;
}

std::string render(const FaultAction& action) {
  return std::string(action.drop ? "D" : "-") + (action.corrupt ? "C" : "-") +
         (action.duplicate ? "2" : "-") + ":" + std::to_string(action.extra_delay) + ":" +
         (action.cause ? action.cause : "");
}

std::vector<std::string> sample_schedule(LinkFaultState& state, std::size_t packets) {
  std::vector<std::string> schedule;
  schedule.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i)
    schedule.push_back(render(state.on_packet(static_cast<util::SimTime>(i) * 100'000)));
  return schedule;
}

TEST(Faults, ScheduleIsDeterministicPerSeed) {
  LinkFaultState a(busy_config(42), 0);
  LinkFaultState b(busy_config(42), 0);
  EXPECT_EQ(sample_schedule(a, 3000), sample_schedule(b, 3000));

  LinkFaultState c(busy_config(43), 0);
  LinkFaultState d(busy_config(42), 0);
  EXPECT_NE(sample_schedule(c, 3000), sample_schedule(d, 3000));
}

TEST(Faults, DirectionsDrawIndependentStreams) {
  LinkFaultState forward(busy_config(42), 0);
  LinkFaultState backward(busy_config(42), 1);
  EXPECT_NE(sample_schedule(forward, 3000), sample_schedule(backward, 3000));
}

TEST(Faults, CorruptionDrawsDoNotShiftFaultDecisions) {
  // Stream split contract: however much randomness each corruption
  // consumes, the drop/duplicate/delay decisions of later packets must not
  // move. Run the same schedule twice, once performing the corruptions and
  // once ignoring them.
  const ndn::Data victim = ndn::make_data(ndn::Name("/p/x/y"), "payload-bytes", "p", "k");
  LinkFaultState corrupting(busy_config(7), 0);
  std::vector<std::string> with_corruption;
  for (std::size_t i = 0; i < 3000; ++i) {
    const FaultAction action = corrupting.on_packet(static_cast<util::SimTime>(i) * 100'000);
    if (action.corrupt) (void)corrupting.corrupt(victim);
    with_corruption.push_back(render(action));
  }
  LinkFaultState ignoring(busy_config(7), 0);
  EXPECT_EQ(with_corruption, sample_schedule(ignoring, 3000));
}

TEST(Faults, CorruptEitherDecodesOrDropsNeverThrows) {
  LinkFaultConfig config = busy_config(11);
  config.corrupt_probability = 1.0;
  config.corrupt_max_bit_flips = 12;
  LinkFaultState state(config, 0);
  const ndn::Data data = ndn::make_data(ndn::Name("/p/obj"), "some-payload", "prod", "key");
  ndn::Interest interest;
  interest.name = ndn::Name("/p/obj/seg");
  interest.nonce = 99;
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  for (int i = 0; i < 500; ++i) {
    std::optional<ndn::Data> mangled_data;
    std::optional<ndn::Interest> mangled_interest;
    EXPECT_NO_THROW(mangled_data = state.corrupt(data));
    EXPECT_NO_THROW(mangled_interest = state.corrupt(interest));
    (mangled_data.has_value() ? delivered : dropped) += 1;
    (mangled_interest.has_value() ? delivered : dropped) += 1;
  }
  // Both fates must actually occur — otherwise the corruption path is not
  // exercising the decoder at all.
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(state.counters().corrupted + state.counters().corrupt_drops, 1000u);
}

TEST(Faults, GilbertElliottHitsTargetLossRate) {
  const auto config = util::GilbertElliottConfig::from_loss_and_burst(0.10, 4.0);
  EXPECT_NEAR(config.stationary_loss(), 0.10, 1e-12);
  util::GilbertElliottChain chain(config);
  util::Rng rng(1234);
  std::size_t losses = 0;
  std::size_t bursts = 0;
  bool in_loss_run = false;
  constexpr std::size_t kPackets = 200'000;
  for (std::size_t i = 0; i < kPackets; ++i) {
    const bool lost = chain.sample_loss(rng);
    losses += lost ? 1 : 0;
    if (lost && !in_loss_run) ++bursts;
    in_loss_run = lost;
  }
  const double rate = static_cast<double>(losses) / kPackets;
  EXPECT_NEAR(rate, 0.10, 0.01);
  // Mean burst length ~4 packets (geometric sojourn in Bad).
  const double mean_burst = static_cast<double>(losses) / static_cast<double>(bursts);
  EXPECT_NEAR(mean_burst, 4.0, 0.5);
}

TEST(Faults, DisabledConfigAttachesNoFaultState) {
  Scheduler scheduler;
  ForwarderConfig config;
  Forwarder a(scheduler, "A", config);
  Forwarder b(scheduler, "B", config);
  connect(a, b, {});  // benign link
  EXPECT_EQ(a.face_fault_counters(0), nullptr);
  EXPECT_EQ(b.face_fault_counters(0), nullptr);

  LinkConfig faulty;
  faulty.faults = busy_config(5);
  Forwarder c(scheduler, "C", config);
  connect(a, c, faulty);
  ASSERT_NE(a.face_fault_counters(1), nullptr);
  ASSERT_NE(c.face_fault_counters(0), nullptr);
  EXPECT_EQ(a.face_fault_counters(1)->packets, 0u);
}

TEST(Faults, NodeFaultsWipeCsAndSqueezePit) {
  Scheduler scheduler;
  ForwarderConfig config;
  config.cs_capacity = 16;
  config.pit_capacity = 8;
  Forwarder forwarder(scheduler, "R", config);
  for (int i = 0; i < 5; ++i) {
    cache::EntryMeta meta;
    meta.inserted_at = 0;
    meta.last_access = 0;
    (void)forwarder.cs().insert(
        ndn::make_data(ndn::Name("/p/o" + std::to_string(i)), "x", "p", "k"), meta);
  }
  ASSERT_EQ(forwarder.cs().size(), 5u);

  NodeFaultCounters counters;
  schedule_node_faults(forwarder,
                       {{.at = util::millis(1), .kind = NodeFaultKind::kCsWipe},
                        {.at = util::millis(2),
                         .kind = NodeFaultKind::kPitSqueeze,
                         .pit_capacity = 3}},
                       &counters);
  scheduler.run();

  EXPECT_EQ(forwarder.cs().size(), 0u);
  EXPECT_EQ(forwarder.config().pit_capacity, 3u);
  EXPECT_EQ(counters.cs_wipes, 1u);
  EXPECT_EQ(counters.cs_entries_wiped, 5u);
  EXPECT_EQ(counters.pit_squeezes, 1u);
  EXPECT_NO_THROW(forwarder.cs().check_integrity());
}

TEST(Faults, FaultyLinkConservesPackets) {
  // Every packet sent on a faulty face is either dropped (by the link's
  // base loss or the fault engine) or delivered — the per-face ledger
  // closes exactly. Exercised through a live fetch workload.
  Scheduler scheduler;
  ForwarderConfig config;
  config.processing_delay = util::micros(5);
  Forwarder router(scheduler, "R", config);
  ProducerConfig producer_config;
  Producer producer(scheduler, "P", ndn::Name("/p"), "key", producer_config, 3);
  Consumer consumer(scheduler, "C", 4);
  LinkConfig faulty = lan_link();
  faulty.faults = busy_config(21);
  connect(consumer, router, faulty);
  const auto [to_producer, from_router] = connect(router, producer, faulty);
  (void)from_router;
  router.add_route(ndn::Name("/p"), to_producer);

  for (int i = 0; i < 200; ++i) {
    ndn::Interest interest;
    interest.name = ndn::Name("/p/obj" + std::to_string(i % 20));
    scheduler.schedule_at(util::millis(i), [&consumer, interest] {
      consumer.express_interest(interest, {}, 0, util::millis(50), {}, {});
    });
  }
  scheduler.run();

  EXPECT_NO_THROW(router.check_invariants());
  EXPECT_NO_THROW(consumer.check_face_conservation());
  EXPECT_NO_THROW(producer.check_face_conservation());
  // The fault engine actually fired on this workload.
  std::uint64_t total = 0;
  for (FaceId face = 0; face < router.face_count(); ++face)
    if (const LinkFaultCounters* counters = router.face_fault_counters(face))
      total += counters->total();
  EXPECT_GT(total, 0u);
}

TEST(Faults, SweepScheduleIdenticalAcrossJobs) {
  // The per-link fault streams are derived only from the link seed, so a
  // parallel sweep of fault-heavy runs yields byte-identical schedules for
  // any --jobs value.
  const auto sweep = [](std::size_t jobs) {
    runner::SweepOptions options;
    options.jobs = jobs;
    options.master_seed = 99;
    return runner::run_sweep<std::vector<std::string>>(
        16, options, [](const runner::RunContext& ctx) {
          LinkFaultState state(busy_config(ctx.seed), 0);
          return sample_schedule(state, 400);
        });
  };
  const auto j1 = sweep(1);
  const auto j4 = sweep(4);
  const auto j8 = sweep(8);
  EXPECT_EQ(j1, j4);
  EXPECT_EQ(j1, j8);
}

}  // namespace
}  // namespace ndnp::sim
