// Randomized stress/property tests of the forwarder: a star of consumers
// behind one router chained to a producer, driven with random overlapping
// fetches. Invariants checked per seed: every fetch completes, the PIT
// drains, the CS respects capacity, counters reconcile, and the whole run
// is bit-deterministic.
#include <gtest/gtest.h>

#include <numeric>
#include <optional>

#include "sim/apps.hpp"
#include "sim/forwarder.hpp"

namespace ndnp::sim {
namespace {

struct StressResult {
  std::uint64_t completed = 0;
  std::uint64_t issued = 0;
  util::SimDuration total_rtt = 0;
  ForwarderStats router_stats;
  std::size_t final_pit = 0;
  std::size_t final_cs = 0;
};

StressResult run_stress(std::uint64_t seed, std::size_t consumers, std::size_t cs_capacity) {
  Scheduler sched;
  ForwarderConfig rcfg;
  rcfg.cs_capacity = cs_capacity;
  rcfg.processing_delay = util::micros(15);
  rcfg.seed = seed;
  Forwarder router(sched, "R", rcfg);
  Forwarder core(sched, "X", rcfg);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, seed + 1);

  LinkConfig access = lan_link(0.3, 0.1);
  LinkConfig backbone = wan_link(2.0, 0.3, 0.5);

  std::vector<std::unique_ptr<Consumer>> apps;
  for (std::size_t i = 0; i < consumers; ++i) {
    apps.push_back(
        std::make_unique<Consumer>(sched, "C" + std::to_string(i), seed + 10 + i));
    connect(*apps.back(), router, access);
  }
  const auto [r_up, x_down] = connect(router, core, backbone);
  (void)x_down;
  const auto [x_up, p_down] = connect(core, producer, backbone);
  (void)p_down;
  router.add_route(ndn::Name("/p"), r_up);
  core.add_route(ndn::Name("/p"), x_up);

  StressResult result;
  util::Rng rng(seed);
  // Random overlapping fetches spread over 2 simulated seconds; a small
  // name pool forces collapsing and cache churn.
  constexpr std::size_t kRequests = 400;
  constexpr std::size_t kNamePool = 60;
  for (std::size_t i = 0; i < kRequests; ++i) {
    Consumer& app = *apps[rng.uniform_u64(apps.size())];
    const ndn::Name name = ndn::Name("/p/obj").append_number(rng.uniform_u64(kNamePool));
    const util::SimTime at = static_cast<util::SimTime>(rng.uniform_u64(
        static_cast<std::uint64_t>(util::seconds(2))));
    sched.schedule_at(at, [&app, &result, name] {
      result.issued++;
      app.fetch(name, [&result](const ndn::Data&, util::SimDuration rtt) {
        ++result.completed;
        result.total_rtt += rtt;
      });
    });
  }
  sched.run();

  result.router_stats = router.stats();
  result.final_pit = router.pit_size();
  result.final_cs = router.cs().size();
  return result;
}

class ForwarderStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForwarderStress, AllFetchesCompleteAndInvariantsHold) {
  const StressResult result = run_stress(GetParam(), /*consumers=*/5, /*cs_capacity=*/32);

  // Liveness: lossless links, so every issued fetch completes.
  EXPECT_EQ(result.completed, result.issued);
  EXPECT_EQ(result.issued, 400u);

  // PIT drains once all data has flowed.
  EXPECT_EQ(result.final_pit, 0u);

  // CS bounded by capacity.
  EXPECT_LE(result.final_cs, 32u);

  // Counter reconciliation: every received interest is either answered
  // from the CS, collapsed, or forwarded (no other sink on this topology).
  const ForwarderStats& stats = result.router_stats;
  EXPECT_EQ(stats.interests_received,
            stats.exposed_hits + stats.delayed_hits + stats.collapsed_interests +
                stats.forwarded_interests + stats.nonce_drops + stats.no_route_drops +
                stats.scope_drops + stats.pit_overflows);
  // Data received equals interests forwarded (lossless, one producer) less
  // any PIT expirations that raced; here nothing expires.
  EXPECT_EQ(stats.data_received, stats.forwarded_interests);
  EXPECT_EQ(stats.pit_expirations, 0u);
  // Everything the router received it forwarded to at least one consumer.
  EXPECT_GE(stats.data_forwarded, stats.data_received);
}

TEST_P(ForwarderStress, DeterministicAcrossIdenticalRuns) {
  const StressResult a = run_stress(GetParam(), 4, 16);
  const StressResult b = run_stress(GetParam(), 4, 16);
  EXPECT_EQ(a.total_rtt, b.total_rtt);
  EXPECT_EQ(a.router_stats.exposed_hits, b.router_stats.exposed_hits);
  EXPECT_EQ(a.router_stats.forwarded_interests, b.router_stats.forwarded_interests);
}

TEST_P(ForwarderStress, DifferentSeedsDiverge) {
  const StressResult a = run_stress(GetParam(), 4, 16);
  const StressResult b = run_stress(GetParam() + 1'000'000, 4, 16);
  EXPECT_NE(a.total_rtt, b.total_rtt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForwarderStress,
                         ::testing::Values(101, 202, 303, 404, 505),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(ForwarderStressLossy, SystemSurvivesHeavyLoss) {
  // With 20% loss everywhere nothing can be guaranteed about completion,
  // but the system must stay consistent: no crash, PIT eventually drains
  // via timeouts, counters still reconcile.
  Scheduler sched;
  ForwarderConfig rcfg;
  rcfg.cs_capacity = 16;
  rcfg.pit_timeout = util::millis(200);
  Forwarder router(sched, "R", rcfg);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 1);
  Consumer consumer(sched, "C", 2);

  LinkConfig lossy = lan_link(0.5, 0.1);
  lossy.loss_probability = 0.2;
  connect(consumer, router, lossy);
  const auto [up, down] = connect(router, producer, lossy);
  (void)down;
  router.add_route(ndn::Name("/p"), up);

  std::size_t completed = 0;
  util::Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const util::SimTime at = static_cast<util::SimTime>(
        rng.uniform_u64(static_cast<std::uint64_t>(util::seconds(1))));
    sched.schedule_at(at, [&consumer, &completed, i] {
      consumer.fetch(ndn::Name("/p/o").append_number(static_cast<std::uint64_t>(i % 40)),
                     [&completed](const ndn::Data&, util::SimDuration) { ++completed; });
    });
  }
  sched.run();
  EXPECT_GT(completed, 100u);  // plenty still succeed
  EXPECT_EQ(router.pit_size(), 0u);
  EXPECT_LE(router.cs().size(), 16u);
}

}  // namespace
}  // namespace ndnp::sim
