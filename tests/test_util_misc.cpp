#include <gtest/gtest.h>

#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace ndnp::util {
namespace {

TEST(SimTime, UnitConstructors) {
  EXPECT_EQ(nanos(5), 5);
  EXPECT_EQ(micros(3), 3'000);
  EXPECT_EQ(millis(2), 2'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
}

TEST(SimTime, FractionalMillis) {
  EXPECT_EQ(millis_f(0.05), 50'000);
  EXPECT_EQ(millis_f(1.5), 1'500'000);
  EXPECT_EQ(millis_f(0.0), 0);
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ(to_millis(millis(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_micros(micros(9)), 9.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_millis(micros(500)), 0.5);
}

TEST(SimTime, RoundTripIsExactForWholeUnits) {
  for (const std::int64_t ms : {0LL, 1LL, 42LL, 86'400'000LL}) {
    EXPECT_EQ(static_cast<std::int64_t>(to_millis(millis(ms))), ms);
  }
}

TEST(SimTime, Sentinels) {
  EXPECT_EQ(kTimeZero, 0);
  EXPECT_LT(kTimeUnset, kTimeZero);
}

TEST(Logging, LevelIsProcessGlobalAndRestorable) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(log_level(), LogLevel::kTrace);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Logging, SuppressedLevelsDoNotCrash) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  // These go nowhere; the test is that formatting with args is safe.
  log(LogLevel::kDebug, "dropped %d %s", 42, "message");
  log(LogLevel::kTrace, "also dropped");
  set_log_level(original);
}

TEST(Logging, EnabledLevelFormats) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kTrace);
  // Emitted to stderr; just exercise every level's name path.
  log(LogLevel::kError, "e");
  log(LogLevel::kWarn, "w");
  log(LogLevel::kInfo, "i %d", 1);
  log(LogLevel::kDebug, "d");
  log(LogLevel::kTrace, "t");
  set_log_level(original);
}

}  // namespace
}  // namespace ndnp::util
