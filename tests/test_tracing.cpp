// Flight recorder: macro gating (zero-cost disabled path, asserted with a
// counting operator new), ring/filter/intern semantics, exporter
// round-trips, and the attack-forensics join — both on synthetic event
// streams and cross-checked against a real timing-attack run's counters.
#include "util/tracing.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "attack/timing_attack.hpp"
#include "sim/topology.hpp"
#include "sim/trace_sinks.hpp"
#include "util/metrics.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: replacement global operator new so tests can assert
// the disabled trace path performs zero allocations per event. The counter
// covers the whole test binary; tests only ever compare deltas across a
// straight-line region with no other allocation sources.

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

// The replacement operators pair ::new with std::free by design; GCC's
// heuristic cannot see that this *is* the allocation function.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace ndnp;

TEST(Tracing, RecordsEventsWithInternedLabels) {
  util::Tracer tracer;
  EXPECT_TRUE(tracer.enabled());
  tracer.record(util::TraceEventType::kCsLookup, "R", 100, "/a/1", "result=hit depth=1", 2, 0, 0);
  tracer.record(util::TraceEventType::kInterestTx, "U", 200, "/a/2", "private=0");
  const std::vector<util::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, 100);
  EXPECT_EQ(tracer.label(events[0].node), "R");
  EXPECT_EQ(tracer.label(events[0].comp), "cs");
  EXPECT_EQ(events[0].face, 2);
  EXPECT_EQ(tracer.label(events[1].node), "U");
  EXPECT_EQ(tracer.label(events[1].comp), "link");
  // Interning is stable: the same label maps to the same id.
  EXPECT_EQ(tracer.intern("R"), events[0].node);
  EXPECT_EQ(tracer.total_recorded(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracing, RingKeepsMostRecentEventsInOrder) {
  util::Tracer tracer(4);
  for (int i = 0; i < 10; ++i)
    tracer.record(util::TraceEventType::kMark, "n", i, "/m/" + std::to_string(i));
  const std::vector<util::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].time, 6 + i);
    EXPECT_EQ(events[i].name, "/m/" + std::to_string(6 + i));
  }
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(Tracing, FilterKeepsMatchingNamesAndUnnamedEvents) {
  util::Tracer tracer;
  tracer.set_filter("/keep");
  tracer.record(util::TraceEventType::kInterestRx, "R", 1, "/keep/1");
  tracer.record(util::TraceEventType::kInterestRx, "R", 2, "/drop/1");
  tracer.record(util::TraceEventType::kMark, "R", 3);  // unnamed: always passes
  const std::vector<util::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "/keep/1");
  EXPECT_EQ(events[1].name, "");
  EXPECT_EQ(tracer.filtered(), 1u);
}

#if NDNP_TRACING
TEST(Tracing, UnboundPathEvaluatesNothingAndNeverAllocates) {
  ASSERT_EQ(util::Tracer::current(), nullptr);
  std::size_t evaluations = 0;
  const auto expensive_name = [&evaluations]() -> std::string {
    ++evaluations;
    return "/heap/allocating/name";
  };
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i)
    NDNP_TRACE_EVENT(util::TraceEventType::kMark, "n", 0, expensive_name());
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "disabled trace path allocated";
  EXPECT_EQ(evaluations, 0u) << "macro arguments evaluated with no tracer bound";
}

TEST(Tracing, DisabledTracerEvaluatesNothingAndNeverAllocates) {
  util::Tracer tracer;
  tracer.set_enabled(false);
  util::TracerBinding binding(&tracer);
  std::size_t evaluations = 0;
  const auto expensive_name = [&evaluations]() -> std::string {
    ++evaluations;
    return "/heap/allocating/name";
  };
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i)
    NDNP_TRACE_EVENT(util::TraceEventType::kMark, "n", 0, expensive_name());
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "disabled tracer allocated";
  EXPECT_EQ(evaluations, 0u);
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(Tracing, BindingRestoresPreviousTracer) {
  util::Tracer outer;
  util::TracerBinding outer_binding(&outer);
  EXPECT_EQ(util::Tracer::current(), &outer);
  {
    util::Tracer inner;
    util::TracerBinding inner_binding(&inner);
    EXPECT_EQ(util::Tracer::current(), &inner);
    NDNP_TRACE_EVENT(util::TraceEventType::kMark, "inner", 1);
  }
  EXPECT_EQ(util::Tracer::current(), &outer);
  NDNP_TRACE_EVENT(util::TraceEventType::kMark, "outer", 2);
  ASSERT_EQ(outer.events().size(), 1u);
  EXPECT_EQ(outer.label(outer.events()[0].node), "outer");
}

TEST(Tracing, ScopeRecordsSpanAndFeedsProfileHistogram) {
  util::Tracer tracer;
  util::MetricsRegistry registry;
  tracer.set_profile_registry(&registry);
  util::TracerBinding binding(&tracer);
  { NDNP_TRACE_SCOPE("R", "forwarder", "handle_interest"); }
  const std::vector<util::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, util::TraceEventType::kSpan);
  EXPECT_EQ(tracer.label(events[0].comp), "forwarder");
  EXPECT_GE(events[0].a, 0);  // wall-clock duration in ns
  const util::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.histograms.at("profile.forwarder.handle_interest_us").total(), 1u);
}
#endif  // NDNP_TRACING

// ---------------------------------------------------------------------------
// Exporters.

TEST(TraceSinks, JsonlRoundTripsEveryFieldIncludingEscapes) {
  util::Tracer tracer;
  tracer.record(util::TraceEventType::kCsLookup, "R", 1234, "/a/\"quoted\"\\name",
                "result=hit depth=2 policy=LRU", 3, -5, 7);
  tracer.record(util::TraceEventType::kMark, "node\nwith\tctrl", 0);
  const std::vector<sim::FlatEvent> events = sim::flatten(tracer);
  std::ostringstream out;
  sim::write_trace_jsonl(events, out);
  std::istringstream in(out.str());
  const std::vector<sim::FlatEvent> parsed = sim::parse_trace_jsonl(in);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].t, events[i].t);
    EXPECT_EQ(parsed[i].type, events[i].type);
    EXPECT_EQ(parsed[i].node, events[i].node);
    EXPECT_EQ(parsed[i].comp, events[i].comp);
    EXPECT_EQ(parsed[i].name, events[i].name);
    EXPECT_EQ(parsed[i].detail, events[i].detail);
    EXPECT_EQ(parsed[i].face, events[i].face);
    EXPECT_EQ(parsed[i].a, events[i].a);
    EXPECT_EQ(parsed[i].b, events[i].b);
  }
}

TEST(TraceSinks, DetailFieldExtractsKeyValuePairs) {
  const std::string detail = "result=hit depth=2 policy=LRU";
  EXPECT_EQ(sim::detail_field(detail, "result"), "hit");
  EXPECT_EQ(sim::detail_field(detail, "depth"), "2");
  EXPECT_EQ(sim::detail_field(detail, "policy"), "LRU");
  EXPECT_EQ(sim::detail_field(detail, "absent"), "");
  // Keys must match whole tokens, not suffixes.
  EXPECT_EQ(sim::detail_field("xresult=no result=yes", "result"), "yes");
}

TEST(TraceSinks, ChromeTraceIsWellFormedAndNamesProcesses) {
  util::Tracer tracer;
  tracer.record(util::TraceEventType::kInterestTx, "U", 1000, "/a/1", "private=0", 0);
  tracer.record(util::TraceEventType::kCsLookup, "R", 2000, "/a/1", "result=miss depth=0", 1);
  tracer.record_span("R", "forwarder", "handle_interest", 42);
  std::ostringstream out;
  sim::write_chrome_trace(sim::flatten(tracer), out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"U\""), std::string::npos);
  EXPECT_NE(json.find("\"R\""), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

// ---------------------------------------------------------------------------
// Forensics on a synthetic event stream: one probe per verdict class.

sim::FlatEvent make_event(util::SimTime t, std::string type, std::string node, std::string name,
                          std::string detail = {}, std::int64_t a = 0, std::int64_t b = 0) {
  sim::FlatEvent ev;
  ev.t = t;
  ev.type = std::move(type);
  ev.node = std::move(node);
  ev.comp = "test";
  ev.name = std::move(name);
  ev.detail = std::move(detail);
  ev.a = a;
  ev.b = b;
  return ev;
}

TEST(TraceSinks, ForensicsDistinguishesAllVerdictClasses) {
  std::vector<sim::FlatEvent> events;
  // Probe 0: true hit — lookup hit, policy exposes it.
  events.push_back(make_event(100, "cs_lookup", "R", "/p/0", "result=hit depth=1"));
  events.push_back(
      make_event(100, "policy_decision", "R", "/p/0", "policy=none action=ExposeHit private=0"));
  events.push_back(make_event(150, "attack_probe", "Adv", "/p/0", "truth=hit", 100, 0));
  // Probe 1: delayed hit — cached, policy added artificial delay.
  events.push_back(make_event(200, "cs_lookup", "R", "/p/1", "result=hit depth=1"));
  events.push_back(make_event(
      200, "policy_decision", "R", "/p/1", "policy=always-delay action=DelayedHit private=1"));
  events.push_back(make_event(300, "attack_probe", "Adv", "/p/1", "truth=hit", 150, 1));
  // Probe 2: simulated miss — cached but the policy mimicked a miss.
  events.push_back(make_event(400, "cs_lookup", "R", "/p/2", "result=hit depth=1"));
  events.push_back(make_event(
      400, "policy_decision", "R", "/p/2", "policy=naive action=SimulatedMiss private=1"));
  events.push_back(make_event(520, "attack_probe", "Adv", "/p/2", "truth=hit", 150, 2));
  // Probe 3: true miss.
  events.push_back(make_event(600, "cs_lookup", "R", "/p/3", "result=miss depth=0"));
  events.push_back(make_event(700, "attack_probe", "Adv", "/p/3", "truth=miss", 150, 3));
  // Probe 4: no lookup inside the RTT window -> unknown.
  events.push_back(make_event(900, "attack_probe", "Adv", "/p/4", "truth=miss", 50, 4));

  const sim::ForensicsReport report = sim::probe_forensics(events);
  ASSERT_EQ(report.probes.size(), 5u);
  EXPECT_EQ(report.probes[0].verdict, sim::ProbeVerdict::kTrueHit);
  EXPECT_EQ(report.probes[1].verdict, sim::ProbeVerdict::kDelayedHit);
  EXPECT_EQ(report.probes[2].verdict, sim::ProbeVerdict::kSimulatedMiss);
  EXPECT_EQ(report.probes[3].verdict, sim::ProbeVerdict::kTrueMiss);
  EXPECT_EQ(report.probes[4].verdict, sim::ProbeVerdict::kUnknown);
  EXPECT_EQ(report.true_hits, 1u);
  EXPECT_EQ(report.delayed_hits, 1u);
  EXPECT_EQ(report.simulated_misses, 1u);
  EXPECT_EQ(report.true_misses, 1u);
  EXPECT_EQ(report.unknown, 1u);
  // Probes 0-3 agree with their truth annotation; the unknown one cannot.
  EXPECT_EQ(report.agreements, 4u);
  EXPECT_EQ(report.probes[0].decided_by, "R");
  // The table renders one row per probe plus header and summary.
  const std::string table = report.format_table();
  EXPECT_NE(table.find("TrueHit"), std::string::npos);
  EXPECT_NE(table.find("probes=5"), std::string::npos);
  // No fault_inject events in the capture: the faults column and summary
  // fields stay out, keeping clean-run output byte-identical.
  EXPECT_EQ(report.fault_events, 0u);
  EXPECT_EQ(table.find("faults"), std::string::npos);
  EXPECT_EQ(table.find("fault_events"), std::string::npos);
}

TEST(TraceSinks, ForensicsAttributesFaultsInsideProbeWindows) {
  std::vector<sim::FlatEvent> events;
  // Probe 0 (window [50, 150]): a link fault on its own name fired inside
  // the window — its miss verdict is attributable to the injected loss.
  events.push_back(make_event(80, "fault_inject", "R", "/p/0", "cause=burst kind=interest"));
  events.push_back(make_event(100, "cs_lookup", "R", "/p/0", "result=miss depth=0"));
  events.push_back(make_event(150, "attack_probe", "Adv", "/p/0", "truth=hit", 100, 0));
  // Probe 1 (window [150, 300]): a node-level CS wipe (empty name — it hits
  // every name) lands inside the window.
  events.push_back(make_event(250, "fault_inject", "R", "", "fault=cs_wipe"));
  events.push_back(make_event(260, "cs_lookup", "R", "/p/1", "result=miss depth=0"));
  events.push_back(make_event(300, "attack_probe", "Adv", "/p/1", "truth=miss", 150, 1));
  // Probe 2 (window [850, 900]): both faults are long past — clean.
  events.push_back(make_event(880, "cs_lookup", "R", "/p/2", "result=hit depth=1"));
  events.push_back(
      make_event(880, "policy_decision", "R", "/p/2", "policy=none action=ExposeHit private=0"));
  events.push_back(make_event(900, "attack_probe", "Adv", "/p/2", "truth=hit", 50, 2));

  const sim::ForensicsReport report = sim::probe_forensics(events);
  ASSERT_EQ(report.probes.size(), 3u);
  EXPECT_EQ(report.fault_events, 2u);
  EXPECT_EQ(report.faulted_probes, 2u);
  EXPECT_EQ(report.probes[0].faults, 1);
  EXPECT_EQ(report.probes[0].fault_causes, "burst");
  EXPECT_FALSE(report.probes[0].agrees);  // attributable to the fault, not the join
  EXPECT_EQ(report.probes[1].faults, 1);
  EXPECT_EQ(report.probes[1].fault_causes, "cs_wipe");
  EXPECT_EQ(report.probes[2].faults, 0);
  EXPECT_EQ(report.probes[2].fault_causes, "");

  const std::string table = report.format_table();
  EXPECT_NE(table.find("faults"), std::string::npos);
  EXPECT_NE(table.find("1:burst"), std::string::npos);
  EXPECT_NE(table.find("1:cs_wipe"), std::string::npos);
  EXPECT_NE(table.find("fault_events=2 faulted_probes=2"), std::string::npos);
}

#if NDNP_TRACING
// ---------------------------------------------------------------------------
// End-to-end cross-check: capture a real (small) Figure-3 timing attack and
// verify the forensics join agrees with the attack's own accounting — same
// probe count, same hit/miss split, perfect truth agreement (the LAN
// scenario runs without a privacy policy, so every verdict is TrueHit or
// TrueMiss).

TEST(TraceSinks, ForensicsAgreesWithTimingAttackCounters) {
  attack::TimingAttackConfig config;
  config.trials = 4;
  config.contents_per_trial = 5;
  config.scenario_params = &sim::lan_scenario_params;
  config.seed = 1;

  util::Tracer tracer;
  attack::TimingAttackResult result;
  {
    util::TracerBinding binding(&tracer);
    result = attack::run_timing_attack(config);
  }
  const sim::ForensicsReport report = sim::probe_forensics(sim::flatten(tracer));

  const std::size_t hits = result.hit_rtts_ms.size();
  const std::size_t misses = result.miss_rtts_ms.size();
  ASSERT_EQ(report.probes.size(), hits + misses);
  EXPECT_EQ(report.true_hits, hits);
  EXPECT_EQ(report.true_misses, misses);
  EXPECT_EQ(report.delayed_hits, 0u);
  EXPECT_EQ(report.simulated_misses, 0u);
  EXPECT_EQ(report.unknown, 0u);
  EXPECT_DOUBLE_EQ(report.agreement_rate(), 1.0);
  // Every verdict was decided by the shared first-hop router.
  for (const sim::ProbeForensics& probe : report.probes) EXPECT_EQ(probe.decided_by, "R");
}
#endif  // NDNP_TRACING

}  // namespace
