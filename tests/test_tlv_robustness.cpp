// TLV decoder robustness corpus.
//
// The codec's contract (tlv.hpp): well-formed wire round-trips exactly;
// truncated or malformed input throws TlvError — it must never crash,
// read out of bounds, or loop forever. This test builds a deterministic
// corpus of encoded packets of every kind (names, interests, data — plain
// and with every extension field populated), then replays two fault
// models against each buffer with fixed seeds:
//
//   1. every truncation prefix wire[0..k), k < size — must throw TlvError
//      (the outer type/length framing makes any strict prefix incomplete);
//   2. seeded single- and double-bit flips — each decode must either throw
//      TlvError (or the std::length_error/bad_alloc family on absurd
//      length claims is NOT acceptable: lengths are validated against the
//      buffer before allocation, so only TlvError may escape) or succeed;
//      a successful decode must re-encode without crashing.
//
// Every iteration is bounded by a wall-clock guard so a decoder loop bug
// fails the test instead of hanging the suite.
#include "ndn/tlv.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ndn/packet.hpp"
#include "util/rng.hpp"

namespace ndnp::ndn {
namespace {

enum class Kind { kName, kInterest, kData };

struct CorpusItem {
  Kind kind;
  std::string label;
  Buffer wire;
};

/// Decode `wire` as `kind`; any escaping exception other than TlvError is
/// a robustness bug. Returns true if the decode succeeded.
bool decode_guarded(Kind kind, std::span<const std::uint8_t> wire, const std::string& label) {
  try {
    switch (kind) {
      case Kind::kName: {
        const Name name = decode_name(wire);
        (void)encode(name);  // successful decodes must re-encode cleanly
        return true;
      }
      case Kind::kInterest: {
        const Interest interest = decode_interest(wire);
        (void)encode(interest);
        return true;
      }
      case Kind::kData: {
        const Data data = decode_data(wire);
        (void)encode(data);
        return true;
      }
    }
  } catch (const TlvError&) {
    return false;  // the one sanctioned failure mode
  } catch (const std::exception& e) {
    ADD_FAILURE() << label << ": decoder leaked non-TlvError exception: " << e.what();
    return false;
  }
  ADD_FAILURE() << label << ": unreachable kind";
  return false;
}

std::vector<CorpusItem> build_corpus() {
  std::vector<CorpusItem> corpus;

  const Name names[] = {
      Name(),                       // root
      Name("/a"),                   // single short component
      Name("/cnn/news/2013may20"),  // the paper's running example
      Name("/p/{very-long-component-padding-past-the-1-byte-length-escape-"
           "0123456789012345678901234567890123456789012345678901234567890123456789"
           "0123456789012345678901234567890123456789012345678901234567890123456789"
           "0123456789012345678901234567890123456789012345678901234567890123456789}"),
      Name({"bin", std::string("\x01\x02%\x7f", 4)}),  // bytes needing escapes
  };
  for (const Name& name : names)
    corpus.push_back({Kind::kName, "name:" + name.to_uri(), encode(name)});

  Interest plain;
  plain.name = Name("/cnn/news");
  plain.nonce = 0x1234'5678'9abc'def0ULL;
  corpus.push_back({Kind::kInterest, "interest:plain", encode(plain)});

  Interest full;
  full.name = Name("/private/article/7");
  full.nonce = 42;
  full.scope = 2;               // the paper's first-hop probing scope
  full.private_req = true;      // consumer privacy bit
  full.must_be_fresh = true;
  full.lifetime = 4'000'000'000LL;
  corpus.push_back({Kind::kInterest, "interest:full", encode(full)});

  Data small = make_data(Name("/cnn/news/2013may20"), "payload", "cnn", "key");
  corpus.push_back({Kind::kData, "data:small", encode(small)});

  Data rich = make_data(Name("/med/record/rand123"), std::string(300, 'x'), "hospital",
                        "key2", /*producer_private=*/true);
  rich.exact_match_only = true;
  rich.group_id = "records";
  rich.freshness_period = 0;  // interactive content: stale immediately
  corpus.push_back({Kind::kData, "data:rich", encode(rich)});

  Data forever = make_data(Name("/static/logo"), "img", "cdn", "key3");
  forever.freshness_period = std::nullopt;
  corpus.push_back({Kind::kData, "data:no-freshness", encode(forever)});

  return corpus;
}

/// Each corpus buffer round-trips: decode(encode(x)) == x field-by-field
/// is already covered by test_tlv.cpp; here we pin that decode of the
/// exact wire succeeds and re-encodes to the identical bytes (so the
/// robustness runs below start from known-good buffers).
TEST(TlvRobustness, CorpusRoundTrips) {
  for (const CorpusItem& item : build_corpus()) {
    SCOPED_TRACE(item.label);
    switch (item.kind) {
      case Kind::kName:
        EXPECT_EQ(encode(decode_name(item.wire)), item.wire);
        break;
      case Kind::kInterest:
        EXPECT_EQ(encode(decode_interest(item.wire)), item.wire);
        break;
      case Kind::kData:
        EXPECT_EQ(encode(decode_data(item.wire)), item.wire);
        break;
    }
  }
}

TEST(TlvRobustness, EveryTruncationPrefixThrows) {
  for (const CorpusItem& item : build_corpus()) {
    SCOPED_TRACE(item.label);
    for (std::size_t k = 0; k < item.wire.size(); ++k) {
      const std::span<const std::uint8_t> prefix(item.wire.data(), k);
      const bool ok = decode_guarded(item.kind, prefix, item.label + " trunc@" +
                                                            std::to_string(k));
      EXPECT_FALSE(ok) << item.label << ": decode of strict prefix of length " << k
                       << " unexpectedly succeeded";
    }
  }
}

TEST(TlvRobustness, SeededBitFlipsNeverCrashOrHang) {
  constexpr int kFlipsPerItem = 2000;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  util::Rng rng(0xb17f11b5ULL);  // fixed seed: the corpus is deterministic
  for (const CorpusItem& item : build_corpus()) {
    SCOPED_TRACE(item.label);
    Buffer mutated = item.wire;
    for (int i = 0; i < kFlipsPerItem; ++i) {
      const std::size_t byte_a = rng.uniform_u64(mutated.size());
      const std::uint8_t bit_a = static_cast<std::uint8_t>(1u << rng.uniform_u64(8));
      mutated[byte_a] ^= bit_a;
      // Half the time, flip a second independent bit so length fields and
      // their payloads can disagree in combination.
      std::size_t byte_b = mutated.size();
      std::uint8_t bit_b = 0;
      if (rng.bernoulli(0.5)) {
        byte_b = rng.uniform_u64(mutated.size());
        bit_b = static_cast<std::uint8_t>(1u << rng.uniform_u64(8));
        mutated[byte_b] ^= bit_b;
      }

      (void)decode_guarded(item.kind, mutated,
                           item.label + " flip#" + std::to_string(i));

      // Undo, keeping the buffer equal to the pristine wire for the next
      // iteration (flips stay single/double, not cumulative).
      mutated[byte_a] ^= bit_a;
      if (byte_b != mutated.size()) mutated[byte_b] ^= bit_b;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << item.label << ": bit-flip corpus exceeded its time budget (decoder loop?)";
    }
    ASSERT_EQ(mutated, item.wire);
  }
}

/// The fault engine's corruption path (sim/faults.hpp) is exactly this
/// contract driven from the simulator: encode, flip 1..N seeded bits,
/// decode. Every outcome must be "valid packet" (delivered corrupted) or
/// "TlvError" (dropped as garbage) — anything else is UB the chaos runs
/// would hit. Replay its bit-flip recipe directly against the corpus, at
/// higher flip counts than the engine's default.
TEST(TlvRobustness, FaultEngineStyleCorruptionDecodesOrThrows) {
  util::Rng rng(0xfa017ULL);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  for (const CorpusItem& item : build_corpus()) {
    SCOPED_TRACE(item.label);
    std::size_t delivered = 0;
    std::size_t dropped = 0;
    for (int round = 0; round < 600; ++round) {
      Buffer mutated = item.wire;
      // Mirror LinkFaultState::corrupt: 1 + uniform(max_flips) independent
      // bit flips over the whole wire (flips may collide and cancel).
      const std::uint64_t flips = 1 + rng.uniform_u64(8);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const std::uint64_t bit = rng.uniform_u64(mutated.size() * 8);
        mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      const bool ok = decode_guarded(item.kind, mutated,
                                     item.label + " corrupt#" + std::to_string(round));
      (ok ? delivered : dropped) += 1;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << item.label << ": corruption corpus exceeded its time budget";
    }
    // Both fates occur for every corpus item: the engine's drop-as-garbage
    // and deliver-corrupted branches are both reachable.
    EXPECT_GT(delivered + dropped, 0u);
    EXPECT_GT(dropped, 0u) << item.label << ": no corruption ever broke the framing";
  }
}

/// Adversarial length claims: a 1-byte buffer whose length field promises
/// gigabytes must throw before any allocation is attempted.
TEST(TlvRobustness, HugeLengthClaimsThrow) {
  for (const CorpusItem& item : build_corpus()) {
    SCOPED_TRACE(item.label);
    Buffer wire = item.wire;
    // Rewrite the outer length to an 8-byte escape claiming 2^62 bytes.
    Buffer evil;
    std::size_t offset = 0;
    const std::uint64_t type = read_varnum(wire, offset);
    append_varnum(evil, type);
    evil.push_back(255);
    for (int shift = 56; shift >= 0; shift -= 8)
      evil.push_back(static_cast<std::uint8_t>((0x4000'0000'0000'0000ULL >> shift) & 0xff));
    evil.insert(evil.end(), wire.begin() + static_cast<std::ptrdiff_t>(offset), wire.end());
    EXPECT_FALSE(decode_guarded(item.kind, evil, item.label + " huge-length"));
  }
}

}  // namespace
}  // namespace ndnp::ndn
