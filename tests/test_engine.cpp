#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "core/policies.hpp"

namespace ndnp::core {
namespace {

constexpr util::SimDuration kFetchDelay = util::millis(30);

CachePrivacyEngine::FetchFn make_fetch(bool producer_private = false) {
  return [producer_private](const ndn::Interest& interest) {
    return std::pair{
        ndn::make_data(interest.name, "payload", "producer", "key", producer_private),
        kFetchDelay};
  };
}

ndn::Interest interest_for(const std::string& uri, bool private_req = false) {
  ndn::Interest interest;
  interest.name = ndn::Name(uri);
  interest.private_req = private_req;
  return interest;
}

TEST(Engine, FirstRequestIsTrueMiss) {
  CachePrivacyEngine engine(10, cache::EvictionPolicy::kLru,
                            std::make_unique<NoPrivacyPolicy>());
  const RequestOutcome outcome = engine.handle(interest_for("/a"), 0, make_fetch());
  EXPECT_EQ(outcome.kind, RequestOutcome::Kind::kTrueMiss);
  EXPECT_EQ(outcome.response_delay, kFetchDelay);
  EXPECT_FALSE(outcome.served_from_cache);
  EXPECT_EQ(engine.stats().true_misses, 1u);
  EXPECT_TRUE(engine.store().contains(ndn::Name("/a")));
}

TEST(Engine, SecondRequestIsExposedHitUnderNoPrivacy) {
  CachePrivacyEngine engine(10, cache::EvictionPolicy::kLru,
                            std::make_unique<NoPrivacyPolicy>());
  (void)engine.handle(interest_for("/a"), 0, make_fetch());
  const RequestOutcome outcome = engine.handle(interest_for("/a"), 1, make_fetch());
  EXPECT_EQ(outcome.kind, RequestOutcome::Kind::kExposedHit);
  EXPECT_EQ(outcome.response_delay, 0);
  EXPECT_TRUE(outcome.served_from_cache);
  EXPECT_EQ(engine.stats().exposed_hits, 1u);
  EXPECT_DOUBLE_EQ(engine.stats().hit_rate(), 0.5);
}

TEST(Engine, FetchDelayRecordedInMeta) {
  CachePrivacyEngine engine(10, cache::EvictionPolicy::kLru,
                            std::make_unique<NoPrivacyPolicy>());
  (void)engine.handle(interest_for("/a"), 0, make_fetch());
  const cache::Entry* entry = engine.store().find_exact(ndn::Name("/a"));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->meta.fetch_delay, kFetchDelay);
  EXPECT_EQ(entry->meta.inserted_at, 0);
}

TEST(Engine, AlwaysDelayHidesPrivateHits) {
  CachePrivacyEngine engine(
      10, cache::EvictionPolicy::kLru,
      std::make_unique<AlwaysDelayPolicy>(AlwaysDelayPolicy::content_specific()));
  (void)engine.handle(interest_for("/a", true), 0, make_fetch());
  const RequestOutcome outcome = engine.handle(interest_for("/a", true), 1, make_fetch());
  EXPECT_EQ(outcome.kind, RequestOutcome::Kind::kDelayedHit);
  EXPECT_EQ(outcome.response_delay, kFetchDelay);  // gamma_C == original fetch delay
  EXPECT_TRUE(outcome.served_from_cache);          // bandwidth still saved
  EXPECT_EQ(engine.stats().delayed_hits, 1u);
  EXPECT_DOUBLE_EQ(engine.stats().hit_rate(), 0.0);           // hidden from the hit metric
  EXPECT_DOUBLE_EQ(engine.stats().cache_served_rate(), 0.5);  // but served from cache
}

TEST(Engine, AlwaysDelayedHitIndistinguishableFromMissByDelay) {
  // The adversary's view: response delay of a delayed hit equals the
  // original fetch delay it would observe on a miss.
  CachePrivacyEngine engine(
      10, cache::EvictionPolicy::kLru,
      std::make_unique<AlwaysDelayPolicy>(AlwaysDelayPolicy::content_specific()));
  const RequestOutcome miss = engine.handle(interest_for("/a", true), 0, make_fetch());
  const RequestOutcome hit = engine.handle(interest_for("/a", true), 1, make_fetch());
  EXPECT_EQ(miss.response_delay, hit.response_delay);
}

TEST(Engine, ConstantGammaPadsMiss) {
  CachePrivacyEngine engine(
      10, cache::EvictionPolicy::kLru,
      std::make_unique<AlwaysDelayPolicy>(AlwaysDelayPolicy::constant(util::millis(100))));
  const RequestOutcome miss = engine.handle(interest_for("/a", true), 0, make_fetch());
  EXPECT_EQ(miss.response_delay, util::millis(100));  // padded up from 30
  const RequestOutcome hit = engine.handle(interest_for("/a", true), 1, make_fetch());
  EXPECT_EQ(hit.response_delay, util::millis(100));
}

TEST(Engine, SimulatedMissLooksLikeOriginalFetch) {
  CachePrivacyEngine engine(10, cache::EvictionPolicy::kLru,
                            std::make_unique<NaiveThresholdPolicy>(1));
  (void)engine.handle(interest_for("/a", true), 0, make_fetch());
  const RequestOutcome outcome = engine.handle(interest_for("/a", true), 1, make_fetch());
  EXPECT_EQ(outcome.kind, RequestOutcome::Kind::kSimulatedMiss);
  EXPECT_EQ(outcome.response_delay, kFetchDelay);
  EXPECT_FALSE(outcome.served_from_cache);
  EXPECT_EQ(engine.stats().simulated_misses, 1u);
}

TEST(Engine, SimulatedMissRefreshesLru) {
  // "the corresponding cache entry becomes fresh even if the response is
  // delayed" — a simulated miss must still protect the entry from LRU
  // eviction.
  CachePrivacyEngine engine(2, cache::EvictionPolicy::kLru,
                            std::make_unique<NaiveThresholdPolicy>(10));
  (void)engine.handle(interest_for("/a", true), 0, make_fetch());
  (void)engine.handle(interest_for("/b"), 1, make_fetch());
  (void)engine.handle(interest_for("/a", true), 2, make_fetch());  // simulated miss, refresh
  (void)engine.handle(interest_for("/c"), 3, make_fetch());        // evicts /b, not /a
  EXPECT_TRUE(engine.store().contains(ndn::Name("/a")));
  EXPECT_FALSE(engine.store().contains(ndn::Name("/b")));
}

TEST(Engine, ProducerPrivateHonoredWithoutConsumerBit) {
  CachePrivacyEngine engine(
      10, cache::EvictionPolicy::kLru,
      std::make_unique<AlwaysDelayPolicy>(AlwaysDelayPolicy::content_specific()));
  (void)engine.handle(interest_for("/a"), 0, make_fetch(/*producer_private=*/true));
  const RequestOutcome outcome = engine.handle(interest_for("/a"), 1, make_fetch(true));
  EXPECT_EQ(outcome.kind, RequestOutcome::Kind::kDelayedHit);
}

TEST(Engine, TriggerRuleDeprivatizesThroughEngine) {
  CachePrivacyEngine engine(
      10, cache::EvictionPolicy::kLru,
      std::make_unique<AlwaysDelayPolicy>(AlwaysDelayPolicy::content_specific()));
  (void)engine.handle(interest_for("/a", true), 0, make_fetch());
  (void)engine.handle(interest_for("/a", false), 1, make_fetch());  // trigger
  const RequestOutcome outcome = engine.handle(interest_for("/a", true), 2, make_fetch());
  EXPECT_EQ(outcome.kind, RequestOutcome::Kind::kExposedHit);
}

TEST(Engine, RandomCacheEventuallyExposesHits) {
  CachePrivacyEngine engine(10, cache::EvictionPolicy::kLru,
                            RandomCachePolicy::uniform(5, /*seed=*/3));
  (void)engine.handle(interest_for("/a", true), 0, make_fetch());
  RequestOutcome outcome{};
  for (int i = 1; i <= 6; ++i) {
    outcome = engine.handle(interest_for("/a", true), i, make_fetch());
    if (outcome.kind == RequestOutcome::Kind::kExposedHit) break;
  }
  EXPECT_EQ(outcome.kind, RequestOutcome::Kind::kExposedHit);
  // Once open, the oracle stays open.
  EXPECT_EQ(engine.handle(interest_for("/a", true), 10, make_fetch()).kind,
            RequestOutcome::Kind::kExposedHit);
}

TEST(Engine, StatsAccumulateAcrossKinds) {
  CachePrivacyEngine engine(10, cache::EvictionPolicy::kLru,
                            std::make_unique<NaiveThresholdPolicy>(1));
  (void)engine.handle(interest_for("/a", true), 0, make_fetch());  // true miss
  (void)engine.handle(interest_for("/a", true), 1, make_fetch());  // simulated miss
  (void)engine.handle(interest_for("/a", true), 2, make_fetch());  // exposed hit
  (void)engine.handle(interest_for("/b"), 3, make_fetch());        // true miss
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.true_misses, 2u);
  EXPECT_EQ(stats.simulated_misses, 1u);
  EXPECT_EQ(stats.exposed_hits, 1u);
  EXPECT_EQ(stats.delayed_hits, 0u);
  engine.reset_stats();
  EXPECT_EQ(engine.stats().requests, 0u);
}

TEST(Engine, NullPolicyRejected) {
  EXPECT_THROW(CachePrivacyEngine(10, cache::EvictionPolicy::kLru, nullptr),
               std::invalid_argument);
}

TEST(Engine, OutcomeKindNames) {
  EXPECT_EQ(to_string(RequestOutcome::Kind::kTrueMiss), "TrueMiss");
  EXPECT_EQ(to_string(RequestOutcome::Kind::kExposedHit), "ExposedHit");
  EXPECT_EQ(to_string(RequestOutcome::Kind::kDelayedHit), "DelayedHit");
  EXPECT_EQ(to_string(RequestOutcome::Kind::kSimulatedMiss), "SimulatedMiss");
}

TEST(Engine, EvictionReachesCapacity) {
  CachePrivacyEngine engine(4, cache::EvictionPolicy::kLru,
                            std::make_unique<NoPrivacyPolicy>());
  for (int i = 0; i < 20; ++i)
    (void)engine.handle(interest_for("/obj/" + std::to_string(i)), i, make_fetch());
  EXPECT_EQ(engine.store().size(), 4u);
}

TEST(EngineStats, RatesOnEmptyStatsAreZero) {
  const EngineStats stats;
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.cache_served_rate(), 0.0);
}

}  // namespace
}  // namespace ndnp::core

namespace ndnp::core {
namespace {

TEST(EngineAdmission, ZeroProbabilityNeverCaches) {
  CachePrivacyEngine engine(10, cache::EvictionPolicy::kLru,
                            std::make_unique<NoPrivacyPolicy>(), /*seed=*/1,
                            /*cache_admission_probability=*/0.0);
  const auto fetch = [](const ndn::Interest& interest) {
    return std::pair{ndn::make_data(interest.name, "x", "p", "k"), util::millis(30)};
  };
  for (int i = 0; i < 5; ++i) {
    const RequestOutcome outcome = engine.handle(
        [] {
          ndn::Interest interest;
          interest.name = ndn::Name("/a");
          return interest;
        }(),
        i, fetch);
    EXPECT_EQ(outcome.kind, RequestOutcome::Kind::kTrueMiss);
  }
  EXPECT_EQ(engine.store().size(), 0u);
  EXPECT_EQ(engine.stats().true_misses, 5u);
}

TEST(EngineAdmission, PartialProbabilityCachesEventually) {
  CachePrivacyEngine engine(0, cache::EvictionPolicy::kLru,
                            std::make_unique<NoPrivacyPolicy>(), /*seed=*/2,
                            /*cache_admission_probability=*/0.5);
  const auto fetch = [](const ndn::Interest& interest) {
    return std::pair{ndn::make_data(interest.name, "x", "p", "k"), util::millis(30)};
  };
  for (int i = 0; i < 64; ++i) {
    ndn::Interest interest;
    interest.name = ndn::Name("/obj").append_number(static_cast<std::uint64_t>(i));
    (void)engine.handle(interest, i, fetch);
  }
  EXPECT_GT(engine.store().size(), 16u);
  EXPECT_LT(engine.store().size(), 48u);
}

TEST(EngineAdmission, MissResponseStillPaddedWhenNotAdmitted) {
  // Even content the router chooses not to cache must get the constant-
  // gamma padding: a fast un-padded miss would leak the admission decision.
  CachePrivacyEngine engine(
      10, cache::EvictionPolicy::kLru,
      std::make_unique<AlwaysDelayPolicy>(AlwaysDelayPolicy::constant(util::millis(100))),
      /*seed=*/3, /*cache_admission_probability=*/0.0);
  ndn::Interest interest;
  interest.name = ndn::Name("/a");
  interest.private_req = true;
  const auto fetch = [](const ndn::Interest& i) {
    return std::pair{ndn::make_data(i.name, "x", "p", "k"), util::millis(30)};
  };
  const RequestOutcome outcome = engine.handle(interest, 0, fetch);
  EXPECT_EQ(outcome.response_delay, util::millis(100));
}

TEST(EngineAdmission, RejectsOutOfRangeProbability) {
  EXPECT_THROW(CachePrivacyEngine(10, cache::EvictionPolicy::kLru,
                                  std::make_unique<NoPrivacyPolicy>(), 1, -0.1),
               std::invalid_argument);
  EXPECT_THROW(CachePrivacyEngine(10, cache::EvictionPolicy::kLru,
                                  std::make_unique<NoPrivacyPolicy>(), 1, 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace ndnp::core
