#include "core/k_distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ndnp::core {
namespace {

void expect_pmf_sums_to_one(const KDistribution& dist) {
  double acc = 0.0;
  for (std::int64_t k = 0; k < dist.domain_size(); ++k) acc += dist.pmf(k);
  EXPECT_NEAR(acc, 1.0, 1e-9) << dist.name();
}

void expect_samples_match_pmf(const KDistribution& dist, std::uint64_t seed) {
  util::Rng rng(seed);
  constexpr int kDraws = 100'000;
  std::vector<int> counts(static_cast<std::size_t>(dist.domain_size()), 0);
  for (int i = 0; i < kDraws; ++i) {
    const std::int64_t k = dist.sample(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, dist.domain_size());
    ++counts[static_cast<std::size_t>(k)];
  }
  for (std::int64_t k = 0; k < std::min<std::int64_t>(dist.domain_size(), 10); ++k) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(k)]) / kDraws,
                dist.pmf(k), 0.01)
        << dist.name() << " k=" << k;
  }
}

TEST(UniformK, PmfIsFlat) {
  const UniformK dist(8);
  expect_pmf_sums_to_one(dist);
  for (std::int64_t k = 0; k < 8; ++k) EXPECT_DOUBLE_EQ(dist.pmf(k), 0.125);
  EXPECT_EQ(dist.pmf(-1), 0.0);
  EXPECT_EQ(dist.pmf(8), 0.0);
}

TEST(UniformK, SamplesMatchPmf) { expect_samples_match_pmf(UniformK(10), 1); }

TEST(UniformK, MeanAndTail) {
  const UniformK dist(10);
  EXPECT_NEAR(dist.mean(), 4.5, 1e-12);
  EXPECT_NEAR(dist.tail(5), 0.5, 1e-12);
  EXPECT_NEAR(dist.tail(0), 1.0, 1e-12);
  EXPECT_NEAR(dist.tail(10), 0.0, 1e-12);
  EXPECT_NEAR(dist.tail(-3), 1.0, 1e-12);
}

TEST(UniformK, RejectsBadDomain) {
  EXPECT_THROW(UniformK(0), std::invalid_argument);
  EXPECT_THROW(UniformK(-5), std::invalid_argument);
}

TEST(TruncatedGeometricK, PmfMatchesFormula) {
  const double alpha = 0.7;
  const std::int64_t domain = 12;
  const TruncatedGeometricK dist(alpha, domain);
  expect_pmf_sums_to_one(dist);
  const double norm = 1.0 - std::pow(alpha, static_cast<double>(domain));
  for (std::int64_t k = 0; k < domain; ++k) {
    EXPECT_NEAR(dist.pmf(k), (1.0 - alpha) * std::pow(alpha, static_cast<double>(k)) / norm,
                1e-12);
  }
}

TEST(TruncatedGeometricK, PmfDecreasesExponentially) {
  const TruncatedGeometricK dist(0.5, 10);
  for (std::int64_t k = 0; k + 1 < 10; ++k)
    EXPECT_NEAR(dist.pmf(k + 1) / dist.pmf(k), 0.5, 1e-12);
}

TEST(TruncatedGeometricK, SamplesMatchPmf) {
  expect_samples_match_pmf(TruncatedGeometricK(0.8, 15), 2);
  expect_samples_match_pmf(TruncatedGeometricK(0.99, 6), 3);
}

TEST(TruncatedGeometricK, AlphaNearOneApproachesUniform) {
  const TruncatedGeometricK dist(0.9999, 10);
  for (std::int64_t k = 0; k < 10; ++k) EXPECT_NEAR(dist.pmf(k), 0.1, 1e-3);
}

TEST(TruncatedGeometricK, RejectsBadParameters) {
  EXPECT_THROW(TruncatedGeometricK(0.0, 10), std::invalid_argument);
  EXPECT_THROW(TruncatedGeometricK(1.0, 10), std::invalid_argument);
  EXPECT_THROW(TruncatedGeometricK(-0.3, 10), std::invalid_argument);
  EXPECT_THROW(TruncatedGeometricK(0.5, 0), std::invalid_argument);
}

TEST(DegenerateK, AlwaysSamplesK0) {
  const DegenerateK dist(4);
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 4);
  EXPECT_DOUBLE_EQ(dist.pmf(4), 1.0);
  EXPECT_DOUBLE_EQ(dist.pmf(3), 0.0);
  EXPECT_EQ(dist.domain_size(), 5);
  EXPECT_DOUBLE_EQ(dist.mean(), 4.0);
}

TEST(DegenerateK, RejectsNegative) { EXPECT_THROW(DegenerateK(-1), std::invalid_argument); }

TEST(KDistribution, CloneIsIndependentAndEquivalent) {
  const TruncatedGeometricK original(0.6, 9);
  const auto copy = original.clone();
  for (std::int64_t k = 0; k < 9; ++k) EXPECT_DOUBLE_EQ(copy->pmf(k), original.pmf(k));
  EXPECT_EQ(copy->domain_size(), original.domain_size());
  EXPECT_EQ(copy->name(), original.name());
}

TEST(KDistribution, NamesIdentifyParameters) {
  EXPECT_NE(UniformK(5).name().find("5"), std::string::npos);
  EXPECT_NE(TruncatedGeometricK(0.5, 7).name().find("7"), std::string::npos);
  EXPECT_NE(DegenerateK(3).name().find("3"), std::string::npos);
}

}  // namespace
}  // namespace ndnp::core
