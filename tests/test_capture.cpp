#include "sim/capture.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "sim/apps.hpp"
#include "sim/forwarder.hpp"

namespace ndnp::sim {
namespace {

TEST(PacketTap, RecordsBothDirections) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  LinkConfig link;
  link.latency = util::millis(1);
  link.tap = std::make_shared<PacketTap>();
  connect(consumer, producer, link);

  bool got = false;
  consumer.fetch(ndn::Name("/p/x"), [&got](const ndn::Data&, util::SimDuration) { got = true; });
  sched.run();
  ASSERT_TRUE(got);

  ASSERT_EQ(link.tap->size(), 2u);
  EXPECT_EQ(link.tap->count(PacketKind::kInterest), 1u);
  EXPECT_EQ(link.tap->count(PacketKind::kData), 1u);

  const CapturedPacket& interest = link.tap->packets()[0];
  EXPECT_EQ(interest.sender, "C");
  EXPECT_EQ(interest.receiver, "P");
  EXPECT_EQ(interest.name.to_uri(), "/p/x");
  EXPECT_EQ(interest.sent_at, 0);

  const CapturedPacket& data = link.tap->packets()[1];
  EXPECT_EQ(data.sender, "P");
  EXPECT_EQ(data.receiver, "C");
  EXPECT_GT(data.sent_at, util::millis(1) - 1);
}

TEST(PacketTap, WireBytesDecodeBackToPackets) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  LinkConfig link;
  link.latency = util::millis(1);
  link.tap = std::make_shared<PacketTap>();
  connect(consumer, producer, link);

  ndn::Interest probe;
  probe.name = ndn::Name("/p/doc");
  probe.must_be_fresh = true;
  consumer.express_interest(probe, [](const ndn::Data&, util::SimDuration) {});
  sched.run();

  const ndn::Interest decoded_interest =
      ndn::decode_interest(link.tap->packets()[0].wire);
  EXPECT_EQ(decoded_interest.name.to_uri(), "/p/doc");
  EXPECT_TRUE(decoded_interest.must_be_fresh);

  const ndn::Data decoded_data = ndn::decode_data(link.tap->packets()[1].wire);
  EXPECT_EQ(decoded_data.name.to_uri(), "/p/doc");
  EXPECT_EQ(decoded_data.producer, "P");
}

TEST(PacketTap, RecordsNacks) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Forwarder router(sched, "R", {});  // no routes: NACK
  LinkConfig link;
  link.latency = util::millis(1);
  link.tap = std::make_shared<PacketTap>();
  connect(consumer, router, link);
  consumer.fetch(ndn::Name("/nowhere"), [](const ndn::Data&, util::SimDuration) {});
  sched.run();
  EXPECT_EQ(link.tap->count(PacketKind::kNack), 1u);
  EXPECT_EQ(link.tap->packets().back().sender, "R");
}

TEST(PacketTap, SeesPacketsTheLinkLoses) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  LinkConfig link;
  link.latency = util::millis(1);
  link.loss_probability = 1.0;  // everything dropped in flight
  link.tap = std::make_shared<PacketTap>();
  connect(consumer, producer, link);
  consumer.fetch(ndn::Name("/p/x"), [](const ndn::Data&, util::SimDuration) {});
  sched.run();
  EXPECT_EQ(link.tap->count(PacketKind::kInterest), 1u);  // tap sits at the sender
  EXPECT_EQ(producer.interests_served(), 0u);
}

TEST(PacketTap, DumpFormat) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  LinkConfig link;
  link.latency = util::millis(1);
  link.tap = std::make_shared<PacketTap>();
  connect(consumer, producer, link);
  consumer.fetch(ndn::Name("/p/x"), [](const ndn::Data&, util::SimDuration) {});
  sched.run();

  std::ostringstream out;
  link.tap->dump(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("C > P INTEREST /p/x"), std::string::npos);
  EXPECT_NE(text.find("P > C DATA /p/x"), std::string::npos);

  link.tap->clear();
  EXPECT_EQ(link.tap->size(), 0u);
}

TEST(PacketTap, NoTapNoOverheadPathStillWorks) {
  // Links without taps behave exactly as before (smoke check).
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  LinkConfig link;
  link.latency = util::millis(1);
  connect(consumer, producer, link);
  bool got = false;
  consumer.fetch(ndn::Name("/p/x"), [&got](const ndn::Data&, util::SimDuration) { got = true; });
  sched.run();
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace ndnp::sim
