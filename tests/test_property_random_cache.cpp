// Property tests tying the running CachePrivacyEngine to the Section VI
// theory: the engine's observable behavior must match the exact output
// distributions and the closed-form utility for every scheme
// parameterization, and the hit/miss structure must obey Algorithm 1's
// invariants under arbitrary request interleavings.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "core/indistinguishability.hpp"
#include "core/policies.hpp"
#include "core/theory.hpp"

namespace ndnp::core {
namespace {

constexpr util::SimDuration kFetchDelay = util::millis(25);

CachePrivacyEngine::FetchFn private_fetch() {
  return [](const ndn::Interest& interest) {
    return std::pair{ndn::make_data(interest.name, "x", "p", "k", /*producer_private=*/true),
                     kFetchDelay};
  };
}

struct SchemeParams {
  double alpha;  // 0 = uniform
  std::int64_t domain;

  [[nodiscard]] std::unique_ptr<KDistribution> make() const {
    if (alpha == 0.0) return std::make_unique<UniformK>(domain);
    return std::make_unique<TruncatedGeometricK>(alpha, domain);
  }
  [[nodiscard]] std::string label() const {
    return (alpha == 0.0 ? "uniform" : "expo" + std::to_string(static_cast<int>(alpha * 100))) +
           "_K" + std::to_string(domain);
  }
};

class RandomCacheProperty : public ::testing::TestWithParam<SchemeParams> {};

TEST_P(RandomCacheProperty, EngineOutputDistributionMatchesExact) {
  const auto dist = GetParam().make();
  constexpr std::int64_t kProbes = 24;
  constexpr std::size_t kRounds = 30'000;

  for (const std::int64_t x : {0LL, 1LL, 3LL}) {
    const DiscreteDist exact = exact_output_distribution(*dist, x, kProbes);
    DiscreteDist empirical(static_cast<std::size_t>(kProbes) + 1, 0.0);
    util::Rng rng(1234 + static_cast<std::uint64_t>(x));
    const auto fetch = private_fetch();
    for (std::size_t round = 0; round < kRounds; ++round) {
      CachePrivacyEngine engine(
          0, cache::EvictionPolicy::kLru,
          std::make_unique<RandomCachePolicy>(dist->clone(), rng.next_u64()));
      ndn::Interest interest;
      interest.name = ndn::Name("/c").append_number(round);
      interest.private_req = true;
      util::SimTime now = 0;
      for (std::int64_t i = 0; i < x; ++i) {
        (void)engine.handle(interest, now, fetch);
        now += 1000;
      }
      std::size_t miss_run = 0;
      bool in_prefix = true;
      for (std::int64_t i = 0; i < kProbes; ++i) {
        const RequestOutcome outcome = engine.handle(interest, now, fetch);
        now += 1000;
        if (outcome.response_delay > 0 && in_prefix)
          ++miss_run;
        else
          in_prefix = false;
      }
      empirical[miss_run] += 1.0;
    }
    for (double& p : empirical) p /= static_cast<double>(kRounds);
    EXPECT_LT(total_variation(exact, empirical), 0.015)
        << GetParam().label() << " x=" << x;
  }
}

TEST_P(RandomCacheProperty, EngineUtilityMatchesClosedForm) {
  const auto dist = GetParam().make();
  constexpr std::int64_t kRequests = 40;
  constexpr std::size_t kRounds = 20'000;

  util::Rng rng(777);
  const auto fetch = private_fetch();
  std::uint64_t exposed = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    CachePrivacyEngine engine(
        0, cache::EvictionPolicy::kLru,
        std::make_unique<RandomCachePolicy>(dist->clone(), rng.next_u64()));
    ndn::Interest interest;
    interest.name = ndn::Name("/c").append_number(round);
    interest.private_req = true;
    util::SimTime now = 0;
    (void)engine.handle(interest, now, fetch);  // insertion
    for (std::int64_t i = 0; i < kRequests; ++i) {
      now += 1000;
      if (engine.handle(interest, now, fetch).kind == RequestOutcome::Kind::kExposedHit)
        ++exposed;
    }
  }
  const double measured_utility =
      static_cast<double>(exposed) / static_cast<double>(kRounds * kRequests);
  EXPECT_NEAR(measured_utility, utility(kRequests, *dist), 0.01) << GetParam().label();
}

TEST_P(RandomCacheProperty, MissRunIsAlwaysAPrefix) {
  // Algorithm 1 invariant: for a private-only request stream, once a hit
  // is exposed there is never a later simulated miss.
  const auto dist = GetParam().make();
  util::Rng rng(31);
  const auto fetch = private_fetch();
  for (int round = 0; round < 500; ++round) {
    CachePrivacyEngine engine(
        0, cache::EvictionPolicy::kLru,
        std::make_unique<RandomCachePolicy>(dist->clone(), rng.next_u64()));
    ndn::Interest interest;
    interest.name = ndn::Name("/c").append_number(static_cast<std::uint64_t>(round));
    interest.private_req = true;
    bool seen_hit = false;
    util::SimTime now = 0;
    for (int i = 0; i < 50; ++i) {
      const RequestOutcome outcome = engine.handle(interest, now, fetch);
      now += 1000;
      if (outcome.kind == RequestOutcome::Kind::kExposedHit) seen_hit = true;
      if (seen_hit) {
        EXPECT_EQ(outcome.kind, RequestOutcome::Kind::kExposedHit)
            << GetParam().label() << " round " << round << " i " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, RandomCacheProperty,
                         ::testing::Values(SchemeParams{0.0, 8}, SchemeParams{0.0, 64},
                                           SchemeParams{0.5, 16}, SchemeParams{0.9, 32},
                                           SchemeParams{0.99, 64}),
                         [](const auto& info) { return info.param.label(); });

// ---------------------------------------------------------------------------
// Trigger-rule property under random interleavings: model-check the engine
// against a tiny reference state machine.

class TriggerRuleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriggerRuleProperty, MatchesReferenceModel) {
  util::Rng rng(GetParam());
  const CachePrivacyEngine::FetchFn fetch = [](const ndn::Interest& interest) {
    // Producer-unmarked content: the trigger rule is in play.
    return std::pair{ndn::make_data(interest.name, "x", "p", "k"), kFetchDelay};
  };

  for (int round = 0; round < 200; ++round) {
    CachePrivacyEngine engine(
        0, cache::EvictionPolicy::kLru,
        std::make_unique<AlwaysDelayPolicy>(AlwaysDelayPolicy::content_specific()));
    ndn::Interest interest;
    interest.name = ndn::Name("/c").append_number(static_cast<std::uint64_t>(round));

    bool cached = false;        // reference model state
    bool deprivatized = false;  // trigger fired
    util::SimTime now = 0;
    for (int i = 0; i < 30; ++i) {
      interest.private_req = rng.bernoulli(0.5);
      const RequestOutcome outcome = engine.handle(interest, now, fetch);
      now += 1000;

      if (!cached) {
        EXPECT_EQ(outcome.kind, RequestOutcome::Kind::kTrueMiss);
        cached = true;
        if (!interest.private_req) deprivatized = true;
        continue;
      }
      if (!interest.private_req) deprivatized = true;
      const bool expect_private = interest.private_req && !deprivatized;
      EXPECT_EQ(outcome.kind, expect_private ? RequestOutcome::Kind::kDelayedHit
                                             : RequestOutcome::Kind::kExposedHit)
          << "round " << round << " step " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriggerRuleProperty, ::testing::Values(1, 2, 3),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ndnp::core
