#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "core/policies.hpp"
#include "trace/replayer.hpp"
#include "trace/stream.hpp"

namespace ndnp::trace {
namespace {

TraceGenConfig small_config() {
  TraceGenConfig config;
  config.num_users = 20;
  config.num_objects = 1'000;
  config.num_requests = 20'000;
  config.num_domains = 30;
  config.seed = 42;
  return config;
}

TEST(TraceGen, ProducesRequestedCount) {
  const Trace trace = generate_trace(small_config());
  EXPECT_EQ(trace.size(), 20'000u);
  EXPECT_EQ(trace.catalogue_size, 1'000u);
}

TEST(TraceGen, DeterministicForSameSeed) {
  const Trace a = generate_trace(small_config());
  const Trace b = generate_trace(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.records[i].name, b.records[i].name);
    EXPECT_EQ(a.records[i].user_id, b.records[i].user_id);
    EXPECT_DOUBLE_EQ(a.records[i].timestamp_s, b.records[i].timestamp_s);
  }
}

TEST(TraceGen, DifferentSeedsDiffer) {
  TraceGenConfig config = small_config();
  const Trace a = generate_trace(config);
  config.seed = 43;
  const Trace b = generate_trace(config);
  int same = 0;
  for (std::size_t i = 0; i < 100; ++i)
    if (a.records[i].name == b.records[i].name) ++same;
  EXPECT_LT(same, 60);  // popular objects will coincide sometimes
}

TEST(TraceGen, TimestampsSortedWithinDuration) {
  const Trace trace = generate_trace(small_config());
  double prev = 0.0;
  for (const TraceRecord& record : trace.records) {
    EXPECT_GE(record.timestamp_s, prev);
    EXPECT_LE(record.timestamp_s, 86'400.0);
    prev = record.timestamp_s;
  }
}

TEST(TraceGen, UserIdsWithinRange) {
  const Trace trace = generate_trace(small_config());
  for (const TraceRecord& record : trace.records) EXPECT_LT(record.user_id, 20u);
}

TEST(TraceGen, PopularityIsZipfSkewed) {
  const Trace trace = generate_trace(small_config());
  std::map<ndn::Name, std::size_t> counts;
  for (const TraceRecord& record : trace.records) ++counts[record.name];
  std::vector<std::size_t> sorted;
  sorted.reserve(counts.size());
  for (const auto& [name, count] : counts) sorted.push_back(count);
  std::sort(sorted.rbegin(), sorted.rend());
  // Top-10 objects should take a disproportionate share (Zipf 0.8 over
  // 1000 objects: ~10 % of all requests).
  std::size_t top10 = 0;
  for (std::size_t i = 0; i < 10 && i < sorted.size(); ++i) top10 += sorted[i];
  EXPECT_GT(static_cast<double>(top10) / static_cast<double>(trace.size()), 0.05);
  // And far more than a uniform share (10/1000 = 1 %).
  EXPECT_GT(top10 * 100, trace.size() / 10);
}

TEST(TraceGen, NamesFollowDomainObjectScheme) {
  const Trace trace = generate_trace(small_config());
  for (std::size_t i = 0; i < 50; ++i) {
    const ndn::Name& name = trace.records[i].name;
    ASSERT_EQ(name.size(), 3u);
    EXPECT_EQ(name.at(0), "web");
    EXPECT_EQ(name.at(1).substr(0, 3), "dom");
    EXPECT_EQ(name.at(2).substr(0, 3), "obj");
  }
}

TEST(TraceGen, SameObjectAlwaysSameDomain) {
  const Trace trace = generate_trace(small_config());
  std::map<std::string, std::string> object_domain;
  for (const TraceRecord& record : trace.records) {
    const std::string obj = record.name.at(2);
    const std::string dom = record.name.at(1);
    const auto [it, inserted] = object_domain.emplace(obj, dom);
    EXPECT_EQ(it->second, dom) << "object moved domains";
  }
}

TEST(TraceGen, DistinctNamesBoundedByCatalogue) {
  const Trace trace = generate_trace(small_config());
  EXPECT_LE(trace.distinct_names(), 1'000u);
  EXPECT_GT(trace.distinct_names(), 300u);  // most of the catalogue gets touched
}

TEST(TraceGen, RejectsBadConfig) {
  TraceGenConfig config = small_config();
  config.num_users = 0;
  EXPECT_THROW((void)generate_trace(config), std::invalid_argument);
}

TEST(TraceIo, WriteParseRoundTrip) {
  TraceGenConfig config = small_config();
  config.num_requests = 500;
  const Trace original = generate_trace(config);
  std::stringstream buffer;
  write_trace(original, buffer);
  const Trace parsed = parse_trace(buffer);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.records[i].name, original.records[i].name);
    EXPECT_EQ(parsed.records[i].user_id, original.records[i].user_id);
    EXPECT_EQ(parsed.records[i].size_bytes, original.records[i].size_bytes);
    EXPECT_NEAR(parsed.records[i].timestamp_s, original.records[i].timestamp_s, 1e-4);
  }
}

TEST(TraceIo, ParserSkipsCommentsAndBlankLines) {
  std::stringstream input("# proxy trace\n\n1.5 3 /web/dom1/obj2 8192\n");
  const Trace trace = parse_trace(input);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.records[0].user_id, 3u);
  EXPECT_EQ(trace.records[0].name.to_uri(), "/web/dom1/obj2");
}

TEST(TraceIo, ParserRejectsMalformedLines) {
  std::stringstream input("1.5 3 /web/x\n");  // missing size field
  EXPECT_THROW((void)parse_trace(input), TraceParseError);
  // A non-URI name is a malformed line too (counted, not a distinct error
  // type): real proxy logs mix both corruption kinds and the threshold in
  // ParseOptions should govern either uniformly.
  std::stringstream bad_uri("1.5 3 no-slash 100\n");
  EXPECT_THROW((void)parse_trace(bad_uri), TraceParseError);
}

TEST(TraceIo, ParserToleratesMalformedLinesUpToThreshold) {
  const std::string corpus =
      "0.5 1 /web/dom0/obj0 100\n"
      "garbage\n"
      "1.5 2 /web/dom0/obj1 100\n"
      "2.5 x /web/dom0/obj2 100\n"
      "3.5 3 /web/dom0/obj3 100\n";
  std::stringstream ok(corpus);
  ParseStats stats;
  const Trace trace = parse_trace(ok, /*max_malformed=*/2, &stats);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.malformed, 2u);
  EXPECT_EQ(stats.lines, 5u);

  std::stringstream too_many(corpus);
  EXPECT_THROW((void)parse_trace(too_many, /*max_malformed=*/1, nullptr),
               TraceParseError);
}

}  // namespace
}  // namespace ndnp::trace

namespace ndnp::trace {
namespace {

TEST(TraceGenLocality, TemporalLocalityRaisesRepeatRate) {
  TraceGenConfig base = small_config();
  base.num_requests = 30'000;
  const Trace plain = generate_trace(base);

  TraceGenConfig local = base;
  local.temporal_locality = 0.5;
  const Trace sticky = generate_trace(local);

  // Repeat rate: fraction of requests whose name appeared in the same
  // user's previous 32 requests.
  const auto repeat_rate = [](const Trace& trace) {
    std::map<std::uint32_t, std::vector<std::uint64_t>> recent;
    std::size_t repeats = 0;
    for (const TraceRecord& record : trace.records) {
      auto& window = recent[record.user_id];
      const std::uint64_t h = record.name.hash64();
      if (std::find(window.begin(), window.end(), h) != window.end()) ++repeats;
      window.push_back(h);
      if (window.size() > 32) window.erase(window.begin());
    }
    return static_cast<double>(repeats) / static_cast<double>(trace.size());
  };

  EXPECT_GT(repeat_rate(sticky), repeat_rate(plain) + 0.2);
}

TEST(TraceGenLocality, AffinityConcentratesUsersOnDomains) {
  TraceGenConfig base = small_config();
  base.num_requests = 30'000;
  base.user_affinity = 0.8;
  const Trace trace = generate_trace(base);

  // Top-domain share per user should be much higher than without affinity.
  const auto top_domain_share = [](const Trace& trace_in) {
    std::map<std::uint32_t, std::map<std::string, std::size_t>> counts;
    for (const TraceRecord& record : trace_in.records)
      ++counts[record.user_id][record.name.at(1)];
    double share_sum = 0.0;
    std::size_t users = 0;
    for (const auto& [user, domains] : counts) {
      std::size_t total = 0;
      std::size_t top = 0;
      for (const auto& [domain, count] : domains) {
        total += count;
        top = std::max(top, count);
      }
      if (total < 50) continue;  // skip low-activity users (noisy shares)
      share_sum += static_cast<double>(top) / static_cast<double>(total);
      ++users;
    }
    return users ? share_sum / static_cast<double>(users) : 0.0;
  };

  TraceGenConfig plain_cfg = small_config();
  plain_cfg.num_requests = 30'000;
  const Trace plain = generate_trace(plain_cfg);
  EXPECT_GT(top_domain_share(trace), top_domain_share(plain) + 0.3);
}

TEST(TraceGenLocality, DefaultsPreserveLegacyOutput) {
  // The locality knobs default to off; byte-identical output with the old
  // generator keeps every bench reproducible.
  TraceGenConfig config = small_config();
  const Trace a = generate_trace(config);
  config.temporal_locality = 0.0;
  config.user_affinity = 0.0;
  const Trace b = generate_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) EXPECT_EQ(a.records[i].name, b.records[i].name);
}

TEST(TraceGenLocality, RejectsBadKnobs) {
  TraceGenConfig config = small_config();
  config.temporal_locality = 1.5;
  EXPECT_THROW((void)generate_trace(config), std::invalid_argument);
  config.temporal_locality = 0.5;
  config.locality_depth = 0;
  EXPECT_THROW((void)generate_trace(config), std::invalid_argument);
  config.locality_depth = 8;
  config.user_affinity = -0.1;
  EXPECT_THROW((void)generate_trace(config), std::invalid_argument);
}

TEST(TraceGenLocality, LocalityRaisesSmallCacheHitRates) {
  // Sanity link to the replayer: temporal locality should help a small
  // LRU cache disproportionately.
  TraceGenConfig config = small_config();
  config.num_requests = 20'000;
  const Trace plain = generate_trace(config);
  config.temporal_locality = 0.5;
  const Trace sticky = generate_trace(config);

  ReplayConfig replay_config;
  replay_config.cache_capacity = 100;
  replay_config.private_fraction = 0.0;
  replay_config.policy_factory = [] { return std::make_unique<core::NoPrivacyPolicy>(); };
  replay_config.seed = 3;
  EXPECT_GT(replay(sticky, replay_config).hit_rate_pct(),
            replay(plain, replay_config).hit_rate_pct() + 5.0);
}

}  // namespace
}  // namespace ndnp::trace
