#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace ndnp::crypto {
namespace {

std::string hex(const Sha256Digest& digest) { return to_hex(digest); }

// FIPS 180-4 / NIST CAVP test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactlyOneBlock) {
  // 64 bytes: padding spills into a second block.
  const std::string msg(64, 'a');
  EXPECT_EQ(hex(Sha256::hash(msg)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes: length fits in the same block as the terminator; 56: it
  // does not. Both straddle the padding boundary logic.
  EXPECT_EQ(hex(Sha256::hash(std::string(55, 'a'))),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(hex(Sha256::hash(std::string(56, 'a'))),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), Sha256::hash(msg)) << "split at " << split;
  }
}

TEST(Sha256, DigestPrefixHex) {
  const Sha256Digest d = Sha256::hash("abc");
  EXPECT_EQ(digest_prefix_hex(d, 8), "ba7816bf");
  EXPECT_EQ(digest_prefix_hex(d, 64), hex(d));
  EXPECT_THROW((void)digest_prefix_hex(d, 65), std::invalid_argument);
}

TEST(ToHex, Basic) {
  const std::vector<std::uint8_t> bytes{0x00, 0x0f, 0xa5, 0xff};
  EXPECT_EQ(to_hex(bytes), "000fa5ff");
}

// RFC 4231 HMAC-SHA-256 test cases.
TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>("Hi There"), 8))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  // Key longer than the block size must be hashed first.
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  EXPECT_EQ(to_hex(hmac_sha256(key, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(data.data()),
                                        data.size()))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, DifferentKeysDifferentMacs) {
  EXPECT_NE(hmac_sha256("key1", "message"), hmac_sha256("key2", "message"));
}

TEST(Prf, Deterministic) {
  const Prf a("shared-secret");
  const Prf b("shared-secret");
  EXPECT_EQ(a.derive("audio", 7), b.derive("audio", 7));
  EXPECT_EQ(a.derive_token("audio", 7), b.derive_token("audio", 7));
}

TEST(Prf, LabelAndCounterSeparate) {
  const Prf prf("secret");
  EXPECT_NE(prf.derive("audio", 1), prf.derive("audio", 2));
  EXPECT_NE(prf.derive("audio", 1), prf.derive("video", 1));
}

TEST(Prf, DomainSeparatorPreventsLabelCounterAmbiguity) {
  const Prf prf("secret");
  // "ab" + counter 0x63... vs "abc" + shifted counter must not collide:
  // the 0x00 separator guarantees injective encoding.
  EXPECT_NE(prf.derive("ab", 0x6300000000000000ULL), prf.derive("abc", 0));
}

TEST(Prf, TokenLengthControlsOutput) {
  const Prf prf("secret");
  EXPECT_EQ(prf.derive_token("l", 0, 16).size(), 16u);
  EXPECT_EQ(prf.derive_token("l", 0, 64).size(), 64u);
}

TEST(Prf, DifferentSecretsDiverge) {
  const Prf a("secret-a");
  const Prf b("secret-b");
  EXPECT_NE(a.derive_token("l", 0), b.derive_token("l", 0));
}

TEST(ContentSignature, SignAndVerify) {
  const auto sig = sign_content("producer-key", "/alice/photo/1", "payload-bytes");
  EXPECT_TRUE(verify_content("producer-key", "/alice/photo/1", "payload-bytes", sig));
}

TEST(ContentSignature, RejectsTamperedPayload) {
  const auto sig = sign_content("producer-key", "/alice/photo/1", "payload-bytes");
  EXPECT_FALSE(verify_content("producer-key", "/alice/photo/1", "tampered", sig));
}

TEST(ContentSignature, RejectsWrongKey) {
  const auto sig = sign_content("producer-key", "/alice/photo/1", "payload");
  EXPECT_FALSE(verify_content("other-key", "/alice/photo/1", "payload", sig));
}

TEST(ContentSignature, NameLengthPrefixPreventsSplicing) {
  // (name="/a", payload="b/c") must not collide with (name="/a/b", "/c").
  EXPECT_NE(sign_content("k", "/a", "b/c"), sign_content("k", "/a/b", "/c"));
}

}  // namespace
}  // namespace ndnp::crypto
