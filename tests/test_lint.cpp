// ndnp_lint self-tests: lexer edge cases, rule positives/negatives,
// suppression mechanics, baseline round-trip, canonical JSON, and the two
// integration layers — the on-disk corpus (tests/lint_corpus/) run through
// the real pipeline, and the repository-wide clean check that replaces the
// old grep-based determinism guard.
#include "lint/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace ndnp::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// All rules, no directory scoping: every rule applies to every path.
LintConfig unscoped_config() {
  LintConfig config;
  config.rules = make_default_rules();
  return config;
}

LintReport lint_one(const std::string& path, std::string_view content,
                    std::string_view companion = {}) {
  LintReport report;
  lint_source(path, content, unscoped_config(), report, companion);
  return report;
}

std::vector<std::string> rules_of(const LintReport& report) {
  std::vector<std::string> rules;
  rules.reserve(report.findings.size());
  for (const Finding& finding : report.findings) rules.push_back(finding.rule);
  std::sort(rules.begin(), rules.end());
  return rules;
}

std::string hex16(std::uint64_t hash) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lexer

TEST(LintLexer, LineCommentsLeaveCodeView) {
  const LexedFile file = lex("int a = 1; // new Widget()\n");
  ASSERT_EQ(file.lines.size(), 2u);  // trailing newline opens an empty line
  EXPECT_EQ(file.lines[0].code.find("new"), std::string::npos);
  EXPECT_NE(file.lines[0].comment.find("new Widget()"), std::string::npos);
  EXPECT_NE(file.lines[0].code.find("int a = 1;"), std::string::npos);
}

TEST(LintLexer, BlockCommentSpansLines) {
  const LexedFile file = lex("int a; /* std::rand()\n   more rand */ int b;");
  ASSERT_EQ(file.lines.size(), 2u);
  EXPECT_EQ(file.lines[0].code.find("rand"), std::string::npos);
  EXPECT_EQ(file.lines[1].code.find("rand"), std::string::npos);
  EXPECT_NE(file.lines[1].code.find("int b;"), std::string::npos);
  EXPECT_NE(file.lines[0].comment.find("std::rand()"), std::string::npos);
}

TEST(LintLexer, StringAndCharContentsBlanked) {
  const LexedFile file = lex("auto s = \"delete p;\"; char c = 'x';");
  ASSERT_EQ(file.lines.size(), 1u);
  EXPECT_EQ(file.lines[0].code.find("delete"), std::string::npos);
  // Delimiters survive so token adjacency is preserved.
  EXPECT_NE(file.lines[0].code.find('"'), std::string::npos);
}

TEST(LintLexer, RawStringMatchedByDelimiter) {
  const LexedFile file =
      lex("auto s = R\"lint(new int[3]\nstd::random_device)lint\"; int after = 1;");
  ASSERT_EQ(file.lines.size(), 2u);
  EXPECT_EQ(file.lines[0].code.find("new"), std::string::npos);
  EXPECT_EQ(file.lines[1].code.find("random_device"), std::string::npos);
  EXPECT_NE(file.lines[1].code.find("int after = 1;"), std::string::npos);
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral) {
  // If 10'000 opened a character literal, the rest of the line — including
  // the comment marker — would be swallowed as literal content.
  const LexedFile file = lex("int x = 10'000; int y = 2; // tail\n");
  EXPECT_NE(file.lines[0].code.find("int y = 2;"), std::string::npos);
  EXPECT_NE(file.lines[0].comment.find("tail"), std::string::npos);
}

TEST(LintLexer, PreprocessorContinuationFlagged) {
  const LexedFile file = lex("#define FOO(x) \\\n  ((x) + 1)\nint a;\n");
  ASSERT_GE(file.lines.size(), 3u);
  EXPECT_TRUE(file.lines[0].preprocessor);
  EXPECT_TRUE(file.lines[1].preprocessor);
  EXPECT_FALSE(file.lines[2].preprocessor);
}

TEST(LintLexer, UnterminatedStringRecoversAtEndOfLine) {
  const LexedFile file = lex("auto s = \"oops\nint next = 1;\n");
  ASSERT_GE(file.lines.size(), 2u);
  EXPECT_NE(file.lines[1].code.find("int next = 1;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Path scoping

TEST(LintPaths, PrefixMatchesWholeComponents) {
  EXPECT_TRUE(path_has_prefix("src/sim/node.cpp", "src/sim"));
  EXPECT_TRUE(path_has_prefix("src/sim", "src/sim"));
  EXPECT_FALSE(path_has_prefix("src/simx/node.cpp", "src/sim"));
  EXPECT_FALSE(path_has_prefix("src", "src/sim"));
}

// ---------------------------------------------------------------------------
// Rules (unit level; the corpus covers the full matrix on disk)

TEST(LintRules, CompanionHeaderDeclarationsAreTracked) {
  const std::string header = "#pragma once\n#include <unordered_map>\n"
                             "struct S { std::unordered_map<int, int> m_; void f(); };\n";
  const std::string source = "#include \"s.hpp\"\nvoid S::f() {\n  for (auto& kv : m_) { (void)kv; }\n}\n";
  const LintReport with = lint_one("src/sim/s.cpp", source, header);
  EXPECT_EQ(rules_of(with), std::vector<std::string>{"determinism-unordered-iteration"});
  // Without the companion the declaration is invisible and the range-for
  // target is an unknown name — no finding.
  const LintReport without = lint_one("src/sim/s.cpp", source);
  EXPECT_TRUE(without.findings.empty()) << without.to_text();
}

TEST(LintRules, OrderedIterationAndTernaryColonAreNotRangeFor) {
  const std::string source =
      "#include <map>\nint f(bool flag, int a, int b) {\n"
      "  std::map<int, int> m{{1, 2}};\n"
      "  int sum = flag ? a : b;\n"
      "  for (const auto& kv : m) sum += kv.second;\n"
      "  return sum;\n}\n";
  const LintReport report = lint_one("src/sim/ordered.cpp", source);
  EXPECT_TRUE(report.findings.empty()) << report.to_text();
}

TEST(LintRules, WildcardAllowSuppressesAnyRule) {
  const std::string source =
      "#include <cstdlib>\n"
      "// NDNP-LINT-ALLOW(*): test fixture needs raw entropy\n"
      "int a = std::rand();\n";
  const LintReport report = lint_one("src/sim/wild.cpp", source);
  EXPECT_TRUE(report.findings.empty()) << report.to_text();
  EXPECT_EQ(report.suppressed, 1u);
}

TEST(LintRules, DirectoryBindingScopesRule) {
  LintConfig config = unscoped_config();
  config.bindings.push_back({"determinism-rand", {"src/sim"}, {}});
  const std::string source = "#include <cstdlib>\nint a = std::rand();\n";
  LintReport inside;
  lint_source("src/sim/a.cpp", source, config, inside);
  EXPECT_EQ(inside.findings.size(), 1u);
  LintReport outside;
  lint_source("tools/a.cpp", source, config, outside);
  EXPECT_TRUE(outside.findings.empty());
}

// ---------------------------------------------------------------------------
// Baseline

Finding make_finding(const std::string& rule, const std::string& file, std::size_t line,
                     const std::string& excerpt) {
  Finding finding;
  finding.rule = rule;
  finding.file = file;
  finding.line = line;
  finding.message = "msg";
  finding.excerpt = excerpt;
  return finding;
}

TEST(LintBaseline, SerializeParseRoundTrip) {
  const std::vector<Finding> findings = {
      make_finding("determinism-rand", "src/sim/a.cpp", 3, "std::rand()"),
      make_finding("alloc-naked-new", "src/core/b.cpp", 9, "new X"),
      make_finding("alloc-naked-new", "src/core/b.cpp", 12, "new X"),  // duplicate key
  };
  const Baseline baseline = Baseline::from_findings(findings);
  EXPECT_EQ(baseline.size(), 3u);
  const std::string text = baseline.serialize();
  const Baseline reparsed = Baseline::parse(text);
  EXPECT_EQ(reparsed.size(), 3u);
  EXPECT_EQ(reparsed.serialize(), text);
}

TEST(LintBaseline, HashIgnoresLineNumbersAndWhitespace) {
  const Finding a = make_finding("r", "f.cpp", 10, "new   X");
  const Finding b = make_finding("r", "f.cpp", 900, " new X ");
  EXPECT_EQ(finding_hash(a), finding_hash(b));
  const Finding c = make_finding("r", "f.cpp", 10, "new Y");
  EXPECT_NE(finding_hash(a), finding_hash(c));
}

TEST(LintBaseline, ConsumeIsAMultisetAndLeftoversAreStale) {
  const Finding finding = make_finding("r", "f.cpp", 1, "new X");
  Baseline baseline = Baseline::from_findings({finding, finding});
  EXPECT_TRUE(baseline.consume(finding));
  EXPECT_TRUE(baseline.consume(finding));
  EXPECT_FALSE(baseline.consume(finding));
  EXPECT_TRUE(baseline.remaining().empty());

  Baseline stale = Baseline::from_findings({finding});
  ASSERT_EQ(stale.remaining().size(), 1u);
  EXPECT_EQ(stale.remaining()[0].rule, "r");
}

TEST(LintBaseline, ApplyMovesMatchesAndReportsStale) {
  LintReport report;
  report.findings = {make_finding("r", "f.cpp", 1, "new X"),
                     make_finding("r", "f.cpp", 2, "new Z")};
  const Baseline baseline = Baseline::from_findings(
      {make_finding("r", "f.cpp", 99, "new X"),  // matches (line-independent)
       make_finding("r", "f.cpp", 99, "gone")});  // stale
  apply_baseline(report, baseline);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].excerpt, "new Z");
  ASSERT_EQ(report.baselined.size(), 1u);
  ASSERT_EQ(report.stale_baseline.size(), 1u);
  EXPECT_FALSE(report.clean());
}

TEST(LintBaseline, MalformedLineThrows) {
  EXPECT_THROW((void)Baseline::parse("not a baseline line\n"), std::runtime_error);
  EXPECT_THROW((void)Baseline::parse("rule zzzz file\n"), std::runtime_error);  // bad hash
  EXPECT_NO_THROW((void)Baseline::parse("# comment only\n\n"));
}

// ---------------------------------------------------------------------------
// Canonical JSON

TEST(LintReportFormat, JsonIsCanonical) {
  LintReport report;
  report.files_scanned = 2;
  report.suppressed = 1;
  Finding finding = make_finding("determinism-rand", "src/sim/a.cpp", 3, "std::rand() \"q\"");
  report.findings = {finding};
  report.stale_baseline = {{"alloc-naked-new", "src/core/b.cpp", 0x1234abcd5678ef90ull}};

  const std::string expected =
      "{\"baselined\":0,\"files_scanned\":2,\"findings\":[{\"excerpt\":\"std::rand() "
      "\\\"q\\\"\",\"file\":\"src/sim/a.cpp\",\"hash\":\"" +
      hex16(finding_hash(finding)) +
      "\",\"line\":3,\"message\":\"msg\",\"rule\":\"determinism-rand\"}],\"stale_baseline\":[{"
      "\"file\":\"src/core/b.cpp\",\"hash\":\"1234abcd5678ef90\",\"rule\":\"alloc-naked-new\"}],"
      "\"suppressed\":1}";
  EXPECT_EQ(report.to_json(), expected);

  // Findings are sorted on output, so construction order cannot leak.
  LintReport shuffled = report;
  shuffled.findings = {make_finding("z-rule", "z.cpp", 1, "z"), finding};
  LintReport ordered = report;
  ordered.findings = {finding, make_finding("z-rule", "z.cpp", 1, "z")};
  EXPECT_EQ(shuffled.to_json(), ordered.to_json());
}

// ---------------------------------------------------------------------------
// The on-disk corpus through the real pipeline

using Expected = std::tuple<std::string, std::string, std::size_t>;  // rule, file, line

TEST(LintCorpus, ProducesExactlyTheExpectedFindings) {
  const LintConfig config = LintConfig::repo_default();
  const LintReport report =
      lint_paths(std::string(NDNP_SOURCE_ROOT) + "/tests/lint_corpus", {"src"}, config);

  const std::set<Expected> expected = {
      {"macro-side-effect", "src/core/macro_side_effects.cpp", 11},
      {"macro-side-effect", "src/core/macro_side_effects.cpp", 12},
      {"header-pragma-once", "src/core/missing_pragma.hpp", 1},
      {"header-using-namespace", "src/core/missing_pragma.hpp", 7},
      {"alloc-naked-new", "src/core/naked_new.cpp", 17},
      {"alloc-naked-new", "src/core/naked_new.cpp", 21},
      {"alloc-naked-new", "src/core/naked_new.cpp", 25},
      {"determinism-unordered-iteration", "src/sim/iterates_unordered.cpp", 11},
      {"determinism-unordered-iteration", "src/sim/iterates_unordered.cpp", 20},
      {"allow-missing-reason", "src/sim/suppressed_ok.cpp", 16},
      {"determinism-rand", "src/sim/suppressed_ok.cpp", 16},
      {"determinism-rand", "src/sim/uses_rand.cpp", 8},
      {"determinism-rand", "src/sim/uses_rand.cpp", 9},
      {"determinism-rand", "src/sim/uses_rand.cpp", 11},
      {"determinism-wallclock", "src/sim/uses_wallclock.cpp", 7},
      {"determinism-wallclock", "src/sim/uses_wallclock.cpp", 8},
  };
  std::set<Expected> actual;
  for (const Finding& finding : report.findings)
    actual.insert({finding.rule, finding.file, finding.line});

  for (const Expected& want : expected)
    EXPECT_TRUE(actual.contains(want))
        << "missing: " << std::get<0>(want) << " " << std::get<1>(want) << ":"
        << std::get<2>(want);
  for (const Expected& got : actual)
    EXPECT_TRUE(expected.contains(got)) << "unexpected: " << std::get<0>(got) << " "
                                        << std::get<1>(got) << ":" << std::get<2>(got);
  EXPECT_EQ(report.suppressed, 2u);     // the two justified ALLOWs in suppressed_ok.cpp
  EXPECT_EQ(report.files_scanned, 10u); // clean_tricky + alloc_ok + the dirty eight
}

TEST(LintCorpus, ReportIsByteIdenticalAcrossRuns) {
  const LintConfig config = LintConfig::repo_default();
  const std::string root = std::string(NDNP_SOURCE_ROOT) + "/tests/lint_corpus";
  EXPECT_EQ(lint_paths(root, {"src"}, config).to_json(),
            lint_paths(root, {"src"}, config).to_json());
}

// ---------------------------------------------------------------------------
// Repository-wide clean check. This is the enforcement layer the CI lint
// job runs through tools/ndnp_lint; keeping it in the test suite as well
// means a plain `ctest` catches a violation before CI does.

TEST(LintRepository, TreeIsCleanModuloBaseline) {
  const LintConfig config = LintConfig::repo_default();
  const LintReport raw = lint_paths(
      NDNP_SOURCE_ROOT, {"src", "bench", "tools", "tests", "examples"}, config);
  LintReport report = raw;
  const std::string baseline_path = std::string(NDNP_SOURCE_ROOT) + "/.ndnp_lint_baseline";
  apply_baseline(report, Baseline::parse(read_file(baseline_path)));
  EXPECT_TRUE(report.clean()) << report.to_text();
  // Sanity: the scan actually covered the tree.
  EXPECT_GE(report.files_scanned, 150u);
}

}  // namespace
}  // namespace ndnp::lint
