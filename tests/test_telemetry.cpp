// Online telemetry layer: estimator properties (EWMA convergence, CUSUM
// step response and stationary silence, merge associativity), recorder
// ring/CSV/Prometheus semantics, hub alarm emission as trace events, the
// labelled attack-scenario recall floor, the clean-replay false-alarm
// ceiling, jobs-invariance of the exported series, and a pinned golden
// CSV vector (regenerate with NDNP_REGEN_GOLDEN=1).
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/telemetry_scenario.hpp"
#include "runner/experiments.hpp"
#include "sim/trace_sinks.hpp"
#include "telemetry/detectors.hpp"
#include "telemetry/estimators.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/tracing.hpp"

namespace {

using namespace ndnp;

#ifndef NDNP_SOURCE_ROOT
#error "tests must be compiled with -DNDNP_SOURCE_ROOT=\"<repo root>\""
#endif

// ---------------------------------------------------------------------------
// Estimator properties.

TEST(Ewma, ConvergesToBernoulliMean) {
  for (const double p : {0.1, 0.3, 0.7}) {
    telemetry::EwmaEstimator ewma;  // alpha = 0.05
    util::Rng rng(static_cast<std::uint64_t>(p * 1000) + 1);
    for (std::size_t i = 0; i < 20'000; ++i) ewma.observe(rng.uniform01() < p ? 1.0 : 0.0);
    // Steady-state EWMA std dev for Bernoulli is sqrt(alpha/(2-alpha) p(1-p))
    // ~ 0.08 at worst here; 5 sigma keeps the seeded check deterministic.
    EXPECT_NEAR(ewma.value, p, 0.12) << "p=" << p;
    EXPECT_EQ(ewma.count, 20'000u);
  }
}

TEST(Ewma, FirstObservationSeedsDirectly) {
  telemetry::EwmaEstimator ewma;
  ewma.observe(0.75);
  EXPECT_DOUBLE_EQ(ewma.value, 0.75);
}

/// The calibrated production detector: downward-only, adaptive reference
/// (mirrors telemetry::DetectorTuning defaults).
telemetry::CusumDetector tuned_cusum() {
  telemetry::CusumDetector cusum;
  const telemetry::DetectorTuning tuning;
  cusum.drift = tuning.cusum_drift;
  cusum.threshold = tuning.cusum_threshold;
  cusum.reference_alpha = tuning.cusum_reference_alpha;
  cusum.two_sided = tuning.cusum_two_sided;
  return cusum;
}

TEST(Cusum, FiresOnDownwardHitRateStep) {
  telemetry::CusumDetector cusum = tuned_cusum();
  cusum.arm(0.8);
  util::Rng rng(42);
  // Stationary at the reference: no alarm while the mean matches.
  for (std::size_t i = 0; i < 5'000; ++i)
    ASSERT_FALSE(cusum.observe(rng.uniform01() < 0.8 ? 1.0 : 0.0)) << "sample " << i;
  // Collapse to p=0.1 (cache-pollution signature): per-sample accumulation
  // ~ 0.7 - drift, so the alarm must land well inside 100 samples.
  bool fired = false;
  std::size_t samples_to_fire = 0;
  for (std::size_t i = 0; i < 100 && !fired; ++i) {
    fired = cusum.observe(rng.uniform01() < 0.1 ? 1.0 : 0.0);
    samples_to_fire = i + 1;
  }
  EXPECT_TRUE(fired);
  EXPECT_LT(samples_to_fire, 60u);
  EXPECT_EQ(cusum.alarms, 1u);
  // Post-alarm reset: statistics cleared so the next alarm re-accumulates.
  EXPECT_DOUBLE_EQ(cusum.statistic(), 0.0);
}

TEST(Cusum, SilentOnFiftyStationarySeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    telemetry::CusumDetector cusum = tuned_cusum();
    cusum.arm(0.5);  // worst case: Bernoulli variance peaks at p = 0.5
    util::Rng rng(seed);
    for (std::size_t i = 0; i < 20'000; ++i)
      cusum.observe(rng.uniform01() < 0.5 ? 1.0 : 0.0);
    EXPECT_EQ(cusum.alarms, 0u) << "false alarm at seed " << seed;
  }
}

TEST(Cusum, AdaptiveReferenceAbsorbsSlowDrift) {
  // Hit rate decaying 0.8 -> 0.6 over 20k samples (cache saturating) must
  // not alarm: the slow-EWMA reference tracks it. The same shift applied
  // abruptly (tested above) fires within tens of samples.
  telemetry::CusumDetector cusum = tuned_cusum();
  cusum.arm(0.8);
  util::Rng rng(7);
  for (std::size_t i = 0; i < 20'000; ++i) {
    const double p = 0.8 - 0.2 * static_cast<double>(i) / 20'000.0;
    cusum.observe(rng.uniform01() < p ? 1.0 : 0.0);
  }
  EXPECT_EQ(cusum.alarms, 0u);
  EXPECT_NEAR(cusum.reference, 0.6, 0.1);
}

TEST(Cusum, ObserveBeforeArmIsNoOp) {
  telemetry::CusumDetector cusum = tuned_cusum();
  for (int i = 0; i < 1'000; ++i) EXPECT_FALSE(cusum.observe(0.0));
  EXPECT_EQ(cusum.alarms, 0u);
  EXPECT_DOUBLE_EQ(cusum.statistic(), 0.0);
}

// ---------------------------------------------------------------------------
// Merge associativity — the property the sharded replayer relies on to
// fold per-shard detector state in shard order.

telemetry::EwmaEstimator ewma_of(std::uint64_t seed, std::size_t n, double p) {
  telemetry::EwmaEstimator ewma;
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) ewma.observe(rng.uniform01() < p ? 1.0 : 0.0);
  return ewma;
}

TEST(EstimatorMerge, EwmaAssociativeAndIdentityOnEmpty) {
  using telemetry::EwmaEstimator;
  const EwmaEstimator a = ewma_of(1, 1'000, 0.2);
  const EwmaEstimator b = ewma_of(2, 3'000, 0.5);
  const EwmaEstimator c = ewma_of(3, 500, 0.9);
  const EwmaEstimator left = EwmaEstimator::merged(EwmaEstimator::merged(a, b), c);
  const EwmaEstimator right = EwmaEstimator::merged(a, EwmaEstimator::merged(b, c));
  EXPECT_EQ(left.count, right.count);
  EXPECT_NEAR(left.value, right.value, 1e-12);

  const EwmaEstimator empty;
  const EwmaEstimator with_empty = EwmaEstimator::merged(a, empty);
  EXPECT_EQ(with_empty.count, a.count);
  EXPECT_DOUBLE_EQ(with_empty.value, a.value);
}

TEST(EstimatorMerge, CusumExactlyAssociative) {
  using telemetry::CusumDetector;
  CusumDetector a = tuned_cusum();
  CusumDetector b = tuned_cusum();
  CusumDetector c = tuned_cusum();
  a.arm(0.7);
  b.arm(0.4);
  util::Rng rng(11);
  for (std::size_t i = 0; i < 2'000; ++i) {
    a.observe(rng.uniform01() < 0.5 ? 1.0 : 0.0);
    b.observe(rng.uniform01() < 0.2 ? 1.0 : 0.0);
  }
  // Max and sum are exactly associative; reference picks the first armed
  // side deterministically (c is unarmed, so it never wins).
  const CusumDetector left = CusumDetector::merged(CusumDetector::merged(a, b), c);
  const CusumDetector right = CusumDetector::merged(a, CusumDetector::merged(b, c));
  EXPECT_DOUBLE_EQ(left.pos, right.pos);
  EXPECT_DOUBLE_EQ(left.neg, right.neg);
  EXPECT_EQ(left.alarms, right.alarms);
  EXPECT_DOUBLE_EQ(left.reference, right.reference);
  EXPECT_EQ(left.armed, right.armed);
  EXPECT_EQ(left.alarms, a.alarms + b.alarms);
}

TEST(EstimatorMerge, InterArrivalAssociative) {
  using telemetry::InterArrivalEstimator;
  InterArrivalEstimator a, b, c;
  util::Rng rng(5);
  util::SimTime ta = 0, tb = 1'000'000, tc = 2'000'000;
  for (std::size_t i = 0; i < 500; ++i) {
    a.observe(ta += static_cast<util::SimDuration>(rng.exponential(1e-6)));
    b.observe(tb += static_cast<util::SimDuration>(rng.exponential(2e-6)));
    c.observe(tc += static_cast<util::SimDuration>(500));  // machine-paced
  }
  const InterArrivalEstimator left =
      InterArrivalEstimator::merged(InterArrivalEstimator::merged(a, b), c);
  const InterArrivalEstimator right =
      InterArrivalEstimator::merged(a, InterArrivalEstimator::merged(b, c));
  EXPECT_EQ(left.gaps(), right.gaps());
  EXPECT_NEAR(left.gap.value, right.gap.value, 1e-6 * left.gap.value);
  EXPECT_EQ(left.last_arrival, right.last_arrival);
  // Regularity separation: Poisson CV near 2/e, machine pacing near 0.
  EXPECT_GT(a.regularity_cv(), 0.5);
  EXPECT_LT(c.regularity_cv(), 0.01);
}

TEST(DetectorBank, MergeSumsObservationsAndAlarms) {
  const telemetry::DetectorTuning tuning;
  telemetry::DetectorBank a(8, tuning), b(8, tuning);
  telemetry::AlarmEvent out[telemetry::kDetectorKinds];
  util::SimTime now = 0;
  // Machine-paced stream on one bucket of each bank: regularity fires.
  for (std::size_t i = 0; i < 200; ++i)
    a.observe(3, telemetry::LookupOutcome::kExposedHit, now += 1'000'000, out);
  for (std::size_t i = 0; i < 100; ++i)
    b.observe(3, telemetry::LookupOutcome::kTrueMiss, now += 1'000'000, out);
  const std::uint64_t alarms_a = a.alarms_total();
  const std::uint64_t alarms_b = b.alarms_total();
  EXPECT_GT(alarms_a, 0u) << "machine-paced stream must trip arrival_regularity";
  a.merge_from(b);
  EXPECT_EQ(a.observations(), 300u);
  EXPECT_EQ(a.alarms_total(), alarms_a + alarms_b);
  telemetry::DetectorBank mismatched(4, tuning);
  EXPECT_THROW(a.merge_from(mismatched), std::invalid_argument);
}

TEST(DetectorBank, EnableMaskSuppressesAlarmsButKeepsEstimators) {
  const telemetry::DetectorTuning tuning;
  telemetry::DetectorBank muted(8, tuning, 0);  // no detector may fire
  telemetry::AlarmEvent out[telemetry::kDetectorKinds];
  util::SimTime now = 0;
  for (std::size_t i = 0; i < 500; ++i)
    muted.observe(1, telemetry::LookupOutcome::kDelayedHit, now += 1'000'000, out);
  EXPECT_EQ(muted.alarms_total(), 0u);
  EXPECT_EQ(muted.observations(), 500u);
  EXPECT_GT(muted.bucket_hit_rate(1) + 1.0, 0.0);  // estimators still updated
}

// ---------------------------------------------------------------------------
// TimeSeriesRecorder: cadence, ring, exports.

TEST(TimeSeries, LazySamplingEmitsOneRowPerCrossedBoundary) {
  telemetry::TimeSeriesRecorder recorder(util::millis(10), 0);
  double gauge = 0.0;
  recorder.add_probe("gauge", [&] { return gauge; });

  recorder.maybe_sample(util::millis(5));  // before the first boundary
  EXPECT_EQ(recorder.rows(), 0u);
  gauge = 1.0;
  recorder.maybe_sample(util::millis(12));  // crosses t=10ms
  EXPECT_EQ(recorder.rows(), 1u);
  recorder.maybe_sample(util::millis(13));  // same boundary: no new row
  EXPECT_EQ(recorder.rows(), 1u);
  gauge = 2.0;
  // Jump across three boundaries (20, 30, 40 ms): only the latest gets a
  // row, the two skipped ones are counted.
  recorder.maybe_sample(util::millis(45));
  EXPECT_EQ(recorder.rows(), 2u);
  EXPECT_EQ(recorder.missed_boundaries(), 2u);

  const std::string csv = recorder.to_csv();
  EXPECT_EQ(csv,
            "t_ns,gauge\n"
            "10000000,1\n"
            "40000000,2\n");
}

TEST(TimeSeries, RingKeepsMostRecentRows) {
  telemetry::TimeSeriesRecorder recorder(util::millis(1), 4);
  recorder.add_probe("t_ms", [] { return 0.0; });
  for (int i = 1; i <= 10; ++i) recorder.maybe_sample(util::millis(i));
  EXPECT_EQ(recorder.rows(), 4u);
  EXPECT_EQ(recorder.dropped_rows(), 6u);
  const std::string csv = recorder.to_csv();
  // Oldest-first and only the last four boundaries survive.
  EXPECT_NE(csv.find("7000000,"), std::string::npos);
  EXPECT_NE(csv.find("10000000,"), std::string::npos);
  EXPECT_EQ(csv.find("6000000,"), std::string::npos);
}

TEST(TimeSeries, PrometheusExpositionSanitizesNames) {
  telemetry::TimeSeriesRecorder recorder(util::millis(10), 16);
  recorder.add_probe("cs.occupancy", [] { return 42.0; });
  recorder.sample_at(util::millis(30));
  const std::string prom = recorder.to_prometheus();
  EXPECT_NE(prom.find("# TYPE ndnp_cs_occupancy gauge"), std::string::npos) << prom;
  EXPECT_NE(prom.find("ndnp_cs_occupancy 42 30"), std::string::npos)
      << "value + millisecond timestamp expected:\n"
      << prom;
}

TEST(TimeSeries, ProbeSetFreezesAtFirstSample) {
  telemetry::TimeSeriesRecorder recorder(util::millis(10), 16);
  recorder.add_probe("a", [] { return 0.0; });
  recorder.sample_at(util::millis(10));
  EXPECT_THROW(recorder.add_probe("b", [] { return 0.0; }), std::logic_error);
}

// ---------------------------------------------------------------------------
// Metrics export: the empty-registry JSON shape is pinned because
// replay_tool/chaos_tool --metrics-out consumers key on it.

TEST(MetricsExport, EmptyRegistrySnapshotJson) {
  util::MetricsRegistry registry;
  EXPECT_EQ(registry.snapshot().to_json(), R"({"counters":{},"gauges":{},"histograms":{}})");
}

TEST(MetricsExport, HubPublishesLookupAndAlarmCounters) {
  telemetry::TelemetryHub hub;
  telemetry::LookupOutcome outcomes[] = {telemetry::LookupOutcome::kExposedHit,
                                         telemetry::LookupOutcome::kTrueMiss};
  for (std::size_t i = 0; i < 10; ++i)
    hub.on_lookup(i % 2, i % 3, outcomes[i % 2], static_cast<util::SimTime>(i) * 1'000'000);
  util::MetricsRegistry registry;
  hub.export_metrics(registry, "telemetry");
  const util::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("telemetry.lookups"), 10u);
  EXPECT_TRUE(snap.counters.count("telemetry.alarms.hit_rate_shift"));
  EXPECT_TRUE(snap.counters.count("telemetry.alarms.arrival_regularity"));
  EXPECT_TRUE(snap.counters.count("telemetry.alarms.delayed_hit_ratio"));
}

// ---------------------------------------------------------------------------
// Hub -> trace plumbing: fired alarms must land on the bound tracer as
// telemetry_alarm events the scorecard can join.

TEST(TelemetryHub, AlarmsBecomeTraceEvents) {
  telemetry::TelemetryHub hub({}, "router");
  util::Tracer tracer;
  {
    util::TracerBinding binding(&tracer);
    util::SimTime now = 0;
    // One face, machine-regular cadence: arrival_regularity must fire on
    // both banks (face mask and prefix mask include it).
    for (std::size_t i = 0; i < 200; ++i)
      hub.on_lookup(7, 13, telemetry::LookupOutcome::kExposedHit, now += 500'000);
  }
  ASSERT_GT(hub.alarms(telemetry::DetectorKind::kArrivalRegularity), 0u);

  const std::vector<sim::FlatEvent> events = sim::flatten(tracer);
  std::size_t alarm_events = 0;
  for (const sim::FlatEvent& event : events) {
    if (event.type != "telemetry_alarm") continue;
    ++alarm_events;
    EXPECT_EQ(event.node, "router");
    EXPECT_NE(event.detail.find("detector=arrival_regularity"), std::string::npos)
        << event.detail;
  }
  EXPECT_EQ(alarm_events, hub.alarms_total());

  // A clean (probe-free) capture scores as all-false-positive: no attack
  // windows, zero recall, and the join never divides by zero.
  const sim::TelemetryScorecard card = sim::telemetry_scorecard(events, util::millis(10));
  EXPECT_EQ(card.attack_windows, 0u);
  EXPECT_EQ(card.any().recall, 0.0);
  EXPECT_EQ(card.any().alarms, alarm_events);
}

// ---------------------------------------------------------------------------
// End-to-end gates (the same two CI enforces via telemetry_tool, scaled to
// test budgets).

TEST(TelemetryEndToEnd, SequentialProbingRecallFloor) {
#if !NDNP_TELEMETRY
  GTEST_SKIP() << "forwarder telemetry hooks compiled out (-DNDNP_TELEMETRY=0)";
#endif
  const attack::TelemetryScenarioConfig config;  // paper defaults, seed 7
  telemetry::TelemetryHub hub({}, "router");
  util::Tracer tracer;
  attack::TelemetryScenarioResult result{};
  {
    util::TracerBinding binding(&tracer);
    result = attack::run_telemetry_scenario(config, &hub);
  }
  EXPECT_GT(result.probes, 0u);
  EXPECT_GT(result.delayed_hits, 0u) << "countermeasure must absorb the probe stream";

  const sim::TelemetryScorecard card =
      sim::telemetry_scorecard(sim::flatten(tracer), util::millis(250));
  ASSERT_GT(card.attack_windows, 0u);
  // The acceptance gates: sequential probing detected in >= 90% of attack
  // windows with no false-positive windows on the honest prefix traffic.
  EXPECT_GE(card.any().recall, 0.9);
  EXPECT_EQ(card.any().false_positive_windows, 0u);
  EXPECT_DOUBLE_EQ(card.any().precision, 1.0);
  EXPECT_GE(card.any().detection_latency_ms, 0.0) << "first alarm must trail the first probe";
}

TEST(TelemetryEndToEnd, CleanFig5aReplayRaisesNoAlarms) {
#if !NDNP_TELEMETRY
  GTEST_SKIP() << "replayer telemetry hooks compiled out (-DNDNP_TELEMETRY=0)";
#endif
  runner::Fig5aConfig config;
  config.trace_requests = 60'000;
  config.trace_objects = 60'000;
  config.jobs = 4;
  telemetry::SweepTelemetryCapture capture;
  config.telemetry = &capture;
  (void)runner::run_fig5a(config);

  std::uint64_t lookups = 0, alarms = 0;
  for (const auto& hub : capture.runs) {
    ASSERT_NE(hub, nullptr);
    lookups += hub->lookups();
    alarms += hub->alarms_total();
  }
  EXPECT_GT(lookups, 1'000'000u) << "telemetry must observe every replayed lookup";
  EXPECT_EQ(alarms, 0u) << "honest Figure 5(a) workload must stay alarm-free";
}

TEST(TelemetryEndToEnd, DetectorSeriesByteIdenticalAcrossJobs) {
  const auto run = [](std::size_t jobs) {
    runner::Fig5aConfig config;
    config.trace_requests = 10'000;
    config.trace_objects = 10'000;
    config.jobs = jobs;
    telemetry::SweepTelemetryCapture capture;
    capture.options.sample_every = util::millis(50);
    config.telemetry = &capture;
    (void)runner::run_fig5a(config);
    std::string joined;
    for (std::size_t i = 0; i < capture.runs.size(); ++i) {
      joined += "== run " + std::to_string(i) + " ==\n";
      joined += capture.runs[i]->recorder().to_csv();
      joined += "alarms=" + std::to_string(capture.runs[i]->alarms_total()) + "\n";
    }
    return joined;
  };
  const std::string jobs1 = run(1);
  EXPECT_EQ(jobs1, run(4));
  EXPECT_EQ(jobs1, run(8));
  EXPECT_NE(jobs1.find("t_ns,"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden vector: the attack scenario's exported detector time series is
// pinned byte-for-byte (same mechanism as test_golden.cpp; regenerate with
// NDNP_REGEN_GOLDEN=1 after an intentional change).

std::filesystem::path golden_path(const std::string& stem) {
  return std::filesystem::path(NDNP_SOURCE_ROOT) / "tests" / "golden" / (stem + ".txt");
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(TelemetryGolden, AttackScenarioSeriesMatchesGolden) {
#if !NDNP_TELEMETRY
  GTEST_SKIP() << "forwarder telemetry hooks compiled out (-DNDNP_TELEMETRY=0)";
#endif
  attack::TelemetryScenarioConfig config;
  config.duration = util::seconds(5);
  config.attack_start = util::seconds(2);
  telemetry::TelemetryOptions options;
  options.sample_every = util::millis(100);
  telemetry::TelemetryHub hub(options, "router");
  (void)attack::run_telemetry_scenario(config, &hub);
  ASSERT_GT(hub.recorder().rows(), 0u);
  const std::string actual = hub.recorder().to_csv();

  const std::filesystem::path path = golden_path("telemetry_attack_series");
  const std::string expected = read_file(path);
  if (expected.empty() && std::getenv("NDNP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << actual;
    GTEST_SKIP() << "golden vector regenerated at " << path;
  }
  ASSERT_FALSE(expected.empty()) << "missing golden vector " << path
                                 << " — regenerate with NDNP_REGEN_GOLDEN=1";
  EXPECT_EQ(actual, expected) << "detector time series drifted from the pinned golden; "
                                 "rerun with NDNP_REGEN_GOLDEN=1 only if intentional";
}

}  // namespace
