// Model-based forwarder fuzzing (sim/chaos.hpp): seeded random episodes
// against a multi-node faulty topology with the invariant layer armed, and
// a differential op stream cross-checked against the naive reference
// forwarder. Plus regression tests for bugs the fuzzer found.
#include "sim/chaos.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "runner/runner.hpp"
#include "sim/apps.hpp"
#include "sim/forwarder.hpp"
#include "util/invariant.hpp"

namespace ndnp::sim {
namespace {

TEST(FuzzForwarder, DifferentialEpisodesMatchReference) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const DifferentialResult result = run_differential_episode(seed, 1200);
    EXPECT_EQ(result.ops, 1200u);
    EXPECT_TRUE(result.ok()) << result.first_divergence;
    if (!result.ok()) break;  // one full reproduction message is enough
  }
}

TEST(FuzzForwarder, ChaosEpisodesHoldInvariants) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    ChaosEpisodeOptions options;
    options.seed = runner::run_seed(0x9c0deULL, seed);
    const ChaosEpisodeResult result = run_chaos_episode(options);
    EXPECT_TRUE(result.ok()) << "seed " << options.seed << ": " << result.violation;
    EXPECT_GT(result.events_processed, 0u);
    if (!result.ok()) break;
  }
}

TEST(FuzzForwarder, ChaosEpisodeDigestIsReproducible) {
  ChaosEpisodeOptions options;
  options.seed = 0xfeedULL;
  const ChaosEpisodeResult a = run_chaos_episode(options);
  const ChaosEpisodeResult b = run_chaos_episode(options);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.link_faults.total(), b.link_faults.total());
}

TEST(FuzzForwarder, ChaosSweepByteIdenticalAcrossJobs) {
  constexpr std::size_t kEpisodes = 12;
  const auto sweep = [](std::size_t jobs) {
    runner::SweepOptions options;
    options.jobs = jobs;
    options.master_seed = 77;
    return runner::run_sweep<ChaosEpisodeResult>(
        kEpisodes, options, [](const runner::RunContext& ctx) {
          ChaosEpisodeOptions episode;
          episode.seed = ctx.seed;
          episode.interests = 150;
          return run_chaos_episode(episode);
        });
  };
  const std::vector<ChaosEpisodeResult> j1 = sweep(1);
  const std::vector<ChaosEpisodeResult> j4 = sweep(4);
  const std::vector<ChaosEpisodeResult> j8 = sweep(8);
  ASSERT_EQ(j1.size(), kEpisodes);
  for (std::size_t i = 0; i < kEpisodes; ++i) {
    EXPECT_EQ(j1[i].digest, j4[i].digest) << "episode " << i;
    EXPECT_EQ(j1[i].digest, j8[i].digest) << "episode " << i;
    EXPECT_TRUE(j1[i].ok()) << j1[i].violation;
  }
}

// --- regressions for fuzzer-found bugs ------------------------------------

/// Terminal node that swallows whatever reaches it.
class SinkNode final : public Node {
 public:
  SinkNode(Scheduler& scheduler, std::string name) : Node(scheduler, std::move(name), 1) {}
  void receive_interest(const ndn::Interest&, FaceId) override {}
  void receive_data(const ndn::Data&, FaceId) override {}
};

/// Found by the differential fuzzer: an interest whose decoded lifetime is
/// negative (hostile or bit-flipped on the wire) used to reach
/// Scheduler::schedule_in with a negative delay, aborting the whole
/// simulation with std::logic_error. The forwarder must clamp instead.
TEST(FuzzForwarder, NegativeInterestLifetimeIsClampedNotFatal) {
  Scheduler scheduler;
  ForwarderConfig config;
  config.processing_delay = 0;
  Forwarder forwarder(scheduler, "R", config);
  SinkNode down(scheduler, "down");
  SinkNode up(scheduler, "up");
  connect(down, forwarder, {});
  const auto [to_up, from_up] = connect(forwarder, up, {});
  (void)from_up;
  forwarder.add_route(ndn::Name("/p"), to_up);

  ndn::Interest hostile;
  hostile.name = ndn::Name("/p/x");
  hostile.nonce = 7;
  hostile.lifetime = -util::millis(5);
  forwarder.receive_interest(hostile, 0);
  EXPECT_NO_THROW(scheduler.run());

  // Clamped to a zero lifetime: the entry was created, then expired in the
  // same instant — no leak, no resident state.
  EXPECT_EQ(forwarder.stats().pit_inserts, 1u);
  EXPECT_EQ(forwarder.stats().pit_expirations, 1u);
  EXPECT_EQ(forwarder.pit_size(), 0u);
  EXPECT_EQ(forwarder.stats().forwarded_interests, 1u);
  EXPECT_NO_THROW(forwarder.check_invariants());
}

/// Companion boundary case: an explicit zero lifetime behaves identically
/// (entry created and expired at the same timestamp), and a sane lifetime
/// expires exactly once — the PIT conservation ledger stays balanced.
TEST(FuzzForwarder, ZeroLifetimeExpiresImmediatelyWithoutLeak) {
  Scheduler scheduler;
  ForwarderConfig config;
  config.processing_delay = 0;
  Forwarder forwarder(scheduler, "R", config);
  SinkNode down(scheduler, "down");
  SinkNode up(scheduler, "up");
  connect(down, forwarder, {});
  const auto [to_up, from_up] = connect(forwarder, up, {});
  (void)from_up;
  forwarder.add_route(ndn::Name("/p"), to_up);

  ndn::Interest zero;
  zero.name = ndn::Name("/p/zero");
  zero.nonce = 1;
  zero.lifetime = 0;
  forwarder.receive_interest(zero, 0);

  ndn::Interest normal;
  normal.name = ndn::Name("/p/normal");
  normal.nonce = 2;
  normal.lifetime = util::millis(3);
  forwarder.receive_interest(normal, 0);

  scheduler.run();
  EXPECT_EQ(forwarder.stats().pit_inserts, 2u);
  EXPECT_EQ(forwarder.stats().pit_expirations, 2u);
  EXPECT_EQ(forwarder.pit_size(), 0u);
  EXPECT_NO_THROW(forwarder.check_invariants());
}

}  // namespace
}  // namespace ndnp::sim
