// Deterministic parallel sweep runner: seed derivation, jobs-independence
// of merged results, golden vectors for the ported Figure 5(a) bench, and
// the determinism guard (ndnp_lint rules over the simulation tree).
#include "runner/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/engine.hpp"
#include "runner/experiments.hpp"
#include "util/rng.hpp"

namespace {

using namespace ndnp;

#ifndef NDNP_SOURCE_ROOT
#error "tests must be compiled with -DNDNP_SOURCE_ROOT=\"<repo root>\""
#endif

TEST(Runner, RunSeedMatchesSequentialSplitMix) {
  // run_seed is documented as the (i+1)-th output of SplitMix64(master),
  // computed by random access — pin that equivalence.
  for (const std::uint64_t master : {0ULL, 1ULL, 2013ULL, 0xdeadbeefULL}) {
    util::SplitMix64 sm(master);
    for (std::size_t i = 0; i < 100; ++i)
      EXPECT_EQ(runner::run_seed(master, i), sm.next()) << "master=" << master << " i=" << i;
  }
}

TEST(Runner, RunSeedStreamsNeverCollideAcross10kDraws) {
  // 16 per-run streams keyed by (master_seed, i): no value may repeat
  // within or across streams over 10k draws each.
  constexpr std::uint64_t kMaster = 2013;
  constexpr std::size_t kRuns = 16;
  constexpr std::size_t kDraws = 10'000;
  std::vector<std::uint64_t> draws;
  draws.reserve(kRuns * kDraws);
  for (std::size_t i = 0; i < kRuns; ++i) {
    util::Rng rng(runner::run_seed(kMaster, i));
    for (std::size_t d = 0; d < kDraws; ++d) draws.push_back(rng.next_u64());
  }
  std::sort(draws.begin(), draws.end());
  EXPECT_EQ(std::adjacent_find(draws.begin(), draws.end()), draws.end())
      << "per-run RNG streams collided";
  // The seeds themselves must be pairwise distinct too.
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1'000; ++i) seeds.insert(runner::run_seed(kMaster, i));
  EXPECT_EQ(seeds.size(), 1'000u);
}

/// Synthetic metrics run: counters, gauges and a histogram derived purely
/// from the per-run seed — any cross-thread leakage or ordering bug
/// changes the merged output.
util::MetricsSnapshot synthetic_run(const runner::RunContext& ctx) {
  util::MetricsRegistry registry;
  util::Rng rng(ctx.seed);
  util::Counter& events = registry.counter("events");
  util::HistogramMetric& hist = registry.histogram("values", 0.0, 1.0, 16);
  const std::size_t n = 100 + rng.uniform_u64(100);
  for (std::size_t i = 0; i < n; ++i) {
    events.inc();
    hist.add(rng.uniform01());
  }
  util::MetricsSnapshot snap = registry.snapshot();
  snap.counters["run_index"] = ctx.run_index;
  snap.gauges["mean_draw"] = rng.uniform01();
  return snap;
}

TEST(Runner, SixteenRunSweepIsByteIdenticalForJobs148) {
  runner::SweepOptions options;
  options.master_seed = 99;
  options.jobs = 1;
  const runner::SweepResult jobs1 = runner::run_metrics_sweep(16, options, synthetic_run);
  options.jobs = 4;
  const runner::SweepResult jobs4 = runner::run_metrics_sweep(16, options, synthetic_run);
  options.jobs = 8;
  const runner::SweepResult jobs8 = runner::run_metrics_sweep(16, options, synthetic_run);

  ASSERT_EQ(jobs1.runs.size(), 16u);
  const std::string json1 = jobs1.merged_json();
  EXPECT_EQ(json1, jobs4.merged_json());
  EXPECT_EQ(json1, jobs8.merged_json());
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(jobs1.runs[i] == jobs4.runs[i]) << "run " << i;
    EXPECT_EQ(jobs1.runs[i].counters.at("run_index"), i) << "merge order broken";
  }
}

TEST(Runner, SweepPreservesRunIndexOrder) {
  runner::SweepOptions options;
  options.jobs = 8;
  const std::vector<std::size_t> results = runner::run_sweep<std::size_t>(
      64, options, [](const runner::RunContext& ctx) { return ctx.run_index * 10; });
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * 10);
}

TEST(Runner, SweepRethrowsWorkerExceptions) {
  runner::SweepOptions options;
  options.jobs = 4;
  EXPECT_THROW(runner::run_sweep<int>(16, options,
                                      [](const runner::RunContext& ctx) {
                                        if (ctx.run_index == 7)
                                          throw std::runtime_error("boom");
                                        return 0;
                                      }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Jobs-invariance: parallel sweeps must merge to byte-identical results
// regardless of worker count. (The pinned golden *vectors* for these
// experiments live in test_golden.cpp / the ndnp_golden_tests binary;
// these tests stay here so the ThreadSanitizer CI job races them.)

runner::Fig5aConfig golden_config(std::uint64_t replay_seed) {
  runner::Fig5aConfig config;
  config.trace_requests = 10'000;
  config.trace_objects = 10'000;
  config.replay_seed = replay_seed;
  return config;
}

TEST(RunnerJobsInvariance, Fig5aByteIdenticalAcrossJobs) {
  runner::Fig5aConfig config = golden_config(99);
  const std::string jobs1 = runner::run_fig5a(config).format_table();
  config.jobs = 4;
  const std::string jobs4 = runner::run_fig5a(config).format_table();
  config.jobs = 8;
  runner::Fig5aResult result8 = runner::run_fig5a(config);
  EXPECT_EQ(jobs1, jobs4);
  EXPECT_EQ(jobs1, result8.format_table());
  // The full merged metrics JSON (not just the table) is jobs-invariant.
  config.jobs = 1;
  EXPECT_EQ(runner::run_fig5a(config).merged_json(), result8.merged_json());
}

TEST(RunnerJobsInvariance, Fig4aAndTheoryByteIdenticalAcrossJobs) {
  runner::Fig4aConfig fig4a;
  const std::string fig4a_serial = runner::run_fig4a(fig4a).format_table();
  fig4a.jobs = 8;
  EXPECT_EQ(fig4a_serial, runner::run_fig4a(fig4a).format_table());

  runner::TheoryValidationConfig theory;
  theory.trials = 20'000;
  const runner::TheoryValidationResult serial = runner::run_theory_validation(theory);
  theory.jobs = 5;
  const runner::TheoryValidationResult parallel = runner::run_theory_validation(theory);
  EXPECT_EQ(serial.format_utility_table(), parallel.format_utility_table());
  EXPECT_EQ(serial.format_privacy_table(), parallel.format_privacy_table());
  EXPECT_EQ(serial.max_utility_error, parallel.max_utility_error);
}

// ---------------------------------------------------------------------------
// Determinism guard: simulation results must never depend on wall clock,
// libc rand, or unordered-container iteration order. The old grep scan
// over src/sim, src/trace and src/telemetry is now the ndnp_lint rule
// pack (src/lint, docs/STATIC_ANALYSIS.md), which lexes real code — no
// false hits on comments or strings — and covers a wider tree: the
// determinism rules bind to src/runner, src/attack, src/cache and
// src/core as well. Suppressions require a written justification at the
// site, so a silent reintroduction still fails here.

TEST(DeterminismGuard, SimulationTreeIsCleanUnderDeterminismLintRules) {
  const lint::LintConfig config = lint::LintConfig::repo_default();
  const lint::LintReport report = lint::lint_paths(NDNP_SOURCE_ROOT, {"src"}, config);
  std::vector<lint::Finding> determinism;
  for (const lint::Finding& finding : report.findings)
    if (finding.rule.starts_with("determinism-")) determinism.push_back(finding);
  EXPECT_TRUE(determinism.empty()) << [&] {
    lint::LintReport only;
    only.findings = determinism;
    only.files_scanned = report.files_scanned;
    return only.to_text();
  }();
  ASSERT_GE(report.files_scanned, 10u) << "guard scanned suspiciously few files";
}

}  // namespace
