#include "core/indistinguishability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/theory.hpp"

namespace ndnp::core {
namespace {

TEST(OutputDistribution, SumsToOne) {
  const UniformK dist(10);
  for (const std::int64_t x : {0LL, 1LL, 3LL}) {
    const DiscreteDist d = exact_output_distribution(dist, x, 20);
    EXPECT_NEAR(std::accumulate(d.begin(), d.end(), 0.0), 1.0, 1e-9) << "x=" << x;
  }
}

TEST(OutputDistribution, NeverRequestedAlwaysStartsWithMiss) {
  // Under S0 the first probe is a compulsory miss: Pr[m = 0] = 0.
  const UniformK dist(10);
  const DiscreteDist d0 = exact_output_distribution(dist, 0, 15);
  EXPECT_DOUBLE_EQ(d0[0], 0.0);
}

TEST(OutputDistribution, RequestedStateCanShowImmediateHit) {
  // Under S_x with threshold k < x the very first probe is a hit.
  const UniformK dist(10);
  const DiscreteDist dx = exact_output_distribution(dist, 3, 15);
  EXPECT_NEAR(dx[0], 3.0 / 10.0, 1e-12);  // k in {0,1,2}
}

TEST(OutputDistribution, ShiftStructureMatchesProof) {
  // Theorem VI.1's partition: D_x is D_0 shifted by x on the overlap.
  const std::int64_t K = 12;
  const std::int64_t x = 4;
  const std::int64_t t = 20;  // t > K so no truncation merging
  const UniformK dist(K);
  const DiscreteDist d0 = exact_output_distribution(dist, 0, t);
  const DiscreteDist dx = exact_output_distribution(dist, x, t);
  for (std::int64_t m = 1; m + x <= K; ++m) {
    EXPECT_NEAR(dx[static_cast<std::size_t>(m)], d0[static_cast<std::size_t>(m + x)], 1e-12)
        << "m=" << m;
  }
}

TEST(OutputDistribution, EmpiricalMatchesExact) {
  const TruncatedGeometricK dist(0.85, 15);
  for (const std::int64_t x : {0LL, 2LL, 5LL}) {
    const DiscreteDist exact = exact_output_distribution(dist, x, 25);
    const DiscreteDist empirical = empirical_output_distribution(dist, x, 25, 200'000, 9);
    EXPECT_LT(total_variation(exact, empirical), 0.01) << "x=" << x;
  }
}

TEST(OutputDistribution, TruncationAtT) {
  // With t <= smallest possible miss run, everything collapses to m = t.
  const DegenerateK dist(10);
  const DiscreteDist d0 = exact_output_distribution(dist, 0, 5);
  EXPECT_DOUBLE_EQ(d0[5], 1.0);
}

TEST(OutputDistribution, RejectsBadArguments) {
  const UniformK dist(4);
  EXPECT_THROW((void)exact_output_distribution(dist, -1, 5), std::invalid_argument);
  EXPECT_THROW((void)exact_output_distribution(dist, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)empirical_output_distribution(dist, 0, 5, 0, 1), std::invalid_argument);
}

TEST(TotalVariationDist, BasicProperties) {
  const DiscreteDist a{0.5, 0.5, 0.0};
  const DiscreteDist b{0.0, 0.5, 0.5};
  EXPECT_NEAR(total_variation(a, b), 0.5, 1e-12);
  EXPECT_NEAR(total_variation(a, a), 0.0, 1e-12);
  EXPECT_NEAR(total_variation(a, b), total_variation(b, a), 1e-12);
}

TEST(TotalVariationDist, PadsDifferentLengths) {
  const DiscreteDist a{1.0};
  const DiscreteDist b{0.0, 1.0};
  EXPECT_NEAR(total_variation(a, b), 1.0, 1e-12);
}

TEST(DeltaForEpsilon, UniformMatchesTheoremVI1) {
  // Theorem VI.1: Uniform-Random-Cache with domain K gives delta = 2x/K at
  // epsilon = 0, achieved exactly when t is large enough to expose the
  // one-sided outcomes.
  const std::int64_t K = 20;
  const UniformK dist(K);
  for (const std::int64_t x : {1LL, 3LL, 5LL}) {
    const DiscreteDist d0 = exact_output_distribution(dist, 0, K + 5);
    const DiscreteDist dx = exact_output_distribution(dist, x, K + 5);
    EXPECT_NEAR(delta_for_epsilon(d0, dx, 0.0), 2.0 * static_cast<double>(x) / K, 1e-9)
        << "x=" << x;
  }
}

TEST(TotalVariationBound, UniformHoldsForAllProbeCounts) {
  // Data-processing: truncating the view at t probes can only merge
  // outcomes, so TV(t) <= TV(infinity) = x/K for every t. (The exact
  // delta(eps=0) = 2x/K identity, by contrast, needs t >= K: truncation
  // merges outputs with *unequal* masses, which eps = 0 banishes to
  // Omega_2 — see UniformMatchesTheoremVI1.)
  const std::int64_t K = 20;
  const std::int64_t x = 3;
  const UniformK dist(K);
  double prev = 0.0;
  for (std::int64_t t = 1; t <= K + 10; ++t) {
    const DiscreteDist d0 = exact_output_distribution(dist, 0, t);
    const DiscreteDist dx = exact_output_distribution(dist, x, t);
    const double tv = total_variation(d0, dx);
    EXPECT_LE(tv, static_cast<double>(x) / K + 1e-9) << "t=" << t;
    EXPECT_GE(tv, prev - 1e-9) << "more probes can only reveal more, t=" << t;
    prev = tv;
  }
  EXPECT_NEAR(prev, static_cast<double>(x) / K, 1e-9);  // saturates at x/K
}

TEST(DeltaForEpsilon, ExpoMatchesTheoremVI3) {
  // Theorem VI.3: at epsilon = -x ln(alpha), delta <=
  // (1 - a^x + a^{K-x} - a^K) / (1 - a^K).
  const double alpha = 0.9;
  const std::int64_t K = 15;
  const TruncatedGeometricK dist(alpha, K);
  for (const std::int64_t x : {1LL, 2LL, 4LL}) {
    const DiscreteDist d0 = exact_output_distribution(dist, 0, K + 5);
    const DiscreteDist dx = exact_output_distribution(dist, x, K + 5);
    const double eps = -static_cast<double>(x) * std::log(alpha);
    const double bound = expo_privacy(x, alpha, K).delta;
    const double measured = delta_for_epsilon(d0, dx, eps + 1e-9);
    EXPECT_LE(measured, bound + 1e-9) << "x=" << x;
    EXPECT_NEAR(measured, bound, 1e-9) << "x=" << x;  // tight for t > K
  }
}

TEST(DeltaForEpsilon, MonotoneDecreasingInEpsilon) {
  const TruncatedGeometricK dist(0.8, 12);
  const DiscreteDist d0 = exact_output_distribution(dist, 0, 20);
  const DiscreteDist dx = exact_output_distribution(dist, 2, 20);
  double prev = 2.0;
  for (const double eps : {0.0, 0.1, 0.3, 0.5, 1.0}) {
    const double delta = delta_for_epsilon(d0, dx, eps);
    EXPECT_LE(delta, prev + 1e-12);
    prev = delta;
  }
}

TEST(DeltaForEpsilon, IdenticalDistributionsNeedNoBudget) {
  const DiscreteDist d{0.25, 0.75};
  EXPECT_DOUBLE_EQ(delta_for_epsilon(d, d, 0.0), 0.0);
}

TEST(MinEpsilonForDelta, RecoversLogRatio) {
  const DiscreteDist a{0.8, 0.2};
  const DiscreteDist b{0.2, 0.8};
  // With zero budget every outcome must be ratio-bounded: eps = ln 4.
  EXPECT_NEAR(min_epsilon_for_delta(a, b, 0.0), std::log(4.0), 1e-12);
  // Budget >= total mass of both outcomes -> everything can go to Omega_2.
  EXPECT_DOUBLE_EQ(min_epsilon_for_delta(a, b, 2.0), 0.0);
}

TEST(MinEpsilonForDelta, InfiniteWhenOneSidedMassExceedsBudget) {
  const DiscreteDist a{1.0, 0.0};
  const DiscreteDist b{0.0, 1.0};
  EXPECT_TRUE(std::isinf(min_epsilon_for_delta(a, b, 0.5)));
  EXPECT_DOUBLE_EQ(min_epsilon_for_delta(a, b, 2.0), 0.0);
}

TEST(MinEpsilonForDelta, ConsistentWithDeltaForEpsilon) {
  const TruncatedGeometricK dist(0.85, 10);
  const DiscreteDist d0 = exact_output_distribution(dist, 0, 15);
  const DiscreteDist dx = exact_output_distribution(dist, 2, 15);
  for (const double delta : {0.2, 0.4, 0.6}) {
    const double eps = min_epsilon_for_delta(d0, dx, delta);
    if (!std::isinf(eps)) {
      EXPECT_LE(delta_for_epsilon(d0, dx, eps + 1e-9), delta + 1e-9);
    }
  }
}

// Property sweep over distributions and states: exact distributions honor
// the theorem bounds everywhere.
struct GameParams {
  double alpha;  // 0 = uniform
  std::int64_t domain;
  std::int64_t x;
};

class PrivacyGameSweep : public ::testing::TestWithParam<GameParams> {};

TEST_P(PrivacyGameSweep, TheoremBudgetsHold) {
  const auto [alpha, domain, x] = GetParam();
  std::unique_ptr<KDistribution> dist;
  PrivacyBudget bound;
  if (alpha == 0.0) {
    dist = std::make_unique<UniformK>(domain);
    bound = uniform_privacy(x, domain);
  } else {
    dist = std::make_unique<TruncatedGeometricK>(alpha, domain);
    bound = expo_privacy(x, alpha, domain);
  }
  const DiscreteDist d0 = exact_output_distribution(*dist, 0, domain + 8);
  const DiscreteDist dx = exact_output_distribution(*dist, x, domain + 8);
  EXPECT_LE(delta_for_epsilon(d0, dx, bound.epsilon + 1e-9), bound.delta + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PrivacyGameSweep,
    ::testing::Values(GameParams{0.0, 10, 1}, GameParams{0.0, 50, 5}, GameParams{0.0, 200, 5},
                      GameParams{0.9, 20, 1}, GameParams{0.9, 20, 5}, GameParams{0.99, 100, 5},
                      GameParams{0.5, 8, 2}),
    [](const auto& info) {
      return "a" + std::to_string(static_cast<int>(info.param.alpha * 100)) + "_K" +
             std::to_string(info.param.domain) + "_x" + std::to_string(info.param.x);
    });

}  // namespace
}  // namespace ndnp::core
