#include "ndn/packet.hpp"

#include <gtest/gtest.h>

#include "crypto/hmac.hpp"

namespace ndnp::ndn {
namespace {

Interest interest_for(const char* uri) {
  Interest interest;
  interest.name = Name(uri);
  return interest;
}

TEST(NameMarkedPrivate, LastComponentMarker) {
  EXPECT_TRUE(name_marked_private(Name("/alice/mail/private")));
  EXPECT_FALSE(name_marked_private(Name("/alice/private/mail")));
  EXPECT_FALSE(name_marked_private(Name("/alice/mail")));
  EXPECT_FALSE(name_marked_private(Name()));
}

TEST(Data, SatisfiesPrefixInterest) {
  Data data;
  data.name = Name("/cnn/news/2013may20");
  EXPECT_TRUE(data.satisfies(interest_for("/cnn/news/2013may20")));
  EXPECT_TRUE(data.satisfies(interest_for("/cnn/news")));
  EXPECT_TRUE(data.satisfies(interest_for("/")));
  EXPECT_FALSE(data.satisfies(interest_for("/cnn/sports")));
  EXPECT_FALSE(data.satisfies(interest_for("/cnn/news/2013may20/extra")));
}

TEST(Data, ExactMatchOnlyRequiresFullName) {
  // Footnote 5: content with a rand component must not answer interests
  // for its prefix.
  Data data;
  data.name = Name("/alice/skype/0/rand123");
  data.exact_match_only = true;
  EXPECT_TRUE(data.satisfies(interest_for("/alice/skype/0/rand123")));
  EXPECT_FALSE(data.satisfies(interest_for("/alice/skype/0")));
  EXPECT_FALSE(data.satisfies(interest_for("/alice/skype")));
}

TEST(Data, ProducerMarkedPrivateByBitOrName) {
  Data by_bit;
  by_bit.name = Name("/a/b");
  by_bit.producer_private = true;
  EXPECT_TRUE(by_bit.producer_marked_private());

  Data by_name;
  by_name.name = Name("/a/b/private");
  EXPECT_TRUE(by_name.producer_marked_private());

  Data neither;
  neither.name = Name("/a/b");
  EXPECT_FALSE(neither.producer_marked_private());
}

TEST(Interest, WireSizeGrowsWithName) {
  Interest small = interest_for("/a");
  Interest large = interest_for("/a/very/long/name/with/many/components");
  EXPECT_GT(large.wire_size(), small.wire_size());
}

TEST(Interest, WireSizeIncludesScope) {
  Interest plain = interest_for("/a");
  Interest scoped = interest_for("/a");
  scoped.scope = 2;
  EXPECT_GT(scoped.wire_size(), plain.wire_size());
}

TEST(Data, WireSizeIncludesPayload) {
  Data small;
  small.name = Name("/a");
  Data large = small;
  large.payload = std::string(4096, 'x');
  EXPECT_GE(large.wire_size(), small.wire_size() + 4096);
}

TEST(MakeData, ProducesVerifiableSignature) {
  const Data data = make_data(Name("/alice/photo/1"), "bytes", "alice", "alice-key");
  EXPECT_EQ(data.name.to_uri(), "/alice/photo/1");
  EXPECT_EQ(data.payload, "bytes");
  EXPECT_EQ(data.producer, "alice");
  EXPECT_FALSE(data.producer_private);
  EXPECT_TRUE(crypto::verify_content("alice-key", "/alice/photo/1", "bytes", data.signature));
  EXPECT_FALSE(crypto::verify_content("mallory-key", "/alice/photo/1", "bytes", data.signature));
}

TEST(MakeData, PrivateFlagCarried) {
  const Data data = make_data(Name("/a"), "p", "prod", "k", /*producer_private=*/true);
  EXPECT_TRUE(data.producer_private);
  EXPECT_TRUE(data.producer_marked_private());
}

}  // namespace
}  // namespace ndnp::ndn
