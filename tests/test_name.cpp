#include "ndn/name.hpp"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

namespace ndnp::ndn {
namespace {

TEST(Name, DefaultIsRoot) {
  const Name root;
  EXPECT_TRUE(root.empty());
  EXPECT_EQ(root.size(), 0u);
  EXPECT_EQ(root.to_uri(), "/");
}

TEST(Name, ParsesUri) {
  const Name name("/cnn/news/2013may20");
  ASSERT_EQ(name.size(), 3u);
  EXPECT_EQ(name.at(0), "cnn");
  EXPECT_EQ(name.at(1), "news");
  EXPECT_EQ(name.at(2), "2013may20");
  EXPECT_EQ(name.last(), "2013may20");
}

TEST(Name, RootUriFormsParse) {
  EXPECT_TRUE(Name("/").empty());
  EXPECT_TRUE(Name("").empty());
}

TEST(Name, TrailingSlashTolerated) {
  EXPECT_EQ(Name("/a/b/"), Name("/a/b"));
}

TEST(Name, RejectsMalformedUris) {
  EXPECT_THROW(Name("no-leading-slash"), std::invalid_argument);
  EXPECT_THROW(Name("/a//b"), std::invalid_argument);
}

TEST(Name, RoundTripsThroughUri) {
  for (const char* uri : {"/a", "/a/b/c", "/youtube/alice/video-749.avi/137"}) {
    EXPECT_EQ(Name(uri).to_uri(), uri);
  }
}

TEST(Name, InitializerListAndVectorConstruction) {
  const Name a{"a", "b"};
  EXPECT_EQ(a.to_uri(), "/a/b");
  const Name b(std::vector<std::string>{"x", "y", "z"});
  EXPECT_EQ(b.to_uri(), "/x/y/z");
}

TEST(Name, ConstructionValidatesComponents) {
  EXPECT_THROW(Name({"ok", ""}), std::invalid_argument);
  EXPECT_THROW(Name({"with/slash"}), std::invalid_argument);
  EXPECT_THROW(Name(std::vector<std::string>{""}), std::invalid_argument);
}

TEST(Name, AppendReturnsNewName) {
  const Name base("/a");
  const Name extended = base.append("b");
  EXPECT_EQ(base.to_uri(), "/a");
  EXPECT_EQ(extended.to_uri(), "/a/b");
  EXPECT_THROW((void)base.append("x/y"), std::invalid_argument);
  EXPECT_THROW((void)base.append(""), std::invalid_argument);
}

TEST(Name, AppendNumber) {
  EXPECT_EQ(Name("/seg").append_number(0).to_uri(), "/seg/0");
  EXPECT_EQ(Name("/seg").append_number(137).to_uri(), "/seg/137");
}

TEST(Name, PrefixAndParent) {
  const Name name("/a/b/c");
  EXPECT_EQ(name.prefix(0), Name());
  EXPECT_EQ(name.prefix(2).to_uri(), "/a/b");
  EXPECT_EQ(name.prefix(99), name);  // clamped
  EXPECT_EQ(name.parent().to_uri(), "/a/b");
  EXPECT_EQ(Name().parent(), Name());
}

TEST(Name, IsPrefixOfSemantics) {
  const Name root;
  const Name ab("/a/b");
  const Name abc("/a/b/c");
  EXPECT_TRUE(root.is_prefix_of(abc));
  EXPECT_TRUE(ab.is_prefix_of(abc));
  EXPECT_TRUE(ab.is_prefix_of(ab));  // non-strict
  EXPECT_FALSE(abc.is_prefix_of(ab));
  EXPECT_FALSE(Name("/a/x").is_prefix_of(abc));
}

TEST(Name, PrefixRequiresComponentBoundaries) {
  // "/cnn/new" is NOT a prefix of "/cnn/news": components are atomic.
  EXPECT_FALSE(Name("/cnn/new").is_prefix_of(Name("/cnn/news")));
}

TEST(Name, EqualityAndOrdering) {
  EXPECT_EQ(Name("/a/b"), Name({"a", "b"}));
  EXPECT_NE(Name("/a/b"), Name("/a/c"));
  EXPECT_LT(Name("/a"), Name("/a/b"));  // prefix sorts first
  EXPECT_LT(Name("/a/b"), Name("/a/c"));
}

TEST(Name, PrefixRangeIsContiguousUnderOrdering) {
  // The ContentStore relies on: all names with prefix P sort contiguously
  // starting at lower_bound(P).
  std::map<Name, int> names;
  for (const char* uri : {"/a", "/a/b", "/a/b/c", "/a/c", "/ab", "/b", "/a/b/d"})
    names[Name(uri)] = 1;
  const Name prefix("/a/b");
  auto it = names.lower_bound(prefix);
  std::size_t matched = 0;
  for (; it != names.end() && prefix.is_prefix_of(it->first); ++it) ++matched;
  EXPECT_EQ(matched, 3u);  // /a/b, /a/b/c, /a/b/d
  // And nothing after the contiguous block matches.
  for (; it != names.end(); ++it) EXPECT_FALSE(prefix.is_prefix_of(it->first));
}

TEST(Name, Hash64IsStableAndBoundarySensitive) {
  EXPECT_EQ(Name("/a/b").hash64(), Name("/a/b").hash64());
  EXPECT_NE(Name({"ab", "c"}).hash64(), Name({"a", "bc"}).hash64());
  EXPECT_NE(Name("/a").hash64(), Name("/a/a").hash64());
}

TEST(Name, StdHashUsable) {
  std::unordered_set<Name> set;
  set.insert(Name("/a/b"));
  set.insert(Name("/a/b"));
  set.insert(Name("/a/c"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Name, HashHasNoEasyCollisions) {
  std::unordered_set<std::uint64_t> hashes;
  for (int i = 0; i < 10'000; ++i)
    hashes.insert(Name("/test").append_number(static_cast<std::uint64_t>(i)).hash64());
  EXPECT_EQ(hashes.size(), 10'000u);
}

}  // namespace
}  // namespace ndnp::ndn

namespace ndnp::ndn {
namespace {

TEST(NameEscaping, BinaryComponentsRoundTripThroughUri) {
  const Name name{std::string("\x01 \xff%q", 5), "plain"};
  const Name parsed(name.to_uri());
  EXPECT_EQ(parsed, name);
}

TEST(NameEscaping, EscapesControlSpacePercentAndHighBytes) {
  const Name name{std::string("a b", 3)};
  EXPECT_EQ(name.to_uri(), "/a%20b");
  const Name pct{std::string("50%", 3)};
  EXPECT_EQ(pct.to_uri(), "/50%25");
  const Name high{std::string("\xff", 1)};
  EXPECT_EQ(high.to_uri(), "/%FF");
}

TEST(NameEscaping, PlainComponentsUnchanged) {
  EXPECT_EQ(Name("/cnn/news/2013may20").to_uri(), "/cnn/news/2013may20");
  EXPECT_EQ(Name({"video-749.avi", "137"}).to_uri(), "/video-749.avi/137");
}

TEST(NameEscaping, DecodesBothHexCases) {
  EXPECT_EQ(Name("/%2a").at(0), "*");
  EXPECT_EQ(Name("/%2A").at(0), "*");
}

TEST(NameEscaping, RejectsMalformedEscapes) {
  EXPECT_THROW(Name("/a%2"), std::invalid_argument);   // truncated
  EXPECT_THROW(Name("/a%zz"), std::invalid_argument);  // bad hex
  EXPECT_THROW(Name("/%"), std::invalid_argument);
}

TEST(NameEscaping, EscapedSlashRejected) {
  // Components never contain '/': the constructors enforce it, and the
  // URI parser refuses to smuggle one in through %2F.
  EXPECT_THROW(Name("/a%2Fb"), std::invalid_argument);
  EXPECT_THROW(Name("/a%2fb"), std::invalid_argument);
}

}  // namespace
}  // namespace ndnp::ndn
