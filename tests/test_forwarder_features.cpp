// Tests for the extended forwarder features: freshness/MustBeFresh,
// per-interest lifetimes, PIT capacity, multipath strategies and cache
// admission control.
#include <gtest/gtest.h>

#include <optional>

#include "sim/apps.hpp"
#include "sim/forwarder.hpp"

namespace ndnp::sim {
namespace {

LinkConfig fixed_link(double latency_ms) {
  LinkConfig cfg;
  cfg.latency = util::millis_f(latency_ms);
  return cfg;
}

util::SimDuration fetch(Consumer& consumer, Scheduler& sched, ndn::Interest interest) {
  std::optional<util::SimDuration> rtt;
  consumer.express_interest(std::move(interest),
                            [&rtt](const ndn::Data&, util::SimDuration r) { rtt = r; });
  while (!rtt && sched.run_one()) {
  }
  EXPECT_TRUE(rtt.has_value());
  return rtt.value_or(-1);
}

ndn::Interest plain(const std::string& uri) {
  ndn::Interest interest;
  interest.name = ndn::Name(uri);
  return interest;
}

struct Line {
  Scheduler sched;
  std::optional<Consumer> consumer;
  std::optional<Forwarder> router;
  std::optional<Producer> producer;

  explicit Line(ForwarderConfig cfg = {}, ProducerConfig pcfg = {}) {
    cfg.cs_capacity = 0;
    cfg.processing_delay = util::micros(10);
    consumer.emplace(sched, "C", 1);
    router.emplace(sched, "R", cfg);
    producer.emplace(sched, "P", ndn::Name("/p"), "key", pcfg, 2);
    connect(*consumer, *router, fixed_link(1.0));
    const auto [rp, pr] = connect(*router, *producer, fixed_link(2.0));
    (void)pr;
    router->add_route(ndn::Name("/p"), rp);
  }
};

TEST(Freshness, StaleEntryInvisibleToMustBeFresh) {
  Line net;
  ndn::Data short_lived = ndn::make_data(ndn::Name("/p/frame"), "v1", "P", "key");
  short_lived.freshness_period = util::millis(10);
  net.producer->publish(short_lived);

  (void)fetch(*net.consumer, net.sched, plain("/p/frame"));  // cache at R
  net.sched.run_until(net.sched.now() + util::millis(50));   // let it go stale

  ndn::Interest fresh_only = plain("/p/frame");
  fresh_only.must_be_fresh = true;
  const util::SimDuration rtt = fetch(*net.consumer, net.sched, fresh_only);
  EXPECT_GT(rtt, util::millis(5));  // fetched from the producer again
  EXPECT_EQ(net.producer->interests_served(), 2u);
}

TEST(Freshness, StaleEntryStillServesPlainInterests) {
  Line net;
  ndn::Data short_lived = ndn::make_data(ndn::Name("/p/frame"), "v1", "P", "key");
  short_lived.freshness_period = util::millis(10);
  net.producer->publish(short_lived);

  (void)fetch(*net.consumer, net.sched, plain("/p/frame"));
  net.sched.run_until(net.sched.now() + util::millis(50));
  const util::SimDuration rtt = fetch(*net.consumer, net.sched, plain("/p/frame"));
  EXPECT_LE(rtt, util::millis(3));  // served stale from R's cache
  EXPECT_EQ(net.producer->interests_served(), 1u);
}

TEST(Freshness, FreshEntrySatisfiesMustBeFresh) {
  Line net;
  ndn::Data long_lived = ndn::make_data(ndn::Name("/p/doc"), "v1", "P", "key");
  long_lived.freshness_period = util::seconds(60);
  net.producer->publish(long_lived);

  (void)fetch(*net.consumer, net.sched, plain("/p/doc"));
  ndn::Interest fresh_only = plain("/p/doc");
  fresh_only.must_be_fresh = true;
  const util::SimDuration rtt = fetch(*net.consumer, net.sched, fresh_only);
  EXPECT_LE(rtt, util::millis(3));
}

TEST(Freshness, NoFreshnessPeriodMeansAlwaysFresh) {
  cache::Entry entry;
  entry.data.name = ndn::Name("/a");
  entry.meta.inserted_at = 0;
  EXPECT_TRUE(entry.fresh_at(std::numeric_limits<util::SimTime>::max() / 2));
  entry.data.freshness_period = util::millis(5);
  EXPECT_TRUE(entry.fresh_at(util::millis(5)));
  EXPECT_FALSE(entry.fresh_at(util::millis(6)));
}

TEST(InterestLifetime, OverridesRouterDefault) {
  ForwarderConfig cfg;
  cfg.pit_timeout = util::seconds(10);
  ProducerConfig pcfg;
  pcfg.auto_generate = false;  // never answers
  Line net(cfg, pcfg);

  ndn::Interest interest = plain("/p/never");
  interest.lifetime = util::millis(30);
  net.consumer->express_interest(interest, [](const ndn::Data&, util::SimDuration) {
    FAIL() << "no data expected";
  });
  net.sched.run_until(util::millis(100));
  EXPECT_EQ(net.router->pit_size(), 0u);  // expired at 30 ms, not 10 s
  EXPECT_EQ(net.router->stats().pit_expirations, 1u);
}

TEST(PitCapacity, OverflowingInterestsDropped) {
  ForwarderConfig cfg;
  cfg.pit_capacity = 3;
  ProducerConfig pcfg;
  pcfg.auto_generate = false;
  Line net(cfg, pcfg);

  for (int i = 0; i < 8; ++i) {
    net.consumer->fetch(ndn::Name("/p/x").append_number(static_cast<std::uint64_t>(i)),
                        [](const ndn::Data&, util::SimDuration) {});
  }
  net.sched.run_until(util::millis(10));
  EXPECT_EQ(net.router->pit_size(), 3u);
  EXPECT_EQ(net.router->stats().pit_overflows, 5u);
}

TEST(Admission, ZeroProbabilityNeverCaches) {
  ForwarderConfig cfg;
  cfg.cache_admission_probability = 0.0;
  Line net(cfg);
  (void)fetch(*net.consumer, net.sched, plain("/p/x"));
  (void)fetch(*net.consumer, net.sched, plain("/p/x"));
  EXPECT_EQ(net.router->cs().size(), 0u);
  EXPECT_EQ(net.router->stats().admission_skips, 2u);
  EXPECT_EQ(net.producer->interests_served(), 2u);  // every request goes upstream
}

TEST(Admission, PartialProbabilityCachesSome) {
  ForwarderConfig cfg;
  cfg.cache_admission_probability = 0.5;
  cfg.seed = 7;
  Line net(cfg);
  for (int i = 0; i < 40; ++i)
    (void)fetch(*net.consumer, net.sched,
                plain("/p/obj" + std::to_string(i)));
  EXPECT_GT(net.router->cs().size(), 5u);
  EXPECT_LT(net.router->cs().size(), 35u);
  EXPECT_EQ(net.router->cs().size() + net.router->stats().admission_skips, 40u);
}

struct TwoPathNet {
  Scheduler sched;
  std::optional<Consumer> consumer;
  std::optional<Forwarder> router;
  std::optional<Producer> producer_a;
  std::optional<Producer> producer_b;

  explicit TwoPathNet(ForwardingStrategy strategy) {
    ForwarderConfig cfg;
    cfg.cs_capacity = 0;
    cfg.strategy = strategy;
    consumer.emplace(sched, "C", 1);
    router.emplace(sched, "R", cfg);
    producer_a.emplace(sched, "PA", ndn::Name("/p"), "key-a", ProducerConfig{}, 2);
    producer_b.emplace(sched, "PB", ndn::Name("/p"), "key-b", ProducerConfig{}, 3);
    connect(*consumer, *router, fixed_link(1.0));
    const auto [ra, af] = connect(*router, *producer_a, fixed_link(2.0));
    const auto [rb, bf] = connect(*router, *producer_b, fixed_link(2.0));
    (void)af;
    (void)bf;
    router->add_route(ndn::Name("/p"), ra);
    router->add_route(ndn::Name("/p"), rb);
  }
};

TEST(Strategy, BestRouteUsesFirstRegisteredHop) {
  TwoPathNet net(ForwardingStrategy::kBestRoute);
  for (int i = 0; i < 5; ++i)
    (void)fetch(*net.consumer, net.sched, plain("/p/x" + std::to_string(i)));
  EXPECT_EQ(net.producer_a->interests_served(), 5u);
  EXPECT_EQ(net.producer_b->interests_served(), 0u);
}

TEST(Strategy, RoundRobinAlternatesHops) {
  TwoPathNet net(ForwardingStrategy::kRoundRobin);
  for (int i = 0; i < 6; ++i)
    (void)fetch(*net.consumer, net.sched, plain("/p/x" + std::to_string(i)));
  EXPECT_EQ(net.producer_a->interests_served(), 3u);
  EXPECT_EQ(net.producer_b->interests_served(), 3u);
}

TEST(Strategy, MulticastAsksEveryHopOnce) {
  TwoPathNet net(ForwardingStrategy::kMulticast);
  (void)fetch(*net.consumer, net.sched, plain("/p/x"));
  net.sched.run();  // drain the second (late) reply
  EXPECT_EQ(net.producer_a->interests_served(), 1u);
  EXPECT_EQ(net.producer_b->interests_served(), 1u);
  // The second copy arrives after the PIT entry was consumed: unsolicited.
  EXPECT_EQ(net.router->stats().unsolicited_data, 1u);
  EXPECT_EQ(net.consumer->data_received(), 1u);
}

TEST(Strategy, Names) {
  EXPECT_EQ(to_string(ForwardingStrategy::kBestRoute), "best-route");
  EXPECT_EQ(to_string(ForwardingStrategy::kRoundRobin), "round-robin");
  EXPECT_EQ(to_string(ForwardingStrategy::kMulticast), "multicast");
}

TEST(AddRoute, DuplicateRegistrationIgnored) {
  Scheduler sched;
  ForwarderConfig cfg;
  Forwarder router(sched, "R", cfg);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 1);
  const auto [rp, pr] = connect(router, producer, fixed_link(1.0));
  (void)pr;
  router.add_route(ndn::Name("/p"), rp);
  router.add_route(ndn::Name("/p"), rp);  // duplicate
  Consumer consumer(sched, "C", 2);
  connect(consumer, router, fixed_link(1.0));
  // Multicast over the deduplicated FIB still sends exactly one interest.
  (void)fetch(consumer, sched, plain("/p/x"));
  EXPECT_EQ(producer.interests_served(), 1u);
}

TEST(Nack, NoRouteNackReachesConsumer) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Forwarder router(sched, "R", {});  // no routes at all
  connect(consumer, router, fixed_link(1.0));

  std::optional<ndn::NackReason> reason;
  ndn::Interest interest = plain("/nowhere/x");
  consumer.express_interest(
      interest, [](const ndn::Data&, util::SimDuration) { FAIL() << "no data expected"; }, 0,
      0, {}, [&reason](const ndn::Nack& nack) { reason = nack.reason; });
  sched.run();
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, ndn::NackReason::kNoRoute);
  EXPECT_EQ(consumer.outstanding(), 0u);
  EXPECT_EQ(consumer.nacks_received(), 1u);
  EXPECT_EQ(router.stats().nacks_sent, 1u);
}

TEST(Nack, PitOverflowNacked) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  ForwarderConfig cfg;
  cfg.pit_capacity = 1;
  Forwarder router(sched, "R", cfg);
  ProducerConfig pcfg;
  pcfg.auto_generate = false;  // keeps the first PIT entry pending
  Producer producer(sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  connect(consumer, router, fixed_link(1.0));
  const auto [rp, pr] = connect(router, producer, fixed_link(1.0));
  (void)pr;
  router.add_route(ndn::Name("/p"), rp);

  int nacks = 0;
  for (int i = 0; i < 3; ++i) {
    consumer.express_interest(
        plain("/p/x" + std::to_string(i)), [](const ndn::Data&, util::SimDuration) {}, 0, 0,
        {}, [&nacks](const ndn::Nack& nack) {
          EXPECT_EQ(nack.reason, ndn::NackReason::kPitOverflow);
          ++nacks;
        });
  }
  sched.run_until(util::millis(50));
  EXPECT_EQ(nacks, 2);  // first interest occupies the single PIT slot
}

TEST(Nack, PropagatesThroughIntermediateRouter) {
  // Consumer -> R1 -> R2; R2 has no route: its NACK must travel back via
  // R1 (flushing R1's PIT entry) to the consumer.
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Forwarder r1(sched, "R1", {});
  Forwarder r2(sched, "R2", {});
  connect(consumer, r1, fixed_link(1.0));
  const auto [r1_up, r2_down] = connect(r1, r2, fixed_link(1.0));
  (void)r2_down;
  r1.add_route(ndn::Name("/p"), r1_up);

  bool nacked = false;
  consumer.express_interest(
      plain("/p/x"), [](const ndn::Data&, util::SimDuration) { FAIL(); }, 0, 0, {},
      [&nacked](const ndn::Nack&) { nacked = true; });
  sched.run_until(util::millis(100));
  EXPECT_TRUE(nacked);
  EXPECT_EQ(r1.pit_size(), 0u);
  EXPECT_EQ(r1.stats().nacks_received, 1u);
  EXPECT_GE(r1.stats().nacks_sent, 1u);
}

TEST(Nack, DisabledNacksStaySilent) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  ForwarderConfig cfg;
  cfg.send_nacks = false;
  Forwarder router(sched, "R", cfg);
  connect(consumer, router, fixed_link(1.0));

  bool nacked = false;
  consumer.express_interest(
      plain("/nowhere/x"), [](const ndn::Data&, util::SimDuration) {}, 0, 0, {},
      [&nacked](const ndn::Nack&) { nacked = true; });
  sched.run();
  EXPECT_FALSE(nacked);
  EXPECT_EQ(router.stats().no_route_drops, 1u);
  EXPECT_EQ(router.stats().nacks_sent, 0u);
}

TEST(Nack, ReasonNames) {
  EXPECT_EQ(ndn::to_string(ndn::NackReason::kNoRoute), "no-route");
  EXPECT_EQ(ndn::to_string(ndn::NackReason::kPitOverflow), "pit-overflow");
  EXPECT_EQ(ndn::to_string(ndn::NackReason::kDuplicate), "duplicate");
}

TEST(QueueingLink, PacketsSerializeBehindEachOther) {
  // Two back-to-back data fetches over a slow FIFO link: the second
  // payload queues behind the first, so its RTT is strictly larger.
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  ProducerConfig pcfg;
  pcfg.payload_size = 12'500;  // 100 kbit
  pcfg.processing_delay = 0;
  Producer producer(sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  LinkConfig slow = fixed_link(1.0);
  slow.bandwidth_bps = 10e6;  // 100 kbit takes 10 ms
  slow.fifo_queue = true;
  connect(consumer, producer, slow);

  std::vector<util::SimDuration> rtts;
  consumer.fetch(ndn::Name("/p/a"),
                 [&rtts](const ndn::Data&, util::SimDuration r) { rtts.push_back(r); });
  consumer.fetch(ndn::Name("/p/b"),
                 [&rtts](const ndn::Data&, util::SimDuration r) { rtts.push_back(r); });
  sched.run();
  ASSERT_EQ(rtts.size(), 2u);
  // First: ~2 ms propagation + ~10 ms transmission. Second: waits ~10 ms
  // more for the first transmission to finish.
  EXPECT_GT(rtts[1], rtts[0] + util::millis(8));
}

TEST(QueueingLink, NoQueueingWithoutFlag) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  ProducerConfig pcfg;
  pcfg.payload_size = 12'500;
  pcfg.processing_delay = 0;
  Producer producer(sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  LinkConfig slow = fixed_link(1.0);
  slow.bandwidth_bps = 10e6;
  connect(consumer, producer, slow);

  std::vector<util::SimDuration> rtts;
  consumer.fetch(ndn::Name("/p/a"),
                 [&rtts](const ndn::Data&, util::SimDuration r) { rtts.push_back(r); });
  consumer.fetch(ndn::Name("/p/b"),
                 [&rtts](const ndn::Data&, util::SimDuration r) { rtts.push_back(r); });
  sched.run();
  ASSERT_EQ(rtts.size(), 2u);
  EXPECT_LT(rtts[1] - rtts[0], util::millis(1));  // near-identical, no queueing
}

}  // namespace
}  // namespace ndnp::sim
