// Routing-topology integration tests beyond simple chains: rings (loop
// suppression), diamonds (multipath + duplicate handling) and trees
// (aggregation + collapsing across branches).
#include <gtest/gtest.h>

#include <optional>

#include "sim/apps.hpp"
#include "sim/forwarder.hpp"

namespace ndnp::sim {
namespace {

LinkConfig fixed_link(double latency_ms) {
  LinkConfig cfg;
  cfg.latency = util::millis_f(latency_ms);
  return cfg;
}

ForwarderConfig router_config(std::uint64_t seed) {
  ForwarderConfig cfg;
  cfg.cs_capacity = 0;
  cfg.pit_timeout = util::millis(300);
  cfg.seed = seed;
  return cfg;
}

TEST(RingTopology, LoopingInterestSuppressedByNonce) {
  // R1 -> R2 -> R3 -> R1 default routes: an interest for an unserved name
  // circulates once and dies at the nonce check; no router melts down.
  Scheduler sched;
  Forwarder r1(sched, "R1", router_config(1));
  Forwarder r2(sched, "R2", router_config(2));
  Forwarder r3(sched, "R3", router_config(3));
  Consumer consumer(sched, "C", 4);

  connect(consumer, r1, fixed_link(0.5));               // C = face 0 of R1
  const auto [r1_to_r2, r2_from_r1] = connect(r1, r2, fixed_link(1.0));
  const auto [r2_to_r3, r3_from_r2] = connect(r2, r3, fixed_link(1.0));
  const auto [r3_to_r1, r1_from_r3] = connect(r3, r1, fixed_link(1.0));
  (void)r2_from_r1;
  (void)r3_from_r2;
  (void)r1_from_r3;
  r1.add_route(ndn::Name(), r1_to_r2);
  r2.add_route(ndn::Name(), r2_to_r3);
  r3.add_route(ndn::Name(), r3_to_r1);

  bool got_data = false;
  consumer.fetch(ndn::Name("/phantom/content"),
                 [&got_data](const ndn::Data&, util::SimDuration) { got_data = true; });
  sched.run();

  EXPECT_FALSE(got_data);
  EXPECT_EQ(r1.stats().nonce_drops, 1u);  // the loop closed exactly once
  EXPECT_EQ(r1.stats().forwarded_interests, 1u);
  EXPECT_EQ(r2.stats().forwarded_interests, 1u);
  EXPECT_EQ(r3.stats().forwarded_interests, 1u);
  // All PIT entries eventually time out.
  EXPECT_EQ(r1.pit_size(), 0u);
  EXPECT_EQ(r2.pit_size(), 0u);
  EXPECT_EQ(r3.pit_size(), 0u);
}

TEST(DiamondTopology, MulticastFetchesViaBothArmsAndConsumerGetsOneCopy) {
  //        .-- A --.
  //  C -- R          P
  //        '-- B --' 
  Scheduler sched;
  ForwarderConfig ingress_cfg = router_config(1);
  ingress_cfg.strategy = ForwardingStrategy::kMulticast;
  Forwarder ingress(sched, "R", ingress_cfg);
  Forwarder arm_a(sched, "A", router_config(2));
  Forwarder arm_b(sched, "B", router_config(3));
  Consumer consumer(sched, "C", 4);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 5);

  connect(consumer, ingress, fixed_link(0.5));
  const auto [r_a, a_r] = connect(ingress, arm_a, fixed_link(1.0));
  const auto [r_b, b_r] = connect(ingress, arm_b, fixed_link(3.0));  // slower arm
  const auto [a_p, p_a] = connect(arm_a, producer, fixed_link(1.0));
  const auto [b_p, p_b] = connect(arm_b, producer, fixed_link(1.0));
  (void)a_r;
  (void)b_r;
  (void)p_a;
  (void)p_b;
  ingress.add_route(ndn::Name("/p"), r_a);
  ingress.add_route(ndn::Name("/p"), r_b);
  arm_a.add_route(ndn::Name("/p"), a_p);
  arm_b.add_route(ndn::Name("/p"), b_p);

  int copies = 0;
  util::SimDuration rtt = 0;
  consumer.fetch(ndn::Name("/p/x"), [&](const ndn::Data&, util::SimDuration r) {
    ++copies;
    rtt = r;
  });
  sched.run();

  EXPECT_EQ(copies, 1);                           // PIT dedups the second copy
  EXPECT_EQ(producer.interests_served(), 2u);     // both arms asked
  EXPECT_LE(rtt, util::millis(6));                // served via the fast arm
  EXPECT_EQ(ingress.stats().unsolicited_data, 1u);  // late copy dropped
}

TEST(DiamondTopology, BestRouteFailoverViaSecondArmAfterNack) {
  // Arm A has no route to P (NACKs); with round-robin the retry lands on
  // arm B and succeeds — NACK + multipath gives cheap failover.
  Scheduler sched;
  ForwarderConfig ingress_cfg = router_config(1);
  ingress_cfg.strategy = ForwardingStrategy::kRoundRobin;
  Forwarder ingress(sched, "R", ingress_cfg);
  Forwarder arm_a(sched, "A", router_config(2));  // no route added: dead end
  Forwarder arm_b(sched, "B", router_config(3));
  Consumer consumer(sched, "C", 4);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 5);

  connect(consumer, ingress, fixed_link(0.5));
  const auto [r_a, a_r] = connect(ingress, arm_a, fixed_link(1.0));
  const auto [r_b, b_r] = connect(ingress, arm_b, fixed_link(1.0));
  const auto [b_p, p_b] = connect(arm_b, producer, fixed_link(1.0));
  (void)a_r;
  (void)b_r;
  (void)p_b;
  ingress.add_route(ndn::Name("/p"), r_a);
  ingress.add_route(ndn::Name("/p"), r_b);
  arm_b.add_route(ndn::Name("/p"), b_p);

  // First fetch goes via arm A and gets NACKed back.
  bool nacked = false;
  consumer.express_interest(
      []{ ndn::Interest i; i.name = ndn::Name("/p/x"); return i; }(),
      [](const ndn::Data&, util::SimDuration) { FAIL() << "arm A cannot deliver"; }, 0, 0, {},
      [&nacked](const ndn::Nack&) { nacked = true; });
  sched.run();
  EXPECT_TRUE(nacked);

  // Retry rotates to arm B.
  bool got = false;
  consumer.fetch(ndn::Name("/p/x"), [&got](const ndn::Data&, util::SimDuration) { got = true; });
  sched.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(producer.interests_served(), 1u);
}

TEST(TreeTopology, CollapsingAggregatesAcrossBranches) {
  // Four leaves under two edges under one core: near-simultaneous requests
  // for one name from all leaves reach the producer exactly once.
  Scheduler sched;
  Forwarder core(sched, "core", router_config(1));
  Forwarder edge1(sched, "E1", router_config(2));
  Forwarder edge2(sched, "E2", router_config(3));
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 4);
  std::vector<std::unique_ptr<Consumer>> leaves;

  const auto [c_p, p_c] = connect(core, producer, fixed_link(4.0));
  (void)p_c;
  core.add_route(ndn::Name("/p"), c_p);
  for (Forwarder* edge : {&edge1, &edge2}) {
    const auto [e_c, c_e] = connect(*edge, core, fixed_link(1.0));
    (void)c_e;
    edge->add_route(ndn::Name("/p"), e_c);
  }
  for (int i = 0; i < 4; ++i) {
    leaves.push_back(std::make_unique<Consumer>(sched, "L" + std::to_string(i),
                                                static_cast<std::uint64_t>(10 + i)));
    connect(*leaves.back(), i < 2 ? edge1 : edge2, fixed_link(0.3));
  }

  int delivered = 0;
  for (auto& leaf : leaves)
    leaf->fetch(ndn::Name("/p/live/segment1"),
                [&delivered](const ndn::Data&, util::SimDuration) { ++delivered; });
  sched.run();

  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(producer.interests_served(), 1u);  // full aggregation
  EXPECT_EQ(edge1.stats().collapsed_interests, 1u);
  EXPECT_EQ(edge2.stats().collapsed_interests, 1u);
  EXPECT_EQ(core.stats().collapsed_interests, 1u);
}

TEST(TreeTopology, SecondWaveServedFromEdgeCaches) {
  Scheduler sched;
  ForwarderConfig cfg = router_config(1);
  cfg.cs_capacity = 100;
  Forwarder core(sched, "core", cfg);
  Forwarder edge(sched, "E", cfg);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  Consumer first(sched, "C1", 3);
  Consumer second(sched, "C2", 4);

  const auto [c_p, p_c] = connect(core, producer, fixed_link(4.0));
  (void)p_c;
  core.add_route(ndn::Name("/p"), c_p);
  const auto [e_c, c_e] = connect(edge, core, fixed_link(1.0));
  (void)c_e;
  edge.add_route(ndn::Name("/p"), e_c);
  connect(first, edge, fixed_link(0.3));
  connect(second, edge, fixed_link(0.3));

  std::optional<util::SimDuration> cold;
  first.fetch(ndn::Name("/p/x"), [&cold](const ndn::Data&, util::SimDuration r) { cold = r; });
  sched.run();
  std::optional<util::SimDuration> warm;
  second.fetch(ndn::Name("/p/x"), [&warm](const ndn::Data&, util::SimDuration r) { warm = r; });
  sched.run();

  ASSERT_TRUE(cold && warm);
  EXPECT_GT(*cold, util::millis(10));
  EXPECT_LT(*warm, util::millis(2));  // edge cache answered
  EXPECT_EQ(producer.interests_served(), 1u);
}

}  // namespace
}  // namespace ndnp::sim
