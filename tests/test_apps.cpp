#include "sim/apps.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "crypto/hmac.hpp"
#include "sim/forwarder.hpp"

namespace ndnp::sim {
namespace {

LinkConfig fixed_link(double latency_ms) {
  LinkConfig cfg;
  cfg.latency = util::millis_f(latency_ms);
  return cfg;
}

TEST(Consumer, NonceAutoAssignedAndUnique) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  const std::uint64_t a = consumer.make_nonce();
  const std::uint64_t b = consumer.make_nonce();
  EXPECT_NE(a, b);
}

TEST(Consumer, TimeoutFiresWhenUnanswered) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  connect(consumer, producer, fixed_link(1.0));

  bool data_seen = false;
  bool timed_out = false;
  ndn::Interest interest;
  interest.name = ndn::Name("/other/x");  // producer won't serve this
  consumer.express_interest(
      interest, [&](const ndn::Data&, util::SimDuration) { data_seen = true; }, 0,
      util::millis(50), [&](const ndn::Interest&) { timed_out = true; });
  sched.run();
  EXPECT_FALSE(data_seen);
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(consumer.outstanding(), 0u);
  EXPECT_EQ(consumer.timeouts(), 1u);
}

TEST(Consumer, TimeoutDoesNotFireAfterData) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  connect(consumer, producer, fixed_link(1.0));

  bool data_seen = false;
  bool timed_out = false;
  ndn::Interest interest;
  interest.name = ndn::Name("/p/x");
  consumer.express_interest(
      interest, [&](const ndn::Data&, util::SimDuration) { data_seen = true; }, 0,
      util::millis(500), [&](const ndn::Interest&) { timed_out = true; });
  sched.run();
  EXPECT_TRUE(data_seen);
  EXPECT_FALSE(timed_out);
  EXPECT_EQ(consumer.timeouts(), 0u);
}

TEST(Consumer, MeasuresRttAgainstDirectProducer) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  ProducerConfig pcfg;
  pcfg.processing_delay = 0;
  Producer producer(sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  connect(consumer, producer, fixed_link(3.0));

  std::optional<util::SimDuration> rtt;
  consumer.fetch(ndn::Name("/p/x"), [&](const ndn::Data&, util::SimDuration r) { rtt = r; });
  sched.run();
  ASSERT_TRUE(rtt.has_value());
  EXPECT_EQ(*rtt, util::millis(6));
}

TEST(Consumer, IgnoresIncomingInterests) {
  Scheduler sched;
  Consumer a(sched, "A", 1);
  Consumer b(sched, "B", 2);
  connect(a, b, fixed_link(1.0));
  ndn::Interest interest;
  interest.name = ndn::Name("/x");
  interest.nonce = 1;
  a.send_interest(0, interest);
  sched.run();  // must not crash, nothing happens
  EXPECT_EQ(b.data_received(), 0u);
}

TEST(Producer, ServesPublishedContentVerbatim) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  ProducerConfig pcfg;
  pcfg.auto_generate = false;
  Producer producer(sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  connect(consumer, producer, fixed_link(1.0));
  producer.publish(ndn::make_data(ndn::Name("/p/published"), "exact-bytes", "P", "key"));

  std::optional<std::string> payload;
  consumer.fetch(ndn::Name("/p/published"),
                 [&](const ndn::Data& data, util::SimDuration) { payload = data.payload; });
  sched.run();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "exact-bytes");
}

TEST(Producer, RepoPrefixMatchServesChild) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  ProducerConfig pcfg;
  pcfg.auto_generate = false;
  Producer producer(sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  connect(consumer, producer, fixed_link(1.0));
  producer.publish(ndn::make_data(ndn::Name("/p/dir/file"), "bytes", "P", "key"));

  bool got = false;
  consumer.fetch(ndn::Name("/p/dir"),
                 [&](const ndn::Data& data, util::SimDuration) {
                   got = true;
                   EXPECT_EQ(data.name.to_uri(), "/p/dir/file");
                 });
  sched.run();
  EXPECT_TRUE(got);
}

TEST(Producer, AutoGenerateHonorsPayloadSizeAndPrivacy) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  ProducerConfig pcfg;
  pcfg.payload_size = 123;
  pcfg.mark_private = true;
  Producer producer(sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  connect(consumer, producer, fixed_link(1.0));

  std::optional<ndn::Data> seen;
  consumer.fetch(ndn::Name("/p/generated"),
                 [&](const ndn::Data& data, util::SimDuration) { seen = data; });
  sched.run();
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->payload.size(), 123u);
  EXPECT_TRUE(seen->producer_private);
  EXPECT_TRUE(crypto::verify_content("key", seen->name.to_uri(), seen->payload,
                                     seen->signature));
}

TEST(Producer, GroupIdAssignedFromNamespace) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  ProducerConfig pcfg;
  pcfg.group_namespace_len = 2;
  Producer producer(sched, "P", ndn::Name("/p"), "key", pcfg, 2);
  connect(consumer, producer, fixed_link(1.0));

  std::optional<ndn::Data> seen;
  consumer.fetch(ndn::Name("/p/album/photo7"),
                 [&](const ndn::Data& data, util::SimDuration) { seen = data; });
  sched.run();
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->group_id, "/p/album");
}

TEST(Producer, IgnoresInterestsOutsidePrefix) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  connect(consumer, producer, fixed_link(1.0));

  bool got = false;
  consumer.fetch(ndn::Name("/elsewhere/x"),
                 [&](const ndn::Data&, util::SimDuration) { got = true; });
  sched.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(producer.interests_unmatched(), 1u);
  EXPECT_EQ(producer.interests_served(), 0u);
}

TEST(Node, ConnectRejectsSelfLink) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  EXPECT_THROW(connect(consumer, consumer, fixed_link(1.0)), std::invalid_argument);
}

TEST(Node, PeerAccessor) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  const auto [cf, pf] = connect(consumer, producer, fixed_link(1.0));
  EXPECT_EQ(consumer.peer(cf).name(), "P");
  EXPECT_EQ(producer.peer(pf).name(), "C");
  EXPECT_THROW((void)consumer.peer(99), std::out_of_range);
}

TEST(Node, LossyLinkDropsPackets) {
  Scheduler sched;
  Consumer consumer(sched, "C", 1);
  Producer producer(sched, "P", ndn::Name("/p"), "key", {}, 2);
  LinkConfig lossy = fixed_link(1.0);
  lossy.loss_probability = 1.0;  // everything dropped
  connect(consumer, producer, lossy);
  bool got = false;
  consumer.fetch(ndn::Name("/p/x"), [&](const ndn::Data&, util::SimDuration) { got = true; });
  sched.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(producer.interests_served(), 0u);
}

}  // namespace
}  // namespace ndnp::sim
