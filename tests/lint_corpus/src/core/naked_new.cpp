// Corpus: alloc-naked-new positives and the grammar negatives the rule
// must not trip on (`= delete`, operator new/delete declarations).
// Expected findings: alloc-naked-new at the three marked lines.
#include <cstdlib>
#include <memory>
#include <new>

struct Widget {
  Widget() = default;
  Widget(const Widget&) = delete;             // negative: deleted function
  Widget& operator=(const Widget&) = delete;  // negative: deleted function
  void* operator new(std::size_t size);       // negative: operator new declaration
  void operator delete(void* p) noexcept;     // negative: operator delete declaration
};

Widget* make_widget() {
  return new Widget();  // finding: alloc-naked-new
}

void drop_widget(Widget* w) {
  delete w;  // finding: alloc-naked-new
}

void* raw_buffer() {
  return std::malloc(64);  // finding: alloc-naked-new
}

std::unique_ptr<Widget> fine() {
  return std::unique_ptr<Widget>(nullptr);  // negative: no allocation token
}
