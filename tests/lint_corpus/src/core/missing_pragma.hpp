// Corpus: header-pragma-once (this header deliberately has no include
// guard) and header-using-namespace.
// Expected findings: header-pragma-once (line 1), header-using-namespace
// at the marked line.
#include <string>

using namespace std;  // finding: header-using-namespace

inline string shout(const string& s) { return s + "!"; }
