// Corpus: macro-side-effect positives (mutations inside macros that
// compile out under -DNDNP_INVARIANT=0 / -DNDNP_TRACING=0) and the
// comparison negatives.
// Expected findings: macro-side-effect at the two marked lines.

// The corpus is scanned, never compiled, so stub the macro shapes.
#define NDNP_INVARIANT_CHECK(cond, what) ((void)0)
#define NDNP_TRACE_EVENT(...) ((void)0)

int check_counters(int n) {
  NDNP_INVARIANT_CHECK(++n > 0, "increment vanishes when invariants are off");  // finding
  NDNP_TRACE_EVENT(1, n = 5, "assignment vanishes when tracing is off");        // finding
  return n;
}

int comparisons_are_pure(int n) {
  NDNP_INVARIANT_CHECK(n == 5, "equality is a read");
  NDNP_INVARIANT_CHECK(n <= 5, "ordering is a read");
  NDNP_INVARIANT_CHECK(n != 0, "inequality is a read");
  NDNP_TRACE_EVENT(1, n >= 0, "still a read");
  return n;
}
