// Corpus: companion header for iterates_unordered.cpp — declares the
// unordered member whose iteration the .cpp must be flagged for. The
// declaration itself is legal; only iteration is banned.
#pragma once

#include <string>
#include <unordered_map>

struct Tally {
  std::unordered_map<std::string, int> counts_;
  void dump() const;
};
