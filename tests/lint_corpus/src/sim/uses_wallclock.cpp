// Corpus: determinism-wallclock positives and near-miss negatives.
// Expected findings: determinism-wallclock at the two marked lines.
#include <chrono>
#include <ctime>

long read_clocks() {
  auto wall = std::chrono::system_clock::now();   // finding: determinism-wallclock
  long t = time(nullptr);                          // finding: determinism-wallclock
  return t + wall.time_since_epoch().count();
}

// Negatives: member calls and lookalike identifiers are fine.
struct Stopwatch {
  long time_ = 0;
  long my_time() const { return time_; }
};

long not_the_libc_time(const Stopwatch& s) {
  long lifetime = 1;             // "time" embedded in a longer identifier
  return s.my_time() + lifetime; // member call, not ::time(
}
