// Corpus: lexer stress file — every banned token below lives inside a
// comment, a string, a char sequence, or a raw string, so the file must
// produce ZERO findings. If the lexer ever leaks literal or comment text
// into the code view, this file lights up.
#include <string>

/* block comment mentioning std::rand() and new Widget()
   across lines, plus system_clock::now() for good measure */

std::string tricky() {
  std::string a = "std::rand() and delete p; inside a string";
  std::string b = R"lint(raw string with new int[3] and
std::random_device across physical lines)lint";
  char c = '\'';           // escaped quote must not open a literal
  int separated = 10'000;  // digit separator must not open a char literal
  std::string d = "unterminated-looking \\" + a;
  return a + b + c + d + std::to_string(separated);
  // trailing comment: srand(7), malloc(8), using namespace std
}
