// Corpus: suppression mechanics. Two justified ALLOWs (same-line and
// previous-line) silence their findings; one reasonless ALLOW silences
// nothing and is itself reported.
// Expected findings: determinism-rand at the reasonless-ALLOW line, plus
// allow-missing-reason for that line. Expected suppressed count: 2.
#include <cstdlib>

int justified() {
  int a = std::rand();  // NDNP-LINT-ALLOW(determinism-rand): corpus — same-line suppression
  // NDNP-LINT-ALLOW(determinism-rand): corpus — previous-line suppression
  int b = std::rand();
  return a + b;
}

int unjustified() {
  return std::rand();  // NDNP-LINT-ALLOW(determinism-rand)
}
