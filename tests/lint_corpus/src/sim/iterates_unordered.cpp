// Corpus: determinism-unordered-iteration positives (including the
// cross-file case: counts_ is declared in the companion header) and
// ordered-container negatives.
// Expected findings: determinism-unordered-iteration at the two marked
// lines.
#include "iterates_unordered.hpp"

#include <map>

void Tally::dump() const {
  for (const auto& [key, count] : counts_) {  // finding: cross-file iteration
    (void)key;
    (void)count;
  }
}

int local_iteration() {
  std::unordered_map<int, int> local{{1, 2}};
  int sum = 0;
  auto it = local.begin();  // finding: explicit iterator over unordered
  sum += it->second;
  return sum;
}

// Negatives: ordered containers iterate deterministically, and point
// lookups on unordered containers are fine.
int ordered_is_fine() {
  std::map<int, int> ordered{{1, 2}};
  int sum = 0;
  for (const auto& [k, v] : ordered) sum += k + v;
  std::unordered_map<int, int> lookup_only{{3, 4}};
  return sum + lookup_only.at(3) + static_cast<int>(lookup_only.count(3));
}
