// Corpus: determinism-rand positives and near-miss negatives.
// Expected findings: determinism-rand at the three marked lines, nothing
// else.
#include <cstdlib>
#include <random>

int draw_three() {
  int a = std::rand();              // finding: determinism-rand
  std::random_device entropy;       // finding: determinism-rand
  int b = static_cast<int>(entropy());
  srand(42u);                       // finding: determinism-rand
  return a + b;
}

// Negatives: none of these may be flagged.
int brand_new_rand_like_names() {
  int operand = 3;          // "rand" embedded in a longer identifier
  int random_looking = 4;   // prefix match only, not the banned token
  const char* s = "call std::rand() here";  // banned token inside a string
  return operand + random_looking + (s != nullptr);
  // std::rand() in a comment must not trip the rule either.
}
