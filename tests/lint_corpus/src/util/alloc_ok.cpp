// Corpus: src/util is the allocator layer — the alloc-naked-new binding
// excludes it, so the naked new/delete below must produce ZERO findings.
struct Block {
  Block* next = nullptr;
};

Block* carve() { return new Block(); }
void release(Block* b) { delete b; }
