#include "cache/content_store.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ndnp::cache {
namespace {

ndn::Data make_content(const std::string& uri) {
  ndn::Data data;
  data.name = ndn::Name(uri);
  data.payload = "payload";
  return data;
}

ndn::Interest interest_for(const std::string& uri) {
  ndn::Interest interest;
  interest.name = ndn::Name(uri);
  return interest;
}

EntryMeta meta_at(util::SimTime t) {
  EntryMeta meta;
  meta.inserted_at = t;
  meta.last_access = t;
  return meta;
}

TEST(ContentStore, InsertAndExactFind) {
  ContentStore cs(10);
  cs.insert(make_content("/a/b"), meta_at(1));
  ASSERT_NE(cs.find_exact(ndn::Name("/a/b")), nullptr);
  EXPECT_EQ(cs.find_exact(ndn::Name("/a/c")), nullptr);
  EXPECT_EQ(cs.size(), 1u);
  EXPECT_TRUE(cs.contains(ndn::Name("/a/b")));
}

TEST(ContentStore, PrefixLookupFindsLongerName) {
  ContentStore cs(10);
  cs.insert(make_content("/a/b/c"), meta_at(1));
  EXPECT_NE(cs.find(interest_for("/a/b")), nullptr);
  EXPECT_NE(cs.find(interest_for("/a/b/c")), nullptr);
  EXPECT_EQ(cs.find(interest_for("/a/b/c/d")), nullptr);
  EXPECT_EQ(cs.find(interest_for("/a/x")), nullptr);
}

TEST(ContentStore, PrefixLookupReturnsCanonicalSmallest) {
  ContentStore cs(10);
  cs.insert(make_content("/a/b/z"), meta_at(1));
  cs.insert(make_content("/a/b/c"), meta_at(2));
  const Entry* found = cs.find(interest_for("/a/b"));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->data.name.to_uri(), "/a/b/c");
}

TEST(ContentStore, ExactMatchOnlyEntriesSkippedInPrefixScan) {
  ContentStore cs(10);
  ndn::Data secret = make_content("/a/b/rand777");
  secret.exact_match_only = true;
  cs.insert(std::move(secret), meta_at(1));
  EXPECT_EQ(cs.find(interest_for("/a/b")), nullptr);
  EXPECT_NE(cs.find(interest_for("/a/b/rand777")), nullptr);
}

TEST(ContentStore, ExactOnlySiblingDoesNotShadowLaterMatch) {
  ContentStore cs(10);
  ndn::Data secret = make_content("/a/b/1rand");
  secret.exact_match_only = true;
  cs.insert(std::move(secret), meta_at(1));
  cs.insert(make_content("/a/b/2plain"), meta_at(2));
  const Entry* found = cs.find(interest_for("/a/b"));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->data.name.to_uri(), "/a/b/2plain");
}

TEST(ContentStore, OverwriteKeepsSize) {
  ContentStore cs(10);
  cs.insert(make_content("/a"), meta_at(1));
  ndn::Data updated = make_content("/a");
  updated.payload = "new";
  cs.insert(std::move(updated), meta_at(2));
  EXPECT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs.find_exact(ndn::Name("/a"))->data.payload, "new");
}

TEST(ContentStore, EraseAndClear) {
  ContentStore cs(10);
  cs.insert(make_content("/a"), meta_at(1));
  cs.insert(make_content("/b"), meta_at(1));
  EXPECT_TRUE(cs.erase(ndn::Name("/a")));
  EXPECT_FALSE(cs.erase(ndn::Name("/a")));
  EXPECT_EQ(cs.size(), 1u);
  cs.clear();
  EXPECT_EQ(cs.size(), 0u);
}

TEST(ContentStore, UnlimitedCapacityNeverEvicts) {
  ContentStore cs(0);
  EXPECT_TRUE(cs.unbounded());
  for (int i = 0; i < 1000; ++i)
    cs.insert(make_content("/obj/" + std::to_string(i)), meta_at(i));
  EXPECT_EQ(cs.size(), 1000u);
  EXPECT_EQ(cs.stats().evictions, 0u);
}

TEST(ContentStore, LruEvictsLeastRecentlyUsed) {
  ContentStore cs(2, EvictionPolicy::kLru);
  cs.insert(make_content("/a"), meta_at(1));
  cs.insert(make_content("/b"), meta_at(2));
  // Touch /a so /b becomes the LRU victim.
  cs.touch(*cs.find_exact(ndn::Name("/a")), 3);
  cs.insert(make_content("/c"), meta_at(4));
  EXPECT_TRUE(cs.contains(ndn::Name("/a")));
  EXPECT_FALSE(cs.contains(ndn::Name("/b")));
  EXPECT_TRUE(cs.contains(ndn::Name("/c")));
  EXPECT_EQ(cs.stats().evictions, 1u);
}

TEST(ContentStore, FifoIgnoresAccessOrder) {
  ContentStore cs(2, EvictionPolicy::kFifo);
  cs.insert(make_content("/a"), meta_at(1));
  cs.insert(make_content("/b"), meta_at(2));
  cs.touch(*cs.find_exact(ndn::Name("/a")), 3);  // irrelevant for FIFO
  cs.insert(make_content("/c"), meta_at(4));
  EXPECT_FALSE(cs.contains(ndn::Name("/a")));  // oldest insertion evicted
  EXPECT_TRUE(cs.contains(ndn::Name("/b")));
}

TEST(ContentStore, LfuEvictsColdestEntry) {
  ContentStore cs(2, EvictionPolicy::kLfu);
  cs.insert(make_content("/hot"), meta_at(1));
  cs.insert(make_content("/cold"), meta_at(2));
  for (int i = 0; i < 5; ++i) cs.touch(*cs.find_exact(ndn::Name("/hot")), 3 + i);
  cs.insert(make_content("/new"), meta_at(10));
  EXPECT_TRUE(cs.contains(ndn::Name("/hot")));
  EXPECT_FALSE(cs.contains(ndn::Name("/cold")));
}

TEST(ContentStore, RandomEvictionKeepsCapacityBound) {
  ContentStore cs(16, EvictionPolicy::kRandom, /*seed=*/3);
  for (int i = 0; i < 200; ++i)
    cs.insert(make_content("/obj/" + std::to_string(i)), meta_at(i));
  EXPECT_EQ(cs.size(), 16u);
  EXPECT_EQ(cs.stats().evictions, 200u - 16u);
}

TEST(ContentStore, TouchUpdatesLastAccess) {
  ContentStore cs(4);
  cs.insert(make_content("/a"), meta_at(1));
  Entry* entry = cs.find_exact(ndn::Name("/a"));
  cs.touch(*entry, 42);
  EXPECT_EQ(entry->meta.last_access, 42);
}

TEST(ContentStore, StatsCountLookups) {
  ContentStore cs(4);
  cs.insert(make_content("/a"), meta_at(1));
  (void)cs.find(interest_for("/a"));
  (void)cs.find(interest_for("/zzz"));
  EXPECT_EQ(cs.stats().lookups, 2u);
  EXPECT_EQ(cs.stats().matches, 1u);
  EXPECT_EQ(cs.stats().inserts, 1u);
}

// Regression: pin the exact counter values for a scripted op sequence that
// walks every find() path — exact fast path, prefix fallback after a
// missing/stale exact entry, plain miss. In particular, a find that falls
// back from the exact index to the prefix index is ONE lookup and at most
// ONE match; the internal two-stage probe must never double-count.
TEST(ContentStore, StatsRegressionScriptedSequence) {
  ContentStore cs(3, EvictionPolicy::kLru);

  cs.insert(make_content("/a/b/c"), meta_at(1));  // inserts=1
  ndn::Data stale = make_content("/a/b");
  stale.freshness_period = 5;  // fresh until t=6 (inserted at t=2)
  cs.insert(std::move(stale), meta_at(2));        // inserts=2
  cs.insert(make_content("/z"), meta_at(3));      // inserts=3

  // 1. Exact fast-path hit.
  EXPECT_NE(cs.find(interest_for("/a/b/c")), nullptr);  // lookups=1 matches=1
  // 2. Prefix-then-exact fallback: no entry named "/a", but "/a/b" and
  //    "/a/b/c" both match; lexicographically smallest ("/a/b") wins.
  const Entry* prefix_hit = cs.find(interest_for("/a"));  // lookups=2 matches=2
  ASSERT_NE(prefix_hit, nullptr);
  EXPECT_EQ(prefix_hit->data.name, ndn::Name("/a/b"));
  // 3. Stale exact entry skipped under MustBeFresh, deeper fresh entry
  //    found by the prefix fallback — still one lookup, one match.
  ndn::Interest fresh_ab = interest_for("/a/b");
  fresh_ab.must_be_fresh = true;
  const Entry* fallback = cs.find(fresh_ab, /*now=*/10);  // lookups=3 matches=3
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(fallback->data.name, ndn::Name("/a/b/c"));
  // 4. Same interest with no fresh match anywhere: one lookup, no match.
  ndn::Interest fresh_z = interest_for("/z");
  fresh_z.must_be_fresh = true;
  EXPECT_NE(cs.find(fresh_z, /*now=*/10), nullptr);  // lookups=4 matches=4 (no freshness set)
  ndn::Interest miss = interest_for("/nope");
  EXPECT_EQ(cs.find(miss), nullptr);  // lookups=5, matches stay 4
  // 5. find_exact / contains are NOT lookups (no stats side effects).
  EXPECT_NE(cs.find_exact(ndn::Name("/z")), nullptr);
  EXPECT_TRUE(cs.contains(ndn::Name("/z")));
  // 6. Overwrite counts as an insert but never evicts.
  cs.insert(make_content("/z"), meta_at(11));  // inserts=4 evictions=0
  // 7. Insert at capacity evicts exactly once.
  cs.insert(make_content("/w"), meta_at(12));  // inserts=5 evictions=1

  EXPECT_EQ(cs.stats().lookups, 5u);
  EXPECT_EQ(cs.stats().matches, 4u);
  EXPECT_EQ(cs.stats().inserts, 5u);
  EXPECT_EQ(cs.stats().evictions, 1u);

  // export_metrics publishes the same counters (plus size) untouched.
  util::MetricsRegistry registry;
  cs.export_metrics(registry, "cs");
  const util::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("cs.lookups"), 5u);
  EXPECT_EQ(snap.counters.at("cs.matches"), 4u);
  EXPECT_EQ(snap.counters.at("cs.inserts"), 5u);
  EXPECT_EQ(snap.counters.at("cs.evictions"), 1u);
  EXPECT_EQ(snap.counters.at("cs.size"), 3u);
}

TEST(ContentStore, PolicyToString) {
  EXPECT_EQ(to_string(EvictionPolicy::kLru), "LRU");
  EXPECT_EQ(to_string(EvictionPolicy::kFifo), "FIFO");
  EXPECT_EQ(to_string(EvictionPolicy::kLfu), "LFU");
  EXPECT_EQ(to_string(EvictionPolicy::kRandom), "Random");
}

// Property sweep: every policy must respect capacity, keep find() coherent
// with contains(), and evict exactly size-overflow entries.
class EvictionPolicyTest : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(EvictionPolicyTest, CapacityAlwaysRespected) {
  ContentStore cs(8, GetParam(), /*seed=*/11);
  for (int i = 0; i < 100; ++i) {
    cs.insert(make_content("/obj/" + std::to_string(i)), meta_at(i));
    EXPECT_LE(cs.size(), 8u);
    if (i % 3 == 0) {
      if (Entry* e = cs.find(interest_for("/obj/" + std::to_string(i)))) cs.touch(*e, i);
    }
  }
  EXPECT_EQ(cs.size(), 8u);
  EXPECT_EQ(cs.stats().evictions, 92u);
}

TEST_P(EvictionPolicyTest, EraseKeepsIndexConsistent) {
  ContentStore cs(8, GetParam(), /*seed=*/13);
  for (int i = 0; i < 8; ++i) cs.insert(make_content("/obj/" + std::to_string(i)), meta_at(i));
  EXPECT_TRUE(cs.erase(ndn::Name("/obj/3")));
  EXPECT_TRUE(cs.erase(ndn::Name("/obj/7")));
  // Refill past capacity; no crash, bound respected.
  for (int i = 8; i < 40; ++i) cs.insert(make_content("/obj/" + std::to_string(i)), meta_at(i));
  EXPECT_EQ(cs.size(), 8u);
}

TEST_P(EvictionPolicyTest, MostRecentInsertSurvivesEviction) {
  ContentStore cs(4, GetParam(), /*seed=*/17);
  for (int i = 0; i < 50; ++i) {
    const std::string uri = "/obj/" + std::to_string(i);
    cs.insert(make_content(uri), meta_at(i));
    EXPECT_TRUE(cs.contains(ndn::Name(uri))) << "policy evicted the entry just inserted";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EvictionPolicyTest,
                         ::testing::Values(EvictionPolicy::kLru, EvictionPolicy::kFifo,
                                           EvictionPolicy::kLfu, EvictionPolicy::kRandom),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace ndnp::cache
