#include "core/audit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/policies.hpp"
#include "core/theory.hpp"

namespace ndnp::core {
namespace {

AuditConfig fast_config() {
  AuditConfig config;
  config.x = 2;
  config.probes = 24;
  config.rounds = 8'000;
  config.delta = 0.05;
  config.seed = 5;
  return config;
}

TEST(Audit, AlwaysDelayLooksPerfectlyPrivate) {
  // Every probe looks like a miss under Always-Delay: S_0 and S_x views
  // are identical (all-miss runs) -> chance accuracy, zero budget.
  const AuditReport report = audit_policy(
      [] {
        return std::make_unique<AlwaysDelayPolicy>(AlwaysDelayPolicy::content_specific());
      },
      fast_config());
  EXPECT_NEAR(report.bayes_accuracy, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(report.epsilon_at_delta, 0.0);
  EXPECT_NEAR(report.delta_near_zero_epsilon, 0.0, 1e-9);
}

TEST(Audit, NoPrivacyFullyDistinguishable) {
  const AuditReport report =
      audit_policy([] { return std::make_unique<NoPrivacyPolicy>(); }, fast_config());
  EXPECT_NEAR(report.bayes_accuracy, 1.0, 1e-9);
  EXPECT_TRUE(std::isinf(report.epsilon_at_delta));  // one-sided mass >> delta
}

TEST(Audit, NaiveThresholdFullyDistinguishable) {
  const AuditReport report = audit_policy(
      [] { return std::make_unique<NaiveThresholdPolicy>(5); }, fast_config());
  // Deterministic miss-run shift: S_0 and S_x never overlap.
  EXPECT_NEAR(report.bayes_accuracy, 1.0, 1e-9);
}

TEST(Audit, UniformRandomCacheMatchesTheoremVI1) {
  constexpr std::int64_t kDomain = 20;
  AuditConfig config = fast_config();
  config.probes = kDomain + 5;  // expose the full output space
  config.rounds = 40'000;
  auto seed = std::make_shared<std::uint64_t>(0);
  const AuditReport report = audit_policy(
      [seed] { return RandomCachePolicy::uniform(kDomain, ++*seed); }, config);
  const PrivacyBudget bound = uniform_privacy(config.x, kDomain);
  // Empirical Bayes accuracy ~ 1/2 + delta/4 for the uniform scheme.
  EXPECT_NEAR(report.bayes_accuracy, 0.5 + bound.delta / 4.0, 0.02);
  EXPECT_NEAR(report.delta_near_zero_epsilon, bound.delta, 0.06);
}

TEST(Audit, ExpoTighterThanUniformAtSameDomain) {
  // At equal K the exponential scheme (alpha < 1) concentrates thresholds
  // low: better utility, strictly more leakage. The auditor should see it.
  constexpr std::int64_t kDomain = 20;
  AuditConfig config = fast_config();
  config.probes = kDomain + 5;
  auto seed_u = std::make_shared<std::uint64_t>(0);
  const AuditReport uniform = audit_policy(
      [seed_u] { return RandomCachePolicy::uniform(kDomain, ++*seed_u); }, config);
  auto seed_e = std::make_shared<std::uint64_t>(0);
  const AuditReport expo = audit_policy(
      [seed_e] { return RandomCachePolicy::exponential(0.7, kDomain, ++*seed_e); }, config);
  EXPECT_GT(expo.bayes_accuracy, uniform.bayes_accuracy);
}

TEST(Audit, ValidatesArguments) {
  EXPECT_THROW((void)audit_policy(nullptr, fast_config()), std::invalid_argument);
  AuditConfig config = fast_config();
  config.x = 0;
  EXPECT_THROW(
      (void)audit_policy([] { return std::make_unique<NoPrivacyPolicy>(); }, config),
      std::invalid_argument);
  config.x = 1;
  config.rounds = 0;
  EXPECT_THROW(
      (void)audit_policy([] { return std::make_unique<NoPrivacyPolicy>(); }, config),
      std::invalid_argument);
}

TEST(Audit, DistributionsAreNormalized) {
  const AuditReport report =
      audit_policy([] { return std::make_unique<NoPrivacyPolicy>(); }, fast_config());
  double sum0 = 0.0;
  double sumx = 0.0;
  for (const double p : report.never_requested) sum0 += p;
  for (const double p : report.requested_x) sumx += p;
  EXPECT_NEAR(sum0, 1.0, 1e-9);
  EXPECT_NEAR(sumx, 1.0, 1e-9);
}

}  // namespace
}  // namespace ndnp::core
