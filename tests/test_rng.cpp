#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <vector>

namespace ndnp::util {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values for seed 0 (widely published SplitMix64 vectors).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsProduceDifferentStreams) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, JumpDecorrelates) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.uniform_u64(17), 17u);
}

TEST(Rng, UniformU64BoundOneIsAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(5);
  std::array<int, 8> counts{};
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_u64(8)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 8.0, 5.0 * std::sqrt(kDraws / 8.0));
  }
}

TEST(Rng, UniformI64CoversInclusiveRange) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.uniform_i64(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(8);
  double acc = 0.0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) acc += rng.uniform01();
  EXPECT_NEAR(acc / kDraws, 0.5, 0.005);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(10);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  double acc = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) acc += rng.exponential(2.0);
  EXPECT_NEAR(acc / kDraws, 0.5, 0.01);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(12);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(rng.exponential(0.1), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(14);
  std::vector<double> draws;
  constexpr int kDraws = 100'001;
  draws.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) draws.push_back(rng.lognormal(std::log(3.0), 0.5));
  std::nth_element(draws.begin(), draws.begin() + kDraws / 2, draws.end());
  EXPECT_NEAR(draws[kDraws / 2], 3.0, 0.1);
}

TEST(Rng, GeometricPmfMatches) {
  Rng rng(15);
  constexpr double kAlpha = 0.7;
  constexpr int kDraws = 200'000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.geometric(kAlpha)];
  for (std::uint64_t k = 0; k < 5; ++k) {
    const double expected = (1.0 - kAlpha) * std::pow(kAlpha, static_cast<double>(k));
    EXPECT_NEAR(static_cast<double>(counts[k]) / kDraws, expected, 0.01) << "k=" << k;
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(16);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(18);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // probability of identity is astronomically small
}

TEST(ZipfSampler, PmfSumsToOne) {
  const ZipfSampler zipf(1000, 0.8);
  double acc = 0.0;
  for (std::size_t r = 1; r <= 1000; ++r) acc += zipf.pmf(r);
  EXPECT_NEAR(acc, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfIsDecreasingInRank) {
  const ZipfSampler zipf(100, 1.0);
  for (std::size_t r = 1; r < 100; ++r) EXPECT_GT(zipf.pmf(r), zipf.pmf(r + 1));
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  const ZipfSampler zipf(10, 0.0);
  for (std::size_t r = 1; r <= 10; ++r) EXPECT_NEAR(zipf.pmf(r), 0.1, 1e-12);
}

TEST(ZipfSampler, SampleFrequenciesMatchPmf) {
  const ZipfSampler zipf(50, 0.8);
  Rng rng(19);
  std::vector<int> counts(51, 0);
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 1; r <= 5; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / kDraws, zipf.pmf(r), 0.01) << "rank " << r;
  }
}

TEST(ZipfSampler, SampleStaysInRange) {
  const ZipfSampler zipf(7, 1.2);
  Rng rng(20);
  for (int i = 0; i < 10'000; ++i) {
    const std::size_t r = zipf.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 7u);
  }
}

TEST(ZipfSampler, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
  const ZipfSampler zipf(10, 1.0);
  EXPECT_THROW((void)zipf.pmf(0), std::out_of_range);
  EXPECT_THROW((void)zipf.pmf(11), std::out_of_range);
}

}  // namespace
}  // namespace ndnp::util
