// Sharded replay (runner/sharded_replay.hpp): determinism by construction
// and the statistical-regression layer.
//
// The determinism contract — merged output byte-identical for any --jobs
// value — is what lets CI run the scale smoke with 8 workers and compare
// against a single-threaded run with `cmp`. The chi-square/TV property test
// locks the *statistical* contract: splitting one router into S independent
// shards changes cache dynamics, so per-policy outcome distributions
// (exposed/delayed/simulated-miss/true-miss) must stay within a locked
// distance of the unsharded replay, not byte-equal. See docs/SCALE.md.
#include "runner/sharded_replay.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/policies.hpp"
#include "trace/stream.hpp"
#include "util/stats.hpp"

namespace ndnp::runner {
namespace {

trace::Trace small_trace() {
  trace::TraceGenConfig config;
  config.num_users = 24;
  config.num_objects = 2'000;
  config.num_requests = 8'000;
  config.seed = 17;
  return trace::generate_trace(config);
}

ShardedReplayConfig base_config() {
  ShardedReplayConfig config;
  config.shards = 4;
  config.master_seed = 99;
  config.replay.cache_capacity = 200;
  config.replay.policy_factory = [] {
    return core::RandomCachePolicy::exponential(0.999, 201, 5);
  };
  return config;
}

// --- Determinism by construction -------------------------------------------

TEST(ShardedReplay, MergedOutputByteIdenticalAcrossJobs) {
  const trace::Trace tr = small_trace();
  ShardedReplayConfig config = base_config();
  config.jobs = 1;
  const std::string serial = replay_sharded(tr, config).merged_json();
  for (const std::size_t jobs : {2, 4, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    config.jobs = jobs;
    EXPECT_EQ(replay_sharded(tr, config).merged_json(), serial);
  }
}

TEST(ShardedReplay, DeterministicAcrossInvocations) {
  const trace::Trace tr = small_trace();
  const ShardedReplayConfig config = base_config();
  EXPECT_EQ(replay_sharded(tr, config).merged_json(),
            replay_sharded(tr, config).merged_json());
}

TEST(ShardedReplay, ChunkSizeNeverChangesTheResult) {
  const trace::Trace tr = small_trace();
  ShardedReplayConfig config = base_config();
  config.chunk_records = 64 * 1024;
  const std::string big_chunks = replay_sharded(tr, config).merged_json();
  config.chunk_records = 61;  // forces many refills, never divides evenly
  EXPECT_EQ(replay_sharded(tr, config).merged_json(), big_chunks);
}

TEST(ShardedReplay, RecordsPartitionExactlyAcrossShards) {
  const trace::Trace tr = small_trace();
  const ShardedReplayConfig config = base_config();
  const ShardedReplayResult result = replay_sharded(tr, config);
  ASSERT_EQ(result.shards.size(), config.shards);
  EXPECT_EQ(result.records, tr.size());

  std::vector<std::uint64_t> expected(config.shards, 0);
  for (const trace::TraceRecord& record : tr.records)
    ++expected[trace::shard_of(record.user_id, config.shards)];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < config.shards; ++i) {
    EXPECT_EQ(result.shards[i].records, expected[i]) << "shard " << i;
    EXPECT_EQ(result.shards[i].result.stats.requests, expected[i]) << "shard " << i;
    total += result.shards[i].records;
  }
  EXPECT_EQ(total, tr.size());
}

TEST(ShardedReplay, SharedPrivateClassMatchesUnshardedExactly) {
  // Every shard gets its own engine/delay RNG stream but one shared
  // private_class_seed, and is_private_content is a pure function of
  // (name, fraction, class seed) — so the total private-request count must
  // equal the unsharded replay's, exactly, not statistically.
  const trace::Trace tr = small_trace();
  ShardedReplayConfig config = base_config();
  config.replay.private_class_seed = 4242;
  const ShardedReplayResult sharded = replay_sharded(tr, config);

  trace::ReplayConfig unsharded = base_config().replay;
  unsharded.seed = 1;
  unsharded.private_class_seed = 4242;
  const trace::ReplayResult reference = trace::replay(tr, unsharded);

  std::uint64_t private_requests = 0;
  for (const ShardReplayResult& shard : sharded.shards)
    private_requests += shard.result.private_requests;
  EXPECT_EQ(private_requests, reference.private_requests);
}

// --- Edge cases -------------------------------------------------------------

TEST(ShardedReplay, EmptyTraceYieldsEmptyMerge) {
  const trace::Trace empty;
  const ShardedReplayResult result = replay_sharded(empty, base_config());
  EXPECT_EQ(result.records, 0u);
  EXPECT_EQ(result.malformed_records, 0u);
  for (const ShardReplayResult& shard : result.shards) EXPECT_EQ(shard.records, 0u);
  EXPECT_FALSE(result.merged_json().empty());
}

TEST(ShardedReplay, SingleUserLandsOnExactlyOneShard) {
  trace::TraceGenConfig gen;
  gen.num_users = 1;
  gen.num_objects = 500;
  gen.num_requests = 1'000;
  gen.seed = 5;
  const trace::Trace tr = trace::generate_trace(gen);
  const ShardedReplayResult result = replay_sharded(tr, base_config());
  std::size_t active_shards = 0;
  for (const ShardReplayResult& shard : result.shards)
    if (shard.records > 0) ++active_shards;
  EXPECT_EQ(active_shards, 1u);
  EXPECT_EQ(result.records, tr.size());
}

TEST(ShardedReplay, MoreShardsThanUsersLeavesIdleShardsHarmless) {
  const trace::Trace tr = small_trace();  // 24 users
  ShardedReplayConfig config = base_config();
  config.shards = 64;
  config.jobs = 4;
  const ShardedReplayResult result = replay_sharded(tr, config);
  EXPECT_EQ(result.records, tr.size());
  EXPECT_EQ(result.shards.size(), 64u);
  // Idle shards contribute empty snapshots; totals still add up.
  EXPECT_EQ(result.merged.counters.at("replay.records"), tr.size());
}

TEST(ShardedReplay, MalformedLinesSurfaceInTheMergedResult) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ndnp_sharded_malformed.trace").string();
  std::ofstream(path) << "0.5 3 /web/dom1/obj1 8192\n"
                      << "garbage\n"
                      << "1.5 7 /web/dom1/obj2 8192\n";
  ShardedReplayConfig config = base_config();
  config.shards = 2;
  const trace::ParseOptions options{.max_malformed = 5};
  const ShardedReplayResult result = replay_sharded(
      [&] { return trace::open_trace_source(path, options); }, config);
  std::remove(path.c_str());
  EXPECT_EQ(result.records, 2u);
  // Every shard scans the full file; the count is reported once, not
  // once per shard.
  EXPECT_EQ(result.malformed_records, 1u);
  EXPECT_EQ(result.merged.counters.at("replay.malformed_records"), 1u);
  EXPECT_NE(result.merged_json().find("\"malformed_records\":1"), std::string::npos);
}

// --- Statistical-regression layer ------------------------------------------
// Each shard is an edge router of the SAME cache size serving a quarter of
// the users: under the independent-reference model a cache's hit rate
// depends on its size against the popularity distribution, not on how many
// requests flow through it, so every shard is statistically a clone of the
// unsharded router and the per-request outcome distribution
// {exposed, delayed, simulated-miss, true-miss} must agree up to sampling
// noise and per-shard cold-start. The property locked here: for each
// policy, the sharded distribution stays within a fixed chi-square
// statistic and total-variation distance of the unsharded replay on the
// same trace. The bounds are regression tripwires calibrated with ~2x
// headroom over the observed values at these locked seeds — a change that
// pushes past them has altered replay semantics, not just reshuffled RNG.

std::vector<std::uint64_t> outcome_vector(const core::EngineStats& stats) {
  return {stats.exposed_hits, stats.delayed_hits, stats.simulated_misses,
          stats.true_misses};
}

TEST(ShardedReplay, OutcomeDistributionMatchesUnshardedWithinLockedBounds) {
  trace::TraceGenConfig gen;
  gen.num_users = 185;
  gen.num_objects = 2'000;
  gen.num_requests = 80'000;
  gen.seed = 2013;
  const trace::Trace tr = trace::generate_trace(gen);

  struct PolicyCase {
    const char* name;
    std::function<std::unique_ptr<core::CachePrivacyPolicy>()> factory;
    double max_chi_square;
    double max_tv;
  };
  const PolicyCase cases[] = {
      // Observed at these seeds: chi^2 = 178.4, TV = 0.0271.
      {"random-cache-exponential",
       [] { return core::RandomCachePolicy::exponential(0.999, 201, 5); }, 400.0, 0.06},
      // Observed at these seeds: chi^2 = 21.7, TV = 0.0106.
      {"always-delay",
       [] {
         return std::make_unique<core::AlwaysDelayPolicy>(
             core::AlwaysDelayPolicy::content_specific());
       },
       50.0, 0.025},
  };

  for (const PolicyCase& policy_case : cases) {
    SCOPED_TRACE(policy_case.name);

    trace::ReplayConfig unsharded;
    unsharded.cache_capacity = 800;
    unsharded.private_fraction = 0.2;
    unsharded.policy_factory = policy_case.factory;
    unsharded.seed = 7;
    unsharded.private_class_seed = 4242;
    const trace::ReplayResult reference = trace::replay(tr, unsharded);

    ShardedReplayConfig config;
    config.shards = 4;
    config.master_seed = 7;
    config.replay = unsharded;  // same per-router cache size, see above
    const ShardedReplayResult sharded = replay_sharded(tr, config);

    core::EngineStats merged_stats;
    for (const ShardReplayResult& shard : sharded.shards) {
      merged_stats.exposed_hits += shard.result.stats.exposed_hits;
      merged_stats.delayed_hits += shard.result.stats.delayed_hits;
      merged_stats.simulated_misses += shard.result.stats.simulated_misses;
      merged_stats.true_misses += shard.result.stats.true_misses;
    }

    const std::vector<std::uint64_t> a = outcome_vector(reference.stats);
    const std::vector<std::uint64_t> b = outcome_vector(merged_stats);
    const double chi_square = util::chi_square_statistic(a, b);
    const double tv = util::total_variation(a, b);
    EXPECT_LT(chi_square, policy_case.max_chi_square)
        << "sharded outcome distribution drifted from unsharded replay";
    EXPECT_LT(tv, policy_case.max_tv);
    // And the distributions genuinely overlap — a degenerate all-miss
    // sharded run would also have small TV against an all-miss reference,
    // so anchor the absolute level too.
    EXPECT_GT(reference.stats.exposed_hits, 0u);
    EXPECT_GT(merged_stats.exposed_hits, 0u);
  }
}

}  // namespace
}  // namespace ndnp::runner
