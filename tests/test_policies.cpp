#include "core/policies.hpp"

#include <gtest/gtest.h>

#include "core/policy.hpp"

namespace ndnp::core {
namespace {

cache::Entry make_entry(const std::string& uri, bool producer_private = false) {
  cache::Entry entry;
  entry.data.name = ndn::Name(uri);
  entry.data.producer_private = producer_private;
  entry.meta.fetch_delay = util::millis(30);
  return entry;
}

ndn::Interest interest_for(const std::string& uri, bool private_req = false) {
  ndn::Interest interest;
  interest.name = ndn::Name(uri);
  interest.private_req = private_req;
  return interest;
}

// ---------------------------------------------------------------------------
// Marking rules

TEST(Marking, ProducerMarkedAlwaysPrivate) {
  cache::Entry entry = make_entry("/a", /*producer_private=*/true);
  init_privacy_marking(entry, interest_for("/a", false));
  EXPECT_TRUE(entry.meta.treated_private);
  // Even a non-private interest cannot de-privatize producer-marked content.
  EXPECT_TRUE(resolve_effective_privacy(entry, interest_for("/a", false)));
  EXPECT_TRUE(entry.meta.treated_private);
}

TEST(Marking, NameMarkerActsAsProducerMarking) {
  cache::Entry entry = make_entry("/a/private");
  init_privacy_marking(entry, interest_for("/a/private", false));
  EXPECT_TRUE(entry.meta.treated_private);
}

TEST(Marking, ConsumerPrivateRequestMarksEntry) {
  cache::Entry entry = make_entry("/a");
  init_privacy_marking(entry, interest_for("/a", true));
  EXPECT_TRUE(entry.meta.treated_private);
  EXPECT_FALSE(entry.meta.deprivatized);
}

TEST(Marking, NonPrivateFirstRequestDeprivatizesImmediately) {
  cache::Entry entry = make_entry("/a");
  init_privacy_marking(entry, interest_for("/a", false));
  EXPECT_FALSE(entry.meta.treated_private);
  EXPECT_TRUE(entry.meta.deprivatized);
  // A later privacy-flagged interest is still served as non-private.
  EXPECT_FALSE(resolve_effective_privacy(entry, interest_for("/a", true)));
}

TEST(Marking, TriggerRuleSequence) {
  // private, private, non-private (trigger), private -> the last one is
  // non-private; this is exactly the paper's argument for why the trigger
  // must be permanent.
  cache::Entry entry = make_entry("/a");
  init_privacy_marking(entry, interest_for("/a", true));
  EXPECT_TRUE(resolve_effective_privacy(entry, interest_for("/a", true)));
  EXPECT_FALSE(resolve_effective_privacy(entry, interest_for("/a", false)));
  EXPECT_FALSE(resolve_effective_privacy(entry, interest_for("/a", true)));
}

// ---------------------------------------------------------------------------
// NoPrivacyPolicy

TEST(NoPrivacy, AlwaysExposesHits) {
  NoPrivacyPolicy policy;
  cache::Entry entry = make_entry("/a", true);
  const LookupDecision decision =
      policy.on_cached_lookup(entry, interest_for("/a", true), true, 0);
  EXPECT_EQ(decision.action, LookupAction::kExposeHit);
  EXPECT_EQ(policy.miss_response_delay(util::millis(5), true), util::millis(5));
  EXPECT_EQ(policy.name(), "NoPrivacy");
}

// ---------------------------------------------------------------------------
// AlwaysDelayPolicy

TEST(AlwaysDelay, ConstantModeDelaysPrivateHits) {
  AlwaysDelayPolicy policy = AlwaysDelayPolicy::constant(util::millis(40));
  cache::Entry entry = make_entry("/a", true);
  const LookupDecision decision = policy.on_cached_lookup(entry, interest_for("/a"), true, 0);
  EXPECT_EQ(decision.action, LookupAction::kDelayedHit);
  EXPECT_EQ(decision.artificial_delay, util::millis(40));
}

TEST(AlwaysDelay, NonPrivateContentNotDelayed) {
  AlwaysDelayPolicy policy = AlwaysDelayPolicy::constant(util::millis(40));
  cache::Entry entry = make_entry("/a");
  const LookupDecision decision = policy.on_cached_lookup(entry, interest_for("/a"), false, 0);
  EXPECT_EQ(decision.action, LookupAction::kExposeHit);
}

TEST(AlwaysDelay, ConstantModePadsFastMisses) {
  const AlwaysDelayPolicy policy = AlwaysDelayPolicy::constant(util::millis(40));
  // Nearby producer (5 ms): padded to gamma. Far producer (100 ms): cannot
  // pad below the real delay — the paper's noted drawback.
  EXPECT_EQ(policy.miss_response_delay(util::millis(5), true), util::millis(40));
  EXPECT_EQ(policy.miss_response_delay(util::millis(100), true), util::millis(100));
  EXPECT_EQ(policy.miss_response_delay(util::millis(5), false), util::millis(5));
}

TEST(AlwaysDelay, ConstantHitAndFastMissIndistinguishable) {
  // The whole point of gamma: observable delay is gamma in both cases.
  AlwaysDelayPolicy policy = AlwaysDelayPolicy::constant(util::millis(40));
  cache::Entry entry = make_entry("/a", true);
  const LookupDecision hit = policy.on_cached_lookup(entry, interest_for("/a"), true, 0);
  EXPECT_EQ(hit.artificial_delay, policy.miss_response_delay(util::millis(12), true));
}

TEST(AlwaysDelay, ContentSpecificUsesStoredFetchDelay) {
  AlwaysDelayPolicy policy = AlwaysDelayPolicy::content_specific();
  cache::Entry entry = make_entry("/a", true);
  entry.meta.fetch_delay = util::millis(77);
  const LookupDecision decision = policy.on_cached_lookup(entry, interest_for("/a"), true, 0);
  EXPECT_EQ(decision.action, LookupAction::kDelayedHit);
  EXPECT_EQ(decision.artificial_delay, util::millis(77));
  // Misses are genuine: no padding in this mode.
  EXPECT_EQ(policy.miss_response_delay(util::millis(12), true), util::millis(12));
}

TEST(AlwaysDelay, DynamicDecaysTowardFloor) {
  AlwaysDelayPolicy policy = AlwaysDelayPolicy::dynamic(
      {.two_hop_floor = util::millis(5), .decay = 0.5});
  cache::Entry entry = make_entry("/a", true);
  entry.meta.fetch_delay = util::millis(80);
  util::SimDuration prev = util::millis(81);
  for (int i = 0; i < 10; ++i) {
    const LookupDecision decision = policy.on_cached_lookup(entry, interest_for("/a"), true, 0);
    EXPECT_EQ(decision.action, LookupAction::kDelayedHit);
    EXPECT_LE(decision.artificial_delay, prev);
    EXPECT_GE(decision.artificial_delay, util::millis(5));  // never below the floor
    prev = decision.artificial_delay;
  }
  EXPECT_EQ(prev, util::millis(5));  // converged to the floor
}

TEST(AlwaysDelay, RejectsBadParameters) {
  EXPECT_THROW((void)AlwaysDelayPolicy::constant(-1), std::invalid_argument);
  EXPECT_THROW((void)AlwaysDelayPolicy::dynamic({.two_hop_floor = 0, .decay = 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)AlwaysDelayPolicy::dynamic({.two_hop_floor = 0, .decay = 1.5}),
               std::invalid_argument);
  EXPECT_THROW((void)AlwaysDelayPolicy::dynamic({.two_hop_floor = -5, .decay = 0.5}),
               std::invalid_argument);
}

TEST(AlwaysDelay, CloneKeepsMode) {
  const AlwaysDelayPolicy policy = AlwaysDelayPolicy::constant(util::millis(9));
  const auto copy = policy.clone();
  EXPECT_EQ(copy->miss_response_delay(util::millis(1), true), util::millis(9));
}

// ---------------------------------------------------------------------------
// NaiveThresholdPolicy

TEST(NaiveThreshold, FirstKRequestsMiss) {
  NaiveThresholdPolicy policy(3);
  cache::Entry entry = make_entry("/a", true);
  policy.on_insert(entry, interest_for("/a", true), 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(policy.on_cached_lookup(entry, interest_for("/a"), true, 0).action,
              LookupAction::kSimulatedMiss)
        << "request " << i;
  }
  EXPECT_EQ(policy.on_cached_lookup(entry, interest_for("/a"), true, 0).action,
            LookupAction::kExposeHit);
}

TEST(NaiveThreshold, NonPrivateBypassesCounter) {
  NaiveThresholdPolicy policy(3);
  cache::Entry entry = make_entry("/a");
  policy.on_insert(entry, interest_for("/a"), 0);
  EXPECT_EQ(policy.on_cached_lookup(entry, interest_for("/a"), false, 0).action,
            LookupAction::kExposeHit);
  EXPECT_EQ(entry.meta.request_count, 0u);
}

TEST(NaiveThreshold, KZeroNeverSimulates) {
  NaiveThresholdPolicy policy(0);
  cache::Entry entry = make_entry("/a", true);
  policy.on_insert(entry, interest_for("/a", true), 0);
  EXPECT_EQ(policy.on_cached_lookup(entry, interest_for("/a"), true, 0).action,
            LookupAction::kExposeHit);
}

TEST(NaiveThreshold, RejectsNegativeK) {
  EXPECT_THROW(NaiveThresholdPolicy(-1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RandomCachePolicy

TEST(RandomCache, FollowsAlgorithmOneWithDegenerateK) {
  // Degenerate K makes the behavior deterministic: exactly k simulated
  // misses, then exposed hits forever.
  RandomCachePolicy policy(std::make_unique<DegenerateK>(2), /*seed=*/1);
  cache::Entry entry = make_entry("/a", true);
  policy.on_insert(entry, interest_for("/a", true), 0);
  EXPECT_EQ(entry.meta.k_threshold, 2);
  EXPECT_EQ(entry.meta.request_count, 0u);
  EXPECT_EQ(policy.on_cached_lookup(entry, interest_for("/a"), true, 0).action,
            LookupAction::kSimulatedMiss);
  EXPECT_EQ(policy.on_cached_lookup(entry, interest_for("/a"), true, 0).action,
            LookupAction::kSimulatedMiss);
  EXPECT_EQ(policy.on_cached_lookup(entry, interest_for("/a"), true, 0).action,
            LookupAction::kExposeHit);
  EXPECT_EQ(policy.on_cached_lookup(entry, interest_for("/a"), true, 0).action,
            LookupAction::kExposeHit);
}

TEST(RandomCache, ThresholdSampledWithinDomain) {
  RandomCachePolicy policy(std::make_unique<UniformK>(6), /*seed=*/2);
  for (int i = 0; i < 200; ++i) {
    cache::Entry entry = make_entry("/obj/" + std::to_string(i), true);
    policy.on_insert(entry, interest_for(entry.data.name.to_uri(), true), 0);
    EXPECT_GE(entry.meta.k_threshold, 0);
    EXPECT_LT(entry.meta.k_threshold, 6);
  }
}

TEST(RandomCache, NonPrivateAlwaysExposed) {
  RandomCachePolicy policy(std::make_unique<DegenerateK>(5), /*seed=*/3);
  cache::Entry entry = make_entry("/a");
  policy.on_insert(entry, interest_for("/a"), 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.on_cached_lookup(entry, interest_for("/a"), false, 0).action,
              LookupAction::kExposeHit);
  }
}

TEST(RandomCache, GroupedModeSharesCounterAcrossMembers) {
  // Two contents in the same namespace share one (c, k): probing the
  // second member after the first was exhausted yields an immediate hit
  // pattern consistent with the shared counter — the correlation defense.
  RandomCachePolicy policy(std::make_unique<DegenerateK>(2), /*seed=*/4,
                           Grouping::kByNamespace, /*namespace_prefix_len=*/2);
  cache::Entry frag0 = make_entry("/alice/video/0", true);
  cache::Entry frag1 = make_entry("/alice/video/1", true);
  policy.on_insert(frag0, interest_for("/alice/video/0", true), 0);
  policy.on_insert(frag1, interest_for("/alice/video/1", true), 0);
  EXPECT_EQ(policy.on_cached_lookup(frag0, interest_for("/alice/video/0"), true, 0).action,
            LookupAction::kSimulatedMiss);
  EXPECT_EQ(policy.on_cached_lookup(frag1, interest_for("/alice/video/1"), true, 0).action,
            LookupAction::kSimulatedMiss);
  // Shared counter now exhausted (c = 2 = k): next access to EITHER member hits.
  EXPECT_EQ(policy.on_cached_lookup(frag0, interest_for("/alice/video/0"), true, 0).action,
            LookupAction::kExposeHit);
  EXPECT_EQ(policy.on_cached_lookup(frag1, interest_for("/alice/video/1"), true, 0).action,
            LookupAction::kExposeHit);
}

TEST(RandomCache, GroupedByGroupIdUsesProducerAssignment) {
  RandomCachePolicy policy(std::make_unique<DegenerateK>(1), /*seed=*/5, Grouping::kByGroupId);
  cache::Entry a = make_entry("/x/1", true);
  cache::Entry b = make_entry("/y/2", true);  // different namespace, same group
  a.data.group_id = "album-7";
  b.data.group_id = "album-7";
  policy.on_insert(a, interest_for("/x/1", true), 0);
  policy.on_insert(b, interest_for("/y/2", true), 0);
  EXPECT_EQ(policy.on_cached_lookup(a, interest_for("/x/1"), true, 0).action,
            LookupAction::kSimulatedMiss);
  EXPECT_EQ(policy.on_cached_lookup(b, interest_for("/y/2"), true, 0).action,
            LookupAction::kExposeHit);  // group counter already at k
}

TEST(RandomCache, EmptyGroupIdFallsBackToOwnName) {
  RandomCachePolicy policy(std::make_unique<DegenerateK>(1), /*seed=*/6, Grouping::kByGroupId);
  cache::Entry a = make_entry("/x/1", true);
  cache::Entry b = make_entry("/x/2", true);
  policy.on_insert(a, interest_for("/x/1", true), 0);
  policy.on_insert(b, interest_for("/x/2", true), 0);
  // Independent counters: both first probes simulate misses.
  EXPECT_EQ(policy.on_cached_lookup(a, interest_for("/x/1"), true, 0).action,
            LookupAction::kSimulatedMiss);
  EXPECT_EQ(policy.on_cached_lookup(b, interest_for("/x/2"), true, 0).action,
            LookupAction::kSimulatedMiss);
}

TEST(RandomCache, GroupStateSurvivesReinsertion) {
  // Eviction + refetch must NOT resample the group threshold; otherwise an
  // adversary could average over resampled k values.
  RandomCachePolicy policy(std::make_unique<DegenerateK>(1), /*seed=*/7,
                           Grouping::kByNamespace, 1);
  cache::Entry entry = make_entry("/vid/0", true);
  policy.on_insert(entry, interest_for("/vid/0", true), 0);
  EXPECT_EQ(policy.on_cached_lookup(entry, interest_for("/vid/0"), true, 0).action,
            LookupAction::kSimulatedMiss);
  // Simulate eviction + reinsertion of the same group.
  cache::Entry again = make_entry("/vid/0", true);
  policy.on_insert(again, interest_for("/vid/0", true), 0);
  EXPECT_EQ(policy.on_cached_lookup(again, interest_for("/vid/0"), true, 0).action,
            LookupAction::kExposeHit);  // counter continued at c=1, k=1
}

TEST(RandomCache, RejectsBadConstruction) {
  EXPECT_THROW(RandomCachePolicy(nullptr, 1), std::invalid_argument);
  EXPECT_THROW(RandomCachePolicy(std::make_unique<UniformK>(4), 1, Grouping::kByNamespace, 0),
               std::invalid_argument);
}

TEST(RandomCache, FactoriesProduceNamedDistributions) {
  const auto uniform = RandomCachePolicy::uniform(100, 1);
  EXPECT_NE(uniform->distribution().name().find("Uniform"), std::string::npos);
  const auto expo = RandomCachePolicy::exponential(0.9, 100, 1);
  EXPECT_NE(expo->distribution().name().find("TruncGeom"), std::string::npos);
}

TEST(RandomCache, CloneCopiesGroupState) {
  RandomCachePolicy policy(std::make_unique<DegenerateK>(1), /*seed=*/8,
                           Grouping::kByNamespace, 1);
  cache::Entry entry = make_entry("/vid/0", true);
  policy.on_insert(entry, interest_for("/vid/0", true), 0);
  (void)policy.on_cached_lookup(entry, interest_for("/vid/0"), true, 0);  // c -> 1
  const auto copy = policy.clone();
  cache::Entry entry2 = make_entry("/vid/1", true);
  EXPECT_EQ(copy->on_cached_lookup(entry2, interest_for("/vid/1"), true, 0).action,
            LookupAction::kExposeHit);  // group counter carried over
}

TEST(LookupActionToString, AllValuesNamed) {
  EXPECT_EQ(to_string(LookupAction::kExposeHit), "ExposeHit");
  EXPECT_EQ(to_string(LookupAction::kDelayedHit), "DelayedHit");
  EXPECT_EQ(to_string(LookupAction::kSimulatedMiss), "SimulatedMiss");
  EXPECT_EQ(to_string(DelayMode::kConstant), "constant");
  EXPECT_EQ(to_string(Grouping::kByNamespace), "namespace");
}

}  // namespace
}  // namespace ndnp::core
