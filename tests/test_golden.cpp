// Golden-vector tests (label: golden).
//
// Each test formats an experiment's output table and compares it to a
// checked-in file under tests/golden/ with tolerance 0 — not epsilon.
// Byte identity is the contract that makes the hot-path rewrites in this
// repository safe: any change to RNG consumption, float summation order,
// cache behavior or table formatting shows up as a diff here.
//
// Regeneration: delete the file(s) and rerun with NDNP_REGEN_GOLDEN=1 in
// the environment; the test writes the current output and passes. Commit
// regenerated vectors only when the behavior change is intended.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "attack/timing_attack.hpp"
#include "core/policies.hpp"
#include "runner/experiments.hpp"
#include "runner/sharded_replay.hpp"
#include "sim/topology.hpp"
#include "util/fault_model.hpp"

namespace {

using namespace ndnp;

#ifndef NDNP_SOURCE_ROOT
#error "tests must be compiled with -DNDNP_SOURCE_ROOT=\"<repo root>\""
#endif

std::filesystem::path golden_path(const std::string& stem) {
  return std::filesystem::path(NDNP_SOURCE_ROOT) / "tests" / "golden" / (stem + ".txt");
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Compare `actual` against the named golden file, creating it when absent
/// and NDNP_REGEN_GOLDEN is set.
void expect_matches_golden(const std::string& stem, const std::string& actual) {
  const std::filesystem::path path = golden_path(stem);
  std::string expected = read_file(path);
  if (expected.empty() && std::getenv("NDNP_REGEN_GOLDEN")) {
    std::filesystem::create_directories(path.parent_path());
    std::ofstream(path) << actual;
    expected = actual;
  }
  ASSERT_FALSE(expected.empty()) << "missing golden vector " << path
                                 << " (regenerate with NDNP_REGEN_GOLDEN=1)";
  EXPECT_EQ(actual, expected) << stem << " diverged from the locked-in output "
                              << "(tolerance is 0, not epsilon)";
}

// --- Figure 5(a): cache-privacy utility sweep over a replayed trace --------

runner::Fig5aConfig fig5a_config(std::uint64_t replay_seed) {
  runner::Fig5aConfig config;
  config.trace_requests = 10'000;
  config.trace_objects = 10'000;
  config.replay_seed = replay_seed;
  return config;
}

TEST(Golden, Fig5aMatchesSingleThreadedGoldenVectors) {
  for (const std::uint64_t seed : {99ULL, 7ULL, 2025ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const runner::Fig5aResult result = runner::run_fig5a(fig5a_config(seed));
    expect_matches_golden("fig5a_seed" + std::to_string(seed), result.format_table());
  }
}

// Degraded network: the same grid with 5 % Gilbert–Elliott burst loss
// (mean burst 4 packets) on the upstream fetch path. The loss chain draws
// from its own RNG stream, so the hit-rate table must stay byte-identical
// to the clean fig5a_seed99 vector; the per-cell mean response delays are
// what the ablation moves, and they are locked in tolerance-0 too.
TEST(Golden, Fig5aDegradedNetworkMatchesGoldenVector) {
  runner::Fig5aConfig config = fig5a_config(99);
  config.upstream_loss = util::GilbertElliottConfig::from_loss_and_burst(0.05, 4.0);
  const runner::Fig5aResult result = runner::run_fig5a(config);
  expect_matches_golden("fig5a_seed99", result.format_table());
  expect_matches_golden("fig5a_degraded_loss5_seed99",
                        result.format_table() + "\n" + result.format_delay_table());
}

// --- Figure 5(b): hit rate by private share (statistical-regression layer) -

TEST(Golden, Fig5bMatchesGoldenVectorsAcrossSeeds) {
  for (const std::uint64_t seed : {99ULL, 7ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    runner::Fig5bConfig config;
    config.trace_requests = 10'000;
    config.trace_objects = 10'000;
    config.replay_seed = seed;
    const runner::Fig5bResult result = runner::run_fig5b(config);
    expect_matches_golden("fig5b_seed" + std::to_string(seed), result.format_table());
  }
}

// --- Figure 3(a): LAN timing-attack report ---------------------------------
// The timing experiments feed the paper's headline privacy numbers; locking
// the full text report (PDF table + summary statistics + both classifier
// accuracies) at a small locked configuration catches any drift in link
// jitter RNG, histogram binning, or the Bayes/threshold computations.

TEST(Golden, Fig3aTimingReportMatchesGoldenVector) {
  attack::TimingAttackConfig config;
  config.trials = 5;
  config.contents_per_trial = 10;
  config.scenario_params = &sim::lan_scenario_params;
  config.seed = 1;
  const attack::TimingAttackResult result = attack::run_timing_attack(config);
  expect_matches_golden("fig3a_trials5_seed1", attack::format_timing_report(result));
}

// --- Sharded replay: merged snapshot locked across PRs ---------------------
// The sharded replayer promises byte-identical merged metrics for any jobs
// count *and* across releases at a fixed seed. The jobs sweep lives in
// tests/test_sharded_replay.cpp; this locks the bytes themselves.

TEST(Golden, ShardedReplayMergedSnapshotMatchesGoldenVector) {
  trace::TraceGenConfig gen;
  gen.num_users = 24;
  gen.num_objects = 2'000;
  gen.num_requests = 8'000;
  gen.seed = 17;
  const trace::Trace tr = trace::generate_trace(gen);

  runner::ShardedReplayConfig config;
  config.shards = 4;
  config.master_seed = 99;
  config.replay.cache_capacity = 200;
  config.replay.policy_factory = [] {
    return core::RandomCachePolicy::exponential(0.999, 201, 5);
  };
  const runner::ShardedReplayResult result = runner::replay_sharded(tr, config);
  expect_matches_golden("sharded_replay_seed99", result.merged_json() + "\n");
}

// --- Figure 4(a): utility loss of uniform vs exponential k -----------------
// Closed-form computation (no RNG), so the three vectors vary the privacy
// parameter delta instead of a seed: any drift in the analytic formulas,
// their summation order, or printf formatting is caught.

TEST(Golden, Fig4aMatchesGoldenVectorsAcrossDeltas) {
  struct Variant {
    double delta;
    std::vector<double> epsilons;  // must satisfy eps <= -ln(1 - delta)
  };
  for (const Variant& variant : {Variant{0.05, {0.03, 0.04, 0.05}},
                                 Variant{0.10, {0.05, 0.08, 0.10}},
                                 Variant{0.02, {0.01, 0.015, 0.02}}}) {
    SCOPED_TRACE("delta=" + std::to_string(variant.delta));
    runner::Fig4aConfig config;
    config.delta = variant.delta;
    config.epsilons = variant.epsilons;
    const runner::Fig4aResult result = runner::run_fig4a(config);
    expect_matches_golden(
        "fig4a_delta" + std::to_string(static_cast<int>(variant.delta * 100)),
        result.format_table());
  }
}

// --- Parallelism must not perturb golden outputs ---------------------------
// The runner promises byte-identical output for any --jobs value: work is
// partitioned by run index, every run owns a seeded RNG derived from that
// index, and merges happen in index order. With the timer-wheel scheduler
// underneath every replayed cell, this sweep re-locks that promise — each
// experiment family reproduces the exact same golden bytes at jobs 1, 4
// and 8.

TEST(Golden, Fig5aByteIdenticalAcrossJobsSweep) {
  for (const std::size_t jobs : {1u, 4u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    runner::Fig5aConfig config = fig5a_config(99);
    config.jobs = jobs;
    const runner::Fig5aResult result = runner::run_fig5a(config);
    expect_matches_golden("fig5a_seed99", result.format_table());
  }
}

TEST(Golden, Fig4aByteIdenticalAcrossJobsSweep) {
  for (const std::size_t jobs : {1u, 4u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    runner::Fig4aConfig config;
    config.jobs = jobs;
    const runner::Fig4aResult result = runner::run_fig4a(config);
    expect_matches_golden("fig4a_delta5", result.format_table());
  }
}

TEST(Golden, TheoryValidationByteIdenticalAcrossJobsSweep) {
  for (const std::size_t jobs : {1u, 4u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    runner::TheoryValidationConfig config;
    config.trials = 20'000;
    config.jobs = jobs;
    const runner::TheoryValidationResult result = runner::run_theory_validation(config);
    expect_matches_golden("theory_seed0",
                          result.format_utility_table() + "\n" + result.format_privacy_table());
  }
}

TEST(Golden, ShardedReplayByteIdenticalAcrossJobsSweep) {
  trace::TraceGenConfig gen;
  gen.num_users = 24;
  gen.num_objects = 2'000;
  gen.num_requests = 8'000;
  gen.seed = 17;
  const trace::Trace tr = trace::generate_trace(gen);
  for (const std::size_t jobs : {1u, 4u, 8u}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    runner::ShardedReplayConfig config;
    config.shards = 4;
    config.jobs = jobs;
    config.master_seed = 99;
    config.replay.cache_capacity = 200;
    config.replay.policy_factory = [] {
      return core::RandomCachePolicy::exponential(0.999, 201, 5);
    };
    const runner::ShardedReplayResult result = runner::replay_sharded(tr, config);
    expect_matches_golden("sharded_replay_seed99", result.merged_json() + "\n");
  }
}

// --- Flight recorder must not perturb golden outputs -----------------------
// The tracer only observes: it never draws RNG, never schedules events.
// Re-running the experiments with per-run tracers bound (in-memory capture)
// must reproduce the exact same golden bytes. The compiled-out variant
// (-DNDNP_TRACING=0) is pinned by a separate CI job against the same files.

TEST(Golden, Fig5aUnchangedWithTracingEnabled) {
  runner::SweepTraceCapture capture;
  runner::Fig5aConfig config = fig5a_config(99);
  config.capture = &capture;
  const runner::Fig5aResult result = runner::run_fig5a(config);
  expect_matches_golden("fig5a_seed99", result.format_table());
  ASSERT_FALSE(capture.runs.empty());
#if NDNP_TRACING
  // The capture is real: every replay cell recorded engine activity.
  // (With -DNDNP_TRACING=0 the instrumentation is compiled out and the
  // tracers legitimately stay empty — the golden comparison above is the
  // point of running this test in that configuration.)
  for (const auto& tracer : capture.runs) EXPECT_GT(tracer->total_recorded(), 0u);
#endif
}

TEST(Golden, Fig4aUnchangedWithTracingEnabled) {
  runner::SweepTraceCapture capture;
  runner::Fig4aConfig config;
  config.capture = &capture;
  const runner::Fig4aResult result = runner::run_fig4a(config);
  expect_matches_golden("fig4a_delta5", result.format_table());
}

TEST(Golden, TheoryValidationUnchangedWithTracingEnabled) {
  runner::SweepTraceCapture capture;
  runner::TheoryValidationConfig config;
  config.trials = 20'000;
  config.capture = &capture;
  const runner::TheoryValidationResult result = runner::run_theory_validation(config);
  expect_matches_golden("theory_seed0",
                        result.format_utility_table() + "\n" + result.format_privacy_table());
}

// --- Theory validation: closed forms vs Monte-Carlo simulation ------------
// Three seed bases; the privacy half is exact (seed-independent) and must
// be byte-identical across all three files.

TEST(Golden, TheoryValidationMatchesGoldenVectorsAcrossSeeds) {
  for (const std::uint64_t seed_base : {0ULL, 1ULL, 2ULL}) {
    SCOPED_TRACE("seed_base=" + std::to_string(seed_base));
    runner::TheoryValidationConfig config;
    config.trials = 20'000;
    config.seed_base = seed_base;
    const runner::TheoryValidationResult result = runner::run_theory_validation(config);
    expect_matches_golden("theory_seed" + std::to_string(seed_base),
                          result.format_utility_table() + "\n" + result.format_privacy_table());
  }
}

}  // namespace
