// Attack-module tests. Trial counts are kept modest for CI speed; the
// bench binaries run the full-scale experiments.
#include <gtest/gtest.h>

#include "attack/conversation.hpp"
#include "attack/pit_probe.hpp"
#include "attack/counter_attack.hpp"
#include "attack/distinguisher.hpp"
#include "attack/fragment_attack.hpp"
#include "attack/probes.hpp"
#include "attack/sequential.hpp"
#include "attack/timing_attack.hpp"
#include "core/policies.hpp"

namespace ndnp::attack {
namespace {

TimingAttackConfig small_config(sim::ScenarioParams (*scenario)(std::uint64_t),
                                std::size_t trials = 6, std::size_t contents = 10) {
  TimingAttackConfig config;
  config.trials = trials;
  config.contents_per_trial = contents;
  config.scenario_params = scenario;
  config.seed = 1234;
  return config;
}

TEST(TimingAttack, LanHitMissSeparateAlmostPerfectly) {
  const TimingAttackResult result = run_timing_attack(small_config(&sim::lan_scenario_params));
  EXPECT_GT(result.bayes_accuracy, 0.99);
  EXPECT_GT(result.threshold_accuracy, 0.99);
  EXPECT_LT(result.hit_rtts_ms.mean(), result.miss_rtts_ms.mean());
}

TEST(TimingAttack, WanStillHighlyDistinguishable) {
  const TimingAttackResult result = run_timing_attack(small_config(&sim::wan_scenario_params));
  EXPECT_GT(result.bayes_accuracy, 0.95);
}

TEST(TimingAttack, ProducerAdjacentIsMuchHarder) {
  TimingAttackConfig config = small_config(&sim::producer_adjacent_scenario_params, 8, 12);
  config.producer_mode = true;
  const TimingAttackResult result = run_timing_attack(config);
  // Single-object probing: well above chance but far from certain —
  // the paper measures ~59 %.
  EXPECT_GT(result.bayes_accuracy, 0.5);
  EXPECT_LT(result.bayes_accuracy, 0.9);
}

TEST(TimingAttack, LocalHostGapIsObvious) {
  const TimingAttackResult result =
      run_timing_attack(small_config(&sim::local_host_scenario_params));
  EXPECT_GT(result.bayes_accuracy, 0.99);
  EXPECT_GT(result.miss_rtts_ms.mean(), 2.0 * result.hit_rtts_ms.mean());
}

TEST(TimingAttack, AlwaysDelayCountermeasureDefeatsAttack) {
  // Install the content-specific Always-Delay policy at R and mark all
  // probe content private: hit and miss RTTs become indistinguishable.
  TimingAttackConfig config = small_config(&sim::lan_scenario_params);
  config.scenario_params = [](std::uint64_t seed) {
    sim::ScenarioParams params = sim::lan_scenario_params(seed);
    params.producer_config.mark_private = true;
    params.router_policy = [] {
      return std::make_unique<core::AlwaysDelayPolicy>(
          core::AlwaysDelayPolicy::content_specific());
    };
    return params;
  };
  const TimingAttackResult result = run_timing_attack(config);
  EXPECT_LT(result.bayes_accuracy, 0.75);  // down from > 0.99 without the defense
}

TEST(TimingAttack, DecisionProtocolNearPerfectOnLan) {
  const double accuracy = run_decision_protocol(small_config(&sim::lan_scenario_params, 30));
  EXPECT_GT(accuracy, 0.95);
}

TEST(TimingAttack, DecisionProtocolDegradedByCountermeasure) {
  TimingAttackConfig config = small_config(&sim::lan_scenario_params, 30);
  config.scenario_params = [](std::uint64_t seed) {
    sim::ScenarioParams params = sim::lan_scenario_params(seed);
    params.producer_config.mark_private = true;
    params.router_policy = [] {
      return std::make_unique<core::AlwaysDelayPolicy>(
          core::AlwaysDelayPolicy::content_specific());
    };
    return params;
  };
  const double accuracy = run_decision_protocol(config);
  EXPECT_LT(accuracy, 0.8);
}

TEST(TimingAttack, SimulatedMissLeaksThroughUnprotectedUpstreamCache) {
  // Deployment caveat (ours): Random-Cache installed only at the
  // consumer-facing router R forwards its simulated misses upstream, where
  // the next-hop router's unprotected cache answers at neighbor speed —
  // the "miss" RTT still separates requested from never-requested content.
  // Protecting every router restores the intended behavior.
  const auto config_with = [](bool protect_core) {
    TimingAttackConfig config;
    config.trials = 30;
    config.seed = 4242;
    config.scenario_params = [protect_core](std::uint64_t seed) {
      sim::ScenarioParams params = sim::lan_scenario_params(seed);
      params.producer_config.mark_private = true;
      const auto factory = [] { return core::RandomCachePolicy::uniform(200, 9); };
      params.router_policy = factory;
      if (protect_core) params.core_router_policy = factory;
      return params;
    };
    return config;
  };
  EXPECT_GT(run_decision_protocol(config_with(false)), 0.9);  // leaks
  EXPECT_LT(run_decision_protocol(config_with(true)), 0.7);   // fixed
}

TEST(TimingAttack, RequiresScenarioFactory) {
  TimingAttackConfig config;
  config.trials = 1;
  EXPECT_THROW((void)run_timing_attack(config), std::invalid_argument);
  EXPECT_THROW((void)run_decision_protocol(config), std::invalid_argument);
}

TEST(BestThreshold, SeparatesDisjointSamples) {
  util::SampleSet low;
  util::SampleSet high;
  for (double x = 0.0; x < 1.0; x += 0.1) low.add(x);
  for (double x = 5.0; x < 6.0; x += 0.1) high.add(x);
  const auto [thr, acc] = best_threshold(low, high);
  EXPECT_DOUBLE_EQ(acc, 1.0);
  EXPECT_GT(thr, 0.9);
  EXPECT_LE(thr, 5.0);
}

TEST(BestThreshold, OverlappingSamplesBelowOne) {
  util::Rng rng(3);
  util::SampleSet low;
  util::SampleSet high;
  for (int i = 0; i < 500; ++i) {
    low.add(rng.normal(0.0, 1.0));
    high.add(rng.normal(1.0, 1.0));
  }
  const auto [thr, acc] = best_threshold(low, high);
  EXPECT_GT(acc, 0.6);
  EXPECT_LT(acc, 0.8);  // theoretical optimum ~0.69
  EXPECT_NEAR(thr, 0.5, 0.4);
}

TEST(BestThreshold, RequiresBothSides) {
  util::SampleSet low;
  const util::SampleSet empty;
  low.add(1.0);
  EXPECT_THROW((void)best_threshold(low, empty), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scope probe

TEST(ScopeProbe, HonoringRouterYieldsDeterministicOracle) {
  sim::ScenarioParams params = sim::lan_scenario_params(5);
  params.router_config.honor_scope = true;
  auto scenario = sim::make_probe_scenario(params);
  const ndn::Name target = scenario->producer->prefix().append("doc");

  const bool honors =
      detect_scope_honoring(*scenario, scenario->producer->prefix().append("fresh1"));
  EXPECT_TRUE(honors);

  // Not cached yet.
  EXPECT_EQ(run_scope_probe(*scenario, target, honors).verdict,
            ScopeProbeVerdict::kNotCached);

  // Victim fetches; now the probe proves the cache holds it.
  bool done = false;
  scenario->user->fetch(target,
                        [&done](const ndn::Data&, util::SimDuration) { done = true; });
  while (!done && scenario->topology.scheduler().run_one()) {
  }
  const ScopeProbeResult result = run_scope_probe(*scenario, target, honors);
  EXPECT_EQ(result.verdict, ScopeProbeVerdict::kCached);
  EXPECT_TRUE(result.data_returned);
}

TEST(ScopeProbe, IgnoringRouterIsInconclusive) {
  sim::ScenarioParams params = sim::lan_scenario_params(6);
  params.router_config.honor_scope = false;
  auto scenario = sim::make_probe_scenario(params);

  const bool honors =
      detect_scope_honoring(*scenario, scenario->producer->prefix().append("fresh1"));
  EXPECT_FALSE(honors);  // data came back for a fresh name: scope ignored

  const ScopeProbeResult result =
      run_scope_probe(*scenario, scenario->producer->prefix().append("x"), honors);
  EXPECT_EQ(result.verdict, ScopeProbeVerdict::kInconclusive);
}

TEST(ScopeProbe, VerdictNames) {
  EXPECT_EQ(to_string(ScopeProbeVerdict::kCached), "cached");
  EXPECT_EQ(to_string(ScopeProbeVerdict::kNotCached), "not-cached");
  EXPECT_EQ(to_string(ScopeProbeVerdict::kInconclusive), "inconclusive");
}

// ---------------------------------------------------------------------------
// Counter attack on the naive scheme

class CounterAttackSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CounterAttackSweep, RecoversExactPriorCount) {
  constexpr std::int64_t kThreshold = 5;
  const std::int64_t x = GetParam();
  const CounterAttackResult result = run_naive_counter_attack(kThreshold, x);
  EXPECT_EQ(result.inferred_prior_requests, x)
      << "the naive scheme leaks the exact request count";
}

INSTANTIATE_TEST_SUITE_P(PriorRequests, CounterAttackSweep, ::testing::Values(0, 1, 2, 3, 4, 5),
                         [](const auto& info) { return "x" + std::to_string(info.param); });

TEST(CounterAttack, SaturatesBeyondK) {
  const CounterAttackResult result = run_naive_counter_attack(5, 9);
  EXPECT_EQ(result.inferred_prior_requests, 6);  // reported as "more than k"
  EXPECT_EQ(result.probes_used, 1);
}

TEST(CounterAttack, RejectsNegativeArguments) {
  EXPECT_THROW((void)run_naive_counter_attack(-1, 0), std::invalid_argument);
  EXPECT_THROW((void)run_naive_counter_attack(3, -2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Random-Cache distinguishing game

TEST(Distinguisher, AccuracyNeverBeatsBayesBound) {
  DistinguisherConfig config;
  config.x = 2;
  config.t = 30;
  config.rounds = 20'000;
  const core::UniformK dist(20);
  const DistinguisherResult result = run_distinguishing_game(dist, config);
  // 3-sigma statistical slack on 20k rounds.
  EXPECT_LE(result.accuracy, result.bayes_bound + 0.011);
  EXPECT_GE(result.accuracy, 0.5 - 0.011);
}

TEST(Distinguisher, UniformBoundMatchesTheoremDelta) {
  // For Uniform-Random-Cache, TV = delta/2 = x/K, so the Bayes bound is
  // 1/2 + x/(2K).
  DistinguisherConfig config;
  config.x = 3;
  config.t = 40;
  config.rounds = 1000;
  const core::UniformK dist(30);
  const DistinguisherResult result = run_distinguishing_game(dist, config);
  EXPECT_NEAR(result.bayes_bound, 0.5 + 3.0 / (2.0 * 30.0), 1e-9);
}

TEST(Distinguisher, LargerDomainWeakensAdversary) {
  DistinguisherConfig config;
  config.x = 2;
  config.t = 250;
  config.rounds = 1000;
  const DistinguisherResult small = run_distinguishing_game(core::UniformK(10), config);
  const DistinguisherResult large = run_distinguishing_game(core::UniformK(200), config);
  EXPECT_GT(small.bayes_bound, large.bayes_bound);
}

TEST(Distinguisher, EngineLeaksNoMoreThanAlgorithm) {
  DistinguisherConfig config;
  config.x = 2;
  config.t = 25;
  config.rounds = 4'000;
  const core::UniformK dist(15);
  const DistinguisherResult pure = run_distinguishing_game(dist, config);
  const DistinguisherResult engine = run_engine_distinguishing_game(dist, config);
  EXPECT_NEAR(engine.bayes_bound, pure.bayes_bound, 1e-9);
  EXPECT_LE(engine.accuracy, engine.bayes_bound + 0.025);  // 3-sigma on 4k rounds
}

TEST(Distinguisher, NaiveDegenerateKFullyDistinguishable) {
  // Degenerate K is the naive scheme: with enough probes the adversary
  // wins (almost) always — bound = 1.
  DistinguisherConfig config;
  config.x = 2;
  config.t = 10;
  config.rounds = 2'000;
  const DistinguisherResult result = run_distinguishing_game(core::DegenerateK(5), config);
  EXPECT_NEAR(result.bayes_bound, 1.0, 1e-9);
  EXPECT_GT(result.accuracy, 0.98);
}

TEST(Distinguisher, RejectsBadConfig) {
  const core::UniformK dist(5);
  DistinguisherConfig config;
  config.x = 0;
  EXPECT_THROW((void)run_distinguishing_game(dist, config), std::invalid_argument);
  config.x = 1;
  config.t = 0;
  EXPECT_THROW((void)run_distinguishing_game(dist, config), std::invalid_argument);
  config.t = 1;
  config.rounds = 0;
  EXPECT_THROW((void)run_engine_distinguishing_game(dist, config), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fragment amplification

TEST(FragmentAttack, AmplifiesProducerAdjacentDetection) {
  FragmentAttackConfig config;
  config.trials = 60;
  config.n_fragments = 8;
  config.calibration_probes = 25;
  config.scenario_params = &sim::producer_adjacent_scenario_params;
  config.seed = 77;
  const FragmentAttackResult result = run_fragment_attack(config);
  // Single-object accuracy is mediocre (paper: ~0.59) ...
  EXPECT_GT(result.per_object_accuracy, 0.5);
  EXPECT_LT(result.per_object_accuracy, 0.8);
  // ... and 8 fragments amplify it substantially. The operational gain is
  // capped by calibration-threshold bias shared across fragments (a
  // correlated error the paper's independence analysis ignores), so the
  // measured accuracy lands below the idealized 1-(1-p)^n ~ 0.999.
  EXPECT_GT(result.accuracy, result.per_object_accuracy + 0.1);
  EXPECT_GT(result.detection_rate, 0.75);
  EXPECT_LT(result.false_alarm_rate, 0.3);
  EXPECT_GT(result.analytic_success, 0.95);
}

TEST(FragmentAttack, RejectsBadConfig) {
  FragmentAttackConfig config;
  EXPECT_THROW((void)run_fragment_attack(config), std::invalid_argument);  // no scenario
  config.scenario_params = &sim::lan_scenario_params;
  config.n_fragments = 0;
  EXPECT_THROW((void)run_fragment_attack(config), std::invalid_argument);
}

}  // namespace
}  // namespace ndnp::attack

namespace ndnp::attack {
namespace {

TEST(ConversationAttack, DetectsCallsWithPredictableNames) {
  ConversationAttackConfig config;
  config.trials = 30;
  config.frames = 10;
  config.unpredictable_names = false;
  config.seed = 321;
  const ConversationAttackResult result = run_conversation_attack(config);
  EXPECT_GT(result.detection_rate, 0.95);
  EXPECT_LT(result.false_alarm_rate, 0.1);
  EXPECT_GT(result.accuracy, 0.9);
}

TEST(ConversationAttack, UnpredictableNamesCollapseDetection) {
  ConversationAttackConfig config;
  config.trials = 30;
  config.frames = 10;
  config.unpredictable_names = true;
  config.seed = 321;
  const ConversationAttackResult result = run_conversation_attack(config);
  // The adversary's probes never return data: it can only say "no call".
  EXPECT_DOUBLE_EQ(result.detection_rate, 0.0);
  EXPECT_DOUBLE_EQ(result.false_alarm_rate, 0.0);
  EXPECT_NEAR(result.accuracy, 0.5, 0.25);
}

}  // namespace
}  // namespace ndnp::attack

namespace ndnp::attack {
namespace {

TEST(PitCollapseAttack, DetectsInFlightRequests) {
  PitProbeConfig config;
  config.trials = 40;
  config.seed = 606;
  const PitProbeResult result = run_pit_collapse_attack(config);
  EXPECT_GT(result.detection_rate, 0.9);
  EXPECT_LT(result.false_alarm_rate, 0.1);
  EXPECT_GT(result.accuracy, 0.9);
}

TEST(PitCollapseAttack, CacheSidePoliciesDoNotHelp) {
  // The whole point of the extension: Always-Delay guards the CS, but
  // interest collapsing happens on the miss path before the content is
  // cached — the in-flight channel stays wide open.
  PitProbeConfig config;
  config.trials = 40;
  config.seed = 606;
  config.router_policy = [] {
    return std::make_unique<core::AlwaysDelayPolicy>(
        core::AlwaysDelayPolicy::content_specific());
  };
  const PitProbeResult result = run_pit_collapse_attack(config);
  EXPECT_GT(result.accuracy, 0.9);
}

}  // namespace
}  // namespace ndnp::attack

namespace ndnp::attack {
namespace {

TEST(PitCollapseAttack, CollapsePaddingClosesTheChannel) {
  PitProbeConfig config;
  config.trials = 40;
  config.seed = 606;
  config.pad_collapsed_private = true;
  const PitProbeResult result = run_pit_collapse_attack(config);
  // The collapsed probe now takes exactly as long as a fresh fetch: the
  // adversary is reduced to guessing.
  EXPECT_LT(result.detection_rate, 0.2);
  EXPECT_NEAR(result.accuracy, 0.5, 0.25);
}

}  // namespace
}  // namespace ndnp::attack

namespace ndnp::attack {
namespace {

TEST(SprtAttack, NaiveDegenerateDecidedQuicklyAndCorrectly) {
  // Fixed threshold: the miss-run length separates the states perfectly,
  // so the SPRT decides every round correctly within ~k probes.
  SprtConfig config;
  config.x = 2;
  config.rounds = 4'000;
  const SprtResult result = run_sprt_attack(core::DegenerateK(6), config);
  EXPECT_GT(result.accuracy, 0.99);
  EXPECT_EQ(result.undecided_rate, 0.0);
  EXPECT_LT(result.mean_probes, 9.0);
}

TEST(SprtAttack, UniformLeavesMostRoundsUndecided) {
  // Interior outcomes carry zero likelihood ratio under the uniform
  // scheme: only the 2x/K boundary mass can ever cross the thresholds.
  SprtConfig config;
  config.x = 2;
  config.rounds = 10'000;
  const SprtResult result = run_sprt_attack(core::UniformK(50), config);
  EXPECT_GT(result.undecided_rate, 0.85);
  // What does get decided is (nearly) always right.
  const double decided = 1.0 - result.undecided_rate;
  EXPECT_LE(result.accuracy, decided + 0.01);
  EXPECT_GT(result.accuracy, decided * 0.9);
}

TEST(SprtAttack, ExponentialDecidesExactlyOnOneSidedMass) {
  // On a single content the interior LLR is pinned at x ln(alpha), which
  // never crosses the thresholds: the adversary decides iff it sees the
  // S_x-only immediate hit (prob 1 - alpha^x) or the S_0-only over-long
  // run (negligible at K = 50). Undecided rate is therefore
  // 1/2 + alpha^x / 2 in closed form, and every decision is correct.
  SprtConfig config;
  config.x = 2;
  config.rounds = 20'000;
  constexpr double kAlpha = 0.7;
  const SprtResult result = run_sprt_attack(core::TruncatedGeometricK(kAlpha, 50), config);
  EXPECT_NEAR(result.undecided_rate, 0.5 * (1.0 + kAlpha * kAlpha), 0.02);
  EXPECT_NEAR(result.accuracy, 1.0 - result.undecided_rate, 0.02);
  EXPECT_LT(result.mean_probes, 25.0);
}

TEST(SprtAttack, SmallerAlphaLeaksFaster) {
  SprtConfig config;
  config.x = 2;
  config.rounds = 6'000;
  const SprtResult strong = run_sprt_attack(core::TruncatedGeometricK(0.95, 60), config);
  const SprtResult weak = run_sprt_attack(core::TruncatedGeometricK(0.6, 60), config);
  EXPECT_GT(strong.undecided_rate, weak.undecided_rate);
}

TEST(SprtAttack, ValidatesArguments) {
  const core::UniformK dist(10);
  SprtConfig config;
  config.x = 0;
  EXPECT_THROW((void)run_sprt_attack(dist, config), std::invalid_argument);
  config.x = 1;
  config.alpha_error = 0.6;
  EXPECT_THROW((void)run_sprt_attack(dist, config), std::invalid_argument);
  config.alpha_error = 0.05;
  config.rounds = 0;
  EXPECT_THROW((void)run_sprt_attack(dist, config), std::invalid_argument);
}

}  // namespace
}  // namespace ndnp::attack
