#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace ndnp::core {
namespace {

// ---------------------------------------------------------------------------
// Closed forms vs exact summation

TEST(Theory, UniformClosedFormMatchesSummation) {
  const std::int64_t domain = 40;
  const UniformK dist(domain);
  for (std::int64_t c = 1; c <= 120; c += 3) {
    EXPECT_NEAR(uniform_expected_misses(c, domain), expected_misses(c, dist), 1e-9)
        << "c=" << c;
  }
}

TEST(Theory, ExpoClosedFormMatchesSummation) {
  for (const double alpha : {0.3, 0.7, 0.95, 0.999}) {
    for (const std::int64_t domain : {5LL, 20LL, 100LL}) {
      const TruncatedGeometricK dist(alpha, domain);
      for (std::int64_t c = 1; c <= 2 * domain; c += 7) {
        EXPECT_NEAR(expo_expected_misses(c, alpha, domain), expected_misses(c, dist), 1e-8)
            << "alpha=" << alpha << " K=" << domain << " c=" << c;
      }
    }
  }
}

TEST(Theory, UtilityIsOneMinusNormalizedMisses) {
  const UniformK dist(10);
  for (std::int64_t c = 1; c <= 30; ++c) {
    EXPECT_NEAR(utility(c, dist), 1.0 - expected_misses(c, dist) / static_cast<double>(c),
                1e-12);
  }
}

TEST(Theory, UtilityIncreasesWithRequests) {
  // More requests amortize the fixed miss budget: u(c) must be
  // non-decreasing (visible in Figure 4(a)).
  for (std::int64_t domain : {10LL, 50LL}) {
    double prev = uniform_utility(1, domain);
    for (std::int64_t c = 2; c <= 3 * domain; ++c) {
      const double u = uniform_utility(c, domain);
      EXPECT_GE(u, prev - 1e-12) << "c=" << c;
      prev = u;
    }
  }
}

TEST(Theory, ExpoUtilityIncreasesWithRequests) {
  double prev = expo_utility(1, 0.9, 50);
  for (std::int64_t c = 2; c <= 150; ++c) {
    const double u = expo_utility(c, 0.9, 50);
    EXPECT_GE(u, prev - 1e-12);
    prev = u;
  }
}

TEST(Theory, ExpoBeatsUniformAtMatchedPrivacy) {
  // The headline of Figure 4: at equal (k, delta) targets, the exponential
  // scheme yields higher utility (it can concentrate mass on small k_C).
  const std::int64_t k = 5;
  const double delta = 0.05;
  const std::int64_t uniform_domain = uniform_domain_for_delta(k, delta);
  const auto expo = solve_expo_params(k, /*epsilon=*/0.05, delta);
  ASSERT_TRUE(expo.has_value());
  for (std::int64_t c = 5; c <= 100; c += 5) {
    EXPECT_GE(expo_utility(c, expo->alpha, expo->domain) + 1e-9,
              uniform_utility(c, uniform_domain))
        << "c=" << c;
  }
}

TEST(Theory, UtilityBoundedByOne) {
  for (std::int64_t c = 1; c <= 100; c += 9) {
    EXPECT_LE(uniform_utility(c, 30), 1.0);
    EXPECT_GE(uniform_utility(c, 30), 0.0);
    EXPECT_LE(expo_utility(c, 0.8, 30), 1.0);
    EXPECT_GE(expo_utility(c, 0.8, 30), 0.0);
  }
}

// ---------------------------------------------------------------------------
// Privacy budgets (Theorems VI.1 and VI.3)

TEST(Theory, UniformPrivacyBudget) {
  const PrivacyBudget budget = uniform_privacy(5, 200);
  EXPECT_DOUBLE_EQ(budget.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(budget.delta, 2.0 * 5 / 200.0);
}

TEST(Theory, UniformDomainForDeltaInverts) {
  for (const std::int64_t k : {1LL, 5LL, 20LL}) {
    for (const double delta : {0.01, 0.05, 0.2}) {
      const std::int64_t domain = uniform_domain_for_delta(k, delta);
      EXPECT_LE(uniform_privacy(k, domain).delta, delta + 1e-12);
      if (domain > 1) {
        EXPECT_GT(uniform_privacy(k, domain - 1).delta, delta - 1e-12);
      }
    }
  }
}

TEST(Theory, ExpoPrivacyEpsilon) {
  const double alpha = 0.9;
  const std::int64_t k = 5;
  EXPECT_NEAR(expo_privacy(k, alpha, 100).epsilon, -5.0 * std::log(0.9), 1e-12);
}

TEST(Theory, ExpoPrivacyDeltaMatchesTheorem) {
  const double alpha = 0.8;
  const std::int64_t k = 3;
  const std::int64_t domain = 30;
  const double ak = std::pow(alpha, 3.0);
  const double aK = std::pow(alpha, 30.0);
  const double aKk = std::pow(alpha, 27.0);
  EXPECT_NEAR(expo_privacy(k, alpha, domain).delta, (1 - ak + aKk - aK) / (1 - aK), 1e-12);
}

TEST(Theory, ExpoDeltaDecreasesInDomain) {
  // Strictly decreasing mathematically; at large K it saturates at the
  // 1 - alpha^k floor within double precision, hence the tolerance. Note
  // delta > 1 is possible (and vacuous) when K barely exceeds k.
  double prev = std::numeric_limits<double>::infinity();
  for (std::int64_t domain = 6; domain <= 600; domain += 13) {
    const double delta = expo_privacy(5, 0.9, domain).delta;
    EXPECT_LE(delta, prev + 1e-12);
    prev = delta;
  }
  EXPECT_NEAR(prev, 1.0 - std::pow(0.9, 5.0), 1e-9);
}

TEST(Theory, ExpoDeltaFloorIsOneMinusAlphaToK) {
  // K -> infinity limit; finite K always sits above it.
  const double alpha = 0.95;
  const std::int64_t k = 4;
  const double floor = 1.0 - std::pow(alpha, 4.0);
  EXPECT_GE(expo_privacy(k, alpha, 10'000).delta, floor - 1e-12);
  EXPECT_NEAR(expo_privacy(k, alpha, 10'000).delta, floor, 1e-6);
}

TEST(Theory, ExpoAlphaForEpsilonInverts) {
  for (const std::int64_t k : {1LL, 5LL}) {
    for (const double eps : {0.01, 0.05, 0.5}) {
      const double alpha = expo_alpha_for_epsilon(k, eps);
      EXPECT_NEAR(expo_privacy(k, alpha, 1'000).epsilon, eps, 1e-12);
    }
  }
}

TEST(Theory, ExpoDomainForDeltaFindsSmallest) {
  const std::int64_t k = 5;
  const double alpha = 0.99;
  const double target = 0.1;
  const auto domain = expo_domain_for_delta(k, alpha, target);
  ASSERT_TRUE(domain.has_value());
  EXPECT_LE(expo_privacy(k, alpha, *domain).delta, target);
  if (*domain > k + 1) {
    EXPECT_GT(expo_privacy(k, alpha, *domain - 1).delta, target);
  }
}

TEST(Theory, ExpoDomainForDeltaUnattainableBelowFloor) {
  // floor = 1 - 0.9^5 ~ 0.41; a delta of 0.3 cannot be met.
  EXPECT_FALSE(expo_domain_for_delta(5, 0.9, 0.3).has_value());
}

TEST(Theory, SolveExpoParamsMeetsBothTargets) {
  const std::int64_t k = 5;
  const double eps = 0.005;
  const double delta = 0.05;
  const auto params = solve_expo_params(k, eps, delta);
  ASSERT_TRUE(params.has_value());
  const PrivacyBudget budget = expo_privacy(k, params->alpha, params->domain);
  EXPECT_NEAR(budget.epsilon, eps, 1e-12);
  EXPECT_LE(budget.delta, delta);
}

TEST(Theory, MaxEpsilonForDelta) {
  EXPECT_NEAR(max_epsilon_for_delta(0.05), -std::log(0.95), 1e-12);
  EXPECT_THROW((void)max_epsilon_for_delta(0.0), std::invalid_argument);
  EXPECT_THROW((void)max_epsilon_for_delta(1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Verbatim paper formulas: pinned to within one miss of the exact value
// (see the header note on the paper's convention inconsistency).

TEST(Theory, PaperUniformFormulaWithinOneMiss) {
  for (const std::int64_t domain : {10LL, 50LL}) {
    for (std::int64_t c = 1; c <= 2 * domain; ++c) {
      EXPECT_NEAR(paper_uniform_expected_misses(c, domain),
                  uniform_expected_misses(c, domain), 1.0)
          << "c=" << c << " K=" << domain;
    }
  }
}

TEST(Theory, PaperUniformFirstBranchIsExact) {
  for (std::int64_t c = 1; c < 50; ++c)
    EXPECT_NEAR(paper_uniform_expected_misses(c, 50), uniform_expected_misses(c, 50), 1e-12);
}

TEST(Theory, PaperExpoFormulaWithinOneMiss) {
  for (const double alpha : {0.5, 0.9, 0.99}) {
    for (std::int64_t c = 1; c <= 60; ++c) {
      EXPECT_NEAR(paper_expo_expected_misses(c, alpha, 30),
                  expo_expected_misses(c, alpha, 30), 1.0 + 1e-9)
          << "alpha=" << alpha << " c=" << c;
    }
  }
}

TEST(Theory, PaperExpoAtCEqualsOneIsOneMissExactly) {
  // The paper's convention counts the compulsory insertion miss:
  // E[M(1)] = 1 for every alpha, while the post-insertion convention gives
  // Pr[K >= 1].
  EXPECT_NEAR(paper_expo_expected_misses(1, 0.8, 20), 1.0, 1e-9);
  EXPECT_LT(expo_expected_misses(1, 0.8, 20), 1.0);
}

// ---------------------------------------------------------------------------
// Argument validation

TEST(Theory, RejectsBadArguments) {
  EXPECT_THROW((void)uniform_expected_misses(0, 10), std::invalid_argument);
  EXPECT_THROW((void)uniform_expected_misses(5, 0), std::invalid_argument);
  EXPECT_THROW((void)expo_expected_misses(5, 1.5, 10), std::invalid_argument);
  EXPECT_THROW((void)expo_alpha_for_epsilon(0, 0.1), std::invalid_argument);
  EXPECT_THROW((void)expo_alpha_for_epsilon(5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)expo_domain_for_delta(5, 0.9, 0.0), std::invalid_argument);
  EXPECT_THROW((void)uniform_domain_for_delta(0, 0.1), std::invalid_argument);
}

// Parameterized sweep: the Figure 4(b) parameterization is solvable across
// its whole (k, delta) grid and the resulting schemes honor their budgets.
struct Fig4Params {
  std::int64_t k;
  double delta;
};

class Fig4Sweep : public ::testing::TestWithParam<Fig4Params> {};

TEST_P(Fig4Sweep, ParameterizationSolvableAndSound) {
  const auto [k, delta] = GetParam();
  const double eps = max_epsilon_for_delta(delta);
  // With eps = -ln(1-delta) the delta target equals the K -> infinity
  // floor; the solver's slack picks a finite K within relative 1e-6 of it.
  const auto params = solve_expo_params(k, eps, delta);
  ASSERT_TRUE(params.has_value());
  const PrivacyBudget budget = expo_privacy(k, params->alpha, params->domain);
  EXPECT_LE(budget.epsilon, eps + 1e-12);
  EXPECT_LE(budget.delta, delta * (1.0 + 1e-5));

  const std::int64_t uniform_domain = uniform_domain_for_delta(k, delta);
  EXPECT_LE(uniform_privacy(k, uniform_domain).delta, delta + 1e-12);

  // Utility difference is non-negative and bounded by ~0.15 (the paper
  // reports up to ~12 %).
  for (std::int64_t c = 1; c <= 100; c += 9) {
    const double diff =
        expo_utility(c, params->alpha, params->domain) - uniform_utility(c, uniform_domain);
    EXPECT_GE(diff, -1e-9) << "c=" << c;
    EXPECT_LE(diff, 0.2) << "c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Fig4Sweep,
    ::testing::Values(Fig4Params{1, 0.01}, Fig4Params{1, 0.03}, Fig4Params{1, 0.05},
                      Fig4Params{5, 0.01}, Fig4Params{5, 0.03}, Fig4Params{5, 0.05}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.k) + "_delta" +
             std::to_string(static_cast<int>(info.param.delta * 100));
    });

}  // namespace
}  // namespace ndnp::core

namespace ndnp::core {
namespace {

TEST(ReproductionPins, Figure4bMaxUtilityDifferenceIsAboutTwelvePercent) {
  // The paper's headline: "the exponential scheme exhibits up to 12%
  // performance gain over the uniform one" at eps = -ln(1-delta). Pin the
  // reproduced maxima (0.1281 at k=1, 0.1254 at k=5 over c <= 100,
  // delta in {0.01, 0.03, 0.05}) to the ~12% band.
  for (const std::int64_t k : {1LL, 5LL}) {
    double max_diff = 0.0;
    for (const double delta : {0.01, 0.03, 0.05}) {
      const double eps = max_epsilon_for_delta(delta);
      const auto expo = solve_expo_params(k, eps, delta);
      ASSERT_TRUE(expo.has_value());
      const std::int64_t uniform_domain = uniform_domain_for_delta(k, delta);
      for (std::int64_t c = 1; c <= 100; ++c) {
        max_diff = std::max(max_diff, expo_utility(c, expo->alpha, expo->domain) -
                                          uniform_utility(c, uniform_domain));
      }
    }
    EXPECT_GT(max_diff, 0.10) << "k=" << k;
    EXPECT_LT(max_diff, 0.15) << "k=" << k;
  }
}

TEST(ReproductionPins, Figure5ParameterizationIsThePapersOne) {
  // Section VII sets k = 5, eps = 0.005: the solved schemes the Figure-5
  // benches use must be Uniform K = 200 and Expo alpha ~ 0.999, K = 201.
  EXPECT_EQ(uniform_domain_for_delta(5, 0.05), 200);
  const auto expo = solve_expo_params(5, 0.005, 0.05);
  ASSERT_TRUE(expo.has_value());
  EXPECT_NEAR(expo->alpha, std::exp(-0.001), 1e-12);
  EXPECT_EQ(expo->domain, 201);
}

}  // namespace
}  // namespace ndnp::core
