// Differential soak test: the timer-wheel scheduler vs the binary-heap
// reference, in the style of test_cs_differential.cpp.
//
// Both schedulers are driven in lockstep through identical seeded op
// streams — schedule_at / schedule_in at wildly mixed time scales (same
// tick, sub-tick, cross-slot, cross-level, far-future), cancellable
// schedules, cancellations, run_one, run_until — while every dispatched
// event deterministically decides (from a SplitMix64 stream keyed by its
// own id) whether to schedule children of its own. After every control op
// the externally observable state must match exactly: dispatch log
// (event id, timestamp) entries, clock, processed count, pending count,
// and cancel() return values. At the end both queues are drained and the
// full dispatch logs plus an FNV-1a digest are compared entry for entry.
//
// If the wheel's slot placement, bitmap scan, cascade tie-breaking, or
// ready-heap ordering ever diverges from plain (time, seq) FIFO dispatch,
// some op in these streams will catch it.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

// ---------------------------------------------------------------------------
// Counting allocator (same technique as test_tracing.cpp, which lives in a
// different binary): replacement global operator new so the steady-state
// zero-allocation proof below can compare deltas across a straight-line
// region with no other allocation sources.

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

// The replacement operators pair ::new with std::free by design; GCC's
// heuristic cannot see that this *is* the allocation function.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace ndnp::sim {
namespace {

// --- lockstep driver --------------------------------------------------------

struct LogEntry {
  std::uint64_t id;
  util::SimTime at;
  bool operator==(const LogEntry&) const = default;
};

/// One scheduler plus its observable dispatch history. Events are
/// identified by ids assigned in schedule order (identical across drivers
/// because dispatch order is identical); each dispatched event derives any
/// children it spawns purely from its own id, so both drivers' event trees
/// are equal by construction.
template <typename Sched>
class Driver {
 public:
  explicit Driver(std::uint64_t master_seed) : master_seed_(master_seed) {}

  Sched& sched() { return sched_; }
  const std::vector<LogEntry>& log() const { return log_; }
  std::size_t handle_count() const { return handles_.size(); }

  void schedule_plain(util::SimDuration delay, bool absolute) {
    const std::uint64_t id = next_id_++;
    auto event = [this, id] { on_dispatch(id); };
    if (absolute) {
      sched_.schedule_at(sched_.now() + delay, event);
    } else {
      sched_.schedule_in(delay, event);
    }
  }

  void schedule_cancellable(util::SimDuration delay) {
    const std::uint64_t id = next_id_++;
    handles_.push_back(sched_.schedule_cancellable_in(delay, [this, id] { on_dispatch(id); }));
  }

  bool cancel(std::size_t handle_index) { return sched_.cancel(handles_[handle_index]); }

  std::uint64_t digest() const {
    std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
    auto mix = [&hash](std::uint64_t value) {
      for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xFF;
        hash *= 1099511628211ULL;
      }
    };
    for (const LogEntry& entry : log_) {
      mix(entry.id);
      mix(static_cast<std::uint64_t>(entry.at));
    }
    return hash;
  }

 private:
  void on_dispatch(std::uint64_t id) {
    log_.push_back(LogEntry{id, sched_.now()});
    // Child decisions come from the event's own id, not the shared op
    // stream, so nested scheduling exercises schedule-during-dispatch in
    // both drivers identically.
    util::SplitMix64 mix(master_seed_ ^ (id * 0x9E3779B97F4A7C15ULL));
    const std::uint64_t roll = mix.next() % 100;
    if (roll < 25) {  // one child, mixed magnitudes incl. same-timestamp
      const std::uint64_t pick = mix.next() % 5;
      const util::SimDuration delay =
          pick == 0 ? 0
                    : static_cast<util::SimDuration>(mix.next() % (std::uint64_t{1} << (6 * pick)));
      const std::uint64_t child = next_id_++;
      sched_.schedule_in(delay, [this, child] { on_dispatch(child); });
    } else if (roll < 30) {  // two children at the same future instant
      const util::SimDuration delay = static_cast<util::SimDuration>(1 + mix.next() % 2000);
      const std::uint64_t first = next_id_++;
      const std::uint64_t second = next_id_++;
      sched_.schedule_at(sched_.now() + delay, [this, first] { on_dispatch(first); });
      sched_.schedule_at(sched_.now() + delay, [this, second] { on_dispatch(second); });
    }
  }

  Sched sched_;
  std::uint64_t master_seed_;
  std::uint64_t next_id_ = 1;
  std::vector<LogEntry> log_;
  std::vector<EventHandle> handles_;
};

/// Delay magnitudes deliberately straddle the wheel's structure: 0 (same
/// timestamp), sub-tick (<1.024us), level-0 (<262us), level-1 (<67ms),
/// level-2+ (<17s), and far-future (minutes).
util::SimDuration random_delay(util::Rng& rng) {
  switch (rng.uniform_u64(6)) {
    case 0: return 0;
    case 1: return static_cast<util::SimDuration>(rng.uniform_u64(1 << 10));
    case 2: return static_cast<util::SimDuration>(rng.uniform_u64(std::uint64_t{1} << 18));
    case 3: return static_cast<util::SimDuration>(rng.uniform_u64(std::uint64_t{1} << 26));
    case 4: return static_cast<util::SimDuration>(rng.uniform_u64(std::uint64_t{1} << 34));
    default: return static_cast<util::SimDuration>(rng.uniform_u64(std::uint64_t{1} << 38));
  }
}

/// Replays `ops` identically generated control operations through both
/// schedulers and asserts observable equivalence after every op.
void run_soak(std::uint64_t seed, std::size_t ops) {
  util::Rng rng(seed);
  Driver<WheelScheduler> wheel(seed);
  Driver<HeapScheduler> heap(seed);

  for (std::size_t op = 0; op < ops; ++op) {
    const std::uint64_t kind = rng.uniform_u64(100);
    if (kind < 45) {
      const util::SimDuration delay = random_delay(rng);
      const bool absolute = rng.bernoulli(0.3);
      wheel.schedule_plain(delay, absolute);
      heap.schedule_plain(delay, absolute);
    } else if (kind < 55) {
      const util::SimDuration delay = random_delay(rng);
      wheel.schedule_cancellable(delay);
      heap.schedule_cancellable(delay);
    } else if (kind < 65) {
      if (wheel.handle_count() > 0) {
        const std::size_t index = rng.uniform_u64(wheel.handle_count());
        ASSERT_EQ(wheel.cancel(index), heap.cancel(index)) << "op " << op << " seed " << seed;
      }
    } else if (kind < 90) {
      ASSERT_EQ(wheel.sched().run_one(), heap.sched().run_one())
          << "op " << op << " seed " << seed;
    } else if (kind < 98) {
      const util::SimTime until = wheel.sched().now() + random_delay(rng);
      wheel.sched().run_until(until);
      heap.sched().run_until(until);
    } else {
      wheel.sched().run();
      heap.sched().run();
    }
    ASSERT_EQ(wheel.sched().now(), heap.sched().now()) << "op " << op << " seed " << seed;
    ASSERT_EQ(wheel.sched().processed(), heap.sched().processed())
        << "op " << op << " seed " << seed;
    ASSERT_EQ(wheel.sched().pending(), heap.sched().pending())
        << "op " << op << " seed " << seed;
    ASSERT_EQ(wheel.log().size(), heap.log().size()) << "op " << op << " seed " << seed;
    if (!wheel.log().empty()) {
      ASSERT_EQ(wheel.log().back(), heap.log().back()) << "op " << op << " seed " << seed;
    }
  }

  wheel.sched().run();
  heap.sched().run();
  ASSERT_EQ(wheel.log().size(), heap.log().size()) << "seed " << seed;
  for (std::size_t i = 0; i < wheel.log().size(); ++i) {
    ASSERT_EQ(wheel.log()[i], heap.log()[i]) << "entry " << i << " seed " << seed;
  }
  EXPECT_EQ(wheel.digest(), heap.digest()) << "seed " << seed;
  EXPECT_EQ(wheel.sched().now(), heap.sched().now()) << "seed " << seed;
  EXPECT_EQ(wheel.sched().processed(), heap.sched().processed()) << "seed " << seed;
  EXPECT_EQ(wheel.sched().pending(), heap.sched().pending()) << "seed " << seed;
  EXPECT_GE(wheel.log().size(), ops / 2) << "soak dispatched suspiciously few events";
}

class SchedulerDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerDifferential, HundredThousandOpsDispatchIdentically) {
  run_soak(GetParam(), 100'000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerDifferential,
                         ::testing::Values(1ULL, 42ULL, 2013ULL, 0xC0FFEEULL));

TEST(SchedulerDifferential, ShortStreamsManySeeds) {
  for (std::uint64_t seed = 100; seed < 140; ++seed) run_soak(seed, 2'000);
}

// --- steady-state zero-allocation proof -------------------------------------

TEST(SchedulerAllocation, SteadyStateScheduleRunCyclesAllocateNothing) {
  WheelScheduler sched;
  util::Rng rng(7);
  std::uint64_t dispatched = 0;

  // Self-rescheduling workload: ~256 outstanding events at mixed horizons,
  // exercising ready heap, level-0 slots and cross-level cascades.
  const auto pump = [&](std::size_t cycles) {
    for (std::size_t i = 0; i < cycles; ++i) {
      while (sched.pending() < 256) {
        sched.schedule_in(random_delay(rng), [&dispatched] { ++dispatched; });
      }
      ASSERT_TRUE(sched.run_one());
    }
  };

  // Warm-up: lets the slab carve its chunks and the ready heap / bitmap
  // reach their peak footprint.
  pump(20'000);

  const std::size_t chunks_before = sched.slab_chunks();
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  pump(20'000);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  const std::size_t allocations = after - before;

  EXPECT_EQ(allocations, 0u) << "steady-state schedule_in/run_one cycles must not allocate";
  EXPECT_EQ(sched.slab_chunks(), chunks_before) << "slab grew after warm-up";
  EXPECT_EQ(sched.heap_fallback_events(), 0u)
      << "soak captures fit inline; heap fallback indicates SmallFunction regression";
  EXPECT_GE(dispatched, 40'000u);
}

TEST(SchedulerAllocation, CountersExposeSlabAndFallbackState) {
  WheelScheduler sched;
  EXPECT_EQ(sched.slab_chunks(), 0u);
  sched.schedule_in(10, [] {});
  EXPECT_EQ(sched.slab_chunks(), 1u);
  EXPECT_EQ(sched.heap_fallback_events(), 0u);
  // A callable bigger than the inline budget must take the counted heap
  // fallback path and still dispatch correctly.
  struct Big {
    std::byte pad[200];
  };
  Big big{};
  bool ran = false;
  sched.schedule_in(20, [big, &ran] {
    (void)big;
    ran = true;
  });
  EXPECT_EQ(sched.heap_fallback_events(), 1u);
  sched.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.slab_peak_live(), 2u);
}

}  // namespace
}  // namespace ndnp::sim
