// Scheduler contract tests, typed over BOTH implementations: the
// timer-wheel default and the binary-heap reference. Every test runs twice
// — the dispatch contract ((time, seq) FIFO order, run_until clock
// semantics, past-time rejection, cancellation) is shared, and
// tests/test_scheduler_differential.cpp additionally proves the two
// equivalent over seeded random soak streams.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace ndnp::sim {
namespace {

template <typename Sched>
class SchedulerContract : public ::testing::Test {};

using Implementations = ::testing::Types<WheelScheduler, HeapScheduler>;

class ImplNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    return T::kImplName;
  }
};

TYPED_TEST_SUITE(SchedulerContract, Implementations, ImplNames);

TYPED_TEST(SchedulerContract, StartsAtTimeZero) {
  const TypeParam sched;
  EXPECT_EQ(sched.now(), 0);
  EXPECT_EQ(sched.pending(), 0u);
}

TYPED_TEST(SchedulerContract, RunsEventsInTimeOrder) {
  TypeParam sched;
  std::vector<int> order;
  sched.schedule_at(30, [&] { order.push_back(3); });
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.schedule_at(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30);
  EXPECT_EQ(sched.processed(), 3u);
}

TYPED_TEST(SchedulerContract, EqualTimesRunInFifoOrder) {
  TypeParam sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sched.schedule_at(5, [&order, i] { order.push_back(i); });
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TYPED_TEST(SchedulerContract, ScheduleInIsRelative) {
  TypeParam sched;
  util::SimTime seen = -1;
  sched.schedule_at(100, [&] {
    sched.schedule_in(50, [&] { seen = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(seen, 150);
}

TYPED_TEST(SchedulerContract, EventsMayScheduleMoreEvents) {
  TypeParam sched;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sched.schedule_in(10, chain);
  };
  sched.schedule_at(0, chain);
  sched.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now(), 40);
}

TYPED_TEST(SchedulerContract, RunOneReturnsFalseWhenEmpty) {
  TypeParam sched;
  EXPECT_FALSE(sched.run_one());
  sched.schedule_at(1, [] {});
  EXPECT_TRUE(sched.run_one());
  EXPECT_FALSE(sched.run_one());
}

TYPED_TEST(SchedulerContract, RunUntilStopsAtDeadlineAndAdvancesClock) {
  TypeParam sched;
  int ran = 0;
  sched.schedule_at(10, [&] { ++ran; });
  sched.schedule_at(20, [&] { ++ran; });
  sched.schedule_at(30, [&] { ++ran; });
  sched.run_until(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sched.now(), 20);
  EXPECT_EQ(sched.pending(), 1u);
  sched.run_until(100);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sched.now(), 100);  // clock advances past the last event
}

// Regression (previously only documented in a comment): when the queue
// drains before the deadline, the clock still advances all the way to
// `until`, so back-to-back run_until windows tile time without gaps.
TYPED_TEST(SchedulerContract, RunUntilAdvancesClockWhenQueueDrainsEarly) {
  TypeParam sched;
  sched.schedule_at(5, [] {});
  sched.run_until(1'000'000);
  EXPECT_EQ(sched.now(), 1'000'000);
  EXPECT_EQ(sched.pending(), 0u);

  // Entirely empty queue: the clock still jumps to the deadline.
  sched.run_until(2'000'000);
  EXPECT_EQ(sched.now(), 2'000'000);

  // A deadline already in the past runs nothing and never rewinds.
  sched.run_until(1'500'000);
  EXPECT_EQ(sched.now(), 2'000'000);
  EXPECT_EQ(sched.processed(), 1u);
}

// Regression (previously only documented): schedule_at must reject
// anything earlier than the current clock — including a clock position
// reached via run_until's early-drain advance, where no event ever ran at
// that timestamp.
TYPED_TEST(SchedulerContract, RejectsPastTimesAfterRunUntilAdvancedClock) {
  TypeParam sched;
  sched.run_until(500);
  EXPECT_EQ(sched.now(), 500);
  EXPECT_THROW(sched.schedule_at(499, [] {}), std::logic_error);
  bool ran = false;
  sched.schedule_at(500, [&] { ran = true; });  // exactly-now stays legal
  sched.run();
  EXPECT_TRUE(ran);
}

TYPED_TEST(SchedulerContract, RejectsPastAndInvalidEvents) {
  TypeParam sched;
  sched.schedule_at(50, [] {});
  (void)sched.run_one();
  EXPECT_THROW(sched.schedule_at(10, [] {}), std::logic_error);
  EXPECT_THROW(sched.schedule_in(-1, [] {}), std::logic_error);
  EXPECT_THROW(sched.schedule_at(100, typename TypeParam::Event{}), std::invalid_argument);
}

TYPED_TEST(SchedulerContract, SchedulingAtNowIsAllowed) {
  TypeParam sched;
  bool ran = false;
  sched.schedule_at(10, [&] { sched.schedule_at(10, [&] { ran = true; }); });
  sched.run();
  EXPECT_TRUE(ran);
}

TYPED_TEST(SchedulerContract, CancelPreventsDispatchExactlyOnce) {
  TypeParam sched;
  int ran = 0;
  const EventHandle handle = sched.schedule_cancellable_at(10, [&] { ++ran; });
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_TRUE(sched.cancel(handle));
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_FALSE(sched.cancel(handle));  // second cancel is a no-op
  sched.run();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(sched.processed(), 0u);

  // A handle whose event already dispatched cannot be cancelled.
  const EventHandle late = sched.schedule_cancellable_in(5, [&] { ++ran; });
  sched.run();
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(sched.cancel(late));
}

TYPED_TEST(SchedulerContract, CancelledEventsDoNotDisturbOrderOrClock) {
  TypeParam sched;
  std::vector<int> order;
  sched.schedule_at(10, [&] { order.push_back(1); });
  const EventHandle doomed = sched.schedule_cancellable_at(20, [&] { order.push_back(99); });
  sched.schedule_at(30, [&] { order.push_back(3); });
  EXPECT_TRUE(sched.cancel(doomed));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(sched.now(), 30);
  EXPECT_EQ(sched.processed(), 2u);
}

// Sparse far-future schedules force the wheel through multi-level
// placement and cascades (a no-op wrapper path for the reference heap,
// which makes the typed expectations a cross-check in themselves).
TYPED_TEST(SchedulerContract, SparseFarFutureEventsDispatchInOrder) {
  TypeParam sched;
  std::vector<int> order;
  const util::SimTime far = util::SimTime{1} << 40;     // ~18 minutes
  const util::SimTime farther = util::SimTime{1} << 50;  // ~13 days
  sched.schedule_at(farther, [&] { order.push_back(3); });
  sched.schedule_at(far, [&] { order.push_back(2); });
  sched.schedule_at(1, [&] { order.push_back(1); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), farther);
  EXPECT_EQ(sched.processed(), 3u);
}

}  // namespace
}  // namespace ndnp::sim
