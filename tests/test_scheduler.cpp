#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ndnp::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  const Scheduler sched;
  EXPECT_EQ(sched.now(), 0);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30, [&] { order.push_back(3); });
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.schedule_at(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30);
  EXPECT_EQ(sched.processed(), 3u);
}

TEST(Scheduler, EqualTimesRunInFifoOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sched.schedule_at(5, [&order, i] { order.push_back(i); });
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler sched;
  util::SimTime seen = -1;
  sched.schedule_at(100, [&] {
    sched.schedule_in(50, [&] { seen = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(seen, 150);
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sched.schedule_in(10, chain);
  };
  sched.schedule_at(0, chain);
  sched.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now(), 40);
}

TEST(Scheduler, RunOneReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.run_one());
  sched.schedule_at(1, [] {});
  EXPECT_TRUE(sched.run_one());
  EXPECT_FALSE(sched.run_one());
}

TEST(Scheduler, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Scheduler sched;
  int ran = 0;
  sched.schedule_at(10, [&] { ++ran; });
  sched.schedule_at(20, [&] { ++ran; });
  sched.schedule_at(30, [&] { ++ran; });
  sched.run_until(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sched.now(), 20);
  EXPECT_EQ(sched.pending(), 1u);
  sched.run_until(100);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sched.now(), 100);  // clock advances past the last event
}

TEST(Scheduler, RejectsPastAndInvalidEvents) {
  Scheduler sched;
  sched.schedule_at(50, [] {});
  (void)sched.run_one();
  EXPECT_THROW(sched.schedule_at(10, [] {}), std::logic_error);
  EXPECT_THROW(sched.schedule_in(-1, [] {}), std::logic_error);
  EXPECT_THROW(sched.schedule_at(100, Scheduler::Event{}), std::invalid_argument);
}

TEST(Scheduler, SchedulingAtNowIsAllowed) {
  Scheduler sched;
  bool ran = false;
  sched.schedule_at(10, [&] { sched.schedule_at(10, [&] { ran = true; }); });
  sched.run();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace ndnp::sim
