#include "ndn/tlv.hpp"

#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace ndnp::ndn {
namespace {

// ---------------------------------------------------------------------------
// Varnum primitives

TEST(TlvVarnum, OneByteEncoding) {
  Buffer out;
  append_varnum(out, 0);
  append_varnum(out, 252);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 252);
}

TEST(TlvVarnum, EscapeWidths) {
  Buffer out;
  append_varnum(out, 253);          // 2-byte escape
  append_varnum(out, 0xffff);       // still 2-byte
  append_varnum(out, 0x10000);      // 4-byte
  append_varnum(out, 0x100000000);  // 8-byte
  EXPECT_EQ(out.size(), 3u + 3u + 5u + 9u);
  EXPECT_EQ(out[0], 253);
  EXPECT_EQ(out[6], 254);
  EXPECT_EQ(out[11], 255);
}

TEST(TlvVarnum, RoundTripSweep) {
  util::Rng rng(1);
  std::vector<std::uint64_t> values{0,      1,          252,        253,
                                    254,    0xffff,     0x10000,    0xffffffff,
                                    1ULL << 32,         1ULL << 63, ~0ULL};
  for (int i = 0; i < 100; ++i) values.push_back(rng.next_u64());
  for (const std::uint64_t value : values) {
    Buffer out;
    append_varnum(out, value);
    std::size_t offset = 0;
    EXPECT_EQ(read_varnum(out, offset), value);
    EXPECT_EQ(offset, out.size());
  }
}

TEST(TlvVarnum, TruncatedThrows) {
  const Buffer empty;
  std::size_t offset = 0;
  EXPECT_THROW((void)read_varnum(empty, offset), TlvError);
  Buffer partial{253, 0x01};  // promises 2 bytes, has 1
  offset = 0;
  EXPECT_THROW((void)read_varnum(partial, offset), TlvError);
}

TEST(TlvNumber, MinimalWidths) {
  Buffer out;
  append_tlv_number(out, TlvType::kNonce, 0x7f);
  EXPECT_EQ(out.size(), 3u);  // type(1) + len(1) + 1
  out.clear();
  append_tlv_number(out, TlvType::kNonce, 0x1ff);
  EXPECT_EQ(out.size(), 4u);
  out.clear();
  append_tlv_number(out, TlvType::kNonce, 0x1ffff);
  EXPECT_EQ(out.size(), 6u);
  out.clear();
  append_tlv_number(out, TlvType::kNonce, 0x1ffffffff);
  EXPECT_EQ(out.size(), 10u);
}

TEST(TlvNumber, DecodeRejectsOddWidths) {
  const std::uint8_t three[3] = {1, 2, 3};
  EXPECT_THROW((void)decode_number(three), TlvError);
}

// ---------------------------------------------------------------------------
// Name codec

TEST(TlvName, RoundTrip) {
  for (const char* uri : {"/", "/a", "/cnn/news/2013may20", "/x/y/z/w/v"}) {
    const Name name(uri);
    const Buffer wire = encode(name);
    EXPECT_EQ(decode_name(wire), name) << uri;
  }
}

TEST(TlvName, BinarySafeComponents) {
  // Components may hold arbitrary bytes except '/'.
  const Name name{std::string("\x01\x02\xff\x00", 4), "b"};
  EXPECT_EQ(decode_name(encode(name)), name);
}

TEST(TlvName, RejectsWrongOuterType) {
  const Buffer wire = encode([]{ Interest i; i.name = Name("/a"); return i; }());
  EXPECT_THROW((void)decode_name(wire), TlvError);
}

// ---------------------------------------------------------------------------
// Interest codec

TEST(TlvInterest, MinimalRoundTrip) {
  Interest interest;
  interest.name = Name("/p/file/1");
  interest.nonce = 0xdeadbeefcafeULL;
  const Interest decoded = decode_interest(encode(interest));
  EXPECT_EQ(decoded.name, interest.name);
  EXPECT_EQ(decoded.nonce, interest.nonce);
  EXPECT_FALSE(decoded.scope.has_value());
  EXPECT_FALSE(decoded.lifetime.has_value());
  EXPECT_FALSE(decoded.must_be_fresh);
  EXPECT_FALSE(decoded.private_req);
}

TEST(TlvInterest, AllFieldsRoundTrip) {
  Interest interest;
  interest.name = Name("/alice/skype/0/rand77");
  interest.nonce = 42;
  interest.scope = 2;
  interest.lifetime = util::millis(250);
  interest.must_be_fresh = true;
  interest.private_req = true;
  const Interest decoded = decode_interest(encode(interest));
  EXPECT_EQ(decoded.name, interest.name);
  EXPECT_EQ(decoded.nonce, interest.nonce);
  EXPECT_EQ(decoded.scope, interest.scope);
  EXPECT_EQ(decoded.lifetime, interest.lifetime);
  EXPECT_TRUE(decoded.must_be_fresh);
  EXPECT_TRUE(decoded.private_req);
}

TEST(TlvInterest, MissingNameRejected) {
  Buffer inner;
  append_tlv_number(inner, TlvType::kNonce, 7);
  Buffer wire;
  append_tlv(wire, TlvType::kInterest, inner);
  EXPECT_THROW((void)decode_interest(wire), TlvError);
}

TEST(TlvInterest, UnknownFieldSkipped) {
  Interest interest;
  interest.name = Name("/a");
  Buffer wire = encode(interest);
  // Splice an unknown TLV (type 200) into the payload: re-encode manually.
  Buffer inner = encode(interest.name);
  append_tlv_number(inner, TlvType::kNonce, interest.nonce);
  Buffer unknown_payload{0xab};
  append_tlv(inner, static_cast<TlvType>(200), unknown_payload);
  Buffer spliced;
  append_tlv(spliced, TlvType::kInterest, inner);
  const Interest decoded = decode_interest(spliced);
  EXPECT_EQ(decoded.name, interest.name);
}

TEST(TlvInterest, TruncationRejected) {
  const Buffer wire = encode([]{ Interest i; i.name = Name("/a/b/c"); return i; }());
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(wire.data(), cut);
    EXPECT_THROW((void)decode_interest(prefix), TlvError) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Data codec

TEST(TlvData, FullRoundTrip) {
  Data data = make_data(Name("/cnn/news/private"), "the-payload-bytes", "cnn", "cnn-key",
                        /*producer_private=*/true);
  data.exact_match_only = true;
  data.group_id = "album-9";
  data.freshness_period = util::seconds(30);
  const Data decoded = decode_data(encode(data));
  EXPECT_EQ(decoded.name, data.name);
  EXPECT_EQ(decoded.payload, data.payload);
  EXPECT_EQ(decoded.producer, data.producer);
  EXPECT_EQ(decoded.signature, data.signature);
  EXPECT_TRUE(decoded.producer_private);
  EXPECT_TRUE(decoded.exact_match_only);
  EXPECT_EQ(decoded.group_id, "album-9");
  EXPECT_EQ(decoded.freshness_period, data.freshness_period);
}

TEST(TlvData, DefaultsRoundTrip) {
  const Data data = make_data(Name("/a"), "", "p", "k");
  const Data decoded = decode_data(encode(data));
  EXPECT_FALSE(decoded.producer_private);
  EXPECT_FALSE(decoded.exact_match_only);
  EXPECT_TRUE(decoded.group_id.empty());
  EXPECT_FALSE(decoded.freshness_period.has_value());
  EXPECT_EQ(decoded.signature, data.signature);
}

TEST(TlvData, SignatureSurvivesVerbatim) {
  const Data data = make_data(Name("/a/b"), "payload", "prod", "key");
  const Data decoded = decode_data(encode(data));
  EXPECT_TRUE(crypto::verify_content("key", "/a/b", "payload", decoded.signature));
}

TEST(TlvData, BadSignatureLengthRejected) {
  Buffer inner = encode(Name("/a"));
  Buffer short_sig{1, 2, 3};
  append_tlv(inner, TlvType::kSignatureValue, short_sig);
  Buffer wire;
  append_tlv(wire, TlvType::kData, inner);
  EXPECT_THROW((void)decode_data(wire), TlvError);
}

TEST(TlvData, InterestAndDataNotConfusable) {
  const Data data = make_data(Name("/a"), "x", "p", "k");
  EXPECT_THROW((void)decode_interest(encode(data)), TlvError);
  EXPECT_THROW((void)decode_data(encode([]{ Interest i; i.name = Name("/a"); return i; }())), TlvError);
}

// Property sweep: random packets round-trip bit-exactly.
class TlvFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TlvFuzzRoundTrip, RandomPacketsRoundTrip) {
  util::Rng rng(GetParam());
  for (int iteration = 0; iteration < 200; ++iteration) {
    Name name;
    const std::size_t depth = 1 + rng.uniform_u64(5);
    for (std::size_t i = 0; i < depth; ++i)
      name = name.append("c" + std::to_string(rng.uniform_u64(1000)));

    Interest interest;
    interest.name = name;
    interest.nonce = rng.next_u64();
    if (rng.bernoulli(0.5)) interest.scope = static_cast<int>(1 + rng.uniform_u64(4));
    if (rng.bernoulli(0.5))
      interest.lifetime = static_cast<std::int64_t>(rng.uniform_u64(1'000'000'000));
    interest.must_be_fresh = rng.bernoulli(0.3);
    interest.private_req = rng.bernoulli(0.3);
    const Interest decoded_interest = decode_interest(encode(interest));
    EXPECT_EQ(decoded_interest.name, interest.name);
    EXPECT_EQ(decoded_interest.nonce, interest.nonce);
    EXPECT_EQ(decoded_interest.scope, interest.scope);
    EXPECT_EQ(decoded_interest.lifetime, interest.lifetime);
    EXPECT_EQ(decoded_interest.must_be_fresh, interest.must_be_fresh);
    EXPECT_EQ(decoded_interest.private_req, interest.private_req);

    Data data = make_data(name, std::string(rng.uniform_u64(300), 'q'),
                          "p" + std::to_string(rng.uniform_u64(10)), "key",
                          rng.bernoulli(0.3));
    data.exact_match_only = rng.bernoulli(0.3);
    if (rng.bernoulli(0.4)) data.group_id = "g" + std::to_string(rng.uniform_u64(50));
    if (rng.bernoulli(0.4))
      data.freshness_period = static_cast<std::int64_t>(rng.uniform_u64(1'000'000'000));
    const Data decoded_data = decode_data(encode(data));
    EXPECT_EQ(decoded_data.name, data.name);
    EXPECT_EQ(decoded_data.payload, data.payload);
    EXPECT_EQ(decoded_data.producer, data.producer);
    EXPECT_EQ(decoded_data.signature, data.signature);
    EXPECT_EQ(decoded_data.producer_private, data.producer_private);
    EXPECT_EQ(decoded_data.exact_match_only, data.exact_match_only);
    EXPECT_EQ(decoded_data.group_id, data.group_id);
    EXPECT_EQ(decoded_data.freshness_period, data.freshness_period);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlvFuzzRoundTrip, ::testing::Values(11, 22, 33, 44),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Random byte strings must never crash the decoder (throw TlvError or
// decode cleanly, nothing else).
class TlvFuzzDecode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TlvFuzzDecode, GarbageNeverCrashes) {
  util::Rng rng(GetParam());
  for (int iteration = 0; iteration < 2000; ++iteration) {
    Buffer garbage(rng.uniform_u64(64));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.uniform_u64(256));
    try {
      (void)decode_interest(garbage);
    } catch (const TlvError&) {
    } catch (const std::invalid_argument&) {
      // Name validation may reject components containing '/'.
    }
    try {
      (void)decode_data(garbage);
    } catch (const TlvError&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlvFuzzDecode, ::testing::Values(7, 8),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(TlvWireSize, EncodingSizeTracksEstimate) {
  // Interest::wire_size() is a model, not the codec; they should agree
  // within a small factor so link transmission delays are realistic.
  Interest interest;
  interest.name = Name("/youtube/alice/video-749.avi/137");
  interest.nonce = 123456789;
  const double actual = static_cast<double>(encode(interest).size());
  const double estimate = static_cast<double>(interest.wire_size());
  EXPECT_GT(actual / estimate, 0.5);
  EXPECT_LT(actual / estimate, 2.0);
}

}  // namespace
}  // namespace ndnp::ndn
