#include "sim/link.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace ndnp::sim {
namespace {

TEST(Link, NoJitterIsExactLatency) {
  LinkConfig cfg;
  cfg.latency = util::millis(3);
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(cfg.sample_delay(rng, 100), util::millis(3));
}

TEST(Link, BandwidthAddsTransmissionDelay) {
  LinkConfig cfg;
  cfg.latency = util::millis(1);
  cfg.bandwidth_bps = 8e6;  // 1 MB/s
  util::Rng rng(2);
  // 1000 bytes at 8 Mbit/s = 1 ms transmission.
  EXPECT_EQ(cfg.sample_delay(rng, 1000), util::millis(2));
  // Larger packets take proportionally longer.
  EXPECT_EQ(cfg.sample_delay(rng, 2000), util::millis(3));
}

TEST(Link, UniformJitterStaysInRange) {
  LinkConfig cfg;
  cfg.latency = util::millis(1);
  cfg.jitter = JitterKind::kUniform;
  cfg.jitter_a = 0.0;
  cfg.jitter_b = static_cast<double>(util::millis(2));
  util::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const util::SimDuration d = cfg.sample_delay(rng, 100);
    EXPECT_GE(d, util::millis(1));
    EXPECT_LE(d, util::millis(3));
  }
}

TEST(Link, TruncNormalJitterNeverNegative) {
  LinkConfig cfg;
  cfg.latency = 0;
  cfg.jitter = JitterKind::kTruncNormal;
  cfg.jitter_a = static_cast<double>(util::micros(100));
  cfg.jitter_b = static_cast<double>(util::micros(500));  // large sigma -> would go negative
  util::Rng rng(4);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(cfg.sample_delay(rng, 100), 0);
}

TEST(Link, LognormalJitterMedianNearConfigured) {
  LinkConfig cfg;
  cfg.latency = 0;
  cfg.jitter = JitterKind::kLognormal;
  cfg.jitter_a = static_cast<double>(util::millis(2));
  cfg.jitter_b = 0.5;
  util::Rng rng(5);
  util::SampleSet samples;
  for (int i = 0; i < 20'000; ++i)
    samples.add(util::to_millis(cfg.sample_delay(rng, 100)));
  EXPECT_NEAR(samples.quantile(0.5), 2.0, 0.1);
  // Heavy upper tail: p99 well above the median.
  EXPECT_GT(samples.quantile(0.99), 4.0);
}

TEST(Link, LossProbabilitySampled) {
  LinkConfig cfg;
  cfg.loss_probability = 0.25;
  util::Rng rng(6);
  int lost = 0;
  constexpr int kDraws = 40'000;
  for (int i = 0; i < kDraws; ++i)
    if (cfg.sample_loss(rng)) ++lost;
  EXPECT_NEAR(static_cast<double>(lost) / kDraws, 0.25, 0.01);
}

TEST(Link, ZeroLossNeverDrops) {
  const LinkConfig cfg;
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(cfg.sample_loss(rng));
}

TEST(Link, CannedConfigsHaveExpectedShapes) {
  util::Rng rng(8);
  const LinkConfig lan = lan_link();
  const LinkConfig wan = wan_link();
  const LinkConfig ipc = local_ipc_link();
  // Rough ordering: IPC < LAN < WAN latency.
  EXPECT_LT(ipc.latency, lan.latency + 1);
  EXPECT_LT(lan.latency, wan.latency);
  EXPECT_EQ(lan.jitter, JitterKind::kUniform);
  EXPECT_EQ(wan.jitter, JitterKind::kLognormal);
  // WAN delays vary across samples; LAN stays within its tight band.
  util::SampleSet wan_samples;
  for (int i = 0; i < 1000; ++i) wan_samples.add(util::to_millis(wan.sample_delay(rng, 100)));
  EXPECT_GT(wan_samples.stddev(), 0.05);
}

}  // namespace
}  // namespace ndnp::sim
