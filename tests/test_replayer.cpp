#include "trace/replayer.hpp"

#include <gtest/gtest.h>

#include "core/policies.hpp"
#include "core/theory.hpp"

namespace ndnp::trace {
namespace {

Trace small_trace() {
  TraceGenConfig config;
  config.num_users = 20;
  config.num_objects = 2'000;
  config.num_requests = 30'000;
  config.num_domains = 50;
  config.seed = 7;
  return generate_trace(config);
}

ReplayConfig base_config() {
  ReplayConfig config;
  config.cache_capacity = 500;
  config.private_fraction = 0.2;
  config.seed = 11;
  return config;
}

ReplayConfig with_policy(std::function<std::unique_ptr<core::CachePrivacyPolicy>()> factory) {
  ReplayConfig config = base_config();
  config.policy_factory = std::move(factory);
  return config;
}

TEST(IsPrivateContent, DeterministicPerName) {
  const ndn::Name name("/web/dom1/obj5");
  const bool first = is_private_content(name, 0.3, 42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(is_private_content(name, 0.3, 42), first);
}

TEST(IsPrivateContent, FractionApproximatelyHonored) {
  int private_count = 0;
  constexpr int kNames = 20'000;
  for (int i = 0; i < kNames; ++i) {
    if (is_private_content(ndn::Name("/x").append_number(static_cast<std::uint64_t>(i)), 0.3,
                           1))
      ++private_count;
  }
  EXPECT_NEAR(static_cast<double>(private_count) / kNames, 0.3, 0.02);
}

TEST(IsPrivateContent, EdgeFractions) {
  const ndn::Name name("/a");
  EXPECT_FALSE(is_private_content(name, 0.0, 1));
  EXPECT_TRUE(is_private_content(name, 1.0, 1));
}

TEST(IsPrivateContent, SeedChangesPrivateSet) {
  int differ = 0;
  for (int i = 0; i < 1000; ++i) {
    const ndn::Name name = ndn::Name("/x").append_number(static_cast<std::uint64_t>(i));
    if (is_private_content(name, 0.5, 1) != is_private_content(name, 0.5, 2)) ++differ;
  }
  EXPECT_GT(differ, 300);
}

TEST(Replayer, RequiresPolicyFactory) {
  const Trace trace = small_trace();
  EXPECT_THROW((void)replay(trace, base_config()), std::invalid_argument);
}

TEST(Replayer, NoPrivacyCountsEveryCachedMatchAsHit) {
  const Trace trace = small_trace();
  const ReplayResult result =
      replay(trace, with_policy([] { return std::make_unique<core::NoPrivacyPolicy>(); }));
  EXPECT_EQ(result.stats.requests, trace.size());
  EXPECT_EQ(result.stats.delayed_hits, 0u);
  EXPECT_EQ(result.stats.simulated_misses, 0u);
  EXPECT_GT(result.hit_rate_pct(), 10.0);
  EXPECT_DOUBLE_EQ(result.hit_rate_pct(), result.cache_served_pct());
}

TEST(Replayer, PolicyOrderingMatchesFigure5) {
  // Hit-rate ordering at matched (k, eps, delta):
  // NoPrivacy >= Exponential >= Uniform >= AlwaysDelay.
  const Trace trace = small_trace();
  const std::int64_t k = 5;
  const double eps = 0.005;
  const double delta = 0.05;
  const std::int64_t uniform_domain = core::uniform_domain_for_delta(k, delta);
  const auto expo = core::solve_expo_params(k, eps, delta);
  ASSERT_TRUE(expo.has_value());

  const double none =
      replay(trace, with_policy([] { return std::make_unique<core::NoPrivacyPolicy>(); }))
          .hit_rate_pct();
  const double expo_rate =
      replay(trace, with_policy([&] {
               return core::RandomCachePolicy::exponential(expo->alpha, expo->domain, 5);
             }))
          .hit_rate_pct();
  const double uniform_rate =
      replay(trace, with_policy([&] {
               return core::RandomCachePolicy::uniform(uniform_domain, 5);
             }))
          .hit_rate_pct();
  const double delay_rate =
      replay(trace, with_policy([] {
               return std::make_unique<core::AlwaysDelayPolicy>(
                   core::AlwaysDelayPolicy::content_specific());
             }))
          .hit_rate_pct();

  EXPECT_GE(none, expo_rate);
  EXPECT_GE(expo_rate, uniform_rate);
  EXPECT_GE(uniform_rate, delay_rate);
  EXPECT_GT(none, delay_rate + 1.0);  // the spread is material, not noise
}

TEST(Replayer, AlwaysDelayPreservesBandwidthView) {
  const Trace trace = small_trace();
  const ReplayResult none =
      replay(trace, with_policy([] { return std::make_unique<core::NoPrivacyPolicy>(); }));
  const ReplayResult delay = replay(trace, with_policy([] {
                                      return std::make_unique<core::AlwaysDelayPolicy>(
                                          core::AlwaysDelayPolicy::content_specific());
                                    }));
  // Hidden hits cost visibility, not bandwidth: cache_served is unchanged.
  EXPECT_NEAR(delay.cache_served_pct(), none.cache_served_pct(), 0.5);
  EXPECT_LT(delay.hit_rate_pct(), none.hit_rate_pct());
}

TEST(Replayer, LargerCacheNeverHurts) {
  const Trace trace = small_trace();
  double prev = -1.0;
  for (const std::size_t capacity : {125UL, 250UL, 500UL, 1000UL, 0UL /* unlimited */}) {
    ReplayConfig config =
        with_policy([] { return std::make_unique<core::NoPrivacyPolicy>(); });
    config.cache_capacity = capacity;
    const double rate = replay(trace, config).hit_rate_pct();
    EXPECT_GE(rate, prev - 0.2) << "capacity " << capacity;
    prev = rate;
  }
}

TEST(Replayer, MorePrivateContentLowersHitRate) {
  const Trace trace = small_trace();
  double prev = 101.0;
  for (const double fraction : {0.05, 0.1, 0.2, 0.4}) {
    ReplayConfig config = with_policy([] {
      return std::make_unique<core::AlwaysDelayPolicy>(
          core::AlwaysDelayPolicy::content_specific());
    });
    config.private_fraction = fraction;
    const double rate = replay(trace, config).hit_rate_pct();
    EXPECT_LT(rate, prev) << "fraction " << fraction;
    prev = rate;
  }
}

TEST(Replayer, PrivateRequestCountTracksFraction) {
  const Trace trace = small_trace();
  ReplayConfig config =
      with_policy([] { return std::make_unique<core::NoPrivacyPolicy>(); });
  config.private_fraction = 0.4;
  const ReplayResult result = replay(trace, config);
  const double fraction =
      static_cast<double>(result.private_requests) / static_cast<double>(trace.size());
  // Popularity-weighted, so looser tolerance than the per-name test.
  EXPECT_NEAR(fraction, 0.4, 0.15);
}

TEST(Replayer, MeanResponseReflectsDelays) {
  const Trace trace = small_trace();
  const ReplayResult none =
      replay(trace, with_policy([] { return std::make_unique<core::NoPrivacyPolicy>(); }));
  const ReplayResult delay = replay(trace, with_policy([] {
                                      return std::make_unique<core::AlwaysDelayPolicy>(
                                          core::AlwaysDelayPolicy::content_specific());
                                    }));
  EXPECT_GT(delay.mean_response_ms, none.mean_response_ms);
}

TEST(Replayer, DeterministicAcrossRuns) {
  const Trace trace = small_trace();
  const auto run = [&] {
    return replay(trace, with_policy([] {
                    return core::RandomCachePolicy::uniform(100, 5);
                  }))
        .hit_rate_pct();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace ndnp::trace
