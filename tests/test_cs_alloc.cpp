// Steady-state allocation proof for the ContentStore LFU index.
//
// Regression test for the FreqBucket churn bug surfaced by the
// alloc-naked-new lint rule: index_access() used to `new` a FreqBucket on
// every frequency promotion (i.e. every LFU cache hit) and `delete` the
// emptied one, so a hot LFU cache paid the allocator twice per hit.
// Buckets now recycle through util::Slab, so once the bucket working set
// has been carved, steady-state hit churn must perform zero heap
// allocations.
//
// The counting global operator new below is the same technique as
// test_scheduler_differential.cpp / test_tracing.cpp; it must live in its
// own test binary because replacement of ::operator new is per-binary.
#include "cache/content_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

// The replacement operators pair ::new with std::free by design; GCC's
// heuristic cannot see that this *is* the allocation function.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace ndnp::cache {
namespace {

ndn::Data make_content(const std::string& uri) {
  ndn::Data data;
  data.name = ndn::Name(uri);
  data.payload = "payload";
  return data;
}

EntryMeta meta_at(util::SimTime t) {
  EntryMeta meta;
  meta.inserted_at = t;
  meta.last_access = t;
  return meta;
}

TEST(ContentStoreAlloc, LfuSteadyStateHitChurnDoesNotAllocate) {
  constexpr std::size_t kEntries = 64;
  constexpr int kWarmupRounds = 3;
  constexpr int kMeasuredRounds = 16;

  ContentStore cs(kEntries, EvictionPolicy::kLfu);

  std::vector<Entry*> entries;
  entries.reserve(kEntries);
  util::SimTime now = 0;
  for (std::size_t i = 0; i < kEntries; ++i)
    entries.push_back(&cs.insert(make_content("/obj/" + std::to_string(i)), meta_at(++now)));

  // Warm-up: round-robin promotions carve the peak bucket working set
  // (the freq-f and freq-f+1 buckets coexist mid-round) into the slab.
  for (int round = 0; round < kWarmupRounds; ++round)
    for (Entry* entry : entries) cs.touch(*entry, ++now);

  // Steady state: every touch promotes its node into a fresh freq+1
  // bucket and retires the emptied one — exactly the create/destroy
  // pattern that used to hit the allocator on every LFU cache hit.
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < kMeasuredRounds; ++round)
    for (Entry* entry : entries) cs.touch(*entry, ++now);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "LFU frequency promotions allocated during steady-state hit churn";
  EXPECT_NO_THROW(cs.check_integrity());
  EXPECT_EQ(cs.size(), kEntries);
}

// The LRU move-to-front path was always pointer surgery; pin that too so
// a future index change cannot quietly reintroduce per-hit allocation
// for the paper's default eviction policy.
TEST(ContentStoreAlloc, LruSteadyStateHitChurnDoesNotAllocate) {
  constexpr std::size_t kEntries = 64;
  constexpr int kMeasuredRounds = 16;

  ContentStore cs(kEntries, EvictionPolicy::kLru);

  std::vector<Entry*> entries;
  entries.reserve(kEntries);
  util::SimTime now = 0;
  for (std::size_t i = 0; i < kEntries; ++i)
    entries.push_back(&cs.insert(make_content("/obj/" + std::to_string(i)), meta_at(++now)));

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < kMeasuredRounds; ++round)
    for (Entry* entry : entries) cs.touch(*entry, ++now);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "LRU move-to-front allocated during steady-state hit churn";
  EXPECT_NO_THROW(cs.check_integrity());
  EXPECT_EQ(cs.size(), kEntries);
}

}  // namespace
}  // namespace ndnp::cache
