#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "core/policies.hpp"

namespace ndnp::sim {
namespace {

util::SimDuration fetch(Consumer& consumer, Scheduler& sched, const ndn::Name& name) {
  std::optional<util::SimDuration> rtt;
  consumer.fetch(name, [&rtt](const ndn::Data&, util::SimDuration r) { rtt = r; });
  while (!rtt && sched.run_one()) {
  }
  EXPECT_TRUE(rtt.has_value());
  return rtt.value_or(-1);
}

TEST(Topology, AddAndLinkNodes) {
  Topology topo(1);
  Forwarder& r = topo.add_router("R", {});
  Consumer& c = topo.add_consumer("C");
  Producer& p = topo.add_producer("P", ndn::Name("/p"), {});
  topo.link(c, r, lan_link());
  const auto [rf, pf] = topo.link(r, p, lan_link());
  (void)pf;
  r.add_route(ndn::Name("/p"), rf);
  EXPECT_EQ(r.face_count(), 2u);
  (void)fetch(c, topo.scheduler(), ndn::Name("/p/x"));
  EXPECT_EQ(p.interests_served(), 1u);
}

TEST(Topology, ScenarioRequiresAtLeastOneHop) {
  ScenarioParams params = lan_scenario_params(1);
  params.core_hops = 0;
  EXPECT_THROW((void)make_probe_scenario(params), std::invalid_argument);
}

class ScenarioSweep
    : public ::testing::TestWithParam<std::pair<const char*, ScenarioParams (*)(std::uint64_t)>> {
};

TEST_P(ScenarioSweep, UserAndAdversaryCanBothFetch) {
  const auto scenario = make_probe_scenario(GetParam().second(7));
  Scheduler& sched = scenario->topology.scheduler();
  const ndn::Name name = scenario->producer->prefix().append("content");
  const util::SimDuration user_rtt = fetch(*scenario->user, sched, name);
  EXPECT_GT(user_rtt, 0);
  // Content is now at R: adversary's probe is strictly faster than the
  // user's cold fetch in every scenario (the attack's foundation).
  const util::SimDuration adv_rtt = fetch(*scenario->adversary, sched, name);
  EXPECT_LT(adv_rtt, user_rtt);
  EXPECT_TRUE(scenario->router->cs().contains(name));
}

TEST_P(ScenarioSweep, CoreChainLengthMatchesParams) {
  const ScenarioParams params = GetParam().second(11);
  const auto scenario = make_probe_scenario(params);
  EXPECT_EQ(scenario->core.size(), params.core_hops - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Canned, ScenarioSweep,
    ::testing::Values(std::pair{"lan", &lan_scenario_params},
                      std::pair{"wan", &wan_scenario_params},
                      std::pair{"producer", &producer_adjacent_scenario_params},
                      std::pair{"localhost", &local_host_scenario_params}),
    [](const auto& info) { return std::string(info.param.first); });

TEST(Topology, PolicyFactoryInstallsAtRouter) {
  ScenarioParams params = lan_scenario_params(3);
  params.router_policy = [] {
    return std::make_unique<core::AlwaysDelayPolicy>(
        core::AlwaysDelayPolicy::content_specific());
  };
  const auto scenario = make_probe_scenario(params);
  EXPECT_EQ(scenario->router->policy().name(), "AlwaysDelay");
}

TEST(Topology, DefaultPolicyIsNoPrivacy) {
  const auto scenario = make_probe_scenario(lan_scenario_params(4));
  EXPECT_EQ(scenario->router->policy().name(), "NoPrivacy");
}

TEST(Topology, DeterministicAcrossRuns) {
  const auto run_once = [](std::uint64_t seed) {
    const auto scenario = make_probe_scenario(wan_scenario_params(seed));
    Scheduler& sched = scenario->topology.scheduler();
    return fetch(*scenario->user, sched, scenario->producer->prefix().append("x"));
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));  // different seed, different jitter
}

TEST(Topology, ProducerAdjacentScenarioHasSmallHitMissGap) {
  // The defining property of Figure 3(c): the R<->P delta is small
  // relative to the consumer-path RTT.
  const auto scenario = make_probe_scenario(producer_adjacent_scenario_params(8));
  Scheduler& sched = scenario->topology.scheduler();
  const ndn::Name name = scenario->producer->prefix().append("c");
  const util::SimDuration miss = fetch(*scenario->adversary, sched, name);
  const util::SimDuration hit = fetch(*scenario->adversary, sched, name);
  EXPECT_LT(miss - hit, miss / 10);  // gap under 10 % of the total RTT
}

TEST(Topology, LocalHostScenarioHasLargeRelativeGap) {
  // Figure 3(d): local IPC hit vs network miss differ by an order of
  // magnitude.
  const auto scenario = make_probe_scenario(local_host_scenario_params(9));
  Scheduler& sched = scenario->topology.scheduler();
  const ndn::Name name = scenario->producer->prefix().append("c");
  const util::SimDuration miss = fetch(*scenario->adversary, sched, name);
  const util::SimDuration hit = fetch(*scenario->adversary, sched, name);
  EXPECT_GT(miss, 4 * hit);
}

}  // namespace
}  // namespace ndnp::sim
