// Metrics registry: exactness under concurrency, merge algebra, canonical
// serialization, cross-run aggregation, and the component export hooks.
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "cache/content_store.hpp"
#include "core/engine.hpp"
#include "core/policies.hpp"
#include "sim/forwarder.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace ndnp;

TEST(Metrics, CounterConcurrentIncrementsSumExactly) {
  util::MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry, t] {
      // Exercise both the shared counter and create-or-get racing on a
      // second name from every thread.
      util::Counter& shared = registry.counter("shared");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        shared.inc();
        registry.counter("contended").inc(t + 1);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared").value(), kThreads * kPerThread);
  // sum over t of kPerThread * (t+1) = kPerThread * kThreads*(kThreads+1)/2
  EXPECT_EQ(registry.counter("contended").value(),
            kPerThread * kThreads * (kThreads + 1) / 2);
}

TEST(Metrics, HistogramConcurrentAddsLoseNothing) {
  util::MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry, t] {
      util::Rng rng(1000 + t);
      util::HistogramMetric& hist = registry.histogram("h", 0.0, 1.0, 32);
      for (std::size_t i = 0; i < kPerThread; ++i) hist.add(rng.uniform01());
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.snapshot().histograms.at("h").total(), kThreads * kPerThread);
}

util::HistogramData random_histogram(util::Rng& rng, std::size_t bins) {
  util::HistogramData h;
  h.lo = 0.0;
  h.hi = 10.0;
  h.counts.resize(bins);
  for (auto& c : h.counts) c = rng.uniform_u64(1'000'000);
  return h;
}

TEST(Metrics, HistogramMergeIsCommutativeAndAssociative) {
  util::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t bins = 1 + rng.uniform_u64(64);
    const util::HistogramData a = random_histogram(rng, bins);
    const util::HistogramData b = random_histogram(rng, bins);
    const util::HistogramData c = random_histogram(rng, bins);
    EXPECT_EQ(merge(a, b).counts, merge(b, a).counts);
    EXPECT_EQ(merge(merge(a, b), c).counts, merge(a, merge(b, c)).counts);
    EXPECT_EQ(merge(a, b).total(), a.total() + b.total());
  }
}

TEST(Metrics, HistogramMergeRejectsShapeMismatch) {
  util::Rng rng(7);
  const util::HistogramData a = random_histogram(rng, 8);
  util::HistogramData b = random_histogram(rng, 9);
  EXPECT_THROW((void)merge(a, b), std::invalid_argument);
  b = random_histogram(rng, 8);
  b.hi = 20.0;
  EXPECT_THROW((void)merge(a, b), std::invalid_argument);
}

TEST(Metrics, HistogramReRegisterShapeMismatchThrows) {
  util::MetricsRegistry registry;
  (void)registry.histogram("h", 0.0, 1.0, 8);
  EXPECT_NO_THROW((void)registry.histogram("h", 0.0, 1.0, 8));
  EXPECT_THROW((void)registry.histogram("h", 0.0, 2.0, 8), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("h", 0.0, 1.0, 16), std::invalid_argument);
}

TEST(Metrics, SnapshotJsonIsCanonical) {
  util::MetricsRegistry registry;
  registry.counter("z.last").inc(3);
  registry.counter("a.first").inc(1);
  registry.histogram("lat", 0.0, 100.0, 4).add(12.0);
  util::MetricsSnapshot snap = registry.snapshot();
  snap.gauges["rate"] = 0.1 + 0.2;  // non-trivial double must round-trip
  const std::string json = snap.to_json();
  // Keys serialize in lexicographic order regardless of insertion order.
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_EQ(json, snap.to_json()) << "serialization must be deterministic";
  const util::MetricsSnapshot again = registry.snapshot();
  EXPECT_EQ(again.counters, snap.counters);
  EXPECT_NE(json.find("\"rate\":0.30000000000000004"), std::string::npos) << json;
}

TEST(Metrics, SweepAggregateStats) {
  std::vector<util::MetricsSnapshot> runs(4);
  const double values[] = {1.0, 2.0, 3.0, 6.0};
  for (std::size_t i = 0; i < 4; ++i) {
    runs[i].counters["hits"] = static_cast<std::uint64_t>(values[i]);
    runs[i].gauges["rate"] = values[i] / 10.0;
  }
  runs[3].counters["only_last"] = 8;  // missing elsewhere -> counts as 0
  const util::SweepAggregate agg = util::SweepAggregate::from_runs(runs);
  EXPECT_EQ(agg.runs, 4u);
  EXPECT_DOUBLE_EQ(agg.counters.at("hits").stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(agg.counters.at("hits").stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(agg.counters.at("hits").stats.max(), 6.0);
  EXPECT_DOUBLE_EQ(agg.counters.at("only_last").stats.mean(), 2.0);
  EXPECT_EQ(agg.counters.at("only_last").stats.count(), 4u);
  EXPECT_DOUBLE_EQ(agg.gauges.at("rate").percentile(1.0), 0.6);
  // Welford stddev of {1,2,3,6}: mean 3, var (4+1+0+9)/3
  EXPECT_NEAR(agg.counters.at("hits").stats.stddev(), std::sqrt(14.0 / 3.0), 1e-12);
}

TEST(Metrics, SweepAggregateMergesHistograms) {
  std::vector<util::MetricsSnapshot> runs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    util::HistogramData h;
    h.lo = 0.0;
    h.hi = 4.0;
    h.counts = {i + 1, 2 * (i + 1)};
    runs[i].histograms["h"] = h;
  }
  const util::SweepAggregate agg = util::SweepAggregate::from_runs(runs);
  EXPECT_EQ(agg.histograms.at("h").counts, (std::vector<std::uint64_t>{6, 12}));
}

TEST(Metrics, ContentStoreExport) {
  cache::ContentStore store(4, cache::EvictionPolicy::kLru);
  for (int i = 0; i < 6; ++i) {
    cache::EntryMeta meta;
    (void)store.insert(ndn::make_data(ndn::Name{"m", "obj" + std::to_string(i)}, "x", "p", "k"),
                       meta);
  }
  util::MetricsRegistry registry;
  store.export_metrics(registry, "cs");
  const util::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("cs.inserts"), 6u);
  EXPECT_EQ(snap.counters.at("cs.evictions"), 2u);
  EXPECT_EQ(snap.counters.at("cs.size"), 4u);
}

TEST(Metrics, EngineExportIncludesPolicyAndStore) {
  // Grouped mode so the policy tracks (c_C, k_C) state of its own (kNone
  // keeps that state on the cache entry instead).
  core::CachePrivacyEngine engine(
      16, cache::EvictionPolicy::kLru,
      core::RandomCachePolicy::uniform(10, 1, core::Grouping::kByNamespace), 1);
  const core::CachePrivacyEngine::FetchFn fetch = [](const ndn::Interest& interest) {
    return std::pair{ndn::make_data(interest.name, "x", "p", "k"), util::millis(10)};
  };
  ndn::Interest interest;
  interest.name = ndn::Name{"m", "obj"};
  for (int i = 0; i < 5; ++i)
    (void)engine.handle(interest, util::millis(i), fetch);
  util::MetricsRegistry registry;
  engine.export_metrics(registry, "engine");
  const util::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("engine.requests"), 5u);
  EXPECT_EQ(snap.counters.at("engine.cs.inserts"), 1u);
  EXPECT_EQ(snap.counters.at("engine.policy.groups"), 1u);
  EXPECT_EQ(snap.counters.at("engine.requests"),
            snap.counters.at("engine.exposed_hits") + snap.counters.at("engine.delayed_hits") +
                snap.counters.at("engine.simulated_misses") +
                snap.counters.at("engine.true_misses"));
}

// ---------------------------------------------------------------------------
// to_json: the canonical exporter must stay valid JSON for any metric name
// and byte-identical for equal snapshots (golden vectors depend on this).

TEST(MetricsJson, EscapesMetricNames) {
  util::MetricsSnapshot snap;
  snap.counters["plain.name"] = 1;
  snap.counters["quote\"back\\slash"] = 2;
  snap.counters["ctrl\nnew\tline\x01"] = 3;
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"plain.name\":1"), std::string::npos);
  EXPECT_NE(json.find("\"quote\\\"back\\\\slash\":2"), std::string::npos);
  // Control characters must come out as \uXXXX, never raw.
  EXPECT_NE(json.find("\"ctrl\\u000anew\\u0009line\\u0001\":3"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(MetricsJson, HistogramEdgeBinsClampOutOfRangeSamples) {
  util::MetricsRegistry registry;
  util::HistogramMetric& hist = registry.histogram("h", 0.0, 1.0, 4);
  hist.add(-1e9);   // below lo -> first bin
  hist.add(-0.001);
  hist.add(0.999);  // in range -> last bin
  hist.add(1.0);    // hi is exclusive -> clamps to last bin
  hist.add(1e9);
  const util::HistogramData data = registry.snapshot().histograms.at("h");
  ASSERT_EQ(data.counts.size(), 4u);
  EXPECT_EQ(data.counts[0], 2u);
  EXPECT_EQ(data.counts[1], 0u);
  EXPECT_EQ(data.counts[2], 0u);
  EXPECT_EQ(data.counts[3], 3u);
  EXPECT_EQ(data.total(), 5u);
  // The clamped shape serializes with every bin, zeros included.
  EXPECT_NE(registry.snapshot().to_json().find("\"counts\":[2,0,0,3]"), std::string::npos);
}

TEST(MetricsJson, EqualSnapshotsSerializeByteIdentically) {
  // Populate two registries in different orders with the same final state;
  // the ordered maps must erase insertion order entirely.
  util::MetricsRegistry a;
  a.counter("z.last").inc(7);
  a.counter("a.first").inc(3);
  a.histogram("h", 0.0, 2.0, 3).add(1.0);
  util::MetricsRegistry b;
  b.histogram("h", 0.0, 2.0, 3).add(1.0);
  b.counter("a.first").inc(1);
  b.counter("a.first").inc(2);
  b.counter("z.last").inc(7);
  util::MetricsSnapshot sa = a.snapshot();
  util::MetricsSnapshot sb = b.snapshot();
  sa.gauges["rate"] = 0.1 + 0.2;  // same double expression on both sides
  sb.gauges["rate"] = 0.1 + 0.2;
  EXPECT_TRUE(sa == sb);
  EXPECT_EQ(sa.to_json(), sb.to_json());
  // %.17g round-trips doubles exactly, so the gauge survives re-parsing.
  EXPECT_NE(sa.to_json().find("\"rate\":"), std::string::npos);
}

TEST(Metrics, ForwarderExport) {
  sim::Scheduler scheduler;
  sim::ForwarderConfig config;
  sim::Forwarder forwarder(scheduler, "r1", config);
  util::MetricsRegistry registry;
  forwarder.export_metrics(registry, "fwd");
  const util::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("fwd.interests_received"), 0u);
  EXPECT_EQ(snap.counters.at("fwd.cs.lookups"), 0u);
  EXPECT_EQ(snap.counters.at("fwd.pit_size"), 0u);
}

}  // namespace
