#include "trace/network_replay.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "core/policies.hpp"
#include "trace/stream.hpp"

namespace ndnp::trace {
namespace {

Trace small_trace() {
  TraceGenConfig config;
  config.num_users = 24;
  config.num_objects = 2'000;
  config.num_requests = 8'000;
  config.num_domains = 40;
  config.duration_s = 3'600.0;
  config.seed = 17;
  return generate_trace(config);
}

NetworkReplayConfig base_config() {
  NetworkReplayConfig config;
  config.edge_routers = 3;
  config.edge_cache = 200;
  config.core_cache = 800;
  config.private_fraction = 0.2;
  config.time_compression = 2'000.0;
  config.seed = 5;
  return config;
}

TEST(NetworkReplay, AllRequestsComplete) {
  const Trace tr = small_trace();
  const NetworkReplayResult result = replay_over_network(tr, base_config());
  EXPECT_EQ(result.requests, tr.size());
  EXPECT_EQ(result.completed, tr.size());
  EXPECT_EQ(result.rtt_ms.size(), tr.size());
}

TEST(NetworkReplay, TierAccountingIsConsistent) {
  const Trace tr = small_trace();
  const NetworkReplayResult result = replay_over_network(tr, base_config());
  // Every request is served exactly once: edge hit, core hit, or origin.
  // (Interest collapsing can make the sum fall slightly short of the total
  // when concurrent requests share one upstream fetch.)
  EXPECT_LE(result.edge_hits + result.core_hits + result.producer_fetches, tr.size());
  EXPECT_GE(result.edge_hits + result.core_hits + result.producer_fetches,
            tr.size() * 95 / 100);
  EXPECT_GT(result.edge_hits, 0u);
  EXPECT_GT(result.core_hits, 0u);
  EXPECT_GT(result.producer_fetches, 0u);
}

TEST(NetworkReplay, EdgeHitsAreFastest) {
  // Sanity on the latency distribution: some requests complete at access-
  // link speed (edge hits), the slowest pay the full path to the origin.
  const Trace tr = small_trace();
  const NetworkReplayResult result = replay_over_network(tr, base_config());
  EXPECT_LT(result.rtt_ms.quantile(0.05), 2.0);   // edge hit: ~0.6 ms
  EXPECT_GT(result.rtt_ms.quantile(0.95), 10.0);  // origin fetch: ~20 ms+
}

TEST(NetworkReplay, EdgeOnlyPolicyLowersEdgeHitsOnly) {
  const Trace tr = small_trace();
  NetworkReplayConfig config = base_config();
  const NetworkReplayResult baseline = replay_over_network(tr, config);

  config.deployment = Deployment::kEdgeOnly;
  config.policy_factory = [] {
    return std::make_unique<core::AlwaysDelayPolicy>(
        core::AlwaysDelayPolicy::content_specific());
  };
  const NetworkReplayResult protected_edge = replay_over_network(tr, config);
  EXPECT_LT(protected_edge.edge_hits, baseline.edge_hits);
  // Hidden edge hits are still served from the edge cache (delayed), so
  // the core does NOT see extra traffic.
  EXPECT_LE(protected_edge.core_hits, baseline.core_hits + baseline.core_hits / 10);
}

TEST(NetworkReplay, EverywhereDeploymentAlsoHidesCoreHits) {
  const Trace tr = small_trace();
  NetworkReplayConfig config = base_config();
  config.policy_factory = [] {
    return std::make_unique<core::AlwaysDelayPolicy>(
        core::AlwaysDelayPolicy::content_specific());
  };
  config.deployment = Deployment::kEdgeOnly;
  const NetworkReplayResult edge_only = replay_over_network(tr, config);
  config.deployment = Deployment::kEverywhere;
  const NetworkReplayResult everywhere = replay_over_network(tr, config);
  EXPECT_LT(everywhere.core_hits, edge_only.core_hits);
  // Delay stacking: protecting the core adds latency on top.
  EXPECT_GE(everywhere.rtt_ms.quantile(0.5), edge_only.rtt_ms.quantile(0.5));
}

TEST(NetworkReplay, DeterministicAcrossRuns) {
  const Trace tr = small_trace();
  const NetworkReplayResult a = replay_over_network(tr, base_config());
  const NetworkReplayResult b = replay_over_network(tr, base_config());
  EXPECT_EQ(a.edge_hits, b.edge_hits);
  EXPECT_EQ(a.core_hits, b.core_hits);
  EXPECT_DOUBLE_EQ(a.rtt_ms.mean(), b.rtt_ms.mean());
}

TEST(NetworkReplay, ValidatesConfig) {
  const Trace tr = small_trace();
  NetworkReplayConfig config = base_config();
  config.edge_routers = 0;
  EXPECT_THROW((void)replay_over_network(tr, config), std::invalid_argument);
  config.edge_routers = 2;
  config.time_compression = 0.0;
  EXPECT_THROW((void)replay_over_network(tr, config), std::invalid_argument);
}

TEST(NetworkReplay, DeploymentNames) {
  EXPECT_EQ(to_string(Deployment::kNone), "none");
  EXPECT_EQ(to_string(Deployment::kEdgeOnly), "edge-only");
  EXPECT_EQ(to_string(Deployment::kEverywhere), "everywhere");
}

// --- Streaming replay + edge cases (docs/SCALE.md) -------------------------

TEST(NetworkReplay, StreamingReplayMatchesInMemoryReplay) {
  // The streaming overload interleaves scheduling with chunk pulls; for the
  // same records it must land on the exact same deployment-tree outcome.
  const Trace tr = small_trace();
  const NetworkReplayResult reference = replay_over_network(tr, base_config());
  VectorTraceSource source(tr);
  const NetworkReplayResult streamed =
      replay_over_network(source, base_config(), /*chunk_records=*/257);
  EXPECT_EQ(streamed.requests, reference.requests);
  EXPECT_EQ(streamed.completed, reference.completed);
  EXPECT_EQ(streamed.edge_hits, reference.edge_hits);
  EXPECT_EQ(streamed.core_hits, reference.core_hits);
  EXPECT_EQ(streamed.producer_fetches, reference.producer_fetches);
  EXPECT_DOUBLE_EQ(streamed.rtt_ms.mean(), reference.rtt_ms.mean());
  EXPECT_EQ(streamed.malformed_records, 0u);
}

TEST(NetworkReplay, EmptyTraceYieldsEmptyResult) {
  const Trace empty;
  const NetworkReplayResult in_memory = replay_over_network(empty, base_config());
  EXPECT_EQ(in_memory.requests, 0u);
  EXPECT_EQ(in_memory.completed, 0u);
  EXPECT_EQ(in_memory.rtt_ms.size(), 0u);

  VectorTraceSource source(empty);
  const NetworkReplayResult streamed = replay_over_network(source, base_config(), 64);
  EXPECT_EQ(streamed.requests, 0u);
  EXPECT_EQ(streamed.completed, 0u);
}

TEST(NetworkReplay, SingleUserDrivesExactlyOneEdgeRouter) {
  TraceGenConfig gen;
  gen.num_users = 1;
  gen.num_objects = 300;
  gen.num_requests = 1'000;
  gen.seed = 9;
  const Trace tr = generate_trace(gen);
  const NetworkReplayResult result = replay_over_network(tr, base_config());
  EXPECT_EQ(result.completed, tr.size());
  // All requests enter at edge user_id % 3 == 0; with one consumer behind
  // one edge there is no cross-edge sharing, so the core only ever sees
  // that edge's misses and can still hit on repeats.
  EXPECT_GT(result.edge_hits, 0u);
  // Interest collapsing can shave a few served-once requests off the sum.
  EXPECT_LE(result.edge_hits + result.core_hits + result.producer_fetches, tr.size());
  EXPECT_GE(result.edge_hits + result.core_hits + result.producer_fetches,
            tr.size() * 95 / 100);
}

TEST(NetworkReplay, FewerUsersThanEdgesLeavesIdleEdgesHarmless) {
  TraceGenConfig gen;
  gen.num_users = 2;
  gen.num_objects = 300;
  gen.num_requests = 800;
  gen.seed = 11;
  const Trace tr = generate_trace(gen);
  NetworkReplayConfig config = base_config();
  config.edge_routers = 8;  // 6 edges never receive a request
  const NetworkReplayResult result = replay_over_network(tr, config);
  EXPECT_EQ(result.completed, tr.size());
  EXPECT_EQ(result.rtt_ms.size(), tr.size());
}

TEST(NetworkReplay, CoreServesFanInAcrossEdges) {
  // Users on different edges requesting the same content: the first edge's
  // miss populates the core, the second edge's miss is served there without
  // touching the producer.
  Trace tr;
  const ndn::Name shared("/web/dom1/obj1");
  // user 0 -> edge 0, user 1 -> edge 1 (user_id % edge_routers).
  tr.records.push_back({1.0, 0, shared, 8'192});
  tr.records.push_back({2.0, 1, shared, 8'192});
  NetworkReplayConfig config = base_config();
  config.edge_routers = 2;
  // Real time: a full second between the requests, so the first fetch has
  // completed (and populated the core) before the second arrives.
  config.time_compression = 1.0;
  const NetworkReplayResult result = replay_over_network(tr, config);
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.producer_fetches, 1u);
  EXPECT_EQ(result.core_hits, 1u);
  EXPECT_EQ(result.edge_hits, 0u);
}

TEST(NetworkReplay, StreamingRejectsAnUnsortedTrace) {
  Trace tr;
  tr.records.push_back({5.0, 0, ndn::Name("/web/dom1/obj1"), 8'192});
  tr.records.push_back({1.0, 1, ndn::Name("/web/dom1/obj2"), 8'192});
  VectorTraceSource source(tr);
  EXPECT_THROW((void)replay_over_network(source, base_config(), 64), std::invalid_argument);
  VectorTraceSource source2(tr);
  EXPECT_THROW((void)replay_over_network(source2, base_config(), 0), std::invalid_argument);
}

TEST(NetworkReplay, StreamingSurfacesMalformedLineCount) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ndnp_netreplay_malformed.trace").string();
  std::ofstream(path) << "0.5 0 /web/dom1/obj1 8192\n"
                      << "not a record\n"
                      << "1.5 1 /web/dom1/obj2 8192\n";
  TextTraceSource source(path, ParseOptions{.max_malformed = 3});
  const NetworkReplayResult result = replay_over_network(source, base_config(), 64);
  std::remove(path.c_str());
  EXPECT_EQ(result.requests, 2u);
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.malformed_records, 1u);
}

}  // namespace
}  // namespace ndnp::trace
