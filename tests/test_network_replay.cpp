#include "trace/network_replay.hpp"

#include <gtest/gtest.h>

#include "core/policies.hpp"

namespace ndnp::trace {
namespace {

Trace small_trace() {
  TraceGenConfig config;
  config.num_users = 24;
  config.num_objects = 2'000;
  config.num_requests = 8'000;
  config.num_domains = 40;
  config.duration_s = 3'600.0;
  config.seed = 17;
  return generate_trace(config);
}

NetworkReplayConfig base_config() {
  NetworkReplayConfig config;
  config.edge_routers = 3;
  config.edge_cache = 200;
  config.core_cache = 800;
  config.private_fraction = 0.2;
  config.time_compression = 2'000.0;
  config.seed = 5;
  return config;
}

TEST(NetworkReplay, AllRequestsComplete) {
  const Trace tr = small_trace();
  const NetworkReplayResult result = replay_over_network(tr, base_config());
  EXPECT_EQ(result.requests, tr.size());
  EXPECT_EQ(result.completed, tr.size());
  EXPECT_EQ(result.rtt_ms.size(), tr.size());
}

TEST(NetworkReplay, TierAccountingIsConsistent) {
  const Trace tr = small_trace();
  const NetworkReplayResult result = replay_over_network(tr, base_config());
  // Every request is served exactly once: edge hit, core hit, or origin.
  // (Interest collapsing can make the sum fall slightly short of the total
  // when concurrent requests share one upstream fetch.)
  EXPECT_LE(result.edge_hits + result.core_hits + result.producer_fetches, tr.size());
  EXPECT_GE(result.edge_hits + result.core_hits + result.producer_fetches,
            tr.size() * 95 / 100);
  EXPECT_GT(result.edge_hits, 0u);
  EXPECT_GT(result.core_hits, 0u);
  EXPECT_GT(result.producer_fetches, 0u);
}

TEST(NetworkReplay, EdgeHitsAreFastest) {
  // Sanity on the latency distribution: some requests complete at access-
  // link speed (edge hits), the slowest pay the full path to the origin.
  const Trace tr = small_trace();
  const NetworkReplayResult result = replay_over_network(tr, base_config());
  EXPECT_LT(result.rtt_ms.quantile(0.05), 2.0);   // edge hit: ~0.6 ms
  EXPECT_GT(result.rtt_ms.quantile(0.95), 10.0);  // origin fetch: ~20 ms+
}

TEST(NetworkReplay, EdgeOnlyPolicyLowersEdgeHitsOnly) {
  const Trace tr = small_trace();
  NetworkReplayConfig config = base_config();
  const NetworkReplayResult baseline = replay_over_network(tr, config);

  config.deployment = Deployment::kEdgeOnly;
  config.policy_factory = [] {
    return std::make_unique<core::AlwaysDelayPolicy>(
        core::AlwaysDelayPolicy::content_specific());
  };
  const NetworkReplayResult protected_edge = replay_over_network(tr, config);
  EXPECT_LT(protected_edge.edge_hits, baseline.edge_hits);
  // Hidden edge hits are still served from the edge cache (delayed), so
  // the core does NOT see extra traffic.
  EXPECT_LE(protected_edge.core_hits, baseline.core_hits + baseline.core_hits / 10);
}

TEST(NetworkReplay, EverywhereDeploymentAlsoHidesCoreHits) {
  const Trace tr = small_trace();
  NetworkReplayConfig config = base_config();
  config.policy_factory = [] {
    return std::make_unique<core::AlwaysDelayPolicy>(
        core::AlwaysDelayPolicy::content_specific());
  };
  config.deployment = Deployment::kEdgeOnly;
  const NetworkReplayResult edge_only = replay_over_network(tr, config);
  config.deployment = Deployment::kEverywhere;
  const NetworkReplayResult everywhere = replay_over_network(tr, config);
  EXPECT_LT(everywhere.core_hits, edge_only.core_hits);
  // Delay stacking: protecting the core adds latency on top.
  EXPECT_GE(everywhere.rtt_ms.quantile(0.5), edge_only.rtt_ms.quantile(0.5));
}

TEST(NetworkReplay, DeterministicAcrossRuns) {
  const Trace tr = small_trace();
  const NetworkReplayResult a = replay_over_network(tr, base_config());
  const NetworkReplayResult b = replay_over_network(tr, base_config());
  EXPECT_EQ(a.edge_hits, b.edge_hits);
  EXPECT_EQ(a.core_hits, b.core_hits);
  EXPECT_DOUBLE_EQ(a.rtt_ms.mean(), b.rtt_ms.mean());
}

TEST(NetworkReplay, ValidatesConfig) {
  const Trace tr = small_trace();
  NetworkReplayConfig config = base_config();
  config.edge_routers = 0;
  EXPECT_THROW((void)replay_over_network(tr, config), std::invalid_argument);
  config.edge_routers = 2;
  config.time_compression = 0.0;
  EXPECT_THROW((void)replay_over_network(tr, config), std::invalid_argument);
}

TEST(NetworkReplay, DeploymentNames) {
  EXPECT_EQ(to_string(Deployment::kNone), "none");
  EXPECT_EQ(to_string(Deployment::kEdgeOnly), "edge-only");
  EXPECT_EQ(to_string(Deployment::kEverywhere), "everywhere");
}

}  // namespace
}  // namespace ndnp::trace
