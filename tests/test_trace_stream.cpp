// Streaming trace I/O (trace/stream.hpp): round-trips through both on-disk
// formats, malformed-line accounting with the fail-fast threshold, the
// text -> binary converter, bounded-memory synthetic generation, and the
// stable user -> shard hash. See docs/SCALE.md.
#include "trace/stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace ndnp::trace {
namespace {

Trace small_trace() {
  TraceGenConfig config;
  config.num_users = 12;
  config.num_objects = 500;
  config.num_requests = 2'000;
  config.num_domains = 20;
  config.seed = 23;
  return generate_trace(config);
}

/// Per-test scratch file under the system temp dir; removed on scope exit
/// (tests run in parallel under ctest, so names embed the test name).
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() / ("ndnp_stream_" + tag)).string()) {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Drain a source through next_chunk with the given chunk size.
std::vector<TraceRecord> drain(TraceSource& source, std::size_t chunk_records) {
  std::vector<TraceRecord> all;
  std::vector<TraceRecord> chunk;
  while (source.next_chunk(chunk, chunk_records)) {
    EXPECT_LE(chunk.size(), chunk_records);
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  EXPECT_TRUE(chunk.empty());
  return all;
}

void expect_records_equal(const std::vector<TraceRecord>& actual,
                          const std::vector<TraceRecord>& expected, double ts_tolerance) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_NEAR(actual[i].timestamp_s, expected[i].timestamp_s, ts_tolerance);
    EXPECT_EQ(actual[i].user_id, expected[i].user_id);
    EXPECT_EQ(actual[i].name, expected[i].name);
    EXPECT_EQ(actual[i].size_bytes, expected[i].size_bytes);
  }
}

// --- Round trips ------------------------------------------------------------

TEST(TraceStream, TextRoundTripPreservesRecords) {
  const Trace tr = small_trace();
  ScratchFile file("text_roundtrip.trace");
  {
    TextTraceWriter writer(file.path());
    for (const TraceRecord& record : tr.records) writer.append(record);
    writer.close();
  }
  TextTraceSource source(file.path());
  // The text format prints timestamps with %.6f.
  expect_records_equal(drain(source, 37), tr.records, 1e-6);
  EXPECT_EQ(source.stats().records, tr.size());
  EXPECT_EQ(source.stats().malformed, 0u);
}

TEST(TraceStream, BinaryRoundTripIsExact) {
  const Trace tr = small_trace();
  ScratchFile file("binary_roundtrip.trace");
  {
    BinaryTraceWriter writer(file.path(), tr.catalogue_size, /*chunk_records=*/128);
    for (const TraceRecord& record : tr.records) writer.append(record);
    writer.close();
  }
  BinaryTraceSource source(file.path());
  EXPECT_EQ(source.catalogue_size(), tr.catalogue_size);
  const std::vector<TraceRecord> records = drain(source, 100);
  ASSERT_EQ(records.size(), tr.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    // Binary stores the raw f64: bit-exact, not approximately equal.
    EXPECT_EQ(records[i].timestamp_s, tr.records[i].timestamp_s);
    EXPECT_EQ(records[i].name, tr.records[i].name);
  }
}

TEST(TraceStream, RewindRestartsThePassAndResetsStats) {
  const Trace tr = small_trace();
  ScratchFile file("rewind.trace");
  {
    BinaryTraceWriter writer(file.path(), tr.catalogue_size);
    for (const TraceRecord& record : tr.records) writer.append(record);
    writer.close();
  }
  BinaryTraceSource source(file.path());
  const std::vector<TraceRecord> first = drain(source, 64);
  source.rewind();
  EXPECT_EQ(source.stats().records, 0u);
  const std::vector<TraceRecord> second = drain(source, 512);
  expect_records_equal(second, first, 0.0);
}

TEST(TraceStream, OpenTraceSourceSniffsTheFormat) {
  const Trace tr = small_trace();
  ScratchFile text("sniff.txt.trace");
  ScratchFile binary("sniff.bin.trace");
  {
    TextTraceWriter tw(text.path());
    BinaryTraceWriter bw(binary.path(), tr.catalogue_size);
    for (const TraceRecord& record : tr.records) {
      tw.append(record);
      bw.append(record);
    }
    tw.close();
    bw.close();
  }
  const auto from_text = open_trace_source(text.path());
  const auto from_binary = open_trace_source(binary.path());
  expect_records_equal(drain(*from_binary, 256), drain(*from_text, 256), 1e-6);
  EXPECT_THROW((void)open_trace_source("/nonexistent/ndnp.trace"), TraceParseError);
}

TEST(TraceStream, ConvertTraceStreamsTextToBinary) {
  const Trace tr = small_trace();
  ScratchFile text("convert_in.trace");
  ScratchFile binary("convert_out.trace");
  {
    TextTraceWriter writer(text.path());
    for (const TraceRecord& record : tr.records) writer.append(record);
    writer.close();
  }
  TextTraceSource source(text.path());
  BinaryTraceWriter sink(binary.path(), tr.catalogue_size);
  const ParseStats stats = convert_trace(source, sink, /*chunk_records=*/97);
  EXPECT_EQ(stats.records, tr.size());
  EXPECT_EQ(stats.malformed, 0u);

  BinaryTraceSource converted(binary.path());
  EXPECT_EQ(converted.catalogue_size(), tr.catalogue_size);
  expect_records_equal(drain(converted, 500), tr.records, 1e-6);
}

// --- Malformed-line accounting ---------------------------------------------

constexpr const char* kMalformedCorpus =
    "# comment line\n"
    "0.5 3 /web/dom1/obj1 8192\n"
    "garbage\n"
    "\n"
    "1.5 not-a-user /web/dom1/obj2 8192\n"
    "2.5 4 /web/dom1/obj3 8192\n";

TEST(TraceStream, MalformedLinesAreCountedAndSkippedUnderTheThreshold) {
  ScratchFile file("malformed_tolerant.trace");
  std::ofstream(file.path()) << kMalformedCorpus;
  TextTraceSource source(file.path(), ParseOptions{.max_malformed = 2});
  const std::vector<TraceRecord> records = drain(source, 10);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].user_id, 3u);
  EXPECT_EQ(records[1].user_id, 4u);
  EXPECT_EQ(source.stats().lines, 6u);
  EXPECT_EQ(source.stats().comments, 2u);  // comment + blank
  EXPECT_EQ(source.stats().malformed, 2u);
  EXPECT_EQ(source.stats().records, 2u);
  EXPECT_NEAR(source.stats().malformed_fraction(), 2.0 / 6.0, 1e-12);
}

TEST(TraceStream, MalformedLinesPastTheThresholdFailFast) {
  ScratchFile file("malformed_failfast.trace");
  std::ofstream(file.path()) << kMalformedCorpus;
  TextTraceSource source(file.path(), ParseOptions{.max_malformed = 1});
  std::vector<TraceRecord> chunk;
  try {
    while (source.next_chunk(chunk, 10)) {
    }
    FAIL() << "expected TraceParseError once malformed count exceeded 1";
  } catch (const TraceParseError& error) {
    // The error carries the stats as of the failure point.
    EXPECT_EQ(error.stats.malformed, 2u);
    EXPECT_GE(error.stats.lines, 5u);
  }
}

TEST(TraceStream, TruncatedBinaryTraceRaisesParseError) {
  const Trace tr = small_trace();
  ScratchFile file("truncated.trace");
  {
    BinaryTraceWriter writer(file.path(), tr.catalogue_size);
    for (const TraceRecord& record : tr.records) writer.append(record);
    writer.close();
  }
  const auto full_size = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), full_size - 7);
  BinaryTraceSource source(file.path());
  std::vector<TraceRecord> chunk;
  EXPECT_THROW(
      while (source.next_chunk(chunk, 1'000)) {}, TraceParseError);
}

// --- Synthetic workload at scale -------------------------------------------

TraceGenConfig synthetic_config() {
  TraceGenConfig config;
  config.num_users = 50;
  config.num_objects = 10'000;
  config.num_requests = 5'000;
  config.num_domains = 25;
  config.seed = 2013;
  return config;
}

TEST(TraceStream, SyntheticSourceIsDeterministicAcrossPassesAndChunkSizes) {
  const SyntheticWorkload workload(synthetic_config());
  const auto a = workload.open();
  const auto b = workload.open();
  const std::vector<TraceRecord> pass_a = drain(*a, 113);
  const std::vector<TraceRecord> pass_b = drain(*b, 4'096);
  // Chunking must never leak into the records: same config + seed => same
  // stream, bit-exact, for any chunk size.
  expect_records_equal(pass_b, pass_a, 0.0);
  ASSERT_EQ(pass_a.size(), synthetic_config().num_requests);
  EXPECT_EQ(a->catalogue_size(), synthetic_config().num_objects);

  double last_ts = 0.0;
  for (const TraceRecord& record : pass_a) {
    EXPECT_GE(record.timestamp_s, last_ts);
    last_ts = record.timestamp_s;
    EXPECT_LT(record.user_id, synthetic_config().num_users);
  }

  a->rewind();
  expect_records_equal(drain(*a, 113), pass_a, 0.0);
}

TEST(TraceStream, SyntheticWorkloadRejectsStatefulLocalityModes) {
  TraceGenConfig config = synthetic_config();
  config.temporal_locality = 0.1;
  EXPECT_THROW(SyntheticWorkload{config}, std::invalid_argument);
  config.temporal_locality = 0.0;
  config.user_affinity = 0.2;
  EXPECT_THROW(SyntheticWorkload{config}, std::invalid_argument);
}

TEST(TraceStream, SyntheticDomainAssignmentIsStable) {
  const SyntheticWorkload workload(synthetic_config());
  for (const std::size_t object : {std::size_t{0}, std::size_t{17}, std::size_t{9'999}}) {
    EXPECT_EQ(workload.domain_of(object), workload.domain_of(object));
    EXPECT_LT(workload.domain_of(object), synthetic_config().num_domains);
  }
}

// --- Vector source + sharding hash -----------------------------------------

TEST(TraceStream, VectorSourceAdaptsAnInMemoryTrace) {
  const Trace tr = small_trace();
  VectorTraceSource source(tr);
  EXPECT_EQ(source.catalogue_size(), tr.catalogue_size);
  expect_records_equal(drain(source, 333), tr.records, 0.0);
  source.rewind();
  EXPECT_EQ(drain(source, 1).size(), tr.size());
}

TEST(TraceStream, ShardOfIsStableInRangeAndCoversShards) {
  constexpr std::size_t kShards = 8;
  std::set<std::size_t> seen;
  for (std::uint32_t user = 0; user < 10'000; ++user) {
    const std::size_t shard = shard_of(user, kShards);
    ASSERT_LT(shard, kShards);
    // Pure function of (user, shards): repeated calls agree.
    ASSERT_EQ(shard, shard_of(user, kShards));
    seen.insert(shard);
  }
  // A hash that funneled users into few shards would serialize the replay.
  EXPECT_EQ(seen.size(), kShards);
  EXPECT_EQ(shard_of(42, 1), 0u);
}

}  // namespace
}  // namespace ndnp::trace
