#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace ndnp::util {
namespace {

TEST(Welford, EmptyIsZero) {
  const Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
}

TEST(Welford, KnownValues) {
  Welford w;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SingleSampleHasZeroVariance) {
  Welford w;
  w.add(3.5);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.mean(), 3.5);
}

TEST(Welford, MergeEqualsCombinedStream) {
  Rng rng(1);
  Welford combined;
  Welford a;
  Welford b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    combined.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
}

TEST(Welford, MergeWithEmptyIsIdentity) {
  Welford a;
  a.add(1.0);
  a.add(2.0);
  Welford b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndCenters) {
  const Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
  EXPECT_THROW((void)h.bin_center(5), std::out_of_range);
}

TEST(Histogram, AddAndPmf) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(1.5);
  h.add(9.0);
  h.add(5.0);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_DOUBLE_EQ(h.pmf(0), 0.5);
  EXPECT_DOUBLE_EQ(h.density(0), 0.25);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // hi boundary clamps into last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 2u);
}

TEST(Histogram, EmptyPmfIsZero) {
  const Histogram h(0.0, 1.0, 3);
  EXPECT_EQ(h.pmf(1), 0.0);
  EXPECT_EQ(h.density(1), 0.0);
}

TEST(SampleSet, TracksMoments) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  for (const double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.125), 15.0);
}

TEST(SampleSet, QuantileOnEmptyThrows) {
  const SampleSet s;
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
}

TEST(SampleSet, PairedHistogramsShareBinning) {
  SampleSet a;
  SampleSet b;
  a.add(1.0);
  a.add(2.0);
  b.add(5.0);
  b.add(10.0);
  const auto [ha, hb] = SampleSet::paired_histograms(a, b, 16);
  EXPECT_EQ(ha.bins(), hb.bins());
  EXPECT_DOUBLE_EQ(ha.lo(), hb.lo());
  EXPECT_DOUBLE_EQ(ha.hi(), hb.hi());
  EXPECT_EQ(ha.total(), 2u);
  EXPECT_EQ(hb.total(), 2u);
}

TEST(SampleSet, PairedHistogramsDegenerateRange) {
  SampleSet a;
  SampleSet b;
  a.add(3.0);
  b.add(3.0);
  const auto [ha, hb] = SampleSet::paired_histograms(a, b, 4);
  EXPECT_EQ(ha.total(), 1u);
  EXPECT_EQ(hb.total(), 1u);
}

TEST(SampleSet, PairedHistogramsRequireSamples) {
  SampleSet a;
  const SampleSet empty;
  a.add(1.0);
  EXPECT_THROW((void)SampleSet::paired_histograms(a, empty, 4), std::invalid_argument);
}

TEST(TotalVariation, IdenticalDistributionsAreZero) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  for (const double x : {0.1, 0.4, 0.6, 0.9}) {
    a.add(x);
    b.add(x);
  }
  EXPECT_DOUBLE_EQ(total_variation(a, b), 0.0);
  EXPECT_DOUBLE_EQ(bayes_accuracy(a, b), 0.5);
}

TEST(TotalVariation, DisjointDistributionsAreOne) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.add(0.1);
  b.add(0.9);
  EXPECT_DOUBLE_EQ(total_variation(a, b), 1.0);
  EXPECT_DOUBLE_EQ(bayes_accuracy(a, b), 1.0);
}

TEST(TotalVariation, IsSymmetric) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.add(0.1);
  a.add(0.4);
  b.add(0.4);
  b.add(0.9);
  EXPECT_DOUBLE_EQ(total_variation(a, b), total_variation(b, a));
}

TEST(TotalVariation, MismatchedBinningThrows) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 2.0, 4);
  EXPECT_THROW((void)total_variation(a, b), std::invalid_argument);
  Histogram c(0.0, 1.0, 8);
  EXPECT_THROW((void)total_variation(a, c), std::invalid_argument);
}

TEST(BayesAccuracy, FromSampleSetsSeparatesShiftedGaussians) {
  Rng rng(2);
  SampleSet a;
  SampleSet b;
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.normal(0.0, 1.0));
    b.add(rng.normal(10.0, 1.0));
  }
  EXPECT_GT(bayes_accuracy(a, b, 64), 0.99);
}

TEST(BayesAccuracy, OverlappingGaussiansNearChance) {
  Rng rng(3);
  SampleSet a;
  SampleSet b;
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.normal(0.0, 1.0));
    b.add(rng.normal(0.05, 1.0));
  }
  EXPECT_LT(bayes_accuracy(a, b, 32), 0.60);
}

TEST(AmplifiedSuccess, MatchesPaperExample) {
  // Pr[success] = 0.59 per object, 8 objects: 1 - 0.41^8 ~ 0.9992.
  EXPECT_NEAR(amplified_success(0.59, 8), 0.99920, 5e-5);
}

TEST(AmplifiedSuccess, SingleObjectIsIdentity) {
  EXPECT_DOUBLE_EQ(amplified_success(0.7, 1), 0.7);
}

TEST(AmplifiedSuccess, MonotoneInFragments) {
  double prev = 0.0;
  for (std::size_t n = 1; n <= 16; ++n) {
    const double s = amplified_success(0.3, n);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(AmplifiedSuccess, EdgeProbabilities) {
  EXPECT_DOUBLE_EQ(amplified_success(0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(amplified_success(1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(amplified_success(0.5, 0), 0.0);  // zero probes learn nothing
}

TEST(FormatPdfTable, ContainsLabelsAndSkipsEmptyBins) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.0);
  b.add(9.0);
  const std::string table = format_pdf_table(a, b, "hit", "miss");
  EXPECT_NE(table.find("hit"), std::string::npos);
  EXPECT_NE(table.find("miss"), std::string::npos);
  // Two populated bins + header = 3 lines.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 3);
}

TEST(FormatPdfTable, MismatchedBinningThrows) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 5);
  EXPECT_THROW((void)format_pdf_table(a, b, "x", "y"), std::invalid_argument);
}

}  // namespace
}  // namespace ndnp::util

namespace ndnp::util {
namespace {

TEST(KsStatistic, IdenticalDistributionsAreZero) {
  const std::vector<double> p{0.2, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(ks_statistic(p, p), 0.0);
}

TEST(KsStatistic, DisjointDistributionsAreOne) {
  EXPECT_DOUBLE_EQ(ks_statistic({1.0, 0.0}, {0.0, 1.0}), 1.0);
}

TEST(KsStatistic, KnownShiftValue) {
  // CDFs: a = (0.5, 1.0), b = (0.0, 0.5, 1.0) -> max gap at index 0: 0.5.
  EXPECT_DOUBLE_EQ(ks_statistic({0.5, 0.5}, {0.0, 0.5, 0.5}), 0.5);
}

TEST(KsStatistic, PadsShorterVector) {
  EXPECT_DOUBLE_EQ(ks_statistic({1.0}, {0.5, 0.5}), 0.5);
}

TEST(KsStatistic, BoundedByTotalVariation) {
  // KS <= TV always; check on a few random pairs.
  Rng rng(9);
  for (int round = 0; round < 50; ++round) {
    std::vector<double> a(8);
    std::vector<double> b(8);
    double sa = 0.0;
    double sb = 0.0;
    for (int i = 0; i < 8; ++i) {
      a[static_cast<std::size_t>(i)] = rng.uniform01();
      b[static_cast<std::size_t>(i)] = rng.uniform01();
      sa += a[static_cast<std::size_t>(i)];
      sb += b[static_cast<std::size_t>(i)];
    }
    double tv = 0.0;
    for (int i = 0; i < 8; ++i) {
      a[static_cast<std::size_t>(i)] /= sa;
      b[static_cast<std::size_t>(i)] /= sb;
      tv += std::abs(a[static_cast<std::size_t>(i)] - b[static_cast<std::size_t>(i)]);
    }
    tv /= 2.0;
    EXPECT_LE(ks_statistic(a, b), tv + 1e-12);
  }
}

TEST(KsStatistic, HistogramOverloadMatchesVectorForm) {
  Histogram ha(0.0, 1.0, 4);
  Histogram hb(0.0, 1.0, 4);
  ha.add(0.1);
  ha.add(0.3);
  hb.add(0.7);
  hb.add(0.9);
  EXPECT_DOUBLE_EQ(ks_statistic(ha, hb), 1.0);
  Histogram mismatched(0.0, 2.0, 4);
  EXPECT_THROW((void)ks_statistic(ha, mismatched), std::invalid_argument);
}

}  // namespace
}  // namespace ndnp::util
