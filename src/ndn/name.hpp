// NDN hierarchical names.
//
// An NDN name is a sequence of variable-length components that are opaque
// to the network; "/cnn/news/2013may20" has components {"cnn", "news",
// "2013may20"}. Matching is by prefix: content named X satisfies an
// interest for N iff N is a prefix of X (Section II, footnote 2). Names
// are the key type of the CS/PIT/FIB, so Name is cheap to copy (shared
// ownership of the component vector would be overkill at our scale; the
// components themselves use SSO for typical short components).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace ndnp::ndn {

class Name {
 public:
  /// Empty name ("/"), the root prefix — it is a prefix of every name.
  Name() = default;

  /// Parse a URI like "/cnn/news/2013may20". A leading '/' is required for
  /// non-empty names; empty components ("//") are rejected; "%XX" escapes
  /// decode to raw bytes. Throws std::invalid_argument on malformed input.
  explicit Name(std::string_view uri);

  Name(std::initializer_list<std::string> components);
  explicit Name(std::vector<std::string> components);

  [[nodiscard]] std::size_t size() const noexcept { return components_.size(); }
  [[nodiscard]] bool empty() const noexcept { return components_.empty(); }

  /// Component access; throws std::out_of_range on bad index.
  [[nodiscard]] const std::string& at(std::size_t i) const { return components_.at(i); }
  [[nodiscard]] const std::string& last() const { return components_.at(components_.size() - 1); }
  [[nodiscard]] const std::vector<std::string>& components() const noexcept { return components_; }

  /// Returns a copy with `component` appended. Throws on invalid component
  /// (empty, or containing '/').
  [[nodiscard]] Name append(std::string_view component) const;

  /// Returns a copy with a numeric component appended (e.g. segment ids).
  [[nodiscard]] Name append_number(std::uint64_t n) const;

  /// First `n` components (n clamped to size()).
  [[nodiscard]] Name prefix(std::size_t n) const;

  /// Name without its last component; root stays root.
  [[nodiscard]] Name parent() const;

  /// True iff *this is a (non-strict) prefix of `other` — the NDN content
  /// match relation: an interest for *this is satisfied by content `other`.
  [[nodiscard]] bool is_prefix_of(const Name& other) const noexcept;

  /// Canonical URI form; the empty name prints as "/". Bytes outside
  /// printable ASCII (and '%' itself) are percent-escaped, so any valid
  /// component round-trips through Name(to_uri()).
  [[nodiscard]] std::string to_uri() const;

  /// Stable 64-bit hash (FNV-1a over length-delimited components), for use
  /// as a deterministic key independent of libstdc++'s std::hash.
  [[nodiscard]] std::uint64_t hash64() const noexcept;

  /// All prefix hashes in one pass: out[d] == prefix(d).hash64() for every
  /// depth d in [0, size()], so out.back() == hash64(). FNV-1a is
  /// prefix-incremental, so this costs the same as one hash64() call; the
  /// CS/PIT hash indices use it to register an entry under every prefix
  /// depth without rehashing (hashes are then cached per entry).
  [[nodiscard]] std::vector<std::uint64_t> prefix_hashes() const;

  /// Allocation-free form of prefix_hashes(): calls fn(h) once per depth
  /// d = 0..size() with h == prefix(d).hash64(), in increasing depth
  /// order. Inline so hot paths fold hashing into their own fill loop.
  template <typename Fn>
  void visit_prefix_hashes(Fn&& fn) const {
    std::uint64_t h = kFnvOffsetBasis;
    fn(h);
    for (const auto& component : components_) {
      // FNV-1a over length-delimited components; the delimiter byte keeps
      // {"ab","c"} distinct from {"a","bc"}.
      for (const char ch : component) {
        h ^= static_cast<std::uint8_t>(ch);
        h *= kFnvPrime;
      }
      h ^= 0xffULL;  // boundary marker (components never contain 0xff in practice)
      h *= kFnvPrime;
      fn(h);
    }
  }

  friend bool operator==(const Name&, const Name&) = default;
  friend std::strong_ordering operator<=>(const Name& a, const Name& b) noexcept {
    return a.components_ <=> b.components_;
  }

 private:
  static constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

  static void validate_component(std::string_view component);

  std::vector<std::string> components_;
};

}  // namespace ndnp::ndn

template <>
struct std::hash<ndnp::ndn::Name> {
  std::size_t operator()(const ndnp::ndn::Name& name) const noexcept {
    return static_cast<std::size_t>(name.hash64());
  }
};
