#include "ndn/name.hpp"

#include <stdexcept>

namespace ndnp::ndn {

namespace {

[[nodiscard]] bool needs_escape(unsigned char c) noexcept {
  return c < 0x21 || c > 0x7e || c == '%';
}

[[nodiscard]] int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("Name: bad hex digit in percent escape");
}

/// Decode %XX escapes within one component.
[[nodiscard]] std::string unescape_component(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '%') {
      out.push_back(raw[i]);
      continue;
    }
    if (i + 3 > raw.size())
      throw std::invalid_argument("Name: truncated percent escape");
    const char decoded = static_cast<char>(hex_value(raw[i + 1]) * 16 + hex_value(raw[i + 2]));
    // Keep the library-wide invariant: components never contain '/', not
    // even smuggled through an escape.
    if (decoded == '/')
      throw std::invalid_argument("Name: escaped '/' not allowed in components");
    out.push_back(decoded);
    i += 2;
  }
  return out;
}

}  // namespace

Name::Name(std::string_view uri) {
  if (uri.empty() || uri == "/") return;  // root
  if (uri.front() != '/')
    throw std::invalid_argument("Name: URI must start with '/': " + std::string(uri));
  std::size_t start = 1;
  while (start <= uri.size()) {
    const std::size_t slash = uri.find('/', start);
    const std::size_t end = (slash == std::string_view::npos) ? uri.size() : slash;
    std::string_view component = uri.substr(start, end - start);
    // A single trailing '/' is tolerated ("/a/b/" == "/a/b"); interior
    // empty components are malformed.
    if (component.empty()) {
      if (end == uri.size()) break;
      throw std::invalid_argument("Name: empty component in URI: " + std::string(uri));
    }
    components_.push_back(unescape_component(component));
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
}

Name::Name(std::initializer_list<std::string> components) {
  components_.reserve(components.size());
  for (const auto& c : components) {
    validate_component(c);
    components_.push_back(c);
  }
}

Name::Name(std::vector<std::string> components) : components_(std::move(components)) {
  for (const auto& c : components_) validate_component(c);
}

Name Name::append(std::string_view component) const {
  validate_component(component);
  Name out = *this;
  out.components_.emplace_back(component);
  return out;
}

Name Name::append_number(std::uint64_t n) const { return append(std::to_string(n)); }

Name Name::prefix(std::size_t n) const {
  Name out;
  const std::size_t take = std::min(n, components_.size());
  out.components_.assign(components_.begin(),
                         components_.begin() + static_cast<std::ptrdiff_t>(take));
  return out;
}

Name Name::parent() const { return empty() ? Name() : prefix(size() - 1); }

bool Name::is_prefix_of(const Name& other) const noexcept {
  if (size() > other.size()) return false;
  for (std::size_t i = 0; i < size(); ++i)
    if (components_[i] != other.components_[i]) return false;
  return true;
}

std::string Name::to_uri() const {
  static constexpr char kHex[] = "0123456789ABCDEF";
  if (empty()) return "/";
  std::string out;
  for (const auto& component : components_) {
    out.push_back('/');
    for (const char ch : component) {
      const auto byte = static_cast<unsigned char>(ch);
      if (needs_escape(byte)) {
        out.push_back('%');
        out.push_back(kHex[byte >> 4]);
        out.push_back(kHex[byte & 0x0f]);
      } else {
        out.push_back(ch);
      }
    }
  }
  return out;
}

std::uint64_t Name::hash64() const noexcept {
  std::uint64_t out = kFnvOffsetBasis;
  visit_prefix_hashes([&out](std::uint64_t h) { out = h; });
  return out;
}

std::vector<std::uint64_t> Name::prefix_hashes() const {
  std::vector<std::uint64_t> out;
  out.reserve(components_.size() + 1);
  visit_prefix_hashes([&out](std::uint64_t h) { out.push_back(h); });
  return out;
}

void Name::validate_component(std::string_view component) {
  if (component.empty()) throw std::invalid_argument("Name: components must be non-empty");
  if (component.find('/') != std::string_view::npos)
    throw std::invalid_argument("Name: components must not contain '/'");
}

}  // namespace ndnp::ndn
