#include "ndn/tlv.hpp"

#include <cstring>

namespace ndnp::ndn {

namespace {

[[nodiscard]] std::span<const std::uint8_t> as_bytes(const std::string& s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

void require(bool condition, const char* message) {
  if (!condition) throw TlvError(message);
}

/// One decoded TLV block view into the input buffer.
struct Block {
  std::uint64_t type = 0;
  std::span<const std::uint8_t> value;
};

[[nodiscard]] Block read_block(std::span<const std::uint8_t> in, std::size_t& offset) {
  Block block;
  block.type = read_varnum(in, offset);
  const std::uint64_t length = read_varnum(in, offset);
  require(offset + length <= in.size(), "TLV value truncated");
  block.value = in.subspan(offset, length);
  offset += length;
  return block;
}

}  // namespace

void append_varnum(Buffer& out, std::uint64_t value) {
  if (value < 253) {
    out.push_back(static_cast<std::uint8_t>(value));
  } else if (value <= 0xffff) {
    out.push_back(253);
    out.push_back(static_cast<std::uint8_t>(value >> 8));
    out.push_back(static_cast<std::uint8_t>(value));
  } else if (value <= 0xffffffff) {
    out.push_back(254);
    for (int shift = 24; shift >= 0; shift -= 8)
      out.push_back(static_cast<std::uint8_t>(value >> shift));
  } else {
    out.push_back(255);
    for (int shift = 56; shift >= 0; shift -= 8)
      out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

std::uint64_t read_varnum(std::span<const std::uint8_t> in, std::size_t& offset) {
  require(offset < in.size(), "TLV number truncated");
  const std::uint8_t first = in[offset++];
  int extra = 0;
  if (first < 253) return first;
  if (first == 253)
    extra = 2;
  else if (first == 254)
    extra = 4;
  else
    extra = 8;
  require(offset + static_cast<std::size_t>(extra) <= in.size(), "TLV number truncated");
  std::uint64_t value = 0;
  for (int i = 0; i < extra; ++i) value = (value << 8) | in[offset++];
  return value;
}

void append_tlv(Buffer& out, TlvType type, std::span<const std::uint8_t> value) {
  append_varnum(out, static_cast<std::uint64_t>(type));
  append_varnum(out, value.size());
  out.insert(out.end(), value.begin(), value.end());
}

void append_tlv_number(Buffer& out, TlvType type, std::uint64_t value) {
  Buffer payload;
  int bytes = 1;
  if (value > 0xffffffff)
    bytes = 8;
  else if (value > 0xffff)
    bytes = 4;
  else if (value > 0xff)
    bytes = 2;
  for (int i = bytes - 1; i >= 0; --i)
    payload.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  append_tlv(out, type, payload);
}

std::uint64_t decode_number(std::span<const std::uint8_t> value) {
  require(value.size() == 1 || value.size() == 2 || value.size() == 4 || value.size() == 8,
          "bad integer TLV width");
  std::uint64_t out = 0;
  for (const std::uint8_t byte : value) out = (out << 8) | byte;
  return out;
}

Buffer encode(const Name& name) {
  Buffer inner;
  for (const auto& component : name.components())
    append_tlv(inner, TlvType::kNameComponent, as_bytes(component));
  Buffer out;
  append_tlv(out, TlvType::kName, inner);
  return out;
}

Name decode_name(std::span<const std::uint8_t> wire) {
  std::size_t offset = 0;
  const Block name_block = read_block(wire, offset);
  require(name_block.type == static_cast<std::uint64_t>(TlvType::kName), "expected Name TLV");
  std::vector<std::string> components;
  std::size_t inner = 0;
  while (inner < name_block.value.size()) {
    const Block component = read_block(name_block.value, inner);
    require(component.type == static_cast<std::uint64_t>(TlvType::kNameComponent),
            "expected NameComponent TLV");
    components.emplace_back(component.value.begin(), component.value.end());
  }
  try {
    return Name(std::move(components));
  } catch (const std::invalid_argument&) {
    // Wire carried a component violating Name invariants (empty, or a '/'
    // byte). Per the header contract, malformed input throws TlvError.
    throw TlvError("Name TLV with invalid component");
  }
}

Buffer encode(const Interest& interest) {
  Buffer inner = encode(interest.name);
  append_tlv_number(inner, TlvType::kNonce, interest.nonce);
  if (interest.scope)
    append_tlv_number(inner, TlvType::kScope, static_cast<std::uint64_t>(*interest.scope));
  if (interest.lifetime)
    append_tlv_number(inner, TlvType::kInterestLifetime,
                      static_cast<std::uint64_t>(*interest.lifetime));
  if (interest.must_be_fresh) append_tlv(inner, TlvType::kMustBeFresh, {});
  if (interest.private_req) append_tlv(inner, TlvType::kPrivateRequest, {});
  Buffer out;
  append_tlv(out, TlvType::kInterest, inner);
  return out;
}

Interest decode_interest(std::span<const std::uint8_t> wire) {
  std::size_t offset = 0;
  const Block packet = read_block(wire, offset);
  require(packet.type == static_cast<std::uint64_t>(TlvType::kInterest),
          "expected Interest TLV");
  Interest interest;
  std::size_t inner = 0;
  bool saw_name = false;
  while (inner < packet.value.size()) {
    const std::size_t block_start = inner;
    const Block field = read_block(packet.value, inner);
    switch (static_cast<TlvType>(field.type)) {
      case TlvType::kName:
        interest.name =
            decode_name(packet.value.subspan(block_start, inner - block_start));
        saw_name = true;
        break;
      case TlvType::kNonce:
        interest.nonce = decode_number(field.value);
        break;
      case TlvType::kScope:
        interest.scope = static_cast<int>(decode_number(field.value));
        break;
      case TlvType::kInterestLifetime:
        interest.lifetime = static_cast<std::int64_t>(decode_number(field.value));
        break;
      case TlvType::kMustBeFresh:
        interest.must_be_fresh = true;
        break;
      case TlvType::kPrivateRequest:
        interest.private_req = true;
        break;
      default:
        break;  // unknown field: skip (forward compatibility)
    }
  }
  require(saw_name, "Interest without Name");
  return interest;
}

Buffer encode(const Data& data) {
  Buffer inner = encode(data.name);
  append_tlv(inner, TlvType::kContent, as_bytes(data.payload));
  append_tlv(inner, TlvType::kProducer, as_bytes(data.producer));
  append_tlv(inner, TlvType::kSignatureValue, data.signature);
  if (data.producer_private) append_tlv(inner, TlvType::kProducerPrivate, {});
  if (data.exact_match_only) append_tlv(inner, TlvType::kExactMatchOnly, {});
  if (!data.group_id.empty()) append_tlv(inner, TlvType::kGroupId, as_bytes(data.group_id));
  if (data.freshness_period)
    append_tlv_number(inner, TlvType::kFreshnessPeriod,
                      static_cast<std::uint64_t>(*data.freshness_period));
  Buffer out;
  append_tlv(out, TlvType::kData, inner);
  return out;
}

Data decode_data(std::span<const std::uint8_t> wire) {
  std::size_t offset = 0;
  const Block packet = read_block(wire, offset);
  require(packet.type == static_cast<std::uint64_t>(TlvType::kData), "expected Data TLV");
  Data data;
  std::size_t inner = 0;
  bool saw_name = false;
  while (inner < packet.value.size()) {
    const std::size_t block_start = inner;
    const Block field = read_block(packet.value, inner);
    switch (static_cast<TlvType>(field.type)) {
      case TlvType::kName:
        data.name = decode_name(packet.value.subspan(block_start, inner - block_start));
        saw_name = true;
        break;
      case TlvType::kContent:
        data.payload.assign(field.value.begin(), field.value.end());
        break;
      case TlvType::kProducer:
        data.producer.assign(field.value.begin(), field.value.end());
        break;
      case TlvType::kSignatureValue:
        require(field.value.size() == data.signature.size(), "bad signature length");
        std::memcpy(data.signature.data(), field.value.data(), field.value.size());
        break;
      case TlvType::kProducerPrivate:
        data.producer_private = true;
        break;
      case TlvType::kExactMatchOnly:
        data.exact_match_only = true;
        break;
      case TlvType::kGroupId:
        data.group_id.assign(field.value.begin(), field.value.end());
        break;
      case TlvType::kFreshnessPeriod:
        data.freshness_period = static_cast<std::int64_t>(decode_number(field.value));
        break;
      default:
        break;  // unknown field: skip
    }
  }
  require(saw_name, "Data without Name");
  return data;
}

}  // namespace ndnp::ndn
