// TLV wire encoding for NDN packets.
//
// NDN frames everything as Type-Length-Value blocks with variable-size
// type/length numbers (1 byte below 253; 253/254/255 escape to 2/4/8-byte
// big-endian). This codec round-trips the Interest/Data structures of this
// library, including the privacy-relevant extension fields, so traces of
// packets can be stored/replayed and wire sizes are grounded in a real
// encoding. Unknown non-critical TLVs are skipped on decode (forward
// compatibility); truncated or malformed input throws TlvError.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "ndn/packet.hpp"

namespace ndnp::ndn {

class TlvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// TLV type numbers. Name/component/packet types follow the NDN packet
/// spec; the 128+ range holds this library's extension fields (the
/// privacy bit, correlation group, ...), which the spec reserves for
/// application use.
enum class TlvType : std::uint64_t {
  kInterest = 5,
  kData = 6,
  kName = 7,
  kNameComponent = 8,
  kNonce = 10,
  kInterestLifetime = 12,
  kMustBeFresh = 18,
  kScope = 19,  // historic NDN 0.1 scope field, as exploited by the paper
  kContent = 21,
  kFreshnessPeriod = 25,
  kSignatureValue = 23,
  kProducer = 129,
  kPrivateRequest = 130,
  kProducerPrivate = 131,
  kExactMatchOnly = 132,
  kGroupId = 133,
};

using Buffer = std::vector<std::uint8_t>;

// --- low-level primitives (exposed for tests and tooling) -----------------

/// Append a variable-size TLV number (type or length).
void append_varnum(Buffer& out, std::uint64_t value);

/// Read a variable-size TLV number, advancing `offset`. Throws TlvError on
/// truncation.
[[nodiscard]] std::uint64_t read_varnum(std::span<const std::uint8_t> in, std::size_t& offset);

/// Append a full TLV block.
void append_tlv(Buffer& out, TlvType type, std::span<const std::uint8_t> value);

/// Append a TLV block holding a big-endian non-negative integer (minimal
/// 1/2/4/8-byte encoding, per the NDN convention).
void append_tlv_number(Buffer& out, TlvType type, std::uint64_t value);

/// Decode a big-endian non-negative integer payload.
[[nodiscard]] std::uint64_t decode_number(std::span<const std::uint8_t> value);

// --- packet codecs ---------------------------------------------------------

[[nodiscard]] Buffer encode(const Name& name);
[[nodiscard]] Buffer encode(const Interest& interest);
[[nodiscard]] Buffer encode(const Data& data);

[[nodiscard]] Name decode_name(std::span<const std::uint8_t> wire);
[[nodiscard]] Interest decode_interest(std::span<const std::uint8_t> wire);
[[nodiscard]] Data decode_data(std::span<const std::uint8_t> wire);

}  // namespace ndnp::ndn
