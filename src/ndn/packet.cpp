#include "ndn/packet.hpp"

#include "crypto/hmac.hpp"

namespace ndnp::ndn {

bool name_marked_private(const Name& name) noexcept {
  return !name.empty() && name.last() == kPrivateNameComponent;
}

std::size_t Interest::wire_size() const noexcept {
  // TLV framing (~8 bytes) + name components (1 byte framing each) +
  // nonce (8) + optional scope (2) + optional lifetime (4) + flags (1).
  std::size_t size = 8 + 8 + 1 + (scope ? 2 : 0) + (lifetime ? 4 : 0);
  for (const auto& c : name.components()) size += 1 + c.size();
  return size;
}

bool Data::satisfies(const Interest& interest) const noexcept {
  if (exact_match_only) return interest.name == name;
  return interest.name.is_prefix_of(name);
}

std::size_t Data::wire_size() const noexcept {
  std::size_t size = 16 + payload.size() + producer.size() + signature.size() + 2;
  for (const auto& c : name.components()) size += 1 + c.size();
  return size;
}

std::string_view to_string(NackReason reason) noexcept {
  switch (reason) {
    case NackReason::kNoRoute: return "no-route";
    case NackReason::kPitOverflow: return "pit-overflow";
    case NackReason::kDuplicate: return "duplicate";
  }
  return "?";
}

Data make_data(Name name, std::string payload, std::string producer,
               std::string_view producer_key, bool producer_private) {
  Data data;
  data.signature = crypto::sign_content(producer_key, name.to_uri(), payload);
  data.name = std::move(name);
  data.payload = std::move(payload);
  data.producer = std::move(producer);
  data.producer_private = producer_private;
  return data;
}

}  // namespace ndnp::ndn
