// NDN packet types: Interest and Data.
//
// These mirror the two packet types of the NDN architecture (Section II)
// plus the privacy-relevant fields this paper introduces or exploits:
//  - Interest.scope        — hop limit the timing attacker abuses (scope=2
//                            confines the interest to the first-hop router);
//  - Interest.private_req  — the consumer-driven privacy bit (Section V);
//  - Data.producer_private — the producer-driven privacy marking;
//  - Data.exact_match_only — set for content whose name ends in an
//                            unpredictable `rand` component: such content
//                            must never satisfy a shorter-prefix interest
//                            (footnote 5 of the paper);
//  - Data.group_id         — producer-assigned correlation-group id used by
//                            the grouped Random-Cache variant (Section VI,
//                            "Addressing Content Correlation").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/sha256.hpp"
#include "ndn/name.hpp"

namespace ndnp::ndn {

/// Marker component for producer-driven privacy marking by name
/// ("/private" as the last component, Section V).
inline constexpr std::string_view kPrivateNameComponent = "private";

/// True if the name carries the reserved producer privacy marker as its
/// last component.
[[nodiscard]] bool name_marked_private(const Name& name) noexcept;

struct Interest {
  Name name;
  /// Random per-interest value; routers use it to suppress forwarding
  /// loops (a PIT entry remembers seen nonces).
  std::uint64_t nonce = 0;
  /// NDN scope: maximum number of NDN entities the interest may traverse,
  /// *source included*. nullopt = unlimited. scope=2 means "first-hop
  /// router only" — the cache-probing primitive of Section III.
  std::optional<int> scope;
  /// Consumer-driven privacy bit (Section V): request this content as
  /// private regardless of producer marking.
  bool private_req = false;
  /// Only fresh content may satisfy this interest (stale cached entries
  /// are skipped as if absent).
  bool must_be_fresh = false;
  /// Requested PIT lifetime in nanoseconds; nullopt = router default.
  std::optional<std::int64_t> lifetime;

  /// Approximate wire size in bytes (type/length framing + name + fields);
  /// used by links that model transmission delay.
  [[nodiscard]] std::size_t wire_size() const noexcept;
};

struct Data {
  Name name;
  /// Payload is carried verbatim; experiments that only need sizes use a
  /// string of that length.
  std::string payload;
  /// Producer identity — NDN content is signed, which is precisely why the
  /// paper notes producers are identifiable from cached content.
  std::string producer;
  /// Simulated signature over (producer, name, payload).
  crypto::Sha256Digest signature{};

  /// Producer-driven privacy bit in the content header (Section V).
  bool producer_private = false;
  /// Content must only match interests for its exact full name (set for
  /// unpredictable-name content; footnote 5).
  bool exact_match_only = false;
  /// Correlation group for the grouped Random-Cache variant; empty = none.
  std::string group_id;
  /// Freshness period in nanoseconds: how long after arrival a cached copy
  /// may satisfy MustBeFresh interests. nullopt = always fresh. The paper
  /// notes interactive content goes stale immediately — producers of such
  /// traffic set this to 0.
  std::optional<std::int64_t> freshness_period;

  /// True if this content is private by *producer* decision: header bit or
  /// reserved name component.
  [[nodiscard]] bool producer_marked_private() const noexcept {
    return producer_private || name_marked_private(name);
  }

  /// True if `interest` may be answered by this Data: prefix match, except
  /// exact-match-only content requires full-name equality.
  [[nodiscard]] bool satisfies(const Interest& interest) const noexcept;

  [[nodiscard]] std::size_t wire_size() const noexcept;
};

/// Build a signed Data packet (signature computed over producer/name/
/// payload with the producer's key).
[[nodiscard]] Data make_data(Name name, std::string payload, std::string producer,
                             std::string_view producer_key, bool producer_private = false);

/// Why a network element refused to satisfy an interest.
enum class NackReason {
  kNoRoute,      // no FIB entry toward the content
  kPitOverflow,  // router out of PIT capacity
  kDuplicate,    // looping interest (nonce already seen)
};

[[nodiscard]] std::string_view to_string(NackReason reason) noexcept;

/// Negative acknowledgment: returned downstream instead of Data so
/// consumers can fail fast instead of waiting out their interest lifetime.
struct Nack {
  Interest interest;
  NackReason reason = NackReason::kNoRoute;

  [[nodiscard]] std::size_t wire_size() const noexcept { return interest.wire_size() + 4; }
};

}  // namespace ndnp::ndn
