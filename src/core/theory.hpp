// Closed-form privacy and utility theory of Section VI.
//
// Conventions. Algorithm 1 answers the first k_C *post-insertion* requests
// for a cached content with simulated misses. Throughout this module, `c`
// counts requests arriving after the content entered the cache, so the
// number of simulated misses among them is min(c, k_C) and
//   E[M(c)] = E[min(c, K)],     u(c) = 1 - E[M(c)] / c.
// This matches the first branch of the paper's Theorem VI.2 exactly.
//
// Paper inconsistency note: the paper's Equation (1) and the "otherwise"
// branch of Theorem VI.4 follow a convention that also counts the initial
// compulsory miss (E[min(c, K+1)] = E[M(c)] + Pr-weighted extra miss),
// while Theorem VI.2's first branch does not, and its otherwise branch
// (K/2) rounds the exact (K-1)/2. We implement one consistent convention
// (post-insertion, exact) for all schemes — required for an apples-to-
// apples Figure 4 — and additionally expose the verbatim paper formulas
// for comparison; tests pin the discrepancy to at most one miss.
//
// Privacy guarantees (Theorems VI.1 and VI.3) are stated as (k, eps, delta)
// triples: distinguishing "never requested" from "requested 1..k times"
// is (eps, delta)-bounded.
#pragma once

#include <cstdint>
#include <optional>

#include "core/k_distribution.hpp"

namespace ndnp::core {

/// An (epsilon, delta) probabilistic-indistinguishability budget.
struct PrivacyBudget {
  double epsilon = 0.0;
  double delta = 0.0;
};

// ---------------------------------------------------------------------------
// Generic (any K distribution), exact by summation.

/// E[M(c)] = E[min(c, K)]: expected simulated misses among c post-insertion
/// requests. O(domain) time.
[[nodiscard]] double expected_misses(std::int64_t c, const KDistribution& dist);

/// u(c) = 1 - E[M(c)]/c (Definition VI.1). Requires c >= 1.
[[nodiscard]] double utility(std::int64_t c, const KDistribution& dist);

// ---------------------------------------------------------------------------
// Uniform-Random-Cache (K = U(0,K)).

/// Exact E[min(c, U(0,K))]: c(1 - (c+1)/(2K)) for c < K, else (K-1)/2.
[[nodiscard]] double uniform_expected_misses(std::int64_t c, std::int64_t domain);
[[nodiscard]] double uniform_utility(std::int64_t c, std::int64_t domain);

/// Theorem VI.1: Uniform-Random-Cache is (k, 0, 2k/K)-private.
[[nodiscard]] PrivacyBudget uniform_privacy(std::int64_t k, std::int64_t domain);

/// Smallest domain K achieving delta for anonymity level k: ceil(2k/delta).
[[nodiscard]] std::int64_t uniform_domain_for_delta(std::int64_t k, double delta);

// ---------------------------------------------------------------------------
// Exponential-Random-Cache (K = truncated geometric(alpha) on [0,K)).

/// Exact E[min(c, G~(alpha,0,K-1))] in closed form.
[[nodiscard]] double expo_expected_misses(std::int64_t c, double alpha, std::int64_t domain);
[[nodiscard]] double expo_utility(std::int64_t c, double alpha, std::int64_t domain);

/// Theorem VI.3: Exponential-Random-Cache is
/// (k, -k ln(alpha), (1 - a^k + a^{K-k} - a^K) / (1 - a^K))-private.
[[nodiscard]] PrivacyBudget expo_privacy(std::int64_t k, double alpha, std::int64_t domain);

/// alpha achieving a target epsilon for anonymity level k: e^{-eps/k}.
[[nodiscard]] double expo_alpha_for_epsilon(std::int64_t k, double epsilon);

/// Smallest domain K (>= k+1) whose Theorem VI.3 delta is <= the target,
/// or nullopt when unattainable (the K -> infinity limit of delta is
/// 1 - alpha^k; any target below that cannot be met).
[[nodiscard]] std::optional<std::int64_t> expo_domain_for_delta(std::int64_t k, double alpha,
                                                                double delta);

// ---------------------------------------------------------------------------
// Verbatim paper formulas (for documentation/comparison; see header note).

/// Theorem VI.2 as printed: c(1-(c+1)/(2K)) for 1<=c<K, K/2 otherwise.
[[nodiscard]] double paper_uniform_expected_misses(std::int64_t c, std::int64_t domain);

/// Theorem VI.4 as printed.
[[nodiscard]] double paper_expo_expected_misses(std::int64_t c, double alpha, std::int64_t domain);

// ---------------------------------------------------------------------------
// Figure 4 helpers.

/// Parameters for an Exponential-Random-Cache matching a (k, eps, delta)
/// target: alpha = e^{-eps/k}, K = smallest domain meeting delta.
struct ExpoParams {
  double alpha = 0.0;
  std::int64_t domain = 0;
};

/// Solve Exponential-Random-Cache parameters for a (k, eps, delta) target;
/// nullopt when the delta target is below the 1 - alpha^k floor.
///
/// `delta_slack` is a relative tolerance on the delta target. It matters
/// for Figure 4(b)'s parameterization eps = -ln(1 - delta): there
/// alpha = (1-delta)^{1/k}, whose delta floor is 1 - alpha^k = delta
/// *exactly* — the target is only attained in the K -> infinity limit, so
/// a strict solver would always fail. The slack picks the smallest finite
/// K with delta(K) <= delta * (1 + delta_slack), which is visually and
/// numerically indistinguishable from the limit curve.
[[nodiscard]] std::optional<ExpoParams> solve_expo_params(std::int64_t k, double epsilon,
                                                          double delta,
                                                          double delta_slack = 1e-6);

/// Figure 4(b)'s epsilon choice: the largest epsilon compatible with a
/// given delta floor, eps = -ln(1 - delta).
[[nodiscard]] double max_epsilon_for_delta(double delta);

}  // namespace ndnp::core
