#include "core/audit.hpp"

#include <stdexcept>

#include "core/engine.hpp"
#include "util/rng.hpp"

namespace ndnp::core {

namespace {

/// One game round: run x prior requests then `probes` probes against a
/// fresh engine; return the observed miss-run length.
std::size_t observe_miss_run(const std::function<std::unique_ptr<CachePrivacyPolicy>()>& factory,
                             const AuditConfig& config, std::int64_t prior,
                             std::uint64_t seed, std::uint64_t round) {
  CachePrivacyEngine engine(0, cache::EvictionPolicy::kLru, factory(), seed);
  const util::SimDuration fetch_delay = util::millis(25);
  const bool mark_private = config.producer_private;
  const CachePrivacyEngine::FetchFn fetch = [fetch_delay,
                                             mark_private](const ndn::Interest& interest) {
    return std::pair{ndn::make_data(interest.name, "x", "p", "k", mark_private), fetch_delay};
  };
  ndn::Interest interest;
  interest.name = ndn::Name("/audit").append_number(round);
  interest.private_req = true;

  util::SimTime now = 0;
  for (std::int64_t i = 0; i < prior; ++i) {
    (void)engine.handle(interest, now, fetch);
    now += util::millis(1);
  }
  std::size_t miss_run = 0;
  bool in_prefix = true;
  for (std::int64_t i = 0; i < config.probes; ++i) {
    const RequestOutcome outcome = engine.handle(interest, now, fetch);
    now += util::millis(1);
    if (outcome.response_delay > 0 && in_prefix)
      ++miss_run;
    else
      in_prefix = false;
  }
  return miss_run;
}

}  // namespace

AuditReport audit_policy(
    const std::function<std::unique_ptr<CachePrivacyPolicy>()>& policy_factory,
    const AuditConfig& config) {
  if (!policy_factory) throw std::invalid_argument("audit_policy: null factory");
  if (config.x < 1 || config.probes < 1 || config.rounds == 0)
    throw std::invalid_argument("audit_policy: bad configuration");

  util::Rng rng(config.seed);
  AuditReport report;
  report.never_requested.assign(static_cast<std::size_t>(config.probes) + 1, 0.0);
  report.requested_x.assign(static_cast<std::size_t>(config.probes) + 1, 0.0);

  for (std::size_t round = 0; round < config.rounds; ++round) {
    report.never_requested[observe_miss_run(policy_factory, config, 0, rng.next_u64(),
                                            round)] += 1.0;
    report.requested_x[observe_miss_run(policy_factory, config, config.x, rng.next_u64(),
                                        round)] += 1.0;
  }
  for (double& p : report.never_requested) p /= static_cast<double>(config.rounds);
  for (double& p : report.requested_x) p /= static_cast<double>(config.rounds);

  report.bayes_accuracy =
      0.5 + 0.5 * total_variation(report.never_requested, report.requested_x);
  report.epsilon_at_delta =
      min_epsilon_for_delta(report.never_requested, report.requested_x, config.delta);
  report.delta_near_zero_epsilon = delta_for_epsilon(
      report.never_requested, report.requested_x, config.zero_epsilon_slack);
  return report;
}

}  // namespace ndnp::core
