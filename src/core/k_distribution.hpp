// Distributions of the per-content threshold K used by Random-Cache
// (Algorithm 1 of the paper).
//
// Random-Cache samples, for each newly cached content C, a threshold
// k_C ~ K over [0, K); the router then answers the first k_C post-insertion
// requests with simulated cache misses. The choice of K is the privacy/
// utility dial:
//  - Uniform  -> Uniform-Random-Cache      (Theorem VI.1: (k, 0, 2k/K))
//  - Truncated geometric -> Exponential-Random-Cache
//                                          (Theorem VI.3: (k, -k ln a, ...))
//  - Degenerate (constant) -> the paper's non-private naive strawman.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.hpp"

namespace ndnp::core {

/// Distribution over thresholds {0, 1, ..., domain_size()-1}.
class KDistribution {
 public:
  virtual ~KDistribution() = default;

  /// Draw a threshold.
  [[nodiscard]] virtual std::int64_t sample(util::Rng& rng) const = 0;

  /// Pr[K = k]; 0 outside the domain.
  [[nodiscard]] virtual double pmf(std::int64_t k) const = 0;

  /// Size of the support [0, K): the paper's parameter K.
  [[nodiscard]] virtual std::int64_t domain_size() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<KDistribution> clone() const = 0;

  /// E[K] (by summation; domains are small).
  [[nodiscard]] double mean() const;

  /// Pr[K >= k].
  [[nodiscard]] double tail(std::int64_t k) const;
};

/// Uniform over [0, K): Pr[K=r] = 1/K.
class UniformK final : public KDistribution {
 public:
  explicit UniformK(std::int64_t domain);

  [[nodiscard]] std::int64_t sample(util::Rng& rng) const override;
  [[nodiscard]] double pmf(std::int64_t k) const override;
  [[nodiscard]] std::int64_t domain_size() const override { return domain_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<KDistribution> clone() const override;

 private:
  std::int64_t domain_;
};

/// Truncated geometric over [0, K):
///   Pr[K=r] = (1-a) a^r / (1 - a^K),  0 < a < 1.
/// Exponentially favors small thresholds: fewer simulated misses on
/// average, in exchange for epsilon = -k ln a > 0.
class TruncatedGeometricK final : public KDistribution {
 public:
  TruncatedGeometricK(double alpha, std::int64_t domain);

  [[nodiscard]] std::int64_t sample(util::Rng& rng) const override;
  [[nodiscard]] double pmf(std::int64_t k) const override;
  [[nodiscard]] std::int64_t domain_size() const override { return domain_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<KDistribution> clone() const override;

  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  std::int64_t domain_;
};

/// Constant threshold k0 — the paper's "non-private naive approach": a
/// cache hit then reveals that at least k0 requests were seen, and an
/// adversary who knows k0 can count exactly how many (see
/// attack::NaiveCounterAttack).
class DegenerateK final : public KDistribution {
 public:
  explicit DegenerateK(std::int64_t k0);

  [[nodiscard]] std::int64_t sample(util::Rng& rng) const override;
  [[nodiscard]] double pmf(std::int64_t k) const override;
  [[nodiscard]] std::int64_t domain_size() const override { return k0_ + 1; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<KDistribution> clone() const override;

 private:
  std::int64_t k0_;
};

}  // namespace ndnp::core
