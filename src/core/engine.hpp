// CachePrivacyEngine: a single router's cache + privacy policy + marking
// rules + accounting, packaged for trace replay and unit testing.
//
// This is the standalone (non-event-driven) counterpart of the forwarder in
// sim/: it drives exactly the same policy objects against a ContentStore,
// with the caller supplying "what would the upstream return" as a callback.
// Section VII's evaluation (Figure 5) runs entirely on this engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cache/content_store.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ndnp::core {

/// Outcome of one request, as observable by the requester and as accounted
/// by the evaluation.
struct RequestOutcome {
  enum class Kind {
    kTrueMiss,       // content was not cached; fetched upstream
    kExposedHit,     // served from cache, hit visible
    kDelayedHit,     // served from cache behind an artificial delay
    kSimulatedMiss,  // cached, but the policy mimicked a miss
  };

  Kind kind = Kind::kTrueMiss;
  /// Total response delay presented to the requester (artificial delays and
  /// miss padding included; 0 for an exposed hit at the cache).
  util::SimDuration response_delay = 0;
  /// Whether the payload actually came from the cache (bandwidth view):
  /// true for exposed and delayed hits.
  bool served_from_cache = false;
};

[[nodiscard]] std::string_view to_string(RequestOutcome::Kind kind) noexcept;

/// Counters over all handled requests. "Hit rate" in the paper's Figure 5
/// sense counts only exposed hits.
struct EngineStats {
  std::uint64_t requests = 0;
  std::uint64_t exposed_hits = 0;
  std::uint64_t delayed_hits = 0;
  std::uint64_t simulated_misses = 0;
  std::uint64_t true_misses = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(exposed_hits) / static_cast<double>(requests);
  }
  /// Fraction of requests served from the cache regardless of visibility —
  /// the bandwidth-saving view under which Always-Delay is free.
  [[nodiscard]] double cache_served_rate() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(exposed_hits + delayed_hits) /
                               static_cast<double>(requests);
  }
};

class CachePrivacyEngine {
 public:
  /// Upstream oracle: returns the Data for an interest plus the fetch
  /// delay the router would observe (interest-in -> content-out).
  using FetchFn =
      std::function<std::pair<ndn::Data, util::SimDuration>(const ndn::Interest&)>;

  /// `cache_admission_probability` < 1 enables probabilistic admission:
  /// fetched content enters the CS only with that probability (1 = cache
  /// everything, the paper's setting).
  CachePrivacyEngine(std::size_t cache_capacity, cache::EvictionPolicy eviction,
                     std::unique_ptr<CachePrivacyPolicy> policy, std::uint64_t seed = 0,
                     double cache_admission_probability = 1.0);

  /// Handle one interest at simulation time `now`.
  RequestOutcome handle(const ndn::Interest& interest, util::SimTime now, const FetchFn& fetch);

  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const cache::ContentStore& store() const noexcept { return store_; }
  [[nodiscard]] cache::ContentStore& store() noexcept { return store_; }
  [[nodiscard]] const CachePrivacyPolicy& policy() const noexcept { return *policy_; }

  /// Publish engine, content-store and policy counters into `registry`
  /// under `prefix` ("<prefix>.requests", "<prefix>.cs.*",
  /// "<prefix>.policy.*"). Adds current totals; call once per snapshot.
  void export_metrics(util::MetricsRegistry& registry, const std::string& prefix) const;

  void reset_stats() noexcept { stats_ = {}; }

 private:
  cache::ContentStore store_;
  std::unique_ptr<CachePrivacyPolicy> policy_;
  util::Rng rng_;
  double admission_probability_;
  EngineStats stats_;
};

}  // namespace ndnp::core
