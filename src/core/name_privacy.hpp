// Unpredictable-name countermeasure for interactive traffic (Section V-A,
// the "mutual" approach).
//
// Producer and consumer share a secret and derive, per content, a random-
// looking name component `rand` via a PRF (HMAC-SHA-256 here). The router
// keeps caching normally — re-issued interests after packet loss still hit
// the nearest cache — but an adversary who cannot eavesdrop cannot guess
// the name and therefore cannot probe the cache for it. Content created
// this way is exact-match-only (footnote 5: it must not satisfy interests
// for its prefix).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "crypto/hmac.hpp"
#include "ndn/packet.hpp"

namespace ndnp::core {

/// One direction of an interactive session (e.g. Alice->Bob audio). Both
/// endpoints construct the same object from the shared secret and derive
/// identical per-sequence names independently.
class UnpredictableNameSession {
 public:
  /// `base` is the routable prefix (e.g. "/alice/skype/0"); `secret` the
  /// out-of-band shared key; `label` separates directions/streams using
  /// one secret.
  UnpredictableNameSession(ndn::Name base, std::string_view secret, std::string label,
                           std::size_t token_hex_chars = 32);

  /// Full content name for sequence number `seq`: base / seq / rand.
  /// Deterministic: both parties compute the same name.
  [[nodiscard]] ndn::Name name_for(std::uint64_t seq) const;

  /// Interest for sequence `seq` (exact name, fresh nonce supplied by the
  /// caller's transport).
  [[nodiscard]] ndn::Interest interest_for(std::uint64_t seq, std::uint64_t nonce) const;

  /// Producer-side: wrap a payload in a Data packet under the
  /// unpredictable name, flagged exact-match-only so routers never return
  /// it for shorter-prefix interests.
  [[nodiscard]] ndn::Data data_for(std::uint64_t seq, std::string payload,
                                   std::string producer, std::string_view producer_key) const;

  [[nodiscard]] const ndn::Name& base() const noexcept { return base_; }

 private:
  ndn::Name base_;
  crypto::Prf prf_;
  std::string label_;
  std::size_t token_hex_chars_;
};

}  // namespace ndnp::core
