#include "core/policies.hpp"

#include <cmath>
#include <stdexcept>

namespace ndnp::core {

// --------------------------------------------------------------------------
// NoPrivacyPolicy

void NoPrivacyPolicy::on_insert(cache::Entry&, const ndn::Interest&, util::SimTime) {}

LookupDecision NoPrivacyPolicy::on_cached_lookup(cache::Entry& entry, const ndn::Interest&,
                                                 bool effective_private, util::SimTime now) {
  const LookupDecision decision{.action = LookupAction::kExposeHit, .artificial_delay = 0};
  trace_decision(entry, decision, effective_private, now);
  return decision;
}

std::unique_ptr<CachePrivacyPolicy> NoPrivacyPolicy::clone() const {
  return std::make_unique<NoPrivacyPolicy>(*this);
}

// --------------------------------------------------------------------------
// AlwaysDelayPolicy

std::string_view to_string(DelayMode mode) noexcept {
  switch (mode) {
    case DelayMode::kConstant: return "constant";
    case DelayMode::kContentSpecific: return "content-specific";
    case DelayMode::kDynamic: return "dynamic";
  }
  return "?";
}

AlwaysDelayPolicy::AlwaysDelayPolicy(DelayMode mode, util::SimDuration gamma,
                                     DynamicDelayParams params)
    : mode_(mode), gamma_(gamma), dynamic_(params) {}

AlwaysDelayPolicy AlwaysDelayPolicy::constant(util::SimDuration gamma) {
  if (gamma < 0) throw std::invalid_argument("AlwaysDelayPolicy: gamma must be >= 0");
  return {DelayMode::kConstant, gamma, {}};
}

AlwaysDelayPolicy AlwaysDelayPolicy::content_specific() {
  return {DelayMode::kContentSpecific, 0, {}};
}

AlwaysDelayPolicy AlwaysDelayPolicy::dynamic(DynamicDelayParams params) {
  if (params.two_hop_floor < 0 || !(params.decay > 0.0) || params.decay > 1.0)
    throw std::invalid_argument("AlwaysDelayPolicy: bad dynamic parameters");
  return {DelayMode::kDynamic, 0, params};
}

void AlwaysDelayPolicy::on_insert(cache::Entry&, const ndn::Interest&, util::SimTime) {}

LookupDecision AlwaysDelayPolicy::on_cached_lookup(cache::Entry& entry, const ndn::Interest&,
                                                   bool effective_private, util::SimTime now) {
  LookupDecision decision{.action = LookupAction::kExposeHit, .artificial_delay = 0};
  if (effective_private) {
    switch (mode_) {
      case DelayMode::kConstant:
        decision = {.action = LookupAction::kDelayedHit, .artificial_delay = gamma_};
        break;
      case DelayMode::kContentSpecific:
        decision = {.action = LookupAction::kDelayedHit,
                    .artificial_delay = entry.meta.fetch_delay};
        break;
      case DelayMode::kDynamic: {
        // Shrink toward the two-hop floor as popularity grows: requests for
        // popular content would plausibly be served by a nearby cache anyway.
        ++entry.meta.request_count;
        const double scaled =
            static_cast<double>(entry.meta.fetch_delay) *
            std::pow(dynamic_.decay, static_cast<double>(entry.meta.request_count));
        const auto delay =
            std::max(dynamic_.two_hop_floor, static_cast<util::SimDuration>(scaled));
        decision = {.action = LookupAction::kDelayedHit, .artificial_delay = delay};
        break;
      }
    }
  }
  trace_decision(entry, decision, effective_private, now);
  return decision;
}

util::SimDuration AlwaysDelayPolicy::miss_response_delay(util::SimDuration fetch_delay,
                                                         bool effective_private) const {
  // Constant-gamma mode pads fast misses up to gamma so the observable
  // delay equals gamma in both the hit and (nearby-producer) miss case.
  // When the real fetch exceeds gamma there is nothing to pad — this is
  // exactly the "sacrifices privacy for far-away content" drawback the
  // paper points out for constant delay.
  if (mode_ == DelayMode::kConstant && effective_private)
    return std::max(fetch_delay, gamma_);
  return fetch_delay;
}

std::unique_ptr<CachePrivacyPolicy> AlwaysDelayPolicy::clone() const {
  // NDNP-LINT-ALLOW(alloc-naked-new): private copy ctor — make_unique cannot reach it; one clone per sweep config, not a hot path
  return std::unique_ptr<AlwaysDelayPolicy>(new AlwaysDelayPolicy(*this));
}

// --------------------------------------------------------------------------
// NaiveThresholdPolicy

NaiveThresholdPolicy::NaiveThresholdPolicy(std::int64_t k) : k_(k) {
  if (k < 0) throw std::invalid_argument("NaiveThresholdPolicy: k must be >= 0");
}

void NaiveThresholdPolicy::on_insert(cache::Entry& entry, const ndn::Interest&, util::SimTime) {
  entry.meta.request_count = 0;
  entry.meta.k_threshold = k_;
}

LookupDecision NaiveThresholdPolicy::on_cached_lookup(cache::Entry& entry, const ndn::Interest&,
                                                      bool effective_private, util::SimTime now) {
  if (!effective_private) {
    const LookupDecision decision{.action = LookupAction::kExposeHit, .artificial_delay = 0};
    trace_decision(entry, decision, effective_private, now);
    return decision;
  }
  ++entry.meta.request_count;
  const auto count = static_cast<std::int64_t>(entry.meta.request_count);
  const LookupDecision decision{.action = count <= k_ ? LookupAction::kSimulatedMiss
                                                      : LookupAction::kExposeHit,
                                .artificial_delay = 0};
  trace_decision(entry, decision, effective_private, now, count, k_);
  return decision;
}

std::unique_ptr<CachePrivacyPolicy> NaiveThresholdPolicy::clone() const {
  return std::make_unique<NaiveThresholdPolicy>(*this);
}

// --------------------------------------------------------------------------
// RandomCachePolicy

std::string_view to_string(Grouping grouping) noexcept {
  switch (grouping) {
    case Grouping::kNone: return "none";
    case Grouping::kByGroupId: return "group-id";
    case Grouping::kByNamespace: return "namespace";
  }
  return "?";
}

RandomCachePolicy::RandomCachePolicy(std::unique_ptr<KDistribution> dist, std::uint64_t seed,
                                     Grouping grouping, std::size_t namespace_prefix_len)
    : dist_(std::move(dist)),
      rng_(seed),
      grouping_(grouping),
      namespace_prefix_len_(namespace_prefix_len) {
  if (!dist_) throw std::invalid_argument("RandomCachePolicy: null distribution");
  if (grouping_ == Grouping::kByNamespace && namespace_prefix_len_ == 0)
    throw std::invalid_argument("RandomCachePolicy: namespace prefix length must be >= 1");
}

std::unique_ptr<RandomCachePolicy> RandomCachePolicy::uniform(std::int64_t domain,
                                                              std::uint64_t seed,
                                                              Grouping grouping) {
  return std::make_unique<RandomCachePolicy>(std::make_unique<UniformK>(domain), seed, grouping);
}

std::unique_ptr<RandomCachePolicy> RandomCachePolicy::exponential(double alpha,
                                                                  std::int64_t domain,
                                                                  std::uint64_t seed,
                                                                  Grouping grouping) {
  return std::make_unique<RandomCachePolicy>(std::make_unique<TruncatedGeometricK>(alpha, domain),
                                             seed, grouping);
}

std::string RandomCachePolicy::group_key(const cache::Entry& entry) const {
  switch (grouping_) {
    case Grouping::kNone:
      return entry.data.name.to_uri();
    case Grouping::kByGroupId:
      return entry.data.group_id.empty() ? entry.data.name.to_uri() : entry.data.group_id;
    case Grouping::kByNamespace:
      return entry.data.name.prefix(namespace_prefix_len_).to_uri();
  }
  return entry.data.name.to_uri();
}

void RandomCachePolicy::on_insert(cache::Entry& entry, const ndn::Interest&, util::SimTime) {
  if (grouping_ == Grouping::kNone) {
    // Algorithm 1 lines 5-7: sample k_C, start the counter at zero.
    entry.meta.k_threshold = dist_->sample(rng_);
    entry.meta.request_count = 0;
    return;
  }
  // Grouped mode: one (c, k) pair per group, created on first sight and
  // *not* reset when a member re-enters the cache — resetting would let an
  // adversary resample k and average away the randomness.
  const std::string key = group_key(entry);
  if (!groups_.contains(key)) groups_.emplace(key, GroupState{0, dist_->sample(rng_)});
}

LookupDecision RandomCachePolicy::on_cached_lookup(cache::Entry& entry, const ndn::Interest&,
                                                   bool effective_private, util::SimTime now) {
  if (!effective_private) {
    const LookupDecision decision{.action = LookupAction::kExposeHit, .artificial_delay = 0};
    trace_decision(entry, decision, effective_private, now);
    return decision;
  }
  std::int64_t count = 0;
  std::int64_t threshold = 0;
  if (grouping_ == Grouping::kNone) {
    count = static_cast<std::int64_t>(++entry.meta.request_count);
    threshold = entry.meta.k_threshold;
  } else {
    auto [it, inserted] = groups_.try_emplace(group_key(entry), GroupState{0, 0});
    if (inserted) it->second.threshold = dist_->sample(rng_);
    count = ++it->second.count;
    threshold = it->second.threshold;
  }
  // Algorithm 1 lines 10-14.
  const LookupDecision decision{.action = count <= threshold ? LookupAction::kSimulatedMiss
                                                             : LookupAction::kExposeHit,
                                .artificial_delay = 0};
  trace_decision(entry, decision, effective_private, now, count, threshold);
  return decision;
}

std::unique_ptr<CachePrivacyPolicy> RandomCachePolicy::clone() const {
  auto copy = std::make_unique<RandomCachePolicy>(dist_->clone(), 0, grouping_,
                                                  namespace_prefix_len_);
  copy->rng_ = rng_;
  copy->groups_ = groups_;
  return copy;
}

void RandomCachePolicy::export_metrics(util::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  registry.counter(prefix + ".groups").inc(groups_.size());
  std::uint64_t pending = 0;
  for (const auto& [key, state] : groups_) {
    (void)key;
    if (state.count <= state.threshold) ++pending;
  }
  registry.counter(prefix + ".pending").inc(pending);
}

}  // namespace ndnp::core
