// Concrete cache-privacy policies.
//
// Section V:  NoPrivacyPolicy (baseline), AlwaysDelayPolicy (perfect
//             privacy via artificial delays — constant gamma, per-content
//             gamma_C, or dynamic), NaiveThresholdPolicy (the non-private
//             strawman that always misses for the first k requests).
// Section VI: RandomCachePolicy (Algorithm 1) with a pluggable threshold
//             distribution — Uniform-Random-Cache, Exponential-Random-
//             Cache — and optional correlation grouping.
#pragma once

#include <map>
#include <string>

#include "core/k_distribution.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ndnp::core {

/// Baseline: every cached match is an exposed hit.
class NoPrivacyPolicy final : public CachePrivacyPolicy {
 public:
  void on_insert(cache::Entry& entry, const ndn::Interest& cause, util::SimTime now) override;
  [[nodiscard]] LookupDecision on_cached_lookup(cache::Entry& entry,
                                                const ndn::Interest& interest,
                                                bool effective_private,
                                                util::SimTime now) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "NoPrivacy"; }
  [[nodiscard]] std::unique_ptr<CachePrivacyPolicy> clone() const override;
};

/// Artificial-delay mode for AlwaysDelayPolicy (Section V-B).
enum class DelayMode {
  /// Fixed gamma for every private content; true misses are padded up to
  /// gamma (when the real fetch is faster) so the observable delay is
  /// always gamma.
  kConstant,
  /// Per-content gamma_C: the interest-in -> content-out delay observed
  /// when the router first fetched the content. The safe choice.
  kContentSpecific,
  /// Mimics in-network caching dynamics: artificial delay shrinks as the
  /// content becomes popular, but never below a two-hop floor (the paper
  /// leaves the schedule open; we use gamma_C * decay^requests).
  kDynamic,
};

[[nodiscard]] std::string_view to_string(DelayMode mode) noexcept;

struct DynamicDelayParams {
  /// Lower bound on the artificial delay: the actual delay for content two
  /// hops from the adversary (Definition IV.2 requires never dropping
  /// below it).
  util::SimDuration two_hop_floor = 0;
  /// Multiplicative decay per observed request, in (0, 1].
  double decay = 0.8;
};

/// Perfect privacy (Definition IV.2): cache hits on private content are
/// always hidden behind an artificial delay; bandwidth is still saved
/// because content is served from the cache.
class AlwaysDelayPolicy final : public CachePrivacyPolicy {
 public:
  /// Constant-gamma variant.
  static AlwaysDelayPolicy constant(util::SimDuration gamma);
  /// Content-specific gamma_C variant.
  static AlwaysDelayPolicy content_specific();
  /// Dynamic variant.
  static AlwaysDelayPolicy dynamic(DynamicDelayParams params);

  void on_insert(cache::Entry& entry, const ndn::Interest& cause, util::SimTime now) override;
  [[nodiscard]] LookupDecision on_cached_lookup(cache::Entry& entry,
                                                const ndn::Interest& interest,
                                                bool effective_private,
                                                util::SimTime now) override;
  [[nodiscard]] util::SimDuration miss_response_delay(util::SimDuration fetch_delay,
                                                      bool effective_private) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "AlwaysDelay"; }
  [[nodiscard]] DelayMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::unique_ptr<CachePrivacyPolicy> clone() const override;

 private:
  AlwaysDelayPolicy(DelayMode mode, util::SimDuration gamma, DynamicDelayParams params);

  DelayMode mode_;
  util::SimDuration gamma_ = 0;
  DynamicDelayParams dynamic_{};
};

/// The paper's non-private naive approach: always miss while c_C <= k for
/// a *fixed, publicly known* k. Broken by construction — see
/// attack::NaiveCounterAttack, which recovers the exact prior request
/// count.
class NaiveThresholdPolicy final : public CachePrivacyPolicy {
 public:
  explicit NaiveThresholdPolicy(std::int64_t k);

  void on_insert(cache::Entry& entry, const ndn::Interest& cause, util::SimTime now) override;
  [[nodiscard]] LookupDecision on_cached_lookup(cache::Entry& entry,
                                                const ndn::Interest& interest,
                                                bool effective_private,
                                                util::SimTime now) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "NaiveThreshold"; }
  [[nodiscard]] std::int64_t k() const noexcept { return k_; }
  [[nodiscard]] std::unique_ptr<CachePrivacyPolicy> clone() const override;

 private:
  std::int64_t k_;
};

/// How RandomCachePolicy keys its (c_C, k_C) state (Section VI,
/// "Addressing Content Correlation").
enum class Grouping {
  /// Per exact content name — the textbook Algorithm 1. Insecure when
  /// access patterns of related content are correlated.
  kNone,
  /// By the producer-assigned Data.group_id (content with an empty id
  /// falls back to its own name).
  kByGroupId,
  /// By name prefix of a configured length — "elements from the same
  /// namespace as a single group".
  kByNamespace,
};

[[nodiscard]] std::string_view to_string(Grouping grouping) noexcept;

/// Algorithm 1: on first retrieval sample k_C from the threshold
/// distribution and set c_C = 0; each later request increments c_C and is
/// answered with a simulated miss while c_C <= k_C, an exposed hit after.
class RandomCachePolicy final : public CachePrivacyPolicy {
 public:
  RandomCachePolicy(std::unique_ptr<KDistribution> dist, std::uint64_t seed,
                    Grouping grouping = Grouping::kNone, std::size_t namespace_prefix_len = 1);

  /// Convenience factories for the two named instantiations.
  static std::unique_ptr<RandomCachePolicy> uniform(std::int64_t domain, std::uint64_t seed,
                                                    Grouping grouping = Grouping::kNone);
  static std::unique_ptr<RandomCachePolicy> exponential(double alpha, std::int64_t domain,
                                                        std::uint64_t seed,
                                                        Grouping grouping = Grouping::kNone);

  void on_insert(cache::Entry& entry, const ndn::Interest& cause, util::SimTime now) override;
  [[nodiscard]] LookupDecision on_cached_lookup(cache::Entry& entry,
                                                const ndn::Interest& interest,
                                                bool effective_private,
                                                util::SimTime now) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "RandomCache"; }
  [[nodiscard]] const KDistribution& distribution() const noexcept { return *dist_; }
  [[nodiscard]] Grouping grouping() const noexcept { return grouping_; }
  [[nodiscard]] std::unique_ptr<CachePrivacyPolicy> clone() const override;
  /// Exports "<prefix>.groups" (distinct (c_C, k_C) states tracked) and
  /// "<prefix>.pending" (groups still inside their k_C window).
  void export_metrics(util::MetricsRegistry& registry, const std::string& prefix) const override;

 private:
  struct GroupState {
    std::int64_t count = 0;      // c_C for the group
    std::int64_t threshold = 0;  // k_C for the group
  };

  [[nodiscard]] std::string group_key(const cache::Entry& entry) const;

  std::unique_ptr<KDistribution> dist_;
  util::Rng rng_;
  Grouping grouping_;
  std::size_t namespace_prefix_len_;
  /// Group state for grouped modes. Unbounded by design: group state must
  /// outlive individual entries or eviction would reset counters and leak.
  /// Ordered map, not unordered: export_metrics walks it, and iteration
  /// order on a simulation path must be implementation-independent
  /// (determinism-unordered-iteration in docs/STATIC_ANALYSIS.md).
  std::map<std::string, GroupState> groups_;
};

}  // namespace ndnp::core
