#include "core/policy.hpp"

namespace ndnp::core {

std::string_view to_string(LookupAction action) noexcept {
  switch (action) {
    case LookupAction::kExposeHit: return "ExposeHit";
    case LookupAction::kDelayedHit: return "DelayedHit";
    case LookupAction::kSimulatedMiss: return "SimulatedMiss";
  }
  return "?";
}

void init_privacy_marking(cache::Entry& entry, const ndn::Interest& cause) noexcept {
  if (entry.data.producer_marked_private()) {
    entry.meta.treated_private = true;
    return;
  }
  if (cause.private_req) {
    entry.meta.treated_private = true;
  } else {
    entry.meta.treated_private = false;
    entry.meta.deprivatized = true;
  }
}

bool resolve_effective_privacy(cache::Entry& entry, const ndn::Interest& interest) noexcept {
  // Producer marking must always be honored by consumer-facing routers,
  // even for interests without the privacy bit.
  if (entry.data.producer_marked_private()) {
    entry.meta.treated_private = true;
    return true;
  }
  // Producer-unmarked content: the first non-private request is the
  // trigger that fixes the entry as non-private while cached.
  if (!interest.private_req) entry.meta.deprivatized = true;
  const bool effective = interest.private_req && !entry.meta.deprivatized;
  entry.meta.treated_private = effective;
  return effective;
}

}  // namespace ndnp::core
