#include "core/policy.hpp"

#include "util/tracing.hpp"

namespace ndnp::core {

std::string_view to_string(LookupAction action) noexcept {
  switch (action) {
    case LookupAction::kExposeHit: return "ExposeHit";
    case LookupAction::kDelayedHit: return "DelayedHit";
    case LookupAction::kSimulatedMiss: return "SimulatedMiss";
  }
  return "?";
}

namespace {

[[nodiscard]] std::string decision_detail(std::string_view policy_name,
                                          const LookupDecision& decision,
                                          bool effective_private, std::int64_t c,
                                          std::int64_t k) {
  std::string detail = "policy=";
  detail += policy_name;
  detail += " action=";
  detail += to_string(decision.action);
  detail += effective_private ? " private=1" : " private=0";
  if (k >= 0) {
    detail += " c=";
    detail += std::to_string(c);
    detail += " k=";
    detail += std::to_string(k);
  }
  return detail;
}

}  // namespace

void CachePrivacyPolicy::trace_decision(const cache::Entry& entry,
                                        const LookupDecision& decision, bool effective_private,
                                        util::SimTime now, std::int64_t c,
                                        std::int64_t k) const {
  NDNP_TRACE_EVENT(util::TraceEventType::kPolicyDecision, trace_label_, now,
                   entry.data.name.to_uri(),
                   decision_detail(name(), decision, effective_private, c, k), -1,
                   decision.artificial_delay);
}

void init_privacy_marking(cache::Entry& entry, const ndn::Interest& cause) noexcept {
  if (entry.data.producer_marked_private()) {
    entry.meta.treated_private = true;
    return;
  }
  if (cause.private_req) {
    entry.meta.treated_private = true;
  } else {
    entry.meta.treated_private = false;
    entry.meta.deprivatized = true;
  }
}

bool resolve_effective_privacy(cache::Entry& entry, const ndn::Interest& interest) noexcept {
  // Producer marking must always be honored by consumer-facing routers,
  // even for interests without the privacy bit.
  if (entry.data.producer_marked_private()) {
    entry.meta.treated_private = true;
    return true;
  }
  // Producer-unmarked content: the first non-private request is the
  // trigger that fixes the entry as non-private while cached.
  if (!interest.private_req) entry.meta.deprivatized = true;
  const bool effective = interest.private_req && !entry.meta.deprivatized;
  entry.meta.treated_private = effective;
  return effective;
}

}  // namespace ndnp::core
