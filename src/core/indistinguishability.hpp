// (epsilon, delta)-probabilistic indistinguishability (Definition IV.1) and
// exact/empirical output distributions of Random-Cache probes.
//
// The adversary's view after t consecutive probes of one content is a
// binary sequence that is always a (possibly empty) run of cache misses
// followed by hits, so it is fully described by its miss-prefix length
// m in {0..t}. For threshold k_C = k and x prior requests by honest users,
// Algorithm 1 yields exactly
//     m = clamp(k - x + 1, 0, t)
// (x = 0 means "never requested": the first probe is a compulsory miss).
// Comparing the distribution of m under x = 0 and under 1 <= x <= k is
// exactly the game of Definition IV.3; the functions here compute those
// distributions and the (epsilon, delta) budgets separating them, which
// the tests check against Theorems VI.1 and VI.3.
#pragma once

#include <cstdint>
#include <vector>

#include "core/k_distribution.hpp"

namespace ndnp::core {

/// Probability vector over outcomes {0, 1, ..., size-1}.
using DiscreteDist = std::vector<double>;

/// Exact distribution of the miss-prefix length over t probes, given x
/// prior honest requests, under threshold distribution `dist`.
[[nodiscard]] DiscreteDist exact_output_distribution(const KDistribution& dist, std::int64_t x,
                                                     std::int64_t t);

/// Same distribution estimated by literally executing Algorithm 1 `trials`
/// times — validates that the implementation and the closed form agree.
[[nodiscard]] DiscreteDist empirical_output_distribution(const KDistribution& dist, std::int64_t x,
                                                         std::int64_t t, std::size_t trials,
                                                         std::uint64_t seed);

/// Total-variation distance between two outcome distributions (padded to a
/// common length with zeros).
[[nodiscard]] double total_variation(const DiscreteDist& a, const DiscreteDist& b);

/// Minimal delta such that (epsilon, delta)-indistinguishability holds:
/// all outcomes whose probability ratio lies within [e^-eps, e^eps] go to
/// Omega_1; delta is the total probability (under both) of the rest.
[[nodiscard]] double delta_for_epsilon(const DiscreteDist& a, const DiscreteDist& b,
                                       double epsilon);

/// Minimal epsilon such that (epsilon, delta)-indistinguishability holds
/// for the given delta budget; +infinity if even removing every
/// finite-ratio outcome cannot fit the one-sided mass within delta.
[[nodiscard]] double min_epsilon_for_delta(const DiscreteDist& a, const DiscreteDist& b,
                                           double delta);

}  // namespace ndnp::core
