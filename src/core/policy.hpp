// Cache-management privacy policy interface (the paper's CM algorithm) and
// the private-content marking rules of Section V.
//
// A policy decides, for each interest that matches cached content, whether
// the router (a) exposes the cache hit, (b) serves from cache after an
// artificial delay (bandwidth preserved, latency mimics a miss), or
// (c) simulates a miss outright (interest forwarded upstream as if the
// content were absent). Per the system model, a policy can hide cache hits
// but can never hide true cache misses.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "cache/content_store.hpp"
#include "ndn/packet.hpp"
#include "util/sim_time.hpp"

namespace ndnp::core {

enum class LookupAction {
  kExposeHit,      // serve immediately from cache
  kDelayedHit,     // serve from cache after `artificial_delay`
  kSimulatedMiss,  // behave exactly as if the content were not cached
};

[[nodiscard]] std::string_view to_string(LookupAction action) noexcept;

struct LookupDecision {
  LookupAction action = LookupAction::kExposeHit;
  /// Extra response delay for kDelayedHit (ignored otherwise).
  util::SimDuration artificial_delay = 0;
};

class CachePrivacyPolicy {
 public:
  virtual ~CachePrivacyPolicy() = default;

  /// Called once when `entry` is inserted after a true miss.
  /// `cause` is the interest whose retrieval populated the cache.
  virtual void on_insert(cache::Entry& entry, const ndn::Interest& cause,
                         util::SimTime now) = 0;

  /// Called for each interest matching a cached entry. `effective_private`
  /// is the already-resolved marking (see resolve_effective_privacy).
  [[nodiscard]] virtual LookupDecision on_cached_lookup(cache::Entry& entry,
                                                        const ndn::Interest& interest,
                                                        bool effective_private,
                                                        util::SimTime now) = 0;

  /// Response delay the router should present on a *true* miss, given the
  /// actual upstream fetch delay. Default: the genuine delay. The
  /// constant-gamma Always-Delay policy overrides this to pad misses up to
  /// gamma so hits and misses are indistinguishable.
  [[nodiscard]] virtual util::SimDuration miss_response_delay(util::SimDuration fetch_delay,
                                                              bool effective_private) const {
    (void)effective_private;
    return fetch_delay;
  }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::unique_ptr<CachePrivacyPolicy> clone() const = 0;

  /// Publish policy-internal counters into `registry` under `prefix`
  /// (adds current totals; call once per snapshot). Default: nothing —
  /// stateless policies have no counters of their own (decision counts are
  /// kept by the engine/forwarder driving the policy).
  virtual void export_metrics(util::MetricsRegistry& registry, const std::string& prefix) const {
    (void)registry;
    (void)prefix;
  }

  /// Node label stamped on policy_decision trace events (the owning
  /// forwarder/engine sets its node name; default "policy").
  void set_trace_label(std::string label) { trace_label_ = std::move(label); }
  [[nodiscard]] const std::string& trace_label() const noexcept { return trace_label_; }

 protected:
  /// Record a policy_decision trace event (no-op unless a tracer is bound
  /// and enabled). `c`/`k` are the Algorithm-1 counter and threshold when
  /// the policy keeps them; pass -1 when not applicable.
  void trace_decision(const cache::Entry& entry, const LookupDecision& decision,
                      bool effective_private, util::SimTime now, std::int64_t c = -1,
                      std::int64_t k = -1) const;

 private:
  std::string trace_label_ = "policy";
};

// ---------------------------------------------------------------------------
// Marking rules (Section V + V-B trigger rule).

/// Initialize an entry's privacy marking at insertion time: producer
/// marking always wins; otherwise the inserting interest's privacy bit
/// decides, and a non-private first request immediately de-privatizes the
/// entry for its cache lifetime.
void init_privacy_marking(cache::Entry& entry, const ndn::Interest& cause) noexcept;

/// Resolve whether this lookup must be handled privately, applying the
/// trigger rule: the first non-private interest for producer-unmarked
/// content permanently (for the entry's cache lifetime) de-privatizes it,
/// after which even privacy-flagged interests are served as non-private —
/// the paper shows anything else lets the adversary detect prior private
/// requests. Mutates the entry's marking state accordingly.
[[nodiscard]] bool resolve_effective_privacy(cache::Entry& entry,
                                             const ndn::Interest& interest) noexcept;

}  // namespace ndnp::core
