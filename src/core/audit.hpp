// Black-box privacy auditing of cache-management policies.
//
// Given any CachePrivacyPolicy — including third-party ones this library
// has never seen — the auditor runs the Definition IV.3 game against a
// real CachePrivacyEngine, estimates the adversary-visible output
// distributions under "never requested" (S_0) and "requested x times"
// (S_x), and reports the empirical privacy budget: the Bayes-optimal
// distinguishing accuracy and the minimal epsilon at a chosen delta.
// For the library's own Random-Cache schemes the results converge to the
// Theorem VI.1/VI.3 bounds (tested); for anything else they are an honest
// Monte-Carlo measurement with ~1/sqrt(rounds) noise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/indistinguishability.hpp"
#include "core/policy.hpp"

namespace ndnp::core {

struct AuditConfig {
  /// Prior honest requests in the "requested" state (x of Definition IV.3;
  /// audit every x in 1..k to certify a (k, ., .) budget).
  std::int64_t x = 1;
  /// Probes per game round.
  std::int64_t probes = 32;
  /// Monte-Carlo rounds per state.
  std::size_t rounds = 20'000;
  /// Delta budget at which min-epsilon is reported.
  double delta = 0.05;
  /// Epsilon slack used for the near-zero-epsilon delta estimate: exact
  /// epsilon = 0 is degenerate against empirical distributions (sampling
  /// noise makes every probability ratio differ from 1, sending all mass
  /// to Omega_2), so the one-sided leakage is measured at this small
  /// epsilon instead. Should comfortably exceed the per-outcome log-ratio
  /// noise ~ sqrt(2 / (rounds * p_outcome)).
  double zero_epsilon_slack = 0.15;
  /// Content is producer-marked private during the audit.
  bool producer_private = true;
  std::uint64_t seed = 1;
};

struct AuditReport {
  /// Empirical outcome distributions (miss-run length over `probes`).
  DiscreteDist never_requested;   // S_0
  DiscreteDist requested_x;       // S_x
  /// 1/2 + TV/2 over the empirical distributions.
  double bayes_accuracy = 0.0;
  /// Minimal epsilon achieving the configured delta (may be +inf).
  double epsilon_at_delta = 0.0;
  /// Delta at the near-zero epsilon slack (the one-sided leakage, i.e.
  /// the mass of outcomes possible in one state but not the other).
  double delta_near_zero_epsilon = 0.0;
};

/// Audit `policy_factory` (a fresh policy instance is created per game
/// round so rounds are independent). The adversary observes only response
/// delays, exactly like a network attacker.
[[nodiscard]] AuditReport audit_policy(
    const std::function<std::unique_ptr<CachePrivacyPolicy>()>& policy_factory,
    const AuditConfig& config);

}  // namespace ndnp::core
