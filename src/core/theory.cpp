#include "core/theory.hpp"

#include <cmath>
#include <stdexcept>

namespace ndnp::core {

namespace {

void require_c(std::int64_t c) {
  if (c < 1) throw std::invalid_argument("theory: c must be >= 1");
}

void require_alpha(double alpha) {
  if (!(alpha > 0.0) || !(alpha < 1.0))
    throw std::invalid_argument("theory: alpha must be in (0,1)");
}

void require_domain(std::int64_t domain) {
  if (domain <= 0) throw std::invalid_argument("theory: domain K must be positive");
}

[[nodiscard]] double powd(double base, std::int64_t e) {
  return std::pow(base, static_cast<double>(e));
}

}  // namespace

double expected_misses(std::int64_t c, const KDistribution& dist) {
  require_c(c);
  // E[min(c, K)] by direct summation.
  double acc = 0.0;
  for (std::int64_t k = 0; k < dist.domain_size(); ++k)
    acc += static_cast<double>(std::min(c, k)) * dist.pmf(k);
  return acc;
}

double utility(std::int64_t c, const KDistribution& dist) {
  require_c(c);
  return 1.0 - expected_misses(c, dist) / static_cast<double>(c);
}

double uniform_expected_misses(std::int64_t c, std::int64_t domain) {
  require_c(c);
  require_domain(domain);
  const auto cd = static_cast<double>(c);
  const auto kd = static_cast<double>(domain);
  if (c < domain) return cd * (1.0 - (cd + 1.0) / (2.0 * kd));
  return (kd - 1.0) / 2.0;  // exact E[U(0,K)]; the paper prints K/2
}

double uniform_utility(std::int64_t c, std::int64_t domain) {
  return 1.0 - uniform_expected_misses(c, domain) / static_cast<double>(c);
}

PrivacyBudget uniform_privacy(std::int64_t k, std::int64_t domain) {
  require_domain(domain);
  if (k < 0) throw std::invalid_argument("uniform_privacy: k must be non-negative");
  return {.epsilon = 0.0,
          .delta = 2.0 * static_cast<double>(k) / static_cast<double>(domain)};
}

std::int64_t uniform_domain_for_delta(std::int64_t k, double delta) {
  if (k <= 0) throw std::invalid_argument("uniform_domain_for_delta: k must be positive");
  if (!(delta > 0.0)) throw std::invalid_argument("uniform_domain_for_delta: delta must be > 0");
  return static_cast<std::int64_t>(
      std::ceil(2.0 * static_cast<double>(k) / delta));
}

double expo_expected_misses(std::int64_t c, double alpha, std::int64_t domain) {
  require_c(c);
  require_alpha(alpha);
  require_domain(domain);
  // E[min(c,K)] with K truncated-geometric(alpha) on [0, domain):
  //   [ (a - c a^c + (c-1) a^{c+1}) / (1-a) + c a^c - c a^K ] / (1 - a^K)
  // valid for c <= K; for c > K, min(c,K) == min(K,K) so clamp.
  const std::int64_t cc = std::min(c, domain);
  const auto cd = static_cast<double>(cc);
  const double a = alpha;
  const double ac = powd(a, cc);
  const double aK = powd(a, domain);
  const double head = (a - cd * ac + (cd - 1.0) * ac * a) / (1.0 - a);
  return (head + cd * ac - cd * aK) / (1.0 - aK);
}

double expo_utility(std::int64_t c, double alpha, std::int64_t domain) {
  return 1.0 - expo_expected_misses(c, alpha, domain) / static_cast<double>(c);
}

PrivacyBudget expo_privacy(std::int64_t k, double alpha, std::int64_t domain) {
  require_alpha(alpha);
  require_domain(domain);
  if (k < 0) throw std::invalid_argument("expo_privacy: k must be non-negative");
  const double ak = powd(alpha, k);
  const double aK = powd(alpha, domain);
  const double aKk = powd(alpha, domain - k);
  return {.epsilon = -static_cast<double>(k) * std::log(alpha),
          .delta = (1.0 - ak + aKk - aK) / (1.0 - aK)};
}

double expo_alpha_for_epsilon(std::int64_t k, double epsilon) {
  if (k <= 0) throw std::invalid_argument("expo_alpha_for_epsilon: k must be positive");
  if (!(epsilon > 0.0))
    throw std::invalid_argument("expo_alpha_for_epsilon: epsilon must be > 0");
  return std::exp(-epsilon / static_cast<double>(k));
}

std::optional<std::int64_t> expo_domain_for_delta(std::int64_t k, double alpha, double delta) {
  require_alpha(alpha);
  if (k <= 0) throw std::invalid_argument("expo_domain_for_delta: k must be positive");
  if (!(delta > 0.0) || !(delta < 1.0))
    throw std::invalid_argument("expo_domain_for_delta: delta must be in (0,1)");
  // delta(K) = (1-a^k)(1+a^{K-k}) / (1-a^K) is strictly decreasing in K
  // with infimum 1 - a^k; the target is unattainable at or below the floor.
  const double floor = 1.0 - powd(alpha, k);
  if (delta <= floor) return std::nullopt;

  const auto delta_of = [&](std::int64_t domain) {
    return expo_privacy(k, alpha, domain).delta;
  };
  constexpr std::int64_t kMaxDomain = std::int64_t{1} << 48;
  std::int64_t hi = k + 1;
  while (delta_of(hi) > delta) {
    if (hi >= kMaxDomain) return std::nullopt;  // floating-point corner: treat as unattainable
    hi *= 2;
  }
  std::int64_t lo = k + 1;
  while (lo < hi) {  // first K with delta(K) <= target (monotone decrease)
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (delta_of(mid) <= delta)
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

double paper_uniform_expected_misses(std::int64_t c, std::int64_t domain) {
  require_c(c);
  require_domain(domain);
  const auto cd = static_cast<double>(c);
  const auto kd = static_cast<double>(domain);
  if (c < domain) return cd * (1.0 - (cd + 1.0) / (2.0 * kd));
  return kd / 2.0;
}

double paper_expo_expected_misses(std::int64_t c, double alpha, std::int64_t domain) {
  require_c(c);
  require_alpha(alpha);
  require_domain(domain);
  const double a = alpha;
  const double aK = powd(a, domain);
  if (c < domain) {
    const auto cd = static_cast<double>(c);
    const double ac = powd(a, c);
    return (1.0 - ac - cd * aK) / (1.0 - aK) + a * (1.0 - ac) / ((1.0 - aK) * (1.0 - a));
  }
  const auto kd = static_cast<double>(domain);
  return (1.0 - (kd + 1.0) * aK) / (1.0 - aK) + a / (1.0 - a);
}

std::optional<ExpoParams> solve_expo_params(std::int64_t k, double epsilon, double delta,
                                            double delta_slack) {
  if (delta_slack < 0.0)
    throw std::invalid_argument("solve_expo_params: delta_slack must be >= 0");
  const double alpha = expo_alpha_for_epsilon(k, epsilon);
  const auto domain = expo_domain_for_delta(k, alpha, delta * (1.0 + delta_slack));
  if (!domain) return std::nullopt;
  return ExpoParams{.alpha = alpha, .domain = *domain};
}

double max_epsilon_for_delta(double delta) {
  if (!(delta > 0.0) || !(delta < 1.0))
    throw std::invalid_argument("max_epsilon_for_delta: delta must be in (0,1)");
  return -std::log(1.0 - delta);
}

}  // namespace ndnp::core
