#include "core/k_distribution.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ndnp::core {

double KDistribution::mean() const {
  double acc = 0.0;
  for (std::int64_t k = 0; k < domain_size(); ++k) acc += static_cast<double>(k) * pmf(k);
  return acc;
}

double KDistribution::tail(std::int64_t k) const {
  double acc = 0.0;
  for (std::int64_t i = std::max<std::int64_t>(k, 0); i < domain_size(); ++i) acc += pmf(i);
  return acc;
}

UniformK::UniformK(std::int64_t domain) : domain_(domain) {
  if (domain <= 0) throw std::invalid_argument("UniformK: domain must be positive");
}

std::int64_t UniformK::sample(util::Rng& rng) const {
  return static_cast<std::int64_t>(rng.uniform_u64(static_cast<std::uint64_t>(domain_)));
}

double UniformK::pmf(std::int64_t k) const {
  if (k < 0 || k >= domain_) return 0.0;
  return 1.0 / static_cast<double>(domain_);
}

std::string UniformK::name() const { return "Uniform(K=" + std::to_string(domain_) + ")"; }

std::unique_ptr<KDistribution> UniformK::clone() const { return std::make_unique<UniformK>(*this); }

TruncatedGeometricK::TruncatedGeometricK(double alpha, std::int64_t domain)
    : alpha_(alpha), domain_(domain) {
  if (domain <= 0) throw std::invalid_argument("TruncatedGeometricK: domain must be positive");
  if (!(alpha > 0.0) || !(alpha < 1.0))
    throw std::invalid_argument("TruncatedGeometricK: alpha must be in (0,1)");
}

std::int64_t TruncatedGeometricK::sample(util::Rng& rng) const {
  // Rejection-free inverse transform on the truncated support:
  // F(r) = (1 - a^{r+1}) / (1 - a^K); r = floor(log_a(1 - u (1 - a^K))).
  const double u = rng.uniform01();
  const double z = 1.0 - u * (1.0 - std::pow(alpha_, static_cast<double>(domain_)));
  const auto r = static_cast<std::int64_t>(std::floor(std::log(z) / std::log(alpha_)));
  return std::clamp<std::int64_t>(r, 0, domain_ - 1);
}

double TruncatedGeometricK::pmf(std::int64_t k) const {
  if (k < 0 || k >= domain_) return 0.0;
  const double norm = 1.0 - std::pow(alpha_, static_cast<double>(domain_));
  return (1.0 - alpha_) * std::pow(alpha_, static_cast<double>(k)) / norm;
}

std::string TruncatedGeometricK::name() const {
  return "TruncGeom(alpha=" + std::to_string(alpha_) + ",K=" + std::to_string(domain_) + ")";
}

std::unique_ptr<KDistribution> TruncatedGeometricK::clone() const {
  return std::make_unique<TruncatedGeometricK>(*this);
}

DegenerateK::DegenerateK(std::int64_t k0) : k0_(k0) {
  if (k0 < 0) throw std::invalid_argument("DegenerateK: k0 must be non-negative");
}

std::int64_t DegenerateK::sample(util::Rng&) const { return k0_; }

double DegenerateK::pmf(std::int64_t k) const { return k == k0_ ? 1.0 : 0.0; }

std::string DegenerateK::name() const { return "Degenerate(k=" + std::to_string(k0_) + ")"; }

std::unique_ptr<KDistribution> DegenerateK::clone() const {
  return std::make_unique<DegenerateK>(*this);
}

}  // namespace ndnp::core
