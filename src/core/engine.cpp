#include "core/engine.hpp"

#include <stdexcept>

#include "util/tracing.hpp"

namespace ndnp::core {

std::string_view to_string(RequestOutcome::Kind kind) noexcept {
  switch (kind) {
    case RequestOutcome::Kind::kTrueMiss: return "TrueMiss";
    case RequestOutcome::Kind::kExposedHit: return "ExposedHit";
    case RequestOutcome::Kind::kDelayedHit: return "DelayedHit";
    case RequestOutcome::Kind::kSimulatedMiss: return "SimulatedMiss";
  }
  return "?";
}

CachePrivacyEngine::CachePrivacyEngine(std::size_t cache_capacity,
                                       cache::EvictionPolicy eviction,
                                       std::unique_ptr<CachePrivacyPolicy> policy,
                                       std::uint64_t seed,
                                       double cache_admission_probability)
    : store_(cache_capacity, eviction, seed),
      policy_(std::move(policy)),
      rng_(seed ^ 0xd1b54a32d192ed03ULL),
      admission_probability_(cache_admission_probability) {
  if (!policy_) throw std::invalid_argument("CachePrivacyEngine: null policy");
  if (admission_probability_ < 0.0 || admission_probability_ > 1.0)
    throw std::invalid_argument("CachePrivacyEngine: admission probability must be in [0,1]");
  store_.set_trace_label("engine");
  policy_->set_trace_label("engine");
}

RequestOutcome CachePrivacyEngine::handle(const ndn::Interest& interest, util::SimTime now,
                                          const FetchFn& fetch) {
  ++stats_.requests;
  NDNP_TRACE_EVENT(util::TraceEventType::kInterestRx, "engine", now, interest.name.to_uri(),
                   interest.private_req ? "private=1" : "private=0");

  if (cache::Entry* entry = store_.find(interest)) {
    const bool effective_private = resolve_effective_privacy(*entry, interest);
    const LookupDecision decision =
        policy_->on_cached_lookup(*entry, interest, effective_private, now);
    // Any access refreshes recency — "the corresponding cache entry becomes
    // fresh even if the response is delayed" — and a simulated miss is
    // still an access.
    store_.touch(*entry, now);
    switch (decision.action) {
      case LookupAction::kExposeHit:
        ++stats_.exposed_hits;
        return {.kind = RequestOutcome::Kind::kExposedHit,
                .response_delay = 0,
                .served_from_cache = true};
      case LookupAction::kDelayedHit:
        ++stats_.delayed_hits;
        return {.kind = RequestOutcome::Kind::kDelayedHit,
                .response_delay = decision.artificial_delay,
                .served_from_cache = true};
      case LookupAction::kSimulatedMiss: {
        // Mimic a miss faithfully: the response takes as long as the
        // original upstream fetch took.
        ++stats_.simulated_misses;
        return {.kind = RequestOutcome::Kind::kSimulatedMiss,
                .response_delay = entry->meta.fetch_delay,
                .served_from_cache = false};
      }
    }
  }

  // True miss: fetch upstream, cache (subject to admission), and respond
  // after the fetch delay (padded by the policy when it hides miss/hit
  // asymmetry).
  ++stats_.true_misses;
  auto [data, fetch_delay] = fetch(interest);
  NDNP_TRACE_EVENT(util::TraceEventType::kDataRx, "engine", now, data.name.to_uri(),
                   "from=upstream", -1, fetch_delay);
  if (admission_probability_ < 1.0 && !rng_.bernoulli(admission_probability_)) {
    const bool would_be_private = data.producer_marked_private() || interest.private_req;
    return {.kind = RequestOutcome::Kind::kTrueMiss,
            .response_delay = policy_->miss_response_delay(fetch_delay, would_be_private),
            .served_from_cache = false};
  }
  cache::EntryMeta meta;
  meta.inserted_at = now;
  meta.last_access = now;
  meta.fetch_delay = fetch_delay;
  cache::Entry& entry = store_.insert(std::move(data), meta);
  init_privacy_marking(entry, interest);
  policy_->on_insert(entry, interest, now);
  const util::SimDuration response =
      policy_->miss_response_delay(fetch_delay, entry.meta.treated_private);
  return {.kind = RequestOutcome::Kind::kTrueMiss,
          .response_delay = response,
          .served_from_cache = false};
}

void CachePrivacyEngine::export_metrics(util::MetricsRegistry& registry,
                                        const std::string& prefix) const {
  registry.counter(prefix + ".requests").inc(stats_.requests);
  registry.counter(prefix + ".exposed_hits").inc(stats_.exposed_hits);
  registry.counter(prefix + ".delayed_hits").inc(stats_.delayed_hits);
  registry.counter(prefix + ".simulated_misses").inc(stats_.simulated_misses);
  registry.counter(prefix + ".true_misses").inc(stats_.true_misses);
  store_.export_metrics(registry, prefix + ".cs");
  policy_->export_metrics(registry, prefix + ".policy");
}

}  // namespace ndnp::core
