#include "core/name_privacy.hpp"

#include <stdexcept>

namespace ndnp::core {

UnpredictableNameSession::UnpredictableNameSession(ndn::Name base, std::string_view secret,
                                                   std::string label,
                                                   std::size_t token_hex_chars)
    : base_(std::move(base)),
      prf_(secret),
      label_(std::move(label)),
      token_hex_chars_(token_hex_chars) {
  if (token_hex_chars_ == 0 || token_hex_chars_ > 64)
    throw std::invalid_argument("UnpredictableNameSession: token length must be in [1,64]");
}

ndn::Name UnpredictableNameSession::name_for(std::uint64_t seq) const {
  const std::string rand = prf_.derive_token(label_, seq, token_hex_chars_);
  return base_.append_number(seq).append(rand);
}

ndn::Interest UnpredictableNameSession::interest_for(std::uint64_t seq,
                                                     std::uint64_t nonce) const {
  ndn::Interest interest;
  interest.name = name_for(seq);
  interest.nonce = nonce;
  return interest;
}

ndn::Data UnpredictableNameSession::data_for(std::uint64_t seq, std::string payload,
                                             std::string producer,
                                             std::string_view producer_key) const {
  ndn::Data data =
      ndn::make_data(name_for(seq), std::move(payload), std::move(producer), producer_key);
  data.exact_match_only = true;
  return data;
}

}  // namespace ndnp::core
