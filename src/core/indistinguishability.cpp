#include "core/indistinguishability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ndnp::core {

DiscreteDist exact_output_distribution(const KDistribution& dist, std::int64_t x, std::int64_t t) {
  if (x < 0) throw std::invalid_argument("exact_output_distribution: x must be >= 0");
  if (t < 1) throw std::invalid_argument("exact_output_distribution: t must be >= 1");
  DiscreteDist out(static_cast<std::size_t>(t) + 1, 0.0);
  for (std::int64_t k = 0; k < dist.domain_size(); ++k) {
    const std::int64_t m = std::clamp<std::int64_t>(k - x + 1, 0, t);
    out[static_cast<std::size_t>(m)] += dist.pmf(k);
  }
  return out;
}

DiscreteDist empirical_output_distribution(const KDistribution& dist, std::int64_t x,
                                           std::int64_t t, std::size_t trials,
                                           std::uint64_t seed) {
  if (x < 0 || t < 1 || trials == 0)
    throw std::invalid_argument("empirical_output_distribution: bad arguments");
  util::Rng rng(seed);
  DiscreteDist out(static_cast<std::size_t>(t) + 1, 0.0);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    // Literal Algorithm 1 state for one content.
    const std::int64_t k = dist.sample(rng);
    std::int64_t c = -1;  // -1 = not yet in T
    const auto request_is_miss = [&]() -> bool {
      if (c < 0) {
        c = 0;  // first request: insert, always a miss
        return true;
      }
      ++c;
      return c <= k;
    };
    for (std::int64_t i = 0; i < x; ++i) (void)request_is_miss();  // honest prior requests
    std::int64_t m = 0;
    bool in_prefix = true;
    for (std::int64_t i = 0; i < t; ++i) {
      const bool miss = request_is_miss();
      if (miss && in_prefix)
        ++m;
      else
        in_prefix = false;
    }
    out[static_cast<std::size_t>(m)] += 1.0;
  }
  for (double& p : out) p /= static_cast<double>(trials);
  return out;
}

namespace {

[[nodiscard]] std::pair<DiscreteDist, DiscreteDist> padded(const DiscreteDist& a,
                                                           const DiscreteDist& b) {
  DiscreteDist pa = a;
  DiscreteDist pb = b;
  const std::size_t n = std::max(pa.size(), pb.size());
  pa.resize(n, 0.0);
  pb.resize(n, 0.0);
  return {std::move(pa), std::move(pb)};
}

}  // namespace

double total_variation(const DiscreteDist& a, const DiscreteDist& b) {
  const auto [pa, pb] = padded(a, b);
  double acc = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) acc += std::abs(pa[i] - pb[i]);
  return 0.5 * acc;
}

double delta_for_epsilon(const DiscreteDist& a, const DiscreteDist& b, double epsilon) {
  if (epsilon < 0.0) throw std::invalid_argument("delta_for_epsilon: epsilon must be >= 0");
  const auto [pa, pb] = padded(a, b);
  const double bound = std::exp(epsilon);
  double delta = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i] == 0.0 && pb[i] == 0.0) continue;
    // Outcome stays in Omega_1 iff both ratios are within [e^-eps, e^eps];
    // a zero on either side forces it into Omega_2.
    const bool bounded =
        pa[i] > 0.0 && pb[i] > 0.0 && pa[i] <= bound * pb[i] && pb[i] <= bound * pa[i];
    if (!bounded) delta += pa[i] + pb[i];
  }
  return delta;
}

double min_epsilon_for_delta(const DiscreteDist& a, const DiscreteDist& b, double delta) {
  if (delta < 0.0) throw std::invalid_argument("min_epsilon_for_delta: delta must be >= 0");
  const auto [pa, pb] = padded(a, b);
  double one_sided = 0.0;  // outcomes that must be in Omega_2 at any epsilon
  std::vector<std::pair<double, double>> ratio_mass;  // (|log ratio|, pa+pb)
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i] == 0.0 && pb[i] == 0.0) continue;
    if (pa[i] == 0.0 || pb[i] == 0.0) {
      one_sided += pa[i] + pb[i];
    } else {
      ratio_mass.emplace_back(std::abs(std::log(pa[i] / pb[i])), pa[i] + pb[i]);
    }
  }
  if (one_sided > delta) return std::numeric_limits<double>::infinity();
  // Move the largest-ratio outcomes into Omega_2 while the budget allows;
  // epsilon is then the largest ratio left in Omega_1.
  std::sort(ratio_mass.begin(), ratio_mass.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  double budget = delta - one_sided;
  std::size_t i = 0;
  while (i < ratio_mass.size() && ratio_mass[i].second <= budget) {
    budget -= ratio_mass[i].second;
    ++i;
  }
  return i < ratio_mass.size() ? ratio_mass[i].first : 0.0;
}

}  // namespace ndnp::core
