// Runner-driven definitions of the Section VII sweep experiments.
//
// The parameter grids behind bench_fig5a_hit_rates, bench_fig4a_utility and
// bench_theory_validation live here as library functions so that (a) the
// bench binaries and the golden/determinism tests share one implementation,
// and (b) each grid cell runs as an independent `runner` run — parallel
// under --jobs, with results merged in run-index order and therefore
// byte-identical to the single-threaded output (tolerance 0; see
// tests/golden/).
//
// Seeding note: these are parameter grids, not seed sweeps, and they
// reproduce the paper figures, so every cell keeps the exact seed the
// original serial bench used (e.g. replay seed 99 for every Figure 5(a)
// cell). Seed sweeps key per-run streams via runner::run_seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/theory.hpp"
#include "runner/runner.hpp"
#include "trace/replayer.hpp"
#include "trace/trace.hpp"

namespace ndnp::runner {

/// Replay `trace` under `config` and return the full metrics snapshot:
/// engine/cs/policy counters plus the derived replay gauges.
[[nodiscard]] util::MetricsSnapshot replay_with_metrics(const trace::Trace& trace,
                                                        const trace::ReplayConfig& config);

// ---------------------------------------------------------------------------
// Figure 5(a): hit rate by scheme and cache size (trace replay grid).

struct Fig5aConfig {
  std::size_t trace_requests = 200'000;
  std::size_t trace_objects = 200'000;
  std::uint64_t trace_seed = 2013;
  /// Replay seed used by *every* grid cell (the paper reproduction fixes it).
  std::uint64_t replay_seed = 99;
  std::int64_t anonymity_k = 5;
  double epsilon = 0.005;
  double delta = 0.05;
  double private_fraction = 0.2;
  /// 0 = unlimited (the paper's "Inf" column).
  std::vector<std::size_t> cache_sizes = {2'000, 4'000, 8'000, 16'000, 32'000, 0};
  /// Degraded-network ablation: Gilbert–Elliott burst loss on the upstream
  /// fetch path of every replay cell (see trace::ReplayConfig). Hit rates
  /// are unaffected by construction; response delays inflate.
  util::GilbertElliottConfig upstream_loss{};
  util::SimDuration upstream_retry_penalty = util::millis(80);
  std::size_t jobs = 1;
  /// Optional per-cell flight-recorder capture (not owned).
  SweepTraceCapture* capture = nullptr;
  /// Optional per-cell telemetry capture (not owned): every grid cell
  /// replays with its own TelemetryHub and the detector/occupancy time
  /// series are exported after the sweep (--telemetry-out).
  telemetry::SweepTelemetryCapture* telemetry = nullptr;
};

struct Fig5aResult {
  std::vector<std::string> scheme_names;
  std::vector<std::size_t> cache_sizes;
  /// cells[scheme][size]: full per-run snapshot.
  std::vector<std::vector<util::MetricsSnapshot>> cells;
  std::size_t trace_size = 0;
  std::size_t trace_distinct = 0;
  std::int64_t uniform_domain = 0;
  core::ExpoParams expo{};
  double wall_seconds = 0.0;

  [[nodiscard]] double hit_rate_pct(std::size_t scheme, std::size_t size) const;

  /// The bench's table text (header row + one row per scheme), identical to
  /// the pre-runner serial output. This is what the golden vectors lock in.
  [[nodiscard]] std::string format_table() const;

  /// Mean response delay (ms) per cell — the metric the degraded-network
  /// ablation moves (hit rates stay put by construction).
  [[nodiscard]] std::string format_delay_table() const;

  /// Canonical merged JSON of all cells (row-major) plus the aggregate.
  [[nodiscard]] std::string merged_json() const;
};

/// Throws std::runtime_error if the exponential parameterization is
/// unattainable for (k, epsilon, delta).
[[nodiscard]] Fig5aResult run_fig5a(const Fig5aConfig& config);

// ---------------------------------------------------------------------------
// Figure 5(b): Exponential-Random-Cache hit rate by private share and
// cache size (trace replay grid).

struct Fig5bConfig {
  std::size_t trace_requests = 200'000;
  std::size_t trace_objects = 200'000;
  std::uint64_t trace_seed = 2013;
  /// Replay seed used by every grid cell (matches the original serial bench).
  std::uint64_t replay_seed = 99;
  std::int64_t anonymity_k = 5;
  double epsilon = 0.005;
  double delta = 0.05;
  /// Fraction of content marked private, one table row each.
  std::vector<double> private_fractions = {0.05, 0.10, 0.20, 0.40};
  /// 0 = unlimited (the paper's "Inf" column).
  std::vector<std::size_t> cache_sizes = {2'000, 4'000, 8'000, 16'000, 32'000, 0};
  std::size_t jobs = 1;
  /// Optional per-cell flight-recorder capture (not owned).
  SweepTraceCapture* capture = nullptr;
  /// Optional per-cell telemetry capture (not owned); see Fig5aConfig.
  telemetry::SweepTelemetryCapture* telemetry = nullptr;
};

struct Fig5bResult {
  std::vector<double> private_fractions;
  std::vector<std::size_t> cache_sizes;
  /// cells[fraction][size]: full per-run snapshot.
  std::vector<std::vector<util::MetricsSnapshot>> cells;
  std::size_t trace_size = 0;
  core::ExpoParams expo{};
  double wall_seconds = 0.0;

  [[nodiscard]] double hit_rate_pct(std::size_t fraction, std::size_t size) const;

  /// The bench's table text (header row + one row per private share),
  /// identical to the pre-runner serial output; golden-vector locked.
  [[nodiscard]] std::string format_table() const;

  /// Canonical merged JSON of all cells (row-major) plus the aggregate.
  [[nodiscard]] std::string merged_json() const;
};

/// Throws std::runtime_error if the exponential parameterization is
/// unattainable for (k, epsilon, delta).
[[nodiscard]] Fig5bResult run_fig5b(const Fig5bConfig& config);

// ---------------------------------------------------------------------------
// Figure 4(a): utility vs number of requests (closed-form grid).

struct Fig4aConfig {
  double delta = 0.05;
  std::vector<double> epsilons = {0.03, 0.04, 0.05};
  std::vector<std::int64_t> ks = {1, 5};
  std::int64_t c_min = 5;
  std::int64_t c_max = 100;
  std::int64_t c_step = 5;
  std::size_t jobs = 1;
  /// Optional per-cell flight-recorder capture (not owned).
  SweepTraceCapture* capture = nullptr;
};

struct Fig4aRow {
  std::int64_t c = 0;
  double uniform = 0.0;
  std::vector<double> expo;  // one value per configured epsilon
};

struct Fig4aBlock {
  std::int64_t k = 0;
  std::int64_t uniform_domain = 0;
  std::vector<double> epsilons;               // as configured
  std::vector<core::ExpoParams> expo_params;  // one per configured epsilon
  std::vector<Fig4aRow> rows;
};

struct Fig4aResult {
  std::vector<Fig4aBlock> blocks;  // one per k
  double wall_seconds = 0.0;

  /// The bench's full table text (parameter lines + per-c rows per k).
  [[nodiscard]] std::string format_table() const;
};

[[nodiscard]] Fig4aResult run_fig4a(const Fig4aConfig& config);

// ---------------------------------------------------------------------------
// Theorems VI.1-VI.4 Monte-Carlo validation.

struct TheoryValidationConfig {
  std::size_t trials = 200'000;
  /// Offset added to every utility row's RNG seed (row r draws from
  /// seed_base + (expo ? 2000 : 1000) + r). 0 reproduces the original
  /// serial bench; golden vectors pin several bases.
  std::uint64_t seed_base = 0;
  std::vector<std::int64_t> cs = {5, 20, 80};  // utility section
  std::vector<std::int64_t> xs = {1, 3, 5};    // privacy section
  std::size_t jobs = 1;
  /// Optional per-run flight-recorder capture (not owned).
  SweepTraceCapture* capture = nullptr;
};

struct TheoryUtilityRow {
  std::string scheme;
  std::int64_t c = 0;
  double closed_form = 0.0;
  double simulated = 0.0;
};

struct TheoryPrivacyRow {
  std::string scheme;
  std::int64_t x = 0;
  double epsilon = 0.0;
  double measured_delta = 0.0;
  double bound_delta = 0.0;
};

struct TheoryValidationResult {
  std::vector<TheoryUtilityRow> utility;
  std::vector<TheoryPrivacyRow> privacy;
  double max_utility_error = 0.0;
  double wall_seconds = 0.0;

  [[nodiscard]] std::string format_utility_table() const;
  [[nodiscard]] std::string format_privacy_table() const;
};

[[nodiscard]] TheoryValidationResult run_theory_validation(const TheoryValidationConfig& config);

}  // namespace ndnp::runner
