// Deterministic parallel experiment driver.
//
// A *sweep* is N independent runs (seed sweeps, policy/parameter grids),
// each owning its own engine/topology/Scheduler and its own RNG stream.
// Runs are fanned across a std::thread pool; determinism is guaranteed by
// construction:
//
//  1. Run i's seed is `run_seed(master_seed, i)` — a pure function of
//     (master_seed, run_index), independent of thread count, scheduling
//     order, and completion order (closed-form SplitMix64: the i-th draw of
//     SplitMix64(master_seed), computed by random access).
//  2. A run never touches shared mutable state; its result lands in slot i
//     of a pre-sized vector.
//  3. Results are merged in run-index order after all threads join.
//
// Consequently the merged output is byte-identical for any --jobs value
// (verified by tests/test_runner.cpp). Wall-clock timing is reported out of
// band and never feeds the merged results.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/metrics.hpp"
#include "util/tracing.hpp"

namespace ndnp::runner {

/// Derive the RNG seed of run `run_index` under `master_seed`: the
/// (run_index + 1)-th output of SplitMix64(master_seed), computed in O(1)
/// (SplitMix64's state advances by a fixed gamma per step, so the i-th
/// state is master_seed + gamma * (i + 1)). Distinct run indices give
/// distinct, well-mixed seeds; feeding them to Xoshiro256 yields
/// effectively independent streams (tests assert no collisions across
/// 10k draws per stream).
[[nodiscard]] std::uint64_t run_seed(std::uint64_t master_seed, std::size_t run_index) noexcept;

/// Identity of one run inside a sweep, handed to the run function.
struct RunContext {
  std::size_t run_index = 0;
  std::size_t num_runs = 0;
  std::uint64_t master_seed = 0;
  /// run_seed(master_seed, run_index), precomputed.
  std::uint64_t seed = 0;
};

/// Per-run flight-recorder capture for a sweep (--trace-out plumbing).
///
/// Each run gets its own util::Tracer, bound to that run's worker thread
/// for the duration of the run — tracers are single-threaded, runs are
/// independent, and the tracer only observes, so captures cannot perturb
/// the sweep's deterministic results (golden tests enforce this).
struct SweepTraceCapture {
  /// Output path; ".jsonl" selects the JSONL exporter, anything else the
  /// Chrome trace-event format. Multi-run sweeps write one file per run
  /// with ".runN" spliced in before the extension. Empty = capture in
  /// memory only (inspect via `runs` after the sweep).
  std::string out_path;
  /// Name-prefix filter forwarded to every run's tracer (--trace-filter).
  std::string filter;
  /// Ring capacity per run (0 = keep every event).
  std::size_t ring_capacity = 1u << 20;
  /// One tracer per run, in run-index order; populated by prepare().
  std::vector<std::unique_ptr<util::Tracer>> runs;

  /// Allocate a tracer per run. Called by run_sweep; idempotent for a
  /// given run count.
  void prepare(std::size_t num_runs);
  [[nodiscard]] util::Tracer* run_tracer(std::size_t run_index) noexcept {
    return run_index < runs.size() ? runs[run_index].get() : nullptr;
  }
  /// Path run `run_index`'s capture is written to (out_path, with ".runN"
  /// spliced in when the sweep has several runs).
  [[nodiscard]] std::string run_path(std::size_t run_index) const;
  /// Export every run's capture (no-op when out_path is empty).
  void write_files() const;
};

struct SweepOptions {
  /// Worker threads; 0 and 1 both mean "run inline on the calling thread".
  std::size_t jobs = 1;
  std::uint64_t master_seed = 1;
  /// When set, every run records into its own tracer and captures are
  /// exported after the sweep. Not owned; must outlive the sweep call.
  SweepTraceCapture* capture = nullptr;
  /// When set, every run samples into its own telemetry hub and the time
  /// series are exported after the sweep (--telemetry-out plumbing). Same
  /// ownership and determinism contract as `capture`: per-run hubs mean
  /// the exported series are byte-identical for any --jobs value. The run
  /// function wires its run's hub via `telemetry->run_hub(ctx.run_index)`.
  telemetry::SweepTelemetryCapture* telemetry = nullptr;
};

/// Clamp a user-supplied --jobs value: 0 -> hardware_concurrency.
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested) noexcept;

namespace detail {

/// Run `body(i)` for i in [0, num_tasks) across `jobs` threads. Work is
/// claimed from an atomic cursor, so assignment of index to thread is
/// nondeterministic — bodies must only write state owned by index i.
/// The first exception thrown by any body is rethrown on the caller.
void parallel_for(std::size_t num_tasks, std::size_t jobs,
                  const std::function<void(std::size_t)>& body);

}  // namespace detail

/// Execute `fn(ctx)` for each of `num_runs` runs and return the results in
/// run-index order. R is any movable result type.
template <typename R, typename Fn>
std::vector<R> run_sweep(std::size_t num_runs, const SweepOptions& options, Fn&& fn) {
  std::vector<R> results(num_runs);
  if (options.capture != nullptr) options.capture->prepare(num_runs);
  if (options.telemetry != nullptr) options.telemetry->prepare(num_runs);
  detail::parallel_for(num_runs, options.jobs, [&](std::size_t i) {
    RunContext ctx;
    ctx.run_index = i;
    ctx.num_runs = num_runs;
    ctx.master_seed = options.master_seed;
    ctx.seed = run_seed(options.master_seed, i);
    if (options.capture != nullptr) {
      // Bind this run's tracer to the worker for the run's duration; any
      // binding active on the calling thread is restored afterwards (the
      // jobs<=1 path runs inline).
      util::TracerBinding binding(options.capture->run_tracer(i));
      results[i] = fn(ctx);
    } else {
      results[i] = fn(ctx);
    }
  });
  if (options.capture != nullptr) options.capture->write_files();
  if (options.telemetry != nullptr) options.telemetry->write_files();
  return results;
}

/// Result of a metrics sweep: per-run snapshots in run-index order plus
/// wall-clock timing (kept out of the deterministic merge).
struct SweepResult {
  std::vector<util::MetricsSnapshot> runs;
  double wall_seconds = 0.0;

  [[nodiscard]] util::SweepAggregate aggregate() const {
    return util::SweepAggregate::from_runs(runs);
  }

  /// Canonical merged JSON: per-run snapshots in run-index order followed
  /// by the cross-run aggregate. Byte-identical for any jobs count.
  [[nodiscard]] std::string merged_json() const;
};

/// Metrics-typed convenience wrapper around run_sweep.
using MetricsRunFn = std::function<util::MetricsSnapshot(const RunContext&)>;
[[nodiscard]] SweepResult run_metrics_sweep(std::size_t num_runs, const SweepOptions& options,
                                            const MetricsRunFn& fn);

}  // namespace ndnp::runner
