#include "runner/experiments.hpp"

#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>

#include "core/indistinguishability.hpp"
#include "core/k_distribution.hpp"
#include "core/policies.hpp"
#include "util/rng.hpp"

namespace ndnp::runner {

namespace {

std::string sprintf_line(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

// NDNP-LINT-ALLOW(determinism-wallclock): helper that timestamps bench tables; never feeds merged metrics
double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  // NDNP-LINT-ALLOW(determinism-wallclock): helper that timestamps bench tables; never feeds merged metrics
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

util::MetricsSnapshot replay_with_metrics(const trace::Trace& trace,
                                          const trace::ReplayConfig& config) {
  util::MetricsRegistry registry;
  trace::ReplayConfig cfg = config;
  cfg.metrics = &registry;
  const trace::ReplayResult result = trace::replay(trace, cfg);
  util::MetricsSnapshot snap = registry.snapshot();
  snap.counters["replay.private_requests"] = result.private_requests;
  if (config.upstream_loss.enabled()) {
    snap.counters["replay.upstream_losses"] = result.upstream_losses;
    snap.counters["replay.degraded_fetches"] = result.degraded_fetches;
  }
  snap.gauges["replay.hit_rate_pct"] = result.hit_rate_pct();
  snap.gauges["replay.cache_served_pct"] = result.cache_served_pct();
  snap.gauges["replay.mean_response_ms"] = result.mean_response_ms;
  return snap;
}

// ---------------------------------------------------------------------------
// Figure 5(a)

Fig5aResult run_fig5a(const Fig5aConfig& config) {
  // NDNP-LINT-ALLOW(determinism-wallclock): wall_seconds reporting gauge, excluded from golden output
  const auto start = std::chrono::steady_clock::now();

  trace::TraceGenConfig gen;
  gen.num_requests = config.trace_requests;
  gen.num_objects = config.trace_objects;
  gen.seed = config.trace_seed;
  const trace::Trace tr = trace::generate_trace(gen);

  Fig5aResult result;
  result.trace_size = tr.size();
  result.trace_distinct = tr.distinct_names();
  result.cache_sizes = config.cache_sizes;
  result.uniform_domain = core::uniform_domain_for_delta(config.anonymity_k, config.delta);
  const auto expo = core::solve_expo_params(config.anonymity_k, config.epsilon, config.delta);
  if (!expo)
    throw std::runtime_error("run_fig5a: unsolvable exponential parameterization");
  result.expo = *expo;

  struct Scheme {
    const char* name;
    std::function<std::unique_ptr<core::CachePrivacyPolicy>()> factory;
  };
  // Policy seeds match the original serial bench (5 for the Random-Cache
  // schemes) so the golden vectors carry over unchanged.
  const std::int64_t uniform_domain = result.uniform_domain;
  const std::vector<Scheme> schemes = {
      {"No Privacy", [] { return std::make_unique<core::NoPrivacyPolicy>(); }},
      {"Exponential-Random-Cache",
       [expo] { return core::RandomCachePolicy::exponential(expo->alpha, expo->domain, 5); }},
      {"Uniform-Random-Cache",
       [uniform_domain] { return core::RandomCachePolicy::uniform(uniform_domain, 5); }},
      {"Always Delay Private",
       [] {
         return std::make_unique<core::AlwaysDelayPolicy>(
             core::AlwaysDelayPolicy::content_specific());
       }},
  };
  for (const Scheme& scheme : schemes) result.scheme_names.emplace_back(scheme.name);

  const std::size_t num_sizes = config.cache_sizes.size();
  SweepOptions options;
  options.jobs = config.jobs;
  options.capture = config.capture;
  options.telemetry = config.telemetry;
  options.master_seed = config.replay_seed;
  const std::vector<util::MetricsSnapshot> cells =
      run_sweep<util::MetricsSnapshot>(schemes.size() * num_sizes, options,
                                       [&](const RunContext& ctx) {
        const std::size_t scheme = ctx.run_index / num_sizes;
        const std::size_t size = ctx.run_index % num_sizes;
        trace::ReplayConfig replay_config;
        replay_config.cache_capacity = config.cache_sizes[size];
        replay_config.private_fraction = config.private_fraction;
        replay_config.policy_factory = schemes[scheme].factory;
        replay_config.upstream_loss = config.upstream_loss;
        replay_config.upstream_retry_penalty = config.upstream_retry_penalty;
        replay_config.seed = config.replay_seed;
        if (config.telemetry != nullptr)
          replay_config.telemetry = config.telemetry->run_hub(ctx.run_index);
        return replay_with_metrics(tr, replay_config);
      });

  result.cells.resize(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s)
    result.cells[s].assign(cells.begin() + static_cast<std::ptrdiff_t>(s * num_sizes),
                           cells.begin() + static_cast<std::ptrdiff_t>((s + 1) * num_sizes));
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

double Fig5aResult::hit_rate_pct(std::size_t scheme, std::size_t size) const {
  return cells[scheme][size].gauges.at("replay.hit_rate_pct");
}

std::string Fig5aResult::format_table() const {
  std::string out = sprintf_line("%-26s", "cache size:");
  for (const std::size_t size : cache_sizes)
    out += size == 0 ? sprintf_line("%10s", "Inf") : sprintf_line("%10zu", size);
  out += '\n';
  for (std::size_t s = 0; s < scheme_names.size(); ++s) {
    out += sprintf_line("%-26s", scheme_names[s].c_str());
    for (std::size_t z = 0; z < cache_sizes.size(); ++z)
      out += sprintf_line("%9.2f%%", hit_rate_pct(s, z));
    out += '\n';
  }
  return out;
}

std::string Fig5aResult::format_delay_table() const {
  std::string out = sprintf_line("%-26s", "mean response (ms):");
  for (const std::size_t size : cache_sizes)
    out += size == 0 ? sprintf_line("%10s", "Inf") : sprintf_line("%10zu", size);
  out += '\n';
  for (std::size_t s = 0; s < scheme_names.size(); ++s) {
    out += sprintf_line("%-26s", scheme_names[s].c_str());
    for (std::size_t z = 0; z < cache_sizes.size(); ++z)
      out += sprintf_line("%10.3f", cells[s][z].gauges.at("replay.mean_response_ms"));
    out += '\n';
  }
  return out;
}

std::string Fig5aResult::merged_json() const {
  SweepResult sweep;
  for (const auto& row : cells)
    sweep.runs.insert(sweep.runs.end(), row.begin(), row.end());
  return sweep.merged_json();
}

// ---------------------------------------------------------------------------
// Figure 5(b)

Fig5bResult run_fig5b(const Fig5bConfig& config) {
  // NDNP-LINT-ALLOW(determinism-wallclock): wall_seconds reporting gauge, excluded from golden output
  const auto start = std::chrono::steady_clock::now();

  trace::TraceGenConfig gen;
  gen.num_requests = config.trace_requests;
  gen.num_objects = config.trace_objects;
  gen.seed = config.trace_seed;
  const trace::Trace tr = trace::generate_trace(gen);

  Fig5bResult result;
  result.trace_size = tr.size();
  result.private_fractions = config.private_fractions;
  result.cache_sizes = config.cache_sizes;
  const auto expo = core::solve_expo_params(config.anonymity_k, config.epsilon, config.delta);
  if (!expo)
    throw std::runtime_error("run_fig5b: unsolvable exponential parameterization");
  result.expo = *expo;

  const std::size_t num_sizes = config.cache_sizes.size();
  SweepOptions options;
  options.jobs = config.jobs;
  options.capture = config.capture;
  options.telemetry = config.telemetry;
  options.master_seed = config.replay_seed;
  const core::ExpoParams params = *expo;
  const std::vector<util::MetricsSnapshot> cells =
      run_sweep<util::MetricsSnapshot>(config.private_fractions.size() * num_sizes, options,
                                       [&](const RunContext& ctx) {
        const std::size_t fraction = ctx.run_index / num_sizes;
        const std::size_t size = ctx.run_index % num_sizes;
        trace::ReplayConfig replay_config;
        replay_config.cache_capacity = config.cache_sizes[size];
        replay_config.private_fraction = config.private_fractions[fraction];
        // Policy seed 5 matches the original serial bench.
        replay_config.policy_factory = [params] {
          return core::RandomCachePolicy::exponential(params.alpha, params.domain, 5);
        };
        replay_config.seed = config.replay_seed;
        if (config.telemetry != nullptr)
          replay_config.telemetry = config.telemetry->run_hub(ctx.run_index);
        return replay_with_metrics(tr, replay_config);
      });

  result.cells.resize(config.private_fractions.size());
  for (std::size_t f = 0; f < config.private_fractions.size(); ++f)
    result.cells[f].assign(cells.begin() + static_cast<std::ptrdiff_t>(f * num_sizes),
                           cells.begin() + static_cast<std::ptrdiff_t>((f + 1) * num_sizes));
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

double Fig5bResult::hit_rate_pct(std::size_t fraction, std::size_t size) const {
  return cells[fraction][size].gauges.at("replay.hit_rate_pct");
}

std::string Fig5bResult::format_table() const {
  std::string out = sprintf_line("%-14s", "private share");
  for (const std::size_t size : cache_sizes)
    out += size == 0 ? sprintf_line("%10s", "Inf") : sprintf_line("%10zu", size);
  out += '\n';
  for (std::size_t f = 0; f < private_fractions.size(); ++f) {
    out += sprintf_line("%12.0f%% ", private_fractions[f] * 100.0);
    for (std::size_t z = 0; z < cache_sizes.size(); ++z)
      out += sprintf_line("%9.2f%%", hit_rate_pct(f, z));
    out += '\n';
  }
  return out;
}

std::string Fig5bResult::merged_json() const {
  SweepResult sweep;
  for (const auto& row : cells)
    sweep.runs.insert(sweep.runs.end(), row.begin(), row.end());
  return sweep.merged_json();
}

// ---------------------------------------------------------------------------
// Figure 4(a)

Fig4aResult run_fig4a(const Fig4aConfig& config) {
  // NDNP-LINT-ALLOW(determinism-wallclock): wall_seconds reporting gauge, excluded from golden output
  const auto start = std::chrono::steady_clock::now();

  Fig4aResult result;
  for (const std::int64_t k : config.ks) {
    Fig4aBlock block;
    block.k = k;
    block.uniform_domain = core::uniform_domain_for_delta(k, config.delta);
    for (const double eps : config.epsilons) {
      const auto solved = core::solve_expo_params(k, eps, config.delta);
      if (!solved)
        throw std::runtime_error("run_fig4a: unsolvable exponential parameterization");
      block.epsilons.push_back(eps);
      block.expo_params.push_back(*solved);
    }
    result.blocks.push_back(std::move(block));
  }

  std::vector<std::int64_t> c_values;
  for (std::int64_t c = config.c_min; c <= config.c_max; c += config.c_step)
    c_values.push_back(c);

  SweepOptions options;
  options.jobs = config.jobs;
  options.capture = config.capture;
  const std::vector<Fig4aRow> rows = run_sweep<Fig4aRow>(
      result.blocks.size() * c_values.size(), options, [&](const RunContext& ctx) {
        const Fig4aBlock& block = result.blocks[ctx.run_index / c_values.size()];
        Fig4aRow row;
        row.c = c_values[ctx.run_index % c_values.size()];
        row.uniform = core::uniform_utility(row.c, block.uniform_domain);
        for (const core::ExpoParams& params : block.expo_params)
          row.expo.push_back(core::expo_utility(row.c, params.alpha, params.domain));
        return row;
      });

  for (std::size_t b = 0; b < result.blocks.size(); ++b)
    result.blocks[b].rows.assign(
        rows.begin() + static_cast<std::ptrdiff_t>(b * c_values.size()),
        rows.begin() + static_cast<std::ptrdiff_t>((b + 1) * c_values.size()));
  result.wall_seconds = elapsed_seconds(start);
  return result;
}

std::string Fig4aResult::format_table() const {
  std::string out;
  for (const Fig4aBlock& block : blocks) {
    out += sprintf_line("k = %lld   (Uniform: K = %lld", static_cast<long long>(block.k),
                        static_cast<long long>(block.uniform_domain));
    for (std::size_t e = 0; e < block.expo_params.size(); ++e)
      out += sprintf_line("; Expo eps=%.2f: alpha=%.5f K=%lld", block.epsilons[e],
                          block.expo_params[e].alpha,
                          static_cast<long long>(block.expo_params[e].domain));
    out += ")\n";
    out += sprintf_line("%6s  %10s", "c", "Uniform");
    for (const double eps : block.epsilons)
      out += sprintf_line("  %14s", sprintf_line("Expo e=%.2f", eps).c_str());
    out += '\n';
    for (const Fig4aRow& row : block.rows) {
      out += sprintf_line("%6lld  %10.4f", static_cast<long long>(row.c), row.uniform);
      for (const double u : row.expo) out += sprintf_line("  %14.4f", u);
      out += '\n';
    }
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Theorems VI.1-VI.4

namespace {

/// Literal Algorithm 1: average simulated misses among c post-insertion
/// requests over `trials` fresh contents.
double simulate_mean_misses(const core::KDistribution& dist, std::int64_t c,
                            std::size_t trials, std::uint64_t seed) {
  util::Rng rng(seed);
  std::uint64_t total = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::int64_t k = dist.sample(rng);
    for (std::int64_t i = 1; i <= c; ++i)
      if (i <= k) ++total;
  }
  return static_cast<double>(total) / static_cast<double>(trials);
}

// Constants of the original bench rows (kept verbatim so outputs match).
constexpr std::int64_t kUtilityDomain = 50;
constexpr double kUtilityAlpha = 0.9;
constexpr std::int64_t kPrivacyDomain = 200;
constexpr double kPrivacyAlpha = 0.99;

}  // namespace

TheoryValidationResult run_theory_validation(const TheoryValidationConfig& config) {
  // NDNP-LINT-ALLOW(determinism-wallclock): wall_seconds reporting gauge, excluded from golden output
  const auto start = std::chrono::steady_clock::now();
  TheoryValidationResult result;

  SweepOptions options;
  options.jobs = config.jobs;
  options.capture = config.capture;

  // Utility rows, interleaved (uniform, expo) per c with the original
  // bench's per-row seeds: row r draws from seed (r odd ? 2000 : 1000) + r.
  result.utility = run_sweep<TheoryUtilityRow>(
      2 * config.cs.size(), options, [&](const RunContext& ctx) {
        const std::size_t r = ctx.run_index;
        const std::int64_t c = config.cs[r / 2];
        const bool expo = (r % 2) != 0;
        const std::uint64_t seed =
            config.seed_base + (expo ? 2000 : 1000) + static_cast<std::uint64_t>(r);
        TheoryUtilityRow row;
        row.c = c;
        if (expo) {
          row.scheme = sprintf_line("TruncGeom a=%.1f K=%lld", kUtilityAlpha,
                                    static_cast<long long>(kUtilityDomain));
          const core::TruncatedGeometricK dist(kUtilityAlpha, kUtilityDomain);
          row.closed_form = core::expo_expected_misses(c, kUtilityAlpha, kUtilityDomain);
          row.simulated = simulate_mean_misses(dist, c, config.trials, seed);
        } else {
          row.scheme = sprintf_line("Uniform K=%lld", static_cast<long long>(kUtilityDomain));
          const core::UniformK dist(kUtilityDomain);
          row.closed_form = core::uniform_expected_misses(c, kUtilityDomain);
          row.simulated = simulate_mean_misses(dist, c, config.trials, seed);
        }
        return row;
      });
  for (const TheoryUtilityRow& row : result.utility)
    result.max_utility_error =
        std::max(result.max_utility_error, std::abs(row.closed_form - row.simulated));

  // Privacy rows: exact output distributions, deterministic closed forms.
  const std::int64_t probes = kPrivacyDomain + 8;
  result.privacy = run_sweep<TheoryPrivacyRow>(
      2 * config.xs.size(), options, [&](const RunContext& ctx) {
        const std::size_t r = ctx.run_index;
        const std::int64_t x = config.xs[r / 2];
        const bool expo = (r % 2) != 0;
        TheoryPrivacyRow row;
        row.x = x;
        if (expo) {
          row.scheme = sprintf_line("TruncGeom a=%.2f K=%lld", kPrivacyAlpha,
                                    static_cast<long long>(kPrivacyDomain));
          const core::TruncatedGeometricK dist(kPrivacyAlpha, kPrivacyDomain);
          const auto d0 = core::exact_output_distribution(dist, 0, probes);
          const auto dx = core::exact_output_distribution(dist, x, probes);
          const core::PrivacyBudget bound = core::expo_privacy(x, kPrivacyAlpha, kPrivacyDomain);
          row.epsilon = bound.epsilon;
          row.measured_delta = core::delta_for_epsilon(d0, dx, bound.epsilon + 1e-9);
          row.bound_delta = bound.delta;
        } else {
          row.scheme = sprintf_line("Uniform K=%lld", static_cast<long long>(kPrivacyDomain));
          const core::UniformK dist(kPrivacyDomain);
          const auto d0 = core::exact_output_distribution(dist, 0, probes);
          const auto dx = core::exact_output_distribution(dist, x, probes);
          const core::PrivacyBudget bound = core::uniform_privacy(x, kPrivacyDomain);
          row.epsilon = bound.epsilon;
          row.measured_delta = core::delta_for_epsilon(d0, dx, bound.epsilon + 1e-9);
          row.bound_delta = bound.delta;
        }
        return row;
      });

  result.wall_seconds = elapsed_seconds(start);
  return result;
}

std::string TheoryValidationResult::format_utility_table() const {
  std::string out = sprintf_line("%-28s %5s  %12s  %12s  %10s\n", "scheme", "c", "closed form",
                                 "simulated", "|error|");
  for (const TheoryUtilityRow& row : utility)
    out += sprintf_line("%-28s %5lld  %12.5f  %12.5f  %10.5f\n", row.scheme.c_str(),
                        static_cast<long long>(row.c), row.closed_form, row.simulated,
                        std::abs(row.closed_form - row.simulated));
  return out;
}

std::string TheoryValidationResult::format_privacy_table() const {
  std::string out = sprintf_line("%-28s %3s  %10s  %12s  %12s\n", "scheme", "x", "epsilon",
                                 "measured", "bound");
  for (const TheoryPrivacyRow& row : privacy)
    out += sprintf_line("%-28s %3lld  %10.4f  %12.6f  %12.6f\n", row.scheme.c_str(),
                        static_cast<long long>(row.x), row.epsilon, row.measured_delta,
                        row.bound_delta);
  return out;
}

}  // namespace ndnp::runner
