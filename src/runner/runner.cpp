#include "runner/runner.hpp"

#include <chrono>
#include <mutex>

#include "sim/trace_sinks.hpp"

namespace ndnp::runner {

void SweepTraceCapture::prepare(std::size_t num_runs) {
  if (runs.size() == num_runs) return;
  runs.clear();
  runs.reserve(num_runs);
  for (std::size_t i = 0; i < num_runs; ++i) {
    auto tracer = std::make_unique<util::Tracer>(ring_capacity);
    tracer->set_filter(filter);
    runs.push_back(std::move(tracer));
  }
}

std::string SweepTraceCapture::run_path(std::size_t run_index) const {
  if (runs.size() <= 1) return out_path;
  // Splice ".runN" in front of the extension so the format sniffing in
  // write_trace_file still sees it: trace.jsonl -> trace.run3.jsonl.
  const std::size_t slash = out_path.find_last_of('/');
  const std::size_t dot = out_path.find_last_of('.');
  const std::string tag = ".run" + std::to_string(run_index);
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return out_path + tag;
  return out_path.substr(0, dot) + tag + out_path.substr(dot);
}

void SweepTraceCapture::write_files() const {
  if (out_path.empty()) return;
  for (std::size_t i = 0; i < runs.size(); ++i)
    sim::write_trace_file(*runs[i], run_path(i));
}

std::uint64_t run_seed(std::uint64_t master_seed, std::size_t run_index) noexcept {
  // i-th state of SplitMix64(master_seed) by random access, then the
  // output function (same constants as util::SplitMix64::next()).
  std::uint64_t z = master_seed +
                    0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(run_index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t resolve_jobs(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace detail {

void parallel_for(std::size_t num_tasks, std::size_t jobs,
                  const std::function<void(std::size_t)>& body) {
  jobs = resolve_jobs(jobs == 0 ? 0 : jobs);
  if (jobs <= 1 || num_tasks <= 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(std::min(jobs, num_tasks) - 1);
  for (std::size_t t = 1; t < std::min(jobs, num_tasks); ++t) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

std::string SweepResult::merged_json() const {
  std::string out = "{\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) out += ',';
    out += runs[i].to_json();
  }
  out += "],\"aggregate\":";
  out += aggregate().to_json();
  out += '}';
  return out;
}

SweepResult run_metrics_sweep(std::size_t num_runs, const SweepOptions& options,
                              const MetricsRunFn& fn) {
  // NDNP-LINT-ALLOW(determinism-wallclock): wall_seconds reporting gauge, excluded from merged_json
  const auto start = std::chrono::steady_clock::now();
  SweepResult result;
  result.runs = run_sweep<util::MetricsSnapshot>(num_runs, options, fn);
  result.wall_seconds =
      // NDNP-LINT-ALLOW(determinism-wallclock): wall_seconds reporting gauge, excluded from merged_json
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace ndnp::runner
