#include "runner/sharded_replay.hpp"

#include <chrono>
#include <stdexcept>

#include "runner/runner.hpp"

namespace ndnp::runner {

namespace {

/// Recompute the non-additive gauges from a snapshot's own counters (used
/// for per-shard snapshots and again for the merged one, so both are
/// internally consistent).
void set_rate_gauges(util::MetricsSnapshot& snap, double mean_response_ms) {
  const auto counter = [&](const char* name) -> double {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0.0 : static_cast<double>(it->second);
  };
  const double requests = counter("engine.requests");
  const double exposed = counter("engine.exposed_hits");
  const double delayed = counter("engine.delayed_hits");
  snap.gauges["replay.hit_rate_pct"] = requests == 0.0 ? 0.0 : 100.0 * exposed / requests;
  snap.gauges["replay.cache_served_pct"] =
      requests == 0.0 ? 0.0 : 100.0 * (exposed + delayed) / requests;
  snap.gauges["replay.mean_response_ms"] = mean_response_ms;
}

}  // namespace

ShardedReplayResult replay_sharded(const TraceSourceFactory& open_source,
                                   const ShardedReplayConfig& config) {
  if (config.shards == 0)
    throw std::invalid_argument("replay_sharded: need at least one shard");
  if (config.chunk_records == 0)
    throw std::invalid_argument("replay_sharded: chunk_records must be positive");
  if (!open_source) throw std::invalid_argument("replay_sharded: source factory is required");

  // One content-class seed for every shard: drawn from the master stream
  // just past the shard indices, so it is deterministic and never collides
  // with a shard's replay seed.
  const std::uint64_t class_seed = config.replay.private_class_seed != 0
                                       ? config.replay.private_class_seed
                                       : run_seed(config.master_seed, config.shards);

  ShardedReplayResult out;
  out.shards.resize(config.shards);
  std::vector<std::uint64_t> malformed(config.shards, 0);

  // NDNP-LINT-ALLOW(determinism-wallclock): wall_seconds reporting gauge, excluded from merged_json
  const auto start = std::chrono::steady_clock::now();
  detail::parallel_for(config.shards, resolve_jobs(config.jobs), [&](std::size_t i) {
    const std::unique_ptr<trace::TraceSource> source = open_source();
    trace::ReplayConfig shard_cfg = config.replay;
    shard_cfg.seed = run_seed(config.master_seed, i);
    shard_cfg.private_class_seed = class_seed;
    util::MetricsRegistry registry;
    shard_cfg.metrics = &registry;

    trace::ReplaySession session(shard_cfg);
    std::vector<trace::TraceRecord> chunk;
    chunk.reserve(config.chunk_records);
    while (source->next_chunk(chunk, config.chunk_records)) {
      for (const trace::TraceRecord& record : chunk)
        if (trace::shard_of(record.user_id, config.shards) == i) session.feed(record);
    }

    ShardReplayResult& shard = out.shards[i];
    shard.records = session.fed();
    shard.result = session.finish();
    shard.metrics = registry.snapshot();
    shard.metrics.counters["replay.records"] = shard.records;
    shard.metrics.counters["replay.private_requests"] = shard.result.private_requests;
    shard.metrics.counters["replay.upstream_losses"] = shard.result.upstream_losses;
    shard.metrics.counters["replay.degraded_fetches"] = shard.result.degraded_fetches;
    set_rate_gauges(shard.metrics, shard.result.mean_response_ms);
    malformed[i] = source->stats().malformed;
  });
  out.wall_seconds =
      // NDNP-LINT-ALLOW(determinism-wallclock): wall_seconds reporting gauge, excluded from merged_json
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Merge in shard-index order; recompute rates over the merged counters
  // (merge_snapshots sums gauges, which is wrong for rates and means).
  std::vector<util::MetricsSnapshot> parts;
  parts.reserve(out.shards.size());
  double response_ms_weighted = 0.0;
  for (const ShardReplayResult& shard : out.shards) {
    parts.push_back(shard.metrics);
    out.records += shard.records;
    response_ms_weighted +=
        shard.result.mean_response_ms * static_cast<double>(shard.records);
  }
  out.merged = util::merge_snapshots(parts);
  set_rate_gauges(out.merged, out.records == 0
                                  ? 0.0
                                  : response_ms_weighted / static_cast<double>(out.records));
  // Each shard scanned the whole trace, so the counts agree — report one,
  // not the sum.
  out.malformed_records = malformed.empty() ? 0 : malformed.front();
  out.merged.counters["replay.malformed_records"] = out.malformed_records;
  return out;
}

ShardedReplayResult replay_sharded(const trace::Trace& tr, const ShardedReplayConfig& config) {
  return replay_sharded([&tr] { return std::make_unique<trace::VectorTraceSource>(tr); },
                        config);
}

std::string ShardedReplayResult::merged_json() const {
  std::string json = "{\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i) json += ',';
    json += shards[i].metrics.to_json();
  }
  json += "],\"merged\":" + merged.to_json();
  json += ",\"records\":" + std::to_string(records);
  json += ",\"malformed_records\":" + std::to_string(malformed_records);
  json += "}";
  return json;
}

}  // namespace ndnp::runner
