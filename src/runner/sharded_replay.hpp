// Sharded trace replay: the single-router Section VII evaluation scaled to
// million-user traces by partitioning users across independent edge-router
// shards.
//
// Every user is pinned to one shard by a stable hash of its user id
// (trace::shard_of — independent of shard execution order and of how many
// worker threads run). Each shard owns a full ReplaySession (engine, cache,
// RNG streams) seeded with run_seed(master_seed, shard_index), streams the
// trace through its own TraceSource and feeds only its users' records, so
// peak memory is one chunk buffer + cache state per shard regardless of
// trace length. Shard snapshots are merged in shard-index order, making
// the merged output byte-identical for any --jobs value (the same
// determinism-by-construction argument as runner::run_sweep; pinned by
// tests/test_sharded_replay.cpp).
//
// All shards share one private_class_seed, so they agree on which content
// is private even though their engine/delay RNG streams differ. Sharding
// changes cache dynamics (S smaller independent caches instead of one), so
// sharded results match unsharded replay statistically, not exactly — the
// chi-square property test in tests/test_sharded_replay.cpp locks the
// distributional bound. See docs/SCALE.md.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/replayer.hpp"
#include "trace/stream.hpp"
#include "util/metrics.hpp"

namespace ndnp::runner {

/// Opens a fresh TraceSource over the same records. Each shard calls it
/// once (S sources live concurrently); it must be callable from any worker
/// thread. The chunked binary format makes re-reading cheap; for in-memory
/// traces wrap a VectorTraceSource.
using TraceSourceFactory = std::function<std::unique_ptr<trace::TraceSource>()>;

struct ShardedReplayConfig {
  /// Independent edge-router shards users are hashed across.
  std::size_t shards = 8;
  /// Worker threads (0 = hardware concurrency, 1 = inline). Never affects
  /// results, only wall-clock.
  std::size_t jobs = 1;
  /// Records pulled from a shard's source per chunk (the memory bound).
  std::size_t chunk_records = 64 * 1024;
  /// Shard i replays with seed run_seed(master_seed, i).
  std::uint64_t master_seed = 1;
  /// Per-shard replay template. `seed` and `private_class_seed` are
  /// overwritten (per-shard stream / shared class seed); `metrics` is
  /// ignored — each shard gets its own registry. `policy_factory` is
  /// invoked once per shard, possibly concurrently: it must be thread-safe
  /// (the stateless make-a-policy lambdas used everywhere are).
  trace::ReplayConfig replay;
};

/// One shard's outcome, in shard-index order inside ShardedReplayResult.
struct ShardReplayResult {
  trace::ReplayResult result;
  util::MetricsSnapshot metrics;
  /// Records this shard fed (its users only).
  std::uint64_t records = 0;
};

struct ShardedReplayResult {
  std::vector<ShardReplayResult> shards;
  /// Counters summed and histograms merged across shards in shard-index
  /// order; rate/mean gauges recomputed from the merged counters.
  util::MetricsSnapshot merged;
  /// Total records fed across shards (== records in the trace).
  std::uint64_t records = 0;
  /// Malformed input lines the trace format skipped. Every shard scans the
  /// full trace, so the per-shard counts agree; this is shard 0's.
  std::uint64_t malformed_records = 0;
  /// Wall-clock of the parallel phase; reported out of band, never part of
  /// the deterministic merge.
  double wall_seconds = 0.0;

  /// Canonical merged JSON: per-shard snapshots in shard-index order, then
  /// the merged snapshot. Byte-identical for any jobs count.
  [[nodiscard]] std::string merged_json() const;
};

/// Replay the trace behind `open_source` across `config.shards` independent
/// routers. Deterministic: byte-identical merged output for any jobs value.
[[nodiscard]] ShardedReplayResult replay_sharded(const TraceSourceFactory& open_source,
                                                 const ShardedReplayConfig& config);

/// Convenience overload for an in-memory trace (wraps VectorTraceSource;
/// `tr` must outlive the call).
[[nodiscard]] ShardedReplayResult replay_sharded(const trace::Trace& tr,
                                                 const ShardedReplayConfig& config);

}  // namespace ndnp::runner
