#include "cache/content_store.hpp"

#include <cassert>
#include <stdexcept>

#include "util/invariant.hpp"
#include "util/tracing.hpp"

namespace ndnp::cache {

namespace {

/// Detail string for a cs_lookup event; built only when a tracer is live.
[[nodiscard]] std::string lookup_detail(const Entry* entry, bool saw_stale, std::size_t depth,
                                        EvictionPolicy policy) {
  std::string detail = "result=";
  detail += entry != nullptr ? "hit" : (saw_stale ? "expired" : "miss");
  detail += " depth=";
  detail += std::to_string(depth);
  detail += " policy=";
  detail += to_string(policy);
  return detail;
}

}  // namespace

std::string_view to_string(EvictionPolicy policy) noexcept {
  switch (policy) {
    case EvictionPolicy::kLru: return "LRU";
    case EvictionPolicy::kFifo: return "FIFO";
    case EvictionPolicy::kLfu: return "LFU";
    case EvictionPolicy::kRandom: return "Random";
  }
  return "?";
}

ContentStore::ContentStore(std::size_t capacity, EvictionPolicy policy, std::uint64_t seed)
    : capacity_(capacity), policy_(policy), rng_(seed) {}

ContentStore::~ContentStore() { lfu_free_all(); }

ContentStore::Node* ContentStore::exact_find(std::uint64_t hash,
                                             const ndn::Name& name) const noexcept {
  const std::unique_ptr<Node>* slot = entries_.find(
      hash, [&name](const std::unique_ptr<Node>& node) { return node->entry.data.name == name; });
  return slot ? slot->get() : nullptr;
}

Entry& ContentStore::insert(ndn::Data data, EntryMeta meta) {
  ++stats_.inserts;
  scratch_prefixes_.clear();
  data.name.visit_prefix_hashes(
      [this](std::uint64_t h) { scratch_prefixes_.push_back({.hash = h}); });
  const std::uint64_t name_hash = scratch_prefixes_.back().hash;

  if (Node* existing = exact_find(name_hash, data.name)) {
    // Overwrite in place; keep eviction position (refresh handled by
    // touch() from the caller if desired).
    ++stats_.overwrites;
    existing->entry.data = std::move(data);
    existing->entry.meta = meta;
    return existing->entry;
  }

  if (!unbounded() && size() >= capacity_) {
    Node* victim = pick_victim();
    NDNP_TRACE_EVENT(util::TraceEventType::kCsEvict, trace_label_, meta.inserted_at,
                     victim->entry.data.name.to_uri(), "reason=capacity");
    remove_node(victim);
    ++stats_.evictions;
  }

  std::unique_ptr<Node> node = acquire_node();
  Node* raw = node.get();
  raw->entry.data = std::move(data);
  raw->entry.meta = meta;
  raw->entry.name_hash = name_hash;
  raw->prefixes = scratch_prefixes_;  // copy-assign reuses a recycled node's capacity

  index_insert(raw);

  // Register under every *strict* prefix depth. Depth 0 is all_entries_
  // (shared with the random-eviction index); depths 1..depth-1 live in the
  // per-depth hash tables. The entry's own full depth is deliberately not
  // registered: an interest at that depth naming this entry exactly is
  // served by the exact-match fast path in find(), so a full-depth bucket
  // (one per unique name — pure alloc/probe churn) would never decide a
  // lookup.
  raw->prefixes[0].pos = static_cast<std::uint32_t>(all_entries_.size());
  all_entries_.push_back(raw);
  if (raw->depth() >= 2 && prefix_index_.size() < raw->depth())
    prefix_index_.resize(raw->depth());
  for (std::size_t d = 1; d < raw->depth(); ++d) {
    auto [bucket, created] = prefix_index_[d].emplace(
        raw->prefixes[d].hash, {}, [](const std::vector<Node*>&) { return true; });
    (void)created;
    raw->prefixes[d].pos = static_cast<std::uint32_t>(bucket->size());
    bucket->push_back(raw);
  }

  const auto [slot, inserted] = entries_.emplace(
      name_hash, std::move(node),
      [raw](const std::unique_ptr<Node>& n) { return n->entry.data.name == raw->entry.data.name; });
  assert(inserted);
  (void)slot;
  (void)inserted;
  NDNP_TRACE_EVENT(util::TraceEventType::kCsInsert, trace_label_, meta.inserted_at,
                   raw->entry.data.name.to_uri(),
                   "size=" + std::to_string(size()) + " cap=" + std::to_string(capacity_));
  return raw->entry;
}

Entry* ContentStore::find(const ndn::Interest& interest, util::SimTime now) {
  bool saw_stale = false;
  Entry* entry = find_impl(interest, now, saw_stale);
  NDNP_TRACE_EVENT(util::TraceEventType::kCsLookup, trace_label_,
                   now == util::kTimeUnset ? util::kTimeZero : now, interest.name.to_uri(),
                   lookup_detail(entry, saw_stale, interest.name.size(), policy_));
  return entry;
}

Entry* ContentStore::find_impl(const ndn::Interest& interest, util::SimTime now,
                               bool& saw_stale) {
  ++stats_.lookups;
  const bool check_freshness = interest.must_be_fresh && now != util::kTimeUnset;
  const std::uint64_t hash = interest.name.hash64();

  // Exact fast path: an entry named exactly interest.name always satisfies
  // (prefix trivially, exact-only by equality) and — having the empty
  // suffix — is the lexicographically smallest possible match.
  if (Node* node = exact_find(hash, interest.name)) {
    if (!check_freshness || node->entry.fresh_at(now)) {
      ++stats_.matches;
      return &node->entry;
    }
    saw_stale = true;
  }

  // Prefix path: every *strictly deeper* candidate sits in the bucket
  // keyed by the interest name's own hash at its own depth (a depth-p
  // entry named exactly interest.name was already handled above). Among
  // the eligible ones, return the lexicographically smallest
  // (canonical-order selector).
  const std::size_t depth = interest.name.size();
  const std::vector<Node*>* bucket = nullptr;
  if (depth == 0) {
    bucket = &all_entries_;
  } else if (depth < prefix_index_.size()) {
    bucket = prefix_index_[depth].find(hash, [](const std::vector<Node*>&) { return true; });
  }
  if (!bucket) return nullptr;

  Node* best = nullptr;
  for (Node* node : *bucket) {
    // satisfies() re-checks the prefix relation, which also screens out
    // hash-collision strangers sharing this bucket.
    if (!node->entry.data.satisfies(interest)) continue;
    if (check_freshness && !node->entry.fresh_at(now)) {
      saw_stale = true;
      continue;
    }
    if (!best || node->entry.data.name < best->entry.data.name) best = node;
  }
  if (!best) return nullptr;
  ++stats_.matches;
  return &best->entry;
}

const Entry* ContentStore::find(const ndn::Interest& interest, util::SimTime now) const {
  return const_cast<ContentStore*>(this)->find(interest, now);
}

Entry* ContentStore::find_exact(const ndn::Name& name) {
  Node* node = exact_find(name.hash64(), name);
  return node ? &node->entry : nullptr;
}

const Entry* ContentStore::find_exact(const ndn::Name& name) const {
  return const_cast<ContentStore*>(this)->find_exact(name);
}

void ContentStore::touch(Entry& entry, util::SimTime now) {
  entry.meta.last_access = now;
  Node* node = exact_find(entry.name_hash, entry.data.name);
  assert(node != nullptr && &node->entry == &entry);
  index_access(node);
}

bool ContentStore::erase(const ndn::Name& name) {
  Node* node = exact_find(name.hash64(), name);
  if (!node) return false;
  NDNP_TRACE_EVENT(util::TraceEventType::kCsEvict, trace_label_,
                   node->entry.meta.last_access != util::kTimeUnset
                       ? node->entry.meta.last_access
                       : node->entry.meta.inserted_at,
                   node->entry.data.name.to_uri(), "reason=erase");
  remove_node(node);
  ++stats_.erases;
  return true;
}

void ContentStore::remove_node(Node* node) {
  index_erase(node);

  // Unregister from every prefix bucket: swap-and-pop, fixing the moved
  // node's back-pointer for that depth. Depth 0 is all_entries_.
  {
    const std::size_t idx = node->prefixes[0].pos;
    if (idx + 1 != all_entries_.size()) {
      all_entries_[idx] = all_entries_.back();
      all_entries_[idx]->prefixes[0].pos = static_cast<std::uint32_t>(idx);
    }
    all_entries_.pop_back();
  }
  for (std::size_t d = 1; d < node->depth(); ++d) {
    std::vector<Node*>* bucket =
        prefix_index_[d].find(node->prefixes[d].hash, [](const std::vector<Node*>&) { return true; });
    assert(bucket != nullptr);
    const std::size_t idx = node->prefixes[d].pos;
    assert(idx < bucket->size() && (*bucket)[idx] == node);
    if (idx + 1 != bucket->size()) {
      (*bucket)[idx] = bucket->back();
      (*bucket)[idx]->prefixes[d].pos = static_cast<std::uint32_t>(idx);
    }
    bucket->pop_back();
    if (bucket->empty())
      prefix_index_[d].erase(node->prefixes[d].hash,
                             [](const std::vector<Node*>&) { return true; });
  }

  bool erased = false;
  std::unique_ptr<Node> owned = entries_.extract(
      node->entry.name_hash,
      [node](const std::unique_ptr<Node>& n) { return n.get() == node; }, &erased);
  assert(erased && owned.get() == node);
  (void)erased;
  free_nodes_.push_back(std::move(owned));  // recycle the allocation
}

std::unique_ptr<ContentStore::Node> ContentStore::acquire_node() {
  if (free_nodes_.empty()) return std::make_unique<Node>();
  std::unique_ptr<Node> node = std::move(free_nodes_.back());
  free_nodes_.pop_back();
  return node;
}

void ContentStore::clear() {
  stats_.wiped += all_entries_.size();
  entries_.clear();
  for (auto& table : prefix_index_) table.clear();
  all_entries_.clear();
  order_head_ = order_tail_ = nullptr;
  lfu_free_all();
}

bool ContentStore::contains(const ndn::Name& name) const {
  return exact_find(name.hash64(), name) != nullptr;
}

// --- eviction-order maintenance --------------------------------------------

void ContentStore::order_push_front(Node* node) noexcept {
  node->order_prev = nullptr;
  node->order_next = order_head_;
  if (order_head_) order_head_->order_prev = node;
  order_head_ = node;
  if (!order_tail_) order_tail_ = node;
}

void ContentStore::order_unlink(Node* node) noexcept {
  if (node->order_prev)
    node->order_prev->order_next = node->order_next;
  else
    order_head_ = node->order_next;
  if (node->order_next)
    node->order_next->order_prev = node->order_prev;
  else
    order_tail_ = node->order_prev;
  node->order_prev = node->order_next = nullptr;
}

void ContentStore::lfu_append(FreqBucket* bucket, Node* node) noexcept {
  node->freq_bucket = bucket;
  node->freq_prev = bucket->tail;
  node->freq_next = nullptr;
  if (bucket->tail)
    bucket->tail->freq_next = node;
  else
    bucket->head = node;
  bucket->tail = node;
}

void ContentStore::lfu_detach(Node* node) noexcept {
  FreqBucket* bucket = node->freq_bucket;
  if (node->freq_prev)
    node->freq_prev->freq_next = node->freq_next;
  else
    bucket->head = node->freq_next;
  if (node->freq_next)
    node->freq_next->freq_prev = node->freq_prev;
  else
    bucket->tail = node->freq_prev;
  node->freq_prev = node->freq_next = nullptr;
  node->freq_bucket = nullptr;
  if (!bucket->head) {
    if (bucket->prev)
      bucket->prev->next = bucket->next;
    else
      freq_head_ = bucket->next;
    if (bucket->next) bucket->next->prev = bucket->prev;
    freq_bucket_slab_.destroy(bucket);
  }
}

void ContentStore::lfu_free_all() noexcept {
  for (FreqBucket* bucket = freq_head_; bucket != nullptr;) {
    FreqBucket* next = bucket->next;
    freq_bucket_slab_.destroy(bucket);
    bucket = next;
  }
  freq_head_ = nullptr;
}

void ContentStore::index_insert(Node* node) {
  switch (policy_) {
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo:
      order_push_front(node);
      break;
    case EvictionPolicy::kLfu: {
      node->freq = 1;
      if (!freq_head_ || freq_head_->freq != 1) {
        FreqBucket* bucket =
            freq_bucket_slab_.create(FreqBucket{.freq = 1, .next = freq_head_});
        if (freq_head_) freq_head_->prev = bucket;
        freq_head_ = bucket;
      }
      lfu_append(freq_head_, node);
      break;
    }
    case EvictionPolicy::kRandom:
      break;  // all_entries_ (maintained for every policy) is the index
  }
}

void ContentStore::index_access(Node* node) {
  switch (policy_) {
    case EvictionPolicy::kLru:
      if (order_head_ != node) {  // move-to-front
        order_unlink(node);
        order_push_front(node);
      }
      break;
    case EvictionPolicy::kFifo:
      break;  // insertion order is immutable
    case EvictionPolicy::kLfu: {
      FreqBucket* bucket = node->freq_bucket;
      const std::uint64_t target = node->freq + 1;
      // Find-or-create the freq+1 bucket before detaching (detach may
      // delete `bucket` if the node was its only member).
      FreqBucket* next = bucket->next;
      if (!next || next->freq != target) {
        next = freq_bucket_slab_.create(
            FreqBucket{.freq = target, .prev = bucket, .next = bucket->next});
        if (bucket->next) bucket->next->prev = next;
        bucket->next = next;
      }
      lfu_detach(node);
      node->freq = target;
      lfu_append(next, node);
      break;
    }
    case EvictionPolicy::kRandom:
      break;
  }
}

void ContentStore::index_erase(Node* node) {
  switch (policy_) {
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo:
      order_unlink(node);
      break;
    case EvictionPolicy::kLfu:
      lfu_detach(node);
      break;
    case EvictionPolicy::kRandom:
      break;  // all_entries_ removal happens in remove_node for all policies
  }
}

ContentStore::Node* ContentStore::pick_victim() {
  switch (policy_) {
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo:
      if (!order_tail_) throw std::logic_error("ContentStore: eviction from empty cache");
      return order_tail_;  // LRU tail = least recent; FIFO tail = oldest
    case EvictionPolicy::kLfu:
      if (!freq_head_) throw std::logic_error("ContentStore: eviction from empty cache");
      return freq_head_->head;
    case EvictionPolicy::kRandom:
      if (all_entries_.empty())
        throw std::logic_error("ContentStore: eviction from empty cache");
      return all_entries_[rng_.uniform_u64(all_entries_.size())];
  }
  throw std::logic_error("ContentStore: unknown policy");
}

void ContentStore::export_metrics(util::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.counter(prefix + ".lookups").inc(stats_.lookups);
  registry.counter(prefix + ".matches").inc(stats_.matches);
  registry.counter(prefix + ".inserts").inc(stats_.inserts);
  registry.counter(prefix + ".evictions").inc(stats_.evictions);
  registry.counter(prefix + ".overwrites").inc(stats_.overwrites);
  registry.counter(prefix + ".erases").inc(stats_.erases);
  registry.counter(prefix + ".wiped").inc(stats_.wiped);
  registry.counter(prefix + ".size").inc(size());
}

void ContentStore::check_integrity() const {
  NDNP_INVARIANT_CHECK("cs", unbounded() || size() <= capacity_,
                       "size=%zu exceeds capacity=%zu", size(), capacity_);
  // Entry conservation: every insert either overwrote in place or created
  // an entry that is still resident or left via eviction/erase/clear.
  NDNP_INVARIANT_CHECK(
      "cs",
      stats_.inserts ==
          stats_.overwrites + size() + stats_.evictions + stats_.erases + stats_.wiped,
      "inserts=%llu != overwrites=%llu + size=%zu + evictions=%llu + erases=%llu + "
      "wiped=%llu",
      static_cast<unsigned long long>(stats_.inserts),
      static_cast<unsigned long long>(stats_.overwrites), size(),
      static_cast<unsigned long long>(stats_.evictions),
      static_cast<unsigned long long>(stats_.erases),
      static_cast<unsigned long long>(stats_.wiped));
  NDNP_INVARIANT_CHECK("cs", stats_.matches <= stats_.lookups,
                       "matches=%llu exceeds lookups=%llu",
                       static_cast<unsigned long long>(stats_.matches),
                       static_cast<unsigned long long>(stats_.lookups));
}

}  // namespace ndnp::cache
