#include "cache/content_store.hpp"

#include <cassert>
#include <stdexcept>

namespace ndnp::cache {

std::string_view to_string(EvictionPolicy policy) noexcept {
  switch (policy) {
    case EvictionPolicy::kLru: return "LRU";
    case EvictionPolicy::kFifo: return "FIFO";
    case EvictionPolicy::kLfu: return "LFU";
    case EvictionPolicy::kRandom: return "Random";
  }
  return "?";
}

ContentStore::ContentStore(std::size_t capacity, EvictionPolicy policy, std::uint64_t seed)
    : capacity_(capacity), policy_(policy), rng_(seed) {}

Entry& ContentStore::insert(ndn::Data data, EntryMeta meta) {
  ++stats_.inserts;
  const ndn::Name name = data.name;

  if (auto it = entries_.find(name); it != entries_.end()) {
    // Overwrite in place; keep eviction position (refresh handled by
    // touch() from the caller if desired).
    it->second.entry.data = std::move(data);
    it->second.entry.meta = meta;
    return it->second.entry;
  }

  if (!unbounded() && entries_.size() >= capacity_) {
    const ndn::Name victim = pick_victim();
    erase(victim);
    ++stats_.evictions;
  }

  auto [it, inserted] = entries_.emplace(name, Node{});
  assert(inserted);
  it->second.entry.data = std::move(data);
  it->second.entry.meta = meta;
  index_insert(name, it->second);
  return it->second.entry;
}

Entry* ContentStore::find(const ndn::Interest& interest, util::SimTime now) {
  ++stats_.lookups;
  const bool check_freshness = interest.must_be_fresh && now != util::kTimeUnset;
  // All names having interest.name as a prefix sort as a contiguous range
  // starting at lower_bound(interest.name).
  for (auto it = entries_.lower_bound(interest.name); it != entries_.end(); ++it) {
    if (!interest.name.is_prefix_of(it->first)) break;
    if (!it->second.entry.data.satisfies(interest)) continue;  // e.g. exact-match-only sibling
    if (check_freshness && !it->second.entry.fresh_at(now)) continue;  // stale
    ++stats_.matches;
    return &it->second.entry;
  }
  return nullptr;
}

const Entry* ContentStore::find(const ndn::Interest& interest, util::SimTime now) const {
  return const_cast<ContentStore*>(this)->find(interest, now);
}

Entry* ContentStore::find_exact(const ndn::Name& name) {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second.entry;
}

const Entry* ContentStore::find_exact(const ndn::Name& name) const {
  return const_cast<ContentStore*>(this)->find_exact(name);
}

void ContentStore::touch(Entry& entry, util::SimTime now) {
  entry.meta.last_access = now;
  const auto it = entries_.find(entry.data.name);
  assert(it != entries_.end() && &it->second.entry == &entry);
  index_access(it->second);
}

bool ContentStore::erase(const ndn::Name& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  index_erase(it->second);
  entries_.erase(it);
  return true;
}

void ContentStore::clear() {
  entries_.clear();
  order_.clear();
  by_freq_.clear();
  by_index_.clear();
}

bool ContentStore::contains(const ndn::Name& name) const { return entries_.contains(name); }

void ContentStore::index_insert(const ndn::Name& name, Node& node) {
  switch (policy_) {
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo:
      order_.push_front(name);
      node.order_it = order_.begin();
      break;
    case EvictionPolicy::kLfu:
      node.freq = 1;
      node.freq_it = by_freq_.emplace(node.freq, name);
      break;
    case EvictionPolicy::kRandom:
      node.vec_index = by_index_.size();
      by_index_.push_back(name);
      break;
  }
}

void ContentStore::index_access(Node& node) {
  switch (policy_) {
    case EvictionPolicy::kLru:
      order_.splice(order_.begin(), order_, node.order_it);  // move-to-front
      break;
    case EvictionPolicy::kFifo:
      break;  // insertion order is immutable
    case EvictionPolicy::kLfu: {
      const ndn::Name name = node.freq_it->second;
      by_freq_.erase(node.freq_it);
      ++node.freq;
      node.freq_it = by_freq_.emplace(node.freq, name);
      break;
    }
    case EvictionPolicy::kRandom:
      break;
  }
}

void ContentStore::index_erase(Node& node) {
  switch (policy_) {
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo:
      order_.erase(node.order_it);
      break;
    case EvictionPolicy::kLfu:
      by_freq_.erase(node.freq_it);
      break;
    case EvictionPolicy::kRandom: {
      // Swap-and-pop; fix the moved element's back-pointer.
      const std::size_t idx = node.vec_index;
      if (idx + 1 != by_index_.size()) {
        by_index_[idx] = std::move(by_index_.back());
        const auto moved = entries_.find(by_index_[idx]);
        assert(moved != entries_.end());
        moved->second.vec_index = idx;
      }
      by_index_.pop_back();
      break;
    }
  }
}

ndn::Name ContentStore::pick_victim() {
  switch (policy_) {
    case EvictionPolicy::kLru:
    case EvictionPolicy::kFifo:
      if (order_.empty()) throw std::logic_error("ContentStore: eviction from empty cache");
      return order_.back();  // LRU tail = least recent; FIFO tail = oldest
    case EvictionPolicy::kLfu:
      if (by_freq_.empty()) throw std::logic_error("ContentStore: eviction from empty cache");
      return by_freq_.begin()->second;
    case EvictionPolicy::kRandom:
      if (by_index_.empty()) throw std::logic_error("ContentStore: eviction from empty cache");
      return by_index_[rng_.uniform_u64(by_index_.size())];
  }
  throw std::logic_error("ContentStore: unknown policy");
}

void ContentStore::export_metrics(util::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.counter(prefix + ".lookups").inc(stats_.lookups);
  registry.counter(prefix + ".matches").inc(stats_.matches);
  registry.counter(prefix + ".inserts").inc(stats_.inserts);
  registry.counter(prefix + ".evictions").inc(stats_.evictions);
  registry.counter(prefix + ".size").inc(entries_.size());
}

}  // namespace ndnp::cache
