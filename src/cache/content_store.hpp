// Content Store (CS): the router-side cache at the heart of the paper.
//
// The CS maps full content names to Data packets plus the per-entry
// metadata the privacy policies need (Section IV's state function S and
// Algorithm 1's per-content counter c_C / threshold k_C live here).
// Capacity is bounded; eviction is pluggable (the paper's evaluation uses
// LRU; FIFO/LFU/random are provided for the eviction ablation bench).
//
// Lookup follows NDN matching: an interest for name N is satisfied by any
// cached Data whose name has N as a prefix — except exact-match-only
// content (unpredictable names), which requires full-name equality.
//
// Hot-path layout (every probe of the Section III attacks and every
// replayed interest of Section VII lands here):
//  - exact matches go through an open-addressing hash index keyed on
//    Name::hash64(), computed once per entry and cached — no ordered
//    string-vector comparisons;
//  - prefix matches go through a per-prefix-depth hash index: an entry of
//    depth D registers under the hashes of its strict prefixes (one FNV
//    pass, see Name::prefix_hashes), and an interest of depth p probes
//    exactly the depth-p bucket — a depth-p entry named exactly like the
//    interest is covered by the exact index, so full-depth buckets are
//    never created;
//  - eviction order is an intrusive doubly-linked list over entry nodes
//    (LRU/FIFO) or intrusive per-frequency FIFO buckets (LFU) — no
//    std::list<Name> of name copies;
//  - the random-eviction index is the depth-0 prefix bucket (the list of
//    all entries in insertion order with swap-and-pop removal), folded
//    into the same node storage.
// The externally observable behavior (match selection, victim choice,
// stats, RNG consumption) is bit-identical to the original ordered-map
// implementation; tests/test_cs_differential.cpp proves it against a
// naive reference model over randomized op streams.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ndn/packet.hpp"
#include "util/metrics.hpp"
#include "util/open_hash.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/slab.hpp"

namespace ndnp::cache {

enum class EvictionPolicy { kLru, kFifo, kLfu, kRandom };

[[nodiscard]] std::string_view to_string(EvictionPolicy policy) noexcept;

/// Metadata the privacy layer (core/) keeps per cached entry.
struct EntryMeta {
  /// When the entry was inserted.
  util::SimTime inserted_at = util::kTimeUnset;
  /// Last access (exposed hit, delayed hit or simulated miss — the paper:
  /// "the corresponding cache entry becomes fresh even if the response is
  /// delayed").
  util::SimTime last_access = util::kTimeUnset;
  /// gamma_C: interest-in -> content-out delay observed when the router
  /// first fetched this content (drives the content-specific delay policy).
  util::SimDuration fetch_delay = 0;
  /// c_C of Algorithm 1: number of requests since insertion (maintained by
  /// RandomCache policies; the first request that caused the fetch is not
  /// counted, matching "cC := 0" on insertion).
  std::uint64_t request_count = 0;
  /// k_C of Algorithm 1; negative = not yet sampled.
  std::int64_t k_threshold = -1;
  /// Entry is currently treated as private by the router.
  bool treated_private = false;
  /// The non-private trigger has fired (Section V-B): a producer-unmarked
  /// entry was requested without the privacy bit and is de-privatized for
  /// its remaining cache lifetime.
  bool deprivatized = false;
};

struct Entry {
  ndn::Data data;
  EntryMeta meta;
  /// Cached Name::hash64(data.name); set by ContentStore::insert and never
  /// recomputed on the lookup/touch path. Treat as read-only.
  std::uint64_t name_hash = 0;

  /// Whether the cached copy is still fresh at `now` (fresh forever when
  /// the producer set no freshness period).
  [[nodiscard]] bool fresh_at(util::SimTime now) const noexcept {
    return !data.freshness_period ||
           now <= meta.inserted_at + *data.freshness_period;
  }
};

/// Raw cache counters (mechanical; privacy-visible hit/miss accounting is
/// done a layer up where the policy decides what to expose). Each find()
/// bumps `lookups` exactly once — the internal exact-index fast path and
/// the prefix-bucket fallback are one lookup, not two.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t matches = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t overwrites = 0;  // insert() hit an existing exact name
  std::uint64_t erases = 0;      // erase() removed an entry
  std::uint64_t wiped = 0;       // entries dropped by clear()
};

class ContentStore {
 public:
  /// capacity == 0 means unlimited (the paper's "Inf" baseline).
  /// `seed` feeds random eviction only.
  explicit ContentStore(std::size_t capacity, EvictionPolicy policy = EvictionPolicy::kLru,
                        std::uint64_t seed = 0);

  ContentStore(const ContentStore&) = delete;
  ContentStore& operator=(const ContentStore&) = delete;

  ~ContentStore();

  /// Insert (or overwrite) content. Evicts per policy if at capacity.
  /// Returns the stored entry. `meta.inserted_at`/`last_access` should be
  /// set by the caller (the router knows the simulation clock).
  Entry& insert(ndn::Data data, EntryMeta meta);

  /// Find a match for `interest` (prefix semantics, exact-only honored).
  /// Does NOT touch recency — callers decide whether an access "counts"
  /// via touch(). Returns nullptr on miss. Among multiple matches the
  /// lexicographically smallest matching name is returned (deterministic,
  /// mirroring NDN's canonical-order selector default).
  ///
  /// When `now` is supplied and the interest sets MustBeFresh, stale
  /// entries are skipped as if absent; with the default kTimeUnset,
  /// freshness is not evaluated.
  [[nodiscard]] Entry* find(const ndn::Interest& interest,
                            util::SimTime now = util::kTimeUnset);
  [[nodiscard]] const Entry* find(const ndn::Interest& interest,
                                  util::SimTime now = util::kTimeUnset) const;

  /// Node label used for cs_lookup/cs_insert/cs_evict trace events (the
  /// owning forwarder sets its node name; default "cs").
  void set_trace_label(std::string label) { trace_label_ = std::move(label); }
  [[nodiscard]] const std::string& trace_label() const noexcept { return trace_label_; }

  /// Exact full-name lookup.
  [[nodiscard]] Entry* find_exact(const ndn::Name& name);
  [[nodiscard]] const Entry* find_exact(const ndn::Name& name) const;

  /// Record an access for eviction ordering (LRU move-to-front, LFU count
  /// bump) and update meta.last_access.
  void touch(Entry& entry, util::SimTime now);

  /// Remove by exact name; returns true if something was erased.
  bool erase(const ndn::Name& name);

  void clear();

  [[nodiscard]] bool contains(const ndn::Name& name) const;
  [[nodiscard]] std::size_t size() const noexcept { return all_entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool unbounded() const noexcept { return capacity_ == 0; }
  [[nodiscard]] EvictionPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Publish the cache counters into `registry` under `prefix` (e.g.
  /// "cs.lookups"). Adds the current totals; call once per snapshot.
  void export_metrics(util::MetricsRegistry& registry, const std::string& prefix) const;

  /// Structural invariants: size within capacity, and every inserted entry
  /// accounted for (inserts == overwrites + size + evictions + erases +
  /// wiped), matches never exceeding lookups. Throws
  /// util::InvariantViolation on breach; compiled to a no-op with
  /// -DNDNP_INVARIANT=0.
  void check_integrity() const;

  /// Iterate over all entries (test/diagnostic use). Order is insertion
  /// order perturbed by swap-and-pop removals — deterministic for a given
  /// op sequence, but not sorted by name.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Node* node : all_entries_) fn(node->entry);
  }

 private:
  struct FreqBucket;

  /// Per-depth registration record: the hash of the entry name's depth-d
  /// prefix (computed once at insert, one FNV pass for all depths) and the
  /// node's current index inside that depth's bucket (maintained by
  /// swap-and-pop; pos of depth 0 indexes all_entries_).
  struct PrefixRef {
    std::uint64_t hash = 0;
    std::uint32_t pos = 0;
  };

  struct Node {
    Entry entry;
    /// prefixes[d] for d in [0, depth]; prefixes.back().hash duplicates
    /// entry.name_hash.
    std::vector<PrefixRef> prefixes;
    // Intrusive LRU/FIFO list (head = MRU / newest insertion).
    Node* order_prev = nullptr;
    Node* order_next = nullptr;
    // Intrusive LFU frequency bucket membership (FIFO within a bucket).
    Node* freq_prev = nullptr;
    Node* freq_next = nullptr;
    FreqBucket* freq_bucket = nullptr;
    std::uint64_t freq = 0;

    [[nodiscard]] std::size_t depth() const noexcept { return prefixes.size() - 1; }
  };

  /// LFU frequency buckets, ascending by freq, each holding its nodes in
  /// bump order (head = least recently promoted into this frequency).
  /// Victim = head of the first bucket — the same entry a
  /// std::multimap<freq, name>::begin() scan would name.
  struct FreqBucket {
    std::uint64_t freq = 0;
    Node* head = nullptr;
    Node* tail = nullptr;
    FreqBucket* prev = nullptr;
    FreqBucket* next = nullptr;
  };

  [[nodiscard]] Entry* find_impl(const ndn::Interest& interest, util::SimTime now,
                                 bool& saw_stale);
  [[nodiscard]] Node* exact_find(std::uint64_t hash, const ndn::Name& name) const noexcept;
  void index_insert(Node* node);
  void index_access(Node* node);
  void index_erase(Node* node);
  void remove_node(Node* node);
  [[nodiscard]] Node* pick_victim();

  // Intrusive-list helpers.
  void order_push_front(Node* node) noexcept;
  void order_unlink(Node* node) noexcept;
  void lfu_append(FreqBucket* bucket, Node* node) noexcept;
  void lfu_detach(Node* node) noexcept;
  void lfu_free_all() noexcept;

  [[nodiscard]] std::unique_ptr<Node> acquire_node();

  std::size_t capacity_;
  EvictionPolicy policy_;
  util::Rng rng_;
  /// Exact-match index and owner of all nodes, keyed by full-name hash.
  util::OpenHashTable<std::unique_ptr<Node>> entries_;
  /// Recycled nodes (bounded by the historical peak entry count): the
  /// steady-state insert+evict loop reuses the victim's allocation —
  /// including its PrefixRef vector capacity — instead of hitting the
  /// allocator every cycle.
  std::vector<std::unique_ptr<Node>> free_nodes_;
  /// Scratch for insert(): prefix hashes of the incoming name, filled by
  /// one visit_prefix_hashes pass without allocating per call.
  std::vector<PrefixRef> scratch_prefixes_;
  /// prefix_index_[d] (d >= 1): hash-of-depth-d-prefix -> bucket of nodes
  /// whose name has that *strict* prefix (entries of depth exactly d are
  /// only in entries_; the exact fast path finds them). Hash collisions
  /// may mix prefixes in one bucket; find() filters candidates through
  /// Data::satisfies, so a collision costs a comparison, never a wrong
  /// answer.
  std::vector<util::OpenHashTable<std::vector<Node*>>> prefix_index_;
  /// Every node, in insertion order with swap-and-pop removal. Serves the
  /// depth-0 (root prefix) lookups and doubles as the random-eviction
  /// index — identical order and RNG consumption to the historical
  /// by_index_ vector.
  std::vector<Node*> all_entries_;
  Node* order_head_ = nullptr;  // LRU/FIFO: front = MRU / newest
  Node* order_tail_ = nullptr;  // LRU tail = least recent; FIFO tail = oldest
  FreqBucket* freq_head_ = nullptr;  // LFU: lowest frequency bucket
  /// LFU bucket arena: every frequency promotion creates the freq+1 bucket
  /// and retires the emptied one, so buckets must recycle through a slab
  /// free list or every LFU cache hit pays the allocator.
  util::Slab<FreqBucket> freq_bucket_slab_;
  CacheStats stats_;
  std::string trace_label_ = "cs";
};

}  // namespace ndnp::cache
