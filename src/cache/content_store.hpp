// Content Store (CS): the router-side cache at the heart of the paper.
//
// The CS maps full content names to Data packets plus the per-entry
// metadata the privacy policies need (Section IV's state function S and
// Algorithm 1's per-content counter c_C / threshold k_C live here).
// Capacity is bounded; eviction is pluggable (the paper's evaluation uses
// LRU; FIFO/LFU/random are provided for the eviction ablation bench).
//
// Lookup follows NDN matching: an interest for name N is satisfied by any
// cached Data whose name has N as a prefix — except exact-match-only
// content (unpredictable names), which requires full-name equality.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ndn/packet.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace ndnp::cache {

enum class EvictionPolicy { kLru, kFifo, kLfu, kRandom };

[[nodiscard]] std::string_view to_string(EvictionPolicy policy) noexcept;

/// Metadata the privacy layer (core/) keeps per cached entry.
struct EntryMeta {
  /// When the entry was inserted.
  util::SimTime inserted_at = util::kTimeUnset;
  /// Last access (exposed hit, delayed hit or simulated miss — the paper:
  /// "the corresponding cache entry becomes fresh even if the response is
  /// delayed").
  util::SimTime last_access = util::kTimeUnset;
  /// gamma_C: interest-in -> content-out delay observed when the router
  /// first fetched this content (drives the content-specific delay policy).
  util::SimDuration fetch_delay = 0;
  /// c_C of Algorithm 1: number of requests since insertion (maintained by
  /// RandomCache policies; the first request that caused the fetch is not
  /// counted, matching "cC := 0" on insertion).
  std::uint64_t request_count = 0;
  /// k_C of Algorithm 1; negative = not yet sampled.
  std::int64_t k_threshold = -1;
  /// Entry is currently treated as private by the router.
  bool treated_private = false;
  /// The non-private trigger has fired (Section V-B): a producer-unmarked
  /// entry was requested without the privacy bit and is de-privatized for
  /// its remaining cache lifetime.
  bool deprivatized = false;
};

struct Entry {
  ndn::Data data;
  EntryMeta meta;

  /// Whether the cached copy is still fresh at `now` (fresh forever when
  /// the producer set no freshness period).
  [[nodiscard]] bool fresh_at(util::SimTime now) const noexcept {
    return !data.freshness_period ||
           now <= meta.inserted_at + *data.freshness_period;
  }
};

/// Raw cache counters (mechanical; privacy-visible hit/miss accounting is
/// done a layer up where the policy decides what to expose).
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t matches = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
};

class ContentStore {
 public:
  /// capacity == 0 means unlimited (the paper's "Inf" baseline).
  /// `seed` feeds random eviction only.
  explicit ContentStore(std::size_t capacity, EvictionPolicy policy = EvictionPolicy::kLru,
                        std::uint64_t seed = 0);

  ContentStore(const ContentStore&) = delete;
  ContentStore& operator=(const ContentStore&) = delete;

  /// Insert (or overwrite) content. Evicts per policy if at capacity.
  /// Returns the stored entry. `meta.inserted_at`/`last_access` should be
  /// set by the caller (the router knows the simulation clock).
  Entry& insert(ndn::Data data, EntryMeta meta);

  /// Find a match for `interest` (prefix semantics, exact-only honored).
  /// Does NOT touch recency — callers decide whether an access "counts"
  /// via touch(). Returns nullptr on miss. Among multiple matches the
  /// lexicographically smallest matching name is returned (deterministic,
  /// mirroring NDN's canonical-order selector default).
  ///
  /// When `now` is supplied and the interest sets MustBeFresh, stale
  /// entries are skipped as if absent; with the default kTimeUnset,
  /// freshness is not evaluated.
  [[nodiscard]] Entry* find(const ndn::Interest& interest,
                            util::SimTime now = util::kTimeUnset);
  [[nodiscard]] const Entry* find(const ndn::Interest& interest,
                                  util::SimTime now = util::kTimeUnset) const;

  /// Exact full-name lookup.
  [[nodiscard]] Entry* find_exact(const ndn::Name& name);
  [[nodiscard]] const Entry* find_exact(const ndn::Name& name) const;

  /// Record an access for eviction ordering (LRU move-to-front, LFU count
  /// bump) and update meta.last_access.
  void touch(Entry& entry, util::SimTime now);

  /// Remove by exact name; returns true if something was erased.
  bool erase(const ndn::Name& name);

  void clear();

  [[nodiscard]] bool contains(const ndn::Name& name) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool unbounded() const noexcept { return capacity_ == 0; }
  [[nodiscard]] EvictionPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Publish the cache counters into `registry` under `prefix` (e.g.
  /// "cs.lookups"). Adds the current totals; call once per snapshot.
  void export_metrics(util::MetricsRegistry& registry, const std::string& prefix) const;

  /// Iterate over all entries (test/diagnostic use).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [name, node] : entries_) fn(node.entry);
  }

 private:
  struct Node {
    Entry entry;
    // Handle into the eviction structure appropriate for the policy:
    std::list<ndn::Name>::iterator order_it{};            // LRU / FIFO
    std::multimap<std::uint64_t, ndn::Name>::iterator freq_it{};  // LFU
    std::size_t vec_index = 0;                             // Random
    std::uint64_t freq = 0;                                // LFU count
  };

  void index_insert(const ndn::Name& name, Node& node);
  void index_access(Node& node);
  void index_erase(Node& node);
  [[nodiscard]] ndn::Name pick_victim();

  std::size_t capacity_;
  EvictionPolicy policy_;
  util::Rng rng_;
  // Ordered map: names sharing a prefix are contiguous, so prefix lookup is
  // lower_bound + adjacency check, O(log n).
  std::map<ndn::Name, Node> entries_;
  std::list<ndn::Name> order_;                       // LRU (front = MRU) / FIFO (front = newest)
  std::multimap<std::uint64_t, ndn::Name> by_freq_;  // LFU (begin = coldest)
  std::vector<ndn::Name> by_index_;                  // Random
  CacheStats stats_;
};

}  // namespace ndnp::cache
