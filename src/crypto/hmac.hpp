// HMAC-SHA-256 (RFC 2104 / FIPS 198-1) and the keyed PRF built on it.
//
// The paper's interactive-traffic countermeasure (Section V-A) has producer
// and consumer derive per-content unpredictable name components from a
// shared secret using "a pseudo-random function (e.g., a keyed
// cryptographic hash, such as HMAC)". `Prf` below is exactly that
// construction; `NameRandomizer` (in core/) turns its output into name
// components.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha256.hpp"

namespace ndnp::crypto {

/// One-shot HMAC-SHA-256 over `data` with `key` (any key length; keys
/// longer than the block size are hashed first, per the spec).
[[nodiscard]] Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                       std::span<const std::uint8_t> data) noexcept;

[[nodiscard]] Sha256Digest hmac_sha256(std::string_view key, std::string_view data) noexcept;

/// Deterministic keyed PRF: PRF_k(label, counter) = HMAC-SHA256(k,
/// label || 0x00 || counter_be64). The label/counter domain separation lets
/// one shared secret drive independent sequences (e.g. one per direction of
/// a VoIP session).
class Prf {
 public:
  explicit Prf(std::string_view key) : key_(key.begin(), key.end()) {}
  explicit Prf(std::span<const std::uint8_t> key) : key_(key.begin(), key.end()) {}

  [[nodiscard]] Sha256Digest derive(std::string_view label, std::uint64_t counter) const noexcept;

  /// Convenience: first `hex_chars` hex characters of derive() — the
  /// "rand" name component format used throughout the examples/tests.
  [[nodiscard]] std::string derive_token(std::string_view label, std::uint64_t counter,
                                         std::size_t hex_chars = 32) const;

 private:
  std::vector<std::uint8_t> key_;
};

/// Simulated producer signature: HMAC tag binding producer identity, name
/// and payload. Stands in for the per-packet public-key signatures that
/// real NDN uses (scheme identity is irrelevant to cache privacy; what
/// matters is that content carries a producer-identifying tag).
[[nodiscard]] Sha256Digest sign_content(std::string_view producer_key, std::string_view name,
                                        std::string_view payload) noexcept;

/// Verify a simulated signature.
[[nodiscard]] bool verify_content(std::string_view producer_key, std::string_view name,
                                  std::string_view payload, const Sha256Digest& sig) noexcept;

}  // namespace ndnp::crypto
