#include "crypto/hmac.hpp"

#include <algorithm>
#include <array>

namespace ndnp::crypto {

namespace {

[[nodiscard]] std::span<const std::uint8_t> as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data) noexcept {
  std::array<std::uint8_t, kSha256BlockSize> block_key{};
  if (key.size() > kSha256BlockSize) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  std::array<std::uint8_t, kSha256BlockSize> ipad{};
  std::array<std::uint8_t, kSha256BlockSize> opad{};
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

Sha256Digest hmac_sha256(std::string_view key, std::string_view data) noexcept {
  return hmac_sha256(as_bytes(key), as_bytes(data));
}

Sha256Digest Prf::derive(std::string_view label, std::uint64_t counter) const noexcept {
  std::vector<std::uint8_t> message;
  message.reserve(label.size() + 1 + 8);
  message.insert(message.end(), label.begin(), label.end());
  message.push_back(0x00);  // domain separator: labels cannot collide with counters
  for (int i = 7; i >= 0; --i)
    message.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
  return hmac_sha256(std::span<const std::uint8_t>(key_), std::span<const std::uint8_t>(message));
}

std::string Prf::derive_token(std::string_view label, std::uint64_t counter,
                              std::size_t hex_chars) const {
  return digest_prefix_hex(derive(label, counter), hex_chars);
}

Sha256Digest sign_content(std::string_view producer_key, std::string_view name,
                          std::string_view payload) noexcept {
  // name_len prefix gives an injective encoding of (name, payload).
  std::string message;
  message.reserve(name.size() + payload.size() + 16);
  message += std::to_string(name.size());
  message.push_back(':');
  message += name;
  message += payload;
  return hmac_sha256(producer_key, message);
}

bool verify_content(std::string_view producer_key, std::string_view name, std::string_view payload,
                    const Sha256Digest& sig) noexcept {
  const Sha256Digest expected = sign_content(producer_key, name, payload);
  // Constant-time comparison, as one would in production code.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i)
    diff = static_cast<std::uint8_t>(diff | (expected[i] ^ sig[i]));
  return diff == 0;
}

}  // namespace ndnp::crypto
