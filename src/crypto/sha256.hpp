// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for (a) simulated producer signatures on Data packets (the paper
// notes every NDN content object is signed, which is what makes producers
// identifiable to the adversary), and (b) as the compression function under
// HMAC for the "mutual" unpredictable-name countermeasure of Section V-A.
// Verified against the NIST FIPS 180-4 test vectors in the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>

namespace ndnp::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256 context. Typical use:
///   Sha256 h; h.update(a); h.update(b); auto d = h.finish();
/// finish() may be called once; the object is then spent.
class Sha256 {
 public:
  Sha256() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;

  /// Finalizes padding and returns the digest. Must be called exactly once.
  [[nodiscard]] Sha256Digest finish() noexcept;

  /// One-shot helpers.
  [[nodiscard]] static Sha256Digest hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Sha256Digest hash(std::string_view data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kSha256BlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Lower-case hex encoding of arbitrary bytes.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

/// First `n` hex characters of the digest — compact unique tokens for
/// name components (n must be <= 64).
[[nodiscard]] std::string digest_prefix_hex(const Sha256Digest& digest, std::size_t n);

}  // namespace ndnp::crypto
