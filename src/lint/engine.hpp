// ndnp_lint engine: directory-scoped rule bindings, NDNP-LINT-ALLOW
// suppressions, a checked-in baseline for grandfathered findings, and
// canonical text / JSON reports.
//
// Workflow (docs/STATIC_ANALYSIS.md):
//
//  - `LintConfig::repo_default()` binds the rule pack to the directories
//    whose invariants it encodes (determinism rules on the simulation
//    tree, allocation rules outside the allocator layer, hygiene rules
//    everywhere).
//  - A finding is silenced at the site with
//        `// NDNP-LINT-ALLOW(rule): reason`
//    on the same or the preceding line. The reason is mandatory — an ALLOW
//    without one is itself reported (rule `allow-missing-reason`).
//  - Legacy findings may be grandfathered in a baseline file
//    (`.ndnp_lint_baseline`). Entries match on (rule, file, content hash),
//    not line numbers, so unrelated edits do not invalidate them. Baseline
//    entries that no longer match anything are *stale* and reported —
//    CI fails on them, which makes the baseline shrinks-only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hpp"

namespace ndnp::lint {

/// Binds one rule id to path prefixes. Empty `include_prefixes` means the
/// rule applies everywhere (minus excludes). Prefixes are repo-relative
/// directory paths matched whole-component ("src/sim" matches
/// "src/sim/node.cpp" but not "src/simx/a.cpp").
struct RuleBinding {
  std::string rule_id;
  std::vector<std::string> include_prefixes;
  std::vector<std::string> exclude_prefixes;
};

struct LintConfig {
  std::vector<std::shared_ptr<const Rule>> rules;
  std::vector<RuleBinding> bindings;
  /// Paths skipped entirely (the deliberately-dirty lint self-test corpus,
  /// build trees).
  std::vector<std::string> exclude_prefixes;

  /// The repository rule pack with its directory scopes.
  [[nodiscard]] static LintConfig repo_default();
};

/// True when `path` is `prefix` or lies underneath it.
[[nodiscard]] bool path_has_prefix(std::string_view path, std::string_view prefix) noexcept;

/// FNV-1a over "rule|file|normalized excerpt" (whitespace runs collapsed).
/// Line numbers are deliberately not hashed: baselines survive unrelated
/// edits above the finding.
[[nodiscard]] std::uint64_t finding_hash(const Finding& finding) noexcept;

struct BaselineEntry {
  std::string rule;
  std::string file;
  std::uint64_t hash = 0;
};

/// Multiset of grandfathered findings keyed by (rule, file, hash).
class Baseline {
 public:
  /// Parses the on-disk format: '#' comment lines, then
  /// `<rule> <hash16hex> <file>` per entry (duplicates repeat the line).
  /// Throws std::runtime_error on a malformed line.
  [[nodiscard]] static Baseline parse(std::string_view text);
  [[nodiscard]] static Baseline from_findings(const std::vector<Finding>& findings);

  /// Canonical serialization: header comment + entries sorted by
  /// (rule, file, hash). parse(serialize()) round-trips exactly.
  [[nodiscard]] std::string serialize() const;

  /// Consumes one matching entry; false when none is left for the finding.
  [[nodiscard]] bool consume(const Finding& finding);

  /// Entries never consumed — stale once every finding has been offered.
  [[nodiscard]] std::vector<BaselineEntry> remaining() const;

  [[nodiscard]] std::size_t size() const noexcept { return total_; }

 private:
  struct Key {
    std::string rule;
    std::string file;
    std::uint64_t hash;
    auto operator<=>(const Key&) const = default;
  };
  std::vector<std::pair<Key, int>> entries_;  // sorted, count per key
  std::size_t total_ = 0;
};

struct LintReport {
  /// Active findings: not suppressed, not baselined. Sorted by
  /// (file, line, rule).
  std::vector<Finding> findings;
  /// Findings matched (and consumed) by the baseline.
  std::vector<Finding> baselined;
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;
  std::vector<BaselineEntry> stale_baseline;

  [[nodiscard]] bool clean() const noexcept {
    return findings.empty() && stale_baseline.empty();
  }
  [[nodiscard]] std::string to_text() const;
  /// Canonical JSON: keys in fixed order, findings sorted, strings escaped;
  /// byte-identical for identical inputs on every platform.
  [[nodiscard]] std::string to_json() const;
};

/// Lints one in-memory source (tests, corpus). Appends to `report`;
/// `rel_path` selects rule bindings and is reported in findings.
/// `companion_content` is the matching header of a .cpp when one exists —
/// declaration-tracking rules read member declarations from it.
void lint_source(const std::string& rel_path, std::string_view content, const LintConfig& config,
                 LintReport& report, std::string_view companion_content = {});

/// Applies the baseline to `report`: moves matched findings into
/// `baselined` and records unmatched baseline entries as stale.
void apply_baseline(LintReport& report, Baseline baseline);

/// Expands files/directories under `root` into a sorted list of
/// repo-relative .cpp/.hpp paths, honouring `config.exclude_prefixes`.
/// Throws std::runtime_error for a path that does not exist.
[[nodiscard]] std::vector<std::string> collect_sources(const std::string& root,
                                                       const std::vector<std::string>& paths,
                                                       const LintConfig& config);

/// Reads and lints every collected path. The returned report has no
/// baseline applied; call apply_baseline for that.
[[nodiscard]] LintReport lint_paths(const std::string& root, const std::vector<std::string>& paths,
                                    const LintConfig& config);

}  // namespace ndnp::lint
