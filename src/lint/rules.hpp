// Project-rule pack for ndnp_lint.
//
// Each rule encodes an invariant this repository actually depends on
// (docs/STATIC_ANALYSIS.md describes the rationale and the workflow):
//
//  - determinism-rand: libc / <random> entropy sources are banned on
//    simulation paths — every draw must flow through util::Rng seeded from
//    the per-run seed, or sweeps stop being byte-identical across --jobs.
//  - determinism-wallclock: wall-clock reads (std::chrono clocks, time(),
//    gettimeofday, ...) are banned on simulation paths; simulated time is
//    util::SimTime. Measured wall time for reporting carries an ALLOW.
//  - determinism-unordered-iteration: iterating a std::unordered_* container
//    observes implementation-defined order; on simulation paths that order
//    leaks into results. Declaring one is legal — iterating it is not.
//  - alloc-naked-new: naked new/delete/malloc on simulation paths bypasses
//    the Slab/ObjectPool substrates that keep the event core allocation-free
//    (docs/PERFORMANCE.md).
//  - macro-side-effect: NDNP_INVARIANT_CHECK / NDNP_TRACE_EVENT compile out
//    under -DNDNP_INVARIANT=0 / -DNDNP_TRACING=0; a side effect in their
//    argument lists makes behavior differ between builds.
//  - header-pragma-once: every header carries `#pragma once`.
//  - header-using-namespace: `using namespace` in a header pollutes every
//    includer.
//
// Rules see a lexed file (lexer.hpp): comments stripped, literal contents
// blanked, so token matches are meaningful. Where a rule must over-reach
// (heuristics, not a parser), per-line NDNP-LINT-ALLOW suppressions carry
// the written justification.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace ndnp::lint {

/// One diagnostic. `line` is 1-based; `excerpt` is the trimmed code view of
/// the offending line (what the baseline hash is computed from).
struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
  std::string excerpt;
};

/// A lexed file plus the repo-relative path rules scope on.
struct SourceFile {
  std::string path;  // repo-relative, '/'-separated
  LexedFile lexed;
  /// The companion header of a .cpp (same stem, .hpp/.h/.hh), when one
  /// exists: declaration-tracking rules read member declarations from it.
  LexedFile companion;
  bool is_header = false;
};

class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string_view id() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  virtual void check(const SourceFile& file, std::vector<Finding>& out) const = 0;
};

/// The full rule pack, in stable id order. Shared (not unique) pointers so
/// a LintConfig and tests can hold subsets without copying rules.
[[nodiscard]] std::vector<std::shared_ptr<const Rule>> make_default_rules();

}  // namespace ndnp::lint
