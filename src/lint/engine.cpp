#include "lint/engine.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ndnp::lint {

namespace {

[[nodiscard]] bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

[[nodiscard]] std::string trimmed(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return std::string(s.substr(b, e - b));
}

/// Whitespace runs collapsed to single spaces, ends trimmed — the
/// normalization baseline hashes are computed over.
[[nodiscard]] std::string normalized(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool pending_space = false;
  for (const char c : s) {
    if (is_space(c)) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out += ' ';
    pending_space = false;
    out += c;
  }
  return out;
}

[[nodiscard]] bool finding_order(const Finding& a, const Finding& b) noexcept {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

[[nodiscard]] std::string hash_hex(std::uint64_t hash) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

/// One NDNP-LINT-ALLOW marker parsed out of a comment.
struct AllowMarker {
  std::vector<std::string> rules;  // "*" wildcard allowed
  bool has_reason = false;
};

[[nodiscard]] std::vector<AllowMarker> parse_allow_markers(const std::string& comment) {
  static constexpr std::string_view kTag = "NDNP-LINT-ALLOW(";
  std::vector<AllowMarker> markers;
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    pos += kTag.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) break;
    AllowMarker marker;
    std::string rule_list = comment.substr(pos, close - pos);
    std::size_t start = 0;
    while (start <= rule_list.size()) {
      const std::size_t comma = rule_list.find(',', start);
      const std::string one =
          trimmed(rule_list.substr(start, comma == std::string::npos ? std::string::npos
                                                                     : comma - start));
      if (!one.empty()) marker.rules.push_back(one);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    std::size_t after = close + 1;
    while (after < comment.size() && is_space(comment[after])) ++after;
    if (after < comment.size() && comment[after] == ':') {
      const std::string reason = trimmed(comment.substr(after + 1));
      marker.has_reason = !reason.empty();
    }
    markers.push_back(std::move(marker));
    pos = close;
  }
  return markers;
}

[[nodiscard]] bool marker_covers(const AllowMarker& marker, const std::string& rule) {
  for (const std::string& r : marker.rules)
    if (r == "*" || r == rule) return true;
  return false;
}

[[nodiscard]] bool rule_applies(const LintConfig& config, std::string_view rule_id,
                                std::string_view path) {
  for (const RuleBinding& binding : config.bindings) {
    if (binding.rule_id != rule_id) continue;
    for (const std::string& prefix : binding.exclude_prefixes)
      if (path_has_prefix(path, prefix)) return false;
    if (binding.include_prefixes.empty()) return true;
    for (const std::string& prefix : binding.include_prefixes)
      if (path_has_prefix(path, prefix)) return true;
    return false;
  }
  return true;  // no binding: the rule applies everywhere
}

}  // namespace

bool path_has_prefix(std::string_view path, std::string_view prefix) noexcept {
  if (prefix.empty()) return true;
  if (path.size() < prefix.size() || path.substr(0, prefix.size()) != prefix) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

std::uint64_t finding_hash(const Finding& finding) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::string_view s) {
    for (const char c : s) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ULL;
    }
    hash ^= static_cast<unsigned char>('|');
    hash *= 0x100000001b3ULL;
  };
  mix(finding.rule);
  mix(finding.file);
  mix(normalized(finding.excerpt));
  return hash;
}

// ---------------------------------------------------------------------------
// Baseline

Baseline Baseline::parse(std::string_view text) {
  Baseline baseline;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t eol = text.find('\n', start);
    const std::string line =
        trimmed(text.substr(start, eol == std::string_view::npos ? std::string_view::npos
                                                                 : eol - start));
    ++line_no;
    start = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string rule, hash_text, file, extra;
    fields >> rule >> hash_text >> file;
    if (rule.empty() || hash_text.size() != 16 || file.empty() || (fields >> extra))
      throw std::runtime_error("malformed baseline line " + std::to_string(line_no) + ": '" +
                               line + "'");
    std::uint64_t hash = 0;
    for (const char c : hash_text) {
      const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      std::uint64_t digit = 0;
      if (lower >= '0' && lower <= '9')
        digit = static_cast<std::uint64_t>(lower - '0');
      else if (lower >= 'a' && lower <= 'f')
        digit = static_cast<std::uint64_t>(lower - 'a' + 10);
      else
        throw std::runtime_error("malformed baseline hash on line " + std::to_string(line_no));
      hash = (hash << 4) | digit;
    }
    const Key key{rule, file, hash};
    const auto it = std::lower_bound(
        baseline.entries_.begin(), baseline.entries_.end(), key,
        [](const std::pair<Key, int>& entry, const Key& k) { return entry.first < k; });
    if (it != baseline.entries_.end() && it->first == key)
      ++it->second;
    else
      baseline.entries_.insert(it, {key, 1});
    ++baseline.total_;
  }
  return baseline;
}

Baseline Baseline::from_findings(const std::vector<Finding>& findings) {
  std::string text;
  for (const Finding& finding : findings)
    text += finding.rule + " " + hash_hex(finding_hash(finding)) + " " + finding.file + "\n";
  return parse(text);
}

std::string Baseline::serialize() const {
  std::string out =
      "# ndnp_lint baseline v1 — grandfathered findings, one `<rule> <hash> <file>` per line.\n"
      "# This file may only shrink: entries that stop matching are stale and fail CI\n"
      "# (docs/STATIC_ANALYSIS.md).\n";
  for (const auto& [key, count] : entries_)
    for (int i = 0; i < count; ++i)
      out += key.rule + " " + hash_hex(key.hash) + " " + key.file + "\n";
  return out;
}

bool Baseline::consume(const Finding& finding) {
  const Key key{finding.rule, finding.file, finding_hash(finding)};
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const std::pair<Key, int>& entry, const Key& k) { return entry.first < k; });
  if (it == entries_.end() || !(it->first == key) || it->second == 0) return false;
  --it->second;
  return true;
}

std::vector<BaselineEntry> Baseline::remaining() const {
  std::vector<BaselineEntry> out;
  for (const auto& [key, count] : entries_)
    for (int i = 0; i < count; ++i)
      out.push_back(BaselineEntry{.rule = key.rule, .file = key.file, .hash = key.hash});
  return out;
}

// ---------------------------------------------------------------------------
// Report

std::string LintReport::to_text() const {
  std::vector<Finding> sorted = findings;
  std::sort(sorted.begin(), sorted.end(), finding_order);
  std::string out;
  for (const Finding& finding : sorted) {
    out += finding.file + ":" + std::to_string(finding.line) + ": [" + finding.rule + "] " +
           finding.message + "\n";
    if (!finding.excerpt.empty()) out += "    " + finding.excerpt + "\n";
  }
  for (const BaselineEntry& entry : stale_baseline)
    out += "stale baseline entry (fix was made — remove the line): " + entry.rule + " " +
           hash_hex(entry.hash) + " " + entry.file + "\n";
  out += std::to_string(sorted.size()) + " finding(s), " + std::to_string(suppressed) +
         " suppressed, " + std::to_string(baselined.size()) + " baselined, " +
         std::to_string(stale_baseline.size()) + " stale baseline entr" +
         (stale_baseline.size() == 1 ? "y" : "ies") + " across " +
         std::to_string(files_scanned) + " file(s)\n";
  return out;
}

std::string LintReport::to_json() const {
  std::vector<Finding> sorted = findings;
  std::sort(sorted.begin(), sorted.end(), finding_order);
  std::vector<BaselineEntry> stale = stale_baseline;
  std::sort(stale.begin(), stale.end(), [](const BaselineEntry& a, const BaselineEntry& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.hash < b.hash;
  });
  std::string out = "{\"baselined\":" + std::to_string(baselined.size());
  out += ",\"files_scanned\":" + std::to_string(files_scanned);
  out += ",\"findings\":[";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) out += ',';
    const Finding& finding = sorted[i];
    out += "{\"excerpt\":";
    append_json_string(out, finding.excerpt);
    out += ",\"file\":";
    append_json_string(out, finding.file);
    out += ",\"hash\":";
    append_json_string(out, hash_hex(finding_hash(finding)));
    out += ",\"line\":" + std::to_string(finding.line);
    out += ",\"message\":";
    append_json_string(out, finding.message);
    out += ",\"rule\":";
    append_json_string(out, finding.rule);
    out += '}';
  }
  out += "],\"stale_baseline\":[";
  for (std::size_t i = 0; i < stale.size(); ++i) {
    if (i) out += ',';
    out += "{\"file\":";
    append_json_string(out, stale[i].file);
    out += ",\"hash\":";
    append_json_string(out, hash_hex(stale[i].hash));
    out += ",\"rule\":";
    append_json_string(out, stale[i].rule);
    out += '}';
  }
  out += "],\"suppressed\":" + std::to_string(suppressed) + "}";
  return out;
}

// ---------------------------------------------------------------------------
// Engine

void lint_source(const std::string& rel_path, std::string_view content, const LintConfig& config,
                 LintReport& report, std::string_view companion_content) {
  SourceFile file;
  file.path = rel_path;
  file.lexed = lex(content);
  if (!companion_content.empty()) file.companion = lex(companion_content);
  const std::size_t dot = rel_path.find_last_of('.');
  const std::string ext = dot == std::string::npos ? "" : rel_path.substr(dot);
  file.is_header = ext == ".hpp" || ext == ".h" || ext == ".hh";

  std::vector<Finding> raw;
  for (const auto& rule : config.rules) {
    if (!rule_applies(config, rule->id(), rel_path)) continue;
    rule->check(file, raw);
  }

  // Suppressions: an ALLOW on the finding's line or the line above.
  std::set<std::size_t> missing_reason_lines;
  for (Finding& finding : raw) {
    bool suppressed_here = false;
    bool missing_reason = false;
    std::size_t marker_line = 0;
    for (std::size_t line = finding.line;
         line + 1 >= finding.line && line >= 1 && line <= file.lexed.lines.size(); --line) {
      for (const AllowMarker& marker : parse_allow_markers(file.lexed.lines[line - 1].comment)) {
        if (!marker_covers(marker, finding.rule)) continue;
        if (marker.has_reason) {
          suppressed_here = true;
        } else {
          missing_reason = true;
          marker_line = line;
        }
      }
      if (suppressed_here || line == 1) break;
    }
    if (suppressed_here) {
      ++report.suppressed;
      continue;
    }
    if (missing_reason) missing_reason_lines.insert(marker_line);
    report.findings.push_back(std::move(finding));
  }
  for (const std::size_t line : missing_reason_lines) {
    Finding finding;
    finding.rule = "allow-missing-reason";
    finding.file = rel_path;
    finding.line = line;
    finding.message =
        "NDNP-LINT-ALLOW without a reason — write `NDNP-LINT-ALLOW(rule): why` so the "
        "suppression documents itself";
    finding.excerpt = line <= file.lexed.lines.size()
                          ? trimmed(file.lexed.lines[line - 1].code + " // " +
                                    file.lexed.lines[line - 1].comment)
                          : "";
    report.findings.push_back(std::move(finding));
  }
  ++report.files_scanned;
}

void apply_baseline(LintReport& report, Baseline baseline) {
  std::vector<Finding> active;
  for (Finding& finding : report.findings) {
    if (baseline.consume(finding))
      report.baselined.push_back(std::move(finding));
    else
      active.push_back(std::move(finding));
  }
  report.findings = std::move(active);
  report.stale_baseline = baseline.remaining();
}

std::vector<std::string> collect_sources(const std::string& root,
                                         const std::vector<std::string>& paths,
                                         const LintConfig& config) {
  namespace fs = std::filesystem;
  const fs::path root_path(root);
  std::set<std::string> collected;
  const auto consider = [&](const fs::path& path) {
    const std::string ext = path.extension().string();
    if (ext != ".cpp" && ext != ".hpp" && ext != ".h" && ext != ".hh" && ext != ".cc") return;
    std::string rel = fs::relative(path, root_path).lexically_normal().generic_string();
    for (const std::string& prefix : config.exclude_prefixes)
      if (path_has_prefix(rel, prefix)) return;
    collected.insert(std::move(rel));
  };
  for (const std::string& arg : paths) {
    fs::path path(arg);
    if (path.is_relative()) path = root_path / path;
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path))
        if (entry.is_regular_file()) consider(entry.path());
    } else if (fs::is_regular_file(path)) {
      consider(path);
    } else {
      throw std::runtime_error("ndnp_lint: no such file or directory: " + arg);
    }
  }
  return {collected.begin(), collected.end()};
}

LintReport lint_paths(const std::string& root, const std::vector<std::string>& paths,
                      const LintConfig& config) {
  namespace fs = std::filesystem;
  const auto read_file = [](const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("ndnp_lint: cannot read " + path.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  LintReport report;
  for (const std::string& rel : collect_sources(root, paths, config)) {
    const fs::path path = fs::path(root) / rel;
    // A .cpp's member declarations usually live in its companion header.
    std::string companion;
    if (path.extension() == ".cpp" || path.extension() == ".cc") {
      for (const char* header_ext : {".hpp", ".h", ".hh"}) {
        fs::path candidate = path;
        candidate.replace_extension(header_ext);
        if (fs::is_regular_file(candidate)) {
          companion = read_file(candidate);
          break;
        }
      }
    }
    lint_source(rel, read_file(path), config, report, companion);
  }
  std::sort(report.findings.begin(), report.findings.end(), finding_order);
  return report;
}

LintConfig LintConfig::repo_default() {
  LintConfig config;
  config.rules = make_default_rules();
  // The determinism contract covers every directory whose code runs inside
  // a simulation: the event core and network model (sim), trace parsing
  // and replay (trace), the online detectors (telemetry), the sweep runner
  // (runner), the adversary implementations (attack), and the cache +
  // policy layers they all drive (cache, core). src/util is the one layer
  // allowed to wrap nondeterministic primitives behind deterministic
  // interfaces (util::Rng, tracing wall-clock metadata).
  const std::vector<std::string> deterministic_dirs = {
      "src/sim",    "src/trace", "src/telemetry", "src/runner",
      "src/attack", "src/cache", "src/core",
  };
  config.bindings = {
      {.rule_id = "determinism-rand", .include_prefixes = deterministic_dirs,
       .exclude_prefixes = {}},
      {.rule_id = "determinism-wallclock", .include_prefixes = deterministic_dirs,
       .exclude_prefixes = {}},
      {.rule_id = "determinism-unordered-iteration", .include_prefixes = deterministic_dirs,
       .exclude_prefixes = {}},
      // Allocation hygiene: everywhere in the library tree except the
      // allocator substrates themselves. Tests/bench/tools may allocate.
      {.rule_id = "alloc-naked-new", .include_prefixes = {"src"},
       .exclude_prefixes = {"src/util"}},
      // Hygiene rules everywhere (empty include = all scanned paths).
      {.rule_id = "macro-side-effect", .include_prefixes = {}, .exclude_prefixes = {}},
      {.rule_id = "header-pragma-once", .include_prefixes = {}, .exclude_prefixes = {}},
      {.rule_id = "header-using-namespace", .include_prefixes = {}, .exclude_prefixes = {}},
  };
  // The lint self-test corpus is deliberately full of findings; build
  // trees hold generated/vendored sources.
  config.exclude_prefixes = {"tests/lint_corpus",  "build",       "build-cov",
                             "build-ref",          "build-noinv", "build-notel",
                             "build-notrace",      "build-chaos", "build-asan",
                             "build-tsan"};
  return config;
}

}  // namespace ndnp::lint
