#include "lint/lexer.hpp"

#include <cctype>

namespace ndnp::lint {

namespace {

[[nodiscard]] bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `code` (the code view accumulated so far on this line) ends
/// with a raw-string prefix: `R`, `LR`, `uR`, `UR` or `u8R`, not preceded
/// by another identifier character (so `FooR"x"` is not a raw string).
[[nodiscard]] bool ends_with_raw_prefix(const std::string& code) noexcept {
  const std::size_t n = code.size();
  if (n == 0 || code[n - 1] != 'R') return false;
  std::size_t before = n - 1;  // index one past the encoding prefix
  if (before >= 2 && code[before - 2] == 'u' && code[before - 1] == '8') {
    before -= 2;
  } else if (before >= 1 &&
             (code[before - 1] == 'L' || code[before - 1] == 'u' || code[before - 1] == 'U')) {
    before -= 1;
  }
  return before == 0 || !is_ident_char(code[before - 1]);
}

/// True when a `'` immediately after `code` is a digit separator inside a
/// numeric literal (`10'000`, `0xFF'FF`) rather than a character literal.
[[nodiscard]] bool quote_is_digit_separator(const std::string& code) noexcept {
  if (code.empty()) return false;
  std::size_t i = code.size();
  // Walk back over the characters a numeric literal may contain.
  while (i > 0) {
    const char c = code[i - 1];
    const bool numeric_char = (std::isxdigit(static_cast<unsigned char>(c)) != 0) || c == 'x' ||
                              c == 'X' || c == '\'' || c == '.';
    if (!numeric_char) break;
    --i;
  }
  if (i == code.size()) return false;            // nothing numeric before the quote
  if (i > 0 && is_ident_char(code[i - 1])) return false;  // part of an identifier
  return std::isdigit(static_cast<unsigned char>(code[i])) != 0;  // literals start with a digit
}

[[nodiscard]] bool code_is_blank(const std::string& code) noexcept {
  for (const char c : code)
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return false;
  return true;
}

[[nodiscard]] bool ends_with_backslash(const std::string& code) noexcept {
  for (std::size_t i = code.size(); i > 0; --i) {
    const char c = code[i - 1];
    if (c == '\\') return true;
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return false;
  }
  return false;
}

}  // namespace

LexedFile lex(std::string_view source) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };

  LexedFile out;
  State state = State::kCode;
  std::string raw_terminator;  // ")delim\"" for the active raw string
  LexedLine line;
  bool continue_preprocessor = false;

  const std::size_t n = source.size();
  std::size_t i = 0;
  while (i <= n) {
    if (i == n || source[i] == '\n') {
      // End of line: unterminated ordinary literals recover, line comments
      // end, block comments and raw strings carry over.
      if (state == State::kLineComment || state == State::kString || state == State::kChar)
        state = State::kCode;
      continue_preprocessor = line.preprocessor && ends_with_backslash(line.code);
      out.lines.push_back(std::move(line));
      line = LexedLine{};
      line.preprocessor = continue_preprocessor;
      if (i == n) break;
      ++i;
      continue;
    }
    const char c = source[i];
    switch (state) {
      case State::kCode: {
        if (c == '#' && code_is_blank(line.code) && !line.preprocessor) {
          line.preprocessor = true;
          line.code += c;
          ++i;
          break;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
          state = State::kLineComment;
          i += 2;
          break;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
          state = State::kBlockComment;
          line.code += ' ';  // keep token separation across the comment
          i += 2;
          break;
        }
        if (c == '"') {
          if (ends_with_raw_prefix(line.code)) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < n && source[j] != '(' && source[j] != '\n' && delim.size() < 16)
              delim += source[j++];
            if (j < n && source[j] == '(') {
              state = State::kRawString;
              raw_terminator = ")" + delim + "\"";
              line.code += '"';
              line.code += delim;
              line.code += '(';
              i = j + 1;
              break;
            }
          }
          line.code += '"';
          state = State::kString;
          ++i;
          break;
        }
        if (c == '\'') {
          if (quote_is_digit_separator(line.code)) {
            line.code += c;
            ++i;
            break;
          }
          line.code += '\'';
          state = State::kChar;
          ++i;
          break;
        }
        line.code += c;
        ++i;
        break;
      }
      case State::kLineComment:
        line.comment += c;
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && source[i + 1] == '/') {
          state = State::kCode;
          i += 2;
        } else {
          line.comment += c;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n && source[i + 1] != '\n') {
          i += 2;  // escaped character, blanked
        } else if (c == '"') {
          line.code += '"';
          state = State::kCode;
          ++i;
        } else {
          ++i;  // literal contents are blanked from the code view
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n && source[i + 1] != '\n') {
          i += 2;
        } else if (c == '\'') {
          line.code += '\'';
          state = State::kCode;
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kRawString:
        if (source.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          line.code += raw_terminator;
          state = State::kCode;
          i += raw_terminator.size();
        } else {
          ++i;  // raw-string contents (including quotes) are blanked
        }
        break;
    }
  }
  return out;
}

}  // namespace ndnp::lint
