// Line-oriented C++ lexer for the project static analyzer (ndnp_lint).
//
// The rule pack (rules.hpp) wants to reason about *code*, not about the
// words inside comments or string literals — "new" in a doc comment or a
// log message must never trip the allocation rule. This lexer performs the
// minimal faithful tokenization that makes that sound:
//
//  - `//` and `/* ... */` comments (including multi-line blocks) are
//    removed from the code view and collected per line in `comment`, which
//    is where the suppression scanner looks for NDNP-LINT-ALLOW markers.
//  - String and character literals keep their delimiters in the code view
//    but have their contents blanked, with escape sequences honoured.
//  - Raw strings `R"delim( ... )delim"` are matched by delimiter and may
//    span lines; their contents are blanked like ordinary literals.
//  - Digit separators (`10'000`, `0xFF'FF`) are recognised so they do not
//    open a bogus character literal.
//  - Preprocessor directives (and their backslash-continuation lines) are
//    flagged so rules can skip or target them (`#pragma once` detection,
//    macro-definition sites).
//
// This is deliberately not a full C++ parser: the rules it feeds are
// token-level invariants, and the suppression mechanism covers the
// residual false positives a heuristic lexer cannot avoid.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ndnp::lint {

/// One physical source line, split into the code view and comment text.
struct LexedLine {
  /// Source text with comments removed and literal contents blanked;
  /// literal delimiters are preserved so token adjacency stays intact.
  std::string code;
  /// Concatenated text of every comment (or comment fragment) on the line,
  /// without the `//` / `/*` markers.
  std::string comment;
  /// True when the line is a preprocessor directive or a backslash
  /// continuation of one.
  bool preprocessor = false;
};

struct LexedFile {
  /// Physical lines in order; line N of the file is `lines[N - 1]`.
  std::vector<LexedLine> lines;
};

/// Lexes a whole translation unit. Never throws on malformed input: an
/// unterminated literal recovers at end of line, an unterminated block
/// comment or raw string runs to end of file.
[[nodiscard]] LexedFile lex(std::string_view source);

}  // namespace ndnp::lint
