#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace ndnp::lint {

namespace {

[[nodiscard]] bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// All code lines of a file joined by '\n', with an offset -> line map, so
/// rules can match constructs that span physical lines (declarations,
/// macro argument lists) and still report 1-based line numbers.
struct JoinedCode {
  std::string text;
  std::vector<std::size_t> line_starts;  // offset of each line's first char
  std::vector<bool> preprocessor;        // per line

  explicit JoinedCode(const LexedFile& lexed) {
    for (const LexedLine& line : lexed.lines) {
      line_starts.push_back(text.size());
      preprocessor.push_back(line.preprocessor);
      text += line.code;
      text += '\n';
    }
  }

  /// 1-based line number containing `offset`.
  [[nodiscard]] std::size_t line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<std::size_t>(it - line_starts.begin());
  }

  [[nodiscard]] bool on_preprocessor_line(std::size_t offset) const {
    return preprocessor[line_of(offset) - 1];
  }
};

[[nodiscard]] std::string trimmed(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return std::string(s.substr(b, e - b));
}

/// Trimmed code view of 1-based line `line` — the finding excerpt.
[[nodiscard]] std::string excerpt_of(const SourceFile& file, std::size_t line) {
  if (line == 0 || line > file.lexed.lines.size()) return {};
  return trimmed(file.lexed.lines[line - 1].code);
}

void add_finding(const SourceFile& file, std::vector<Finding>& out, std::string_view rule,
                 std::size_t line, std::string message) {
  out.push_back(Finding{.rule = std::string(rule),
                        .file = file.path,
                        .line = line,
                        .message = std::move(message),
                        .excerpt = excerpt_of(file, line)});
}

/// Last non-whitespace character strictly before `pos`, or '\0'.
[[nodiscard]] char prev_nonspace(const std::string& text, std::size_t pos) noexcept {
  while (pos > 0) {
    const char c = text[--pos];
    if (!is_space(c)) return c;
  }
  return '\0';
}

/// First non-whitespace character at or after `pos`, or '\0'.
[[nodiscard]] char next_nonspace(const std::string& text, std::size_t pos) noexcept {
  while (pos < text.size()) {
    const char c = text[pos++];
    if (!is_space(c)) return c;
  }
  return '\0';
}

/// Calls `fn(token, offset)` for every identifier token in `text`.
template <typename Fn>
void for_each_identifier(const std::string& text, Fn&& fn) {
  const std::size_t n = text.size();
  std::size_t i = 0;
  while (i < n) {
    if (is_ident_char(text[i])) {
      const std::size_t start = i;
      while (i < n && (is_ident_char(text[i]) || text[i] == '\'')) ++i;
      // Numeric literals (and their suffixes) are not identifiers.
      if (std::isdigit(static_cast<unsigned char>(text[start])) == 0)
        fn(std::string_view(text).substr(start, i - start), start);
    } else {
      ++i;
    }
  }
}

/// True when the identifier at `offset` is member access (`x.f`, `x->f`)
/// rather than a free or qualified name.
[[nodiscard]] bool is_member_access(const std::string& text, std::size_t offset) noexcept {
  std::size_t pos = offset;
  while (pos > 0 && is_space(text[pos - 1])) --pos;
  if (pos == 0) return false;
  if (text[pos - 1] == '.') return true;
  return pos >= 2 && text[pos - 2] == '-' && text[pos - 1] == '>';
}

/// True when `text` contains `word` as a whole identifier token.
[[nodiscard]] bool contains_word(std::string_view text, std::string_view word) noexcept {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// Offset one past the parenthesized group opening at `open` (which must
/// point at '('), honouring nesting; npos when unbalanced.
[[nodiscard]] std::size_t matching_paren(const std::string& text, std::size_t open) noexcept {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// determinism-rand

class DeterminismRandRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "determinism-rand"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "libc/<random> entropy sources on simulation paths; draw through util::Rng";
  }
  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 14> kBannedAlways = {
        "srand",       "rand_r",        "drand48",      "lrand48",
        "mrand48",     "random_device", "mt19937",      "mt19937_64",
        "minstd_rand", "minstd_rand0",  "knuth_b",      "ranlux24_base",
        "ranlux48_base", "default_random_engine",
    };
    const JoinedCode joined(file.lexed);
    for_each_identifier(joined.text, [&](std::string_view token, std::size_t offset) {
      const bool always = std::find(kBannedAlways.begin(), kBannedAlways.end(), token) !=
                          kBannedAlways.end();
      // `rand` / `random` only as direct calls: members named e.g.
      // `x.rand()` would be our own seeded helpers.
      const bool call_only = (token == "rand" || token == "random") &&
                             next_nonspace(joined.text, offset + token.size()) == '(' &&
                             !is_member_access(joined.text, offset);
      if (always || call_only)
        add_finding(file, out, id(), joined.line_of(offset),
                    "nondeterministic random primitive '" + std::string(token) +
                        "' — draw through util::Rng seeded from the run seed");
    });
  }
};

// ---------------------------------------------------------------------------
// determinism-wallclock

class DeterminismWallclockRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "determinism-wallclock"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "wall-clock reads on simulation paths; simulated time is util::SimTime";
  }
  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 12> kBannedAlways = {
        "system_clock", "high_resolution_clock", "steady_clock", "gettimeofday",
        "clock_gettime", "timespec_get",         "localtime",    "localtime_r",
        "gmtime",        "gmtime_r",             "mktime",       "ftime",
    };
    const JoinedCode joined(file.lexed);
    for_each_identifier(joined.text, [&](std::string_view token, std::size_t offset) {
      const bool always = std::find(kBannedAlways.begin(), kBannedAlways.end(), token) !=
                          kBannedAlways.end();
      // `time(...)` / `clock(...)` as free or std-qualified calls; member
      // calls (`scheduler.clock()`) are simulation accessors, not libc.
      const bool call_only = (token == "time" || token == "clock") &&
                             next_nonspace(joined.text, offset + token.size()) == '(' &&
                             !is_member_access(joined.text, offset);
      if (always || call_only)
        add_finding(file, out, id(), joined.line_of(offset),
                    "wall-clock primitive '" + std::string(token) +
                        "' on a simulation path — use util::SimTime from the scheduler");
    });
  }
};

// ---------------------------------------------------------------------------
// determinism-unordered-iteration

class UnorderedIterationRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override {
    return "determinism-unordered-iteration";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "iteration over std::unordered_* observes implementation-defined order";
  }
  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 4> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
    const JoinedCode joined(file.lexed);
    const std::string& text = joined.text;

    // Pass 1: collect names of variables/members declared with an
    // unordered container type (template argument list skipped by <>
    // depth). Members are typically declared in the companion header and
    // iterated in the .cpp, so both code views contribute declarations.
    std::vector<std::string> tracked;
    const auto collect_declarations = [&tracked](const std::string& code) {
      for_each_identifier(code, [&](std::string_view token, std::size_t offset) {
        if (std::find(kUnordered.begin(), kUnordered.end(), token) == kUnordered.end()) return;
        std::size_t i = offset + token.size();
        while (i < code.size() && is_space(code[i])) ++i;
        if (i >= code.size() || code[i] != '<') return;  // e.g. an #include token
        int depth = 0;
        for (; i < code.size(); ++i) {
          if (code[i] == '<') ++depth;
          if (code[i] == '>' && --depth == 0) {
            ++i;
            break;
          }
        }
        // Skip declarator decorations, then read the declared name.
        while (i < code.size() && (is_space(code[i]) || code[i] == '&' || code[i] == '*')) ++i;
        std::size_t name_start = i;
        while (i < code.size() && is_ident_char(code[i])) ++i;
        if (i > name_start) tracked.emplace_back(code.substr(name_start, i - name_start));
      });
    };
    collect_declarations(text);
    const JoinedCode companion(file.companion);
    collect_declarations(companion.text);

    // Pass 2a: explicit iterator acquisition on a tracked name.
    static constexpr std::array<std::string_view, 4> kIterFns = {"begin", "cbegin", "rbegin",
                                                                 "crbegin"};
    for_each_identifier(text, [&](std::string_view token, std::size_t offset) {
      if (std::find(kIterFns.begin(), kIterFns.end(), token) == kIterFns.end()) return;
      if (!is_member_access(text, offset)) return;
      // Identifier immediately before the `.` / `->`.
      std::size_t pos = offset;
      while (pos > 0 && is_space(text[pos - 1])) --pos;
      if (pos >= 2 && text[pos - 2] == '-' && text[pos - 1] == '>')
        pos -= 2;
      else if (pos >= 1 && text[pos - 1] == '.')
        pos -= 1;
      std::size_t name_end = pos;
      while (pos > 0 && is_ident_char(text[pos - 1])) --pos;
      const std::string name = text.substr(pos, name_end - pos);
      if (std::find(tracked.begin(), tracked.end(), name) != tracked.end())
        add_finding(file, out, id(), joined.line_of(offset),
                    "iterator over unordered container '" + name +
                        "' — order is implementation-defined; use an ordered container or "
                        "sort the results");
    });

    // Pass 2b: range-for whose range expression names a tracked container.
    for_each_identifier(text, [&](std::string_view token, std::size_t offset) {
      if (token != "for") return;
      std::size_t open = offset + token.size();
      while (open < text.size() && is_space(text[open])) ++open;
      if (open >= text.size() || text[open] != '(') return;
      const std::size_t close = matching_paren(text, open);
      if (close == std::string::npos) return;
      const std::string_view head = std::string_view(text).substr(open + 1, close - open - 1);
      // Top-level ':' (range-for separator), skipping '::' qualifiers and
      // one ':' per pending '?' (ternaries in an init-statement).
      std::size_t colon = std::string_view::npos;
      int depth = 0;
      int pending_ternary = 0;
      for (std::size_t k = 0; k < head.size(); ++k) {
        const char c = head[k];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') --depth;
        if (c == '?' && depth == 0) ++pending_ternary;
        if (c == ':' && depth == 0) {
          if ((k + 1 < head.size() && head[k + 1] == ':') || (k > 0 && head[k - 1] == ':'))
            continue;
          if (pending_ternary > 0) {
            --pending_ternary;
            continue;
          }
          colon = k;
          break;
        }
      }
      if (colon == std::string_view::npos) return;
      const std::string_view range = head.substr(colon + 1);
      for (const std::string& name : tracked) {
        if (contains_word(range, name)) {
          add_finding(file, out, id(), joined.line_of(offset),
                      "range-for over unordered container '" + name +
                          "' — order is implementation-defined; use an ordered container or "
                          "sort the results");
          break;
        }
      }
    });
  }
};

// ---------------------------------------------------------------------------
// alloc-naked-new

class AllocNakedNewRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "alloc-naked-new"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "naked new/delete/malloc on simulation paths; use util::Slab / ObjectPool";
  }
  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 6> kCallBanned = {
        "malloc", "calloc", "realloc", "aligned_alloc", "posix_memalign", "strdup"};
    const JoinedCode joined(file.lexed);
    const std::string& text = joined.text;
    for_each_identifier(text, [&](std::string_view token, std::size_t offset) {
      // Preprocessor lines never allocate: `#include <new>` is not a call,
      // and a #define with an allocation expands at (scanned) use sites.
      if (joined.on_preprocessor_line(offset)) return;
      const char prev = prev_nonspace(text, offset);
      if (token == "new" || token == "delete") {
        // `= delete` declarations and operator new/delete definitions
        // (that is what an allocator layer is) are fine; `p = new X` is not.
        if (token == "delete" && prev == '=') return;
        const std::size_t before = offset >= 16 ? offset - 16 : 0;
        if (std::string_view(text).substr(before, offset - before).find("operator") !=
            std::string_view::npos)
          return;
        add_finding(file, out, id(), joined.line_of(offset),
                    "naked '" + std::string(token) +
                        "' on a simulation path — allocate from util::Slab / util::ObjectPool "
                        "or an owning container");
        return;
      }
      const bool banned_call = std::find(kCallBanned.begin(), kCallBanned.end(), token) !=
                               kCallBanned.end();
      const bool is_free_call = token == "free" && !is_member_access(text, offset);
      if ((banned_call || is_free_call) &&
          next_nonspace(text, offset + token.size()) == '(') {
        add_finding(file, out, id(), joined.line_of(offset),
                    "libc heap call '" + std::string(token) +
                        "' on a simulation path — allocate from util::Slab / util::ObjectPool");
      }
    });
  }
};

// ---------------------------------------------------------------------------
// macro-side-effect

class MacroSideEffectRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "macro-side-effect"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "side effects inside NDNP_INVARIANT_CHECK / NDNP_TRACE_EVENT argument lists";
  }
  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 3> kMacros = {
        "NDNP_INVARIANT_CHECK", "NDNP_TRACE_EVENT", "NDNP_TRACE_SCOPE"};
    const JoinedCode joined(file.lexed);
    const std::string& text = joined.text;
    for_each_identifier(text, [&](std::string_view token, std::size_t offset) {
      if (std::find(kMacros.begin(), kMacros.end(), token) == kMacros.end()) return;
      if (joined.on_preprocessor_line(offset)) return;  // the #define itself
      std::size_t open = offset + token.size();
      while (open < text.size() && is_space(text[open])) ++open;
      if (open >= text.size() || text[open] != '(') return;
      const std::size_t close = matching_paren(text, open);
      if (close == std::string::npos) return;
      const std::string_view args = std::string_view(text).substr(open + 1, close - open - 1);
      std::size_t bad = std::string_view::npos;
      std::string what;
      for (std::size_t k = 0; k + 1 <= args.size() && bad == std::string_view::npos; ++k) {
        const char c = args[k];
        const char next = k + 1 < args.size() ? args[k + 1] : '\0';
        if ((c == '+' && next == '+') || (c == '-' && next == '-')) {
          bad = k;
          what = c == '+' ? "'++'" : "'--'";
        } else if (c == '=' && next != '=') {
          const char before = k > 0 ? args[k - 1] : '\0';
          if (before == '=' || before == '<' || before == '>' || before == '!') continue;
          bad = k;
          if (before == '+' || before == '-' || before == '*' || before == '/' ||
              before == '%' || before == '&' || before == '|' || before == '^') {
            what = std::string("'") + before + "='";
          } else {
            what = "assignment";
          }
        }
      }
      if (bad != std::string_view::npos)
        add_finding(file, out, id(), joined.line_of(open + 1 + bad),
                    std::string(token) + " argument contains " + what +
                        " — the macro compiles out under -DNDNP_INVARIANT=0 / "
                        "-DNDNP_TRACING=0, so side effects change behavior between builds");
    });
  }
};

// ---------------------------------------------------------------------------
// header-pragma-once

class HeaderPragmaOnceRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "header-pragma-once"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "headers must carry #pragma once";
  }
  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.is_header) return;
    for (const LexedLine& line : file.lexed.lines) {
      if (!line.preprocessor) continue;
      const std::string t = trimmed(line.code);
      if (t.rfind("#", 0) == 0 && t.find("pragma") != std::string::npos &&
          contains_word(t, "once"))
        return;
    }
    add_finding(file, out, id(), 1, "header is missing '#pragma once'");
  }
};

// ---------------------------------------------------------------------------
// header-using-namespace

class HeaderUsingNamespaceRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const noexcept override { return "header-using-namespace"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "using-namespace directives in headers leak into every includer";
  }
  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.is_header) return;
    const JoinedCode joined(file.lexed);
    const std::string& text = joined.text;
    for_each_identifier(text, [&](std::string_view token, std::size_t offset) {
      if (token != "using") return;
      std::size_t i = offset + token.size();
      while (i < text.size() && is_space(text[i])) ++i;
      const std::size_t ns_start = i;
      while (i < text.size() && is_ident_char(text[i])) ++i;
      if (std::string_view(text).substr(ns_start, i - ns_start) == "namespace")
        add_finding(file, out, id(), joined.line_of(offset),
                    "'using namespace' in a header — qualify names or alias instead");
    });
  }
};

}  // namespace

std::vector<std::shared_ptr<const Rule>> make_default_rules() {
  std::vector<std::shared_ptr<const Rule>> rules;
  rules.push_back(std::make_shared<AllocNakedNewRule>());
  rules.push_back(std::make_shared<DeterminismRandRule>());
  rules.push_back(std::make_shared<UnorderedIterationRule>());
  rules.push_back(std::make_shared<DeterminismWallclockRule>());
  rules.push_back(std::make_shared<HeaderPragmaOnceRule>());
  rules.push_back(std::make_shared<HeaderUsingNamespaceRule>());
  rules.push_back(std::make_shared<MacroSideEffectRule>());
  return rules;
}

}  // namespace ndnp::lint
