#include "attack/conversation.hpp"

#include <optional>
#include <string>

#include "core/name_privacy.hpp"
#include "sim/apps.hpp"
#include "sim/forwarder.hpp"
#include "util/rng.hpp"

namespace ndnp::attack {

namespace {

using namespace ndnp::sim;

/// One trial's network: Alice (and the adversary) adjacent to router R;
/// Bob behind a WAN hop at router X. Each party is a producer of its own
/// call frames and a consumer of the peer's.
struct ConversationNet {
  Scheduler sched;
  std::optional<Forwarder> r;  // shared first-hop router (probed)
  std::optional<Forwarder> x;  // Bob's side router
  std::optional<Producer> alice_p;
  std::optional<Producer> bob_p;
  std::optional<Consumer> alice_c;
  std::optional<Consumer> bob_c;
  std::optional<Consumer> adversary;

  explicit ConversationNet(std::uint64_t seed) {
    ForwarderConfig rcfg;
    rcfg.cs_capacity = 0;
    rcfg.seed = seed;
    r.emplace(sched, "R", rcfg);
    x.emplace(sched, "X", rcfg);

    ProducerConfig pcfg;
    pcfg.auto_generate = false;  // calls are exact published frames
    alice_p.emplace(sched, "alice", ndn::Name("/alice"), "alice-key", pcfg, seed + 1);
    bob_p.emplace(sched, "bob", ndn::Name("/bob"), "bob-key", pcfg, seed + 2);
    alice_c.emplace(sched, "alice-c", seed + 3);
    bob_c.emplace(sched, "bob-c", seed + 4);
    adversary.emplace(sched, "eve", seed + 5);

    const LinkConfig lan = lan_link(0.5, 0.05);
    const LinkConfig wan = wan_link(3.0, 0.3, 0.5);
    connect(*alice_p, *r, lan);
    connect(*alice_c, *r, lan);
    connect(*adversary, *r, lan);
    const auto [r_to_x, x_to_r] = connect(*r, *x, wan);
    connect(*bob_p, *x, lan);
    connect(*bob_c, *x, lan);

    // Routes: /alice lives behind R's face 0 (alice_p was connected
    // first); /bob behind X.
    r->add_route(ndn::Name("/alice"), 0);
    r->add_route(ndn::Name("/bob"), r_to_x);
    x->add_route(ndn::Name("/alice"), x_to_r);
    x->add_route(ndn::Name("/bob"), 1);  // bob_p is X's second face (index 1)
  }
};

/// Fetch with a deadline; nullopt = timed out.
std::optional<util::SimDuration> fetch_or_timeout(Consumer& consumer, Scheduler& sched,
                                                  const ndn::Name& name,
                                                  util::SimDuration timeout) {
  std::optional<util::SimDuration> rtt;
  bool done = false;
  ndn::Interest interest;
  interest.name = name;
  consumer.express_interest(
      interest,
      [&](const ndn::Data&, util::SimDuration r) {
        rtt = r;
        done = true;
      },
      0, timeout, [&done](const ndn::Interest&) { done = true; });
  while (!done && sched.run_one()) {
  }
  return rtt;
}

}  // namespace

ConversationAttackResult run_conversation_attack(const ConversationAttackConfig& config) {
  util::Rng coin(config.seed ^ 0x2545f4914f6cdd1dULL);
  std::size_t positives = 0;
  std::size_t detections = 0;
  std::size_t false_alarms = 0;
  std::size_t correct = 0;
  const util::SimDuration probe_timeout = util::millis(200);

  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    ConversationNet net(config.seed + trial * 101);
    Scheduler& sched = net.sched;

    // Per-direction sessions; in protected mode frames carry PRF-derived
    // rand components and are exact-match-only.
    const std::string secret = "alice-bob-shared-" + std::to_string(trial);
    const core::UnpredictableNameSession a_to_b(ndn::Name("/alice/call"), secret, "a2b");
    const core::UnpredictableNameSession b_to_a(ndn::Name("/bob/call"), secret, "b2a");

    const auto frame_name = [&](bool from_alice, std::uint64_t seq) {
      if (config.unpredictable_names)
        return (from_alice ? a_to_b : b_to_a).name_for(seq);
      return ndn::Name(from_alice ? "/alice/call" : "/bob/call").append_number(seq);
    };
    const auto publish_frame = [&](bool from_alice, std::uint64_t seq) {
      Producer& producer = from_alice ? *net.alice_p : *net.bob_p;
      if (config.unpredictable_names) {
        producer.publish((from_alice ? a_to_b : b_to_a)
                             .data_for(seq, "frame", from_alice ? "alice" : "bob",
                                       from_alice ? "alice-key" : "bob-key"));
      } else {
        producer.publish(ndn::make_data(frame_name(from_alice, seq), "frame",
                                        from_alice ? "alice" : "bob",
                                        from_alice ? "alice-key" : "bob-key"));
      }
    };

    // Both parties always have (possibly old) frames published, plus
    // calibration content: data coming back does not by itself imply a
    // recent call — only the cache timing does.
    for (std::uint64_t seq = 0; seq < config.frames; ++seq) {
      publish_frame(true, seq);
      publish_frame(false, seq);
    }
    net.alice_p->publish(ndn::make_data(ndn::Name("/alice/calib/0"), "c", "alice", "alice-key"));
    net.bob_p->publish(ndn::make_data(ndn::Name("/bob/calib/0"), "c", "bob", "bob-key"));

    // Adversary calibration: miss then hit RTT toward each party.
    const auto calibrate = [&](const ndn::Name& name) {
      const auto miss = fetch_or_timeout(*net.adversary, sched, name, probe_timeout);
      const auto hit = fetch_or_timeout(*net.adversary, sched, name, probe_timeout);
      return (miss && hit) ? (*miss + *hit) / 2 : probe_timeout;
    };
    const util::SimDuration thr_alice = calibrate(ndn::Name("/alice/calib/0"));
    const util::SimDuration thr_bob = calibrate(ndn::Name("/bob/calib/0"));

    // The call happens with probability 1/2: each party fetches the
    // peer's frames, caching them at R along the way.
    const bool call = coin.bernoulli(0.5);
    if (call) {
      ++positives;
      for (std::uint64_t seq = 0; seq < config.frames; ++seq) {
        (void)fetch_or_timeout(*net.bob_c, sched, frame_name(true, seq), probe_timeout);
        (void)fetch_or_timeout(*net.alice_c, sched, frame_name(false, seq), probe_timeout);
      }
    }

    // Probe: one prefix interest per direction; "ongoing" iff either comes
    // back faster than the calibrated midpoint.
    const auto rtt_alice =
        fetch_or_timeout(*net.adversary, sched, ndn::Name("/alice/call"), probe_timeout);
    const auto rtt_bob =
        fetch_or_timeout(*net.adversary, sched, ndn::Name("/bob/call"), probe_timeout);
    const bool verdict =
        (rtt_alice && *rtt_alice <= thr_alice) || (rtt_bob && *rtt_bob <= thr_bob);

    if (verdict && call) ++detections;
    if (verdict && !call) ++false_alarms;
    if (verdict == call) ++correct;
  }

  ConversationAttackResult result;
  const std::size_t negatives = config.trials - positives;
  result.detection_rate =
      positives == 0 ? 0.0 : static_cast<double>(detections) / static_cast<double>(positives);
  result.false_alarm_rate =
      negatives == 0 ? 0.0
                     : static_cast<double>(false_alarms) / static_cast<double>(negatives);
  result.accuracy = static_cast<double>(correct) / static_cast<double>(config.trials);
  return result;
}

}  // namespace ndnp::attack
