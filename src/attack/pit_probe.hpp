// PIT-collapse side channel (extension beyond the paper).
//
// The paper's countermeasures guard the Content Store, but NDN's Pending
// Interest Table leaks too: if the victim's interest for C is still
// outstanding at the shared router R when the adversary probes the same
// name, R *collapses* the probe onto the pending entry and the adversary
// receives Data after only the residual upstream delay — measurably less
// than a full fetch. The adversary thus detects an in-flight request in
// real time, a strictly stronger signal than "recently cached".
//
// Crucially, every CS-side policy (Always-Delay, Random-Cache) is blind to
// this: collapsing happens on the miss path *before* the content exists in
// the cache. The run function therefore accepts an optional router policy
// to demonstrate that only the unpredictable-name countermeasure (which
// denies the adversary the name itself) closes the channel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/policy.hpp"

namespace ndnp::attack {

struct PitProbeConfig {
  std::size_t trials = 100;
  /// CS privacy policy at R (null = NoPrivacy). The attack succeeds
  /// regardless — that is the point.
  std::function<std::unique_ptr<core::CachePrivacyPolicy>()> router_policy;
  /// Enable the PIT-side countermeasure at R (ForwarderConfig::
  /// pad_collapsed_private): collapsed private interests are delayed to
  /// full-fetch latency, closing the channel.
  bool pad_collapsed_private = false;
  std::uint64_t seed = 3;
};

struct PitProbeResult {
  double detection_rate = 0.0;
  double false_alarm_rate = 0.0;
  double accuracy = 0.0;
};

/// Play the in-flight-detection game: per trial the victim requests a
/// far-away content with probability 1/2, and the adversary probes the
/// same name a fraction of an RTT later, deciding "in flight" iff its
/// measured delay undercuts the calibrated full-fetch RTT.
[[nodiscard]] PitProbeResult run_pit_collapse_attack(const PitProbeConfig& config);

}  // namespace ndnp::attack
