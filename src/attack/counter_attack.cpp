#include "attack/counter_attack.hpp"

#include <stdexcept>

#include "core/engine.hpp"
#include "core/policies.hpp"

namespace ndnp::attack {

CounterAttackResult run_naive_counter_attack(std::int64_t k, std::int64_t prior_requests) {
  if (k < 0 || prior_requests < 0)
    throw std::invalid_argument("run_naive_counter_attack: negative arguments");

  core::CachePrivacyEngine engine(/*cache_capacity=*/0, cache::EvictionPolicy::kLru,
                                  std::make_unique<core::NaiveThresholdPolicy>(k));

  const ndn::Name target("/victim/secret/document");
  const util::SimDuration kFetchDelay = util::millis(20);
  const core::CachePrivacyEngine::FetchFn fetch = [kFetchDelay](const ndn::Interest& interest) {
    // Producer-marked private content: the naive scheme applies.
    return std::pair{ndn::make_data(interest.name, "payload", "victim-producer", "key",
                                    /*producer_private=*/true),
                     kFetchDelay};
  };

  ndn::Interest interest;
  interest.name = target;
  interest.private_req = true;

  util::SimTime now = 0;
  for (std::int64_t i = 0; i < prior_requests; ++i) {
    (void)engine.handle(interest, now, fetch);
    now += util::millis(1);
  }

  // Adversary: probe until the response is instantaneous (exposed hit).
  // It observes only delays — an exposed hit is the unique zero-delay
  // outcome, everything else looks like an upstream fetch.
  CounterAttackResult result;
  while (true) {
    ++result.probes_used;
    const core::RequestOutcome outcome = engine.handle(interest, now, fetch);
    now += util::millis(1);
    if (outcome.response_delay == 0) break;
    if (result.probes_used > k + 2)
      throw std::logic_error("run_naive_counter_attack: oracle failed to open");
  }

  // With x prior requests (x <= k), the first exposed hit happens on probe
  // j* = k - x + 2 (the insertion request does not increment the counter),
  // so x = k + 2 - j*. A first-probe hit means x > k: saturated.
  result.inferred_prior_requests = k + 2 - result.probes_used;
  if (result.probes_used == 1) result.inferred_prior_requests = k + 1;
  return result;
}

}  // namespace ndnp::attack
