// Conversation detection (Section I): "a combination of these two attacks
// can be used to learn whether two parties (Alice and Bob) have been
// recently, or still are, involved in a two-way interactive communication,
// e.g., voice or SSH."
//
// Alice and Bob exchange per-direction frame streams through a router the
// adversary shares. With predictable names (/alice/call/<seq>), a single
// *prefix* interest from the adversary matches ANY cached frame of the
// stream — no timing measurement needed, the cache itself answers. The
// Section V-A countermeasure (unpredictable names, exact-match-only
// content) removes exactly this oracle: the adversary can neither guess a
// name nor get prefix matches, and detection collapses to coin flipping.
#pragma once

#include <cstdint>

namespace ndnp::attack {

struct ConversationAttackConfig {
  std::size_t trials = 100;
  /// Frames each party produces per trial while the call is active.
  std::size_t frames = 30;
  /// Whether Alice and Bob protect the session with unpredictable names.
  bool unpredictable_names = false;
  std::uint64_t seed = 17;
};

struct ConversationAttackResult {
  /// Pr[verdict "call ongoing" | a call happened].
  double detection_rate = 0.0;
  /// Pr[verdict "call ongoing" | no call].
  double false_alarm_rate = 0.0;
  /// Overall accuracy under a balanced prior.
  double accuracy = 0.0;
};

/// Run the detection game: per trial Alice and Bob hold a call with
/// probability 1/2; the adversary then probes both parties' call prefixes
/// through the shared router and declares "ongoing" iff any probe returns
/// quickly from the cache.
[[nodiscard]] ConversationAttackResult run_conversation_attack(
    const ConversationAttackConfig& config);

}  // namespace ndnp::attack
