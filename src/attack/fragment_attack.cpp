#include "attack/fragment_attack.hpp"

#include <optional>
#include <stdexcept>

#include "util/stats.hpp"

namespace ndnp::attack {

namespace {

util::SimDuration fetch_blocking(sim::Consumer& consumer, sim::Scheduler& scheduler,
                                 const ndn::Name& name) {
  std::optional<util::SimDuration> rtt;
  consumer.fetch(name, [&rtt](const ndn::Data&, util::SimDuration r) { rtt = r; });
  while (!rtt && scheduler.run_one()) {
  }
  if (!rtt)
    throw std::runtime_error("fragment_attack: fetch of " + name.to_uri() +
                             " never completed");
  return *rtt;
}

}  // namespace

FragmentAttackResult run_fragment_attack(const FragmentAttackConfig& config) {
  if (!config.scenario_params)
    throw std::invalid_argument("run_fragment_attack: scenario_params is required");
  if (config.n_fragments == 0 || config.trials == 0 || config.calibration_probes == 0)
    throw std::invalid_argument("run_fragment_attack: bad configuration");

  util::Rng coin(config.seed ^ 0x5bd1e995ULL);
  std::size_t detections = 0;
  std::size_t false_alarms = 0;
  std::size_t positives = 0;  // trials where the victim requested
  std::size_t correct_trials = 0;
  std::size_t fragment_probes = 0;
  std::size_t fragment_correct = 0;

  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    const auto scenario =
        sim::make_probe_scenario(config.scenario_params(config.seed + trial));
    sim::Scheduler& scheduler = scenario->topology.scheduler();
    const ndn::Name base =
        scenario->producer->prefix().append("t" + std::to_string(trial));

    // Calibration: double-fetch throwaway content. First fetches sample
    // the miss reference, second fetches the hit reference; the decision
    // threshold is the midpoint of the two means.
    util::Welford miss_refs;
    util::Welford hit_refs;
    for (std::size_t i = 0; i < config.calibration_probes; ++i) {
      const ndn::Name calib = base.append("calib" + std::to_string(i));
      miss_refs.add(util::to_millis(fetch_blocking(*scenario->adversary, scheduler, calib)));
      hit_refs.add(util::to_millis(fetch_blocking(*scenario->adversary, scheduler, calib)));
    }
    const double threshold_ms = 0.5 * (miss_refs.mean() + hit_refs.mean());

    // Victim side: with probability 1/2, U fetches all fragments of the
    // target content (as a real consumer downloading the file would).
    const ndn::Name content = base.append("video.avi");
    const bool requested = coin.bernoulli(0.5);
    if (requested) {
      ++positives;
      for (std::size_t f = 0; f < config.n_fragments; ++f)
        (void)fetch_blocking(*scenario->user, scheduler, content.append_number(f));
    }

    // Adversary: one probe per fragment (each probe is one-shot — it
    // caches the fragment at R). All fragments share the ground truth, so
    // the mean RTT is the sufficient statistic; averaging shrinks jitter
    // by sqrt(n).
    double rtt_sum_ms = 0.0;
    for (std::size_t f = 0; f < config.n_fragments; ++f) {
      const double rtt_ms = util::to_millis(
          fetch_blocking(*scenario->adversary, scheduler, content.append_number(f)));
      rtt_sum_ms += rtt_ms;
      // Bookkeeping for the paper's single-object success probability p.
      ++fragment_probes;
      if ((rtt_ms <= threshold_ms) == requested) ++fragment_correct;
    }
    const bool verdict = rtt_sum_ms / static_cast<double>(config.n_fragments) <= threshold_ms;

    if (verdict && requested) ++detections;
    if (verdict && !requested) ++false_alarms;
    if (verdict == requested) ++correct_trials;
  }

  FragmentAttackResult result;
  const std::size_t negatives = config.trials - positives;
  result.detection_rate =
      positives == 0 ? 0.0 : static_cast<double>(detections) / static_cast<double>(positives);
  result.false_alarm_rate =
      negatives == 0 ? 0.0
                     : static_cast<double>(false_alarms) / static_cast<double>(negatives);
  result.accuracy =
      static_cast<double>(correct_trials) / static_cast<double>(config.trials);
  result.per_object_accuracy =
      static_cast<double>(fragment_correct) / static_cast<double>(fragment_probes);
  result.analytic_success =
      util::amplified_success(result.per_object_accuracy, config.n_fragments);
  return result;
}

}  // namespace ndnp::attack
