#include "attack/pit_probe.hpp"

#include <optional>

#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace ndnp::attack {

namespace {

util::SimDuration fetch_blocking(sim::Consumer& consumer, sim::Scheduler& scheduler,
                                 const ndn::Name& name) {
  std::optional<util::SimDuration> rtt;
  consumer.fetch(name, [&rtt](const ndn::Data&, util::SimDuration r) { rtt = r; });
  while (!rtt && scheduler.run_one()) {
  }
  return rtt.value_or(0);
}

/// Far-away producer so requests stay in flight long enough to probe.
sim::ScenarioParams pit_probe_scenario(std::uint64_t seed,
                                       const PitProbeConfig& config) {
  sim::ScenarioParams params = sim::lan_scenario_params(seed);
  params.core_link = sim::wan_link(/*latency_ms=*/25.0, /*jitter_median_ms=*/0.5,
                                   /*jitter_sigma=*/0.4);
  params.core_hops = 1;  // P one (slow) hop past R: no upstream caches
  if (config.router_policy) params.router_policy = config.router_policy;
  params.router_config.pad_collapsed_private = config.pad_collapsed_private;
  params.producer_config.mark_private = true;
  return params;
}

}  // namespace

PitProbeResult run_pit_collapse_attack(const PitProbeConfig& config) {
  util::Rng coin(config.seed ^ 0xa0761d6478bd642fULL);
  std::size_t positives = 0;
  std::size_t detections = 0;
  std::size_t false_alarms = 0;
  std::size_t correct = 0;

  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    const auto scenario =
        sim::make_probe_scenario(pit_probe_scenario(config.seed + trial, config));
    sim::Scheduler& sched = scenario->topology.scheduler();
    const ndn::Name base = scenario->producer->prefix().append("t" + std::to_string(trial));

    // Calibrate the full-fetch RTT on a throwaway name.
    const double full_ms =
        util::to_millis(fetch_blocking(*scenario->adversary, sched, base.append("calib")));

    // Victim requests the target with probability 1/2; the adversary
    // probes the same name ~20% of an RTT later — well before any Data
    // could have arrived.
    const ndn::Name target = base.append("target");
    const bool requested = coin.bernoulli(0.5);
    const util::SimDuration probe_offset =
        static_cast<util::SimDuration>(0.2 * full_ms * 1e6);

    std::optional<util::SimDuration> victim_rtt;
    if (requested) {
      ++positives;
      scenario->user->fetch(target, [&victim_rtt](const ndn::Data&, util::SimDuration r) {
        victim_rtt = r;
      });
    }
    sched.run_until(sched.now() + probe_offset);
    const double probe_ms =
        util::to_millis(fetch_blocking(*scenario->adversary, sched, target));

    // In-flight collapse returns after the residual delay (~80% of the
    // RTT); a genuine miss costs the full RTT. Split the difference.
    const bool verdict = probe_ms < 0.9 * full_ms;
    if (verdict && requested) ++detections;
    if (verdict && !requested) ++false_alarms;
    if (verdict == requested) ++correct;
  }

  PitProbeResult result;
  const std::size_t negatives = config.trials - positives;
  result.detection_rate =
      positives == 0 ? 0.0 : static_cast<double>(detections) / static_cast<double>(positives);
  result.false_alarm_rate =
      negatives == 0 ? 0.0
                     : static_cast<double>(false_alarms) / static_cast<double>(negatives);
  result.accuracy = static_cast<double>(correct) / static_cast<double>(config.trials);
  return result;
}

}  // namespace ndnp::attack
