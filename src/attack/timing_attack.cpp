#include "attack/timing_attack.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "util/tracing.hpp"

namespace ndnp::attack {

namespace {

/// Express an interest and run the scheduler until its Data arrives.
/// Returns the measured RTT.
util::SimDuration fetch_blocking(sim::Consumer& consumer, sim::Scheduler& scheduler,
                                 const ndn::Name& name) {
  std::optional<util::SimDuration> rtt;
  consumer.fetch(name, [&rtt](const ndn::Data&, util::SimDuration r) { rtt = r; });
  while (!rtt && scheduler.run_one()) {
  }
  if (!rtt)
    throw std::runtime_error("timing_attack: fetch of " + name.to_uri() + " never completed");
  return *rtt;
}

}  // namespace

std::pair<double, double> best_threshold(const util::SampleSet& low,
                                         const util::SampleSet& high) {
  if (low.empty() || high.empty())
    throw std::invalid_argument("best_threshold: need samples on both sides");
  // Candidate thresholds: every observed value. O(n log n).
  std::vector<double> all;
  all.reserve(low.size() + high.size());
  all.insert(all.end(), low.samples().begin(), low.samples().end());
  all.insert(all.end(), high.samples().begin(), high.samples().end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  std::vector<double> lo_sorted = low.samples();
  std::vector<double> hi_sorted = high.samples();
  std::sort(lo_sorted.begin(), lo_sorted.end());
  std::sort(hi_sorted.begin(), hi_sorted.end());

  const auto total = static_cast<double>(low.size() + high.size());
  double best_thr = all.front();
  double best_acc = 0.0;
  for (const double thr : all) {
    // Classify x < thr as "low"; count correct on both sides.
    const auto lo_correct = static_cast<double>(
        std::lower_bound(lo_sorted.begin(), lo_sorted.end(), thr) - lo_sorted.begin());
    const auto hi_correct = static_cast<double>(
        hi_sorted.end() - std::lower_bound(hi_sorted.begin(), hi_sorted.end(), thr));
    const double acc = (lo_correct + hi_correct) / total;
    if (acc > best_acc) {
      best_acc = acc;
      best_thr = thr;
    }
  }
  return {best_thr, best_acc};
}

TimingAttackResult run_timing_attack(const TimingAttackConfig& config) {
  if (!config.scenario_params)
    throw std::invalid_argument("run_timing_attack: scenario_params is required");

  TimingAttackResult result;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    // Fresh scenario per trial: the paper restarts every run with an empty
    // cache at R.
    const auto scenario =
        sim::make_probe_scenario(config.scenario_params(config.seed + trial));
    sim::Scheduler& scheduler = scenario->topology.scheduler();
    const ndn::Name base =
        scenario->producer->prefix().append("t" + std::to_string(trial));

    for (std::size_t i = 0; i < config.contents_per_trial; ++i) {
      const ndn::Name cached_name = base.append("hit" + std::to_string(i));
      const ndn::Name fresh_name = base.append("miss" + std::to_string(i));
      if (config.producer_mode) {
        // Figure 3(c): probe the same content twice. The first fetch finds
        // it uncached (miss sample); the second finds it at R (hit sample).
        const util::SimDuration miss_rtt =
            fetch_blocking(*scenario->adversary, scheduler, fresh_name);
        NDNP_TRACE_EVENT(util::TraceEventType::kAttackProbe, scenario->adversary->name(),
                         scheduler.now(), fresh_name.to_uri(), "truth=miss", -1, miss_rtt,
                         static_cast<std::int64_t>(result.miss_rtts_ms.size()));
        result.miss_rtts_ms.add(util::to_millis(miss_rtt));
        const util::SimDuration hit_rtt =
            fetch_blocking(*scenario->adversary, scheduler, fresh_name);
        NDNP_TRACE_EVENT(util::TraceEventType::kAttackProbe, scenario->adversary->name(),
                         scheduler.now(), fresh_name.to_uri(), "truth=hit", -1, hit_rtt,
                         static_cast<std::int64_t>(result.hit_rtts_ms.size()));
        result.hit_rtts_ms.add(util::to_millis(hit_rtt));
      } else {
        // Figures 3(a,b,d): victim U fetches first, caching at R; the
        // adversary then probes that content (hit) and a fresh one (miss).
        (void)fetch_blocking(*scenario->user, scheduler, cached_name);
        const util::SimDuration hit_rtt =
            fetch_blocking(*scenario->adversary, scheduler, cached_name);
        NDNP_TRACE_EVENT(util::TraceEventType::kAttackProbe, scenario->adversary->name(),
                         scheduler.now(), cached_name.to_uri(), "truth=hit", -1, hit_rtt,
                         static_cast<std::int64_t>(result.hit_rtts_ms.size()));
        result.hit_rtts_ms.add(util::to_millis(hit_rtt));
        const util::SimDuration miss_rtt =
            fetch_blocking(*scenario->adversary, scheduler, fresh_name);
        NDNP_TRACE_EVENT(util::TraceEventType::kAttackProbe, scenario->adversary->name(),
                         scheduler.now(), fresh_name.to_uri(), "truth=miss", -1, miss_rtt,
                         static_cast<std::int64_t>(result.miss_rtts_ms.size()));
        result.miss_rtts_ms.add(util::to_millis(miss_rtt));
      }
    }
  }

  result.bayes_accuracy = util::bayes_accuracy(result.hit_rtts_ms, result.miss_rtts_ms, 64);
  const auto [thr, acc] = best_threshold(result.hit_rtts_ms, result.miss_rtts_ms);
  result.threshold_ms = thr;
  result.threshold_accuracy = acc;
  return result;
}

double run_decision_protocol(const TimingAttackConfig& config) {
  if (!config.scenario_params)
    throw std::invalid_argument("run_decision_protocol: scenario_params is required");

  util::Rng coin(config.seed ^ 0xabcdef1234567890ULL);
  std::size_t correct = 0;
  constexpr std::size_t kCalibrationProbes = 3;

  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    const auto scenario =
        sim::make_probe_scenario(config.scenario_params(config.seed + trial));
    sim::Scheduler& scheduler = scenario->topology.scheduler();
    const ndn::Name base =
        scenario->producer->prefix().append("t" + std::to_string(trial));

    // Calibration: fetch throwaway content twice; first fetch samples the
    // miss reference, second the hit reference.
    double miss_ref = 0.0;
    double hit_ref = 0.0;
    for (std::size_t i = 0; i < kCalibrationProbes; ++i) {
      const ndn::Name calib = base.append("calib" + std::to_string(i));
      miss_ref += util::to_millis(fetch_blocking(*scenario->adversary, scheduler, calib));
      hit_ref += util::to_millis(fetch_blocking(*scenario->adversary, scheduler, calib));
    }
    miss_ref /= kCalibrationProbes;
    hit_ref /= kCalibrationProbes;

    // The victim requests the target with probability 1/2, unknown to Adv.
    const ndn::Name target = base.append("target");
    const bool requested = coin.bernoulli(0.5);
    if (requested) (void)fetch_blocking(*scenario->user, scheduler, target);

    const util::SimDuration probe_rtt =
        fetch_blocking(*scenario->adversary, scheduler, target);
    const double d1 = util::to_millis(probe_rtt);
    const bool verdict = std::abs(d1 - hit_ref) < std::abs(d1 - miss_ref);
    NDNP_TRACE_EVENT(util::TraceEventType::kAttackProbe, scenario->adversary->name(),
                     scheduler.now(), target.to_uri(),
                     std::string("truth=") + (requested ? "hit" : "miss") +
                         " inferred=" + (verdict ? "hit" : "miss"),
                     -1, probe_rtt, static_cast<std::int64_t>(trial));
    if (verdict == requested) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(config.trials);
}

std::string format_timing_report(const TimingAttackResult& result, std::size_t pdf_bins) {
  char line[192];
  std::string out =
      "RTT distributions (probability density, as in the paper's PDF plots):\n";
  const auto [hit_hist, miss_hist] =
      util::SampleSet::paired_histograms(result.hit_rtts_ms, result.miss_rtts_ms, pdf_bins);
  out += util::format_pdf_table(hit_hist, miss_hist, "hit", "miss");
  out += '\n';
  std::snprintf(line, sizeof line, "hit  RTT: mean=%.3f ms  p50=%.3f  p95=%.3f  (n=%zu)\n",
                result.hit_rtts_ms.mean(), result.hit_rtts_ms.quantile(0.5),
                result.hit_rtts_ms.quantile(0.95), result.hit_rtts_ms.size());
  out += line;
  std::snprintf(line, sizeof line, "miss RTT: mean=%.3f ms  p50=%.3f  p95=%.3f  (n=%zu)\n",
                result.miss_rtts_ms.mean(), result.miss_rtts_ms.quantile(0.5),
                result.miss_rtts_ms.quantile(0.95), result.miss_rtts_ms.size());
  out += line;
  std::snprintf(line, sizeof line, "\nDistinguishing probability (Bayes-optimal): %.4f\n",
                result.bayes_accuracy);
  out += line;
  std::snprintf(line, sizeof line,
                "Single-threshold adversary: accuracy %.4f at threshold %.3f ms\n",
                result.threshold_accuracy, result.threshold_ms);
  out += line;
  return out;
}

}  // namespace ndnp::attack
