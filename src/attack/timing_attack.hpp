// Cache-probing timing attacks (Section III).
//
// The adversary measures round-trip times through its first-hop router R
// and classifies each probe as "served from R's cache" (the victim
// requested it recently) or "fetched from further away". This module runs
// the experiment the paper runs: many trials, each with a fresh cache,
// collecting the hit and miss RTT distributions, then reports how well the
// two separate — via the Bayes-optimal classifier (the paper's
// "probability of determining whether C is retrieved from R's cache") and
// via a realistic single-threshold adversary.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/topology.hpp"
#include "util/stats.hpp"

namespace ndnp::attack {

struct TimingAttackConfig {
  /// Independent trials; each starts from an empty cache (fresh scenario).
  std::size_t trials = 50;
  /// Distinct content objects probed per trial.
  std::size_t contents_per_trial = 20;
  /// Scenario factory (one of the sim::*_scenario_params figures, possibly
  /// with a countermeasure policy installed at R).
  std::function<sim::ScenarioParams(std::uint64_t seed)> scenario_params;
  /// In consumer mode the victim U fetches the content before the
  /// adversary probes (consumer privacy, Figures 3(a,b,d)); in producer
  /// mode nobody prefetches and the adversary probes the same content
  /// twice (producer privacy, Figure 3(c)).
  bool producer_mode = false;
  std::uint64_t seed = 42;
};

struct TimingAttackResult {
  util::SampleSet hit_rtts_ms;
  util::SampleSet miss_rtts_ms;

  /// Accuracy of the Bayes-optimal classifier on the empirical
  /// distributions: 1/2 + TV/2.
  double bayes_accuracy = 0.0;

  /// Best single RTT threshold (hit below, miss above) and its accuracy —
  /// what a practical adversary with a calibration phase achieves.
  double threshold_ms = 0.0;
  double threshold_accuracy = 0.0;
};

/// Collect hit/miss RTT distributions and classifier accuracies.
[[nodiscard]] TimingAttackResult run_timing_attack(const TimingAttackConfig& config);

/// End-to-end adversary protocol success rate: per trial the victim's
/// request happens with probability 1/2 (unknown to Adv); Adv calibrates
/// d_hit/d_miss references on throwaway content, probes the target once and
/// decides by nearest reference. Returns the fraction of correct verdicts.
[[nodiscard]] double run_decision_protocol(const TimingAttackConfig& config);

/// Fit the best single-threshold classifier between two sample sets
/// (exposed for reuse and tests). Returns {threshold, accuracy}: samples
/// below the threshold are classified into `low`.
[[nodiscard]] std::pair<double, double> best_threshold(const util::SampleSet& low,
                                                       const util::SampleSet& high);

/// The Figure-3 text report: the paired hit/miss PDF table, the RTT summary
/// statistics, and both classifier accuracies. Extracted from the bench
/// binaries so the golden regression vectors can lock the exact bytes at
/// fixed seeds (tests/test_golden.cpp); bench_common prints this verbatim.
[[nodiscard]] std::string format_timing_report(const TimingAttackResult& result,
                                               std::size_t pdf_bins = 24);

}  // namespace ndnp::attack
