// The (k, eps, delta)-privacy distinguishing game against Random-Cache.
//
// Definition IV.3 as an operational game: a coin picks state S_0 ("content
// never requested") or S_x ("requested x times, 1 <= x <= k"); the
// adversary probes the same content t times, observes the miss-prefix
// length, and guesses the state with the Bayes-optimal rule. The
// adversary's accuracy is bounded by 1/2 + TV(D_0, D_x)/2, which the
// theorems translate into (eps, delta) budgets — the tests and the theory-
// validation bench verify the empirical game never beats the bound.
#pragma once

#include <cstdint>

#include "core/k_distribution.hpp"

namespace ndnp::attack {

struct DistinguisherConfig {
  /// Prior honest requests in the "requested" state (1 <= x <= k of the
  /// privacy definition).
  std::int64_t x = 1;
  /// Probes per game round.
  std::int64_t t = 64;
  std::size_t rounds = 20'000;
  std::uint64_t seed = 7;
};

struct DistinguisherResult {
  /// Fraction of rounds the Bayes-optimal adversary guessed the state.
  double accuracy = 0.0;
  /// Information-theoretic ceiling: 1/2 + TV(D_0, D_x)/2 from the exact
  /// output distributions.
  double bayes_bound = 0.0;
};

/// Play the game directly against Algorithm 1 (pure algorithm level).
[[nodiscard]] DistinguisherResult run_distinguishing_game(const core::KDistribution& dist,
                                                          const DistinguisherConfig& config);

/// Play the game against a full CachePrivacyEngine running
/// RandomCachePolicy over `dist` — validates that the integrated pipeline
/// (marking, content store, engine accounting) leaks no more than the
/// bare algorithm.
[[nodiscard]] DistinguisherResult run_engine_distinguishing_game(
    const core::KDistribution& dist, const DistinguisherConfig& config);

}  // namespace ndnp::attack
