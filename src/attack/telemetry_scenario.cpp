#include "attack/telemetry_scenario.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "core/policies.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"
#include "util/tracing.hpp"

namespace ndnp::attack {

TelemetryScenarioResult run_telemetry_scenario(const TelemetryScenarioConfig& config,
                                               telemetry::TelemetryHub* hub) {
  if (config.catalogue == 0 || config.probe_targets == 0)
    throw std::invalid_argument("telemetry_scenario: catalogue and probe_targets must be > 0");
  if (config.probe_period <= 0 || config.honest_mean_gap <= 0)
    throw std::invalid_argument("telemetry_scenario: periods must be positive");
  if (config.attack_start < 0 || config.attack_start >= config.duration)
    throw std::invalid_argument("telemetry_scenario: attack_start outside the run");

  sim::ScenarioParams params = sim::lan_scenario_params(config.seed);
  // The router runs the paper's content-specific Always-Delay
  // countermeasure: private lookups on cached content are served behind an
  // artificial delay instead of at hit speed.
  params.router_policy = [] {
    return std::make_unique<core::AlwaysDelayPolicy>(core::AlwaysDelayPolicy::content_specific());
  };
  const auto scenario = sim::make_probe_scenario(params);
  sim::Scheduler& scheduler = scenario->topology.scheduler();
  if (hub != nullptr) scenario->router->arm_telemetry(hub);

  TelemetryScenarioResult result;
  result.attack_start = config.attack_start;

  // Shared depth-2 namespace: honest objects and probe targets both live
  // under /producer/web, so the prefix-bucket detectors see one stream.
  const ndn::Name base = scenario->producer->prefix().append("web");
  std::vector<ndn::Name> honest;
  honest.reserve(config.catalogue);
  for (std::size_t i = 0; i < config.catalogue; ++i)
    honest.push_back(base.append("obj" + std::to_string(i)));
  std::vector<ndn::Name> targets;
  targets.reserve(config.probe_targets);
  for (std::size_t i = 0; i < config.probe_targets; ++i)
    targets.push_back(base.append("priv" + std::to_string(i)));

  // Honest user: Zipf-popular fetches at exponential intervals, all
  // scheduled up front (the draw order fixes the arrival pattern per seed).
  util::Rng rng(config.seed ^ 0x7e1e7e1e5ca1ab1eULL);
  const util::ZipfSampler zipf(config.catalogue, config.zipf_exponent);
  sim::Consumer* user = scenario->user;
  util::SimTime t = 0;
  while (true) {
    const double gap_scale = rng.exponential(1.0);
    auto gap = static_cast<util::SimDuration>(
        static_cast<double>(config.honest_mean_gap) * gap_scale);
    if (gap < 1) gap = 1;
    t += gap;
    if (t >= config.duration) break;
    const ndn::Name& name = honest[zipf.sample(rng) - 1];
    ++result.honest_requests;
    scheduler.schedule_at(t, [&result, user, name] {
      user->fetch(name, [&result](const ndn::Data&, util::SimDuration) {
        ++result.honest_data;
      });
    });
  }

  // Adversary: fixed-cadence round-robin probe loop over the private
  // targets, starting mid-run. Probes carry the privacy bit, so the
  // countermeasure absorbs them as delayed hits once cached.
  sim::Consumer* adversary = scenario->adversary;
  std::uint64_t round = 0;
  for (util::SimTime pt = config.attack_start; pt < config.duration;
       pt += config.probe_period, ++round) {
    const ndn::Name& name = targets[round % targets.size()];
    const std::int64_t probe_round = static_cast<std::int64_t>(round);
    ++result.probes;
    scheduler.schedule_at(pt, [&result, adversary, name, probe_round] {
      ndn::Interest interest;
      interest.name = name;
      interest.nonce = adversary->make_nonce();
      interest.private_req = true;
      adversary->express_interest(
          std::move(interest),
          [&result, adversary, name, probe_round](const ndn::Data&, util::SimDuration rtt) {
            ++result.probe_data;
            NDNP_TRACE_EVENT(util::TraceEventType::kAttackProbe, adversary->name(),
                             adversary->scheduler().now(), name.to_uri(), "truth=attack", -1,
                             rtt, probe_round);
          });
    });
  }

  scheduler.run();
  result.end_time = scheduler.now();
  result.exposed_hits = scenario->router->stats().exposed_hits;
  result.delayed_hits = scenario->router->stats().delayed_hits;
  // Close out the time series: one forced row at the end of the run so the
  // exported CSV covers the tail even between cadence boundaries.
  if (hub != nullptr) hub->recorder().sample_at(result.end_time);
  return result;
}

}  // namespace ndnp::attack
