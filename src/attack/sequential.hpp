// Sequential (Wald SPRT) probing adversary.
//
// The fixed-t distinguishing game asks "how well can t probes do?"; the
// operational question for an adversary with a per-probe cost is the dual:
// "how many probes until I'm confident?" Wald's sequential probability
// ratio test probes one content repeatedly, accumulating the log-likelihood
// ratio of the observed reply under S_x vs S_0, and stops at the classic
// thresholds log(B) < LLR < log(A) with A = (1-beta)/alpha,
// B = beta/(1-alpha).
//
// The outcome is structural, and sharper than the fixed-t game shows: on a
// SINGLE content the LLR is bounded — every interior observation (any
// finite miss-run, or "still missing") has ratio exactly alpha^x for the
// exponential scheme and exactly 1 for the uniform scheme — so the test
// can never accumulate to a confident verdict. Only the one-sided events
// decide: an immediate first-probe hit (S_x only; mass 1 - alpha^x for the
// exponential scheme but just x/K for the uniform one) or an over-long
// miss-run (S_0 only). The SPRT thus turns the paper's epsilon into the
// probability that the adversary ever gets a *confident* verdict from one
// content, and shows that genuine LLR accumulation requires multiple
// correlated contents — exactly what grouping removes
// (bench_ablation_grouping).
#pragma once

#include <cstdint>

#include "core/k_distribution.hpp"

namespace ndnp::attack {

struct SprtConfig {
  /// Prior honest requests in the "requested" state.
  std::int64_t x = 1;
  /// Target error rates (false positive / false negative).
  double alpha_error = 0.05;
  double beta_error = 0.05;
  /// Probe budget cap: stop undecided after this many probes (the oracle
  /// for one content is consumed monotonically — after the miss-run ends
  /// no further information arrives, so the cap rarely binds).
  std::int64_t max_probes = 4'096;
  std::size_t rounds = 20'000;
  std::uint64_t seed = 21;
};

struct SprtResult {
  /// Fraction of rounds decided correctly (undecided counts as wrong).
  double accuracy = 0.0;
  /// Fraction of rounds that hit the probe cap undecided.
  double undecided_rate = 0.0;
  /// Mean probes spent per round (decided or not).
  double mean_probes = 0.0;
};

/// Run the sequential test against the literal Algorithm 1 with threshold
/// distribution `dist`. The adversary knows dist and x (Kerckhoffs).
[[nodiscard]] SprtResult run_sprt_attack(const core::KDistribution& dist,
                                         const SprtConfig& config);

}  // namespace ndnp::attack
