// Counter attack on the naive fixed-threshold scheme (Section VI, "A
// Non-Private Naive Approach").
//
// The naive scheme answers the first k post-insertion requests for private
// content with simulated misses, k fixed and public. An adversary who
// probes until the first exposed hit therefore learns *exactly* how many
// requests were issued before it started: the scheme provides no privacy
// at all. Randomizing k per content (Random-Cache) is precisely the fix
// the paper develops.
#pragma once

#include <cstdint>

namespace ndnp::attack {

struct CounterAttackResult {
  /// Probes the adversary needed until the first exposed hit.
  std::int64_t probes_used = 0;
  /// Recovered count of requests issued before the attack. When the true
  /// count exceeds k the oracle saturates; the attack then reports k + 1,
  /// meaning "more than k".
  std::int64_t inferred_prior_requests = 0;
};

/// Run the attack against a CachePrivacyEngine with NaiveThresholdPolicy(k)
/// after `prior_requests` honest requests for the (producer-private)
/// target content. The adversary observes only response delays.
[[nodiscard]] CounterAttackResult run_naive_counter_attack(std::int64_t k,
                                                           std::int64_t prior_requests);

}  // namespace ndnp::attack
