#include "attack/sequential.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace ndnp::attack {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Pr[miss-run >= i] under x prior requests: the run is still alive after
/// i misses iff k >= x + i - 1.
double tail_prob(const core::KDistribution& dist, std::int64_t x, std::int64_t i) {
  return dist.tail(x + i - 1);
}

/// Pr[miss-run == m] (untruncated) under x prior requests.
double run_prob(const core::KDistribution& dist, std::int64_t x, std::int64_t m) {
  if (m == 0) {
    // Immediate hit: threshold already exhausted by the priors.
    double acc = 0.0;
    for (std::int64_t k = 0; k < x; ++k) acc += dist.pmf(k);
    return acc;
  }
  return dist.pmf(x + m - 1);
}

[[nodiscard]] double log_ratio(double p1, double p0) {
  if (p1 <= 0.0 && p0 <= 0.0) return 0.0;  // observation impossible under both: no info
  if (p0 <= 0.0) return kInf;
  if (p1 <= 0.0) return -kInf;
  return std::log(p1 / p0);
}

}  // namespace

SprtResult run_sprt_attack(const core::KDistribution& dist, const SprtConfig& config) {
  if (config.x < 1) throw std::invalid_argument("run_sprt_attack: x must be >= 1");
  if (!(config.alpha_error > 0.0) || config.alpha_error >= 0.5 ||
      !(config.beta_error > 0.0) || config.beta_error >= 0.5)
    throw std::invalid_argument("run_sprt_attack: error rates must be in (0, 0.5)");
  if (config.rounds == 0 || config.max_probes < 1)
    throw std::invalid_argument("run_sprt_attack: bad configuration");

  const double log_a = std::log((1.0 - config.beta_error) / config.alpha_error);
  const double log_b = std::log(config.beta_error / (1.0 - config.alpha_error));

  util::Rng rng(config.seed);
  std::size_t correct = 0;
  std::size_t undecided = 0;
  std::uint64_t total_probes = 0;

  for (std::size_t round = 0; round < config.rounds; ++round) {
    const bool requested = rng.bernoulli(0.5);
    const std::int64_t prior = requested ? config.x : 0;

    // Literal Algorithm 1 state for one content.
    const std::int64_t k = dist.sample(rng);
    std::int64_t c = -1;
    const auto probe_is_miss = [&]() -> bool {
      if (c < 0) {
        c = 0;
        return true;
      }
      ++c;
      return c <= k;
    };
    for (std::int64_t i = 0; i < prior; ++i) (void)probe_is_miss();

    double llr = 0.0;
    int verdict = -1;  // -1 undecided, 0 not requested, 1 requested
    std::int64_t probes = 0;
    for (; probes < config.max_probes; ) {
      const bool miss = probe_is_miss();
      ++probes;
      if (miss) {
        // Censored observation: the run is still alive after `probes`
        // misses.
        llr = log_ratio(tail_prob(dist, config.x, probes), tail_prob(dist, 0, probes));
      } else {
        // The run ended at length probes-1: full information, and probing
        // further is pointless (all subsequent replies are hits under
        // both hypotheses).
        llr = log_ratio(run_prob(dist, config.x, probes - 1), run_prob(dist, 0, probes - 1));
        if (llr >= log_a)
          verdict = 1;
        else if (llr <= log_b)
          verdict = 0;
        break;
      }
      if (llr >= log_a) {
        verdict = 1;
        break;
      }
      if (llr <= log_b) {
        verdict = 0;
        break;
      }
    }
    total_probes += static_cast<std::uint64_t>(probes);
    if (verdict == -1)
      ++undecided;
    else if ((verdict == 1) == requested)
      ++correct;
  }

  SprtResult result;
  result.accuracy = static_cast<double>(correct) / static_cast<double>(config.rounds);
  result.undecided_rate = static_cast<double>(undecided) / static_cast<double>(config.rounds);
  result.mean_probes =
      static_cast<double>(total_probes) / static_cast<double>(config.rounds);
  return result;
}

}  // namespace ndnp::attack
