// Fragment-correlation amplification (Section III).
//
// Large NDN content is split into many content objects that are fetched
// together; whether ONE fragment sits in R's cache is enough to decide
// whether the whole content was requested. With per-object success
// probability p (only ~0.59 in the producer-adjacent WAN setting), probing
// n fragments amplifies the attack — the paper's idealized analysis gives
// 1 - (1-p)^n, pushing 0.59 to ~0.999 at n = 8.
//
// This module runs the attack end-to-end in the network simulator. The
// adversary averages its n per-fragment RTTs and compares the mean against
// a calibrated hit/miss midpoint: since all fragments share the same
// ground truth, averaging shrinks the path-jitter noise by sqrt(n) — the
// operational counterpart of the paper's independence argument (a naive
// per-fragment OR rule would amplify false alarms just as fast as
// detections when the distributions overlap). Both the measured amplified
// accuracy and the paper's analytic 1-(1-p)^n curve are reported.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/topology.hpp"

namespace ndnp::attack {

struct FragmentAttackConfig {
  std::size_t trials = 200;
  /// Fragments per content (the paper's example uses 8).
  std::size_t n_fragments = 8;
  /// Scenario factory (typically producer_adjacent_scenario_params).
  std::function<sim::ScenarioParams(std::uint64_t seed)> scenario_params;
  /// Calibration double-fetches per trial used to place the threshold
  /// (midpoint of the mean miss and mean hit reference RTTs).
  std::size_t calibration_probes = 25;
  std::uint64_t seed = 99;
};

struct FragmentAttackResult {
  /// Pr[attack says "requested" | victim requested the content].
  double detection_rate = 0.0;
  /// Pr[attack says "requested" | victim did not request it].
  double false_alarm_rate = 0.0;
  /// Overall per-trial accuracy of the mean-over-fragments attack
  /// (balanced prior) — the operational amplified success rate.
  double accuracy = 0.0;
  /// Single-fragment probe accuracy with the same threshold (the paper's
  /// per-object p, ~0.59 in the producer-adjacent setting).
  double per_object_accuracy = 0.0;
  /// The paper's idealized amplification 1 - (1 - p)^n evaluated at the
  /// measured per-object accuracy.
  double analytic_success = 0.0;
};

[[nodiscard]] FragmentAttackResult run_fragment_attack(const FragmentAttackConfig& config);

}  // namespace ndnp::attack
