// Non-timing cache probes (Section III).
//
// The scope probe abuses Interest.scope = 2: such an interest may traverse
// only the source and its first-hop router, so any Data coming back from a
// scope-honoring router *must* have been in that router's cache —
// a deterministic oracle, no clock needed. Routers are allowed to ignore
// the field, in which case the probe is inconclusive and the adversary
// falls back to timing.
#pragma once

#include "sim/topology.hpp"
#include "util/sim_time.hpp"

namespace ndnp::attack {

enum class ScopeProbeVerdict {
  kCached,        // data returned under scope=2: definitely in R's cache
  kNotCached,     // honoring router, no data: definitely not cached
  kInconclusive,  // router ignores scope: probe carries no information
};

[[nodiscard]] std::string_view to_string(ScopeProbeVerdict verdict) noexcept;

struct ScopeProbeResult {
  ScopeProbeVerdict verdict = ScopeProbeVerdict::kInconclusive;
  bool data_returned = false;
};

/// Detect whether the first-hop router honors scope: probe a fresh name
/// with scope=2; if Data arrives anyway the router forwarded the interest
/// and thus ignores the field. Consumes one fresh name.
[[nodiscard]] bool detect_scope_honoring(sim::ProbeScenario& scenario,
                                         const ndn::Name& fresh_name,
                                         util::SimDuration timeout = util::millis(500));

/// Probe `name` with scope=2 from the adversary. `router_honors_scope`
/// should come from detect_scope_honoring (the adversary can establish it
/// once per router).
[[nodiscard]] ScopeProbeResult run_scope_probe(sim::ProbeScenario& scenario,
                                               const ndn::Name& name, bool router_honors_scope,
                                               util::SimDuration timeout = util::millis(500));

}  // namespace ndnp::attack
