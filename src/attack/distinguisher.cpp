#include "attack/distinguisher.hpp"

#include <stdexcept>

#include "core/engine.hpp"
#include "core/indistinguishability.hpp"
#include "core/policies.hpp"

namespace ndnp::attack {

namespace {

void validate(const DistinguisherConfig& config) {
  if (config.x < 1 || config.t < 1 || config.rounds == 0)
    throw std::invalid_argument("distinguisher: bad configuration");
}

/// Bayes-optimal guess given observed miss-prefix length m: pick the state
/// whose exact distribution gives m more mass (ties -> "never requested").
[[nodiscard]] bool guess_requested(const core::DiscreteDist& d0, const core::DiscreteDist& dx,
                                   std::size_t m) {
  const double p0 = m < d0.size() ? d0[m] : 0.0;
  const double px = m < dx.size() ? dx[m] : 0.0;
  return px > p0;
}

}  // namespace

DistinguisherResult run_distinguishing_game(const core::KDistribution& dist,
                                            const DistinguisherConfig& config) {
  validate(config);
  const core::DiscreteDist d0 = core::exact_output_distribution(dist, 0, config.t);
  const core::DiscreteDist dx = core::exact_output_distribution(dist, config.x, config.t);

  util::Rng rng(config.seed);
  std::size_t correct = 0;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    const bool requested = rng.bernoulli(0.5);
    // Literal Algorithm 1 for one content.
    const std::int64_t k = dist.sample(rng);
    std::int64_t c = -1;
    const auto request_is_miss = [&]() -> bool {
      if (c < 0) {
        c = 0;
        return true;
      }
      ++c;
      return c <= k;
    };
    if (requested)
      for (std::int64_t i = 0; i < config.x; ++i) (void)request_is_miss();
    std::size_t m = 0;
    bool in_prefix = true;
    for (std::int64_t i = 0; i < config.t; ++i) {
      const bool miss = request_is_miss();
      if (miss && in_prefix)
        ++m;
      else
        in_prefix = false;
    }
    if (guess_requested(d0, dx, m) == requested) ++correct;
  }

  return {.accuracy = static_cast<double>(correct) / static_cast<double>(config.rounds),
          .bayes_bound = 0.5 + 0.5 * core::total_variation(d0, dx)};
}

DistinguisherResult run_engine_distinguishing_game(const core::KDistribution& dist,
                                                   const DistinguisherConfig& config) {
  validate(config);
  const core::DiscreteDist d0 = core::exact_output_distribution(dist, 0, config.t);
  const core::DiscreteDist dx = core::exact_output_distribution(dist, config.x, config.t);

  const util::SimDuration kFetchDelay = util::millis(25);
  const core::CachePrivacyEngine::FetchFn fetch = [kFetchDelay](const ndn::Interest& interest) {
    return std::pair{ndn::make_data(interest.name, "payload", "producer", "key",
                                    /*producer_private=*/true),
                     kFetchDelay};
  };

  util::Rng rng(config.seed);
  std::size_t correct = 0;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    // Fresh engine per round (the game is per-content; a fresh engine with
    // one content is equivalent and keeps rounds independent).
    core::CachePrivacyEngine engine(
        0, cache::EvictionPolicy::kLru,
        std::make_unique<core::RandomCachePolicy>(dist.clone(), rng.next_u64()));

    ndn::Interest interest;
    interest.name = ndn::Name("/victim/content").append_number(round);
    interest.private_req = true;

    const bool requested = rng.bernoulli(0.5);
    util::SimTime now = 0;
    if (requested)
      for (std::int64_t i = 0; i < config.x; ++i) {
        (void)engine.handle(interest, now, fetch);
        now += util::millis(1);
      }

    // Adversary observes only response delay: zero delay = exposed hit.
    std::size_t m = 0;
    bool in_prefix = true;
    for (std::int64_t i = 0; i < config.t; ++i) {
      const core::RequestOutcome outcome = engine.handle(interest, now, fetch);
      now += util::millis(1);
      const bool looks_like_miss = outcome.response_delay > 0;
      if (looks_like_miss && in_prefix)
        ++m;
      else
        in_prefix = false;
    }
    if (guess_requested(d0, dx, m) == requested) ++correct;
  }

  return {.accuracy = static_cast<double>(correct) / static_cast<double>(config.rounds),
          .bayes_bound = 0.5 + 0.5 * core::total_variation(d0, dx)};
}

}  // namespace ndnp::attack
