#include "attack/probes.hpp"

namespace ndnp::attack {

namespace {

/// Send a scope=2 interest and run until Data or the timeout deadline.
[[nodiscard]] bool probe_returns_data(sim::ProbeScenario& scenario, const ndn::Name& name,
                                      util::SimDuration timeout) {
  sim::Scheduler& scheduler = scenario.topology.scheduler();
  bool got_data = false;
  ndn::Interest interest;
  interest.name = name;
  interest.scope = 2;
  scenario.adversary->express_interest(
      interest, [&got_data](const ndn::Data&, util::SimDuration) { got_data = true; });
  const util::SimTime deadline = scheduler.now() + timeout;
  while (!got_data && scheduler.pending() > 0 && scheduler.now() < deadline)
    (void)scheduler.run_one();
  return got_data;
}

}  // namespace

std::string_view to_string(ScopeProbeVerdict verdict) noexcept {
  switch (verdict) {
    case ScopeProbeVerdict::kCached: return "cached";
    case ScopeProbeVerdict::kNotCached: return "not-cached";
    case ScopeProbeVerdict::kInconclusive: return "inconclusive";
  }
  return "?";
}

bool detect_scope_honoring(sim::ProbeScenario& scenario, const ndn::Name& fresh_name,
                           util::SimDuration timeout) {
  // A fresh name cannot be in any cache: Data can only arrive if the
  // router forwarded the scope=2 interest, i.e. ignored the field.
  return !probe_returns_data(scenario, fresh_name, timeout);
}

ScopeProbeResult run_scope_probe(sim::ProbeScenario& scenario, const ndn::Name& name,
                                 bool router_honors_scope, util::SimDuration timeout) {
  ScopeProbeResult result;
  result.data_returned = probe_returns_data(scenario, name, timeout);
  if (!router_honors_scope) {
    result.verdict = ScopeProbeVerdict::kInconclusive;
  } else {
    result.verdict =
        result.data_returned ? ScopeProbeVerdict::kCached : ScopeProbeVerdict::kNotCached;
  }
  return result;
}

}  // namespace ndnp::attack
