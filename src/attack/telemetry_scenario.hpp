// Seeded sequential-probing scenario for exercising the online telemetry
// detectors (telemetry/detectors.hpp) against labelled ground truth.
//
// One LAN topology (Figure 3(a)) whose first-hop router R runs the paper's
// content-specific Always-Delay countermeasure and carries two traffic
// classes:
//
//  * Honest user U fetches Zipf-popular objects under a shared depth-2
//    namespace at exponentially distributed intervals for the whole run —
//    Poisson-like arrivals, exposed hits once the cache warms. This is the
//    baseline the detectors must stay silent on.
//  * Adversary Adv wakes at `attack_start` and runs the Section IV
//    sequential probe loop: a small set of privately requested objects in
//    the same namespace, re-probed round-robin at a fixed machine cadence.
//    Every completed probe is recorded as an attack_probe trace event
//    (detail "truth=attack") — the ground truth the scorecard
//    (sim::telemetry_scorecard) joins telemetry_alarm events against.
//
// The probes are private, so R's countermeasure serves them as *delayed*
// hits: the delayed-hit-ratio detector sees the countermeasure absorbing
// the probe stream, the regularity detector sees the fixed cadence on
// Adv's face, and the prefix-bucket CUSUM sees the shared namespace's
// exposed-hit rate shift. tools/telemetry_tool drives this scenario and
// gates CI on the resulting recall.
#pragma once

#include <cstdint>

#include "telemetry/telemetry.hpp"
#include "util/sim_time.hpp"

namespace ndnp::attack {

struct TelemetryScenarioConfig {
  /// Honest catalogue: objects /producer/web/obj<i> with Zipf(s) popularity.
  std::size_t catalogue = 256;
  double zipf_exponent = 0.8;
  /// Mean of the honest user's exponential inter-request gap.
  util::SimDuration honest_mean_gap = util::millis(2);
  /// Total run length (honest traffic spans all of it).
  util::SimDuration duration = util::seconds(30);
  /// When the adversary's probe loop starts.
  util::SimTime attack_start = util::seconds(10);
  /// Privately requested objects the adversary cycles over.
  std::size_t probe_targets = 4;
  /// Fixed probe cadence (the machine-regular signature).
  util::SimDuration probe_period = util::millis(5);
  std::uint64_t seed = 7;
};

struct TelemetryScenarioResult {
  std::uint64_t honest_requests = 0;
  std::uint64_t honest_data = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_data = 0;
  /// Router interest dispositions, for sanity checks.
  std::uint64_t exposed_hits = 0;
  std::uint64_t delayed_hits = 0;
  util::SimTime attack_start = 0;
  util::SimTime end_time = 0;
};

/// Run the scenario. When `hub` is non-null the router's lookups feed it
/// (sim::Forwarder::arm_telemetry), so its alarms land on the tracer bound
/// to the calling thread — bind a util::Tracer first to capture both the
/// alarms and the attack_probe ground truth. Deterministic per seed.
[[nodiscard]] TelemetryScenarioResult run_telemetry_scenario(
    const TelemetryScenarioConfig& config, telemetry::TelemetryHub* hub);

}  // namespace ndnp::attack
