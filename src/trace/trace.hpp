// Request traces for the Section VII evaluation.
//
// The paper replays a 2007 IRCache/NLANR web-proxy trace (185 users,
// ~3.2 M requests) that is no longer distributed. This module provides the
// faithful substitute documented in DESIGN.md: a synthetic generator with
// the same macro-characteristics (user count, Zipf object popularity,
// session-structured arrivals over 24 h) plus a plain-text trace format
// with parser/writer so real traces can be substituted when available.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ndn/name.hpp"

namespace ndnp::trace {

struct TraceRecord {
  /// Seconds since trace start.
  double timestamp_s = 0.0;
  std::uint32_t user_id = 0;
  ndn::Name name;
  std::size_t size_bytes = 0;
};

struct Trace {
  std::vector<TraceRecord> records;
  /// Catalogue size the generator drew from (0 when parsed from a file).
  std::size_t catalogue_size = 0;

  [[nodiscard]] std::size_t size() const noexcept { return records.size(); }
  /// Count of distinct names actually appearing in the trace.
  [[nodiscard]] std::size_t distinct_names() const;
};

struct TraceGenConfig {
  /// Users in the 2007 IRCache RTP trace.
  std::size_t num_users = 185;
  /// Distinct objects in the catalogue.
  std::size_t num_objects = 100'000;
  /// Total requests (the paper's 3.2 M scaled for bench runtime; override
  /// freely).
  std::size_t num_requests = 400'000;
  /// Zipf popularity exponent; web-proxy traces classically fit 0.6-1.0.
  double zipf_exponent = 0.8;
  /// Trace duration (24 h in the original).
  double duration_s = 86'400.0;
  /// Domains objects are spread over; names look like
  /// /web/dom<d>/obj<j>, giving the namespace structure the correlation-
  /// grouping experiments need.
  std::size_t num_domains = 500;
  /// Constant object size ("without loss of generality, we assume that all
  /// content has the same size").
  std::size_t object_size = 8'192;
  /// Probability that a request re-draws from the requester's recent
  /// history instead of the global popularity distribution (LRU-stack
  /// temporal locality; 0 = pure Zipf, the default used by the paper
  /// reproduction benches).
  double temporal_locality = 0.0;
  /// Probability that a user draws from its own preferred domains instead
  /// of the global catalogue (0 = no per-user affinity).
  double user_affinity = 0.0;
  /// Per-user recent-history depth for temporal locality.
  std::size_t locality_depth = 32;
  std::uint64_t seed = 1;
};

/// Deterministically generate a synthetic proxy trace.
[[nodiscard]] Trace generate_trace(const TraceGenConfig& config);

/// Plain-text format, one request per line:
///   <timestamp_s> <user_id> <name-uri> <size_bytes>
void write_trace(const Trace& trace, std::ostream& out);
[[nodiscard]] Trace parse_trace(std::istream& in);

/// Accounting variant: malformed lines are skipped and counted into
/// `stats` (never silently dropped), failing fast once their count
/// exceeds `max_malformed` — see trace/stream.hpp (ParseOptions) for the
/// streaming counterpart. `parse_trace(in)` above is the strict historical
/// form: max_malformed 0, i.e. the first malformed line throws.
struct ParseStats;
[[nodiscard]] Trace parse_trace(std::istream& in, std::uint64_t max_malformed,
                                ParseStats* stats);

}  // namespace ndnp::trace
