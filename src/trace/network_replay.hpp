// Network-wide trace replay: the Section VII evaluation lifted from a
// single router onto a realistic multi-router deployment.
//
// Topology (a two-tier ISP tree):
//
//   users (by user_id % E) -> edge router 1..E -> core router -> producer
//
// Each trace request is issued, at its original timestamp, by the consumer
// attached to its user's edge router. Content marked private (same
// hash-based division as the single-router replayer) carries the consumer
// privacy bit. The privacy policy can be deployed nowhere, at the
// consumer-facing edge only (the paper's Section V-B suggestion), or on
// every router — quantifying the deployment question the paper defers to
// future work, including how simulated misses at the edge interact with
// an unprotected core cache.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cache/content_store.hpp"
#include "core/policy.hpp"
#include "trace/stream.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace ndnp::trace {

enum class Deployment {
  kNone,        // NoPrivacy everywhere (baseline)
  kEdgeOnly,    // policy at consumer-facing routers only
  kEverywhere,  // policy at edge and core routers
};

[[nodiscard]] std::string_view to_string(Deployment deployment) noexcept;

struct NetworkReplayConfig {
  std::size_t edge_routers = 4;
  std::size_t edge_cache = 2'000;
  std::size_t core_cache = 8'000;
  cache::EvictionPolicy eviction = cache::EvictionPolicy::kLru;
  double private_fraction = 0.2;
  Deployment deployment = Deployment::kEdgeOnly;
  /// Policy installed per the deployment; null = NoPrivacy.
  std::function<std::unique_ptr<core::CachePrivacyPolicy>()> policy_factory;
  /// Compress the trace's wall-clock span by this factor (a 24 h trace at
  /// 1000x replays in ~86 simulated seconds — inter-request order and
  /// concurrency structure are preserved).
  double time_compression = 1'000.0;
  std::uint64_t seed = 1;
};

struct NetworkReplayResult {
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  /// Exposed cache hits summed over the edge tier / at the core.
  std::uint64_t edge_hits = 0;
  std::uint64_t core_hits = 0;
  /// Interests the producer had to serve (origin load).
  std::uint64_t producer_fetches = 0;
  /// Malformed input lines the feeding TraceSource skipped (counted, never
  /// silently dropped; 0 for in-memory traces). The source itself fails
  /// fast past its ParseOptions threshold.
  std::uint64_t malformed_records = 0;
  /// Consumer-observed round-trip times, ms.
  util::SampleSet rtt_ms;

  [[nodiscard]] double edge_hit_pct() const noexcept {
    return requests == 0 ? 0.0
                         : 100.0 * static_cast<double>(edge_hits) /
                               static_cast<double>(requests);
  }
  [[nodiscard]] double core_hit_pct() const noexcept {
    return requests == 0 ? 0.0
                         : 100.0 * static_cast<double>(core_hits) /
                               static_cast<double>(requests);
  }
  [[nodiscard]] double origin_load_pct() const noexcept {
    return requests == 0 ? 0.0
                         : 100.0 * static_cast<double>(producer_fetches) /
                               static_cast<double>(requests);
  }
};

/// Replay `tr` over the two-tier network. Deterministic for a given
/// (trace, config) pair.
[[nodiscard]] NetworkReplayResult replay_over_network(const Trace& tr,
                                                      const NetworkReplayConfig& config);

/// Streaming overload: pull fixed-size chunks from `source` and interleave
/// scheduling with execution, so peak memory is bounded by `chunk_records`
/// (plus cache state) — independent of trace length. Requires records in
/// nondecreasing timestamp order (the trace formats guarantee it); throws
/// std::invalid_argument otherwise. Deterministic for a given
/// (source, config) pair and byte-identical to the in-memory overload on
/// the same records.
[[nodiscard]] NetworkReplayResult replay_over_network(TraceSource& source,
                                                      const NetworkReplayConfig& config,
                                                      std::size_t chunk_records = 64 * 1024);

}  // namespace ndnp::trace
