#include "trace/replayer.hpp"

#include <stdexcept>

#include "util/rng.hpp"
#include "util/tracing.hpp"

namespace ndnp::trace {

bool is_private_content(const ndn::Name& name, double private_fraction, std::uint64_t seed) {
  if (private_fraction <= 0.0) return false;
  if (private_fraction >= 1.0) return true;
  // One hash per content, mixed with the replay seed so different
  // experiments draw different private sets.
  util::SplitMix64 mix(name.hash64() ^ seed);
  const double u =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53;  // uniform in [0,1)
  return u < private_fraction;
}

ReplaySession::ReplaySession(const ReplayConfig& config)
    : config_(config),
      engine_(config.cache_capacity, config.eviction,
              config.policy_factory ? config.policy_factory()
                                    : throw std::invalid_argument(
                                          "replay: policy_factory is required"),
              config.seed, config.cache_admission_probability),
      rng_(config.seed ^ 0x6a09e667f3bcc909ULL),
      // The degraded-network chain draws from its own stream so that
      // enabling it never shifts the delay-spread draws above — the cache
      // state (and therefore the hit-rate columns) is identical with and
      // without loss.
      upstream_chain_(config.upstream_loss),
      loss_rng_(config.seed ^ 0xbb67ae8584caa73bULL) {
  fetch_ = [this](const ndn::Interest& interest) {
    const double spread = rng_.uniform(0.5, 1.5);
    auto delay = static_cast<util::SimDuration>(
        static_cast<double>(config_.upstream_delay) * spread);
    if (config_.upstream_loss.enabled()) {
      util::SimDuration penalty = 0;
      // Retry cap: a loss=1 chain would otherwise never deliver.
      for (int attempt = 0; attempt < 64 && upstream_chain_.sample_loss(loss_rng_);
           ++attempt) {
        ++result_.upstream_losses;
        penalty += config_.upstream_retry_penalty;
      }
      if (penalty > 0) {
        ++result_.degraded_fetches;
        delay += penalty;
      }
    }
    return std::pair{
        ndn::make_data(interest.name, std::string(64, 'x'), "origin", "origin-key"), delay};
  };
}

void ReplaySession::feed(const TraceRecord& record) {
  ndn::Interest interest;
  interest.name = record.name;
  interest.nonce = rng_.next_u64();
  interest.private_req = is_private_content(
      record.name, config_.private_fraction,
      config_.private_class_seed != 0 ? config_.private_class_seed : config_.seed);
  if (interest.private_req) ++result_.private_requests;

  const auto now = static_cast<util::SimTime>(record.timestamp_s * 1e9);
  const core::RequestOutcome outcome = engine_.handle(interest, now, fetch_);
#if NDNP_TELEMETRY
  if (config_.telemetry != nullptr) {
    // Face scope = trace user, prefix scope = depth-2 name prefix (trace
    // names are /web/dom<d>/obj<j>, so depth 2 is the domain).
    std::uint64_t prefix_hash = 0;
    std::uint64_t last = 0;
    std::size_t depth = 0;
    record.name.visit_prefix_hashes([&](std::uint64_t h) {
      if (depth == 2) prefix_hash = h;
      last = h;
      ++depth;
    });
    if (depth <= 2) prefix_hash = last;
    telemetry::LookupOutcome lookup = telemetry::LookupOutcome::kTrueMiss;
    switch (outcome.kind) {
      case core::RequestOutcome::Kind::kExposedHit:
        lookup = telemetry::LookupOutcome::kExposedHit;
        break;
      case core::RequestOutcome::Kind::kDelayedHit:
        lookup = telemetry::LookupOutcome::kDelayedHit;
        break;
      case core::RequestOutcome::Kind::kSimulatedMiss:
        lookup = telemetry::LookupOutcome::kSimulatedMiss;
        break;
      case core::RequestOutcome::Kind::kTrueMiss:
        lookup = telemetry::LookupOutcome::kTrueMiss;
        break;
    }
    config_.telemetry->on_lookup(record.user_id, prefix_hash, lookup, now);
  }
#endif
  NDNP_TRACE_EVENT(util::TraceEventType::kReplayRequest, "replayer", now,
                   record.name.to_uri(),
                   std::string("outcome=") + std::string(to_string(outcome.kind)) +
                       (interest.private_req ? " private=1" : " private=0"),
                   -1, outcome.response_delay);
  total_response_ms_ += util::to_millis(outcome.response_delay);
  ++fed_;
}

ReplayResult ReplaySession::finish() {
  result_.stats = engine_.stats();
  result_.mean_response_ms =
      fed_ == 0 ? 0.0 : total_response_ms_ / static_cast<double>(fed_);
  if (config_.metrics) {
    engine_.export_metrics(*config_.metrics, "engine");
    if (config_.telemetry != nullptr)
      config_.telemetry->export_metrics(*config_.metrics, "telemetry");
  }
  return result_;
}

ReplayResult replay(const Trace& trace, const ReplayConfig& config) {
  ReplaySession session(config);
  NDNP_TRACE_SCOPE("replayer", "replay", "replay");
  for (const TraceRecord& record : trace.records) session.feed(record);
  return session.finish();
}

}  // namespace ndnp::trace
