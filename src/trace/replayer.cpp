#include "trace/replayer.hpp"

#include <stdexcept>

#include "util/rng.hpp"
#include "util/tracing.hpp"

namespace ndnp::trace {

bool is_private_content(const ndn::Name& name, double private_fraction, std::uint64_t seed) {
  if (private_fraction <= 0.0) return false;
  if (private_fraction >= 1.0) return true;
  // One hash per content, mixed with the replay seed so different
  // experiments draw different private sets.
  util::SplitMix64 mix(name.hash64() ^ seed);
  const double u =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53;  // uniform in [0,1)
  return u < private_fraction;
}

ReplayResult replay(const Trace& trace, const ReplayConfig& config) {
  if (!config.policy_factory)
    throw std::invalid_argument("replay: policy_factory is required");

  core::CachePrivacyEngine engine(config.cache_capacity, config.eviction,
                                  config.policy_factory(), config.seed,
                                  config.cache_admission_probability);
  util::Rng rng(config.seed ^ 0x6a09e667f3bcc909ULL);

  // The degraded-network chain draws from its own stream so that enabling
  // it never shifts the delay-spread draws above — the cache state (and
  // therefore the hit-rate columns) is identical with and without loss.
  util::GilbertElliottChain upstream_chain(config.upstream_loss);
  util::Rng loss_rng(config.seed ^ 0xbb67ae8584caa73bULL);
  ReplayResult result;

  const core::CachePrivacyEngine::FetchFn fetch = [&](const ndn::Interest& interest) {
    const double spread = rng.uniform(0.5, 1.5);
    auto delay = static_cast<util::SimDuration>(
        static_cast<double>(config.upstream_delay) * spread);
    if (config.upstream_loss.enabled()) {
      util::SimDuration penalty = 0;
      // Retry cap: a loss=1 chain would otherwise never deliver.
      for (int attempt = 0; attempt < 64 && upstream_chain.sample_loss(loss_rng); ++attempt) {
        ++result.upstream_losses;
        penalty += config.upstream_retry_penalty;
      }
      if (penalty > 0) {
        ++result.degraded_fetches;
        delay += penalty;
      }
    }
    return std::pair{
        ndn::make_data(interest.name, std::string(64, 'x'), "origin", "origin-key"), delay};
  };

  double total_response_ms = 0.0;
  NDNP_TRACE_SCOPE("replayer", "replay", "replay");
  for (const TraceRecord& record : trace.records) {
    ndn::Interest interest;
    interest.name = record.name;
    interest.nonce = rng.next_u64();
    interest.private_req =
        is_private_content(record.name, config.private_fraction, config.seed);
    if (interest.private_req) ++result.private_requests;

    const auto now = static_cast<util::SimTime>(record.timestamp_s * 1e9);
    const core::RequestOutcome outcome = engine.handle(interest, now, fetch);
    NDNP_TRACE_EVENT(util::TraceEventType::kReplayRequest, "replayer", now,
                     record.name.to_uri(),
                     std::string("outcome=") + std::string(to_string(outcome.kind)) +
                         (interest.private_req ? " private=1" : " private=0"),
                     -1, outcome.response_delay);
    total_response_ms += util::to_millis(outcome.response_delay);
  }
  result.stats = engine.stats();
  result.mean_response_ms =
      trace.records.empty() ? 0.0 : total_response_ms / static_cast<double>(trace.size());
  if (config.metrics) engine.export_metrics(*config.metrics, "engine");
  return result;
}

}  // namespace ndnp::trace
