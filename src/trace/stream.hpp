// Streaming trace I/O for deployment-scale replays (docs/SCALE.md).
//
// The seed-era replayer materialized the whole trace in memory; at the
// million-user scale the Section VII evaluation targets, that is the
// binding constraint (a 10M-record text trace parses to gigabytes of
// ndn::Name records). This module replaces "load a Trace" with "open a
// TraceSource and pull fixed-size chunks": peak memory is bounded by the
// chunk size — independent of trace length — for every source kind:
//
//   TextTraceSource       the plain-text format of trace.hpp, parsed with
//                         malformed-line accounting (ParseStats) and a
//                         configurable fail-fast threshold
//   BinaryTraceSource     the chunked binary format below (fast re-runs)
//   VectorTraceSource     adapter over an in-memory Trace (tests, back
//                         compat)
//   SyntheticTraceSource  bounded-memory synthetic workload generation
//                         straight from a SyntheticWorkload — no disk at
//                         all, arbitrarily many users/objects/requests
//
// Binary trace format ("NDNPTRB1", little-endian):
//   header : magic[8] u32 version u32 flags u64 catalogue_size
//   chunk* : u32 record_count, then per record
//            f64 timestamp_s  u32 user_id  u32 size_bytes
//            u16 uri_len      uri bytes (canonical Name URI)
// The stream ends at EOF; a truncated chunk raises an error. Convert a
// text trace once with `convert_trace` (or `trace_gen --convert`) and
// replays parse ~10x faster.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace ndnp::trace {

/// Accounting of one parsing pass over a trace input. Malformed lines are
/// skipped and counted — never silently dropped — and the parse fails fast
/// once their count exceeds the configured threshold.
struct ParseStats {
  /// Input lines seen (text sources; binary sources count records here).
  std::uint64_t lines = 0;
  /// Records successfully parsed.
  std::uint64_t records = 0;
  /// Blank and '#'-comment lines (legitimately skipped).
  std::uint64_t comments = 0;
  /// Lines that failed to parse and were skipped.
  std::uint64_t malformed = 0;

  [[nodiscard]] double malformed_fraction() const noexcept {
    return lines == 0 ? 0.0
                      : static_cast<double>(malformed) / static_cast<double>(lines);
  }
};

struct ParseOptions {
  /// Fail fast (throw TraceParseError) as soon as the malformed-line count
  /// *exceeds* this. 0 — the default — keeps the historical strictness:
  /// the first malformed line aborts the parse.
  std::uint64_t max_malformed = 0;
};

/// Raised when a trace input is unreadable, truncated, or accumulates more
/// malformed lines than ParseOptions allows. Carries the stats so callers
/// can report how far the parse got.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(const std::string& what, ParseStats parse_stats)
      : std::runtime_error(what), stats(parse_stats) {}
  ParseStats stats;
};

/// Parse one line of the plain-text format into `out`. Returns false on a
/// malformed line (out unspecified). Blank/comment lines are NOT handled
/// here — callers skip them first.
[[nodiscard]] bool parse_trace_line(const std::string& line, TraceRecord& out);

// ---------------------------------------------------------------------------
// Sources

/// Pull-based record stream. One pass per open source; `rewind()` restarts
/// the pass (sharded replay makes one pass per shard). Implementations are
/// single-threaded; concurrent shards each open their own source.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Clear `out` and refill it with up to `max_records` records, in trace
  /// order. Returns false — with `out` empty — when the stream is
  /// exhausted. Throws TraceParseError per ParseOptions.
  virtual bool next_chunk(std::vector<TraceRecord>& out, std::size_t max_records) = 0;

  /// Restart the pass from the first record (resets stats()).
  virtual void rewind() = 0;

  /// Accounting for the pass so far.
  [[nodiscard]] virtual const ParseStats& stats() const noexcept = 0;

  /// Catalogue size if the source knows it (generator/binary header), else 0.
  [[nodiscard]] virtual std::size_t catalogue_size() const noexcept { return 0; }
};

/// Plain-text file source (the trace.hpp line format).
class TextTraceSource final : public TraceSource {
 public:
  explicit TextTraceSource(std::string path, ParseOptions options = {});

  bool next_chunk(std::vector<TraceRecord>& out, std::size_t max_records) override;
  void rewind() override;
  [[nodiscard]] const ParseStats& stats() const noexcept override { return stats_; }

 private:
  std::string path_;
  ParseOptions options_;
  std::ifstream in_;
  ParseStats stats_;
  std::string line_;  // reused across calls
};

/// Chunked binary file source.
class BinaryTraceSource final : public TraceSource {
 public:
  explicit BinaryTraceSource(std::string path);

  bool next_chunk(std::vector<TraceRecord>& out, std::size_t max_records) override;
  void rewind() override;
  [[nodiscard]] const ParseStats& stats() const noexcept override { return stats_; }
  [[nodiscard]] std::size_t catalogue_size() const noexcept override {
    return catalogue_size_;
  }

 private:
  void read_header();

  std::string path_;
  std::ifstream in_;
  ParseStats stats_;
  std::size_t catalogue_size_ = 0;
  /// Records of the current on-disk chunk not yet handed out.
  std::uint32_t pending_in_chunk_ = 0;
};

/// Adapter over an in-memory Trace (not owned; must outlive the source).
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(const Trace& trace) : trace_(&trace) {}

  bool next_chunk(std::vector<TraceRecord>& out, std::size_t max_records) override;
  void rewind() override;
  [[nodiscard]] const ParseStats& stats() const noexcept override { return stats_; }
  [[nodiscard]] std::size_t catalogue_size() const noexcept override {
    return trace_->catalogue_size;
  }

 private:
  const Trace* trace_;
  std::size_t cursor_ = 0;
  ParseStats stats_;
};

/// Open `path` as a TraceSource, sniffing the binary magic ("NDNPTRB1")
/// to pick the format. Throws TraceParseError if the file cannot be read.
[[nodiscard]] std::unique_ptr<TraceSource> open_trace_source(const std::string& path,
                                                             ParseOptions options = {});

// ---------------------------------------------------------------------------
// Sinks

/// Push-based record sink: the streaming counterpart of write_trace.
class TraceWriter {
 public:
  virtual ~TraceWriter() = default;
  virtual void append(const TraceRecord& record) = 0;
  /// Flush buffered records; further appends are invalid. Idempotent.
  virtual void close() = 0;
};

/// Plain-text file sink (same line format as write_trace).
class TextTraceWriter final : public TraceWriter {
 public:
  explicit TextTraceWriter(const std::string& path);
  ~TextTraceWriter() override;

  void append(const TraceRecord& record) override;
  void close() override;

 private:
  std::ofstream out_;
};

/// Chunked binary file sink.
class BinaryTraceWriter final : public TraceWriter {
 public:
  /// `catalogue_size` lands in the header (0 = unknown); records are
  /// flushed to disk every `chunk_records`.
  explicit BinaryTraceWriter(const std::string& path, std::size_t catalogue_size = 0,
                             std::size_t chunk_records = 64 * 1024);
  ~BinaryTraceWriter() override;

  void append(const TraceRecord& record) override;
  void close() override;

 private:
  void flush_chunk();

  std::ofstream out_;
  std::size_t chunk_records_;
  std::uint32_t buffered_ = 0;
  std::vector<char> buffer_;
};

/// Stream every record of `source` into `sink` (the text -> binary
/// converter, but any direction works). Returns the source's final stats.
ParseStats convert_trace(TraceSource& source, TraceWriter& sink,
                         std::size_t chunk_records = 64 * 1024);

// ---------------------------------------------------------------------------
// Synthetic workload at scale

/// The immutable tables of a synthetic workload (Zipf CDFs), built once
/// and shared — const and thread-safe, so concurrent shards can each open
/// their own streaming pass without replicating an O(catalogue) CDF per
/// shard. Requires temporal_locality == user_affinity == 0 (the paper
/// reproduction default): those modes keep per-user history and are served
/// by the in-memory generate_trace.
///
/// The stream differs from generate_trace in one documented way: arrivals
/// come from an exponential inter-arrival process (rate num_requests /
/// duration_s) instead of globally sorted uniform order statistics, so
/// records can be emitted in O(1) memory. Both are homogeneous-Poisson
/// models of the same 24 h trace; timestamps are nondecreasing either way.
class SyntheticWorkload {
 public:
  explicit SyntheticWorkload(const TraceGenConfig& config);

  [[nodiscard]] const TraceGenConfig& config() const noexcept { return config_; }

  /// Open a fresh deterministic pass (same config + seed => same records).
  [[nodiscard]] std::unique_ptr<TraceSource> open() const;

  /// Stable object -> domain assignment, identical for every pass: a
  /// Zipf(0.9) draw over domains seeded per object.
  [[nodiscard]] std::uint32_t domain_of(std::size_t object) const noexcept;

 private:
  friend class SyntheticTraceSource;

  TraceGenConfig config_;
  util::ZipfSampler object_popularity_;
  util::ZipfSampler user_activity_;
  util::ZipfSampler domain_popularity_;
};

/// One streaming pass over a SyntheticWorkload (not owned).
class SyntheticTraceSource final : public TraceSource {
 public:
  explicit SyntheticTraceSource(const SyntheticWorkload& workload);

  bool next_chunk(std::vector<TraceRecord>& out, std::size_t max_records) override;
  void rewind() override;
  [[nodiscard]] const ParseStats& stats() const noexcept override { return stats_; }
  [[nodiscard]] std::size_t catalogue_size() const noexcept override {
    return workload_->config().num_objects;
  }

 private:
  const SyntheticWorkload* workload_;
  util::Rng rng_;
  ParseStats stats_;
  std::uint64_t emitted_ = 0;
  double clock_s_ = 0.0;
};

// ---------------------------------------------------------------------------
// Sharding

/// Stable shard assignment for a user id: a SplitMix64 hash reduced mod
/// num_shards. Pure function of (user_id, num_shards) — independent of
/// shard execution order, thread count, and trace position — so sharded
/// replays are deterministic by construction (docs/SCALE.md).
[[nodiscard]] inline std::size_t shard_of(std::uint32_t user_id,
                                          std::size_t num_shards) noexcept {
  util::SplitMix64 mix(0x9e3779b97f4a7c15ULL ^ user_id);
  return static_cast<std::size_t>(mix.next() % num_shards);
}

}  // namespace ndnp::trace
