#include "trace/stream.hpp"

#include <bit>
#include <charconv>
#include <cstring>
#include <stdexcept>

namespace ndnp::trace {

namespace {

constexpr char kMagic[8] = {'N', 'D', 'N', 'P', 'T', 'R', 'B', '1'};
constexpr std::uint32_t kVersion = 1;
/// Fixed-width prefix of one binary record: f64 + u32 + u32 + u16.
constexpr std::size_t kRecordPrefix = 18;

// Little-endian encode/decode, independent of host byte order.
void put_u16(std::vector<char>& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}
void put_u32(std::vector<char>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}
void put_u64(std::vector<char>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}
void put_f64(std::vector<char>& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                    (static_cast<unsigned char>(p[1]) << 8));
}
std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}
std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}
double get_f64(const char* p) { return std::bit_cast<double>(get_u64(p)); }

/// Next whitespace-separated token of `line` starting at `pos`; empty view
/// when the line is exhausted. Advances `pos` past the token.
std::string_view next_token(const std::string& line, std::size_t& pos) {
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  const std::size_t begin = pos;
  while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') ++pos;
  return std::string_view(line).substr(begin, pos - begin);
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

}  // namespace

bool parse_trace_line(const std::string& line, TraceRecord& out) {
  std::size_t pos = 0;
  const std::string_view ts = next_token(line, pos);
  const std::string_view user = next_token(line, pos);
  const std::string_view uri = next_token(line, pos);
  const std::string_view size = next_token(line, pos);
  if (size.empty()) return false;  // fewer than four fields

  if (!parse_number(ts, out.timestamp_s) || out.timestamp_s < 0.0) return false;
  if (!parse_number(user, out.user_id)) return false;
  std::uint64_t size_bytes = 0;
  if (!parse_number(size, size_bytes)) return false;
  out.size_bytes = static_cast<std::size_t>(size_bytes);
  if (uri.empty() || uri.front() != '/') return false;
  try {
    out.name = ndn::Name(uri);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// TextTraceSource

TextTraceSource::TextTraceSource(std::string path, ParseOptions options)
    : path_(std::move(path)), options_(options), in_(path_) {
  if (!in_) throw TraceParseError("cannot open trace file " + path_, stats_);
}

bool TextTraceSource::next_chunk(std::vector<TraceRecord>& out, std::size_t max_records) {
  out.clear();
  while (out.size() < max_records && std::getline(in_, line_)) {
    ++stats_.lines;
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    if (line_.empty() || line_.front() == '#') {
      ++stats_.comments;
      continue;
    }
    TraceRecord record;
    if (!parse_trace_line(line_, record)) {
      ++stats_.malformed;
      if (stats_.malformed > options_.max_malformed)
        throw TraceParseError(
            path_ + ": malformed line " + std::to_string(stats_.lines) + " (" +
                std::to_string(stats_.malformed) + " malformed line(s) exceed threshold " +
                std::to_string(options_.max_malformed) + ")",
            stats_);
      continue;
    }
    ++stats_.records;
    out.push_back(std::move(record));
  }
  return !out.empty();
}

void TextTraceSource::rewind() {
  in_.clear();
  in_.seekg(0);
  if (!in_) throw TraceParseError("cannot rewind trace file " + path_, stats_);
  stats_ = ParseStats{};
}

// ---------------------------------------------------------------------------
// BinaryTraceSource

BinaryTraceSource::BinaryTraceSource(std::string path)
    : path_(std::move(path)), in_(path_, std::ios::binary) {
  if (!in_) throw TraceParseError("cannot open trace file " + path_, stats_);
  read_header();
}

void BinaryTraceSource::read_header() {
  char header[24];
  in_.read(header, sizeof header);
  if (in_.gcount() != sizeof header || std::memcmp(header, kMagic, sizeof kMagic) != 0)
    throw TraceParseError(path_ + ": not a binary trace (bad magic)", stats_);
  const std::uint32_t version = get_u32(header + 8);
  if (version != kVersion)
    throw TraceParseError(
        path_ + ": unsupported binary trace version " + std::to_string(version), stats_);
  catalogue_size_ = static_cast<std::size_t>(get_u64(header + 16));
}

bool BinaryTraceSource::next_chunk(std::vector<TraceRecord>& out, std::size_t max_records) {
  out.clear();
  char prefix[kRecordPrefix];
  std::string uri;
  while (out.size() < max_records) {
    if (pending_in_chunk_ == 0) {
      char count_buf[4];
      in_.read(count_buf, sizeof count_buf);
      if (in_.gcount() == 0) break;  // clean EOF between chunks
      if (in_.gcount() != sizeof count_buf)
        throw TraceParseError(path_ + ": truncated chunk header", stats_);
      pending_in_chunk_ = get_u32(count_buf);
      if (pending_in_chunk_ == 0)
        throw TraceParseError(path_ + ": empty chunk", stats_);
      continue;
    }
    in_.read(prefix, sizeof prefix);
    if (in_.gcount() != static_cast<std::streamsize>(sizeof prefix))
      throw TraceParseError(path_ + ": truncated record", stats_);
    const std::uint16_t uri_len = get_u16(prefix + 16);
    uri.resize(uri_len);
    in_.read(uri.data(), uri_len);
    if (in_.gcount() != static_cast<std::streamsize>(uri_len))
      throw TraceParseError(path_ + ": truncated record name", stats_);

    TraceRecord record;
    record.timestamp_s = get_f64(prefix);
    record.user_id = get_u32(prefix + 8);
    record.size_bytes = get_u32(prefix + 12);
    try {
      record.name = ndn::Name(uri);
    } catch (const std::invalid_argument&) {
      throw TraceParseError(path_ + ": corrupt record name '" + uri + "'", stats_);
    }
    --pending_in_chunk_;
    ++stats_.lines;
    ++stats_.records;
    out.push_back(std::move(record));
  }
  return !out.empty();
}

void BinaryTraceSource::rewind() {
  in_.clear();
  in_.seekg(0);
  if (!in_) throw TraceParseError("cannot rewind trace file " + path_, stats_);
  stats_ = ParseStats{};
  pending_in_chunk_ = 0;
  read_header();
}

// ---------------------------------------------------------------------------
// VectorTraceSource

bool VectorTraceSource::next_chunk(std::vector<TraceRecord>& out, std::size_t max_records) {
  out.clear();
  const auto& records = trace_->records;
  while (cursor_ < records.size() && out.size() < max_records) {
    out.push_back(records[cursor_++]);
    ++stats_.lines;
    ++stats_.records;
  }
  return !out.empty();
}

void VectorTraceSource::rewind() {
  cursor_ = 0;
  stats_ = ParseStats{};
}

// ---------------------------------------------------------------------------
// open_trace_source

std::unique_ptr<TraceSource> open_trace_source(const std::string& path,
                                               ParseOptions options) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw TraceParseError("cannot open trace file " + path, ParseStats{});
  char magic[8] = {};
  probe.read(magic, sizeof magic);
  const bool binary =
      probe.gcount() == sizeof magic && std::memcmp(magic, kMagic, sizeof magic) == 0;
  probe.close();
  if (binary) return std::make_unique<BinaryTraceSource>(path);
  return std::make_unique<TextTraceSource>(path, options);
}

// ---------------------------------------------------------------------------
// Writers

TextTraceWriter::TextTraceWriter(const std::string& path) : out_(path) {
  if (!out_) throw TraceParseError("cannot open trace file " + path + " for writing",
                                   ParseStats{});
}

TextTraceWriter::~TextTraceWriter() { close(); }

void TextTraceWriter::append(const TraceRecord& record) {
  char line[64];
  std::snprintf(line, sizeof line, "%.6f %u ", record.timestamp_s, record.user_id);
  out_ << line << record.name.to_uri() << ' ' << record.size_bytes << '\n';
}

void TextTraceWriter::close() {
  if (out_.is_open()) out_.close();
}

BinaryTraceWriter::BinaryTraceWriter(const std::string& path, std::size_t catalogue_size,
                                     std::size_t chunk_records)
    : out_(path, std::ios::binary), chunk_records_(chunk_records ? chunk_records : 1) {
  if (!out_) throw TraceParseError("cannot open trace file " + path + " for writing",
                                   ParseStats{});
  std::vector<char> header;
  header.insert(header.end(), kMagic, kMagic + sizeof kMagic);
  put_u32(header, kVersion);
  put_u32(header, 0);  // flags, reserved
  put_u64(header, static_cast<std::uint64_t>(catalogue_size));
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
}

BinaryTraceWriter::~BinaryTraceWriter() { close(); }

void BinaryTraceWriter::append(const TraceRecord& record) {
  const std::string uri = record.name.to_uri();
  if (uri.size() > 0xffff)
    throw TraceParseError("binary trace: name URI longer than 65535 bytes", ParseStats{});
  put_f64(buffer_, record.timestamp_s);
  put_u32(buffer_, record.user_id);
  put_u32(buffer_, static_cast<std::uint32_t>(record.size_bytes));
  put_u16(buffer_, static_cast<std::uint16_t>(uri.size()));
  buffer_.insert(buffer_.end(), uri.begin(), uri.end());
  if (++buffered_ == chunk_records_) flush_chunk();
}

void BinaryTraceWriter::flush_chunk() {
  if (buffered_ == 0) return;
  std::vector<char> count;
  put_u32(count, buffered_);
  out_.write(count.data(), static_cast<std::streamsize>(count.size()));
  out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  buffer_.clear();
  buffered_ = 0;
}

void BinaryTraceWriter::close() {
  if (!out_.is_open()) return;
  flush_chunk();
  out_.close();
}

ParseStats convert_trace(TraceSource& source, TraceWriter& sink, std::size_t chunk_records) {
  std::vector<TraceRecord> chunk;
  chunk.reserve(chunk_records);
  while (source.next_chunk(chunk, chunk_records))
    for (const TraceRecord& record : chunk) sink.append(record);
  sink.close();
  return source.stats();
}

// ---------------------------------------------------------------------------
// SyntheticWorkload

SyntheticWorkload::SyntheticWorkload(const TraceGenConfig& config)
    : config_(config),
      object_popularity_(config.num_objects, config.zipf_exponent),
      user_activity_(config.num_users, 0.5),
      domain_popularity_(config.num_domains, 0.9) {
  if (config.num_users == 0 || config.num_objects == 0 || config.num_domains == 0)
    throw std::invalid_argument("SyntheticWorkload: counts must be positive");
  if (config.temporal_locality != 0.0 || config.user_affinity != 0.0)
    throw std::invalid_argument(
        "SyntheticWorkload: streaming generation supports only the pure-Zipf mode "
        "(temporal_locality == user_affinity == 0); use generate_trace for the "
        "locality/affinity modes");
  if (!(config.duration_s > 0.0))
    throw std::invalid_argument("SyntheticWorkload: duration must be positive");
}

std::uint32_t SyntheticWorkload::domain_of(std::size_t object) const noexcept {
  // Per-object deterministic draw, independent of the request stream: every
  // pass (and every shard) agrees on the assignment without an O(objects)
  // table per source.
  util::SplitMix64 mix(config_.seed ^
                       (0xd6e8feb86659fd93ULL * (static_cast<std::uint64_t>(object) + 1)));
  util::Rng rng(mix.next());
  return static_cast<std::uint32_t>(domain_popularity_.sample(rng) - 1);
}

std::unique_ptr<TraceSource> SyntheticWorkload::open() const {
  return std::make_unique<SyntheticTraceSource>(*this);
}

SyntheticTraceSource::SyntheticTraceSource(const SyntheticWorkload& workload)
    : workload_(&workload), rng_(workload.config().seed) {}

bool SyntheticTraceSource::next_chunk(std::vector<TraceRecord>& out,
                                      std::size_t max_records) {
  out.clear();
  const TraceGenConfig& config = workload_->config();
  const double rate = static_cast<double>(config.num_requests) / config.duration_s;
  while (emitted_ < config.num_requests && out.size() < max_records) {
    clock_s_ += rng_.exponential(rate);
    const auto user = static_cast<std::uint32_t>(workload_->user_activity_.sample(rng_) - 1);
    const std::size_t object = workload_->object_popularity_.sample(rng_) - 1;

    TraceRecord record;
    record.timestamp_s = clock_s_;
    record.user_id = user;
    record.name =
        ndn::Name{"web", "dom" + std::to_string(workload_->domain_of(object)),
                  "obj" + std::to_string(object)};
    record.size_bytes = config.object_size;
    out.push_back(std::move(record));
    ++emitted_;
    ++stats_.lines;
    ++stats_.records;
  }
  return !out.empty();
}

void SyntheticTraceSource::rewind() {
  rng_ = util::Rng(workload_->config().seed);
  emitted_ = 0;
  clock_s_ = 0.0;
  stats_ = ParseStats{};
}

}  // namespace ndnp::trace
