#include "trace/network_replay.hpp"

#include <stdexcept>
#include <vector>

#include "core/policies.hpp"
#include "sim/apps.hpp"
#include "sim/forwarder.hpp"
#include "trace/replayer.hpp"

namespace ndnp::trace {

std::string_view to_string(Deployment deployment) noexcept {
  switch (deployment) {
    case Deployment::kNone: return "none";
    case Deployment::kEdgeOnly: return "edge-only";
    case Deployment::kEverywhere: return "everywhere";
  }
  return "?";
}

namespace {

/// The two-tier deployment tree plus the per-record issue path, shared by
/// the in-memory and streaming overloads.
struct DeploymentTree {
  explicit DeploymentTree(const NetworkReplayConfig& config) : config_(config) {
    if (config.edge_routers == 0)
      throw std::invalid_argument("replay_over_network: need at least one edge router");
    if (!(config.time_compression > 0.0))
      throw std::invalid_argument("replay_over_network: time compression must be positive");

    const auto make_policy = [&](bool is_edge) -> std::unique_ptr<core::CachePrivacyPolicy> {
      const bool wants_policy =
          config.policy_factory &&
          (config.deployment == Deployment::kEverywhere ||
           (config.deployment == Deployment::kEdgeOnly && is_edge));
      return wants_policy ? config.policy_factory() : nullptr;  // null -> NoPrivacy
    };

    // Core tier.
    sim::ForwarderConfig core_cfg;
    core_cfg.cs_capacity = config.core_cache;
    core_cfg.eviction = config.eviction;
    core_cfg.seed = config.seed ^ 0xff51afd7ed558ccdULL;
    core_ = std::make_unique<sim::Forwarder>(sched_, "core", core_cfg,
                                             make_policy(/*is_edge=*/false));

    // Producer: auto-generates the whole /web namespace.
    sim::ProducerConfig pcfg;
    pcfg.payload_size = 8'192;
    producer_ = std::make_unique<sim::Producer>(sched_, "origin", ndn::Name("/web"),
                                                "origin-key", pcfg, config.seed + 1);
    const sim::LinkConfig core_producer = sim::wan_link(8.0, 0.5, 0.4);
    const auto [core_up, producer_down] = connect(*core_, *producer_, core_producer);
    (void)producer_down;
    core_->add_route(ndn::Name("/web"), core_up);

    // Edge tier, one aggregate consumer per edge router.
    edges_.reserve(config.edge_routers);
    const sim::LinkConfig access = sim::lan_link(0.3, 0.05);
    const sim::LinkConfig edge_core = sim::wan_link(2.0, 0.2, 0.4);
    for (std::size_t i = 0; i < config.edge_routers; ++i) {
      sim::ForwarderConfig edge_cfg;
      edge_cfg.cs_capacity = config.edge_cache;
      edge_cfg.eviction = config.eviction;
      edge_cfg.seed = config.seed + 100 + i;
      Edge edge;
      edge.router = std::make_unique<sim::Forwarder>(sched_, "edge" + std::to_string(i),
                                                     edge_cfg, make_policy(/*is_edge=*/true));
      edge.consumer = std::make_unique<sim::Consumer>(sched_, "users" + std::to_string(i),
                                                      config.seed + 200 + i);
      connect(*edge.consumer, *edge.router, access);
      const auto [up, down] = connect(*edge.router, *core_, edge_core);
      (void)down;
      edge.router->add_route(ndn::Name("/web"), up);
      edges_.push_back(std::move(edge));
    }
  }

  /// Compressed simulation timestamp of a record.
  [[nodiscard]] util::SimTime at(const TraceRecord& record) const {
    return static_cast<util::SimTime>(record.timestamp_s * 1e9 / config_.time_compression);
  }

  /// Schedule one request at its compressed timestamp.
  void issue(const TraceRecord& record) {
    ++result_.requests;
    Edge& edge = edges_[record.user_id % config_.edge_routers];
    sim::Consumer* consumer = edge.consumer.get();
    const bool is_private =
        is_private_content(record.name, config_.private_fraction, config_.seed);
    const ndn::Name name = record.name;
    NetworkReplayResult* result = &result_;
    sched_.schedule_at(at(record), [consumer, name, is_private, result] {
      ndn::Interest interest;
      interest.name = name;
      interest.private_req = is_private;
      consumer->express_interest(interest,
                                 [result](const ndn::Data&, util::SimDuration rtt) {
                                   ++result->completed;
                                   result->rtt_ms.add(util::to_millis(rtt));
                                 });
    });
  }

  /// Drain the event queue and collect the tier accounting.
  [[nodiscard]] NetworkReplayResult finish() {
    sched_.run();
    for (const Edge& edge : edges_) result_.edge_hits += edge.router->stats().exposed_hits;
    result_.core_hits = core_->stats().exposed_hits;
    result_.producer_fetches = producer_->interests_served();
    return std::move(result_);
  }

  sim::Scheduler sched_;

 private:
  struct Edge {
    std::unique_ptr<sim::Forwarder> router;
    std::unique_ptr<sim::Consumer> consumer;
  };

  NetworkReplayConfig config_;
  std::unique_ptr<sim::Forwarder> core_;
  std::unique_ptr<sim::Producer> producer_;
  std::vector<Edge> edges_;
  NetworkReplayResult result_;
};

}  // namespace

NetworkReplayResult replay_over_network(const Trace& tr, const NetworkReplayConfig& config) {
  DeploymentTree tree(config);
  for (const TraceRecord& record : tr.records) tree.issue(record);
  return tree.finish();
}

NetworkReplayResult replay_over_network(TraceSource& source,
                                        const NetworkReplayConfig& config,
                                        std::size_t chunk_records) {
  if (chunk_records == 0)
    throw std::invalid_argument("replay_over_network: chunk_records must be positive");
  DeploymentTree tree(config);
  std::vector<TraceRecord> chunk;
  chunk.reserve(chunk_records);
  double last_ts = 0.0;
  while (source.next_chunk(chunk, chunk_records)) {
    for (const TraceRecord& record : chunk) {
      if (record.timestamp_s < last_ts)
        throw std::invalid_argument(
            "replay_over_network: streaming replay requires a time-sorted trace");
      last_ts = record.timestamp_s;
      tree.issue(record);
    }
    // Execute everything up to the horizon of this chunk before pulling the
    // next one: in-flight events stay pending, but the request backlog never
    // exceeds one chunk.
    tree.sched_.run_until(tree.at(chunk.back()));
  }
  NetworkReplayResult result = tree.finish();
  result.malformed_records = source.stats().malformed;
  return result;
}

}  // namespace ndnp::trace
